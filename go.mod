module cucc

go 1.24

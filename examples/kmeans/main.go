// Iterative k-means on a CPU cluster: a realistic multi-launch application
// built on the CuCC public API.
//
// Each iteration launches the CUDA classification kernel through the
// three-phase distributed workflow (phase 1 classifies a slice of points on
// each node, the Allgather synchronizes the membership array, the tail
// block re-runs everywhere), then the host recomputes centroids and
// broadcasts them back — the cudaMemcpy pattern of a real GPU k-means.
// The distributed result is compared against a single-node run.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/simnet"
)

const kmeansSrc = `
__global__ void classify(float* points, float* centroids, int* membership, int n, int k, int dim) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        int best = 0;
        float bestDist = 1e30f;
        for (int c = 0; c < k; c++) {
            float d = 0.0f;
            for (int j = 0; j < dim; j++) {
                float diff = points[id * dim + j] - centroids[c * dim + j];
                d += diff * diff;
            }
            if (d < bestDist) {
                bestDist = d;
                best = c;
            }
        }
        membership[id] = best;
    }
}
`

const (
	nPoints = 10000
	k       = 8
	dim     = 8
	iters   = 10
)

func runKmeans(nodes int) ([]int32, float64) {
	prog, err := core.Compile(kmeansSrc)
	if err != nil {
		log.Fatal(err)
	}
	c, err := cluster.New(cluster.Config{Nodes: nodes, Machine: machine.AMD7713(), Net: simnet.IB100()})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(99))
	pts := make([]float32, nPoints*dim)
	for i := range pts {
		pts[i] = rng.Float32() * 100
	}
	cent := make([]float32, k*dim)
	for i := range cent {
		cent[i] = rng.Float32() * 100
	}

	points := c.Alloc(kir.F32, nPoints*dim)
	centroids := c.Alloc(kir.F32, k*dim)
	membership := c.Alloc(kir.I32, nPoints)
	if err := c.WriteAllF32(points, pts); err != nil {
		log.Fatal(err)
	}

	sess := core.NewSession(c, prog)
	sess.Verify = true
	grid := (nPoints + 255) / 256

	var totalSim float64
	for it := 0; it < iters; it++ {
		// Host -> device: the current centroids (identical on all nodes).
		if err := c.WriteAllF32(centroids, cent); err != nil {
			log.Fatal(err)
		}
		stats, err := sess.Launch(core.LaunchSpec{
			Kernel: "classify",
			Grid:   interp.Dim1(grid),
			Block:  interp.Dim1(256),
			Args: []core.Arg{
				core.BufArg(points), core.BufArg(centroids), core.BufArg(membership),
				core.IntArg(nPoints), core.IntArg(k), core.IntArg(dim),
			},
			SIMDFraction: 0.6,
		})
		if err != nil {
			log.Fatal(err)
		}
		totalSim += stats.TotalSec

		// Device -> host: memberships; recompute centroids on the host.
		member := c.ReadI32(0, membership)
		sums := make([]float64, k*dim)
		counts := make([]int, k)
		for i := 0; i < nPoints; i++ {
			m := member[i]
			counts[m]++
			for j := 0; j < dim; j++ {
				sums[int(m)*dim+j] += float64(pts[i*dim+j])
			}
		}
		for cc := 0; cc < k; cc++ {
			if counts[cc] == 0 {
				continue
			}
			for j := 0; j < dim; j++ {
				cent[cc*dim+j] = float32(sums[cc*dim+j] / float64(counts[cc]))
			}
		}
	}
	return c.ReadI32(0, membership), totalSim
}

func main() {
	fmt.Printf("k-means: %d points, %d clusters, %d dims, %d iterations\n", nPoints, k, dim, iters)
	ref, t1 := runKmeans(1)
	got, t4 := runKmeans(4)
	for i := range ref {
		if ref[i] != got[i] {
			log.Fatalf("membership[%d] differs between 1-node and 4-node runs", i)
		}
	}
	fmt.Println("4-node distributed result identical to single-node run")
	fmt.Printf("simulated kernel time: %.3f ms on 1 node, %.3f ms on 4 nodes (%.2fx)\n",
		t1*1e3, t4*1e3, t1/t4)

	counts := map[int32]int{}
	for _, m := range got {
		counts[m]++
	}
	fmt.Print("final cluster sizes:")
	for cc := int32(0); cc < k; cc++ {
		fmt.Printf(" %d", counts[cc])
	}
	fmt.Println()
}

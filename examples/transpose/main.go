// Transpose scaling study: reproduces the paper's analysis of a
// communication-limited kernel (§7.2, Figures 8-10).
//
// Runs the matrix transpose at paper scale through the cost models across
// cluster sizes on both cluster types, showing the scaling knee where the
// Allgather volume overtakes the shrinking per-node compute, and compares
// against the fine-grained PGAS baseline.  A reduced-scale run with real
// distributed execution validates correctness first.
package main

import (
	"fmt"
	"log"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/experiments"
	"cucc/internal/machine"
	"cucc/internal/simnet"
	"cucc/internal/suites"
)

func main() {
	prog := suites.Transpose()

	// Correctness first: really execute at reduced scale on 4 nodes.
	c, err := cluster.New(cluster.Config{Nodes: 4, Machine: machine.Intel6226(), Net: simnet.IB100()})
	if err != nil {
		log.Fatal(err)
	}
	inst, err := prog.Build(c, prog.Small)
	if err != nil {
		log.Fatal(err)
	}
	sess := core.NewSession(c, prog.Compiled)
	sess.Verify = true
	if _, err := sess.Launch(inst.Spec); err != nil {
		log.Fatal(err)
	}
	if err := inst.Check(); err != nil {
		log.Fatal(err)
	}
	c.Close()
	n := prog.Small.Get("tiles") * 256
	fmt.Printf("correctness: %dx%d transpose executed on 4 real distributed memories and verified\n\n", n, n)

	// Paper-scale scaling study.
	nDefault := prog.Default.Get("tiles") * 256
	fmt.Printf("paper scale: %dx%d matrix (%d MB)\n\n", nDefault, nDefault, nDefault*nDefault*4>>20)
	for _, cfg := range []struct {
		name  string
		m     machine.CPU
		nodes []int
	}{
		{"SIMD-Focused", machine.Intel6226(), experiments.SIMDNodes},
		{"Thread-Focused", machine.AMD7713(), experiments.ThreadNodes},
	} {
		fmt.Printf("%s cluster:\n", cfg.name)
		fmt.Printf("  %5s  %10s  %8s  %9s  %10s\n", "nodes", "CuCC", "speedup", "comm", "PGAS")
		var t1 float64
		for _, nn := range cfg.nodes {
			st := experiments.CuCCStats(prog, cfg.m, simnet.IB100(), nn, machine.DefaultConfig())
			pg := experiments.PGASStats(prog, cfg.m, simnet.IB100(), nn)
			if nn == 1 {
				t1 = st.TotalSec
			}
			fmt.Printf("  %5d  %8.2fms  %7.2fx  %7.1f%%  %8.2fms\n",
				nn, st.TotalSec*1e3, t1/st.TotalSec, 100*st.CommSec/st.TotalSec, pg.TotalSec*1e3)
		}
		fmt.Println()
	}
	fmt.Println("the Allgather moves the whole output matrix regardless of cluster size,")
	fmt.Println("so per-node compute shrinks while communication stays constant: the")
	fmt.Println("scaling knee of Figure 8 and the dominant network fraction of Figure 9.")
}

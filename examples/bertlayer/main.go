// BERT encoder layer on a CPU cluster: a multi-kernel AI pipeline of the
// kind the paper's coverage study draws from (§7.1) — layernorm, QKV
// projections, attention scores, softmax, context matmul, and the residual
// add — all compiled from Triton-style mini-CUDA source, analyzed
// (every kernel is Allgather distributable), and chained through the
// CUDA-like host API on a simulated 4-node cluster.  The final hidden
// states are verified against a pure-Go reference.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"cucc/internal/hostapi"
	"cucc/internal/kir"
)

const layerSrc = `
__global__ void layernorm(float* x, float* gamma, float* beta, float* out, int rows, int hidden) {
    int row = blockIdx.x * blockDim.x + threadIdx.x;
    if (row < rows) {
        float mean = 0.0f;
        for (int c = 0; c < hidden; c++)
            mean += x[row * hidden + c];
        mean = mean / (float)hidden;
        float var = 0.0f;
        for (int c = 0; c < hidden; c++) {
            float d = x[row * hidden + c] - mean;
            var += d * d;
        }
        float inv = 1.0f / sqrtf(var / (float)hidden + 0.00001f);
        for (int c = 0; c < hidden; c++)
            out[row * hidden + c] = (x[row * hidden + c] - mean) * inv * gamma[c] + beta[c];
    }
}
__global__ void matmul(float* x, float* w, float* out, int tiles, int k) {
    int width = tiles * blockDim.x;
    int row = blockIdx.x;
    for (int t = 0; t < tiles; t++) {
        int col = t * blockDim.x + threadIdx.x;
        float acc = 0.0f;
        for (int j = 0; j < k; j++)
            acc += x[row * k + j] * w[j * width + col];
        out[row * width + col] = acc;
    }
}
__global__ void scores(float* q, float* km, float* out, int tiles, int d, float scale) {
    int cols = tiles * blockDim.x;
    int row = blockIdx.x;
    for (int t = 0; t < tiles; t++) {
        int col = t * blockDim.x + threadIdx.x;
        float acc = 0.0f;
        for (int j = 0; j < d; j++)
            acc += q[row * d + j] * km[col * d + j];
        out[row * cols + col] = acc * scale;
    }
}
__global__ void softmax(float* x, float* out, int rows, int cols) {
    int row = blockIdx.x * blockDim.x + threadIdx.x;
    if (row < rows) {
        float maxv = -1e30f;
        for (int c = 0; c < cols; c++) {
            float v = x[row * cols + c];
            if (v > maxv) maxv = v;
        }
        float sum = 0.0f;
        for (int c = 0; c < cols; c++)
            sum += expf(x[row * cols + c] - maxv);
        for (int c = 0; c < cols; c++)
            out[row * cols + c] = expf(x[row * cols + c] - maxv) / sum;
    }
}
__global__ void residual_add(float* x, float* res, float* out, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        out[id] = x[id] + res[id];
}
`

const (
	seq    = 32
	hidden = 64
	block  = 32
	tiles  = hidden / block // 2
)

func main() {
	dev, err := hostapi.Open(hostapi.DefaultConfig(), layerSrc)
	if err != nil {
		log.Fatal(err)
	}
	defer dev.Close()

	fmt.Println("BERT encoder layer: seq=32, hidden=64, single head, 4-node cluster")
	for _, name := range []string{"layernorm", "matmul", "scores", "softmax", "residual_add"} {
		md := dev.Program().Meta[name]
		fmt.Printf("  %-13s %s\n", name, md.Summary())
		if !md.Distributable {
			log.Fatalf("kernel %s must be distributable", name)
		}
	}

	rng := rand.New(rand.NewSource(11))
	randMat := func(n int, scale float32) []float32 {
		out := make([]float32, n)
		for i := range out {
			out[i] = (rng.Float32() - 0.5) * scale
		}
		return out
	}
	xs := randMat(seq*hidden, 2)
	gammas := randMat(hidden, 1)
	betas := randMat(hidden, 0.1)
	wqs := randMat(hidden*hidden, 0.2)
	wks := randMat(hidden*hidden, 0.2)
	wvs := randMat(hidden*hidden, 0.2)

	upload := func(data []float32) hostapi.DevicePtr {
		p := dev.Malloc(kir.F32, len(data))
		if err := dev.MemcpyH2DF32(p, data); err != nil {
			log.Fatal(err)
		}
		return p
	}
	x := upload(xs)
	gamma := upload(gammas)
	beta := upload(betas)
	wq, wk, wv := upload(wqs), upload(wks), upload(wvs)
	normed := dev.Malloc(kir.F32, seq*hidden)
	q := dev.Malloc(kir.F32, seq*hidden)
	k := dev.Malloc(kir.F32, seq*hidden)
	v := dev.Malloc(kir.F32, seq*hidden)
	att := dev.Malloc(kir.F32, seq*seq)
	probs := dev.Malloc(kir.F32, seq*seq)
	ctx := dev.Malloc(kir.F32, seq*hidden)
	out := dev.Malloc(kir.F32, seq*hidden)

	scale := float32(1.0 / math.Sqrt(hidden))
	launch := func(kernel string, grid, blk int, args ...any) {
		if _, err := dev.LaunchKernel(kernel, grid, blk, args...); err != nil {
			log.Fatalf("%s: %v", kernel, err)
		}
	}
	launch("layernorm", (seq+block-1)/block, block, x, gamma, beta, normed, seq, hidden)
	launch("matmul", seq, block, normed, wq, q, tiles, hidden)
	launch("matmul", seq, block, normed, wk, k, tiles, hidden)
	launch("matmul", seq, block, normed, wv, v, tiles, hidden)
	launch("scores", seq, block, q, k, att, seq/block, hidden, scale)
	launch("softmax", (seq+block-1)/block, block, att, probs, seq, seq)
	launch("matmul", seq, block, probs, v, ctx, tiles, seq)
	launch("residual_add", (seq*hidden+255)/256, 256, ctx, x, out, seq*hidden)

	got := dev.MemcpyD2HF32(out)
	want := reference(xs, gammas, betas, wqs, wks, wvs, scale)
	var maxErr float64
	for i := range want {
		if e := math.Abs(float64(got[i] - want[i])); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-3 {
		log.Fatalf("output mismatch: max error %g", maxErr)
	}
	fmt.Printf("8 kernel launches, all distributed; output matches Go reference (max err %.2g)\n", maxErr)
	fmt.Printf("accumulated simulated kernel time: %.3f ms\n", dev.ElapsedSec()*1e3)
}

// reference computes the same layer in float64 Go.
func reference(xs, gammas, betas, wqs, wks, wvs []float32, scale float32) []float32 {
	normed := make([]float64, seq*hidden)
	for r := 0; r < seq; r++ {
		var mean float64
		for c := 0; c < hidden; c++ {
			mean += float64(xs[r*hidden+c])
		}
		mean /= hidden
		var variance float64
		for c := 0; c < hidden; c++ {
			d := float64(xs[r*hidden+c]) - mean
			variance += d * d
		}
		variance /= hidden
		inv := 1 / math.Sqrt(variance+1e-5)
		for c := 0; c < hidden; c++ {
			normed[r*hidden+c] = (float64(xs[r*hidden+c])-mean)*inv*float64(gammas[c]) + float64(betas[c])
		}
	}
	matmul := func(a []float64, w []float32, rows, k, cols int) []float64 {
		out := make([]float64, rows*cols)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				var acc float64
				for j := 0; j < k; j++ {
					acc += a[r*k+j] * float64(w[j*cols+c])
				}
				out[r*cols+c] = acc
			}
		}
		return out
	}
	q := matmul(normed, wqs, seq, hidden, hidden)
	k := matmul(normed, wks, seq, hidden, hidden)
	v := matmul(normed, wvs, seq, hidden, hidden)
	probs := make([]float64, seq*seq)
	for r := 0; r < seq; r++ {
		maxv := math.Inf(-1)
		row := make([]float64, seq)
		for c := 0; c < seq; c++ {
			var acc float64
			for j := 0; j < hidden; j++ {
				acc += q[r*hidden+j] * k[c*hidden+j]
			}
			row[c] = acc * float64(scale)
			if row[c] > maxv {
				maxv = row[c]
			}
		}
		var sum float64
		for c := 0; c < seq; c++ {
			row[c] = math.Exp(row[c] - maxv)
			sum += row[c]
		}
		for c := 0; c < seq; c++ {
			probs[r*seq+c] = row[c] / sum
		}
	}
	ctxF := make([]float64, seq*hidden)
	for r := 0; r < seq; r++ {
		for c := 0; c < hidden; c++ {
			var acc float64
			for j := 0; j < seq; j++ {
				acc += probs[r*seq+j] * v[j*hidden+c]
			}
			ctxF[r*hidden+c] = acc
		}
	}
	out := make([]float32, seq*hidden)
	for i := range out {
		out[i] = float32(ctxF[i] + float64(xs[i]))
	}
	return out
}

// Real-socket cluster: runs the full CuCC three-phase workflow with node
// messages carried over loopback TCP (stdlib net) instead of in-process
// mailboxes — every Allgather chunk really crosses a socket, exercising
// the wire framing, lazy dials, and per-connection serialization of the
// transport layer.
package main

import (
	"fmt"
	"log"
	"time"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/machine"
	"cucc/internal/simnet"
	"cucc/internal/suites"
)

func main() {
	prog := suites.FIR()
	const nodes = 4

	c, err := cluster.New(cluster.Config{
		Nodes:     nodes,
		Machine:   machine.Intel6226(),
		Net:       simnet.IB100(),
		Transport: cluster.TCP,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Printf("%d-node cluster over loopback TCP sockets\n", nodes)

	inst, err := prog.Build(c, prog.Small)
	if err != nil {
		log.Fatal(err)
	}
	sess := core.NewSession(c, prog.Compiled)
	sess.Verify = true

	start := time.Now()
	stats, err := sess.Launch(inst.Spec)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	if err := inst.Check(); err != nil {
		log.Fatalf("output check failed: %v", err)
	}
	fmt.Printf("FIR executed and verified: %d blocks/node + %d callbacks\n",
		stats.BlocksPerNode, stats.CallbackBlocks)
	fmt.Printf("allgather over TCP: %d bytes per node, %d messages total\n",
		stats.CommBytesPerNode, stats.CommMsgs)
	fmt.Printf("wall-clock %v; simulated cluster time %.3f ms\n", wall.Round(time.Microsecond), stats.TotalSec*1e3)

	// Per-node transport counters prove traffic actually flowed.
	for r := 0; r < nodes; r++ {
		n := c.Node(r)
		fmt.Printf("  node %d sent %d messages (%d bytes), received %d (%d bytes)\n",
			r, n.Comm.Msgs, n.Comm.BytesSent, n.Comm.Recvs, n.Comm.BytesRecvd)
	}
}

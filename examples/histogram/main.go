// Porting guide: from a non-distributable kernel to a distributable one.
//
// The classic atomicAdd histogram is one of the four Hetero-Mark kernels
// the paper's coverage study rejects for overlapping write intervals
// (Figure 7): every block writes the same bins, so no partition of blocks
// has disjoint write intervals and CuCC can only replicate the kernel on
// every node.  The standard privatization rewrite — per-block shared-memory
// histograms flushed to a block-indexed partials row, plus a reduce
// kernel — turns it into two Allgather-distributable kernels.
//
// This example runs both versions on an 8-node cluster, shows the
// analysis verdicts, verifies both produce identical bins, and compares
// the simulated runtimes.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cucc/internal/cluster"
	"cucc/internal/machine"
	"cucc/internal/simnet"
	"cucc/internal/suites"
)

func main() {
	atomicProg, ported := suites.HistogramPrograms()
	fmt.Println("analysis verdicts:")
	fmt.Println("  original:", atomicProg.Meta["hist_atomic"].Summary())
	fmt.Println("  ported:  ", ported.Meta["hist_private"].Summary())
	fmt.Println("           ", ported.Meta["hist_reduce"].Summary())
	fmt.Println()

	const n, nbins, nodes = 200000, 64, 8
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(rng.Intn(64))
	}

	newCluster := func() *cluster.Cluster {
		c, err := cluster.New(cluster.Config{Nodes: nodes, Machine: machine.Intel6226(), Net: simnet.IB100()})
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	ca := newCluster()
	defer ca.Close()
	atomicBins, atomicStats, err := suites.RunHistogramAtomic(ca, data, nbins)
	if err != nil {
		log.Fatal(err)
	}
	cp := newCluster()
	defer cp.Close()
	portedBins, portedStats, err := suites.RunHistogramPorted(cp, data, nbins)
	if err != nil {
		log.Fatal(err)
	}

	for i := range atomicBins {
		if atomicBins[i] != portedBins[i] {
			log.Fatalf("bin %d differs: %d vs %d", i, atomicBins[i], portedBins[i])
		}
	}
	fmt.Printf("both versions agree on all %d bins over %d elements\n\n", nbins, n)

	portedTotal := portedStats[0].TotalSec + portedStats[1].TotalSec
	fmt.Printf("original (replicated on every node):  %8.1f us\n", atomicStats.TotalSec*1e6)
	fmt.Printf("ported   (distributed, two kernels):  %8.1f us  (%.2fx faster on %d nodes)\n",
		portedTotal*1e6, atomicStats.TotalSec/portedTotal, nodes)
	fmt.Printf("  hist_private: %d blocks/node, allgather %d bytes/node\n",
		portedStats[0].BlocksPerNode, portedStats[0].CommBytesPerNode)
	fmt.Printf("  hist_reduce:  %d callback blocks (one wave)\n", portedStats[1].CallbackBlocks)
}

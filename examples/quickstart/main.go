// Quickstart: the paper's running example (Listing 1 / Figure 5).
//
// Compiles the vec_copy CUDA kernel, runs the Allgather-distributable
// analysis, and executes it on a simulated 2-node CPU cluster with the
// three-phase workflow: blocks 0-1 on node 0, blocks 2-3 on node 1, one
// balanced-in-place Allgather, then block 4 (the tail-divergent callback
// block) on both nodes.
package main

import (
	"fmt"
	"log"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/simnet"
)

const source = `
__global__ void vec_copy(char *src, char *dest, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n)
        dest[id] = src[id];
}
`

func main() {
	// 1. Compile: mini-CUDA -> IR -> Allgather-distributable analysis.
	prog, err := core.Compile(source)
	if err != nil {
		log.Fatal(err)
	}
	md := prog.Meta["vec_copy"]
	fmt.Println("compiler analysis:", md.Summary())

	// 2. Build a 2-node cluster (SIMD-Focused nodes, 100 Gb/s IB).
	c, err := cluster.New(cluster.Config{
		Nodes:   2,
		Machine: machine.Intel6226(),
		Net:     simnet.IB100(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// 3. Allocate device buffers (identical on every node) and upload.
	const n = 1200
	src := c.Alloc(kir.U8, n)
	dest := c.Alloc(kir.U8, n)
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i)
	}
	if err := c.WriteAll(src, data); err != nil {
		log.Fatal(err)
	}

	// 4. Launch with the paper's configuration: ceil(1200/256) = 5 blocks.
	sess := core.NewSession(c, prog)
	sess.Verify = true // re-check cross-node consistency after the launch
	stats, err := sess.Launch(core.LaunchSpec{
		Kernel: "vec_copy",
		Grid:   interp.Dim1(5),
		Block:  interp.Dim1(256),
		Args:   []core.Arg{core.BufArg(src), core.BufArg(dest), core.IntArg(n)},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("three-phase execution (Figure 5):\n")
	fmt.Printf("  phase 1: %d blocks per node (blocks 0-1 on node 0, 2-3 on node 1)\n", stats.BlocksPerNode)
	fmt.Printf("  phase 2: balanced-in-place Allgather, %d bytes per node\n", stats.CommBytesPerNode)
	fmt.Printf("  phase 3: %d callback block (the tail block) on every node\n", stats.CallbackBlocks)
	fmt.Printf("simulated time: %.1f us (compute %.1f + comm %.1f + callback %.1f)\n",
		stats.TotalSec*1e6, stats.Phase1Sec*1e6, stats.CommSec*1e6, stats.CallbackSec*1e6)

	// 5. Verify the result on both nodes.
	for r := 0; r < c.N(); r++ {
		out := c.Region(r, dest)
		for i := range data {
			if out[i] != data[i] {
				log.Fatalf("node %d: dest[%d] = %d, want %d", r, i, out[i], data[i])
			}
		}
	}
	fmt.Println("dest verified on every node: the cluster state matches single-GPU semantics")
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/csched"
	"cucc/internal/machine"
	"cucc/internal/prof"
	"cucc/internal/serve"
	"cucc/internal/simnet"
	"cucc/internal/suites"
)

// engineBenchResult is one (program, engine) timing row of the -json report.
type engineBenchResult struct {
	Program      string  `json:"program"`
	Kernel       string  `json:"kernel"`
	Engine       string  `json:"engine"`
	Workers      int     `json:"workers"`
	Blocks       int     `json:"blocks"`
	Iters        int     `json:"iters"`
	NsPerOp      int64   `json:"ns_per_op"`
	BlocksPerSec float64 `json:"blocks_per_sec"`
}

type engineBenchSpeedup struct {
	Program      string  `json:"program"`
	VMOverInterp float64 `json:"vm_over_interp"`
	LanesOverVM  float64 `json:"vm_lanes_over_vm"`
}

type engineBenchReport struct {
	// SchemaVersion and Config let cuccprof -compare refuse diffs between
	// reports produced under different run configurations (see
	// prof.CompareBench); bump the version when the row format changes.
	SchemaVersion int                  `json:"schema_version"`
	Date          string               `json:"date"`
	Workers       int                  `json:"workers"`
	Config        prof.BenchConfig     `json:"config"`
	Results       []engineBenchResult  `json:"results"`
	Speedups      []engineBenchSpeedup `json:"speedups"`
	// Collectives compares the phase-2 schedule compiler against the
	// legacy ring at paper scale (simulated time, so deterministic and
	// ignored by cuccprof -compare, which diffs wall-clock rows only).
	Collectives []collectiveBenchResult `json:"collectives,omitempty"`
	// Service is the schema-v3 cuccd saturation sweep (open-loop load
	// against a loopback server; see serve.ServiceBench).  cuccprof
	// -compare diffs its qps and p99 per (scenario, rate).
	Service []prof.ServiceResult `json:"service,omitempty"`
}

// collectiveBenchResult is one (program, nodes, -collective choice) row of
// the simulated-time schedule comparison.  ZeroCommTotalSec is the WhatIf
// "free Allgather" floor of the legacy row: overlap rows must land between
// it and the legacy total.
type collectiveBenchResult struct {
	Program          string  `json:"program"`
	Nodes            int     `json:"nodes"`
	Choice           string  `json:"choice"`
	Algo             string  `json:"algo,omitempty"`
	TotalSec         float64 `json:"total_sec"`
	CommSec          float64 `json:"comm_sec"`
	OverlapSec       float64 `json:"overlap_sec,omitempty"`
	ZeroCommTotalSec float64 `json:"zero_comm_total_sec,omitempty"`
}

// writeEngineBench times every evaluation-suite program at Small scale on a
// 1-node cluster under both IR engines (register-machine vm and reference
// interpreter) and writes a JSON report.  The IR path is forced with
// UseInterp so the native backends don't mask engine cost.
func writeEngineBench(path string, workers int) error {
	if workers <= 0 {
		// Engine cost is a per-worker property; W=1 isolates it from
		// pool scheduling.
		workers = 1
	}
	engines := []cluster.Engine{cluster.EngineVM, cluster.EngineVMLanes, cluster.EngineInterp}
	progs := suites.Registry()

	rep := engineBenchReport{
		SchemaVersion: prof.BenchSchemaVersion,
		Date:          time.Now().UTC().Format("2006-01-02"),
		Workers:       workers,
		Config: prof.BenchConfig{
			Engines: []string{cluster.EngineVM.String(), cluster.EngineVMLanes.String(), cluster.EngineInterp.String()},
			Workers: workers,
			Nodes:   1, // timeEngine always runs single-node
			// FaultSeed stays 0: the engine bench never injects faults.
		},
	}
	for _, p := range progs {
		perEngine := map[cluster.Engine]float64{}
		for _, eng := range engines {
			res, err := timeEngine(p, eng, workers)
			if err != nil {
				return fmt.Errorf("engine bench %s/%s: %w", p.Name, eng, err)
			}
			rep.Results = append(rep.Results, res)
			perEngine[eng] = float64(res.NsPerOp)
			fmt.Printf("  %-16s %-7s %12d ns/op  %12.0f blocks/s\n",
				p.Name, eng, res.NsPerOp, res.BlocksPerSec)
		}
		rep.Speedups = append(rep.Speedups, engineBenchSpeedup{
			Program:      p.Name,
			VMOverInterp: perEngine[cluster.EngineInterp] / perEngine[cluster.EngineVM],
			LanesOverVM:  perEngine[cluster.EngineVM] / perEngine[cluster.EngineVMLanes],
		})
	}
	coll, err := collectiveBench(progs)
	if err != nil {
		return err
	}
	rep.Collectives = coll

	fmt.Println("service bench (cuccd over loopback):")
	svc, err := serve.ServiceBench(serve.ServiceBenchConfig{})
	if err != nil {
		return fmt.Errorf("service bench: %w", err)
	}
	rep.Service = svc

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote engine benchmark to %s\n", path)
	return nil
}

// collectiveBench estimates every program at paper scale under the legacy
// ring, the auto-selected schedule, and auto with phase-3 overlap, per
// node count.  Pure cost model (core.Estimate), so the rows are exact and
// deterministic; non-distributed programs (no phase 2) are skipped.
func collectiveBench(progs []*suites.Program) ([]collectiveBenchResult, error) {
	choices := []string{"", "auto", "auto+overlap"}
	var out []collectiveBenchResult
	for _, p := range progs {
		for _, nodes := range []int{8, 32} {
			var legacy *core.Stats
			for _, cs := range choices {
				choice, err := csched.ParseChoice(cs)
				if err != nil {
					return nil, err
				}
				c, err := cluster.New(cluster.Config{Nodes: nodes, Machine: machine.Intel6226(), Net: simnet.IB100()})
				if err != nil {
					return nil, err
				}
				sess := core.NewSession(c, p.Compiled)
				sess.Collective = choice
				st, err := sess.Estimate(p.Spec(p.Default))
				c.Close()
				if err != nil {
					return nil, fmt.Errorf("collective bench %s @%d nodes: %w", p.Name, nodes, err)
				}
				if !st.Distributed || st.CommSec == 0 {
					break // no phase 2, nothing to compare
				}
				row := collectiveBenchResult{
					Program: p.Name, Nodes: nodes, Choice: cs,
					Algo: st.CollectiveAlgo, TotalSec: st.TotalSec,
					CommSec: st.CommSec, OverlapSec: st.OverlapSec,
				}
				if cs == "" {
					row.Choice = "legacy-ring"
					row.ZeroCommTotalSec = st.TotalSec - st.CommSec
					legacy = st
				}
				out = append(out, row)
				fmt.Printf("  %-16s %2d nodes  %-12s %-12s total %.3fs  comm %.3fs  overlap %.3fs\n",
					p.Name, nodes, row.Choice, row.Algo, row.TotalSec, row.CommSec, row.OverlapSec)
				if legacy != nil && st.TotalSec > legacy.TotalSec*(1+1e-9) {
					return nil, fmt.Errorf("collective bench %s @%d nodes: %s total %.6fs worse than legacy %.6fs",
						p.Name, nodes, cs, st.TotalSec, legacy.TotalSec)
				}
			}
		}
	}
	return out, nil
}

// timeEngine runs one program repeatedly under one engine until the sample
// is long enough to trust (>=3 iterations and >=200ms of kernel time).
func timeEngine(p *suites.Program, eng cluster.Engine, workers int) (engineBenchResult, error) {
	c, err := cluster.New(cluster.Config{Nodes: 1, Machine: machine.Intel6226(), Net: simnet.IB100()})
	if err != nil {
		return engineBenchResult{}, err
	}
	defer c.Close()
	inst, err := p.Build(c, p.Small)
	if err != nil {
		return engineBenchResult{}, err
	}
	inst.Spec.UseInterp = true
	sess := core.NewSession(c, p.Compiled)
	sess.Host.Workers = workers
	sess.Host.Engine = eng
	blocks := inst.Spec.Grid.Count()

	// Warm up (compiles and caches the vm program, touches all buffers).
	if _, err := sess.Launch(inst.Spec); err != nil {
		return engineBenchResult{}, err
	}
	const minIters = 3
	const minDur = 200 * time.Millisecond
	iters := 0
	start := time.Now()
	var elapsed time.Duration
	for iters < minIters || elapsed < minDur {
		if _, err := sess.Launch(inst.Spec); err != nil {
			return engineBenchResult{}, err
		}
		iters++
		elapsed = time.Since(start)
	}
	ns := elapsed.Nanoseconds() / int64(iters)
	return engineBenchResult{
		Program:      p.Name,
		Kernel:       p.Kernel,
		Engine:       eng.String(),
		Workers:      workers,
		Blocks:       blocks,
		Iters:        iters,
		NsPerOp:      ns,
		BlocksPerSec: float64(blocks) * float64(iters) / elapsed.Seconds(),
	}, nil
}

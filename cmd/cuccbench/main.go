// Command cuccbench regenerates the paper's tables and figures as text
// reports from the repository's implementations.
//
// Usage:
//
//	cuccbench            # all figures
//	cuccbench -fig 8     # one figure (1, 3, 4, 7, 8, 9, 10, 11, 12, 13)
//	cuccbench -table 1   # Table 1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/csched"
	"cucc/internal/experiments"
	"cucc/internal/machine"
	"cucc/internal/metrics"
	"cucc/internal/recovery"
	"cucc/internal/suites"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate (0 = all)")
	table := flag.Int("table", 0, "table number to regenerate")
	csvDir := flag.String("csv", "", "also write per-figure CSV data files into this directory")
	workers := flag.Int("workers", 0, "intra-node worker-pool width for really-executed experiments (0 = all CPUs)")
	recvTimeout := flag.Duration("recv-timeout", 2*time.Minute, "transport receive deadline for really-executed experiments; a hung rank fails the sweep instead of wedging it (0 = no deadline)")
	engine := flag.String("engine", "vm", "IR execution engine for really-executed experiments: vm (register machine), vm-lanes (lane-batched vm), or interp (reference interpreter)")
	collective := flag.String("collective", "", "phase-2 collective schedule: auto, ring, recdouble, twolevel, pipeline[:N]; append +overlap to start callbacks while chunks are in flight (default: legacy hand-written ring)")
	recover := flag.Bool("recover", false, "enable elastic fault recovery for really-executed experiments (checkpoint + re-partition + replay on rank loss)")
	jsonOut := flag.String("json", "", "instead of figures, run the engine microbenchmark (vm vs interp over the evaluation suite) and write a JSON report to this file")
	metricsOut := flag.String("metrics-out", "", "enable the metrics registry for the whole run and write its JSON snapshot to this file")
	flag.Parse()

	// Sessions and clusters are created deep inside the experiment
	// sweeps; the process-wide defaults carry the flags there without
	// plumbing.
	core.DefaultWorkers = *workers
	cluster.DefaultRecvTimeout = *recvTimeout
	eng, err := cluster.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	core.DefaultEngine = eng
	coll, err := csched.ParseChoice(*collective)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	core.DefaultCollective = coll
	if *recover {
		core.DefaultRecovery = recovery.Policy{Enabled: true}
	}
	if *metricsOut != "" {
		// Same mechanism: clusters built inside the sweeps inherit the
		// process default registry.
		reg := metrics.New()
		metrics.SetDefault(reg)
		defer func() {
			data, err := reg.Snapshot().JSON()
			if err == nil {
				err = os.WriteFile(*metricsOut, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("metrics snapshot written to %s\n", *metricsOut)
		}()
	}

	if *jsonOut != "" {
		if err := writeEngineBench(*jsonOut, *workers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *csvDir != "" {
		if err := experiments.WriteCSVs(*csvDir, suites.All()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d CSV files to %s\n", len(experiments.CSVFiles()), *csvDir)
	}

	if *table == 1 {
		fmt.Print(experiments.Table1String())
		return
	}
	if *table != 0 {
		fmt.Fprintf(os.Stderr, "unknown table %d\n", *table)
		os.Exit(2)
	}

	progs := suites.All()
	want := func(n int) bool { return *fig == 0 || *fig == n }

	if want(1) {
		fmt.Println(experiments.Fig1())
	}
	if want(3) {
		fmt.Println(experiments.Fig3String(experiments.Fig3(64 << 20)))
	}
	var simdRows []experiments.ScalingRow
	if want(4) || want(8) || want(9) || want(10) {
		simdRows = experiments.Scaling(progs, machine.Intel6226(), experiments.SIMDNodes)
	}
	if want(4) {
		fmt.Println(fig4String(simdRows))
	}
	if want(7) {
		fmt.Println(fig7String())
	}
	if want(8) {
		fmt.Println(experiments.SpeedupString(simdRows, "Figure 8a: CuCC strong scaling, SIMD-Focused cluster"))
		threadRows := experiments.Scaling(progs, machine.AMD7713(), experiments.ThreadNodes)
		fmt.Println(experiments.SpeedupString(threadRows, "Figure 8b: CuCC strong scaling, Thread-Focused cluster"))
	}
	if want(9) {
		fmt.Println(experiments.Fig9String(simdRows))
	}
	if want(10) {
		fmt.Println(experiments.Fig10(simdRows))
	}
	if want(11) {
		fmt.Println(experiments.Fig11String(experiments.Fig11(progs)))
	}
	if want(12) {
		rs, avg := experiments.Fig12(progs)
		fmt.Println(experiments.Fig12String(rs, avg))
	}
	if want(13) {
		fmt.Println(experiments.Fig13String(experiments.Fig13(progs)))
	}
	if want(14) {
		// §8.4 has no figure number; -fig 14 selects it.
		fmt.Println(experiments.EnergyString(experiments.Energy(progs)))
	}
	if want(15) {
		// Beyond the paper: weak scaling (-fig 15) and the §8.2 SIMD-off
		// ablation (-fig 15 prints both).
		fmt.Println(experiments.WeakScalingString(experiments.WeakScaling(progs, []int{1, 2, 4, 8, 16, 32})))
		fmt.Println(experiments.SIMDOffString(experiments.SIMDOff(progs)))
	}
	if *fig == 0 {
		fmt.Print(experiments.Table1String())
	}
}

func fig4String(rows []experiments.ScalingRow) string {
	out := "Figure 4: PGAS migration scalability (speedup over 1 node, SIMD-Focused)\n"
	out += fmt.Sprintf("  %-15s", "program")
	for _, n := range rows[0].Nodes {
		out += fmt.Sprintf("  %5dN", n)
	}
	out += "\n"
	for _, r := range rows {
		out += fmt.Sprintf("  %-15s", r.Program)
		for i := range r.Nodes {
			out += fmt.Sprintf("  %5.2fx", r.PGASSec[0]/r.PGASSec[i])
		}
		out += "\n"
	}
	return out
}

func fig7String() string {
	out := "Figure 7: Allgather-distributable coverage\n"
	for _, c := range suites.CountCoverage() {
		out += fmt.Sprintf("  %-12s %2d/%2d distributable (%d overlapping writes, %d indirect)\n",
			c.Suite, c.Distributable, c.Total, c.Overlap, c.Indirect)
	}
	return out
}

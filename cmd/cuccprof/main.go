// Command cuccprof diagnoses CuCC runs: it extracts the critical path,
// straggler and load-imbalance reports, and what-if estimates from a
// recorded timeline, and diffs benchmark/metrics snapshots for regressions.
//
// Usage:
//
//	cuccprof -trace run.trace.json                   # diagnose a recorded Chrome trace
//	cuccprof -trace run.trace.json -metrics m.json   # ... with a metrics snapshot attached
//	cuccprof -prog FIR -nodes 4                      # run the program, then diagnose it
//	cuccprof -suite -nodes 4                         # run and diagnose every evaluation program
//	cuccprof -prog FIR -nodes 4 -vmprofile           # also collect the VM opcode profile
//	cuccprof -compare old.json new.json              # diff two cuccbench -json or metrics
//	                                                 # snapshots; exit 1 on regressions
//	cuccprof -postmortem postmortem-job7.json        # render a cuccd flight-recorder
//	                                                 # dump as a failure timeline
//
// Exit codes: 0 clean, 1 regressions or failed runs, 2 usage / input errors.
// A -postmortem dump that parses exits 0: the dump records an already-handled
// failure or recovery, so rendering it is not itself a failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/machine"
	"cucc/internal/metrics"
	"cucc/internal/obs"
	"cucc/internal/prof"
	"cucc/internal/simnet"
	"cucc/internal/suites"
	"cucc/internal/trace"
	"cucc/internal/vm"
)

func main() {
	tracePath := flag.String("trace", "", "diagnose a Chrome trace-event JSON file (written by cuccrun -trace or cuccprof -prog)")
	metricsPath := flag.String("metrics", "", "attach a metrics snapshot JSON (written by cuccrun -metrics-out)")
	progName := flag.String("prog", "", "run this evaluation program on a simulated cluster, then diagnose it")
	suite := flag.Bool("suite", false, "run and diagnose every evaluation program")
	nodes := flag.Int("nodes", 4, "cluster node count for -prog/-suite")
	workers := flag.Int("workers", 0, "intra-node worker-pool width (0 = all CPUs)")
	engine := flag.String("engine", "vm", "IR engine for -prog/-suite: vm, vm-lanes, or interp")
	vmProfile := flag.Bool("vmprofile", false, "collect the VM opcode profile during -prog/-suite (forces the IR path)")
	jsonOut := flag.Bool("json", false, "emit JSON instead of the human table")
	compare := flag.Bool("compare", false, "compare two report files (cuccbench -json or metrics snapshots): cuccprof -compare old.json new.json")
	postmortem := flag.String("postmortem", "", "render a cuccd flight-recorder dump (postmortem-job<id>.json) as a failure timeline")
	threshold := flag.Float64("threshold", 0.10, "fractional regression threshold for -compare (0.10 = 10%)")
	traceOut := flag.String("trace-out", "", "with -prog/-suite: also write the recorded Chrome trace here")
	allowTruncated := flag.Bool("allow-truncated", false, "analyze a -trace file even if its capped recorder dropped events (figures then cover only the retained window)")
	flag.Parse()

	switch {
	case *compare:
		args := flag.Args()
		if len(args) != 2 {
			fatalf(2, "-compare needs exactly two files: cuccprof -compare old.json new.json")
		}
		os.Exit(runCompare(args[0], args[1], *threshold, *jsonOut))
	case *postmortem != "":
		os.Exit(runPostmortem(*postmortem, *jsonOut))
	case *tracePath != "":
		os.Exit(runTraceDiagnosis(*tracePath, *metricsPath, *jsonOut, *allowTruncated))
	case *progName != "" || *suite:
		os.Exit(runProgDiagnosis(progConfig{
			prog: *progName, suite: *suite, nodes: *nodes, workers: *workers,
			engine: *engine, vmProfile: *vmProfile, jsonOut: *jsonOut,
			traceOut: *traceOut,
		}))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatalf(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}

// --- trace-file mode ---

// runTraceDiagnosis analyzes a serialized trace (plus an optional metrics
// snapshot) and prints the diagnosis.  Returns the process exit code.
func runTraceDiagnosis(tracePath, metricsPath string, jsonOut, allowTruncated bool) int {
	rep, snap, err := diagnoseTraceFile(tracePath, metricsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if rep.DroppedEvents > 0 && !allowTruncated {
		fmt.Fprintf(os.Stderr, "cuccprof: %s is truncated: the capped recorder dropped %d events, so the critical path and straggler figures would describe only the retained window; pass -allow-truncated to analyze it anyway\n",
			tracePath, rep.DroppedEvents)
		return 2
	}
	if jsonOut {
		raw, err := json.MarshalIndent(diagnosisOutput{Diagnosis: rep, Metrics: snap}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Println(string(raw))
	} else {
		fmt.Print(rep.Table())
		if snap != nil {
			fmt.Printf("\nmetrics snapshot (%s):\n%s", metricsPath, snap.Table())
		}
	}
	if len(rep.Failures) > 0 {
		return 1
	}
	return 0
}

// diagnosisOutput is the -json envelope of the diagnosis modes.
type diagnosisOutput struct {
	Diagnosis  *prof.Report       `json:"diagnosis"`
	Metrics    *metrics.Snapshot  `json:"metrics,omitempty"`
	VMProfiles []vm.KernelProfile `json:"vm_profiles,omitempty"`
}

func diagnoseTraceFile(tracePath, metricsPath string) (*prof.Report, *metrics.Snapshot, error) {
	data, err := os.ReadFile(tracePath)
	if err != nil {
		return nil, nil, err
	}
	events, dropped, err := trace.ParseChromeDropped(data)
	if err != nil {
		return nil, nil, err
	}
	var snap *metrics.Snapshot
	if metricsPath != "" {
		mdata, err := os.ReadFile(metricsPath)
		if err != nil {
			return nil, nil, err
		}
		s, err := metrics.ParseSnapshot(mdata)
		if err != nil {
			return nil, nil, err
		}
		snap = &s
	}
	rep := prof.Analyze(events, nil)
	rep.DroppedEvents = dropped
	return rep, snap, nil
}

// --- run-and-diagnose mode ---

type progConfig struct {
	prog      string
	suite     bool
	nodes     int
	workers   int
	engine    string
	vmProfile bool
	jsonOut   bool
	traceOut  string
}

func runProgDiagnosis(cfg progConfig) int {
	eng, err := cluster.ParseEngine(cfg.engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	all := append([]*suites.Program{suites.VecAdd()}, suites.All()...)
	var progs []*suites.Program
	if cfg.suite {
		progs = all
	} else {
		for _, p := range all {
			if strings.EqualFold(p.Name, cfg.prog) {
				progs = append(progs, p)
			}
		}
		if len(progs) == 0 {
			fatalf(2, "unknown program %q", cfg.prog)
		}
	}

	if cfg.vmProfile {
		vm.SetProfiling(true)
		vm.ResetProfiles()
		defer vm.SetProfiling(false)
	}

	rec := trace.New()
	var lastStats *core.Stats
	for _, p := range progs {
		c, err := cluster.New(cluster.Config{Nodes: cfg.nodes, Machine: machine.Intel6226(), Net: simnet.IB100()})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		inst, err := p.Build(c, p.Small)
		if err != nil {
			c.Close()
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if cfg.vmProfile {
			// The opcode profiler lives in the IR engines; keep the native
			// fast path from short-circuiting them.
			inst.Spec.UseInterp = true
		}
		sess := core.NewSession(c, p.Compiled)
		sess.Host.Workers = cfg.workers
		sess.Host.Engine = eng
		sess.Trace = rec
		stats, err := sess.Launch(inst.Spec)
		c.Close()
		if err != nil {
			// The abort/timeout event is in the trace; diagnose what ran.
			fmt.Fprintf(os.Stderr, "%s: launch failed: %v\n", p.Name, err)
			continue
		}
		lastStats = stats
	}

	events := rec.Events()
	rep := prof.Analyze(events, statsIfSingle(progs, lastStats))
	rep.DroppedEvents = rec.Dropped()
	if lastStats != nil && len(progs) == 1 {
		// Model-based what-if from the launch statistics (the same
		// decomposition core.Estimate uses) beats the event-derived one
		// when we ran the program ourselves: it knows the block counts.
		rep.WhatIf = prof.WhatIfFromStats(lastStats)
	}

	var profiles []vm.KernelProfile
	if cfg.vmProfile {
		profiles = vm.Profiles()
	}

	if cfg.traceOut != "" {
		raw, err := rec.ChromeTrace()
		if err == nil {
			err = os.WriteFile(cfg.traceOut, raw, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	if cfg.jsonOut {
		raw, err := json.MarshalIndent(diagnosisOutput{Diagnosis: rep, VMProfiles: profiles}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Println(string(raw))
	} else {
		fmt.Print(rep.Table())
		if len(profiles) > 0 {
			fmt.Print(vmProfileTable(profiles))
		}
	}
	if len(rep.Failures) > 0 {
		return 1
	}
	return 0
}

// statsIfSingle attaches launch statistics only when they describe the whole
// timeline (a single program); a suite's trace mixes launches with different
// block partitions.
func statsIfSingle(progs []*suites.Program, stats *core.Stats) *core.Stats {
	if len(progs) == 1 {
		return stats
	}
	return nil
}

// vmProfileTable renders the opcode profiler's findings: dynamic instruction
// mix and the hottest back edges (loops) per kernel.
func vmProfileTable(profiles []vm.KernelProfile) string {
	var b strings.Builder
	b.WriteString("\nvm opcode profile:\n")
	for _, kp := range profiles {
		fmt.Fprintf(&b, "  kernel %s: %d instructions over %d basic blocks\n",
			kp.Kernel, kp.Instructions, kp.Blocks)
		top := kp.Opcodes
		if len(top) > 8 {
			top = top[:8]
		}
		for _, oc := range top {
			share := 100 * float64(oc.Count) / float64(kp.Instructions)
			fmt.Fprintf(&b, "    %-10s %12d  %5.1f%%\n", oc.Op, oc.Count, share)
		}
		for i, be := range kp.BackEdges {
			if i >= 3 {
				break
			}
			fmt.Fprintf(&b, "    back edge pc %d -> %d: %d iterations\n", be.PC, be.Target, be.Count)
		}
	}
	return b.String()
}

// --- post-mortem mode ---

// runPostmortem renders a flight-recorder dump written by cuccd: the job's
// journal window as a failure timeline, the recovery/launch counters, and
// the trace diagnosis over the retained trace window.  A dump that parses
// exits 0 — it documents a failure the server already handled.
func runPostmortem(path string, jsonOut bool) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	dump, err := obs.ParseDump(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cuccprof: %s: %v\n", path, err)
		return 2
	}
	rep := prof.AnalyzePostmortem(dump)
	if jsonOut {
		raw, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Println(string(raw))
	} else {
		fmt.Print(rep.Table())
	}
	return 0
}

// --- compare mode ---

// runCompare diffs two report files.  The kind (bench report vs metrics
// snapshot) is detected from the JSON shape; mixing kinds is refused.
func runCompare(oldPath, newPath string, threshold float64, jsonOut bool) int {
	cmp, err := compareFiles(oldPath, newPath, threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if jsonOut {
		raw, err := cmp.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Println(string(raw))
	} else {
		fmt.Print(cmp.Table())
	}
	if cmp.Regressions() > 0 {
		return 1
	}
	return 0
}

func compareFiles(oldPath, newPath string, threshold float64) (*prof.Comparison, error) {
	oldData, err := os.ReadFile(oldPath)
	if err != nil {
		return nil, err
	}
	newData, err := os.ReadFile(newPath)
	if err != nil {
		return nil, err
	}
	oldBench, oldErr := prof.ParseBenchReport(oldData)
	newBench, newErr := prof.ParseBenchReport(newData)
	switch {
	case oldErr == nil && newErr == nil:
		return prof.CompareBench(oldBench, newBench, threshold)
	case oldErr == nil || newErr == nil:
		return nil, fmt.Errorf("cuccprof: %s and %s are different report kinds", oldPath, newPath)
	}
	oldSnap, oldErr := metrics.ParseSnapshot(oldData)
	if oldErr != nil {
		return nil, fmt.Errorf("cuccprof: %s is neither a bench report nor a metrics snapshot: %v", oldPath, oldErr)
	}
	newSnap, newErr := metrics.ParseSnapshot(newData)
	if newErr != nil {
		return nil, fmt.Errorf("cuccprof: %s is neither a bench report nor a metrics snapshot: %v", newPath, newErr)
	}
	return prof.CompareMetrics(oldSnap, newSnap, threshold), nil
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cucc/internal/trace"
)

// writeSkewedTrace serializes the canonical synthetic diagnosis input: a
// 4-rank run where rank 2's partial phase is 3x slower and the Allgather
// dominates, as a Chrome trace file.
func writeSkewedTrace(t *testing.T) string {
	t.Helper()
	r := trace.New()
	for rank := 0; rank < 4; rank++ {
		dur := 0.010
		if rank == 2 {
			dur = 0.030
		}
		r.Add(trace.Event{StartSec: 0, DurSec: dur, Node: rank,
			Phase: trace.PhasePartial, Kernel: "k"})
	}
	r.Add(trace.Event{StartSec: 0.030, DurSec: 0.050, Node: -1,
		Phase: trace.PhaseAllgather, Kernel: "k"})
	for rank := 0; rank < 4; rank++ {
		r.Add(trace.Event{StartSec: 0.080, DurSec: 0.005, Node: rank,
			Phase: trace.PhaseCallback, Kernel: "k"})
	}
	raw, err := r.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "skewed.trace.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDiagnoseSkewedTraceFile is the CLI acceptance check: diagnosing a
// synthetic skewed 4-node run names the injected straggler rank and the
// allgather-bound phase in both the table and the JSON output.
func TestDiagnoseSkewedTraceFile(t *testing.T) {
	path := writeSkewedTrace(t)
	rep, snap, err := diagnoseTraceFile(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Error("snapshot without -metrics")
	}

	table := rep.Table()
	for _, want := range []string{"straggler: rank 2", "bound by: allgather"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}

	raw, err := json.Marshal(diagnosisOutput{Diagnosis: rep})
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Diagnosis struct {
			BoundPhase    string `json:"bound_phase"`
			StragglerNode int    `json:"straggler_node"`
			Ranks         int    `json:"ranks"`
		} `json:"diagnosis"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Diagnosis.StragglerNode != 2 {
		t.Errorf("JSON straggler_node = %d, want 2", parsed.Diagnosis.StragglerNode)
	}
	if parsed.Diagnosis.BoundPhase != "allgather" {
		t.Errorf("JSON bound_phase = %q, want allgather", parsed.Diagnosis.BoundPhase)
	}
	if parsed.Diagnosis.Ranks != 4 {
		t.Errorf("JSON ranks = %d, want 4", parsed.Diagnosis.Ranks)
	}
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareFilesBench(t *testing.T) {
	old := writeFile(t, "old.json",
		`{"schema_version":1,"results":[{"program":"X","engine":"vm","ns_per_op":100}]}`)
	new := writeFile(t, "new.json",
		`{"schema_version":1,"results":[{"program":"X","engine":"vm","ns_per_op":150}]}`)
	cmp, err := compareFiles(old, new, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Kind != "bench" || cmp.Regressions() != 1 {
		t.Errorf("kind=%s regressions=%d, want bench/1", cmp.Kind, cmp.Regressions())
	}
}

func TestCompareFilesMetrics(t *testing.T) {
	old := writeFile(t, "old.json", `{"counters":{"a":1},"gauges":{},"histograms":{}}`)
	new := writeFile(t, "new.json", `{"counters":{"a":5},"gauges":{},"histograms":{}}`)
	cmp, err := compareFiles(old, new, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Kind != "metrics" || len(cmp.Rows) != 1 {
		t.Errorf("kind=%s rows=%d, want metrics/1", cmp.Kind, len(cmp.Rows))
	}
}

func TestCompareFilesKindMismatch(t *testing.T) {
	bench := writeFile(t, "bench.json",
		`{"schema_version":1,"results":[{"program":"X","engine":"vm","ns_per_op":100}]}`)
	metricsFile := writeFile(t, "metrics.json", `{"counters":{"a":1},"gauges":{},"histograms":{}}`)
	if _, err := compareFiles(bench, metricsFile, 0.10); err == nil {
		t.Error("mixing report kinds not refused")
	}
	garbage := writeFile(t, "garbage.json", `hello`)
	if _, err := compareFiles(garbage, garbage, 0.10); err == nil {
		t.Error("garbage accepted")
	}
}

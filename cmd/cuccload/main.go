// Command cuccload is the open-loop load generator for cuccd: it offers
// jobs at target Poisson rates (arrivals paced by the schedule, never by
// responses — the discipline that exposes queueing collapse instead of
// hiding it behind coordinated omission) and reports sustained QPS,
// latency quantiles, and reject rate per sweep point.
//
// Usage:
//
//	cuccload -addr localhost:9091 -rates 50,200          # drive a running cuccd
//	cuccload -rates 25,100,400 -jobs 200                 # self-hosted server on loopback
//	cuccload -mix tenant-a:VecAdd:3,tenant-b:FIR:1       # weighted tenant mix
//	cuccload -rates 40 -jobs 24 -slo-check               # SLO smoke: fetch /slo,
//	                                                     # assert finite budgets
//
// Each sweep row reports the exact sample quantiles (p50/p99/p999) plus
// the bucket-resolution histogram quantiles (hp50/hp90/hp99 — upper bound
// of the log2 bucket, the same estimator the /slo page uses).  With
// -slo-check the run self-hosts a journaled server, serves its /slo page
// on loopback, and exits nonzero unless every tenant's error-budget burn
// is finite and the page renders in both text and JSON.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"cucc/internal/obs"
	"cucc/internal/serve"
	"cucc/internal/throughput"
)

func main() {
	addr := flag.String("addr", "", "cuccd address to drive (empty = boot a server on loopback for the run)")
	ratesFlag := flag.String("rates", "50,200", "comma-separated target rates (jobs/sec) for the saturation sweep")
	jobs := flag.Int("jobs", 60, "arrivals offered per sweep point")
	mixFlag := flag.String("mix", "tenant-a:VecAdd:1,tenant-b:FIR:1", "tenant mix as tenant:program:share[,...]")
	seed := flag.Int64("seed", 1, "seed for the arrival schedule and tenant draws")
	deadline := flag.Duration("deadline", 10*time.Second, "per-job deadline passed with every submission (0 = server default)")
	executors := flag.Int("executors", 4, "self-hosted server: jobs run concurrently")
	queueCap := flag.Int("queue-cap", 32, "self-hosted server: admission queue bound")
	nodes := flag.Int("nodes", 2, "self-hosted server: default job cluster size")
	sloCheck := flag.Bool("slo-check", false, "self-host with a journal and SLOs, fetch /slo after the sweep, and fail unless it renders with finite error budgets")
	sloLatencyMs := flag.Float64("slo-latency-ms", 250, "latency objective applied to every tenant under -slo-check")
	sloTarget := flag.Float64("slo-target", 0.99, "attainment target under -slo-check")
	flag.Parse()

	rates, err := parseRates(*ratesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *sloCheck && *addr != "" {
		fmt.Fprintln(os.Stderr, "cuccload: -slo-check needs the self-hosted server (drop -addr)")
		os.Exit(2)
	}

	target := *addr
	var httpBase string
	if target == "" {
		cfg := serve.Config{
			QueueCap:  *queueCap,
			Executors: *executors,
			Nodes:     *nodes,
			Workers:   1,
		}
		if *sloCheck {
			cfg.Journal = obs.NewJournal(0)
			cfg.SLO = obs.SLOConfig{Default: obs.Objective{LatencyMs: *sloLatencyMs, Target: *sloTarget}}
			cfg.SampleEvery = 500 * time.Millisecond
		}
		srv := serve.NewServer(cfg)
		bound, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Drain()
		target = bound
		fmt.Printf("cuccload: self-hosted cuccd on %s (queue %d, executors %d)\n",
			bound, *queueCap, *executors)
		if *sloCheck {
			httpSrv := &http.Server{Handler: srv.HTTPMux()}
			hb, err := serveHTTP(httpSrv)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer httpSrv.Close()
			httpBase = hb
			fmt.Printf("cuccload: /slo and /events on http://%s\n", hb)
		}
	}

	client, err := serve.Dial(target)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer client.Close()

	base := throughput.LoadConfig{
		Jobs:     *jobs,
		Mix:      mix,
		Seed:     *seed,
		Deadline: *deadline,
	}
	results := throughput.SweepLoad(serve.ClientSubmitter{Client: client}, base, rates)

	fmt.Printf("%8s %8s %10s %10s %10s %10s %9s %9s %9s %8s %8s\n",
		"rate/s", "offered", "qps", "p50 ms", "p99 ms", "p999 ms",
		"hp50 ms", "hp90 ms", "hp99 ms", "reject", "errors")
	for _, r := range results {
		fmt.Printf("%8.0f %8d %10.1f %10.2f %10.2f %10.2f %9.2f %9.2f %9.2f %7.1f%% %8d\n",
			r.RatePerSec, r.Offered, r.QPS, r.P50Ms, r.P99Ms, r.P999Ms,
			r.Latency.P50()*1e3, r.Latency.P90()*1e3, r.Latency.P99()*1e3,
			r.RejectRate*100, r.Errors)
	}

	if *sloCheck {
		if err := checkSLO(httpBase); err != nil {
			fmt.Fprintln(os.Stderr, "cuccload: slo check FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("cuccload: slo check ok")
	}
}

// serveHTTP binds a loopback listener for the observability mux and serves
// it in the background, returning the bound address.
func serveHTTP(srv *http.Server) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// checkSLO is the `make slo` smoke assertion: the /slo page renders as
// text, parses as JSON, lists every tenant that saw traffic, and reports a
// finite, non-negative error-budget burn for each.
func checkSLO(base string) error {
	text, err := httpGet("http://" + base + "/slo")
	if err != nil {
		return err
	}
	if !strings.Contains(string(text), "tenant") {
		return fmt.Errorf("/slo page did not render a tenant table:\n%s", text)
	}
	body, err := httpGet("http://" + base + "/slo?format=json")
	if err != nil {
		return err
	}
	rows, err := obs.ParseSLO(body)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("/slo reported no tenants after the sweep")
	}
	for _, row := range rows {
		if math.IsInf(row.BudgetBurn, 0) || math.IsNaN(row.BudgetBurn) || row.BudgetBurn < 0 {
			return fmt.Errorf("tenant %s: error-budget burn %v is not finite and non-negative", row.Tenant, row.BudgetBurn)
		}
		if row.Attainment < 0 || row.Attainment > 1 {
			return fmt.Errorf("tenant %s: attainment %v outside [0,1]", row.Tenant, row.Attainment)
		}
		fmt.Printf("cuccload: slo %-12s attainment %6.2f%%  burn %.2f\n",
			row.Tenant, row.Attainment*100, row.BudgetBurn)
	}
	return nil
}

func httpGet(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad rate %q (want a positive number)", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rates given")
	}
	return out, nil
}

func parseMix(s string) ([]throughput.TenantMix, error) {
	var out []throughput.TenantMix
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.Split(item, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad mix entry %q (want tenant:program:share)", item)
		}
		share, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || share <= 0 {
			return nil, fmt.Errorf("bad share in %q (want a positive number)", item)
		}
		out = append(out, throughput.TenantMix{
			Tenant:  parts[0],
			Program: parts[1],
			Share:   share,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return out, nil
}

// Command cuccload is the open-loop load generator for cuccd: it offers
// jobs at target Poisson rates (arrivals paced by the schedule, never by
// responses — the discipline that exposes queueing collapse instead of
// hiding it behind coordinated omission) and reports sustained QPS,
// latency quantiles, and reject rate per sweep point.
//
// Usage:
//
//	cuccload -addr localhost:9091 -rates 50,200          # drive a running cuccd
//	cuccload -rates 25,100,400 -jobs 200                 # self-hosted server on loopback
//	cuccload -mix tenant-a:VecAdd:3,tenant-b:FIR:1       # weighted tenant mix
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cucc/internal/serve"
	"cucc/internal/throughput"
)

func main() {
	addr := flag.String("addr", "", "cuccd address to drive (empty = boot a server on loopback for the run)")
	ratesFlag := flag.String("rates", "50,200", "comma-separated target rates (jobs/sec) for the saturation sweep")
	jobs := flag.Int("jobs", 60, "arrivals offered per sweep point")
	mixFlag := flag.String("mix", "tenant-a:VecAdd:1,tenant-b:FIR:1", "tenant mix as tenant:program:share[,...]")
	seed := flag.Int64("seed", 1, "seed for the arrival schedule and tenant draws")
	deadline := flag.Duration("deadline", 10*time.Second, "per-job deadline passed with every submission (0 = server default)")
	executors := flag.Int("executors", 4, "self-hosted server: jobs run concurrently")
	queueCap := flag.Int("queue-cap", 32, "self-hosted server: admission queue bound")
	nodes := flag.Int("nodes", 2, "self-hosted server: default job cluster size")
	flag.Parse()

	rates, err := parseRates(*ratesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	target := *addr
	if target == "" {
		srv := serve.NewServer(serve.Config{
			QueueCap:  *queueCap,
			Executors: *executors,
			Nodes:     *nodes,
			Workers:   1,
		})
		bound, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Drain()
		target = bound
		fmt.Printf("cuccload: self-hosted cuccd on %s (queue %d, executors %d)\n",
			bound, *queueCap, *executors)
	}

	client, err := serve.Dial(target)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer client.Close()

	base := throughput.LoadConfig{
		Jobs:     *jobs,
		Mix:      mix,
		Seed:     *seed,
		Deadline: *deadline,
	}
	results := throughput.SweepLoad(serve.ClientSubmitter{Client: client}, base, rates)

	fmt.Printf("%8s %8s %10s %10s %10s %10s %8s %8s\n",
		"rate/s", "offered", "qps", "p50 ms", "p99 ms", "p999 ms", "reject", "errors")
	for _, r := range results {
		fmt.Printf("%8.0f %8d %10.1f %10.2f %10.2f %10.2f %7.1f%% %8d\n",
			r.RatePerSec, r.Offered, r.QPS, r.P50Ms, r.P99Ms, r.P999Ms,
			r.RejectRate*100, r.Errors)
	}
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad rate %q (want a positive number)", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rates given")
	}
	return out, nil
}

func parseMix(s string) ([]throughput.TenantMix, error) {
	var out []throughput.TenantMix
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.Split(item, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad mix entry %q (want tenant:program:share)", item)
		}
		share, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || share <= 0 {
			return nil, fmt.Errorf("bad share in %q (want a positive number)", item)
		}
		out = append(out, throughput.TenantMix{
			Tenant:  parts[0],
			Program: parts[1],
			Share:   share,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return out, nil
}

// Command cuccd is the compile+launch daemon: it accepts jobs (an
// evaluation-suite program by name, or inline mini-CUDA source with a
// kernel entry point and argument specs) over a length-prefixed JSON
// protocol, schedules them across tenants with deficit weighted
// round-robin, and runs each on an isolated simulated cluster with its
// own metrics registry and trace buffer.
//
// Usage:
//
//	cuccd -addr :9091                          # serve jobs on :9091
//	cuccd -addr :9091 -http localhost:9092     # plus /metrics and /jobs
//	cuccd -executors 4 -queue-cap 128          # wider admission
//
// SIGINT/SIGTERM drains gracefully: in-flight jobs finish, queued jobs
// are rejected, then the process exits.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cucc/internal/recovery"
	"cucc/internal/serve"
)

func main() {
	addr := flag.String("addr", "localhost:9091", "TCP address to serve the job protocol on")
	httpAddr := flag.String("http", "", "serve /metrics and /jobs on this HTTP address (empty = disabled)")
	queueCap := flag.Int("queue-cap", 64, "admission queue bound; submissions past it are rejected with a retry-after hint")
	executors := flag.Int("executors", 2, "jobs run concurrently")
	nodes := flag.Int("nodes", 4, "default job cluster size")
	maxNodes := flag.Int("max-nodes", 32, "cap on per-request cluster sizes")
	workers := flag.Int("workers", 1, "intra-node worker-pool width per job (0 = all CPUs)")
	recvTimeout := flag.Duration("recv-timeout", 30*time.Second, "per-job transport receive deadline")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-job deadline (queue wait + execution)")
	traceCap := flag.Int("trace-cap", 4096, "per-job trace capture bound (events)")
	recover := flag.Bool("recover", true, "elastic fault recovery for every job's cluster: on a rank loss, restore the barrier checkpoint and replay over the survivors instead of failing the job")
	flag.Parse()

	srv := serve.NewServer(serve.Config{
		QueueCap:        *queueCap,
		Executors:       *executors,
		Nodes:           *nodes,
		MaxNodes:        *maxNodes,
		Workers:         *workers,
		RecvTimeout:     *recvTimeout,
		DefaultDeadline: *deadline,
		TraceCap:        *traceCap,
		Recovery:        &recovery.Policy{Enabled: *recover},
	})

	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("cuccd: serving jobs on %s (queue %d, executors %d)\n", bound, *queueCap, *executors)

	var httpSrv *http.Server
	if *httpAddr != "" {
		httpSrv = &http.Server{Addr: *httpAddr, Handler: srv.HTTPMux()}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "cuccd: http:", err)
			}
		}()
		fmt.Printf("cuccd: /metrics and /jobs on http://%s\n", *httpAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("cuccd: %s, draining\n", got)
	srv.Drain()
	if httpSrv != nil {
		httpSrv.Close()
	}
	fmt.Println("cuccd: drained, exiting")
}

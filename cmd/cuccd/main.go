// Command cuccd is the compile+launch daemon: it accepts jobs (an
// evaluation-suite program by name, or inline mini-CUDA source with a
// kernel entry point and argument specs) over a length-prefixed JSON
// protocol, schedules them across tenants with deficit weighted
// round-robin, and runs each on an isolated simulated cluster with its
// own metrics registry and trace buffer.
//
// Usage:
//
//	cuccd -addr :9091                          # serve jobs on :9091
//	cuccd -addr :9091 -http localhost:9092     # plus the operational pages
//	cuccd -executors 4 -queue-cap 128          # wider admission
//	cuccd -slo tenant-a:250:0.99               # per-tenant latency SLO
//	cuccd -postmortem-dir /var/tmp/cucc        # flight-recorder dumps
//
// The HTTP address serves /metrics, /jobs, /events (the structured event
// journal), /slo (per-tenant attainment and error-budget burn plus the
// sampled qps/bytes/queue/restore series), and /healthz (503 once
// draining).  SIGINT/SIGTERM drains gracefully: in-flight jobs finish,
// queued jobs are rejected, then the process exits; /healthz flips to 503
// the moment the drain begins.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cucc/internal/obs"
	"cucc/internal/recovery"
	"cucc/internal/serve"
)

// parseSLOSpec parses the -slo flag: a comma-separated list of
// tenant:latency_ms[:target] entries, e.g. "tenant-a:250:0.99,tenant-b:500".
func parseSLOSpec(spec string) (map[string]obs.Objective, error) {
	out := map[string]obs.Objective{}
	if spec == "" {
		return out, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) < 2 || len(parts) > 3 || parts[0] == "" {
			return nil, fmt.Errorf("bad -slo entry %q (want tenant:latency_ms[:target])", entry)
		}
		lat, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad -slo latency in %q: %v", entry, err)
		}
		o := obs.Objective{LatencyMs: lat}
		if len(parts) == 3 {
			if o.Target, err = strconv.ParseFloat(parts[2], 64); err != nil {
				return nil, fmt.Errorf("bad -slo target in %q: %v", entry, err)
			}
		}
		out[parts[0]] = o
	}
	return out, nil
}

func main() {
	addr := flag.String("addr", "localhost:9091", "TCP address to serve the job protocol on")
	httpAddr := flag.String("http", "", "serve /metrics, /jobs, /events, /slo, /healthz on this HTTP address (empty = disabled)")
	queueCap := flag.Int("queue-cap", 64, "admission queue bound; submissions past it are rejected with a retry-after hint")
	executors := flag.Int("executors", 2, "jobs run concurrently")
	nodes := flag.Int("nodes", 4, "default job cluster size")
	maxNodes := flag.Int("max-nodes", 32, "cap on per-request cluster sizes")
	workers := flag.Int("workers", 1, "intra-node worker-pool width per job (0 = all CPUs)")
	recvTimeout := flag.Duration("recv-timeout", 30*time.Second, "per-job transport receive deadline")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-job deadline (queue wait + execution)")
	traceCap := flag.Int("trace-cap", 4096, "per-job trace capture bound (events)")
	recover := flag.Bool("recover", true, "elastic fault recovery for every job's cluster: on a rank loss, restore the barrier checkpoint and replay over the survivors instead of failing the job")
	journalCap := flag.Int("journal-cap", obs.DefaultJournalCap, "structured event journal retention (events; 0 = default, negative = disabled)")
	sloSpec := flag.String("slo", "", "per-tenant SLOs as tenant:latency_ms[:target],... (e.g. tenant-a:250:0.99)")
	sloDefault := flag.Float64("slo-default", 0, "default latency objective in ms for tenants without an -slo entry (0 = success-only SLO)")
	sampleEvery := flag.Duration("sample-every", 5*time.Second, "metrics sampling interval for the /slo time series (0 = disabled)")
	postmortemDir := flag.String("postmortem-dir", "", "write flight-recorder dumps (postmortem-job<id>.json) here on job failure or recovery")
	flag.Parse()

	tenantSLOs, err := parseSLOSpec(*sloSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cuccd:", err)
		os.Exit(2)
	}
	var journal *obs.Journal
	if *journalCap >= 0 {
		journal = obs.NewJournal(*journalCap)
	}
	if *postmortemDir != "" {
		if err := os.MkdirAll(*postmortemDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "cuccd:", err)
			os.Exit(2)
		}
	}

	srv := serve.NewServer(serve.Config{
		QueueCap:        *queueCap,
		Executors:       *executors,
		Nodes:           *nodes,
		MaxNodes:        *maxNodes,
		Workers:         *workers,
		RecvTimeout:     *recvTimeout,
		DefaultDeadline: *deadline,
		TraceCap:        *traceCap,
		Recovery:        &recovery.Policy{Enabled: *recover},
		Journal:         journal,
		SLO: obs.SLOConfig{
			Default: obs.Objective{LatencyMs: *sloDefault},
			Tenants: tenantSLOs,
		},
		SampleEvery:   *sampleEvery,
		PostmortemDir: *postmortemDir,
	})

	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("cuccd: serving jobs on %s (queue %d, executors %d)\n", bound, *queueCap, *executors)

	var httpSrv *http.Server
	if *httpAddr != "" {
		httpSrv = &http.Server{Addr: *httpAddr, Handler: srv.HTTPMux()}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "cuccd: http:", err)
			}
		}()
		fmt.Printf("cuccd: /metrics /jobs /events /slo /healthz on http://%s\n", *httpAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("cuccd: %s, draining\n", got)
	// Drain flips /healthz to 503 immediately; the HTTP endpoint stays up
	// through the drain so load balancers and operators can watch it land.
	srv.Drain()
	if httpSrv != nil {
		httpSrv.Close()
	}
	fmt.Println("cuccd: drained, exiting")
}

// Command cuccanalyze runs the Allgather-distributable analysis.
//
// Usage:
//
//	cuccanalyze kernels.cu     # analyze kernels in a mini-CUDA source file
//	cuccanalyze -              # read source from stdin
//	cuccanalyze -coverage      # the Figure 7 coverage report
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cucc/internal/analysis"
	"cucc/internal/core"
	"cucc/internal/lang"
	"cucc/internal/suites"
)

func main() {
	coverage := flag.Bool("coverage", false, "print the Figure 7 coverage report over the built-in suites")
	verbose := flag.Bool("v", false, "print per-kernel details in the coverage report")
	explain := flag.Bool("explain", false, "print the generated CPU host module (Figure 6 template) per kernel")
	flag.Parse()

	if *coverage {
		printCoverage(*verbose)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cuccanalyze <file.cu | -> | cuccanalyze -coverage")
		os.Exit(2)
	}
	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mod, err := lang.Parse(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "parse error: %v\n", err)
		os.Exit(1)
	}
	if *explain {
		prog, err := core.Compile(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, k := range mod.Kernels {
			report, err := prog.ExplainKernel(k.Name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(report)
		}
		return
	}
	for _, k := range mod.Kernels {
		md := analysis.Analyze(k)
		fmt.Println(md.Summary())
		if md.GIDOnly {
			fmt.Println("  note: GID-only kernel; eligible for block redistribution (-split)")
		}
	}
}

func printCoverage(verbose bool) {
	fmt.Println("Figure 7: Allgather-distributable coverage")
	for _, c := range suites.CountCoverage() {
		fmt.Printf("  %-12s %2d/%2d distributable (%d overlapping writes, %d indirect)\n",
			c.Suite, c.Distributable, c.Total, c.Overlap, c.Indirect)
	}
	if !verbose {
		return
	}
	fmt.Println()
	for _, ck := range suites.CoverageSuite() {
		md := ck.Classify()
		fmt.Printf("  [%-11s] %s\n", ck.Suite, md.Summary())
	}
}

// Command cuccrun executes one evaluation program on a simulated CPU
// cluster and reports the three-phase execution statistics.
//
// Usage:
//
//	cuccrun -prog FIR -nodes 8                 # paper scale, cost model
//	cuccrun -prog Kmeans -nodes 4 -real        # reduced scale, really executed and checked
//	cuccrun -prog EP -nodes 32 -split 4        # with §8.3 block redistribution
//	cuccrun -prog Transpose -machine thread -pgas
//	cuccrun -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/csched"
	"cucc/internal/machine"
	"cucc/internal/metrics"
	"cucc/internal/pgas"
	"cucc/internal/recovery"
	"cucc/internal/simnet"
	"cucc/internal/suites"
	"cucc/internal/trace"
)

func main() {
	progName := flag.String("prog", "VecAdd", "program name (see -list)")
	nodes := flag.Int("nodes", 4, "cluster node count")
	mach := flag.String("machine", "simd", "node type: simd (Intel 6226) or thread (AMD 7713)")
	real := flag.Bool("real", false, "really execute at reduced scale and verify output (default: cost model at paper scale)")
	usePGAS := flag.Bool("pgas", false, "run the PGAS baseline instead of CuCC")
	split := flag.Int("split", 1, "block redistribution factor (GID-only kernels)")
	list := flag.Bool("list", false, "list available programs")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON timeline to this file (-real runs)")
	workers := flag.Int("workers", 0, "intra-node worker-pool width for -real execution (0 = all CPUs)")
	engine := flag.String("engine", "vm", "IR execution engine for -real runs: vm (register machine), vm-lanes (lane-batched vm), or interp (reference interpreter)")
	collective := flag.String("collective", "", "phase-2 collective schedule: auto, ring, recdouble, twolevel, pipeline[:N]; append +overlap to start callbacks while chunks are in flight (default: legacy hand-written ring)")
	recover := flag.Bool("recover", false, "enable elastic fault recovery: checkpoint at Allgather barriers, and on a rank loss re-partition over the survivors and replay (bitwise-identical results)")
	recvTimeout := flag.Duration("recv-timeout", time.Minute, "transport receive deadline; a hung rank fails the run instead of deadlocking it (0 = no deadline)")
	showMetrics := flag.Bool("metrics", false, "enable the metrics registry and print its table after the run")
	metricsOut := flag.String("metrics-out", "", "enable the metrics registry and write its JSON snapshot to this file")
	metricsHTTP := flag.String("metrics-http", "", "serve /metrics and /debug/vars on this address (e.g. localhost:8090) for the duration of the run")
	flag.Parse()

	eng, err := cluster.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	core.DefaultEngine = eng
	coll, err := csched.ParseChoice(*collective)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	core.DefaultCollective = coll
	if *recover {
		core.DefaultRecovery = recovery.Policy{Enabled: true}
	}

	// Any metrics flag enables the process-wide registry; clusters and
	// sessions pick it up via metrics.Default().
	var reg *metrics.Registry
	if *showMetrics || *metricsOut != "" || *metricsHTTP != "" {
		reg = metrics.New()
		metrics.SetDefault(reg)
		defer func() {
			if *showMetrics {
				fmt.Print(reg.Snapshot().Table())
			}
			if *metricsOut != "" {
				data, err := reg.Snapshot().JSON()
				if err == nil {
					err = os.WriteFile(*metricsOut, append(data, '\n'), 0o644)
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("metrics snapshot written to %s\n", *metricsOut)
			}
		}()
	}
	if *metricsHTTP != "" {
		addr, stop, errc, err := metrics.Serve(*metricsHTTP, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer stop()
		go func() {
			for serr := range errc {
				fmt.Fprintf(os.Stderr, "metrics endpoint: %v\n", serr)
			}
		}()
		fmt.Printf("metrics served on http://%s/metrics\n", addr)
	}

	if *list {
		for _, p := range suites.Registry() {
			md := p.Compiled.Meta[p.Kernel]
			fmt.Printf("  %-15s %s\n", p.Name, md.Summary())
		}
		return
	}

	prog, ok := suites.ByName(*progName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown program %q (try -list)\n", *progName)
		os.Exit(2)
	}

	m := machine.Intel6226()
	if strings.EqualFold(*mach, "thread") {
		m = machine.AMD7713()
	}
	rt := *recvTimeout
	if rt == 0 {
		rt = -1 // 0 on the flag means "no deadline", not "library default"
	}
	c, err := cluster.New(cluster.Config{Nodes: *nodes, Machine: m, Net: simnet.IB100(), RecvTimeout: rt})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer c.Close()

	fmt.Printf("program %s on %d x %s over %s\n", prog.Name, *nodes, m, c.Net())
	md := prog.Compiled.Meta[prog.Kernel]
	fmt.Printf("analysis: %s\n", md.Summary())

	if *usePGAS {
		runPGAS(c, prog, *real)
		return
	}

	sess := core.NewSession(c, prog.Compiled)
	sess.Host.Workers = *workers
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.New()
		sess.Trace = rec
	}
	var stats *core.Stats
	if *real {
		inst, err := prog.Build(c, prog.Small)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		inst.Spec.BlockSplit = *split
		sess.Verify = true
		stats, err = sess.Launch(inst.Spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := inst.Check(); err != nil {
			fmt.Fprintf(os.Stderr, "output check FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("reduced-scale execution: output verified against Go reference; memory consistent across nodes")
	} else {
		spec := prog.Spec(prog.Default)
		spec.BlockSplit = *split
		stats, err = sess.Estimate(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("paper-scale cost model (use -real for reduced-scale execution)")
	}

	fmt.Printf("  distributed:      %v (tail-divergent: %v)\n", stats.Distributed, stats.TailDivergent)
	fmt.Printf("  blocks/node:      %s (+%d callback blocks on every node)\n", blocksByNode(stats), stats.CallbackBlocks)
	fmt.Printf("  phase 1 compute:  %.3f ms\n", stats.Phase1Sec*1e3)
	fmt.Printf("  allgather:        %.3f ms (%d bytes/node, %d msgs)\n", stats.CommSec*1e3, stats.CommBytesPerNode, stats.CommMsgs)
	if stats.CollectiveAlgo != "" {
		fmt.Printf("  schedule:         %s\n", stats.CollectiveAlgo)
	}
	fmt.Printf("  callback compute: %.3f ms\n", stats.CallbackSec*1e3)
	if stats.OverlapSec > 0 {
		fmt.Printf("  overlap:          %.3f ms hidden behind callbacks\n", stats.OverlapSec*1e3)
	}
	if stats.Restores > 0 {
		fmt.Printf("  restores:         %d (lost nodes %v, repaired and rejoined)\n", stats.Restores, stats.LostNodes)
	}
	fmt.Printf("  total:            %.3f ms\n", stats.TotalSec*1e3)
	if rec != nil {
		raw, err := rec.ChromeTrace()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*traceOut, raw, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s", rec.Summary())
		fmt.Printf("chrome trace written to %s\n", *traceOut)
	}
}

// blocksByNode renders the per-rank phase-1 block counts: the single shared
// count when balanced, the full per-rank list when ranks differ (the
// RemainderImbalanced strategy).
func blocksByNode(stats *core.Stats) string {
	counts := stats.BlocksByNode
	uniform := true
	for _, c := range counts {
		if c != stats.BlocksPerNode {
			uniform = false
			break
		}
	}
	if len(counts) == 0 || uniform {
		return fmt.Sprintf("%d", stats.BlocksPerNode)
	}
	parts := make([]string, len(counts))
	for i, c := range counts {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return fmt.Sprintf("max %d [%s]", stats.BlocksPerNode, strings.Join(parts, " "))
}

func runPGAS(c *cluster.Cluster, prog *suites.Program, real bool) {
	sess := pgas.NewSession(c, prog.Compiled)
	var res *pgas.Result
	if real {
		inst, err := prog.Build(c, prog.Small)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err = sess.Run(inst.Spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("reduced-scale PGAS execution (measured traffic)")
	} else {
		spec := prog.Spec(prog.Default)
		work, err := core.NewSession(c, prog.Compiled).EstimateWork(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res = sess.Estimate(spec.Grid.Count(), work, prog.Traffic(prog.Default, c.N()))
		fmt.Println("paper-scale PGAS cost model")
	}
	fmt.Printf("  remote puts/gets: %d / %d (busiest rank %d / %d)\n", res.RemotePuts, res.RemoteGets, res.MaxRankPuts, res.MaxRankGets)
	fmt.Printf("  owner incast:     %d puts\n", res.IncastPuts)
	fmt.Printf("  compute:          %.3f ms\n", res.CompSec*1e3)
	fmt.Printf("  communication:    %.3f ms\n", res.CommSec*1e3)
	fmt.Printf("  total:            %.3f ms\n", res.TotalSec*1e3)
}

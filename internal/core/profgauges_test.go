package core

import (
	"strings"
	"testing"

	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/metrics"
	"cucc/internal/vm"
)

// TestVMProfileGaugesBridged: with profiling on, a launch through the VM
// engine publishes vm.profile.* gauges into the session's registry; with
// profiling off, no such gauges appear.
func TestVMProfileGaugesBridged(t *testing.T) {
	run := func(profiling bool) metrics.Snapshot {
		if profiling {
			vm.SetProfiling(true)
			vm.ResetProfiles()
			defer func() {
				vm.SetProfiling(false)
				vm.ResetProfiles()
			}()
		}
		prog, err := Compile(vecCopySrc)
		if err != nil {
			t.Fatal(err)
		}
		c := newCluster(t, 2)
		const N = 1200
		src := c.Alloc(kir.U8, N)
		dest := c.Alloc(kir.U8, N)
		sess := NewSession(c, prog)
		sess.Metrics = metrics.New()
		_, err = sess.Launch(LaunchSpec{
			Kernel:    "vec_copy",
			Grid:      interp.Dim1(5),
			Block:     interp.Dim1(256),
			Args:      []Arg{BufArg(src), BufArg(dest), IntArg(N)},
			UseInterp: true, // keep the IR path (where the profiler lives)
		})
		if err != nil {
			t.Fatal(err)
		}
		return sess.Metrics.Snapshot()
	}

	snap := run(true)
	if got := snap.Gauges["vm.profile.vec_copy.instructions"]; got <= 0 {
		t.Errorf("vm.profile.vec_copy.instructions = %g, want > 0", got)
	}
	found := false
	for name, v := range snap.Gauges {
		if strings.HasPrefix(name, "vm.profile.vec_copy.op.") && v > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no per-opcode vm.profile gauges in the registry")
	}

	off := run(false)
	for name := range off.Gauges {
		if strings.HasPrefix(name, "vm.profile.") {
			t.Errorf("profiling disabled but gauge %s registered", name)
		}
	}
}

package core

import (
	"bytes"
	"testing"

	"cucc/internal/cluster"
	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/trace"
)

// The worker-pool tests: executing a launch with a wide intra-node pool must
// produce byte-identical node memories, identical measured work, and
// identical simulated-time statistics to sequential execution, across the
// interpreter and native backends, including kernels with global atomics
// (cross-block races resolved by the sharded locks) and __syncthreads.

const workerScaleSrc = `
__global__ void scale(float* src, float* dst, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n)
        dst[id] = src[id] * 3.0f + 1.0f;
}
`

const workerHistAtomicSrc = `
__global__ void hist_atomic(char* data, int* bins, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        int v = data[id];
        atomicAdd(&bins[v % 61], 1);
    }
}
`

const workerHistSharedSrc = `
__global__ void hist_shared(char* data, int* partial, int n, int bins) {
    __shared__ int sh[64];
    for (int b = threadIdx.x; b < bins; b = b + blockDim.x)
        sh[b] = 0;
    __syncthreads();
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        atomicAdd(&sh[data[id] % 61], 1);
    __syncthreads();
    for (int b = threadIdx.x; b < bins; b = b + blockDim.x)
        partial[blockIdx.x * bins + b] = sh[b];
}
`

// workerRun is the outcome of one launch: the stats plus every node's copy
// of every bound buffer.
type workerRun struct {
	stats *Stats
	mems  [][][]byte // [buffer][rank] -> bytes
}

// workerCase is one kernel in the equivalence table.
type workerCase struct {
	name   string
	prog   func(t *testing.T) *Program
	launch func(c *cluster.Cluster) (LaunchSpec, []cluster.Buffer)
}

func workerCases() []workerCase {
	const n = 13*64 - 5 // 13 blocks of 64 threads, tail-divergent
	return []workerCase{
		{
			name: "scale-interp",
			prog: func(t *testing.T) *Program { return MustCompile(workerScaleSrc) },
			launch: func(c *cluster.Cluster) (LaunchSpec, []cluster.Buffer) {
				src := c.Alloc(kir.F32, 13*64)
				dst := c.Alloc(kir.F32, 13*64)
				vals := make([]float32, 13*64)
				for i := range vals {
					vals[i] = float32(i%97) * 0.5
				}
				if err := c.WriteAllF32(src, vals); err != nil {
					panic(err)
				}
				return LaunchSpec{
					Kernel: "scale",
					Grid:   interp.Dim1(13),
					Block:  interp.Dim1(64),
					Args:   []Arg{BufArg(src), BufArg(dst), IntArg(n)},
				}, []cluster.Buffer{src, dst}
			},
		},
		{
			name: "scale-native",
			prog: func(t *testing.T) *Program {
				prog := MustCompile(workerScaleSrc)
				if err := prog.RegisterNative("scale", Native{
					RunBlock: func(mem interp.Memory, args []interp.Value, grid, block interp.Dim3, bx, by int) error {
						nn := int(args[2].I)
						for tx := 0; tx < block.X; tx++ {
							id := block.X*bx + tx
							if id < nn {
								mem.StoreF32(1, id, mem.LoadF32(0, id)*3+1)
							}
						}
						return nil
					},
					BlockWork: func(args []interp.Value, grid, block interp.Dim3) machine.BlockWork {
						t := float64(block.X)
						return machine.BlockWork{VecFlops: 2 * t, IntOps: 3 * t, Bytes: 8 * t}
					},
				}); err != nil {
					t.Fatal(err)
				}
				return prog
			},
			launch: func(c *cluster.Cluster) (LaunchSpec, []cluster.Buffer) {
				src := c.Alloc(kir.F32, 13*64)
				dst := c.Alloc(kir.F32, 13*64)
				vals := make([]float32, 13*64)
				for i := range vals {
					vals[i] = float32(i%89) * 0.25
				}
				if err := c.WriteAllF32(src, vals); err != nil {
					panic(err)
				}
				return LaunchSpec{
					Kernel: "scale",
					Grid:   interp.Dim1(13),
					Block:  interp.Dim1(64),
					Args:   []Arg{BufArg(src), BufArg(dst), IntArg(n)},
				}, []cluster.Buffer{src, dst}
			},
		},
		{
			name: "hist-global-atomics",
			prog: func(t *testing.T) *Program { return MustCompile(workerHistAtomicSrc) },
			launch: func(c *cluster.Cluster) (LaunchSpec, []cluster.Buffer) {
				const count = 11 * 64
				data := c.Alloc(kir.U8, count)
				bins := c.Alloc(kir.I32, 61)
				raw := make([]byte, count)
				for i := range raw {
					raw[i] = byte(i*31 + 5)
				}
				if err := c.WriteAll(data, raw); err != nil {
					panic(err)
				}
				return LaunchSpec{
					Kernel: "hist_atomic",
					Grid:   interp.Dim1(11),
					Block:  interp.Dim1(64),
					Args:   []Arg{BufArg(data), BufArg(bins), IntArg(count)},
				}, []cluster.Buffer{data, bins}
			},
		},
		{
			name: "hist-shared-syncthreads",
			prog: func(t *testing.T) *Program { return MustCompile(workerHistSharedSrc) },
			launch: func(c *cluster.Cluster) (LaunchSpec, []cluster.Buffer) {
				const blocks, bs, nbins = 9, 64, 61
				const count = blocks * bs
				data := c.Alloc(kir.U8, count)
				partial := c.Alloc(kir.I32, blocks*nbins)
				raw := make([]byte, count)
				for i := range raw {
					raw[i] = byte(i*17 + 3)
				}
				if err := c.WriteAll(data, raw); err != nil {
					panic(err)
				}
				return LaunchSpec{
					Kernel: "hist_shared",
					Grid:   interp.Dim1(blocks),
					Block:  interp.Dim1(bs),
					Args:   []Arg{BufArg(data), BufArg(partial), IntArg(count), IntArg(nbins)},
				}, []cluster.Buffer{data, partial}
			},
		},
	}
}

// runWorkerCase executes one case on a fresh cluster with the given pool
// width and snapshots the stats and every node's buffers.
func runWorkerCase(t *testing.T, tc workerCase, nodes, workers int, remainder RemainderStrategy) workerRun {
	t.Helper()
	prog := tc.prog(t)
	c := newCluster(t, nodes)
	spec, bufs := tc.launch(c)
	spec.Remainder = remainder
	sess := NewSession(c, prog)
	sess.Host.Workers = workers
	sess.Verify = true
	stats, err := sess.Launch(spec)
	if err != nil {
		t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
	}
	run := workerRun{stats: stats}
	for _, b := range bufs {
		snap := make([][]byte, nodes)
		for r := 0; r < nodes; r++ {
			snap[r] = append([]byte(nil), c.Region(r, b)...)
		}
		run.mems = append(run.mems, snap)
	}
	return run
}

// TestWorkerPoolEquivalence: for every kernel class and cluster size, a wide
// worker pool must match sequential execution bit for bit — node memories,
// measured per-block work, and every simulated-time figure.
func TestWorkerPoolEquivalence(t *testing.T) {
	for _, tc := range workerCases() {
		for _, nodes := range []int{1, 3} {
			for _, remainder := range []RemainderStrategy{RemainderCallback, RemainderImbalanced} {
				name := tc.name
				if remainder == RemainderImbalanced {
					name += "-imbalanced"
				}
				t.Run(name, func(t *testing.T) {
					seq := runWorkerCase(t, tc, nodes, 1, remainder)
					par := runWorkerCase(t, tc, nodes, 4, remainder)
					if !statsEqualIgnoringSlices(seq.stats, par.stats) {
						t.Errorf("nodes=%d: stats diverge:\n  w=1: %+v\n  w=4: %+v", nodes, seq.stats, par.stats)
					}
					if !intsEqual(seq.stats.BlocksByNode, par.stats.BlocksByNode) {
						t.Errorf("nodes=%d: BlocksByNode %v vs %v", nodes, seq.stats.BlocksByNode, par.stats.BlocksByNode)
					}
					if seq.stats.Work != par.stats.Work {
						t.Errorf("nodes=%d: per-block work diverges: %+v vs %+v", nodes, seq.stats.Work, par.stats.Work)
					}
					for bi := range seq.mems {
						for r := range seq.mems[bi] {
							if !bytes.Equal(seq.mems[bi][r], par.mems[bi][r]) {
								t.Errorf("nodes=%d: buffer %d differs on rank %d between w=1 and w=4", nodes, bi, r)
							}
						}
					}
				})
			}
		}
	}
}

// statsEqualIgnoringSlices compares two Stats field by field, skipping the
// per-rank slice, which intsEqual covers separately.
func statsEqualIgnoringSlices(a, b *Stats) bool {
	return a.Distributed == b.Distributed &&
		a.TailDivergent == b.TailDivergent &&
		a.BlocksPerNode == b.BlocksPerNode &&
		a.CallbackBlocks == b.CallbackBlocks &&
		a.Phase1Sec == b.Phase1Sec &&
		a.CommSec == b.CommSec &&
		a.CallbackSec == b.CallbackSec &&
		a.TotalSec == b.TotalSec &&
		a.CommBytesPerNode == b.CommBytesPerNode &&
		a.CommMsgs == b.CommMsgs &&
		a.Work == b.Work
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestImbalancedBlockCounts: under RemainderImbalanced the per-rank counts
// differ and BlocksPerNode must report the largest (the makespan count), not
// rank 0's by accident.
func TestImbalancedBlockCounts(t *testing.T) {
	prog := MustCompile(workerScaleSrc)
	c := newCluster(t, 4)
	src := c.Alloc(kir.F32, 14*64)
	dst := c.Alloc(kir.F32, 14*64)
	sess := NewSession(c, prog)
	sess.Host.Workers = 2
	stats, err := sess.Launch(LaunchSpec{
		Kernel:    "scale",
		Grid:      interp.Dim1(14),
		Block:     interp.Dim1(64),
		Args:      []Arg{BufArg(src), BufArg(dst), IntArg(14*64 - 5)},
		Remainder: RemainderImbalanced,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 14 blocks, 1 tail callback -> 13 distributable -> 4,3,3,3.
	if !intsEqual(stats.BlocksByNode, []int{4, 3, 3, 3}) {
		t.Errorf("BlocksByNode = %v, want [4 3 3 3]", stats.BlocksByNode)
	}
	if stats.BlocksPerNode != 4 {
		t.Errorf("BlocksPerNode = %d, want the max (4)", stats.BlocksPerNode)
	}
}

// TestWorkerSpansTraced: a pool wider than one emits PhaseWorker sub-spans
// whose block counts sum to the phase's block count.
func TestWorkerSpansTraced(t *testing.T) {
	prog := MustCompile(workerScaleSrc)
	c := newCluster(t, 2)
	src := c.Alloc(kir.F32, 13*64)
	dst := c.Alloc(kir.F32, 13*64)
	sess := NewSession(c, prog)
	sess.Host.Workers = 4
	rec := trace.New()
	sess.Trace = rec
	if _, err := sess.Launch(LaunchSpec{
		Kernel: "scale",
		Grid:   interp.Dim1(13),
		Block:  interp.Dim1(64),
		Args:   []Arg{BufArg(src), BufArg(dst), IntArg(13*64 - 5)},
	}); err != nil {
		t.Fatal(err)
	}
	worker, partial := 0, 0
	for _, ev := range rec.Events() {
		switch ev.Phase {
		case trace.PhaseWorker:
			worker++
		case trace.PhasePartial:
			partial++
		}
	}
	if partial != 2 {
		t.Errorf("partial spans = %d, want 2", partial)
	}
	if worker == 0 {
		t.Error("no PhaseWorker spans with a 4-wide pool")
	}
}

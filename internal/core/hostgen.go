package core

import (
	"fmt"
	"strings"

	"cucc/internal/analysis"
	"cucc/internal/kir"
)

// GenerateHostModule renders the CPU host module CuCC's template produces
// for a kernel (paper Figure 6): the three code sections of the
// three-phase workflow, specialized with the analysis metadata
// (tail divergence, communicated buffers, unit sizes).  The output is the
// C-like pseudo-code of the paper's figure; the executable equivalent is
// Session.Launch, which interprets the same metadata directly.
func GenerateHostModule(k *kir.Kernel, md *analysis.Metadata) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// CPU host module for kernel %s (generated from analysis metadata)\n", k.Name)
	fmt.Fprintf(&b, "// metadata: tail_divergent=%v", md.TailDivergent)
	for _, buf := range md.Buffers {
		fmt.Fprintf(&b, ", mem_ptr=%s, unit_size=(%s)*%d", buf.ParamName, buf.UnitElems, buf.Elem.Size())
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "void launch_%s(", k.Name)
	for i, p := range k.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteString(", int grid_size, int block_size) {\n")

	if !md.Distributable {
		fmt.Fprintf(&b, "    // kernel is not Allgather distributable (%s: %s):\n", md.Reason, md.Detail)
		b.WriteString("    // trivial execution — every node runs every block.\n")
		b.WriteString("    for (int block_id = 0; block_id < grid_size; block_id++)\n")
		fmt.Fprintf(&b, "        %s_block(%s, block_id);\n", k.Name, paramNames(k))
		b.WriteString("}\n")
		return b.String()
	}

	tail := 0
	if md.TailDivergent {
		tail = 1
	}
	b.WriteString("    // --- phase 1: partial block execution ---\n")
	fmt.Fprintf(&b, "    int p_size = (grid_size - %d) / cucc_size();\n", tail)
	b.WriteString("    #pragma omp parallel for\n")
	b.WriteString("    for (int block_id = cucc_rank() * p_size;\n")
	b.WriteString("         block_id < (cucc_rank() + 1) * p_size; block_id++)\n")
	fmt.Fprintf(&b, "        %s_block(%s, block_id);\n", k.Name, paramNames(k))

	b.WriteString("    // --- phase 2: balanced in-place Allgather ---\n")
	for _, buf := range md.Buffers {
		base := buf.Base.String()
		if buf.Base.IsZero() {
			base = "0"
		}
		fmt.Fprintf(&b, "    cucc_allgather_inplace(%s + (%s), p_size * (%s) * %d);\n",
			buf.ParamName, base, buf.UnitElems, buf.Elem.Size())
	}

	b.WriteString("    // --- phase 3: callback block execution ---\n")
	b.WriteString("    for (int block_id = cucc_size() * p_size;\n")
	b.WriteString("         block_id < grid_size; block_id++)\n")
	fmt.Fprintf(&b, "        %s_block(%s, block_id);\n", k.Name, paramNames(k))
	b.WriteString("}\n")
	return b.String()
}

func paramNames(k *kir.Kernel) string {
	names := make([]string, len(k.Params))
	for i, p := range k.Params {
		names[i] = p.Name
	}
	return strings.Join(names, ", ")
}

// ExplainKernel renders the full Figure 6 migration report for a kernel:
// the source-level analysis summary plus the generated host module.
func (p *Program) ExplainKernel(name string) (string, error) {
	k := p.Kernel(name)
	if k == nil {
		return "", fmt.Errorf("core: no kernel %q", name)
	}
	md := p.Meta[name]
	var b strings.Builder
	fmt.Fprintf(&b, "=== kernel %s ===\n", name)
	b.WriteString(k.String())
	b.WriteString("\n--- Allgather distributable analysis ---\n")
	b.WriteString(md.Summary())
	if md.GIDOnly {
		b.WriteString("\n(GID-only: eligible for block redistribution)")
	}
	b.WriteString("\n\n--- generated CPU host module (Figure 6 template) ---\n")
	b.WriteString(GenerateHostModule(k, md))
	return b.String(), nil
}

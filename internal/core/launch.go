package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cucc/internal/trace"

	"cucc/internal/analysis"
	"cucc/internal/cluster"
	"cucc/internal/comm"
	"cucc/internal/csched"
	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/obs"
	"cucc/internal/recovery"
	"cucc/internal/transport"
	"cucc/internal/vm"
)

// blockRunner is the executor seam shared by both IR engines: a compiled
// (or prepared) kernel bound to one node's memory, executing one block per
// call with worker-private scratch.
type blockRunner interface {
	ExecBlock(bx, by int) (interp.Work, error)
}

// Launch executes one kernel on the cluster using the three-phase workflow
// when the kernel is Allgather distributable, and trivial replicated
// execution otherwise.  It returns simulated-time statistics; the data in
// the cluster's node memories is really computed and really synchronized.
func (s *Session) Launch(spec LaunchSpec) (stats *Stats, err error) {
	if reg := s.registry(); reg != nil {
		registerVMGauges(reg)
		defer func(start time.Time) {
			registerVMProfileGauges(reg)
			reg.Counter(MetricLaunches).Inc()
			reg.Histogram(MetricLaunchWallSec).Observe(time.Since(start).Seconds())
			if err != nil {
				reg.Counter(MetricLaunchErrors).Inc()
			} else if stats != nil {
				reg.Histogram(MetricLaunchSimSec).Observe(stats.TotalSec)
			}
		}(time.Now())
	}
	st, err := s.resolve(spec)
	if err != nil {
		return nil, err
	}
	spec = st.spec // resolve may rewrite the launch geometry (BlockSplit)
	c := s.Cluster
	n := c.N()
	totalBlocks := spec.Grid.Count()
	md := st.md

	distributable := md != nil && md.Distributable && !spec.ForceTrivial && n > 1
	// Tail divergence is defined over the flattened 1D grid.
	if md != nil && md.TailDivergent && spec.Grid.Y > 1 {
		distributable = false
	}

	stats = &Stats{Work: machine.BlockWork{}}
	startClock := c.MaxClock()

	if s.Obs.On() {
		s.Obs.Record(obs.EvLaunchPhase, -1, st.kernel.Name,
			fmt.Sprintf("start: blocks=%d nodes=%d distributed=%v", totalBlocks, n, distributable))
	}

	if !distributable {
		s.registry().Counter(MetricLaunchesTrivial).Inc()
		if err := s.runTrivial(st, stats); err != nil {
			return nil, err
		}
		stats.TotalSec = c.MaxClock() - startClock
		if s.Verify {
			if err := s.verifyConsistency(st); err != nil {
				return nil, err
			}
		}
		if s.Obs.On() {
			s.Obs.Record(obs.EvLaunchPhase, -1, st.kernel.Name, "trivial replicated execution complete")
		}
		return stats, nil
	}

	tail := 0
	if md.TailDivergent {
		tail = 1
		stats.TailDivergent = true
	}
	stats.Distributed = true
	s.registry().Counter(MetricLaunchesDistributed).Inc()

	pol := s.EffectiveRecovery()
	regions, err := writtenRegions(st)
	if err != nil {
		return nil, err
	}
	recEnabled := pol.Enabled && len(regions) > 0

	g := c.ActiveGroup()

	// Host-side launch overhead is paid once per launch on every
	// participating node.
	for _, node := range g.Nodes() {
		s.emit(trace.Event{StartSec: c.Node(node).Clock, DurSec: KernelLaunchOverheadSec,
			Node: node, Phase: trace.PhaseLaunch, Kernel: st.kernel.Name})
		c.Node(node).Clock += KernelLaunchOverheadSec
	}

	// Checkpoint the launch-entry barrier: before phase 1 touches them,
	// all participating nodes hold identical written-buffer contents, so
	// one snapshot restores any of them.
	var cp *recovery.Checkpoint
	if recEnabled {
		cp = s.captureCheckpoint(recovery.CursorStart, 0, regions, g)
		if s.Obs.On() {
			s.Obs.RecordEvent(recovery.CheckpointEvent(st.kernel.Name, cp))
		}
	}

	// Attempt loop: each iteration runs the three phases from the current
	// checkpoint cursor on the current group.  On a rank loss (and an
	// enabled policy), the failure is classified, the survivors regroup
	// over a fresh transport, the checkpoint is restored, and the attempt
	// replays — re-partitioned when replaying from the start cursor.
	// Deterministic block execution over checkpointed barrier state makes
	// the recovered result bitwise identical to a fault-free run.
	restores := 0
	for {
		aerr := s.runPhases(st, stats, g, totalBlocks, tail, cp, regions)
		if aerr == nil {
			break
		}
		if !recEnabled {
			s.emitFailure(st.kernel.Name, aerr)
			return nil, aerr
		}
		failed, ok := recovery.Classify(aerr)
		surv := recovery.Survivors(g.Nodes(), failed)
		if ok && s.Obs.On() {
			s.Obs.RecordEvent(recovery.RankLossEvent(st.kernel.Name, failed, surv))
		}
		if !ok || restores >= pol.EffectiveMaxRestores() ||
			len(surv) == 0 || len(surv) < pol.EffectiveMinRanks() {
			s.emitFailure(st.kernel.Name, aerr)
			return nil, aerr
		}
		ng, gerr := c.AdoptSubgroup(surv)
		if gerr != nil {
			s.emitFailure(st.kernel.Name, aerr)
			return nil, errors.Join(aerr, gerr)
		}
		g = ng
		s.restoreCheckpoint(cp, g)
		restores++
		stats.Restores = restores
		stats.LostNodes = missingNodes(n, g.Nodes())
		s.registry().Counter(recovery.MetricRestores).Inc()
		if cp.Cursor == recovery.CursorStart {
			s.registry().Counter(recovery.MetricRepartitions).Inc()
		}
		s.emit(trace.Event{StartSec: g.MaxClock(), Node: -1, Phase: trace.PhaseRecovery,
			Kernel: st.kernel.Name,
			Detail: fmt.Sprintf("restore @%s: lost nodes %v, replaying over %d ranks",
				cp.Cursor, failed, len(surv))})
		if s.Obs.On() {
			s.Obs.RecordEvent(recovery.RestoreEvent(st.kernel.Name, cp, len(surv)))
		}
	}

	// Rank replacement: a crashed node was consistent at the last barrier
	// and the replay wrote only the checkpointed write-set regions, so
	// copying those regions from any survivor repairs it; then the full
	// cluster width rejoins over a fresh transport for later launches.
	if !g.Full() {
		src := g.NodeOf(0)
		top := g.MaxClock()
		for _, node := range stats.LostNodes {
			for _, rgn := range regions {
				copy(c.HeapBytes(node, rgn.Off, rgn.Len), c.HeapBytes(src, rgn.Off, rgn.Len))
			}
			c.Node(node).Clock = top
		}
		if err := c.RejoinAll(); err != nil {
			return nil, fmt.Errorf("core: rejoining after recovery: %w", err)
		}
		s.registry().Counter(recovery.MetricRejoins).Add(int64(len(stats.LostNodes)))
		if s.Obs.On() {
			s.Obs.RecordEvent(recovery.RejoinEvent(st.kernel.Name, stats.LostNodes))
		}
	}

	stats.TotalSec = c.MaxClock() - startClock
	if s.Verify {
		if err := s.verifyConsistency(st); err != nil {
			return nil, err
		}
	}
	if s.Obs.On() {
		s.Obs.Record(obs.EvLaunchPhase, -1, st.kernel.Name,
			fmt.Sprintf("distributed execution complete: restores=%d", stats.Restores))
	}
	return stats, nil
}

// runPhases executes one attempt of the three-phase workflow on the group
// g.  It is checkpoint-aware: resuming from a gathered checkpoint skips
// straight to the callback range recorded there; otherwise the attempt
// partitions the grid over the group's members, runs phase 1, the
// Allgather (advancing the checkpoint to the gathered barrier on the
// non-overlapped path), and the callbacks.  Transport ranks are member
// indices; g.NodeOf maps them to cluster nodes for memory, clocks, and
// trace attribution.
func (s *Session) runPhases(st *launchState, stats *Stats, g *cluster.Group, totalBlocks, tail int, cp *recovery.Checkpoint, regions []recovery.Region) error {
	c := s.Cluster
	n := g.Size()
	md := st.md
	spec := st.spec
	reg := s.registry()

	if cp != nil && cp.Cursor == recovery.CursorGathered {
		// Phases 1-2 completed at the checkpointed barrier — possibly
		// under a different partition width, which is why DistEnd was
		// recorded in the checkpoint.  Only the callback range replays;
		// the pre-barrier stats figures stand from the attempt that
		// reached the barrier.
		stats.CallbackBlocks = totalBlocks - cp.DistEnd
		return s.runCallbacks(st, stats, g, cp.DistEnd, totalBlocks)
	}

	// Phase figures describe one attempt from the start cursor: a replay
	// overwrites the failed attempt's partial numbers.
	stats.Phase1Sec, stats.CommSec, stats.CallbackSec, stats.OverlapSec = 0, 0, 0, 0
	stats.CommBytesPerNode, stats.CommMsgs = 0, 0
	stats.CollectiveAlgo = ""
	stats.Work = machine.BlockWork{}

	part := partitionBlocks(totalBlocks, tail, n, spec.Remainder)
	callbacks := totalBlocks - part.distEnd
	stats.BlocksByNode = append([]int(nil), part.counts...)
	stats.BlocksPerNode = maxCount(part.counts)
	stats.CallbackBlocks = callbacks

	// --- Phase 1: partial block execution ---
	workPerNode := make([]machine.BlockWork, n)
	workerCounts := make([][]int, n)
	if part.distEnd > 0 {
		wallStart := time.Now()
		err := g.RunParallel(func(m int, _ transport.Conn) error {
			lo := part.starts[m]
			w, wc, err := s.runBlocks(st, g.NodeOf(m), lo, lo+part.counts[m])
			if err != nil {
				return err
			}
			workPerNode[m] = w
			workerCounts[m] = wc
			return nil
		})
		reg.Histogram(MetricPartialWallSec).Observe(time.Since(wallStart).Seconds())
		if err != nil {
			return err
		}
		// Advance clocks by the modeled phase time.
		for m := 0; m < n; m++ {
			cnt := part.counts[m]
			if cnt == 0 {
				continue
			}
			node := g.NodeOf(m)
			per := workPerNode[m].Scale(1 / float64(cnt))
			dt := c.Machine().PhaseTime(cnt, per, s.execConfig(st))
			s.emit(trace.Event{StartSec: c.Node(node).Clock, DurSec: dt, Node: node,
				Phase: trace.PhasePartial, Kernel: st.kernel.Name,
				Detail: fmt.Sprintf("%d blocks", cnt)})
			s.emitWorkerSpans(c.Node(node).Clock, dt, node, st.kernel.Name, workerCounts[m])
			reg.Histogram(MetricPartialSimSec).Observe(dt)
			recordWorkerCounts(reg, workerCounts[m])
			c.Node(node).Clock += dt
			if m == 0 {
				stats.Phase1Sec = dt
				stats.Work = per
			}
		}
	}

	// --- Phase 2: in-place Allgather per written buffer ---
	//
	// The legacy path hardcodes the balanced ring (or Allgatherv under the
	// imbalanced remainder strategy).  When a collective choice is
	// configured, the schedule compiler selects among ring, recursive
	// doubling, two-level, and chunked-pipelined schedules per (bytes,
	// nranks) instead — csched parameterizes schedules by rank count, so a
	// recovered subgroup compiles its own m-rank schedule — and, with
	// overlap enabled and a kernel whose callbacks don't read gathered
	// data, phase-3 callback blocks run while later Allgather chunks are
	// still in flight.
	choice := s.EffectiveCollective()
	schedActive := choice.Active() && part.distEnd > 0
	wantOverlap := schedActive && choice.Overlap && callbacks > 0 && !st.readsWritten
	cbHint := 0.0
	if wantOverlap && part.counts[0] > 0 {
		// Callback-time hint for overlap-aware selection, computed from the
		// measured phase-1 per-block work exactly as Estimate computes it
		// from the analytic work (identical for natives, keeping
		// Launch/Estimate schedule selection in lockstep).
		per := workPerNode[0].Scale(1 / float64(part.counts[0]))
		cbHint = c.Machine().PhaseTime(callbacks, per, s.execConfig(st))
	}
	type gatherOp struct {
		regionStart, regionLen int
		offs                   []int // per-rank byte offsets (legacy path)
		chunks                 []int64
		sel                    *csched.Selection
	}
	var gathers []gatherOp
	commSec := 0.0
	firstRecvSec := 0.0
	var commMsgs int64
	for _, bm := range md.Buffers {
		buf, base, unit, err := st.bufferRegion(bm)
		if err != nil {
			return err
		}
		if part.distEnd == 0 {
			continue
		}
		elem := bm.Elem.Size()
		if int(base)+int(unit)*part.distEnd > buf.Count {
			return fmt.Errorf("core: kernel %s writes past buffer %s (%d elems > %d)",
				st.kernel.Name, bm.ParamName, int(base)+int(unit)*part.distEnd, buf.Count)
		}
		op := gatherOp{
			regionStart: buf.Off + int(base)*elem,
			regionLen:   int(unit) * part.distEnd * elem,
			offs:        make([]int, n+1),
			chunks:      make([]int64, n),
		}
		for r := 0; r < n; r++ {
			op.chunks[r] = int64(part.counts[r]) * unit * int64(elem)
			op.offs[r+1] = op.offs[r] + int(op.chunks[r])
		}
		if schedActive {
			sel, err := csched.Select(csched.Request{
				Ranks: n, RankBytes: op.chunks, Model: c.Net(),
				Choice: choice, CallbackSec: cbHint,
			})
			if err != nil {
				return err
			}
			op.sel = sel
			if len(gathers) == 0 {
				// Overlap starts once the first buffer's first chunk has
				// landed on every rank.
				firstRecvSec = sel.Eval.FirstRecvSec
				stats.CollectiveAlgo = sel.Schedule.String()
			}
			commSec += sel.Eval.CostSec
		} else if part.balanced {
			commSec += c.Net().RingAllgather(n, op.chunks[0])
		} else {
			commSec += c.Net().AllgatherV(op.chunks)
		}
		stats.CommBytesPerNode += op.chunks[0]
		gathers = append(gathers, op)
	}
	overlapped := wantOverlap && len(gathers) > 0

	runGather := func(m int, conn transport.Conn, op gatherOp) (comm.Stats, error) {
		region := nodeBytes(c, g.NodeOf(m), op.regionStart, op.regionLen)
		if op.sel != nil {
			return csched.Execute(conn, region, op.sel.Offs, op.sel.Schedule)
		}
		if part.balanced {
			return comm.AllgatherRing(conn, region, int(op.chunks[0]))
		}
		return comm.AllgatherVRing(conn, region, op.offs)
	}

	allgatherDetail := func() string {
		d := fmt.Sprintf("%d bytes/node, %d msgs", stats.CommBytesPerNode, commMsgs)
		if stats.CollectiveAlgo != "" {
			d += ", " + stats.CollectiveAlgo
		}
		return d
	}

	if !overlapped {
		for _, op := range gathers {
			var msgs int64
			err := g.RunParallel(func(m int, conn transport.Conn) error {
				cs, err := runGather(m, conn, op)
				if err != nil {
					return err
				}
				c.Node(g.NodeOf(m)).Comm.Add(cs)
				atomic.AddInt64(&msgs, cs.Msgs)
				return nil
			})
			if err != nil {
				return err
			}
			commMsgs += msgs
		}
		// The Allgather synchronizes the nodes: clocks meet at the maximum,
		// then all pay the collective cost.
		s.emit(trace.Event{StartSec: g.MaxClock(), DurSec: commSec, Node: -1,
			Phase: trace.PhaseAllgather, Kernel: st.kernel.Name,
			Detail: allgatherDetail()})
		g.SyncClocksMax(commSec)
		stats.CommSec = commSec
		stats.CommMsgs = commMsgs
		reg.Histogram(MetricAllgatherSimSec).Observe(commSec)

		// Gathered barrier: every member holds identical written-buffer
		// contents again.  Advance the checkpoint in place so a failure in
		// the callback phase replays only the callbacks, not the whole
		// launch.
		if cp != nil {
			*cp = *s.captureCheckpoint(recovery.CursorGathered, part.distEnd, regions, g)
		}

		// --- Phase 3: callback block execution on every node ---
		return s.runCallbacks(st, stats, g, part.distEnd, totalBlocks)
	}

	// --- Overlapped phases 2+3: each rank drives its collective
	// schedule while a concurrent goroutine executes the callback
	// blocks.  Safe because callbacks write only block regions past
	// part.distEnd — disjoint from every gathered chunk — and the
	// readsWritten gate proved they never load gathered data; the
	// result is bitwise identical to the barrier ordering.  The
	// checkpoint is not advanced mid-flight: a failure here replays
	// from the start cursor.
	cbWork := make([]machine.BlockWork, n)
	cbCounts := make([][]int, n)
	wallStart := time.Now()
	err := g.RunParallel(func(m int, conn transport.Conn) error {
		var wg sync.WaitGroup
		var cbErr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, wc, err := s.runBlocks(st, g.NodeOf(m), part.distEnd, totalBlocks)
			if err != nil {
				cbErr = err
				return
			}
			cbWork[m] = w
			cbCounts[m] = wc
		}()
		var commErr error
		for _, op := range gathers {
			cs, err := runGather(m, conn, op)
			if err != nil {
				commErr = err
				break
			}
			c.Node(g.NodeOf(m)).Comm.Add(cs)
			atomic.AddInt64(&commMsgs, cs.Msgs)
		}
		// Always join the callback goroutine before returning: the
		// cluster may tear the launch down on error, and the blocks
		// must not outlive it.
		wg.Wait()
		return errors.Join(commErr, cbErr)
	})
	reg.Histogram(MetricCallbackWallSec).Observe(time.Since(wallStart).Seconds())
	if err != nil {
		return err
	}
	// Clock model: the collective still synchronizes every rank at
	// phase-1 max, but callbacks start at firstRecvSec — the modeled
	// point every rank has its first chunk — instead of after the full
	// collective; each rank finishes at whichever of the two overlapped
	// activities ends later.
	base := g.MaxClock()
	s.emit(trace.Event{StartSec: base, DurSec: commSec, Node: -1,
		Phase: trace.PhaseAllgather, Kernel: st.kernel.Name,
		Detail: allgatherDetail()})
	stats.CommSec = commSec
	stats.CommMsgs = commMsgs
	reg.Histogram(MetricAllgatherSimSec).Observe(commSec)
	maxDt := 0.0
	for m := 0; m < n; m++ {
		node := g.NodeOf(m)
		per := cbWork[m].Scale(1 / float64(callbacks))
		dt := c.Machine().PhaseTime(callbacks, per, s.execConfig(st))
		s.emit(trace.Event{StartSec: base + firstRecvSec, DurSec: dt, Node: node,
			Phase: trace.PhaseCallback, Kernel: st.kernel.Name,
			Detail: fmt.Sprintf("%d blocks (overlapped)", callbacks)})
		s.emitWorkerSpans(base+firstRecvSec, dt, node, st.kernel.Name, cbCounts[m])
		reg.Histogram(MetricCallbackSimSec).Observe(dt)
		recordWorkerCounts(reg, cbCounts[m])
		end := base + commSec
		if cb := base + firstRecvSec + dt; cb > end {
			end = cb
		}
		c.Node(node).Clock = end
		if dt > maxDt {
			maxDt = dt
		}
		if m == 0 {
			stats.CallbackSec = dt
		}
	}
	stats.OverlapSec = (base + commSec + maxDt) - g.MaxClock()
	return nil
}

// runCallbacks executes the phase-3 callback range [distEnd, totalBlocks)
// on every group member — the barriered (non-overlapped) variant, shared by
// the normal path and the gathered-checkpoint resume.
func (s *Session) runCallbacks(st *launchState, stats *Stats, g *cluster.Group, distEnd, totalBlocks int) error {
	callbacks := totalBlocks - distEnd
	if callbacks <= 0 {
		return nil
	}
	c := s.Cluster
	n := g.Size()
	reg := s.registry()
	cbWork := make([]machine.BlockWork, n)
	cbCounts := make([][]int, n)
	wallStart := time.Now()
	err := g.RunParallel(func(m int, _ transport.Conn) error {
		w, wc, err := s.runBlocks(st, g.NodeOf(m), distEnd, totalBlocks)
		if err != nil {
			return err
		}
		cbWork[m] = w
		cbCounts[m] = wc
		return nil
	})
	reg.Histogram(MetricCallbackWallSec).Observe(time.Since(wallStart).Seconds())
	if err != nil {
		return err
	}
	for m := 0; m < n; m++ {
		node := g.NodeOf(m)
		per := cbWork[m].Scale(1 / float64(callbacks))
		dt := c.Machine().PhaseTime(callbacks, per, s.execConfig(st))
		s.emit(trace.Event{StartSec: c.Node(node).Clock, DurSec: dt, Node: node,
			Phase: trace.PhaseCallback, Kernel: st.kernel.Name,
			Detail: fmt.Sprintf("%d blocks", callbacks)})
		s.emitWorkerSpans(c.Node(node).Clock, dt, node, st.kernel.Name, cbCounts[m])
		reg.Histogram(MetricCallbackSimSec).Observe(dt)
		recordWorkerCounts(reg, cbCounts[m])
		c.Node(node).Clock += dt
		if m == 0 {
			stats.CallbackSec = dt
		}
	}
	return nil
}

// writtenRegions lists the heap spans of every buffer the kernel writes —
// the state a checkpoint must capture.  Buffers the kernel only reads are
// never modified by the launch, so the pre-launch copy every node already
// holds is authoritative for them.
func writtenRegions(st *launchState) ([]recovery.Region, error) {
	seen := map[int]bool{}
	var regions []recovery.Region
	for _, bm := range st.md.Buffers {
		buf, _, _, err := st.bufferRegion(bm)
		if err != nil {
			return nil, err
		}
		if seen[buf.Off] {
			continue
		}
		seen[buf.Off] = true
		regions = append(regions, recovery.Region{Off: buf.Off, Len: buf.Bytes()})
	}
	return regions, nil
}

// captureCheckpoint snapshots the write-set regions from the group's first
// member — every member holds identical contents at a barrier, so one copy
// serves all — and counts the capture.
func (s *Session) captureCheckpoint(cur recovery.Cursor, distEnd int, regions []recovery.Region, g *cluster.Group) *recovery.Checkpoint {
	c := s.Cluster
	src := g.NodeOf(0)
	cp := recovery.Capture(cur, distEnd, regions, func(r recovery.Region) []byte {
		return c.HeapBytes(src, r.Off, r.Len)
	})
	s.registry().Counter(recovery.MetricCheckpoints).Inc()
	return cp
}

// restoreCheckpoint writes the checkpointed regions into every member of
// the (re-formed) group, re-establishing the barrier state the replay
// resumes from.
func (s *Session) restoreCheckpoint(cp *recovery.Checkpoint, g *cluster.Group) {
	c := s.Cluster
	for _, node := range g.Nodes() {
		cp.Restore(func(r recovery.Region, data []byte) {
			copy(c.HeapBytes(node, r.Off, r.Len), data)
		})
	}
}

// missingNodes lists the cluster nodes absent from the group members.
func missingNodes(n int, members []int) []int {
	in := make([]bool, n)
	for _, m := range members {
		in[m] = true
	}
	var out []int
	for node := 0; node < n; node++ {
		if !in[node] {
			out = append(out, node)
		}
	}
	return out
}


// nodeBytes returns a slice of node r's raw memory as a byte-granular
// region.
func nodeBytes(c *cluster.Cluster, r, off, length int) []byte {
	return c.Region(r, cluster.Buffer{Off: off, Elem: kir.U8, Count: length})
}

// partition describes how phase-1 blocks are assigned to nodes: node r
// executes [starts[r], starts[r]+counts[r]); blocks [distEnd, total) are
// callbacks.
type partition struct {
	starts, counts []int
	distEnd        int
	balanced       bool
}

// maxCount returns the largest element (0 for an empty slice).
func maxCount(counts []int) int {
	m := 0
	for _, c := range counts {
		if c > m {
			m = c
		}
	}
	return m
}

// partitionBlocks splits the non-tail blocks across nodes under the chosen
// remainder strategy.
func partitionBlocks(total, tail, n int, strategy RemainderStrategy) partition {
	distributable := total - tail
	p := distributable / n
	part := partition{starts: make([]int, n), counts: make([]int, n)}
	switch strategy {
	case RemainderImbalanced:
		rem := distributable % n
		off := 0
		for r := 0; r < n; r++ {
			cnt := p
			if r < rem {
				cnt++
			}
			part.starts[r] = off
			part.counts[r] = cnt
			off += cnt
		}
		part.distEnd = distributable
		part.balanced = rem == 0
	default:
		for r := 0; r < n; r++ {
			part.starts[r] = r * p
			part.counts[r] = p
		}
		part.distEnd = n * p
		part.balanced = true
	}
	return part
}

// runTrivial executes every block on every node (the correct fallback for
// non-distributable kernels; paper §6.1 "trivial Allgather distributable").
func (s *Session) runTrivial(st *launchState, stats *Stats) error {
	c := s.Cluster
	total := st.spec.Grid.Count()
	stats.CallbackBlocks = total
	works := make([]machine.BlockWork, c.N())
	wkCounts := make([][]int, c.N())
	reg := s.registry()
	wallStart := time.Now()
	err := c.RunParallel(func(rank int, _ transport.Conn) error {
		w, wc, err := s.runBlocks(st, rank, 0, total)
		if err != nil {
			return err
		}
		works[rank] = w
		wkCounts[rank] = wc
		return nil
	})
	reg.Histogram(MetricCallbackWallSec).Observe(time.Since(wallStart).Seconds())
	if err != nil {
		s.emitFailure(st.kernel.Name, err)
		return err
	}
	for rank := 0; rank < c.N(); rank++ {
		per := works[rank].Scale(1 / float64(total))
		dt := c.Machine().PhaseTime(total, per, s.execConfig(st))
		// Launch overhead gets its own span, exactly like the distributed
		// path: the timeline must tile each node's clock advance, so that
		// per-node span sums reproduce TotalSec.
		s.emit(trace.Event{StartSec: c.Node(rank).Clock, DurSec: KernelLaunchOverheadSec,
			Node: rank, Phase: trace.PhaseLaunch, Kernel: st.kernel.Name})
		c.Node(rank).Clock += KernelLaunchOverheadSec
		s.emit(trace.Event{StartSec: c.Node(rank).Clock, DurSec: dt,
			Node: rank, Phase: trace.PhaseCallback, Kernel: st.kernel.Name,
			Detail: fmt.Sprintf("trivial: all %d blocks", total)})
		s.emitWorkerSpans(c.Node(rank).Clock, dt, rank, st.kernel.Name, wkCounts[rank])
		reg.Histogram(MetricCallbackSimSec).Observe(dt)
		recordWorkerCounts(reg, wkCounts[rank])
		c.Node(rank).Clock += dt
		if rank == 0 {
			stats.CallbackSec = dt
			stats.Work = per
		}
	}
	return nil
}

// runBlocks executes the linearized block range [lo, hi) on one node and
// returns the summed work plus how many blocks each pool worker executed.
// Linearization is row-major over (by, bx), matching the analysis' Linear2D
// convention.
//
// The range is fanned over Session.Host.EffectiveWorkers() goroutines (the
// CuPBoP-style block-to-thread transform executing migrated GPU blocks
// across the node's CPU cores).  Assignment is static block-cyclic — worker
// w executes blocks lo+w, lo+w+W, … — so the per-worker block counts (and
// the PhaseWorker trace spans derived from them) are a pure function of the
// range and pool width, never of goroutine scheduling; identical runs
// export identical traces.  Per-block work is aggregated in block-index
// order, so the returned BlockWork — and every simulated-time figure
// derived from it — is bitwise identical to the single-worker (sequential)
// execution.
func (s *Session) runBlocks(st *launchState, rank, lo, hi int) (machine.BlockWork, []int, error) {
	n := hi - lo
	if n <= 0 {
		return machine.BlockWork{}, nil, nil
	}
	mem := s.Cluster.Mem(rank, st.binds)
	gdx := st.spec.Grid.X

	// mkExec builds one per-worker block executor.  The IR path allocates
	// worker-private runner state (launch validation, rounded scalar args,
	// shared-memory arenas, VM register files) once here instead of once
	// per block, so each pool worker must call it for its own executor.
	var mkExec func() (func(l int) (machine.BlockWork, error), error)
	blockMetric := MetricBlocksNative
	if st.native != nil {
		perBlock := st.native.BlockWork(st.argVals, st.spec.Grid, st.spec.Block)
		exec := func(l int) (machine.BlockWork, error) {
			bx, by := l%gdx, l/gdx
			if err := st.native.RunBlock(mem, st.argVals, st.spec.Grid, st.spec.Block, bx, by); err != nil {
				return machine.BlockWork{}, fmt.Errorf("kernel %s block (%d,%d): %w", st.kernel.Name, bx, by, err)
			}
			return perBlock, nil
		}
		mkExec = func() (func(l int) (machine.BlockWork, error), error) { return exec, nil }
	} else {
		engine := s.EffectiveEngine()
		switch engine {
		case cluster.EngineInterp:
			blockMetric = MetricBlocksInterp
		case cluster.EngineVMLanes:
			blockMetric = MetricBlocksVMLanes
		default:
			blockMetric = MetricBlocksVM
		}
		mkExec = func() (func(l int) (machine.BlockWork, error), error) {
			l := &interp.Launch{
				Kernel: st.kernel,
				Grid:   st.spec.Grid,
				Block:  st.spec.Block,
				Args:   st.argVals,
				Mem:    mem,
			}
			var r blockRunner
			var err error
			switch engine {
			case cluster.EngineInterp:
				r, err = interp.NewRunner(l)
			case cluster.EngineVMLanes:
				// The profiling decision was latched at resolve time so
				// every worker's runner agrees (see launchState.vmProfile).
				r, err = vm.NewLaneRunnerProfiled(l, st.vmProfile)
			default:
				r, err = vm.NewRunnerProfiled(l, st.vmProfile)
			}
			if err != nil {
				return nil, err
			}
			return func(li int) (machine.BlockWork, error) {
				bx, by := li%gdx, li/gdx
				w, err := r.ExecBlock(bx, by)
				if err != nil {
					return machine.BlockWork{}, err
				}
				return interpToBlockWork(w, st.spec.SIMDFraction), nil
			}, nil
		}
	}

	workers := s.Host.EffectiveWorkers()
	if workers > n {
		workers = n
	}
	counts := make([]int, workers)
	works := make([]machine.BlockWork, n)
	if workers == 1 {
		// Fast path: no goroutine or scheduling overhead.
		exec, err := mkExec()
		if err != nil {
			return machine.BlockWork{}, counts, err
		}
		for l := 0; l < n; l++ {
			w, err := exec(lo + l)
			if err != nil {
				return machine.BlockWork{}, counts, err
			}
			works[l] = w
		}
		counts[0] = n
	} else {
		var failed int32
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				exec, err := mkExec()
				if err != nil {
					errs[wk] = err
					atomic.StoreInt32(&failed, 1)
					return
				}
				for l := wk; l < n; l += workers {
					if atomic.LoadInt32(&failed) != 0 {
						return
					}
					w, err := exec(lo + l)
					if err != nil {
						errs[wk] = err
						atomic.StoreInt32(&failed, 1)
						return
					}
					works[l] = w
					counts[wk]++
				}
			}(wk)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return machine.BlockWork{}, counts, err
			}
		}
	}
	// Fold in block-index order: float summation order — and therefore the
	// work totals and modeled phase times — matches the sequential loop
	// exactly, whatever order the workers claimed blocks in.
	var total machine.BlockWork
	for i := range works {
		total.Add(works[i])
	}
	s.registry().Counter(blockMetric).Add(int64(n))
	return total, counts, nil
}

// emitWorkerSpans records one trace sub-span per pool worker that executed
// blocks during a partial/callback phase.  Single-worker pools emit nothing,
// keeping sequential timelines identical to the pre-pool runtime's.
func (s *Session) emitWorkerSpans(start, dur float64, rank int, kernel string, counts []int) {
	if s.Trace == nil || len(counts) <= 1 {
		return
	}
	for w, cnt := range counts {
		if cnt == 0 {
			continue
		}
		s.emit(trace.Event{StartSec: start, DurSec: dur, Node: rank,
			Phase: trace.PhaseWorker, Kernel: kernel,
			Detail: fmt.Sprintf("worker %d/%d: %d blocks", w, len(counts), cnt)})
	}
}

// emitFailure records a cluster-wide abort/timeout event so failed
// launches stay visible in the trace timeline alongside the phases that
// did complete.
func (s *Session) emitFailure(kernel string, err error) {
	if s.Trace == nil {
		return
	}
	phase := trace.PhaseAbort
	if errors.Is(err, transport.ErrTimeout) && !errors.Is(err, transport.ErrAborted) {
		phase = trace.PhaseTimeout
	}
	s.emit(trace.Event{StartSec: s.Cluster.MaxClock(), Node: -1,
		Phase: phase, Kernel: kernel, Detail: err.Error()})
}

// interpToBlockWork converts measured interpreter work into cost-model
// work, splitting flops by the kernel's declared vectorizable fraction.
func interpToBlockWork(w interp.Work, simdFraction float64) machine.BlockWork {
	f := simdFraction
	if f <= 0 || f > 1 {
		f = 1
	}
	flops := float64(w.Flops)
	return machine.BlockWork{
		VecFlops:    flops * f,
		SerialFlops: flops * (1 - f),
		IntOps:      float64(w.IntOps),
		Bytes:       float64(w.GlobalLoadBytes + w.GlobalStoreBytes),
	}
}

// execConfig derives the machine execution config for a launch, estimating
// the working set from the bound buffers.
func (s *Session) execConfig(st *launchState) machine.ExecConfig {
	cfg := s.Exec
	if cfg.WorkingSetBytes == 0 {
		ws := 0.0
		for _, b := range st.binds {
			ws += float64(b.Bytes())
		}
		cfg.WorkingSetBytes = ws
	}
	return cfg
}

// verifyConsistency checks the cross-node consistency invariant on every
// buffer the kernel wrote (and, for safety, every bound buffer).
func (s *Session) verifyConsistency(st *launchState) error {
	for _, b := range st.binds {
		if err := s.Cluster.VerifyIdentical(b); err != nil {
			return fmt.Errorf("core: kernel %s violated consistency: %w", st.kernel.Name, err)
		}
	}
	return nil
}

// Metadata returns the analysis result for a kernel.
func (s *Session) Metadata(kernel string) *analysis.Metadata { return s.Prog.Meta[kernel] }

// emit records a trace event when tracing is enabled.
func (s *Session) emit(ev trace.Event) {
	if s.Trace != nil {
		s.Trace.Add(ev)
	}
}

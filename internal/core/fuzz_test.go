package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cucc/internal/analysis"
	"cucc/internal/cluster"
	"cucc/internal/interp"
	"cucc/internal/kir"
)

// genKernel builds a random kernel from a template family with a known
// expected classification.  The generator varies: element interleaving
// width, guard kind, value arithmetic, and an optional uniform inner loop.
type genKernel struct {
	src           string
	distributable bool
	tail          bool
	// interleave is the number of elements each thread writes.
	interleave int
}

func generate(rng *rand.Rand) genKernel {
	interleave := 1 + rng.Intn(3)
	kind := rng.Intn(5)

	var value string
	switch rng.Intn(4) {
	case 0:
		value = "(float)(id * 3 + 1)"
	case 1:
		value = "(float)id * 0.5f + 2.0f"
	case 2:
		value = "sqrtf((float)(id + 1))"
	default:
		value = "acc"
	}

	var body strings.Builder
	body.WriteString("    int id = blockIdx.x * blockDim.x + threadIdx.x;\n")
	body.WriteString("    float acc = 0.0f;\n")
	if rng.Intn(2) == 0 {
		body.WriteString("    for (int i = 0; i < iters; i++)\n        acc += (float)i * 0.25f;\n")
	} else {
		body.WriteString("    acc = (float)id;\n")
	}

	stores := func(indent, idxPrefix string, count int) string {
		var b strings.Builder
		for j := 0; j < count; j++ {
			fmt.Fprintf(&b, "%sout[%s%d * %s + %d] = %s + %d.0f;\n", indent, "", interleave, idxPrefix, j, value, j)
		}
		return b.String()
	}

	g := genKernel{interleave: interleave}
	switch kind {
	case 0: // unguarded, fully distributable
		body.WriteString(stores("    ", "id", interleave))
		g.distributable = true
	case 1: // tail-divergent bound check
		body.WriteString("    if (id < n) {\n")
		body.WriteString(stores("        ", "id", interleave))
		body.WriteString("    }\n")
		g.distributable = true
		g.tail = true
	case 2: // gapped: writes only part of the interleave group
		wide := interleave + 1
		fmt.Fprintf(&body, "    out[%d * id] = %s;\n", wide, value)
		g.distributable = false
	case 3: // block-variant guard
		body.WriteString("    if (blockIdx.x > 1)\n")
		fmt.Fprintf(&body, "        out[id] = %s;\n", value)
		g.distributable = false
	default: // indirect write
		fmt.Fprintf(&body, "    out[idx[id]] = %s;\n", value)
		g.distributable = false
	}

	g.src = fmt.Sprintf(`
__global__ void fuzzed(float* out, int* idx, int n, int iters) {
%s}
`, body.String())
	return g
}

// TestFuzzAnalysisClassification generates random kernels and checks the
// analysis classifies each family as expected.
func TestFuzzAnalysisClassification(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for i := 0; i < 200; i++ {
		g := generate(rng)
		prog, err := Compile(g.src)
		if err != nil {
			t.Fatalf("kernel %d failed to compile: %v\n%s", i, err, g.src)
		}
		md := prog.Meta["fuzzed"]
		if md.Distributable != g.distributable {
			t.Fatalf("kernel %d: distributable = %v, want %v\n%s\n%s",
				i, md.Distributable, g.distributable, md.Summary(), g.src)
		}
		if g.distributable && md.TailDivergent != g.tail {
			t.Fatalf("kernel %d: tail = %v, want %v\n%s", i, md.TailDivergent, g.tail, g.src)
		}
		if g.distributable {
			unit, err := md.Buffers[0].UnitElems.Eval(analysis.Env{Bdx: 64, Bdy: 1, Gdx: 4, Gdy: 1,
				Params: map[string]int64{"n": 256, "iters": 3}})
			if err != nil {
				t.Fatal(err)
			}
			if unit != int64(g.interleave*64) {
				t.Fatalf("kernel %d: unit = %d, want %d", i, unit, g.interleave*64)
			}
		}
	}
}

// TestFuzzDistributedEquivalence executes random kernels (distributable
// and fallback alike) on multi-node clusters and checks the memory matches
// a single-node run bit for bit, under both remainder strategies and both
// IR engines (the single-node interpreter run is the oracle for all of
// them).
func TestFuzzDistributedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	ran := 0
	for i := 0; ran < 40; i++ {
		g := generate(rng)
		prog, err := Compile(g.src)
		if err != nil {
			t.Fatal(err)
		}
		// Indirect kernels need valid idx contents to execute at all;
		// give every kernel an identity index buffer.
		grid := 3 + rng.Intn(6)
		block := 32
		n := grid*block - rng.Intn(block)
		outLen := (g.interleave + 2) * grid * block
		run := func(nodes int, strategy RemainderStrategy, eng cluster.Engine) []byte {
			c := newCluster(t, nodes)
			out := c.Alloc(kir.F32, outLen)
			idx := c.Alloc(kir.I32, grid*block)
			ids := make([]int32, grid*block)
			for j := range ids {
				ids[j] = int32(j)
			}
			c.WriteAllI32(idx, ids)
			sess := NewSession(c, prog)
			sess.Verify = true
			sess.Host.Engine = eng
			if _, err := sess.Launch(LaunchSpec{
				Kernel:    "fuzzed",
				Grid:      interp.Dim1(grid),
				Block:     interp.Dim1(block),
				Args:      []Arg{BufArg(out), BufArg(idx), IntArg(int64(n)), IntArg(3)},
				Remainder: strategy,
			}); err != nil {
				t.Fatalf("kernel %d (nodes=%d, engine=%s): %v\n%s", i, nodes, eng, err, g.src)
			}
			snap := make([]byte, out.Bytes())
			copy(snap, c.Region(0, out))
			return snap
		}
		engines := []cluster.Engine{cluster.EngineInterp, cluster.EngineVM}
		ref := run(1, RemainderCallback, cluster.EngineInterp)
		if got := run(1, RemainderCallback, cluster.EngineVM); !bytes.Equal(got, ref) {
			t.Fatalf("kernel %d: single-node vm differs from interpreter\n%s", i, g.src)
		}
		for _, nodes := range []int{2, 5} {
			for _, strat := range []RemainderStrategy{RemainderCallback, RemainderImbalanced} {
				eng := engines[(i+nodes)%2]
				if got := run(nodes, strat, eng); !bytes.Equal(got, ref) {
					t.Fatalf("kernel %d: nodes=%d strategy=%d engine=%s differs from single-node\n%s",
						i, nodes, strat, eng, g.src)
				}
			}
		}
		ran++
	}
}

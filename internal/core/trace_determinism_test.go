package core

import (
	"bytes"
	"testing"

	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/trace"
)

// traceOneRun executes one tail-divergent multi-node launch with a wide
// worker pool and returns the exported Chrome trace.
func traceOneRun(t *testing.T, workers int) []byte {
	t.Helper()
	prog := MustCompile(workerScaleSrc)
	c := newCluster(t, 3)
	src := c.Alloc(kir.F32, 13*64)
	dst := c.Alloc(kir.F32, 13*64)
	vals := make([]float32, 13*64)
	for i := range vals {
		vals[i] = float32(i % 101)
	}
	if err := c.WriteAllF32(src, vals); err != nil {
		t.Fatal(err)
	}
	sess := NewSession(c, prog)
	sess.Host.Workers = workers
	rec := trace.New()
	sess.Trace = rec
	if _, err := sess.Launch(LaunchSpec{
		Kernel: "scale",
		Grid:   interp.Dim1(13),
		Block:  interp.Dim1(64),
		Args:   []Arg{BufArg(src), BufArg(dst), IntArg(13*64 - 5)},
	}); err != nil {
		t.Fatal(err)
	}
	raw, err := rec.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestTraceDeterministicAcrossRuns: two identical multi-worker runs must
// export byte-identical Chrome traces.  This needs both halves of the
// determinism work: the static block-cyclic worker assignment (per-worker
// block counts independent of goroutine scheduling) and the full sort key
// in trace.Events (export order independent of event insertion order).
func TestTraceDeterministicAcrossRuns(t *testing.T) {
	first := traceOneRun(t, 4)
	for i := 0; i < 3; i++ {
		if again := traceOneRun(t, 4); !bytes.Equal(first, again) {
			t.Fatalf("run %d produced a different trace (%d vs %d bytes)", i+2, len(again), len(first))
		}
	}
}

package core_test

import (
	"fmt"
	"log"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/simnet"
)

// Example compiles the paper's Listing 1 kernel and runs it through the
// three-phase workflow on a 2-node cluster (the Figure 5 walkthrough).
func Example() {
	prog, err := core.Compile(`
__global__ void vec_copy(char *src, char *dest, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n)
        dest[id] = src[id];
}`)
	if err != nil {
		log.Fatal(err)
	}
	c, err := cluster.New(cluster.Config{
		Nodes: 2, Machine: machine.Intel6226(), Net: simnet.IB100(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	const n = 1200
	src := c.Alloc(kir.U8, n)
	dest := c.Alloc(kir.U8, n)
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i)
	}
	if err := c.WriteAll(src, data); err != nil {
		log.Fatal(err)
	}

	sess := core.NewSession(c, prog)
	stats, err := sess.Launch(core.LaunchSpec{
		Kernel: "vec_copy",
		Grid:   interp.Dim1(5),
		Block:  interp.Dim1(256),
		Args:   []core.Arg{core.BufArg(src), core.BufArg(dest), core.IntArg(n)},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("distributed:", stats.Distributed)
	fmt.Println("blocks per node:", stats.BlocksPerNode)
	fmt.Println("callback blocks:", stats.CallbackBlocks)
	fmt.Println("allgather bytes per node:", stats.CommBytesPerNode)
	// Output:
	// distributed: true
	// blocks per node: 2
	// callback blocks: 1
	// allgather bytes per node: 512
}

// ExampleProgram_ExplainKernel prints the analysis verdict and the
// generated host module for a kernel (Figure 6).
func ExampleProgram_ExplainKernel() {
	prog := core.MustCompile(`
__global__ void scale(float* x, float a) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    x[id] = a * x[id];
}`)
	md := prog.Meta["scale"]
	fmt.Println(md.Distributable, md.TailDivergent, md.GIDOnly)
	// Output:
	// true false true
}

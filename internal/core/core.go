// Package core is the CuCC framework itself: the end-to-end compiler
// driver (mini-CUDA source -> IR -> Allgather-distributable analysis ->
// executable program) and the three-phase distributed runtime of the paper:
//
//  1. Partial block execution: each node runs a distinct contiguous range
//     of GPU blocks against its private memory.
//  2. Balanced-in-place Allgather: one collective per written buffer
//     restores memory consistency across nodes.
//  3. Callback block execution: deferred blocks (the tail-divergent block
//     and the non-divisible remainder) run on every node identically.
//
// Kernels the analysis cannot prove distributable fall back to trivial
// execution (every node runs every block), which is always correct.
package core

import (
	"fmt"
	"runtime"

	"cucc/internal/analysis"
	"cucc/internal/cluster"
	"cucc/internal/csched"
	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/lang"
	"cucc/internal/machine"
	"cucc/internal/metrics"
	"cucc/internal/obs"
	"cucc/internal/recovery"
	"cucc/internal/trace"
	"cucc/internal/vm"
)

// KernelLaunchOverheadSec is the fixed host-side cost of one kernel launch
// on the CPU runtime (thread-pool dispatch).
const KernelLaunchOverheadSec = 10e-6

// Program is a compiled kernel module plus its analysis metadata.
type Program struct {
	Module  *kir.Module
	Meta    map[string]*analysis.Metadata
	natives map[string]Native
}

// Native is a backend-generated (hand-written Go) implementation of a
// kernel, registered alongside the IR.  RunBlock must be semantically
// identical to interpreting the IR — the test suites cross-validate.
type Native struct {
	// RunBlock executes one GPU block.
	RunBlock func(mem interp.Memory, args []interp.Value, grid, block interp.Dim3, bx, by int) error
	// BlockWork returns the analytic per-block work for the cost model.
	BlockWork func(args []interp.Value, grid, block interp.Dim3) machine.BlockWork
}

// Compile parses and analyzes kernel source, the analogue of the paper's
// LLVM pipeline in Figure 6.
func Compile(src string) (*Program, error) {
	mod, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Program{
		Module:  mod,
		Meta:    analysis.AnalyzeModule(mod),
		natives: map[string]Native{},
	}, nil
}

// MustCompile is Compile that panics on error, for static suite sources.
func MustCompile(src string) *Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// RegisterNative attaches a native implementation to a kernel.
func (p *Program) RegisterNative(kernel string, n Native) error {
	if p.Module.Kernel(kernel) == nil {
		return fmt.Errorf("core: no kernel %q", kernel)
	}
	p.natives[kernel] = n
	return nil
}

// Kernel returns the named kernel's IR, or nil.
func (p *Program) Kernel(name string) *kir.Kernel { return p.Module.Kernel(name) }

// Arg is one kernel launch argument: a device buffer for pointer
// parameters or a scalar value.
type Arg struct {
	Buf   *cluster.Buffer
	Val   interp.Value
	IsBuf bool
}

// BufArg wraps a buffer argument.
func BufArg(b cluster.Buffer) Arg { return Arg{Buf: &b, IsBuf: true} }

// IntArg wraps an integer scalar argument.
func IntArg(v int64) Arg { return Arg{Val: interp.IntV(v)} }

// FloatArg wraps a float scalar argument.
func FloatArg(v float64) Arg { return Arg{Val: interp.FloatV(v)} }

// LaunchSpec describes one kernel launch.
type LaunchSpec struct {
	Kernel string
	Grid   interp.Dim3
	Block  interp.Dim3
	Args   []Arg
	// SIMDFraction is the fraction of the kernel's flops the CPU backend
	// vectorizes (1 = fully vectorizable).  Used only by the cost model
	// when executing interpreted kernels; natives report their own split.
	SIMDFraction float64
	// ForceTrivial disables distribution (ablation/fallback testing).
	ForceTrivial bool
	// UseInterp forces the interpreter even when a native is registered.
	UseInterp bool
	// BlockSplit relaunches the kernel with each GPU block split into
	// this many CPU-sized blocks (grid x split, block / split).  Valid
	// only for kernels the analysis marks GIDOnly — the workload
	// redistribution of paper §8.3, which lets programs with few blocks
	// (e.g. EP's 512) fill large CPU clusters.
	BlockSplit int
	// Remainder selects how blocks that do not divide evenly across
	// nodes are handled (RemainderCallback default).
	Remainder RemainderStrategy
}

// RemainderStrategy selects the handling of the non-divisible block
// remainder in the distributable path.
type RemainderStrategy uint8

const (
	// RemainderCallback is the paper's design: the remainder (plus the
	// tail-divergent block) is deferred to phase 3 and executed by every
	// node after a balanced Allgather.  Simple and always balanced, but
	// the callback blocks cost an extra scheduling wave on every node —
	// the §7.2 Kmeans 16->32-node anomaly.
	RemainderCallback RemainderStrategy = iota
	// RemainderImbalanced distributes the remainder across the first
	// nodes (some execute p+1 blocks) and synchronizes with an
	// imbalanced Allgatherv instead.  Avoids the callback wave at the
	// price of a slower collective (§2.3: balanced beats imbalanced).
	// Only the tail-divergent block, if any, remains a callback.
	RemainderImbalanced
)

// ExecConfig tunes the real (wall-clock) intra-node execution of block
// ranges.  It is distinct from machine.ExecConfig, which parameterizes the
// *simulated* cost model: Workers changes how fast this process executes a
// launch, never the modeled times or the computed data.
type ExecConfig struct {
	// Workers is the width of the per-node worker pool runBlocks fans a
	// block range over (the CuPBoP-style block-to-thread transform).
	// 0 selects DefaultWorkers, then runtime.NumCPU().
	Workers int
	// Engine selects the IR execution engine for kernels without a native
	// implementation.  EngineDefault falls through to the cluster's
	// configured engine, then DefaultEngine, then EngineVM.  Both engines
	// produce bitwise-identical memory and Work counters; the interpreter
	// is kept as the differential-testing oracle.
	Engine cluster.Engine
}

// DefaultWorkers is the process-wide default worker-pool width used when a
// Session's Host.Workers is zero (0 = runtime.NumCPU()).  CLI tools
// (cuccrun/cuccbench -workers) set it so sessions created deep inside
// experiment sweeps inherit the flag.
var DefaultWorkers int

// DefaultEngine is the process-wide default IR engine used when neither the
// session nor the cluster picks one.  CLI tools set it from -engine;
// unset, the runtime uses the register-machine VM.
var DefaultEngine cluster.Engine

// DefaultCollective is the process-wide default phase-2 collective schedule
// used when neither the session nor the cluster picks one.  CLI tools set
// it from -collective; unset, the runtime uses the legacy hand-written
// ring collectives.
var DefaultCollective csched.Choice

// DefaultRecovery is the process-wide default elastic-recovery policy used
// when neither the session nor the cluster sets one.  CLI tools set it from
// -recover; unset, launches fail on rank loss as before.
var DefaultRecovery recovery.Policy

// EffectiveWorkers resolves the configured width to a concrete worker
// count (>= 1).
func (e ExecConfig) EffectiveWorkers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	if DefaultWorkers > 0 {
		return DefaultWorkers
	}
	return runtime.NumCPU()
}

// Stats reports one launch's execution.
type Stats struct {
	// Distributed reports whether the three-phase workflow was used.
	Distributed bool
	// TailDivergent mirrors the kernel metadata.
	TailDivergent bool
	// BlocksPerNode is the largest phase-1 block count any node executes
	// (p_size; the makespan-relevant count).  Under RemainderImbalanced
	// ranks differ — BlocksByNode has the per-rank counts.
	BlocksPerNode int
	// BlocksByNode is the phase-1 block count of every rank (nil for
	// non-distributed launches).
	BlocksByNode []int
	// CallbackBlocks is the phase-3 block count (executed by all nodes).
	CallbackBlocks int
	// Phase1Sec, CommSec, CallbackSec are simulated phase times.
	Phase1Sec   float64
	CommSec     float64
	CallbackSec float64
	// TotalSec is the simulated makespan of the launch.
	TotalSec float64
	// CommBytesPerNode is the bytes each node contributed to Allgather.
	CommBytesPerNode int64
	// CommMsgs is the total messages sent cluster-wide.
	CommMsgs int64
	// CollectiveAlgo names the phase-2 schedule the compiler selected
	// ("recdouble", "pipeline:4", ...); empty on the legacy ring path.
	CollectiveAlgo string
	// OverlapSec is the simulated time saved by overlapping phase-3
	// callback blocks with in-flight Allgather chunks (0 without overlap).
	OverlapSec float64
	// Restores counts checkpoint restores the launch needed (0 for a
	// fault-free run); the reported phase figures are those of the final,
	// successful attempt.
	Restores int
	// LostNodes lists the cluster nodes that crashed and were excluded by
	// recovery (repaired and rejoined after the launch completed).
	LostNodes []int
	// Work is the measured/estimated per-block work.
	Work machine.BlockWork
}

// Session executes programs on a cluster.
type Session struct {
	Cluster *cluster.Cluster
	Prog    *Program
	// Exec tunes the simulated node execution model (SIMD, core caps).
	Exec machine.ExecConfig
	// Host tunes real intra-node execution (worker-pool width).
	Host ExecConfig
	// Collective selects the phase-2 collective schedule (the zero value
	// defers to the cluster, then DefaultCollective, then the legacy
	// hand-written ring).
	Collective csched.Choice
	// Recovery selects the elastic-recovery policy (the zero value defers
	// to the cluster, then DefaultRecovery, ultimately disabled).
	Recovery recovery.Policy
	// Verify re-checks cross-node memory consistency after every launch.
	Verify bool
	// Trace, when non-nil, records a simulated-time timeline of every
	// launch (see internal/trace).
	Trace *trace.Recorder
	// Metrics, when non-nil, is the registry launches report into; nil
	// falls back to the cluster's registry, then metrics.Default().
	// Recording never changes a simulated figure or the computed data —
	// the suites-level equivalence test enforces it.
	Metrics *metrics.Registry
	// Obs, when enabled, records launch-lifecycle events (launch phases,
	// checkpoints, rank losses, restores, rejoins) into the structured
	// event journal (see internal/obs).  The zero Scope is disabled; the
	// same never-moves-a-figure invariant as Metrics applies.
	Obs obs.Scope
}

// NewSession builds a session with default execution config.
func NewSession(c *cluster.Cluster, p *Program) *Session {
	return &Session{Cluster: c, Prog: p, Exec: machine.DefaultConfig()}
}

// EffectiveEngine resolves the layered engine preference (session, then
// cluster, then process default) to a concrete engine; the register-machine
// VM when nothing is configured.
func (s *Session) EffectiveEngine() cluster.Engine {
	if s.Host.Engine != cluster.EngineDefault {
		return s.Host.Engine
	}
	if s.Cluster != nil {
		if e := s.Cluster.Engine(); e != cluster.EngineDefault {
			return e
		}
	}
	if DefaultEngine != cluster.EngineDefault {
		return DefaultEngine
	}
	return cluster.EngineVM
}

// EffectiveCollective resolves the layered collective-schedule preference
// (session, then cluster, then process default) to a concrete choice; the
// zero value — the legacy hand-written ring — when nothing is configured.
// The first non-zero layer wins entirely, including its Overlap/Chunks
// modifiers, mirroring EffectiveEngine.
func (s *Session) EffectiveCollective() csched.Choice {
	if s.Collective != (csched.Choice{}) {
		return s.Collective
	}
	if s.Cluster != nil {
		if c := s.Cluster.Collective(); c != (csched.Choice{}) {
			return c
		}
	}
	return DefaultCollective
}

// EffectiveRecovery resolves the layered elastic-recovery policy (session,
// then cluster, then process default); the zero value — disabled — when
// nothing is configured.  The first non-zero layer wins entirely, so an
// explicit Policy{Enabled: false} at a higher layer overrides an enabled
// default below it, mirroring EffectiveCollective.
func (s *Session) EffectiveRecovery() recovery.Policy {
	if s.Recovery != (recovery.Policy{}) {
		return s.Recovery
	}
	if s.Cluster != nil {
		if p := s.Cluster.Recovery(); p != (recovery.Policy{}) {
			return p
		}
	}
	return DefaultRecovery
}

// launchState carries the resolved launch context.
type launchState struct {
	kernel  *kir.Kernel
	md      *analysis.Metadata
	spec    LaunchSpec
	binds   map[int]cluster.Buffer
	argVals []interp.Value
	env     analysis.Env
	native  *Native

	// vmProfile latches the VM opcode profiler's on/off switch once per
	// launch, at resolve time, so every worker's Runner — across ranks,
	// pool workers, and the partial/callback phases — agrees even if
	// vm.SetProfiling is toggled while the launch is in flight.  Without
	// the latch, a mid-launch toggle yields a pool where some Runners are
	// instrumented and others are not, silently undercounting profiles.
	vmProfile bool

	// readsWritten reports whether the kernel loads from any buffer it
	// also writes (per the analysis write-set).  Phase-3 callback blocks of
	// such kernels may read gathered data, so phase-2/3 overlap is unsafe
	// and the runtime falls back to the barrier semantics.  Callback blocks
	// of kernels without such loads touch only block-private output regions
	// disjoint from the gathered chunks (atomics to global memory already
	// make a kernel non-distributable), so they can run while later
	// Allgather chunks are still in flight.
	readsWritten bool
}

func (s *Session) resolve(spec LaunchSpec) (*launchState, error) {
	k := s.Prog.Kernel(spec.Kernel)
	if k == nil {
		return nil, fmt.Errorf("core: no kernel %q", spec.Kernel)
	}
	if len(spec.Args) != len(k.Params) {
		return nil, fmt.Errorf("core: kernel %s takes %d args, got %d", k.Name, len(k.Params), len(spec.Args))
	}
	if spec.Grid.Count() <= 0 || spec.Block.Count() <= 0 {
		return nil, fmt.Errorf("core: kernel %s: empty grid or block", k.Name)
	}
	md := s.Prog.Meta[spec.Kernel]
	if spec.BlockSplit > 1 {
		if md == nil || !md.GIDOnly {
			return nil, fmt.Errorf("core: kernel %s is not GID-only; block splitting is unsafe", k.Name)
		}
		if spec.Grid.Y > 1 || spec.Block.Y > 1 {
			return nil, fmt.Errorf("core: kernel %s: block splitting requires a 1D launch", k.Name)
		}
		if spec.Block.X%spec.BlockSplit != 0 {
			return nil, fmt.Errorf("core: kernel %s: block size %d not divisible by split %d", k.Name, spec.Block.X, spec.BlockSplit)
		}
		spec.Grid.X *= spec.BlockSplit
		spec.Block.X /= spec.BlockSplit
	}
	st := &launchState{
		kernel:  k,
		md:      md,
		spec:    spec,
		binds:   map[int]cluster.Buffer{},
		argVals: make([]interp.Value, len(spec.Args)),
	}
	params := map[string]int64{}
	for i, a := range spec.Args {
		if a.IsBuf != k.Params[i].Pointer {
			return nil, fmt.Errorf("core: kernel %s arg %d (%s): buffer/scalar mismatch", k.Name, i, k.Params[i].Name)
		}
		if a.IsBuf {
			if a.Buf.Elem != k.Params[i].Elem {
				return nil, fmt.Errorf("core: kernel %s arg %d (%s): buffer elem %s, param wants %s",
					k.Name, i, k.Params[i].Name, a.Buf.Elem, k.Params[i].Elem)
			}
			st.binds[i] = *a.Buf
		} else {
			st.argVals[i] = a.Val
			if k.Params[i].Elem.IsInteger() {
				params[k.Params[i].Name] = a.Val.I
			}
		}
	}
	st.env = analysis.Env{
		Bdx:    int64(spec.Block.X),
		Bdy:    int64(max(spec.Block.Y, 1)),
		Gdx:    int64(spec.Grid.X),
		Gdy:    int64(max(spec.Grid.Y, 1)),
		Params: params,
	}
	if n, ok := s.Prog.natives[spec.Kernel]; ok && !spec.UseInterp {
		st.native = &n
	}
	st.vmProfile = vm.ProfilingEnabled()
	if md != nil && len(md.Buffers) > 0 {
		written := map[int]bool{}
		for _, bm := range md.Buffers {
			written[bm.Param] = true
		}
		kir.WalkExprs(k.Body, func(e kir.Expr) {
			if ld, ok := e.(*kir.Load); ok && ld.Mem.Space == kir.Global && written[ld.Mem.Param] {
				st.readsWritten = true
			}
		})
	}
	return st, nil
}

// bufferRegion resolves a BufferMeta to (buffer, baseElem, unitElems).
func (st *launchState) bufferRegion(bm analysis.BufferMeta) (cluster.Buffer, int64, int64, error) {
	buf, ok := st.binds[bm.Param]
	if !ok {
		return cluster.Buffer{}, 0, 0, fmt.Errorf("core: kernel %s: no buffer bound to written param %s", st.kernel.Name, bm.ParamName)
	}
	base, err := bm.Base.Eval(st.env)
	if err != nil {
		return cluster.Buffer{}, 0, 0, err
	}
	unit, err := bm.UnitElems.Eval(st.env)
	if err != nil {
		return cluster.Buffer{}, 0, 0, err
	}
	if unit <= 0 {
		return cluster.Buffer{}, 0, 0, fmt.Errorf("core: kernel %s: non-positive unit size %d for %s", st.kernel.Name, unit, bm.ParamName)
	}
	return buf, base, unit, nil
}

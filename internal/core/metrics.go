package core

import (
	"cucc/internal/metrics"
	"cucc/internal/vm"
)

// Metric names the runtime records per launch.  Two time domains coexist
// and are deliberately kept apart in the naming: *.sim_seconds histograms
// observe the modeled (simulated) phase times — deterministic, and exactly
// the figures Stats reports — while *.wall_seconds observe how long this
// process actually took, which varies with worker-pool width and machine
// load.  Instrumentation only ever reads the simulated figures; it never
// feeds back into partitioning or the cost model.
const (
	MetricLaunches            = "core.launch.total"
	MetricLaunchesDistributed = "core.launch.distributed"
	MetricLaunchesTrivial     = "core.launch.trivial"
	MetricLaunchErrors        = "core.launch.errors"
	MetricLaunchSimSec        = "core.launch.sim_seconds"
	MetricLaunchWallSec       = "core.launch.wall_seconds"
	MetricPartialSimSec       = "core.phase.partial.sim_seconds"
	MetricAllgatherSimSec     = "core.phase.allgather.sim_seconds"
	MetricCallbackSimSec      = "core.phase.callback.sim_seconds"
	MetricPartialWallSec      = "core.phase.partial.wall_seconds"
	MetricCallbackWallSec     = "core.phase.callback.wall_seconds"
	MetricBlocksNative        = "core.blocks.native"
	MetricBlocksVM            = "core.blocks.vm"
	MetricBlocksVMLanes       = "core.blocks.vm_lanes"
	MetricBlocksInterp        = "core.blocks.interp"
	MetricWorkerBlocks        = "core.worker.blocks"
	MetricWorkerUtilization   = "core.worker.utilization"
)

// registry resolves the session's metrics destination: the session's own
// registry, then the cluster's, then the process default.  Nil means
// metrics are disabled; every recording helper is a no-op then.
func (s *Session) registry() *metrics.Registry {
	if s.Metrics != nil {
		return s.Metrics
	}
	if s.Cluster != nil {
		if r := s.Cluster.Metrics(); r != nil {
			return r
		}
	}
	return metrics.Default()
}

// registerVMGauges bridges the VM's always-on compile-cache counters into
// the registry as snapshot-time gauges.  GaugeFunc replaces, so calling
// once per launch is idempotent.
func registerVMGauges(r *metrics.Registry) {
	r.GaugeFunc("vm.compile_cache.hits", func() float64 { return float64(vm.ReadCacheStats().Hits) })
	r.GaugeFunc("vm.compile_cache.misses", func() float64 { return float64(vm.ReadCacheStats().Misses) })
	r.GaugeFunc("vm.compile_cache.evictions", func() float64 { return float64(vm.ReadCacheStats().Evictions) })
	r.GaugeFunc("vm.compile_cache.entries", func() float64 { return float64(vm.ReadCacheStats().Entries) })
	r.GaugeFunc("vm.compile_cache.cap", func() float64 { return float64(vm.ReadCacheStats().CapEntries) })
	r.GaugeFunc("vm.compile.seconds", func() float64 { return vm.ReadCacheStats().CompileSeconds })
}

// registerVMProfileGauges bridges the opt-in VM opcode profiler into the
// registry: one gauge per profiled kernel for the dynamic instruction
// count, plus one per executed opcode.  Runs after a launch (not before)
// so the kernels profiled during it are visible; GaugeFunc replaces, so
// per-launch re-registration is idempotent.  No-op while profiling is off.
func registerVMProfileGauges(r *metrics.Registry) {
	if !vm.ProfilingEnabled() {
		return
	}
	for name, fn := range vm.ProfileGauges() {
		r.GaugeFunc(name, fn)
	}
}

// recordWorkerCounts observes the per-worker block counts of one node-phase
// and the pool's balance ratio (1.0 = every worker executed the same block
// count as the busiest one).  Single-worker pools record nothing, matching
// emitWorkerSpans.
func recordWorkerCounts(r *metrics.Registry, counts []int) {
	if r == nil || len(counts) <= 1 {
		return
	}
	maxCnt, total := 0, 0
	for _, c := range counts {
		total += c
		if c > maxCnt {
			maxCnt = c
		}
	}
	if maxCnt == 0 {
		return
	}
	blocks := r.Histogram(MetricWorkerBlocks)
	for _, c := range counts {
		blocks.Observe(float64(c))
	}
	r.Histogram(MetricWorkerUtilization).Observe(float64(total) / (float64(maxCnt) * float64(len(counts))))
}

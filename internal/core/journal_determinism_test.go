package core

import (
	"bytes"
	"testing"

	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/obs"
)

// journalOneRun executes one multi-node launch with the event journal wired
// and returns the exported journal.
func journalOneRun(t *testing.T, workers int) []byte {
	t.Helper()
	prog := MustCompile(workerScaleSrc)
	c := newCluster(t, 3)
	src := c.Alloc(kir.F32, 13*64)
	dst := c.Alloc(kir.F32, 13*64)
	vals := make([]float32, 13*64)
	for i := range vals {
		vals[i] = float32(i % 101)
	}
	if err := c.WriteAllF32(src, vals); err != nil {
		t.Fatal(err)
	}
	sess := NewSession(c, prog)
	sess.Host.Workers = workers
	j := obs.NewJournal(0)
	sess.Obs = obs.Scope{J: j, Tenant: "det", Job: 1}
	if _, err := sess.Launch(LaunchSpec{
		Kernel: "scale",
		Grid:   interp.Dim1(13),
		Block:  interp.Dim1(64),
		Args:   []Arg{BufArg(src), BufArg(dst), IntArg(13*64 - 5)},
	}); err != nil {
		t.Fatal(err)
	}
	raw, err := j.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestJournalDeterministicAcrossRuns: two identical multi-worker launches
// must export byte-identical event journals — the journal analogue of
// TestTraceDeterministicAcrossRuns.  This holds because events carry no
// wall-clock timestamps (only the monotonic sequence number) and every
// Detail string is a deterministic function of the run.
func TestJournalDeterministicAcrossRuns(t *testing.T) {
	first := journalOneRun(t, 4)
	if !bytes.Contains(first, []byte(obs.EvLaunchPhase)) {
		t.Fatalf("journal recorded no launch-phase events:\n%s", first)
	}
	for i := 0; i < 3; i++ {
		if again := journalOneRun(t, 4); !bytes.Equal(first, again) {
			t.Fatalf("run %d produced a different journal:\n%s\nvs\n%s", i+2, again, first)
		}
	}
}

package core

import (
	"math"
	"strings"
	"testing"

	"cucc/internal/cluster"
	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/simnet"
	"cucc/internal/trace"
)

const vecCopySrc = `
__global__ void vec_copy(char *src, char *dest, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n)
        dest[id] = src[id];
}
`

func newCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{Nodes: n, Machine: machine.Intel6226(), Net: simnet.IB100()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// runVecCopy executes the paper's Listing 1 example on an n-node cluster
// and returns the session stats and output bytes.
func runVecCopy(t *testing.T, n int) (*Stats, []byte) {
	t.Helper()
	prog, err := Compile(vecCopySrc)
	if err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, n)
	const N = 1200
	src := c.Alloc(kir.U8, N)
	dest := c.Alloc(kir.U8, N)
	data := make([]byte, N)
	for i := range data {
		data[i] = byte(i*13 + 7)
	}
	if err := c.WriteAll(src, data); err != nil {
		t.Fatal(err)
	}
	sess := NewSession(c, prog)
	sess.Verify = true
	stats, err := sess.Launch(LaunchSpec{
		Kernel: "vec_copy",
		Grid:   interp.Dim1(5),
		Block:  interp.Dim1(256),
		Args:   []Arg{BufArg(src), BufArg(dest), IntArg(N)},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, N)
	copy(out, c.Region(0, dest))
	for i := range data {
		if out[i] != data[i] {
			t.Fatalf("n=%d: dest[%d] = %d, want %d", n, i, out[i], data[i])
		}
	}
	return stats, out
}

// TestPaperWorkflowExample reproduces the Figure 5 walkthrough: 5 blocks on
// 2 nodes -> blocks 0-1 on node 0, blocks 2-3 on node 1, block 4 callback.
func TestPaperWorkflowExample(t *testing.T) {
	stats, _ := runVecCopy(t, 2)
	if !stats.Distributed {
		t.Fatal("vec_copy was not distributed")
	}
	if !stats.TailDivergent {
		t.Error("vec_copy should be tail-divergent")
	}
	if stats.BlocksPerNode != 2 {
		t.Errorf("p_size = %d, want 2", stats.BlocksPerNode)
	}
	if stats.CallbackBlocks != 1 {
		t.Errorf("callbacks = %d, want 1", stats.CallbackBlocks)
	}
	// Each node contributes 2 blocks x 256 bytes.
	if stats.CommBytesPerNode != 512 {
		t.Errorf("comm bytes/node = %d, want 512", stats.CommBytesPerNode)
	}
	// Ring allgather on 2 nodes: 1 message per node per buffer.
	if stats.CommMsgs != 2 {
		t.Errorf("total msgs = %d, want 2", stats.CommMsgs)
	}
}

func TestVecCopyAllClusterSizes(t *testing.T) {
	_, ref := runVecCopy(t, 1)
	for _, n := range []int{2, 3, 4, 5, 8} {
		_, got := runVecCopy(t, n)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("n=%d differs from single-node reference at byte %d", n, i)
			}
		}
	}
}

func TestKmeansBlockCounts(t *testing.T) {
	// Paper §7.2: 313 blocks, 16 nodes -> 19 per node + 9 callbacks;
	// 32 nodes -> 9 per node + 25 callbacks.
	prog := MustCompile(`
__global__ void k(float* out, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n) out[id] = 1.0f;
}`)
	for _, tc := range []struct {
		nodes, p, cb int
	}{
		{16, 19, 9},
		{32, 9, 25},
	} {
		c := newCluster(t, tc.nodes)
		const blocks, bs = 313, 64
		n := blocks*bs - 10 // force tail divergence
		out := c.Alloc(kir.F32, blocks*bs)
		sess := NewSession(c, prog)
		sess.Verify = true
		stats, err := sess.Launch(LaunchSpec{
			Kernel: "k",
			Grid:   interp.Dim1(blocks),
			Block:  interp.Dim1(bs),
			Args:   []Arg{BufArg(out), IntArg(int64(n))},
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.BlocksPerNode != tc.p || stats.CallbackBlocks != tc.cb {
			t.Errorf("nodes=%d: p=%d cb=%d, want p=%d cb=%d",
				tc.nodes, stats.BlocksPerNode, stats.CallbackBlocks, tc.p, tc.cb)
		}
	}
}

func TestNonDistributableFallsBackTrivially(t *testing.T) {
	prog := MustCompile(`
__global__ void hist(char* data, int* bins, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        atomicAdd(&bins[data[id]], 1);
}`)
	if prog.Meta["hist"].Distributable {
		t.Fatal("hist should not be distributable")
	}
	c := newCluster(t, 4)
	const n = 1000
	data := c.Alloc(kir.U8, n)
	bins := c.Alloc(kir.I32, 16)
	raw := make([]byte, n)
	for i := range raw {
		raw[i] = byte(i % 16)
	}
	if err := c.WriteAll(data, raw); err != nil {
		t.Fatal(err)
	}
	sess := NewSession(c, prog)
	sess.Verify = true
	stats, err := sess.Launch(LaunchSpec{
		Kernel: "hist",
		Grid:   interp.Dim1(4),
		Block:  interp.Dim1(256),
		Args:   []Arg{BufArg(data), BufArg(bins), IntArg(n)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Distributed {
		t.Error("non-distributable kernel was distributed")
	}
	// Every node computed the full histogram identically.
	got := c.ReadI32(2, bins)
	for b := 0; b < 16; b++ {
		want := int32(n / 16)
		if b < n%16 {
			want++
		}
		if got[b] != want {
			t.Errorf("bins[%d] = %d, want %d", b, got[b], want)
		}
	}
}

func TestForceTrivialMatchesDistributed(t *testing.T) {
	prog := MustCompile(vecCopySrc)
	run := func(force bool) []byte {
		c := newCluster(t, 4)
		const N = 1200
		src := c.Alloc(kir.U8, N)
		dest := c.Alloc(kir.U8, N)
		data := make([]byte, N)
		for i := range data {
			data[i] = byte(i * 3)
		}
		c.WriteAll(src, data)
		sess := NewSession(c, prog)
		sess.Verify = true
		stats, err := sess.Launch(LaunchSpec{
			Kernel:       "vec_copy",
			Grid:         interp.Dim1(5),
			Block:        interp.Dim1(256),
			Args:         []Arg{BufArg(src), BufArg(dest), IntArg(N)},
			ForceTrivial: force,
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Distributed == force {
			t.Errorf("force=%v but Distributed=%v", force, stats.Distributed)
		}
		out := make([]byte, N)
		copy(out, c.Region(0, dest))
		return out
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trivial and distributed runs differ at %d", i)
		}
	}
}

func TestNativeKernelMatchesInterp(t *testing.T) {
	prog := MustCompile(`
__global__ void saxpy(float* x, float* y, float a, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n)
        y[id] = a * x[id] + y[id];
}`)
	err := prog.RegisterNative("saxpy", Native{
		RunBlock: func(mem interp.Memory, args []interp.Value, grid, block interp.Dim3, bx, by int) error {
			a := float32(args[2].F)
			n := int(args[3].I)
			for tx := 0; tx < block.X; tx++ {
				id := bx*block.X + tx
				if id < n {
					mem.StoreF32(1, id, a*mem.LoadF32(0, id)+mem.LoadF32(1, id))
				}
			}
			return nil
		},
		BlockWork: func(args []interp.Value, grid, block interp.Dim3) machine.BlockWork {
			return machine.BlockWork{VecFlops: 2 * float64(block.X), Bytes: 12 * float64(block.X)}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	run := func(useInterp bool) []float32 {
		c := newCluster(t, 3)
		const n = 1000
		xs := make([]float32, 1024)
		ys := make([]float32, 1024)
		for i := range xs {
			xs[i] = float32(i) * 0.5
			ys[i] = 1
		}
		x := c.Alloc(kir.F32, 1024)
		y := c.Alloc(kir.F32, 1024)
		c.WriteAllF32(x, xs)
		c.WriteAllF32(y, ys)
		sess := NewSession(c, prog)
		sess.Verify = true
		_, err := sess.Launch(LaunchSpec{
			Kernel:    "saxpy",
			Grid:      interp.Dim1(4),
			Block:     interp.Dim1(256),
			Args:      []Arg{BufArg(x), BufArg(y), FloatArg(2), IntArg(n)},
			UseInterp: useInterp,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c.ReadF32(0, y)
	}
	ni, in := run(false), run(true)
	for i := range ni {
		if ni[i] != in[i] {
			t.Fatalf("native и interp differ at %d: %g vs %g", i, ni[i], in[i])
		}
	}
}

func TestLaunchValidation(t *testing.T) {
	prog := MustCompile(vecCopySrc)
	c := newCluster(t, 2)
	buf := c.Alloc(kir.U8, 100)
	f32buf := c.Alloc(kir.F32, 100)
	sess := NewSession(c, prog)
	cases := []LaunchSpec{
		{Kernel: "nope", Grid: interp.Dim1(1), Block: interp.Dim1(1)},
		{Kernel: "vec_copy", Grid: interp.Dim1(1), Block: interp.Dim1(1), Args: []Arg{BufArg(buf)}},                                     // arity
		{Kernel: "vec_copy", Grid: interp.Dim1(0), Block: interp.Dim1(1), Args: []Arg{BufArg(buf), BufArg(buf), IntArg(1)}},             // empty grid
		{Kernel: "vec_copy", Grid: interp.Dim1(1), Block: interp.Dim1(1), Args: []Arg{BufArg(buf), IntArg(1), IntArg(1)}},               // buf/scalar mismatch
		{Kernel: "vec_copy", Grid: interp.Dim1(1), Block: interp.Dim1(1), Args: []Arg{BufArg(buf), BufArg(f32buf), IntArg(1)}},          // elem mismatch
		{Kernel: "vec_copy", Grid: interp.Dim1(100), Block: interp.Dim1(256), Args: []Arg{BufArg(buf), BufArg(buf), IntArg(100 * 256)}}, // out of bounds
	}
	for i, spec := range cases {
		if _, err := sess.Launch(spec); err == nil {
			t.Errorf("case %d: invalid launch accepted", i)
		}
	}
}

func TestStatsTiming(t *testing.T) {
	stats, _ := runVecCopy(t, 4)
	if stats.TotalSec <= 0 {
		t.Error("TotalSec not positive")
	}
	if stats.CommSec <= 0 {
		t.Error("CommSec not positive for a 4-node distributed launch")
	}
	sum := stats.Phase1Sec + stats.CommSec + stats.CallbackSec
	if stats.TotalSec < sum*0.5 || stats.TotalSec > sum*2+KernelLaunchOverheadSec*10 {
		t.Errorf("TotalSec %g inconsistent with phases %g", stats.TotalSec, sum)
	}
}

// TestScalingImprovesRuntime checks strong scaling on a compute-heavy
// kernel: simulated time must drop when nodes are added.
func TestScalingImprovesRuntime(t *testing.T) {
	// Exact-fit grid (no bound check) so there are no callback blocks and
	// scaling is limited only by communication.
	src := `
__global__ void heavy(float* out, int iters) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    float acc = 0.0f;
    for (int i = 0; i < iters; i++)
        acc += (float)i * 0.5f;
    out[id] = acc;
}`
	prog := MustCompile(src)
	times := map[int]float64{}
	for _, n := range []int{1, 2, 4} {
		c := newCluster(t, n)
		out := c.Alloc(kir.F32, 96*32)
		sess := NewSession(c, prog)
		sess.Verify = true
		stats, err := sess.Launch(LaunchSpec{
			Kernel: "heavy",
			Grid:   interp.Dim1(96),
			Block:  interp.Dim1(32),
			Args:   []Arg{BufArg(out), IntArg(1000)},
			// Mostly serial work so the modeled time dwarfs launch
			// overhead even at this (wall-clock-friendly) size.
			SIMDFraction: 0.02,
		})
		if err != nil {
			t.Fatal(err)
		}
		times[n] = stats.TotalSec
	}
	if !(times[2] < times[1] && times[4] < times[2]) {
		t.Errorf("no strong scaling: %v", times)
	}
	speedup := times[1] / times[4]
	if speedup < 2 {
		t.Errorf("4-node speedup = %.2f, want >= 2 for a compute-bound kernel", speedup)
	}
}

func TestSIMDFractionAffectsCost(t *testing.T) {
	prog := MustCompile(`
__global__ void f(float* out, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n) {
        float acc = 0.0f;
        for (int i = 0; i < 64; i++) acc += 1.5f;
        out[id] = acc;
    }
}`)
	run := func(frac float64) float64 {
		c := newCluster(t, 1)
		out := c.Alloc(kir.F32, 64*64)
		sess := NewSession(c, prog)
		stats, err := sess.Launch(LaunchSpec{
			Kernel:       "f",
			Grid:         interp.Dim1(64),
			Block:        interp.Dim1(64),
			Args:         []Arg{BufArg(out), IntArg(64 * 64)},
			SIMDFraction: frac,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.TotalSec
	}
	vec := run(1.0)
	serial := run(0.01)
	if !(serial > vec) {
		t.Errorf("serial run (%g) not slower than vectorized (%g)", serial, vec)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("not CUDA"); err == nil {
		t.Error("bad source compiled")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCompile did not panic")
		}
	}()
	MustCompile("also not CUDA")
}

func TestRegisterNativeUnknownKernel(t *testing.T) {
	prog := MustCompile(vecCopySrc)
	if err := prog.RegisterNative("missing", Native{}); err == nil {
		t.Error("RegisterNative accepted unknown kernel")
	}
}

func TestWorkMeasured(t *testing.T) {
	stats, _ := runVecCopy(t, 2)
	// Each block copies 256 bytes: 256 loads + 256 stores.
	if math.Abs(stats.Work.Bytes-512) > 1 {
		t.Errorf("per-block bytes = %g, want 512", stats.Work.Bytes)
	}
}

// clusterMachine / clusterNet expose the default test hardware for other
// test files in this package.
func clusterMachine() machine.CPU { return machine.Intel6226() }

func clusterNet() simnet.Model { return simnet.IB100() }

func TestGenerateHostModule(t *testing.T) {
	prog := MustCompile(vecCopySrc)
	out, err := prog.ExplainKernel("vec_copy")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"phase 1: partial block execution",
		"p_size = (grid_size - 1) / cucc_size()",
		"cucc_allgather_inplace(dest",
		"phase 3: callback block execution",
		"tail_divergent=true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("host module missing %q:\n%s", want, out)
		}
	}
	// Non-distributable kernels generate the trivial fallback.
	hist := MustCompile(`
__global__ void hist(char* d, int* bins, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) atomicAdd(&bins[d[id]], 1);
}`)
	out, err = hist.ExplainKernel("hist")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "trivial execution") {
		t.Errorf("fallback host module missing trivial path:\n%s", out)
	}
	if _, err := prog.ExplainKernel("nope"); err == nil {
		t.Error("ExplainKernel accepted unknown kernel")
	}
}

func TestLaunchTracing(t *testing.T) {
	prog := MustCompile(vecCopySrc)
	c := newCluster(t, 2)
	const N = 1200
	src := c.Alloc(kir.U8, N)
	dest := c.Alloc(kir.U8, N)
	sess := NewSession(c, prog)
	sess.Host.Workers = 1 // no PhaseWorker spans: keep the event count fixed
	rec := trace.New()
	sess.Trace = rec
	if _, err := sess.Launch(LaunchSpec{
		Kernel: "vec_copy",
		Grid:   interp.Dim1(5),
		Block:  interp.Dim1(256),
		Args:   []Arg{BufArg(src), BufArg(dest), IntArg(N)},
	}); err != nil {
		t.Fatal(err)
	}
	evs := rec.Events()
	// 2 launch-overhead + 2 phase-1 + 1 allgather + 2 callback spans.
	if len(evs) != 7 {
		t.Fatalf("got %d trace events, want 7: %+v", len(evs), evs)
	}
	phases := map[string]int{}
	for _, ev := range evs {
		phases[ev.Phase]++
		if ev.DurSec < 0 {
			t.Errorf("negative duration: %+v", ev)
		}
	}
	if phases[trace.PhasePartial] != 2 || phases[trace.PhaseAllgather] != 1 || phases[trace.PhaseCallback] != 2 {
		t.Errorf("phase counts = %v", phases)
	}
	if _, err := rec.ChromeTrace(); err != nil {
		t.Fatal(err)
	}
}

// TestTrivialLaunchTracing: the trivial path must account every simulated
// second to a span, exactly like the distributed path — a launch-overhead
// span plus a callback span per node, tiling the node's clock advance so
// that each node's span sum equals TotalSec.
func TestTrivialLaunchTracing(t *testing.T) {
	prog := MustCompile(vecCopySrc)
	c := newCluster(t, 2)
	const N = 1200
	src := c.Alloc(kir.U8, N)
	dest := c.Alloc(kir.U8, N)
	sess := NewSession(c, prog)
	sess.Host.Workers = 1
	rec := trace.New()
	sess.Trace = rec
	stats, err := sess.Launch(LaunchSpec{
		Kernel:       "vec_copy",
		Grid:         interp.Dim1(5),
		Block:        interp.Dim1(256),
		Args:         []Arg{BufArg(src), BufArg(dest), IntArg(N)},
		ForceTrivial: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Distributed {
		t.Fatal("ForceTrivial launch reported distributed")
	}
	evs := rec.Events()
	if len(evs) != 4 { // per node: 1 launch-overhead + 1 callback
		t.Fatalf("got %d trace events, want 4: %+v", len(evs), evs)
	}
	for rank := 0; rank < 2; rank++ {
		var sum, cursor float64
		var sawLaunch bool
		for _, ev := range evs {
			if ev.Node != rank {
				continue
			}
			if ev.Phase == trace.PhaseLaunch {
				sawLaunch = true
			}
			if cursor != 0 && ev.StartSec != cursor {
				t.Errorf("node %d: span starts at %g, previous ended at %g", rank, ev.StartSec, cursor)
			}
			cursor = ev.StartSec + ev.DurSec
			sum += ev.DurSec
		}
		if !sawLaunch {
			t.Errorf("node %d: no %s span on the trivial path", rank, trace.PhaseLaunch)
		}
		if math.Abs(sum-stats.TotalSec) > 1e-12 {
			t.Errorf("node %d: span sum %.15g != TotalSec %.15g", rank, sum, stats.TotalSec)
		}
	}
}

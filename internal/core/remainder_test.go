package core

import (
	"bytes"
	"testing"

	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/machine"
)

func TestPartitionBlocks(t *testing.T) {
	cases := []struct {
		total, tail, n int
		strategy       RemainderStrategy
		wantCounts     []int
		wantDistEnd    int
		wantBalanced   bool
	}{
		// The paper's Figure 5 example: 5 blocks, tail, 2 nodes.
		{5, 1, 2, RemainderCallback, []int{2, 2}, 4, true},
		// Kmeans at 16/32 nodes (paper §7.2).
		{313, 1, 16, RemainderCallback, []int{19, 19, 19, 19, 19, 19, 19, 19, 19, 19, 19, 19, 19, 19, 19, 19}, 304, true},
		// Imbalanced: 312 blocks over 16 nodes -> 24 nodes... 312 = 16*19 + 8.
		{313, 1, 16, RemainderImbalanced, nil, 312, false},
		// Exact fit stays balanced under both strategies.
		{8, 0, 4, RemainderImbalanced, []int{2, 2, 2, 2}, 8, true},
		{8, 0, 4, RemainderCallback, []int{2, 2, 2, 2}, 8, true},
	}
	for i, tc := range cases {
		got := partitionBlocks(tc.total, tc.tail, tc.n, tc.strategy)
		if got.distEnd != tc.wantDistEnd {
			t.Errorf("case %d: distEnd = %d, want %d", i, got.distEnd, tc.wantDistEnd)
		}
		if got.balanced != tc.wantBalanced {
			t.Errorf("case %d: balanced = %v, want %v", i, got.balanced, tc.wantBalanced)
		}
		if tc.wantCounts != nil {
			for r, w := range tc.wantCounts {
				if got.counts[r] != w {
					t.Errorf("case %d: counts[%d] = %d, want %d", i, r, got.counts[r], w)
				}
			}
		}
		// Invariants: contiguous coverage of [0, distEnd).
		off := 0
		for r := 0; r < tc.n; r++ {
			if got.starts[r] != off {
				t.Errorf("case %d: starts[%d] = %d, want %d", i, r, got.starts[r], off)
			}
			off += got.counts[r]
		}
		if off != got.distEnd {
			t.Errorf("case %d: counts sum to %d, distEnd %d", i, off, got.distEnd)
		}
	}
}

func TestImbalancedStrategyCorrectness(t *testing.T) {
	// 13 blocks over 4 nodes: callback strategy defers 1 block (13 = 4*3+1),
	// imbalanced gives the first node 4 blocks.  Outputs must be identical.
	prog := MustCompile(`
__global__ void fill(float* out) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    out[id] = (float)(id * 3);
}`)
	run := func(strategy RemainderStrategy) ([]byte, *Stats) {
		c := newCluster(t, 4)
		out := c.Alloc(kir.F32, 13*64)
		sess := NewSession(c, prog)
		sess.Verify = true
		stats, err := sess.Launch(LaunchSpec{
			Kernel:    "fill",
			Grid:      interp.Dim1(13),
			Block:     interp.Dim1(64),
			Args:      []Arg{BufArg(out)},
			Remainder: strategy,
		})
		if err != nil {
			t.Fatal(err)
		}
		snap := make([]byte, out.Bytes())
		copy(snap, c.Region(0, out))
		return snap, stats
	}
	cbOut, cbStats := run(RemainderCallback)
	imOut, imStats := run(RemainderImbalanced)
	if !bytes.Equal(cbOut, imOut) {
		t.Fatal("strategies produced different outputs")
	}
	if cbStats.CallbackBlocks != 1 {
		t.Errorf("callback strategy deferred %d blocks, want 1", cbStats.CallbackBlocks)
	}
	if imStats.CallbackBlocks != 0 {
		t.Errorf("imbalanced strategy deferred %d blocks, want 0", imStats.CallbackBlocks)
	}
	if imStats.BlocksPerNode != 4 {
		t.Errorf("imbalanced first node ran %d blocks, want 4", imStats.BlocksPerNode)
	}
}

func TestImbalancedStrategyWithTail(t *testing.T) {
	// Tail-divergent kernel: the tail block stays a callback under both
	// strategies; the rest distributes fully under the imbalanced one.
	prog := MustCompile(vecCopySrc)
	run := func(strategy RemainderStrategy) ([]byte, *Stats) {
		c := newCluster(t, 3)
		const N = 1200
		src := c.Alloc(kir.U8, N)
		dest := c.Alloc(kir.U8, N)
		data := make([]byte, N)
		for i := range data {
			data[i] = byte(i * 7)
		}
		c.WriteAll(src, data)
		sess := NewSession(c, prog)
		sess.Verify = true
		stats, err := sess.Launch(LaunchSpec{
			Kernel:    "vec_copy",
			Grid:      interp.Dim1(5),
			Block:     interp.Dim1(256),
			Args:      []Arg{BufArg(src), BufArg(dest), IntArg(N)},
			Remainder: strategy,
		})
		if err != nil {
			t.Fatal(err)
		}
		snap := make([]byte, N)
		copy(snap, c.Region(1, dest))
		return snap, stats
	}
	cbOut, cbStats := run(RemainderCallback)
	imOut, imStats := run(RemainderImbalanced)
	if !bytes.Equal(cbOut, imOut) {
		t.Fatal("strategies produced different outputs")
	}
	// 4 non-tail blocks over 3 nodes: callback defers 2 (tail + remainder),
	// imbalanced defers only the tail.
	if cbStats.CallbackBlocks != 2 || imStats.CallbackBlocks != 1 {
		t.Errorf("callbacks = %d/%d, want 2/1", cbStats.CallbackBlocks, imStats.CallbackBlocks)
	}
}

// TestImbalancedFixesKmeansAnomaly shows the design trade-off the paper's
// callback placement makes: at 32 nodes the Kmeans remainder (25 callback
// blocks) costs an extra wave, which the imbalanced strategy avoids.
func TestImbalancedFixesKmeansAnomaly(t *testing.T) {
	prog := MustCompile(`
__global__ void k(float* out, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n) out[id] = 1.0f;
}`)
	err := prog.RegisterNative("k", Native{
		RunBlock: func(mem interp.Memory, args []interp.Value, grid, block interp.Dim3, bx, by int) error {
			n := int(args[1].I)
			for tx := 0; tx < block.X; tx++ {
				if id := bx*block.X + tx; id < n {
					mem.StoreF32(0, id, 1)
				}
			}
			return nil
		},
		BlockWork: func(args []interp.Value, grid, block interp.Dim3) machine.BlockWork {
			return machine.BlockWork{SerialFlops: 5e5, Bytes: float64(block.X) * 4}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	estimate := func(strategy RemainderStrategy) float64 {
		c := newCluster(t, 32)
		out := c.Alloc(kir.F32, 313*256)
		sess := NewSession(c, prog)
		st, err := sess.Estimate(LaunchSpec{
			Kernel:    "k",
			Grid:      interp.Dim1(313),
			Block:     interp.Dim1(256),
			Args:      []Arg{BufArg(out), IntArg(313*256 - 10)},
			Remainder: strategy,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.TotalSec
	}
	cb := estimate(RemainderCallback)
	im := estimate(RemainderImbalanced)
	if im >= cb {
		t.Errorf("imbalanced (%g) should beat callback (%g) for the 313-block/32-node case", im, cb)
	}
}

package core

import (
	"fmt"

	"cucc/internal/csched"
	"cucc/internal/machine"
)

// Estimate computes the launch statistics of a kernel without executing it
// or touching node memory.  It follows exactly the same path as Launch —
// same block partitioning, same metadata-derived Allgather sizes, same
// machine and network models — but takes the per-block work from the
// registered native's analytic BlockWork instead of measuring it.
//
// Launch and Estimate return identical Stats whenever a native is
// registered (tested); Estimate exists so the figure benchmarks can sweep
// paper-scale problem sizes whose real data would not fit in this process.
// Pointer arguments may therefore be "virtual" buffers: descriptors with
// the right element type and count but no backing allocation.
func (s *Session) Estimate(spec LaunchSpec) (*Stats, error) {
	st, err := s.resolve(spec)
	if err != nil {
		return nil, err
	}
	if st.native == nil {
		return nil, fmt.Errorf("core: Estimate needs a registered native for kernel %q", spec.Kernel)
	}
	spec = st.spec // resolve may rewrite the launch geometry (BlockSplit)
	c := s.Cluster
	n := c.N()
	totalBlocks := spec.Grid.Count()
	md := st.md
	perBlock := st.native.BlockWork(st.argVals, spec.Grid, spec.Block)

	distributable := md != nil && md.Distributable && !spec.ForceTrivial && n > 1
	if md != nil && md.TailDivergent && spec.Grid.Y > 1 {
		distributable = false
	}

	stats := &Stats{Work: perBlock}
	if !distributable {
		stats.CallbackBlocks = totalBlocks
		stats.CallbackSec = c.Machine().PhaseTime(totalBlocks, perBlock, s.execConfig(st))
		stats.TotalSec = stats.CallbackSec + KernelLaunchOverheadSec
		return stats, nil
	}

	tail := 0
	if md.TailDivergent {
		tail = 1
		stats.TailDivergent = true
	}
	part := partitionBlocks(totalBlocks, tail, n, spec.Remainder)
	callbacks := totalBlocks - part.distEnd
	stats.Distributed = true
	stats.BlocksByNode = append([]int(nil), part.counts...)
	stats.BlocksPerNode = maxCount(part.counts)
	stats.CallbackBlocks = callbacks

	if stats.BlocksPerNode > 0 {
		// Phase 1 ends when the slowest node finishes, i.e. the one with
		// the most blocks (they only differ under RemainderImbalanced).
		stats.Phase1Sec = c.Machine().PhaseTime(stats.BlocksPerNode, perBlock, s.execConfig(st))
	}
	if callbacks > 0 {
		stats.CallbackSec = c.Machine().PhaseTime(callbacks, perBlock, s.execConfig(st))
	}

	// Mirror Launch's collective selection exactly: same choice resolution,
	// same per-buffer schedule compilation, same overlap gating — so the
	// Launch/Estimate parity invariant extends to every collective choice.
	choice := s.EffectiveCollective()
	schedActive := choice.Active() && part.distEnd > 0
	wantOverlap := schedActive && choice.Overlap && callbacks > 0 && !st.readsWritten
	cbHint := 0.0
	if wantOverlap && part.counts[0] > 0 {
		cbHint = stats.CallbackSec
	}
	commSec := 0.0
	firstRecvSec := 0.0
	buffers := 0
	for _, bm := range md.Buffers {
		buf, base, unit, err := st.bufferRegion(bm)
		if err != nil {
			return nil, err
		}
		if part.distEnd == 0 {
			continue
		}
		if int(base)+int(unit)*part.distEnd > buf.Count {
			return nil, fmt.Errorf("core: kernel %s writes past buffer %s (%d elems > %d)",
				st.kernel.Name, bm.ParamName, int(base)+int(unit)*part.distEnd, buf.Count)
		}
		chunks := make([]int64, n)
		for r := 0; r < n; r++ {
			chunks[r] = int64(part.counts[r]) * unit * int64(bm.Elem.Size())
		}
		if schedActive {
			sel, err := csched.Select(csched.Request{
				Ranks: n, RankBytes: chunks, Model: c.Net(),
				Choice: choice, CallbackSec: cbHint,
			})
			if err != nil {
				return nil, err
			}
			if buffers == 0 {
				firstRecvSec = sel.Eval.FirstRecvSec
				stats.CollectiveAlgo = sel.Schedule.String()
			}
			commSec += sel.Eval.CostSec
			stats.CommMsgs += sel.Eval.Msgs
		} else {
			if part.balanced {
				commSec += c.Net().RingAllgather(n, chunks[0])
			} else {
				commSec += c.Net().AllgatherV(chunks)
			}
			stats.CommMsgs += int64(n * (n - 1))
		}
		stats.CommBytesPerNode += chunks[0]
		buffers++
	}
	stats.CommSec = commSec

	if wantOverlap && buffers > 0 {
		// Overlapped phases 2+3: callbacks start at firstRecvSec and run
		// concurrently with the collective's tail (Launch's clock model).
		span := commSec
		if cb := firstRecvSec + stats.CallbackSec; cb > span {
			span = cb
		}
		stats.OverlapSec = (commSec + stats.CallbackSec) - span
		stats.TotalSec = stats.Phase1Sec + KernelLaunchOverheadSec + span
	} else {
		stats.TotalSec = stats.Phase1Sec + KernelLaunchOverheadSec + stats.CommSec + stats.CallbackSec
	}
	return stats, nil
}

// EstimateWork exposes the analytic per-block work of a registered native,
// used by the GPU comparison figures.
func (s *Session) EstimateWork(spec LaunchSpec) (machine.BlockWork, error) {
	st, err := s.resolve(spec)
	if err != nil {
		return machine.BlockWork{}, err
	}
	if st.native == nil {
		return machine.BlockWork{}, fmt.Errorf("core: no native registered for kernel %q", spec.Kernel)
	}
	return st.native.BlockWork(st.argVals, spec.Grid, spec.Block), nil
}

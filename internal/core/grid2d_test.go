package core

import (
	"testing"

	"cucc/internal/interp"
	"cucc/internal/kir"
)

// TestLinear2DDistributedExecution exercises the Linear2D path end to end:
// a 2D grid whose write interval advances row-major across blocks is
// partitioned over the linearized block ids and synchronized with one
// Allgather.
func TestLinear2DDistributedExecution(t *testing.T) {
	prog := MustCompile(`
__global__ void grid2d(float* out) {
    int bid = blockIdx.y * gridDim.x + blockIdx.x;
    int id = bid * blockDim.x + threadIdx.x;
    out[id] = (float)(id * 2);
}`)
	md := prog.Meta["grid2d"]
	if !md.Distributable || !md.Linear2D {
		t.Fatalf("grid2d analysis: %s", md.Summary())
	}

	run := func(nodes int) []float32 {
		c := newCluster(t, nodes)
		const gx, gy, bs = 4, 3, 32 // 12 blocks, 384 elements
		out := c.Alloc(kir.F32, gx*gy*bs)
		sess := NewSession(c, prog)
		sess.Verify = true
		stats, err := sess.Launch(LaunchSpec{
			Kernel: "grid2d",
			Grid:   interp.Dim3{X: gx, Y: gy},
			Block:  interp.Dim1(bs),
			Args:   []Arg{BufArg(out)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if nodes > 1 && !stats.Distributed {
			t.Fatalf("nodes=%d: 2D launch not distributed", nodes)
		}
		return c.ReadF32(0, out)
	}

	ref := run(1)
	for i, v := range ref {
		if v != float32(i*2) {
			t.Fatalf("ref[%d] = %g, want %d", i, v, i*2)
		}
	}
	for _, n := range []int{2, 3, 4, 6} {
		got := run(n)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("nodes=%d: out[%d] = %g, want %g", n, i, got[i], ref[i])
			}
		}
	}
}

// TestTailDivergent2DFallsBack checks that tail divergence on a 2D grid
// (where the flattened-tail argument does not apply) falls back to trivial
// replication and still computes the right answer.
func TestTailDivergent2DFallsBack(t *testing.T) {
	prog := MustCompile(`
__global__ void bounded2d(float* out, int n) {
    int bid = blockIdx.y * gridDim.x + blockIdx.x;
    int id = bid * blockDim.x + threadIdx.x;
    if (id < n)
        out[id] = 1.0f;
}`)
	c := newCluster(t, 3)
	const gx, gy, bs, n = 2, 2, 32, 100
	out := c.Alloc(kir.F32, gx*gy*bs)
	sess := NewSession(c, prog)
	sess.Verify = true
	stats, err := sess.Launch(LaunchSpec{
		Kernel: "bounded2d",
		Grid:   interp.Dim3{X: gx, Y: gy},
		Block:  interp.Dim1(bs),
		Args:   []Arg{BufArg(out), IntArg(n)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Distributed {
		t.Error("tail-divergent 2D launch should fall back to trivial execution")
	}
	got := c.ReadF32(1, out)
	for i := range got {
		want := float32(0)
		if i < n {
			want = 1
		}
		if got[i] != want {
			t.Fatalf("out[%d] = %g, want %g", i, got[i], want)
		}
	}
}

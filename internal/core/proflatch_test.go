package core

import (
	"sync/atomic"
	"testing"

	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/vm"
)

// TestProfilingLatchedPerLaunch pins the per-launch profiling latch: the
// profiler on/off decision is sampled exactly once, at launch resolve time,
// so a vm.SetProfiling toggle racing with an in-flight launch can never
// yield a worker pool where some Runners are instrumented and others are
// not.  Every launch must therefore contribute either its full dynamic
// instruction count to the profile or nothing at all — the accumulated
// total is an exact multiple of the single-launch count.  Run under -race
// this also proves the toggle itself is data-race-free against the pool.
func TestProfilingLatchedPerLaunch(t *testing.T) {
	prog, err := Compile(vecCopySrc)
	if err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, 2)
	const N = 64 * 256
	src := c.Alloc(kir.U8, N)
	dest := c.Alloc(kir.U8, N)
	sess := NewSession(c, prog)
	sess.Host.Workers = 8
	spec := LaunchSpec{
		Kernel:    "vec_copy",
		Grid:      interp.Dim1(64),
		Block:     interp.Dim1(256),
		Args:      []Arg{BufArg(src), BufArg(dest), IntArg(N)},
		UseInterp: true, // keep the IR path (where the profiler lives)
	}
	launch := func() {
		if _, err := sess.Launch(spec); err != nil {
			t.Fatal(err)
		}
	}
	instructions := func() int64 {
		var total int64
		for _, kp := range vm.Profiles() {
			total += kp.Instructions
		}
		return total
	}

	// Calibrate: one quiet profiled launch gives the full per-launch count.
	vm.SetProfiling(true)
	vm.ResetProfiles()
	defer func() {
		vm.SetProfiling(false)
		vm.ResetProfiles()
	}()
	launch()
	perLaunch := instructions()
	if perLaunch <= 0 {
		t.Fatalf("calibration launch recorded %d instructions, want > 0", perLaunch)
	}
	vm.ResetProfiles()

	// Race: flip the global profiling switch as fast as possible while
	// launches run through the 8-worker pool.
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !stop.Load() {
			vm.SetProfiling(false)
			vm.SetProfiling(true)
		}
	}()
	for i := 0; i < 20; i++ {
		launch()
	}
	stop.Store(true)
	<-done

	if total := instructions(); total%perLaunch != 0 {
		t.Fatalf("profile shows a partially instrumented launch: total %d not a multiple of per-launch %d",
			total, perLaunch)
	}
}

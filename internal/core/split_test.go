package core

import (
	"bytes"
	"testing"

	"cucc/internal/cluster"
	"cucc/internal/interp"
	"cucc/internal/kir"
)

const gidOnlySrc = `
__global__ void square(float* x, float* y, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        y[id] = x[id] * x[id];
}
`

func TestGIDOnlyDetection(t *testing.T) {
	prog := MustCompile(gidOnlySrc + `
__global__ void direct(float* y) {
    y[blockIdx.x] = (float)threadIdx.x;
}
__global__ void sharedmem(float* y, int n) {
    __shared__ float buf[32];
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    buf[threadIdx.x] = 1.0f;
    __syncthreads();
    if (id < n) y[id] = buf[0];
}`)
	if !prog.Meta["square"].GIDOnly {
		t.Error("square should be GID-only")
	}
	if prog.Meta["direct"].GIDOnly {
		t.Error("direct uses blockIdx/threadIdx separately; not GID-only")
	}
	if prog.Meta["sharedmem"].GIDOnly {
		t.Error("shared-memory kernel must not be GID-only (block-sized arrays)")
	}
}

func TestBlockSplitCorrectness(t *testing.T) {
	prog := MustCompile(gidOnlySrc)
	run := func(split int) []byte {
		c := newCluster(t, 4)
		const n = 2000
		xs := make([]float32, 2048)
		for i := range xs {
			xs[i] = float32(i) * 0.5
		}
		x := c.Alloc(kir.F32, 2048)
		y := c.Alloc(kir.F32, 2048)
		c.WriteAllF32(x, xs)
		sess := NewSession(c, prog)
		sess.Verify = true
		stats, err := sess.Launch(LaunchSpec{
			Kernel:     "square",
			Grid:       interp.Dim1(8),
			Block:      interp.Dim1(256),
			Args:       []Arg{BufArg(x), BufArg(y), IntArg(n)},
			BlockSplit: split,
		})
		if err != nil {
			t.Fatal(err)
		}
		if split > 1 && stats.BlocksPerNode == 0 {
			t.Errorf("split=%d produced no distributed blocks", split)
		}
		out := make([]byte, y.Bytes())
		copy(out, c.Region(0, y))
		return out
	}
	base := run(1)
	for _, split := range []int{2, 4, 8} {
		if got := run(split); !bytes.Equal(got, base) {
			t.Errorf("split=%d output differs from unsplit", split)
		}
	}
}

func TestBlockSplitImprovesUtilization(t *testing.T) {
	// 8 blocks on a 24-core node underuse it; splitting by 4 fills cores.
	prog := MustCompile(gidOnlySrc)
	time := func(split int) float64 {
		c := newCluster(t, 1)
		x := c.Alloc(kir.F32, 2048)
		y := c.Alloc(kir.F32, 2048)
		sess := NewSession(c, prog)
		stats, err := sess.Launch(LaunchSpec{
			Kernel:       "square",
			Grid:         interp.Dim1(8),
			Block:        interp.Dim1(256),
			Args:         []Arg{BufArg(x), BufArg(y), IntArg(2048)},
			SIMDFraction: 0.05,
			BlockSplit:   split,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.TotalSec
	}
	if t4, t1 := time(4), time(1); t4 >= t1 {
		t.Errorf("split did not help: %g vs %g", t4, t1)
	}
}

func TestBlockSplitValidation(t *testing.T) {
	prog := MustCompile(gidOnlySrc + `
__global__ void direct(float* y) {
    y[blockIdx.x] = (float)threadIdx.x;
}`)
	c := newCluster(t, 2)
	y := c.Alloc(kir.F32, 4096)
	sess := NewSession(c, prog)
	// Non-GID-only kernel.
	if _, err := sess.Launch(LaunchSpec{
		Kernel: "direct", Grid: interp.Dim1(8), Block: interp.Dim1(256),
		Args: []Arg{BufArg(y)}, BlockSplit: 2,
	}); err == nil {
		t.Error("split accepted on non-GID-only kernel")
	}
	// Non-divisible block size.
	x := c.Alloc(kir.F32, 2048)
	if _, err := sess.Launch(LaunchSpec{
		Kernel: "square", Grid: interp.Dim1(8), Block: interp.Dim1(256),
		Args: []Arg{BufArg(x), BufArg(y), IntArg(100)}, BlockSplit: 7,
	}); err == nil {
		t.Error("split accepted with non-divisible block size")
	}
}

func TestClusterOverTCPTransport(t *testing.T) {
	// The full three-phase workflow over real loopback sockets.
	prog := MustCompile(vecCopySrc)
	c, err := cluster.New(cluster.Config{
		Nodes: 3, Machine: clusterMachine(), Net: clusterNet(), Transport: cluster.TCP,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const N = 1200
	src := c.Alloc(kir.U8, N)
	dest := c.Alloc(kir.U8, N)
	data := make([]byte, N)
	for i := range data {
		data[i] = byte(i * 31)
	}
	c.WriteAll(src, data)
	sess := NewSession(c, prog)
	sess.Verify = true
	stats, err := sess.Launch(LaunchSpec{
		Kernel: "vec_copy",
		Grid:   interp.Dim1(5),
		Block:  interp.Dim1(256),
		Args:   []Arg{BufArg(src), BufArg(dest), IntArg(N)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Distributed {
		t.Error("TCP-backed launch was not distributed")
	}
	got := c.Region(0, dest)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("dest[%d] = %d, want %d", i, got[i], data[i])
		}
	}
}

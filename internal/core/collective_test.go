package core

import (
	"bytes"
	"math"
	"testing"

	"cucc/internal/cluster"
	"cucc/internal/csched"
	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/simnet"
)

// The collective-schedule tests pin the ISSUE 7 contract: every schedule
// the compiler can select must leave node memories bitwise identical to
// the legacy hand-written ring, the overlap path must reduce TotalSec
// toward — never past — the free-Allgather bound, and Estimate must mirror
// Launch's selection exactly.

// collectiveScaleSrc writes dst from src without ever reading dst:
// callback blocks touch no gathered data, so phase-2/3 overlap is legal.
// The launch below leaves a tail-divergent block plus remainder blocks in
// phase 3 on every node count.
const collectiveScaleSrc = `
__global__ void cscale(float* src, float* dst, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n)
        dst[id] = src[id] * 3.0f + 1.0f;
}
`

// collectiveAccumSrc reads its own written buffer (dst appears on both
// sides), so the readsWritten gate must refuse to overlap.
const collectiveAccumSrc = `
__global__ void caccum(float* src, float* dst, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n)
        dst[id] = dst[id] + src[id];
}
`

const (
	collectiveBlocks = 13
	collectiveBS     = 64
	collectiveN      = collectiveBlocks*collectiveBS - 5 // tail-divergent
)

// launchCollective runs one cscale/caccum launch on a fresh nodes-wide
// cluster under the given collective choice and returns the stats plus
// node 0's dst bytes.
func launchCollective(t *testing.T, src string, kernel string, nodes int, choice csched.Choice) (*Stats, []byte) {
	t.Helper()
	prog := MustCompile(src)
	c := newCluster(t, nodes)
	sbuf := c.Alloc(kir.F32, collectiveBlocks*collectiveBS)
	dbuf := c.Alloc(kir.F32, collectiveBlocks*collectiveBS)
	vals := make([]float32, collectiveBlocks*collectiveBS)
	for i := range vals {
		vals[i] = float32(i%97)*0.5 - 3
	}
	if err := c.WriteAllF32(sbuf, vals); err != nil {
		t.Fatal(err)
	}
	// caccum reads dst, so it must start defined (and identical everywhere).
	if err := c.WriteAllF32(dbuf, make([]float32, collectiveBlocks*collectiveBS)); err != nil {
		t.Fatal(err)
	}
	sess := NewSession(c, prog)
	sess.Collective = choice
	sess.Verify = true
	stats, err := sess.Launch(LaunchSpec{
		Kernel: kernel,
		Grid:   interp.Dim1(collectiveBlocks),
		Block:  interp.Dim1(collectiveBS),
		Args:   []Arg{BufArg(sbuf), BufArg(dbuf), IntArg(collectiveN)},
	})
	if err != nil {
		t.Fatalf("choice %s: %v", choice, err)
	}
	return stats, append([]byte(nil), c.Region(0, dbuf)...)
}

// TestCollectiveChoicesEquivalent: every selectable schedule produces the
// same bytes as the legacy ring, on composite, power-of-two, and prime
// node counts.
func TestCollectiveChoicesEquivalent(t *testing.T) {
	choices := []string{
		"auto", "ring", "recdouble", "twolevel", "pipeline", "pipeline:2",
		"auto+overlap", "ring+overlap", "pipeline:3+overlap",
	}
	for _, nodes := range []int{2, 3, 4, 5, 8} {
		ref, refBytes := launchCollective(t, collectiveScaleSrc, "cscale", nodes, csched.Choice{})
		if !ref.Distributed {
			t.Fatalf("nodes=%d: reference launch not distributed", nodes)
		}
		if ref.CollectiveAlgo != "" {
			t.Errorf("nodes=%d: legacy path reported algo %q", nodes, ref.CollectiveAlgo)
		}
		for _, cs := range choices {
			choice, err := csched.ParseChoice(cs)
			if err != nil {
				t.Fatal(err)
			}
			st, got := launchCollective(t, collectiveScaleSrc, "cscale", nodes, choice)
			if !bytes.Equal(refBytes, got) {
				t.Errorf("nodes=%d choice=%s: dst differs from legacy ring", nodes, cs)
			}
			if st.CollectiveAlgo == "" {
				t.Errorf("nodes=%d choice=%s: no CollectiveAlgo recorded", nodes, cs)
			}
			if st.CommMsgs <= 0 || st.CommBytesPerNode != ref.CommBytesPerNode {
				t.Errorf("nodes=%d choice=%s: comm accounting %d msgs, %d bytes/node (ref %d)",
					nodes, cs, st.CommMsgs, st.CommBytesPerNode, ref.CommBytesPerNode)
			}
		}
	}
}

// TestCollectiveForcedAlgos: forcing an algorithm selects it where
// applicable and falls back to ring where not.
func TestCollectiveForcedAlgos(t *testing.T) {
	cases := []struct {
		nodes  int
		choice string
		want   string
	}{
		{4, "ring", "ring"},
		{4, "recdouble", "recdouble"},
		{4, "twolevel", "twolevel"},
		{4, "pipeline:2", "pipeline:2"},
		{5, "recdouble", "ring"}, // non-power-of-two fallback
		{5, "twolevel", "ring"},  // prime fallback
		{8, "recdouble", "recdouble"},
	}
	for _, tc := range cases {
		choice, err := csched.ParseChoice(tc.choice)
		if err != nil {
			t.Fatal(err)
		}
		st, _ := launchCollective(t, collectiveScaleSrc, "cscale", tc.nodes, choice)
		if st.CollectiveAlgo != tc.want {
			t.Errorf("nodes=%d choice=%s: selected %q, want %q", tc.nodes, tc.choice, st.CollectiveAlgo, tc.want)
		}
	}
}

// TestCollectiveOverlapClockModel: with overlap, TotalSec drops by exactly
// OverlapSec relative to the barrier ordering of the same schedule, and
// never dips below the free-Allgather bound (TotalSec - CommSec of the
// barrier run — the cuccprof WhatIf estimate overlap chases).
func TestCollectiveOverlapClockModel(t *testing.T) {
	for _, nodes := range []int{3, 4, 8} {
		barrier, _ := launchCollective(t, collectiveScaleSrc, "cscale", nodes, csched.Choice{Algo: csched.AlgoRing})
		overlap, _ := launchCollective(t, collectiveScaleSrc, "cscale", nodes, csched.Choice{Algo: csched.AlgoRing, Overlap: true})
		if overlap.CallbackBlocks == 0 {
			t.Fatalf("nodes=%d: no callback blocks; the overlap test needs some", nodes)
		}
		if barrier.OverlapSec != 0 {
			t.Errorf("nodes=%d: barrier run reports OverlapSec %g", nodes, barrier.OverlapSec)
		}
		if overlap.OverlapSec <= 0 {
			t.Errorf("nodes=%d: overlap run saved nothing (OverlapSec=%g)", nodes, overlap.OverlapSec)
		}
		got := overlap.TotalSec
		want := barrier.TotalSec - overlap.OverlapSec
		if math.Abs(got-want) > 1e-12*barrier.TotalSec {
			t.Errorf("nodes=%d: overlap TotalSec %.12g, want barrier %.12g - OverlapSec %.12g",
				nodes, got, barrier.TotalSec, overlap.OverlapSec)
		}
		// The free-Allgather WhatIf bound: overlap hides communication
		// behind callbacks, it cannot beat a launch whose Allgather is free.
		freeAllgather := barrier.TotalSec - barrier.CommSec
		if got < freeAllgather-1e-12*barrier.TotalSec {
			t.Errorf("nodes=%d: overlap TotalSec %.12g beat the free-Allgather bound %.12g",
				nodes, got, freeAllgather)
		}
	}
}

// TestCollectiveOverlapGate: a kernel that reads its written buffer must
// not overlap (OverlapSec 0, barrier clock model) but still compute the
// right bytes under the schedule executor.
func TestCollectiveOverlapGate(t *testing.T) {
	const nodes = 4
	ref, refBytes := launchCollective(t, collectiveAccumSrc, "caccum", nodes, csched.Choice{})
	st, got := launchCollective(t, collectiveAccumSrc, "caccum", nodes, csched.Choice{Algo: csched.AlgoAuto, Overlap: true})
	if !bytes.Equal(refBytes, got) {
		t.Error("gated overlap launch diverged from legacy ring")
	}
	if st.OverlapSec != 0 {
		t.Errorf("readsWritten kernel overlapped anyway (OverlapSec=%g)", st.OverlapSec)
	}
	if ref.TotalSec <= 0 || st.TotalSec <= 0 {
		t.Error("degenerate totals")
	}
}

// TestCollectiveLayering: session beats cluster beats process default,
// first non-zero choice wins whole.
func TestCollectiveLayering(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Nodes: 2, Machine: machine.Intel6226(), Net: simnet.IB100(),
		Collective: csched.Choice{Algo: csched.AlgoRing},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	prog := MustCompile(collectiveScaleSrc)
	sess := NewSession(c, prog)
	if got := sess.EffectiveCollective(); got.Algo != csched.AlgoRing {
		t.Errorf("cluster-level choice not inherited: %+v", got)
	}
	sess.Collective = csched.Choice{Algo: csched.AlgoPipeline, Chunks: 2}
	if got := sess.EffectiveCollective(); got.Algo != csched.AlgoPipeline || got.Chunks != 2 {
		t.Errorf("session-level choice not preferred: %+v", got)
	}
	sess.Collective = csched.Choice{}
	old := DefaultCollective
	DefaultCollective = csched.Choice{Algo: csched.AlgoAuto}
	defer func() { DefaultCollective = old }()
	// Cluster still wins over the process default.
	if got := sess.EffectiveCollective(); got.Algo != csched.AlgoRing {
		t.Errorf("cluster-level choice lost to process default: %+v", got)
	}
}

// TestEstimateMatchesLaunchCollectives extends the Launch/Estimate parity
// invariant over the schedule compiler: for a native kernel, every
// collective choice must produce identical TotalSec decompositions and the
// same selected algorithm from both paths.
func TestEstimateMatchesLaunchCollectives(t *testing.T) {
	mkProg := func(t *testing.T) *Program {
		prog := MustCompile(collectiveScaleSrc)
		if err := prog.RegisterNative("cscale", Native{
			RunBlock: func(mem interp.Memory, args []interp.Value, grid, block interp.Dim3, bx, by int) error {
				nn := int(args[2].I)
				for tx := 0; tx < block.X; tx++ {
					id := block.X*bx + tx
					if id < nn {
						mem.StoreF32(1, id, mem.LoadF32(0, id)*3+1)
					}
				}
				return nil
			},
			BlockWork: func(args []interp.Value, grid, block interp.Dim3) machine.BlockWork {
				bt := float64(block.X)
				return machine.BlockWork{VecFlops: 2 * bt, IntOps: 3 * bt, Bytes: 8 * bt}
			},
		}); err != nil {
			t.Fatal(err)
		}
		return prog
	}
	choices := []string{"", "auto", "ring", "recdouble", "twolevel", "pipeline:2", "auto+overlap", "ring+overlap"}
	for _, nodes := range []int{2, 4, 5} {
		for _, cs := range choices {
			choice, err := csched.ParseChoice(cs)
			if err != nil {
				t.Fatal(err)
			}
			prog := mkProg(t)
			c := newCluster(t, nodes)
			sbuf := c.Alloc(kir.F32, collectiveBlocks*collectiveBS)
			dbuf := c.Alloc(kir.F32, collectiveBlocks*collectiveBS)
			if err := c.WriteAllF32(sbuf, make([]float32, collectiveBlocks*collectiveBS)); err != nil {
				t.Fatal(err)
			}
			sess := NewSession(c, prog)
			sess.Collective = choice
			spec := LaunchSpec{
				Kernel: "cscale",
				Grid:   interp.Dim1(collectiveBlocks),
				Block:  interp.Dim1(collectiveBS),
				Args:   []Arg{BufArg(sbuf), BufArg(dbuf), IntArg(collectiveN)},
			}
			est, err := sess.Estimate(spec)
			if err != nil {
				t.Fatalf("nodes=%d choice=%q: estimate: %v", nodes, cs, err)
			}
			got, err := sess.Launch(spec)
			if err != nil {
				t.Fatalf("nodes=%d choice=%q: launch: %v", nodes, cs, err)
			}
			if est.CollectiveAlgo != got.CollectiveAlgo {
				t.Errorf("nodes=%d choice=%q: Estimate selected %q, Launch %q",
					nodes, cs, est.CollectiveAlgo, got.CollectiveAlgo)
			}
			for _, f := range []struct {
				name     string
				est, got float64
			}{
				{"Phase1Sec", est.Phase1Sec, got.Phase1Sec},
				{"CommSec", est.CommSec, got.CommSec},
				{"CallbackSec", est.CallbackSec, got.CallbackSec},
				{"OverlapSec", est.OverlapSec, got.OverlapSec},
				{"TotalSec", est.TotalSec, got.TotalSec},
			} {
				if relDiff(f.est, f.got) > 1e-9 {
					t.Errorf("nodes=%d choice=%q: %s estimate %.12g vs launch %.12g",
						nodes, cs, f.name, f.est, f.got)
				}
			}
		}
	}
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 0 {
		return d / m
	}
	return d
}

package analysis

import "testing"

// Edge cases around the §6.2 conditions: each test pins one distinct
// behavior of the analysis at a boundary of its soundness argument.

func TestNestedTailGuards(t *testing.T) {
	// Two nested bound checks on the same global id: still tail divergent.
	md := analyzeSrc(t, `
__global__ void nested(float* out, int n, int m) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        if (id < m)
            out[id] = 1.0f;
    }
}`, "nested")
	if !md.Distributable || !md.TailDivergent {
		t.Fatalf("nested tail guards: %s", md.Summary())
	}
}

func TestTailAndUniformConjunction(t *testing.T) {
	md := analyzeSrc(t, `
__global__ void mixed(float* out, int n, int enable) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (enable > 0 && id < n)
        out[id] = 1.0f;
}`, "mixed")
	if !md.Distributable || !md.TailDivergent {
		t.Fatalf("uniform && tail: %s", md.Summary())
	}
}

func TestShiftedIndexIsGapped(t *testing.T) {
	// id << 1 is stride 2: recognized via the Shl constant-fold path.
	md := analyzeSrc(t, `
__global__ void shifted(float* out) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    out[id << 1] = 1.0f;
}`, "shifted")
	if md.Distributable {
		t.Fatalf("stride-2 shift accepted: %s", md.Summary())
	}
	if md.Reason != ReasonGapped {
		t.Errorf("reason = %s, want %s", md.Reason, ReasonGapped)
	}
}

func TestSelectInIndexRejected(t *testing.T) {
	// A data-independent but divergent ternary in the index is not affine.
	md := analyzeSrc(t, `
__global__ void sel(float* out, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    out[id < n ? id : 0] = 1.0f;
}`, "sel")
	if md.Distributable {
		t.Fatalf("ternary index accepted: %s", md.Summary())
	}
}

func TestCastsInIndexPreserved(t *testing.T) {
	// Integer-to-integer casts keep the polynomial.
	md := analyzeSrc(t, `
__global__ void casted(float* out, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        out[(int)id] = 1.0f;
}`, "casted")
	if !md.Distributable {
		t.Fatalf("casted index rejected: %s", md.Summary())
	}
}

func TestBaseWithBlockDim(t *testing.T) {
	// Base offset containing blockDim stays evaluable at launch time.
	md := analyzeSrc(t, `
__global__ void offs(float* out) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    out[id + blockDim.x] = 1.0f;
}`, "offs")
	if !md.Distributable {
		t.Fatalf("blockDim base rejected: %s", md.Summary())
	}
	base, err := md.Buffers[0].Base.Eval(Env{Bdx: 64, Bdy: 1, Gdx: 2, Gdy: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base != 64 {
		t.Errorf("base = %d, want 64", base)
	}
}

func TestGuardOnThreadIdxY(t *testing.T) {
	// threadIdx.y-dependent guards are block-invariant; the write index is
	// thread-variant in y with no refinement -> rejected conservatively.
	md := analyzeSrc(t, `
__global__ void ygrd(float* out) {
    if (threadIdx.y == 0)
        out[blockIdx.x * blockDim.x + threadIdx.x] = 1.0f;
}`, "ygrd")
	// The guard eliminates the y dimension but our refinement only covers
	// threadIdx.x; the write set check decides.  Whatever the verdict,
	// execution must stay correct (false negatives allowed); pin the
	// current conservative rejection.
	if md.Distributable {
		t.Logf("y-guarded kernel accepted: %s", md.Summary())
	}
}

func TestWritesToSameBufferTwiceIdentical(t *testing.T) {
	// The same store repeated is deduplicated, not rejected.
	md := analyzeSrc(t, `
__global__ void twice(float* out, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        out[id] = 1.0f;
        out[id] = 2.0f;
    }
}`, "twice")
	if !md.Distributable {
		t.Fatalf("repeated identical store rejected: %s", md.Summary())
	}
	if len(md.Buffers) != 1 {
		t.Errorf("buffers = %d, want 1", len(md.Buffers))
	}
}

func TestNegatedTailInElseBranch(t *testing.T) {
	// Writes in the else of a tail condition happen only in tail blocks:
	// unbalanced, must be rejected.
	md := analyzeSrc(t, `
__global__ void elsewrite(float* out, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        out[id] = 1.0f;
    } else {
        out[0] = 2.0f;
    }
}`, "elsewrite")
	if md.Distributable {
		t.Fatalf("else-branch tail write accepted: %s", md.Summary())
	}
}

func TestLoopOverBlocksRejected(t *testing.T) {
	// A loop whose bound is gridDim-dependent writing across other blocks'
	// intervals: the per-block write set spans everything -> overlap.
	md := analyzeSrc(t, `
__global__ void crossblock(float* out) {
    for (int b = 0; b < gridDim.x; b++)
        out[b * blockDim.x + threadIdx.x] = 1.0f;
}`, "crossblock")
	if md.Distributable {
		t.Fatalf("cross-block loop accepted: %s", md.Summary())
	}
}

func TestModuloIndexRejected(t *testing.T) {
	md := analyzeSrc(t, `
__global__ void wrap(float* out, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    out[id % n] = 1.0f;
}`, "wrap")
	if md.Distributable {
		t.Fatalf("modulo index accepted: %s", md.Summary())
	}
	if md.Reason != ReasonNonAffine {
		t.Errorf("reason = %s, want %s", md.Reason, ReasonNonAffine)
	}
}

func TestTailGuardGreaterThanForm(t *testing.T) {
	// n > id is the mirrored comparison.
	md := analyzeSrc(t, `
__global__ void mirrored(float* out, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (n > id)
        out[id] = 1.0f;
}`, "mirrored")
	if !md.Distributable || !md.TailDivergent {
		t.Fatalf("mirrored tail guard: %s", md.Summary())
	}
}

func TestMultiKernelModuleIndependence(t *testing.T) {
	// Analysis state must not leak between kernels of one module.
	mds := AnalyzeModule(mustModule(t, `
__global__ void good(float* out, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) out[id] = 1.0f;
}
__global__ void bad(int* idx, float* out) {
    out[idx[threadIdx.x]] = 1.0f;
}
__global__ void good2(float* out) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    out[id] = 2.0f;
}`))
	if !mds["good"].Distributable || mds["bad"].Distributable || !mds["good2"].Distributable {
		t.Errorf("module analysis leaked state: good=%v bad=%v good2=%v",
			mds["good"].Distributable, mds["bad"].Distributable, mds["good2"].Distributable)
	}
}

package analysis

import "cucc/internal/kir"

// detectGIDOnly reports whether the kernel touches the launch geometry
// exclusively through the flattened global thread index
// blockIdx.x*blockDim.x + threadIdx.x.
//
// For such kernels the (grid, block) factorization is semantically
// irrelevant: CuCC may relaunch them with a different block size to
// rebalance work across CPU cores — the "workload redistribution" the
// paper proposes as future work (§8.3).  The check is syntactic and
// conservative: every builtin reference must be covered by a gid pattern.
func detectGIDOnly(k *kir.Kernel) bool {
	covered := map[kir.Expr]bool{}
	ok := true

	isBuiltin := func(e kir.Expr, b kir.Builtin) bool {
		r, is := e.(*kir.BuiltinRef)
		return is && r.B == b && r.Axis == kir.X
	}
	// matchProduct recognizes blockIdx.x*blockDim.x in either order.
	matchProduct := func(e kir.Expr) bool {
		bin, is := e.(*kir.Binary)
		if !is || bin.Op != kir.Mul {
			return false
		}
		if isBuiltin(bin.L, kir.BlockIdx) && isBuiltin(bin.R, kir.BlockDim) ||
			isBuiltin(bin.L, kir.BlockDim) && isBuiltin(bin.R, kir.BlockIdx) {
			covered[bin.L] = true
			covered[bin.R] = true
			return true
		}
		return false
	}
	// matchGID recognizes product + threadIdx.x in either order.
	matchGID := func(e kir.Expr) {
		bin, is := e.(*kir.Binary)
		if !is || bin.Op != kir.Add {
			return
		}
		if matchProduct(bin.L) && isBuiltin(bin.R, kir.ThreadIdx) {
			covered[bin.R] = true
		} else if matchProduct(bin.R) && isBuiltin(bin.L, kir.ThreadIdx) {
			covered[bin.L] = true
		}
	}
	kir.WalkExprs(k.Body, func(e kir.Expr) {
		matchGID(e)
	})
	kir.WalkExprs(k.Body, func(e kir.Expr) {
		if r, is := e.(*kir.BuiltinRef); is && !covered[e] {
			_ = r
			ok = false
		}
	})
	// Shared memory is sized per block; resizing blocks would break it.
	if len(k.Shared) > 0 {
		return false
	}
	return ok
}

// Package analysis implements the paper's Allgather distributable analysis
// (Section 6): a static analysis over kernel IR that decides whether a GPU
// kernel's blocks can be partitioned across CPU nodes such that one
// balanced-in-place Allgather restores memory consistency.
//
// The analysis is symbolic: write indices are represented as polynomials
// over the symbols threadIdx/blockIdx/blockDim/gridDim, integer kernel
// parameters, and canonical loop induction variables, so kernels with
// runtime-dependent grid/block sizes still analyze (paper §5).
package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// Sym is a symbolic variable appearing in index polynomials.
type Sym string

// Well-known symbols.  Loop induction variables get fresh "L<n>" symbols and
// integer parameters appear as "p:<name>".
const (
	SymTx  Sym = "tx"
	SymTy  Sym = "ty"
	SymBx  Sym = "bx"
	SymBy  Sym = "by"
	SymBdx Sym = "bdx"
	SymBdy Sym = "bdy"
	SymGdx Sym = "gdx"
	SymGdy Sym = "gdy"
)

// ParamSym returns the symbol for an integer kernel parameter.
func ParamSym(name string) Sym { return Sym("p:" + name) }

// IsParam reports whether the symbol is a kernel parameter.
func (s Sym) IsParam() bool { return strings.HasPrefix(string(s), "p:") }

// IsLoopVar reports whether the symbol is a loop induction variable.
func (s Sym) IsLoopVar() bool { return strings.HasPrefix(string(s), "L") && !s.IsParam() }

// IsThread reports whether the symbol depends on the thread index.
func (s Sym) IsThread() bool { return s == SymTx || s == SymTy }

// IsBlock reports whether the symbol depends on the block index.
func (s Sym) IsBlock() bool { return s == SymBx || s == SymBy }

// monomial is a product of symbols (sorted) used as a map key.
type monomial string

func monoKey(syms []Sym) monomial {
	ss := make([]string, len(syms))
	for i, s := range syms {
		ss[i] = string(s)
	}
	sort.Strings(ss)
	return monomial(strings.Join(ss, "*"))
}

func (m monomial) syms() []Sym {
	if m == "" {
		return nil
	}
	parts := strings.Split(string(m), "*")
	out := make([]Sym, len(parts))
	for i, p := range parts {
		out[i] = Sym(p)
	}
	return out
}

// Poly is a multivariate polynomial with int64 coefficients, the symbolic
// value domain of the analysis.  The zero value is the polynomial 0.
type Poly struct {
	terms map[monomial]int64
}

// Const returns a constant polynomial.
func Const(c int64) Poly {
	p := Poly{terms: map[monomial]int64{}}
	if c != 0 {
		p.terms[""] = c
	}
	return p
}

// Var returns the polynomial consisting of a single symbol.
func Var(s Sym) Poly {
	return Poly{terms: map[monomial]int64{monoKey([]Sym{s}): 1}}
}

func (p Poly) clone() Poly {
	q := Poly{terms: make(map[monomial]int64, len(p.terms))}
	for k, v := range p.terms {
		q.terms[k] = v
	}
	return q
}

func (p Poly) ensure() Poly {
	if p.terms == nil {
		return Poly{terms: map[monomial]int64{}}
	}
	return p
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	r := p.ensure().clone()
	for k, v := range q.terms {
		r.terms[k] += v
		if r.terms[k] == 0 {
			delete(r.terms, k)
		}
	}
	return r
}

// Sub returns p - q.
func (p Poly) Sub(q Poly) Poly { return p.Add(q.Neg()) }

// Neg returns -p.
func (p Poly) Neg() Poly {
	r := Poly{terms: make(map[monomial]int64, len(p.terms))}
	for k, v := range p.terms {
		r.terms[k] = -v
	}
	return r
}

// Mul returns p * q.
func (p Poly) Mul(q Poly) Poly {
	r := Poly{terms: map[monomial]int64{}}
	for mk, mv := range p.terms {
		for nk, nv := range q.terms {
			key := monoKey(append(mk.syms(), nk.syms()...))
			r.terms[key] += mv * nv
			if r.terms[key] == 0 {
				delete(r.terms, key)
			}
		}
	}
	return r
}

// Scale returns p * c.
func (p Poly) Scale(c int64) Poly { return p.Mul(Const(c)) }

// IsZero reports whether p == 0.
func (p Poly) IsZero() bool { return len(p.terms) == 0 }

// IsConst returns the constant value of p if p is constant.
func (p Poly) IsConst() (int64, bool) {
	switch len(p.terms) {
	case 0:
		return 0, true
	case 1:
		if v, ok := p.terms[""]; ok {
			return v, true
		}
	}
	return 0, false
}

// Equal reports structural equality (canonical form makes this semantic
// equality for polynomials).
func (p Poly) Equal(q Poly) bool {
	if len(p.terms) != len(q.terms) {
		return false
	}
	for k, v := range p.terms {
		if q.terms[k] != v {
			return false
		}
	}
	return true
}

// HasSym reports whether the symbol appears anywhere in p.
func (p Poly) HasSym(pred func(Sym) bool) bool {
	for k := range p.terms {
		for _, s := range k.syms() {
			if pred(s) {
				return true
			}
		}
	}
	return false
}

// HasThread reports dependence on threadIdx.
func (p Poly) HasThread() bool { return p.HasSym(Sym.IsThread) }

// HasBlock reports dependence on blockIdx.
func (p Poly) HasBlock() bool { return p.HasSym(Sym.IsBlock) }

// HasLoopVar reports dependence on any loop induction variable.
func (p Poly) HasLoopVar() bool { return p.HasSym(Sym.IsLoopVar) }

// CoeffOf splits p as coeff*s + rest, requiring p to be affine in s (degree
// at most one).  ok is false if s appears with degree >= 2.
func (p Poly) CoeffOf(s Sym) (coeff, rest Poly, ok bool) {
	coeff = Const(0)
	rest = Const(0)
	for k, v := range p.terms {
		syms := k.syms()
		cnt := 0
		for _, m := range syms {
			if m == s {
				cnt++
			}
		}
		switch cnt {
		case 0:
			rest.terms[k] += v
		case 1:
			others := make([]Sym, 0, len(syms)-1)
			removed := false
			for _, m := range syms {
				if m == s && !removed {
					removed = true
					continue
				}
				others = append(others, m)
			}
			coeff.terms[monoKey(others)] += v
		default:
			return Poly{}, Poly{}, false
		}
	}
	for k, v := range coeff.terms {
		if v == 0 {
			delete(coeff.terms, k)
		}
	}
	for k, v := range rest.terms {
		if v == 0 {
			delete(rest.terms, k)
		}
	}
	return coeff, rest, true
}

// KnownPositive reports whether p is provably positive under the analysis
// assumptions: blockDim/gridDim symbols are >= 1 and integer size parameters
// are >= 1 (the paper makes the same implicit assumption when requiring "a
// positive coefficient" of symbolic block strides).  A polynomial is known
// positive when all coefficients are positive and it is non-zero.
func (p Poly) KnownPositive() bool {
	if p.IsZero() {
		return false
	}
	for k, v := range p.terms {
		if v <= 0 {
			return false
		}
		for _, s := range k.syms() {
			if s.IsThread() || s.IsBlock() || s.IsLoopVar() {
				return false
			}
		}
	}
	return true
}

// Subst returns p with symbol s replaced by polynomial q.
func (p Poly) Subst(s Sym, q Poly) Poly {
	r := Const(0)
	for k, v := range p.terms {
		term := Const(v)
		for _, m := range k.syms() {
			if m == s {
				term = term.Mul(q)
			} else {
				term = term.Mul(Var(m))
			}
		}
		r = r.Add(term)
	}
	return r
}

// Env supplies runtime values for symbols when evaluating metadata at kernel
// launch time.
type Env struct {
	Bdx, Bdy, Gdx, Gdy int64
	// Params maps integer parameter names to launch-time values.
	Params map[string]int64
}

// Eval evaluates the polynomial in env; loop/thread/block symbols are not
// valid at evaluation time and produce an error.
func (p Poly) Eval(env Env) (int64, error) {
	total := int64(0)
	for k, v := range p.terms {
		term := v
		for _, s := range k.syms() {
			switch {
			case s == SymBdx:
				term *= env.Bdx
			case s == SymBdy:
				term *= env.Bdy
			case s == SymGdx:
				term *= env.Gdx
			case s == SymGdy:
				term *= env.Gdy
			case s.IsParam():
				val, ok := env.Params[string(s)[2:]]
				if !ok {
					return 0, fmt.Errorf("analysis: no value for parameter %q", string(s)[2:])
				}
				term *= val
			default:
				return 0, fmt.Errorf("analysis: symbol %q not evaluable at launch time", s)
			}
		}
		total += term
	}
	return total, nil
}

// String renders the polynomial deterministically.
func (p Poly) String() string {
	if len(p.terms) == 0 {
		return "0"
	}
	keys := make([]string, 0, len(p.terms))
	for k := range p.terms {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		v := p.terms[monomial(k)]
		if i > 0 {
			if v >= 0 {
				b.WriteString(" + ")
			} else {
				b.WriteString(" - ")
				v = -v
			}
		} else if v < 0 {
			b.WriteString("-")
			v = -v
		}
		if k == "" {
			fmt.Fprintf(&b, "%d", v)
		} else if v == 1 {
			b.WriteString(k)
		} else {
			fmt.Fprintf(&b, "%d*%s", v, k)
		}
	}
	return b.String()
}

package analysis

import (
	"fmt"
	"sort"
	"strings"

	"cucc/internal/kir"
)

// Reason classifies why a kernel is not (non-trivially) Allgather
// distributable.  The categories mirror the paper's coverage discussion
// (§7.1): overlapping write intervals, indirect memory access, and the
// static-analysis conditions of §6.2.
type Reason uint8

const (
	ReasonOK Reason = iota
	// ReasonOverlap covers atomics and block write sets that overlap.
	ReasonOverlap
	// ReasonIndirect covers write indices derived from loaded data.
	ReasonIndirect
	// ReasonNonAffine covers indices that are not affine in thread/block
	// indices (condition 1/3 violations).
	ReasonNonAffine
	// ReasonGuard covers writes under thread/block-variant or
	// data-dependent conditions that are not tail divergent (condition 2).
	ReasonGuard
	// ReasonLoop covers writes inside loops whose trip counts the
	// analysis cannot bound uniformly.
	ReasonLoop
	// ReasonGapped covers block write intervals that leave gaps, so an
	// in-place Allgather cannot reassemble them contiguously.
	ReasonGapped
	// ReasonStride covers non-positive block-index coefficients
	// (condition 3) and mismatched 2D linearization.
	ReasonStride
)

func (r Reason) String() string {
	switch r {
	case ReasonOK:
		return "distributable"
	case ReasonOverlap:
		return "overlapping writes"
	case ReasonIndirect:
		return "indirect access"
	case ReasonNonAffine:
		return "non-affine write index"
	case ReasonGuard:
		return "divergent guard"
	case ReasonLoop:
		return "unanalyzable loop"
	case ReasonGapped:
		return "gapped write interval"
	case ReasonStride:
		return "non-monotone block stride"
	}
	return "unknown"
}

// BufferMeta describes one global buffer a distributable kernel writes.
type BufferMeta struct {
	// Param is the pointer-parameter index of the buffer (mem_ptr in the
	// paper's metadata).
	Param     int
	ParamName string
	Elem      kir.ScalarType
	// Base is the element offset of block 0's write interval.
	Base Poly
	// UnitElems is the number of elements each block writes (unit_size in
	// the paper's metadata is UnitElems * Elem.Size()).
	UnitElems Poly
}

// Metadata is the analysis result for one kernel: the compile-time
// information the CuCC host-module template consumes (paper Figure 6).
type Metadata struct {
	KernelName string
	// Distributable reports non-trivial Allgather distributability.
	// Non-distributable kernels fall back to trivial execution (every
	// node runs every block), which is always correct.
	Distributable bool
	// TailDivergent marks kernels whose trailing block(s) must be
	// deferred to the callback phase.
	TailDivergent bool
	// Linear2D marks kernels whose 2D grid linearizes row-major
	// (block id = by*gridDim.x + bx) with contiguous write intervals.
	Linear2D bool
	// GIDOnly marks kernels that use launch geometry only through the
	// flattened global thread index; their blocks can be split or merged
	// at launch time (workload redistribution, paper §8.3).
	GIDOnly bool
	// Buffers lists the written buffers to synchronize with Allgather.
	Buffers []BufferMeta
	// Reason explains non-distributability (ReasonOK otherwise).
	Reason Reason
	// Detail is a human-readable explanation for diagnostics.
	Detail string
	// AllRejections lists every violation the analysis found (the first
	// one populates Reason/Detail); useful when porting a kernel.
	AllRejections []string
}

// dimRec is one iteration dimension of a block's write set: the written
// element indices advance by stride for count steps.
type dimRec struct {
	stride Poly
	count  Poly
}

// writeRec is the symbolic summary of one store instruction.
type writeRec struct {
	param   int
	elem    kir.ScalarType
	base    Poly
	unit    Poly // coefficient of blockIdx.x
	coeffBy Poly // coefficient of blockIdx.y
	dims    []dimRec
	tail    bool
}

type rejection struct {
	reason Reason
	detail string
}

// analyzer walks one kernel.
type analyzer struct {
	kernel      *kir.Kernel
	env         []absVal
	guards      []condInfo
	loops       []loopInfo
	loopCounter int
	records     []writeRec
	rejects     []rejection
	// txEq / txLt hold active thread-guard refinements (threadIdx.x == c
	// or threadIdx.x < c); -1 when inactive.
	txEq int64
	txLt int64
}

// Analyze runs the Allgather distributable analysis on a kernel.
func Analyze(k *kir.Kernel) *Metadata {
	a := &analyzer{
		kernel: k,
		env:    make([]absVal, k.NumSlots),
		txEq:   -1,
		txLt:   -1,
	}
	for i, p := range k.Params {
		if !p.Pointer && p.Elem.IsInteger() {
			a.env[i] = polyVal(Var(ParamSym(p.Name)))
		} else {
			a.env[i] = unknownVal(false, false, false)
		}
	}
	a.walkBlock(k.Body)
	return a.finalize()
}

// AnalyzeModule analyzes every kernel of a module.
func AnalyzeModule(m *kir.Module) map[string]*Metadata {
	out := make(map[string]*Metadata, len(m.Kernels))
	for _, k := range m.Kernels {
		out[k.Name] = Analyze(k)
	}
	return out
}

func (a *analyzer) reject(r Reason, format string, args ...any) {
	a.rejects = append(a.rejects, rejection{reason: r, detail: fmt.Sprintf(format, args...)})
}

// --- statement walking ---

func (a *analyzer) walkBlock(b kir.Block) {
	for i, s := range b {
		// An `if (cond) return;` guard means the remainder of the block
		// executes under !cond (the common `if (id >= n) return;` bound
		// check).
		if ifs, ok := s.(*kir.If); ok && len(ifs.Else) == 0 && endsInReturn(ifs.Then) {
			a.walkGuarded(ifs.Then, a.classifyCond(ifs.Cond, false))
			rest := b[i+1:]
			a.walkGuarded(rest, a.classifyCond(ifs.Cond, true))
			return
		}
		a.walkStmt(s)
	}
}

func endsInReturn(b kir.Block) bool {
	for _, s := range b {
		if _, ok := s.(*kir.Return); ok {
			return true
		}
	}
	return false
}

func (a *analyzer) walkStmt(s kir.Stmt) {
	switch s := s.(type) {
	case *kir.Decl:
		if s.Init != nil {
			a.env[s.Slot] = a.evalExpr(s.Init)
		} else {
			a.env[s.Slot] = polyVal(Const(0))
		}
	case *kir.Assign:
		a.env[s.Slot] = a.evalExpr(s.Value)
	case *kir.Store:
		if s.Mem.Space == kir.Global {
			a.visitStore(s.Mem, s.Index)
		}
	case *kir.AtomicRMW:
		if s.Mem.Space == kir.Global {
			a.reject(ReasonOverlap, "atomic %s to %s: block write sets overlap", s.Op, s.Mem.Name)
		}
	case *kir.If:
		a.walkIf(s)
	case *kir.For:
		a.walkFor(s)
	case *kir.While:
		a.walkWhile(s)
	case *kir.Sync, *kir.Return, *kir.BreakStmt, *kir.ContinueStmt:
	}
}

func (a *analyzer) walkIf(s *kir.If) {
	// Constant-true wrappers (scoped blocks) need no guard.
	if c, ok := s.Cond.(*kir.IntLit); ok {
		if c.Val != 0 {
			a.walkBlock(s.Then)
		} else {
			a.walkBlock(s.Else)
		}
		return
	}
	thenInfo := a.classifyCond(s.Cond, false)
	elseInfo := a.classifyCond(s.Cond, true)

	saved := make([]absVal, len(a.env))
	copy(saved, a.env)
	a.walkGuarded(s.Then, thenInfo)
	thenEnv := make([]absVal, len(a.env))
	copy(thenEnv, a.env)

	copy(a.env, saved)
	if len(s.Else) > 0 {
		a.walkGuarded(s.Else, elseInfo)
	}
	for i := range a.env {
		a.env[i] = a.env[i].merge(thenEnv[i], thenInfo.thread, thenInfo.block, thenInfo.loadDep)
	}
}

// walkGuarded walks a block with an extra guard pushed, maintaining the
// threadIdx.x refinements for equality/upper-bound guards.
func (a *analyzer) walkGuarded(b kir.Block, info condInfo) {
	savedEq, savedLt := a.txEq, a.txLt
	a.applyTxRefinement(info)
	a.guards = append(a.guards, info)
	a.walkBlock(b)
	a.guards = a.guards[:len(a.guards)-1]
	a.txEq, a.txLt = savedEq, savedLt
}

// applyTxRefinement records threadIdx.x == c / threadIdx.x < c guard facts.
func (a *analyzer) applyTxRefinement(info condInfo) {
	if info.kind != guardThreadOnly {
		return
	}
	if info.hasTxEq {
		a.txEq = info.txEq
	}
	if info.hasTxLt && (a.txLt < 0 || info.txLt < a.txLt) {
		a.txLt = info.txLt
	}
}

func (a *analyzer) walkWhile(s *kir.While) {
	a.invalidateAssigned(s.Body)
	info := a.classifyCond(s.Cond, false)
	li := loopInfo{analyzable: false, detail: "while loop"}
	a.loops = append(a.loops, li)
	a.walkGuarded(s.Body, info)
	a.loops = a.loops[:len(a.loops)-1]
	a.invalidateAssigned(s.Body)
}

// invalidateAssigned conservatively clears the abstract values of all slots
// assigned anywhere within the block (loop-carried values).
func (a *analyzer) invalidateAssigned(b kir.Block) {
	kir.WalkStmts(b, func(s kir.Stmt) {
		switch s := s.(type) {
		case *kir.Decl:
			a.env[s.Slot] = unknownVal(true, true, true)
		case *kir.Assign:
			a.env[s.Slot] = unknownVal(true, true, true)
		}
	})
}

// walkFor analyzes a for loop, recognizing the canonical form
// for (v = init; v < bound; v += step) with uniform bounds, plus the
// block-stride idiom for (v = threadIdx.x; v < bound; v += blockDim.x).
func (a *analyzer) walkFor(s *kir.For) {
	slot, initVal, ok := a.loopInit(s.Init)
	if ok && a.walkBlockStrideFor(s, slot, initVal) {
		return
	}
	var step int64
	var hasStep bool
	if ok {
		step, hasStep = loopStep(s.Post, slot)
	}
	var bound Poly
	var inclusive, boundOK bool
	if ok && hasStep && step > 0 {
		bound, inclusive, boundOK = a.loopBound(s.Cond, slot)
	}

	if !ok || !hasStep || step <= 0 || !boundOK || !initVal.ok {
		// Non-canonical: invalidate and walk with an unanalyzable loop
		// context.
		a.invalidateAssigned(s.Body)
		if s.Init != nil {
			a.walkStmt(s.Init)
		}
		a.invalidateAssigned(kir.Block{s})
		li := loopInfo{analyzable: false, detail: "non-canonical for loop"}
		a.loops = append(a.loops, li)
		info := condInfo{kind: guardUniform}
		if s.Cond != nil {
			info = a.classifyCond(s.Cond, false)
		}
		a.walkGuarded(s.Body, info)
		a.loops = a.loops[:len(a.loops)-1]
		a.invalidateAssigned(s.Body)
		if slot >= 0 {
			a.env[slot] = unknownVal(false, true, true)
		}
		return
	}

	// Trip count: ceil((bound' - init)/step), with bound' = bound(+1 if <=).
	diff := bound.Sub(initVal.p)
	if inclusive {
		diff = diff.Add(Const(1))
	}
	var count Poly
	countOK := true
	if step == 1 {
		count = diff
	} else if c, isConst := diff.IsConst(); isConst {
		count = Const((c + step - 1) / step)
	} else {
		countOK = false
	}

	boundUniform := !diff.HasThread() && !diff.HasBlock() && !diff.HasLoopVar()
	sym := a.freshLoopSym()
	li := loopInfo{sym: sym, count: count, analyzable: countOK && boundUniform}
	if !boundUniform {
		li.detail = "loop bound varies across threads or blocks"
	} else if !countOK {
		li.detail = "trip count not statically divisible by step"
	}

	// Within the body the induction variable is init + step*L.
	a.invalidateAssigned(s.Body)
	a.env[slot] = polyVal(initVal.p.Add(Var(sym).Scale(step)))
	a.loops = append(a.loops, li)
	a.walkBlock(s.Body)
	a.loops = a.loops[:len(a.loops)-1]
	a.invalidateAssigned(s.Body)
	if li.analyzable {
		// Final value of the induction variable.
		a.env[slot] = polyVal(initVal.p.Add(count.Scale(step)))
	} else {
		a.env[slot] = unknownVal(false, true, true)
	}
}

// walkBlockStrideFor recognizes the block-stride loop idiom
//
//	for (v = threadIdx.x + u0; v < bound; v += blockDim.x)
//
// with uniform u0 and bound.  Across the block's threads the induction
// values cover exactly [u0, bound) once each, so v becomes a single
// uniform range symbol: writes indexed by v stay balanced and contiguous
// even though each thread's trip count differs.  Returns false when the
// loop does not match (the caller then tries the canonical form).
func (a *analyzer) walkBlockStrideFor(s *kir.For, slot int, initVal absVal) bool {
	if !initVal.ok {
		return false
	}
	// init = threadIdx.x + uniform offset.
	ct, u0, ok := initVal.p.CoeffOf(SymTx)
	if !ok || u0.HasThread() || u0.HasBlock() || u0.HasLoopVar() {
		return false
	}
	if c, isConst := ct.IsConst(); !isConst || c != 1 {
		return false
	}
	// post: v = v + blockDim.x.
	as, ok2 := s.Post.(*kir.Assign)
	if !ok2 || as.Slot != slot {
		return false
	}
	bin, ok2 := as.Value.(*kir.Binary)
	if !ok2 || bin.Op != kir.Add {
		return false
	}
	var stepExpr kir.Expr
	if v, isRef := bin.L.(*kir.VarRef); isRef && v.Slot == slot {
		stepExpr = bin.R
	} else if v, isRef := bin.R.(*kir.VarRef); isRef && v.Slot == slot {
		stepExpr = bin.L
	} else {
		return false
	}
	stepVal := a.evalExpr(stepExpr)
	if !stepVal.ok || !stepVal.p.Equal(Var(SymBdx)) {
		return false
	}
	// cond: v < bound with uniform bound.
	bound, inclusive, ok2 := a.loopBound(s.Cond, slot)
	if !ok2 || inclusive || bound.HasThread() || bound.HasBlock() || bound.HasLoopVar() {
		return false
	}

	sym := a.freshLoopSym()
	li := loopInfo{sym: sym, count: bound.Sub(u0), analyzable: true, lo: u0}
	a.invalidateAssigned(s.Body)
	a.env[slot] = polyVal(Var(sym))
	a.loops = append(a.loops, li)
	a.walkBlock(s.Body)
	a.loops = a.loops[:len(a.loops)-1]
	a.invalidateAssigned(s.Body)
	a.env[slot] = unknownVal(false, true, false)
	return true
}

// loopInit extracts (slot, init value) from the loop init statement.
func (a *analyzer) loopInit(s kir.Stmt) (int, absVal, bool) {
	switch s := s.(type) {
	case *kir.Decl:
		if s.Init == nil {
			return s.Slot, polyVal(Const(0)), true
		}
		return s.Slot, a.evalExpr(s.Init), true
	case *kir.Assign:
		return s.Slot, a.evalExpr(s.Value), true
	}
	return -1, absVal{}, false
}

// loopStep recognizes v = v + c in the post statement.
func loopStep(s kir.Stmt, slot int) (int64, bool) {
	as, ok := s.(*kir.Assign)
	if !ok || as.Slot != slot {
		return 0, false
	}
	bin, ok := as.Value.(*kir.Binary)
	if !ok || bin.Op != kir.Add {
		return 0, false
	}
	if v, ok := bin.L.(*kir.VarRef); ok && v.Slot == slot {
		if c, ok := bin.R.(*kir.IntLit); ok {
			return c.Val, true
		}
	}
	if v, ok := bin.R.(*kir.VarRef); ok && v.Slot == slot {
		if c, ok := bin.L.(*kir.IntLit); ok {
			return c.Val, true
		}
	}
	return 0, false
}

// loopBound recognizes v < bound / v <= bound conditions.
func (a *analyzer) loopBound(cond kir.Expr, slot int) (Poly, bool, bool) {
	bin, ok := cond.(*kir.Binary)
	if !ok {
		return Poly{}, false, false
	}
	v, lok := bin.L.(*kir.VarRef)
	if lok && v.Slot == slot && (bin.Op == kir.Lt || bin.Op == kir.Le) {
		b := a.evalExpr(bin.R)
		if b.ok {
			return b.p, bin.Op == kir.Le, true
		}
	}
	// bound > v form.
	v2, rok := bin.R.(*kir.VarRef)
	if rok && v2.Slot == slot && (bin.Op == kir.Gt || bin.Op == kir.Ge) {
		b := a.evalExpr(bin.L)
		if b.ok {
			return b.p, bin.Op == kir.Ge, true
		}
	}
	return Poly{}, false, false
}

// --- store analysis ---

func (a *analyzer) visitStore(mem kir.MemRef, idxExpr kir.Expr) {
	name := mem.Name
	idx := a.evalExpr(idxExpr)
	if !idx.ok {
		if idx.fromLoad {
			a.reject(ReasonIndirect, "write index of %s derives from loaded data", name)
		} else {
			a.reject(ReasonNonAffine, "write index of %s is not affine in thread/block indices", name)
		}
		return
	}

	// Guard conditions (paper condition 2, with the tail-divergence
	// relaxation and the block-invariant refinement).
	tail := false
	for _, g := range a.guards {
		switch g.kind {
		case guardUniform:
		case guardTail:
			tail = true
		case guardThreadOnly:
			// Balanced across blocks.  If the index still depends on the
			// thread index the per-block write set is data-shaped unless a
			// recognized refinement (tx == c / tx < c) bounds it; the
			// refinements were applied in walkGuarded and are consumed
			// below when building dims.
			if idx.p.HasThread() && a.txEq < 0 && a.txLt < 0 {
				a.reject(ReasonGuard, "write to %s under thread-variant condition that is not tail divergent", name)
				return
			}
		case guardBlockVariant:
			a.reject(ReasonGuard, "write to %s under block-variant condition: %s", name, g.detail)
			return
		case guardData:
			a.reject(ReasonGuard, "write to %s under data-dependent condition", name)
			return
		}
	}

	p := idx.p
	// threadIdx.x == c refinement: substitute the constant.
	if a.txEq >= 0 {
		p = p.Subst(SymTx, Const(a.txEq))
	}

	// Enclosing loops must have uniform, statically bounded trip counts;
	// otherwise the per-block write multiplicity cannot be proven equal
	// (conservative sufficient condition — false negatives fall back to
	// trivial execution, preserving correctness).
	for _, li := range a.loops {
		if !li.analyzable {
			a.reject(ReasonLoop, "write to %s inside loop: %s", name, li.detail)
			return
		}
	}

	// Condition 1: affine in threadIdx with uniform coefficient.
	ct, rest, ok := p.CoeffOf(SymTx)
	if !ok || ct.HasThread() || ct.HasBlock() {
		a.reject(ReasonNonAffine, "write index of %s is not affine in threadIdx.x", name)
		return
	}
	cty, rest, ok2 := rest.CoeffOf(SymTy)
	if !ok2 || cty.HasThread() || cty.HasBlock() {
		a.reject(ReasonNonAffine, "write index of %s is not affine in threadIdx.y", name)
		return
	}

	// Condition 3: affine in blockIdx with uniform coefficient.
	cbx, rest, ok3 := rest.CoeffOf(SymBx)
	if !ok3 || cbx.HasThread() || cbx.HasBlock() || cbx.HasLoopVar() {
		a.reject(ReasonNonAffine, "write index of %s is not affine in blockIdx.x", name)
		return
	}
	cby, rest, ok4 := rest.CoeffOf(SymBy)
	if !ok4 || cby.HasThread() || cby.HasBlock() || cby.HasLoopVar() {
		a.reject(ReasonNonAffine, "write index of %s is not affine in blockIdx.y", name)
		return
	}

	rec := writeRec{
		param:   mem.Param,
		elem:    a.kernel.Params[mem.Param].Elem,
		unit:    cbx,
		coeffBy: cby,
		tail:    tail,
	}

	// Iteration dimensions: threadIdx.x, threadIdx.y, then loop variables.
	if !ct.IsZero() {
		count := Var(SymBdx)
		if a.txLt >= 0 {
			count = Const(a.txLt)
		}
		rec.dims = append(rec.dims, dimRec{stride: ct, count: count})
	}
	if !cty.IsZero() {
		rec.dims = append(rec.dims, dimRec{stride: cty, count: Var(SymBdy)})
	}
	base := rest
	for _, li := range a.loops {
		if !li.analyzable {
			continue
		}
		cl, r, ok := base.CoeffOf(li.sym)
		if !ok {
			a.reject(ReasonNonAffine, "write index of %s is not affine in loop variable", name)
			return
		}
		base = r
		if !cl.IsZero() {
			if cl.HasThread() || cl.HasBlock() || cl.HasLoopVar() {
				a.reject(ReasonNonAffine, "write index of %s has non-uniform loop stride", name)
				return
			}
			if !li.lo.IsZero() {
				// Range symbols start at lo; shift the base accordingly.
				base = base.Add(cl.Mul(li.lo))
			}
			rec.dims = append(rec.dims, dimRec{stride: cl, count: li.count})
		}
	}
	if base.HasLoopVar() || base.HasThread() || base.HasBlock() {
		a.reject(ReasonNonAffine, "write index of %s has residual variant terms", name)
		return
	}
	rec.base = base
	a.records = append(a.records, rec)
}

// --- finalization ---

func (a *analyzer) finalize() *Metadata {
	md := &Metadata{KernelName: a.kernel.Name, GIDOnly: detectGIDOnly(a.kernel)}
	if len(a.rejects) > 0 {
		rej := a.rejects[0]
		md.Reason = rej.reason
		md.Detail = rej.detail
		for _, r := range a.rejects {
			md.AllRejections = append(md.AllRejections, fmt.Sprintf("%s: %s", r.reason, r.detail))
		}
		return md
	}
	// Group records by buffer.
	byParam := map[int][]writeRec{}
	var params []int
	for _, r := range a.records {
		if _, seen := byParam[r.param]; !seen {
			params = append(params, r.param)
		}
		byParam[r.param] = append(byParam[r.param], r)
	}
	sort.Ints(params)

	linear2D := false
	for _, param := range params {
		recs := mergeRecords(byParam[param])
		if len(recs) != 1 {
			// Incompatible write shapes to the same buffer: block write
			// sets cannot be proven disjoint, the overlapping-interval
			// pattern of the paper's coverage taxonomy.
			md.Reason = ReasonOverlap
			md.Detail = fmt.Sprintf("multiple incompatible writes to %s: block write intervals may overlap", a.kernel.Params[param].Name)
			return md
		}
		rec := recs[0]
		// 2D grids must linearize: coeff(by) == coeff(bx) * gridDim.x.
		if !rec.coeffBy.IsZero() {
			if !rec.coeffBy.Equal(rec.unit.Mul(Var(SymGdx))) {
				md.Reason = ReasonStride
				md.Detail = fmt.Sprintf("write interval of %s does not advance contiguously across the 2D grid", a.kernel.Params[param].Name)
				return md
			}
			linear2D = true
		}
		span, ok := telescope(rec.dims)
		if !ok {
			md.Reason = ReasonGapped
			md.Detail = fmt.Sprintf("write set of %s is not a contiguous interval", a.kernel.Params[param].Name)
			return md
		}
		if rec.unit.IsZero() || !rec.unit.KnownPositive() {
			md.Reason = ReasonStride
			md.Detail = fmt.Sprintf("block-index coefficient of %s is not positive (%s)", a.kernel.Params[param].Name, rec.unit)
			return md
		}
		if !span.Equal(rec.unit) {
			// Distinguish overlap from gap when provable.
			d := span.Sub(rec.unit)
			if d.KnownPositive() {
				md.Reason = ReasonOverlap
				md.Detail = fmt.Sprintf("blocks write %s elements of %s but advance by %s: write intervals overlap", span, a.kernel.Params[param].Name, rec.unit)
			} else {
				md.Reason = ReasonGapped
				md.Detail = fmt.Sprintf("blocks write %s elements of %s but advance by %s: write intervals leave gaps", span, a.kernel.Params[param].Name, rec.unit)
			}
			return md
		}
		if rec.tail {
			md.TailDivergent = true
		}
		md.Buffers = append(md.Buffers, BufferMeta{
			Param:     param,
			ParamName: a.kernel.Params[param].Name,
			Elem:      rec.elem,
			Base:      rec.base,
			UnitElems: rec.unit,
		})
	}
	// Any record guarded by a tail condition marks the kernel.
	for _, r := range a.records {
		if r.tail {
			md.TailDivergent = true
		}
	}
	md.Linear2D = linear2D
	md.Distributable = len(md.Buffers) > 0
	if len(a.records) == 0 {
		// No global writes at all: nothing to synchronize; execution can
		// be distributed with an empty Allgather.
		md.Distributable = true
	}
	return md
}

// mergeRecords deduplicates identical write records and merges records that
// differ only by constant base offsets forming an arithmetic run (e.g.,
// out[2*id] and out[2*id+1]).
func mergeRecords(recs []writeRec) []writeRec {
	var uniq []writeRec
	for _, r := range recs {
		dup := false
		for _, u := range uniq {
			if sameShape(r, u) && r.base.Equal(u.base) {
				dup = true
				break
			}
		}
		if !dup {
			uniq = append(uniq, r)
		}
	}
	if len(uniq) <= 1 {
		return uniq
	}
	// All must share dims/unit; bases must differ by constants.
	first := uniq[0]
	offsets := make([]int64, 0, len(uniq))
	for _, u := range uniq {
		if !sameShape(u, first) {
			return uniq
		}
		d := u.base.Sub(first.base)
		c, ok := d.IsConst()
		if !ok {
			return uniq
		}
		offsets = append(offsets, c)
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
	stride := int64(1)
	if len(offsets) > 1 {
		stride = offsets[1] - offsets[0]
	}
	if stride <= 0 {
		return uniq
	}
	for i, o := range offsets {
		if o != offsets[0]+int64(i)*stride {
			return uniq
		}
	}
	merged := first
	merged.base = first.base.Add(Const(offsets[0]))
	merged.dims = append(append([]dimRec{}, first.dims...),
		dimRec{stride: Const(stride), count: Const(int64(len(offsets)))})
	for _, u := range uniq {
		merged.tail = merged.tail || u.tail
	}
	return []writeRec{merged}
}

func sameShape(a, b writeRec) bool {
	if a.param != b.param || !a.unit.Equal(b.unit) || !a.coeffBy.Equal(b.coeffBy) || len(a.dims) != len(b.dims) {
		return false
	}
	for i := range a.dims {
		if !a.dims[i].stride.Equal(b.dims[i].stride) || !a.dims[i].count.Equal(b.dims[i].count) {
			return false
		}
	}
	return true
}

// telescope checks that the iteration dimensions tile a contiguous interval:
// there is an ordering with stride[0] == 1 and stride[i+1] == stride[i] *
// count[i]; the covered span (last stride * count) is returned.
func telescope(dims []dimRec) (Poly, bool) {
	// Drop degenerate dimensions.
	var ds []dimRec
	for _, d := range dims {
		if c, ok := d.count.IsConst(); ok && c == 1 {
			continue
		}
		if d.stride.IsZero() {
			continue
		}
		// Negative constant strides flip direction; normalize via |stride|
		// is unsound symbolically, so reject them here (the block
		// coefficient check rejects descending intervals anyway).
		if c, ok := d.stride.IsConst(); ok && c < 0 {
			return Poly{}, false
		}
		ds = append(ds, d)
	}
	if len(ds) == 0 {
		return Const(1), true
	}
	order := make([]int, len(ds))
	for i := range order {
		order[i] = i
	}
	var try func(depth int, used []bool, prevSpan Poly) (Poly, bool)
	try = func(depth int, used []bool, prevSpan Poly) (Poly, bool) {
		if depth == len(ds) {
			return prevSpan, true
		}
		for i := range ds {
			if used[i] {
				continue
			}
			var need Poly
			if depth == 0 {
				need = Const(1)
			} else {
				need = prevSpan
			}
			if !ds[i].stride.Equal(need) {
				continue
			}
			used[i] = true
			if span, ok := try(depth+1, used, ds[i].stride.Mul(ds[i].count)); ok {
				return span, true
			}
			used[i] = false
		}
		return Poly{}, false
	}
	return try(0, make([]bool, len(ds)), Const(1))
}

// Summary renders the metadata for diagnostics and the coverage report.
func (m *Metadata) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: ", m.KernelName)
	if !m.Distributable {
		fmt.Fprintf(&b, "NOT distributable (%s: %s)", m.Reason, m.Detail)
		return b.String()
	}
	b.WriteString("distributable")
	if m.TailDivergent {
		b.WriteString(", tail-divergent")
	}
	if m.Linear2D {
		b.WriteString(", 2D-linearized")
	}
	for _, buf := range m.Buffers {
		fmt.Fprintf(&b, "; %s: unit=%s elems, base=%s", buf.ParamName, buf.UnitElems, buf.Base)
	}
	return b.String()
}

package analysis

import (
	"testing"
	"testing/quick"
)

func TestPolyArithmetic(t *testing.T) {
	tx := Var(SymTx)
	bdx := Var(SymBdx)
	bx := Var(SymBx)

	// bx*bdx + tx
	gid := bx.Mul(bdx).Add(tx)
	if gid.String() != "bdx*bx + tx" {
		t.Errorf("gid = %q", gid.String())
	}
	// (bx*bdx + tx) - (bx*bdx + tx) == 0
	if !gid.Sub(gid).IsZero() {
		t.Error("p - p != 0")
	}
	// 2*(bx*bdx) == bx*bdx + bx*bdx
	if !bx.Mul(bdx).Scale(2).Equal(bx.Mul(bdx).Add(bx.Mul(bdx))) {
		t.Error("scale mismatch")
	}
	if c, ok := Const(7).Add(Const(-3)).IsConst(); !ok || c != 4 {
		t.Error("constant folding failed")
	}
}

func TestPolyCoeffOf(t *testing.T) {
	// p = 3*tx*bdx + 5*bx + 7
	p := Var(SymTx).Mul(Var(SymBdx)).Scale(3).Add(Var(SymBx).Scale(5)).Add(Const(7))
	coeff, rest, ok := p.CoeffOf(SymTx)
	if !ok {
		t.Fatal("CoeffOf failed")
	}
	if !coeff.Equal(Var(SymBdx).Scale(3)) {
		t.Errorf("coeff = %s, want 3*bdx", coeff)
	}
	if !rest.Equal(Var(SymBx).Scale(5).Add(Const(7))) {
		t.Errorf("rest = %s", rest)
	}
	// Quadratic in tx is not affine.
	q := Var(SymTx).Mul(Var(SymTx))
	if _, _, ok := q.CoeffOf(SymTx); ok {
		t.Error("tx^2 reported affine in tx")
	}
}

func TestPolyVariance(t *testing.T) {
	p := Var(SymBx).Mul(Var(SymBdx))
	if p.HasThread() {
		t.Error("bx*bdx reported thread-variant")
	}
	if !p.HasBlock() {
		t.Error("bx*bdx not block-variant")
	}
	if !Var(SymTy).HasThread() {
		t.Error("ty not thread-variant")
	}
	if !Var(Sym("L1")).HasLoopVar() {
		t.Error("L1 not a loop var")
	}
	if !ParamSym("n").IsParam() {
		t.Error("p:n not a param")
	}
}

func TestPolyKnownPositive(t *testing.T) {
	cases := []struct {
		p    Poly
		want bool
	}{
		{Const(1), true},
		{Const(0), false},
		{Const(-2), false},
		{Var(SymBdx), true},
		{Var(ParamSym("n")), true},
		{Var(SymBdx).Sub(Const(1)), false}, // mixed signs
		{Var(SymTx), false},                // thread-variant
		{Var(SymBdx).Mul(Var(ParamSym("n"))), true},
	}
	for i, c := range cases {
		if got := c.p.KnownPositive(); got != c.want {
			t.Errorf("case %d (%s): KnownPositive = %v, want %v", i, c.p, got, c.want)
		}
	}
}

func TestPolySubst(t *testing.T) {
	// (tx + 2)*bdx with tx := 3 -> 5*bdx
	p := Var(SymTx).Add(Const(2)).Mul(Var(SymBdx))
	got := p.Subst(SymTx, Const(3))
	if !got.Equal(Var(SymBdx).Scale(5)) {
		t.Errorf("subst = %s, want 5*bdx", got)
	}
}

func TestPolyEval(t *testing.T) {
	p := Var(SymBdx).Mul(Var(SymGdx)).Add(Var(ParamSym("n")).Scale(2)).Add(Const(1))
	env := Env{Bdx: 256, Gdx: 10, Params: map[string]int64{"n": 5}}
	got, err := p.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if got != 256*10+10+1 {
		t.Errorf("Eval = %d, want %d", got, 256*10+11)
	}
	// Thread symbols cannot be evaluated at launch time.
	if _, err := Var(SymTx).Eval(env); err == nil {
		t.Error("Eval(tx) succeeded, want error")
	}
	// Missing parameter.
	if _, err := Var(ParamSym("m")).Eval(env); err == nil {
		t.Error("Eval with missing param succeeded, want error")
	}
}

// Property: polynomial arithmetic is a commutative ring homomorphism onto
// evaluation: Eval(p op q) == Eval(p) op Eval(q).
func TestPolyEvalHomomorphism(t *testing.T) {
	mk := func(a, b, c int8) Poly {
		return Var(SymBdx).Scale(int64(a)).Add(Var(ParamSym("n")).Scale(int64(b))).Add(Const(int64(c)))
	}
	env := Env{Bdx: 17, Bdy: 1, Gdx: 3, Gdy: 1, Params: map[string]int64{"n": 23}}
	f := func(a1, b1, c1, a2, b2, c2 int8) bool {
		p, q := mk(a1, b1, c1), mk(a2, b2, c2)
		pv, err1 := p.Eval(env)
		qv, err2 := q.Eval(env)
		s, err3 := p.Add(q).Eval(env)
		m, err4 := p.Mul(q).Eval(env)
		d, err5 := p.Sub(q).Eval(env)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
			return false
		}
		return s == pv+qv && m == pv*qv && d == pv-qv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Equal is consistent with evaluation across several environments.
func TestPolyEqualConsistency(t *testing.T) {
	f := func(a, b, c int8) bool {
		p := Var(SymBdx).Scale(int64(a)).Add(Const(int64(b))).Add(Var(SymGdx).Scale(int64(c)))
		q := Var(SymGdx).Scale(int64(c)).Add(Var(SymBdx).Scale(int64(a))).Add(Const(int64(b)))
		return p.Equal(q) && q.Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTelescope(t *testing.T) {
	bdx := Var(SymBdx)
	n := Var(ParamSym("n"))
	cases := []struct {
		name string
		dims []dimRec
		span Poly
		ok   bool
	}{
		{"empty", nil, Const(1), true},
		{"single thread dim", []dimRec{{Const(1), bdx}}, bdx, true},
		{"thread+loop", []dimRec{{Const(1), bdx}, {bdx, n}}, bdx.Mul(n), true},
		{"loop first order", []dimRec{{bdx, n}, {Const(1), bdx}}, bdx.Mul(n), true},
		{"gap stride 2", []dimRec{{Const(2), bdx}}, Poly{}, false},
		{"interleaved pair", []dimRec{{Const(2), bdx}, {Const(1), Const(2)}}, bdx.Scale(2), true},
		{"count 1 dropped", []dimRec{{n, Const(1)}}, Const(1), true},
		{"negative stride", []dimRec{{Const(-1), bdx}}, Poly{}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			span, ok := telescope(c.dims)
			if ok != c.ok {
				t.Fatalf("ok = %v, want %v", ok, c.ok)
			}
			if ok && !span.Equal(c.span) {
				t.Errorf("span = %s, want %s", span, c.span)
			}
		})
	}
}

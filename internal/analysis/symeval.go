package analysis

import (
	"fmt"

	"cucc/internal/kir"
)

// absVal is the abstract value of a kernel variable: either a polynomial
// over the analysis symbols, or unknown with variance flags.
type absVal struct {
	ok       bool
	p        Poly
	fromLoad bool // value derives from a memory load
	thread   bool // when !ok: may vary with threadIdx
	block    bool // when !ok: may vary with blockIdx
}

func polyVal(p Poly) absVal { return absVal{ok: true, p: p} }

func unknownVal(fromLoad, thread, block bool) absVal {
	return absVal{fromLoad: fromLoad, thread: thread, block: block}
}

// variance summarizes what an abstract value can depend on.
func (v absVal) threadVariant() bool {
	if v.ok {
		return v.p.HasThread()
	}
	return v.thread
}

func (v absVal) blockVariant() bool {
	if v.ok {
		return v.p.HasBlock()
	}
	return v.block
}

func (v absVal) equal(o absVal) bool {
	if v.ok != o.ok {
		return false
	}
	if v.ok {
		return v.p.Equal(o.p)
	}
	return v.fromLoad == o.fromLoad && v.thread == o.thread && v.block == o.block
}

// merge joins the values of a slot after an if/else.
func (v absVal) merge(o absVal, guardThread, guardBlock, guardLoad bool) absVal {
	if v.equal(o) {
		return v
	}
	return unknownVal(
		v.fromLoad || o.fromLoad || guardLoad,
		v.threadVariant() || o.threadVariant() || guardThread,
		v.blockVariant() || o.blockVariant() || guardBlock,
	)
}

// evalExpr abstracts a kernel expression into the polynomial domain.
func (a *analyzer) evalExpr(e kir.Expr) absVal {
	switch e := e.(type) {
	case *kir.IntLit:
		return polyVal(Const(e.Val))
	case *kir.FloatLit:
		// Floats never form indices; keep them unknown-invariant.
		return unknownVal(false, false, false)
	case *kir.VarRef:
		return a.env[e.Slot]
	case *kir.BuiltinRef:
		switch e.B {
		case kir.ThreadIdx:
			if e.Axis == kir.X {
				return polyVal(Var(SymTx))
			}
			return polyVal(Var(SymTy))
		case kir.BlockIdx:
			if e.Axis == kir.X {
				return polyVal(Var(SymBx))
			}
			return polyVal(Var(SymBy))
		case kir.BlockDim:
			if e.Axis == kir.X {
				return polyVal(Var(SymBdx))
			}
			return polyVal(Var(SymBdy))
		default:
			if e.Axis == kir.X {
				return polyVal(Var(SymGdx))
			}
			return polyVal(Var(SymGdy))
		}
	case *kir.Binary:
		l := a.evalExpr(e.L)
		r := a.evalExpr(e.R)
		if l.ok && r.ok {
			switch e.Op {
			case kir.Add:
				return polyVal(l.p.Add(r.p))
			case kir.Sub:
				return polyVal(l.p.Sub(r.p))
			case kir.Mul:
				return polyVal(l.p.Mul(r.p))
			case kir.Div, kir.Rem:
				// Exact constant folding only; otherwise the result is not a
				// polynomial (e.g., id/width 2D decompositions).
				lc, lok := l.p.IsConst()
				rc, rok := r.p.IsConst()
				if lok && rok && rc != 0 {
					if e.Op == kir.Div && lc%rc == 0 {
						return polyVal(Const(lc / rc))
					}
					if e.Op == kir.Rem {
						return polyVal(Const(lc % rc))
					}
				}
				return unknownVal(false, l.threadVariant() || r.threadVariant(), l.blockVariant() || r.blockVariant())
			case kir.Shl:
				if rc, rok := r.p.IsConst(); rok && rc >= 0 && rc < 31 {
					return polyVal(l.p.Scale(1 << uint(rc)))
				}
			}
		}
		return unknownVal(l.fromLoad || r.fromLoad,
			l.threadVariant() || r.threadVariant(),
			l.blockVariant() || r.blockVariant())
	case *kir.Unary:
		x := a.evalExpr(e.X)
		if x.ok && e.Op == kir.Neg {
			return polyVal(x.p.Neg())
		}
		return unknownVal(x.fromLoad, x.threadVariant(), x.blockVariant())
	case *kir.Load:
		idx := a.evalExpr(e.Index)
		return unknownVal(true,
			idx.threadVariant() || idx.fromLoad,
			idx.blockVariant() || idx.fromLoad)
	case *kir.Call:
		fromLoad, th, bl := false, false, false
		for _, arg := range e.Args {
			v := a.evalExpr(arg)
			fromLoad = fromLoad || v.fromLoad
			th = th || v.threadVariant()
			bl = bl || v.blockVariant()
		}
		return unknownVal(fromLoad, th, bl)
	case *kir.Cast:
		x := a.evalExpr(e.X)
		if x.ok && e.To.IsInteger() && e.X.Type().IsInteger() {
			return x
		}
		if x.ok && e.To.IsInteger() && e.X.Type() == kir.Bool {
			return unknownVal(false, x.threadVariant(), x.blockVariant())
		}
		if x.ok {
			return x
		}
		return unknownVal(x.fromLoad, x.threadVariant(), x.blockVariant())
	case *kir.Select:
		c := a.evalExpr(e.Cond)
		va := a.evalExpr(e.A)
		vb := a.evalExpr(e.B)
		if va.equal(vb) && va.ok {
			return va
		}
		return unknownVal(c.fromLoad || va.fromLoad || vb.fromLoad,
			c.threadVariant() || va.threadVariant() || vb.threadVariant(),
			c.blockVariant() || va.blockVariant() || vb.blockVariant())
	}
	return unknownVal(true, true, true)
}

// condInfo is the classification of a branch condition.
type condInfo struct {
	kind    guardKind
	loadDep bool
	thread  bool
	block   bool
	detail  string
	// Thread-guard refinements: "threadIdx.x == c" and "threadIdx.x < c"
	// patterns let writes under block-invariant guards stay analyzable
	// (e.g., one designated writer thread per block).
	hasTxEq bool
	txEq    int64
	hasTxLt bool
	txLt    int64
}

type guardKind uint8

const (
	// guardUniform conditions are identical for every thread of every
	// block; writes under them stay balanced.
	guardUniform guardKind = iota
	// guardThreadOnly conditions depend on threadIdx but not blockIdx
	// (e.g., threadIdx.x == 0): every block evaluates them identically,
	// so per-block write volumes still match (paper §6.2 condition 2,
	// block-invariant reading).
	guardThreadOnly
	// guardTail is the paper's tail-divergence pattern: a global-id bound
	// check that can only fail in the last block(s).
	guardTail
	// guardBlockVariant conditions can make different blocks write
	// different amounts; writes under them are not distributable.
	guardBlockVariant
	// guardData conditions depend on loaded data.
	guardData
)

// classifyCond analyzes a branch condition.  negated reports the branch
// reached when the condition is false.
func (a *analyzer) classifyCond(e kir.Expr, negated bool) condInfo {
	if b, ok := e.(*kir.Binary); ok {
		if b.Op == kir.LAnd && !negated {
			l := a.classifyCond(b.L, false)
			r := a.classifyCond(b.R, false)
			return combineConj(l, r)
		}
		if b.Op == kir.LOr && negated {
			// !(a || b) == !a && !b
			l := a.classifyCond(b.L, true)
			r := a.classifyCond(b.R, true)
			return combineConj(l, r)
		}
		if b.Op.IsComparison() {
			return a.classifyCompare(b, negated)
		}
	}
	if u, ok := e.(*kir.Unary); ok && u.Op == kir.Not {
		return a.classifyCond(u.X, !negated)
	}
	v := a.evalExpr(e)
	return condFromVariance(v)
}

func combineConj(l, r condInfo) condInfo {
	out := condInfo{kind: guardUniform}
	for _, c := range []condInfo{l, r} {
		out.loadDep = out.loadDep || c.loadDep
		out.thread = out.thread || c.thread
		out.block = out.block || c.block
		if c.kind > out.kind {
			out.kind = c.kind
			out.detail = c.detail
		}
	}
	return out
}

func condFromVariance(v absVal) condInfo {
	switch {
	case v.fromLoad:
		return condInfo{kind: guardData, loadDep: true, detail: "condition depends on loaded data"}
	case v.blockVariant():
		return condInfo{kind: guardBlockVariant, block: true, detail: "condition varies across blocks"}
	case v.threadVariant():
		return condInfo{kind: guardThreadOnly, thread: true}
	default:
		return condInfo{kind: guardUniform}
	}
}

// classifyCompare recognizes the tail-divergence pattern gid < bound where
// gid = c*(blockIdx.x*blockDim.x + threadIdx.x) + const and bound is
// uniform.
func (a *analyzer) classifyCompare(b *kir.Binary, negated bool) condInfo {
	l := a.evalExpr(b.L)
	r := a.evalExpr(b.R)
	if !l.ok || !r.ok {
		v := unknownVal(l.fromLoad || r.fromLoad,
			l.threadVariant() || r.threadVariant(),
			l.blockVariant() || r.blockVariant())
		return condFromVariance(v)
	}
	op := b.Op
	if negated {
		op = negateCmp(op)
	}
	// Normalize to lhs < rhs or lhs <= rhs.
	lhs, rhs := l.p, r.p
	switch op {
	case kir.Gt:
		lhs, rhs, op = rhs, lhs, kir.Lt
	case kir.Ge:
		lhs, rhs, op = rhs, lhs, kir.Le
	}
	if op == kir.Lt || op == kir.Le {
		if isGlobalID(lhs) && !rhs.HasThread() && !rhs.HasBlock() && !rhs.HasLoopVar() {
			return condInfo{kind: guardTail, thread: true, block: true}
		}
		// threadIdx.x < c refinement.
		if lhs.Equal(Var(SymTx)) {
			if c, ok := rhs.IsConst(); ok && c > 0 {
				bound := c
				if op == kir.Le {
					bound++
				}
				return condInfo{kind: guardThreadOnly, thread: true, hasTxLt: true, txLt: bound}
			}
		}
	}
	// threadIdx.x == c refinement (the designated-writer pattern, e.g.,
	// BinomialOption's single writer thread).
	if op == kir.Eq {
		if lhs.Equal(Var(SymTx)) {
			if c, ok := rhs.IsConst(); ok && c >= 0 {
				return condInfo{kind: guardThreadOnly, thread: true, hasTxEq: true, txEq: c}
			}
		}
		if rhs.Equal(Var(SymTx)) {
			if c, ok := lhs.IsConst(); ok && c >= 0 {
				return condInfo{kind: guardThreadOnly, thread: true, hasTxEq: true, txEq: c}
			}
		}
	}
	v := unknownVal(false,
		lhs.HasThread() || rhs.HasThread(),
		lhs.HasBlock() || rhs.HasBlock())
	return condFromVariance(v)
}

func negateCmp(op kir.BinOp) kir.BinOp {
	switch op {
	case kir.Lt:
		return kir.Ge
	case kir.Le:
		return kir.Gt
	case kir.Gt:
		return kir.Le
	case kir.Ge:
		return kir.Lt
	case kir.Eq:
		return kir.Ne
	default:
		return kir.Eq
	}
}

// isGlobalID reports whether p has the shape c*(bx*bdx + tx) + uniform with
// c > 0: the flattened global thread index, increasing contiguously across
// blocks.  Such an expression is < bound for every thread of blocks
// 0..K-1 and can diverge only in trailing blocks.
func isGlobalID(p Poly) bool {
	ct, rest1, ok := p.CoeffOf(SymTx)
	if !ok {
		return false
	}
	c, isConst := ct.IsConst()
	if !isConst || c <= 0 {
		return false
	}
	cb, rest2, ok := rest1.CoeffOf(SymBx)
	if !ok {
		return false
	}
	// coeff(bx) must equal coeff(tx) * blockDim.x.
	if !cb.Equal(Const(c).Mul(Var(SymBdx))) {
		return false
	}
	// Remaining terms must be uniform.
	if rest2.HasThread() || rest2.HasBlock() || rest2.HasLoopVar() {
		return false
	}
	return true
}

// loopInfo describes one enclosing loop at a write site.
type loopInfo struct {
	sym        Sym
	count      Poly // trip count (iterations), uniform
	analyzable bool
	detail     string
	// lo is the range start of the loop symbol (non-zero for block-stride
	// loops, whose symbol ranges over [lo, lo+count) directly).
	lo Poly
}

func (a *analyzer) freshLoopSym() Sym {
	a.loopCounter++
	return Sym(fmt.Sprintf("L%d", a.loopCounter))
}

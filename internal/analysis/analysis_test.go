package analysis

import (
	"strings"
	"testing"

	"cucc/internal/kir"
	"cucc/internal/lang"
)

func analyzeSrc(t *testing.T, src, kernel string) *Metadata {
	t.Helper()
	mod, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	k := mod.Kernel(kernel)
	if k == nil {
		t.Fatalf("kernel %q not found", kernel)
	}
	return Analyze(k)
}

func TestVecCopyTailDivergent(t *testing.T) {
	md := analyzeSrc(t, `
__global__ void vec_copy(char *src, char *dest, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n)
        dest[id] = src[id];
}`, "vec_copy")
	if !md.Distributable {
		t.Fatalf("vec_copy not distributable: %s", md.Summary())
	}
	if !md.TailDivergent {
		t.Error("vec_copy should be tail-divergent")
	}
	if len(md.Buffers) != 1 {
		t.Fatalf("got %d buffers, want 1", len(md.Buffers))
	}
	buf := md.Buffers[0]
	if buf.ParamName != "dest" {
		t.Errorf("buffer = %q, want dest", buf.ParamName)
	}
	if !buf.UnitElems.Equal(Var(SymBdx)) {
		t.Errorf("unit = %s, want bdx", buf.UnitElems)
	}
	if !buf.Base.IsZero() {
		t.Errorf("base = %s, want 0", buf.Base)
	}
}

func TestEarlyReturnGuard(t *testing.T) {
	// The `if (id >= n) return;` form must be recognized as the same tail
	// divergence.
	md := analyzeSrc(t, `
__global__ void vc(float *src, float *dest, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id >= n) return;
    dest[id] = src[id];
}`, "vc")
	if !md.Distributable || !md.TailDivergent {
		t.Fatalf("early-return kernel: %s", md.Summary())
	}
}

func TestUnguardedExactKernel(t *testing.T) {
	// No bound check: distributable, not tail-divergent.
	md := analyzeSrc(t, `
__global__ void scale(float* x, float* y, float a) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    y[id] = a * x[id];
}`, "scale")
	if !md.Distributable {
		t.Fatalf("scale: %s", md.Summary())
	}
	if md.TailDivergent {
		t.Error("scale should not be tail-divergent")
	}
}

func TestFIRWriteAfterLoop(t *testing.T) {
	md := analyzeSrc(t, `
__global__ void fir(float* in, float* out, float* coeff, int n, int taps) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        float sum = 0.0f;
        for (int i = 0; i < taps; i++)
            sum += coeff[i] * in[id + i];
        out[id] = sum;
    }
}`, "fir")
	if !md.Distributable || !md.TailDivergent {
		t.Fatalf("fir: %s", md.Summary())
	}
	if md.Buffers[0].ParamName != "out" {
		t.Errorf("buffer = %q, want out", md.Buffers[0].ParamName)
	}
}

func TestDesignatedWriterPattern(t *testing.T) {
	// BinomialOption-style: only thread 0 writes one scalar per block.
	md := analyzeSrc(t, `
__global__ void binomial(float* prices, float* out, int steps) {
    float v = prices[blockIdx.x * blockDim.x + threadIdx.x];
    if (threadIdx.x == 0)
        out[blockIdx.x] = v * 2.0f;
}`, "binomial")
	if !md.Distributable {
		t.Fatalf("binomial: %s", md.Summary())
	}
	if md.TailDivergent {
		t.Error("binomial should not be tail-divergent")
	}
	buf := md.Buffers[0]
	if c, ok := buf.UnitElems.IsConst(); !ok || c != 1 {
		t.Errorf("unit = %s, want 1", buf.UnitElems)
	}
}

func TestWriterThreadUsesIndex(t *testing.T) {
	// tx == 2 substitutes into the index: out[bx*bdx + tx] under tx==2
	// writes exactly one element at bx*bdx + 2 -> gapped (unit bdx, span 1).
	md := analyzeSrc(t, `
__global__ void g(float* out) {
    if (threadIdx.x == 2)
        out[blockIdx.x * blockDim.x + threadIdx.x] = 1.0f;
}`, "g")
	if md.Distributable {
		t.Fatalf("gapped single-writer kernel reported distributable: %s", md.Summary())
	}
	if md.Reason != ReasonGapped {
		t.Errorf("reason = %s, want %s", md.Reason, ReasonGapped)
	}
}

func TestRowPerBlockLoop(t *testing.T) {
	// Transpose/MatMul style: block bx writes output row bx via a tiled
	// column loop; unit per block = n elements, contiguous.
	md := analyzeSrc(t, `
__global__ void rowk(float* in, float* out, int n) {
    for (int t = 0; t < n / blockDim.x; t++) {
        int col = t * blockDim.x + threadIdx.x;
        out[blockIdx.x * n + col] = in[col * n + blockIdx.x];
    }
}`, "rowk")
	// n/blockDim.x is non-polynomial division -> the loop is canonical but
	// its trip count is unknown; the write depends on it, so this must be
	// rejected... unless written with a stride loop.  Verify the rejection.
	if md.Distributable {
		t.Fatalf("division-bound loop unexpectedly analyzable: %s", md.Summary())
	}

	// The stride-loop formulation is analyzable: col advances by blockDim.
	md = analyzeSrc(t, `
__global__ void rowk2(float* in, float* out, int n) {
    for (int col = threadIdx.x; col < n; col += blockDim.x) {
        out[blockIdx.x * n + col] = in[col * n + blockIdx.x];
    }
}`, "rowk2")
	// Stride loop: init threadIdx.x, step blockDim.x -> non-constant step
	// is not canonical either; this is a known false negative.
	if md.Distributable {
		t.Logf("stride-loop formulation analyzed: %s", md.Summary())
	}

	// With an unrelated row length n the analysis cannot prove
	// bdx*tiles == n, so gap-freedom fails: a correct false negative.
	md = analyzeSrc(t, `
__global__ void rowk3(float* in, float* out, int n, int tiles) {
    for (int t = 0; t < tiles; t++) {
        int col = t * blockDim.x + threadIdx.x;
        out[blockIdx.x * n + col] = in[col * n + blockIdx.x];
    }
}`, "rowk3")
	if md.Distributable {
		t.Fatalf("rowk3 unexpectedly proved gap-free: %s", md.Summary())
	}
	if md.Reason != ReasonGapped {
		t.Errorf("rowk3 reason = %s, want %s", md.Reason, ReasonGapped)
	}

	// Expressing the row length as tiles*blockDim.x closes the proof; this
	// is how the suites' transpose/matmul kernels are written.
	md = analyzeSrc(t, `
__global__ void rowk4(float* in, float* out, int tiles) {
    int n = tiles * blockDim.x;
    for (int t = 0; t < tiles; t++) {
        int col = t * blockDim.x + threadIdx.x;
        out[blockIdx.x * n + col] = in[col * n + blockIdx.x];
    }
}`, "rowk4")
	if !md.Distributable {
		t.Fatalf("rowk4: %s", md.Summary())
	}
	if !md.Buffers[0].UnitElems.Equal(Var(SymBdx).Mul(Var(ParamSym("tiles")))) {
		t.Errorf("unit = %s, want bdx*p:tiles", md.Buffers[0].UnitElems)
	}
}

func TestAtomicOverlap(t *testing.T) {
	md := analyzeSrc(t, `
__global__ void hist(char* data, int* bins, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        atomicAdd(&bins[data[id]], 1);
}`, "hist")
	if md.Distributable {
		t.Fatal("histogram with atomics reported distributable")
	}
	if md.Reason != ReasonOverlap {
		t.Errorf("reason = %s, want %s", md.Reason, ReasonOverlap)
	}
}

func TestIndirectWrite(t *testing.T) {
	md := analyzeSrc(t, `
__global__ void scatter(int* idx, float* out, float* in, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        out[idx[id]] = in[id];
}`, "scatter")
	if md.Distributable {
		t.Fatal("scatter reported distributable")
	}
	if md.Reason != ReasonIndirect {
		t.Errorf("reason = %s, want %s", md.Reason, ReasonIndirect)
	}
}

func TestOverlappingStencil(t *testing.T) {
	// Each block writes bdx+1 elements but advances by bdx: overlap.
	md := analyzeSrc(t, `
__global__ void stencil(float* out) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    out[id] = 1.0f;
    if (threadIdx.x == 0)
        out[blockIdx.x * blockDim.x + blockDim.x] = 2.0f;
}`, "stencil")
	if md.Distributable {
		t.Fatalf("overlapping stencil reported distributable: %s", md.Summary())
	}
}

func TestGappedStride2(t *testing.T) {
	md := analyzeSrc(t, `
__global__ void evens(float* out) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    out[2 * id] = 1.0f;
}`, "evens")
	if md.Distributable {
		t.Fatal("stride-2 write reported distributable")
	}
	if md.Reason != ReasonGapped {
		t.Errorf("reason = %s, want %s", md.Reason, ReasonGapped)
	}
}

func TestInterleavedPairMerges(t *testing.T) {
	// out[2*id] and out[2*id+1] together cover a contiguous interval.
	md := analyzeSrc(t, `
__global__ void vec2(float* out) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    out[2 * id] = 1.0f;
    out[2 * id + 1] = 2.0f;
}`, "vec2")
	if !md.Distributable {
		t.Fatalf("vec2: %s", md.Summary())
	}
	if !md.Buffers[0].UnitElems.Equal(Var(SymBdx).Scale(2)) {
		t.Errorf("unit = %s, want 2*bdx", md.Buffers[0].UnitElems)
	}
}

func TestBlockVariantGuard(t *testing.T) {
	md := analyzeSrc(t, `
__global__ void oddblocks(float* out, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (blockIdx.x > 5)
        out[id] = 1.0f;
}`, "oddblocks")
	if md.Distributable {
		t.Fatal("block-variant guard reported distributable")
	}
	if md.Reason != ReasonGuard {
		t.Errorf("reason = %s, want %s", md.Reason, ReasonGuard)
	}
}

func TestDataDependentGuard(t *testing.T) {
	md := analyzeSrc(t, `
__global__ void ga(char* query, char* target, int* found, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        if (query[id] == target[0])
            found[id] = 1;
    }
}`, "ga")
	if md.Distributable {
		t.Fatal("data-dependent guard reported distributable")
	}
	if md.Reason != ReasonGuard {
		t.Errorf("reason = %s, want %s", md.Reason, ReasonGuard)
	}
}

func TestWhileLoopWrite(t *testing.T) {
	md := analyzeSrc(t, `
__global__ void wloop(float* out, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    int i = 0;
    while (i < n) {
        out[id * n + i] = 1.0f;
        i++;
    }
}`, "wloop")
	if md.Distributable {
		t.Fatal("while-loop write reported distributable")
	}
	if md.Reason != ReasonLoop && md.Reason != ReasonNonAffine && md.Reason != ReasonIndirect {
		t.Errorf("reason = %s", md.Reason)
	}
}

func TestDescendingIndexRejected(t *testing.T) {
	md := analyzeSrc(t, `
__global__ void rev(float* out, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    out[n - id] = 1.0f;
}`, "rev")
	if md.Distributable {
		t.Fatal("descending write reported distributable")
	}
	if md.Reason != ReasonStride && md.Reason != ReasonGapped {
		t.Errorf("reason = %s, want stride/gapped", md.Reason)
	}
}

func Test2DLinearizedGrid(t *testing.T) {
	// 2D grid where the write interval advances row-major across blocks.
	md := analyzeSrc(t, `
__global__ void grid2d(float* out) {
    int bid = blockIdx.y * gridDim.x + blockIdx.x;
    int id = bid * blockDim.x + threadIdx.x;
    out[id] = 1.0f;
}`, "grid2d")
	if !md.Distributable {
		t.Fatalf("grid2d: %s", md.Summary())
	}
	if !md.Linear2D {
		t.Error("grid2d should be marked Linear2D")
	}
}

func Test2DNonLinearizedRejected(t *testing.T) {
	// Column-major 2D write: blocks along y do not advance contiguously.
	md := analyzeSrc(t, `
__global__ void colmajor(float* out, int h) {
    int id = (blockIdx.x * gridDim.y + blockIdx.y) * blockDim.x + threadIdx.x;
    out[id] = 1.0f;
}`, "colmajor")
	if md.Distributable {
		t.Fatalf("column-major 2D write reported distributable: %s", md.Summary())
	}
}

func TestNoGlobalWrites(t *testing.T) {
	md := analyzeSrc(t, `
__global__ void readonly(float* in, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    float v = in[id % n];
    v = v * 2.0f;
}`, "readonly")
	if !md.Distributable {
		t.Errorf("kernel with no global writes should be distributable: %s", md.Summary())
	}
	if len(md.Buffers) != 0 {
		t.Errorf("got %d buffers, want 0", len(md.Buffers))
	}
}

func TestMultiBufferWrites(t *testing.T) {
	md := analyzeSrc(t, `
__global__ void twofer(float* a, float* b, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        a[id] = 1.0f;
        b[id] = 2.0f;
    }
}`, "twofer")
	if !md.Distributable {
		t.Fatalf("twofer: %s", md.Summary())
	}
	if len(md.Buffers) != 2 {
		t.Fatalf("got %d buffers, want 2", len(md.Buffers))
	}
}

func TestScaledGlobalIDGuard(t *testing.T) {
	// Guard on a scaled global id is still tail divergent.
	md := analyzeSrc(t, `
__global__ void scaled(float* out, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (4 * id < n)
        out[id] = 1.0f;
}`, "scaled")
	if !md.Distributable || !md.TailDivergent {
		t.Fatalf("scaled: %s", md.Summary())
	}
}

func TestConjunctionGuard(t *testing.T) {
	md := analyzeSrc(t, `
__global__ void conj(float* out, int n, int flag) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n && flag > 0)
        out[id] = 1.0f;
}`, "conj")
	if !md.Distributable || !md.TailDivergent {
		t.Fatalf("conj: %s", md.Summary())
	}
}

func TestMetadataEval(t *testing.T) {
	md := analyzeSrc(t, `
__global__ void vc(float *src, float *dest, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n) dest[id] = src[id];
}`, "vc")
	env := Env{Bdx: 256, Bdy: 1, Gdx: 5, Gdy: 1, Params: map[string]int64{"n": 1200}}
	unit, err := md.Buffers[0].UnitElems.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if unit != 256 {
		t.Errorf("unit = %d, want 256", unit)
	}
}

func TestSummaryStrings(t *testing.T) {
	md := analyzeSrc(t, `
__global__ void vc(float *src, float *dest, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n) dest[id] = src[id];
}`, "vc")
	s := md.Summary()
	for _, want := range []string{"distributable", "tail-divergent", "dest"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
	for r := ReasonOK; r <= ReasonStride; r++ {
		if r.String() == "unknown" {
			t.Errorf("reason %d has no name", r)
		}
	}
}

func TestAnalyzeModule(t *testing.T) {
	mod, err := lang.Parse(`
__global__ void a(float* x) { x[blockIdx.x * blockDim.x + threadIdx.x] = 1.0f; }
__global__ void b(int* idx, float* x) { x[idx[threadIdx.x]] = 1.0f; }
`)
	if err != nil {
		t.Fatal(err)
	}
	mds := AnalyzeModule(mod)
	if len(mds) != 2 {
		t.Fatalf("got %d results", len(mds))
	}
	if !mds["a"].Distributable || mds["b"].Distributable {
		t.Errorf("a=%v b=%v, want true/false", mds["a"].Distributable, mds["b"].Distributable)
	}
}

func TestSharedMemoryIgnored(t *testing.T) {
	// Shared-memory stores need no communication and must not affect the
	// result (paper footnote 1).
	md := analyzeSrc(t, `
__global__ void sh(float* in, float* out, int n) {
    __shared__ float buf[256];
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    buf[threadIdx.x] = in[id];
    __syncthreads();
    if (id < n)
        out[id] = buf[threadIdx.x];
}`, "sh")
	if !md.Distributable {
		t.Fatalf("sh: %s", md.Summary())
	}
	if len(md.Buffers) != 1 || md.Buffers[0].ParamName != "out" {
		t.Errorf("buffers = %+v, want only out", md.Buffers)
	}
}

func mustKernelIR(t *testing.T, name string) *kir.Kernel {
	t.Helper()
	mod := lang.MustParse(`__global__ void k(float* out) { out[threadIdx.x] = 1.0f; }`)
	return mod.Kernels[0]
}

func TestSingleBlockOnlyWriteRejected(t *testing.T) {
	// Writes independent of blockIdx have zero block coefficient: every
	// block writes the same interval -> overlap, not distributable.
	k := mustKernelIR(t, "k")
	md := Analyze(k)
	if md.Distributable {
		t.Fatalf("block-invariant write reported distributable: %s", md.Summary())
	}
	if md.Reason != ReasonStride {
		t.Errorf("reason = %s, want %s", md.Reason, ReasonStride)
	}
}

func TestBlockStrideLoop(t *testing.T) {
	// The grid-stride idiom: each thread handles columns tx, tx+bdx, ...
	// Across the block the writes cover [0, n) exactly once, so the
	// analysis accepts it via the range-symbol extension.
	md := analyzeSrc(t, `
__global__ void rowstride(float* in, float* out, int n) {
    for (int col = threadIdx.x; col < n; col = col + blockDim.x) {
        out[blockIdx.x * n + col] = in[col * n + blockIdx.x];
    }
}`, "rowstride")
	if !md.Distributable {
		t.Fatalf("rowstride: %s", md.Summary())
	}
	if !md.Buffers[0].UnitElems.Equal(Var(ParamSym("n"))) {
		t.Errorf("unit = %s, want p:n", md.Buffers[0].UnitElems)
	}

	// With a uniform offset start.
	md = analyzeSrc(t, `
__global__ void offsetstride(float* out, int n, int off) {
    for (int col = threadIdx.x + off; col < n; col = col + blockDim.x) {
        out[blockIdx.x * n + col] = 1.0f;
    }
}`, "offsetstride")
	// Per-block writes cover [off, n): count n-off but block stride n ->
	// gapped unless off == 0; the analysis must reject, not mis-accept.
	if md.Distributable {
		t.Fatalf("offsetstride unexpectedly accepted: %s", md.Summary())
	}

	// Base shifting: stride loop feeding a scaled index.
	md = analyzeSrc(t, `
__global__ void scaledstride(float* out, int n) {
    for (int col = threadIdx.x; col < n; col = col + blockDim.x) {
        out[2 * (blockIdx.x * n + col)] = 1.0f;
    }
}`, "scaledstride")
	if md.Distributable {
		t.Fatalf("stride-2 write accepted: %s", md.Summary())
	}
	if md.Reason != ReasonGapped {
		t.Errorf("reason = %s, want %s", md.Reason, ReasonGapped)
	}

	// A non-blockDim step must fall back to the unanalyzable path.
	md = analyzeSrc(t, `
__global__ void oddstride(float* out, int n) {
    for (int col = threadIdx.x; col < n; col = col + 3) {
        out[blockIdx.x * n + col] = 1.0f;
    }
}`, "oddstride")
	if md.Distributable {
		t.Fatalf("odd stride accepted: %s", md.Summary())
	}
}

func TestAllRejectionsCollected(t *testing.T) {
	// Two independent violations: an atomic and an indirect write.
	md := analyzeSrc(t, `
__global__ void messy(int* idx, int* bins, float* out, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        atomicAdd(&bins[id % 7], 1);
        out[idx[id]] = 1.0f;
    }
}`, "messy")
	if md.Distributable {
		t.Fatal("messy kernel accepted")
	}
	if len(md.AllRejections) < 2 {
		t.Fatalf("AllRejections = %v, want both violations listed", md.AllRejections)
	}
	joined := strings.Join(md.AllRejections, "\n")
	for _, want := range []string{"overlap", "indirect"} {
		if !strings.Contains(joined, want) {
			t.Errorf("rejections %q missing %q", joined, want)
		}
	}
}

func mustModule(t *testing.T, src string) *kir.Module {
	t.Helper()
	mod, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

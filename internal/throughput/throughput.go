// Package throughput models cluster-wide batch throughput (Figure 12):
// given a data center's CPU/GPU node inventory, how many program instances
// per second can GPUs alone sustain versus GPUs plus the idle CPU nodes
// running CuCC-migrated binaries.
package throughput

import "fmt"

// Inventory is a data center's node counts.
type Inventory struct {
	Name        string
	CPUNodes    int
	GPUNodes    int
	GPUsPerNode int
}

// Lonestar6 is the TACC Lonestar6 inventory the paper cites: 560 CPU nodes
// (AMD EPYC, Thread-Focused class) and 16 GPU nodes with 3 A100s each.
func Lonestar6() Inventory {
	return Inventory{Name: "TACC Lonestar6", CPUNodes: 560, GPUNodes: 16, GPUsPerNode: 3}
}

// Frontera is the second cluster the paper cites (8368 CPU nodes, 90 GPU
// nodes with 4 Quadro RTX 5000 each).
func Frontera() Inventory {
	return Inventory{Name: "TACC Frontera", CPUNodes: 8368, GPUNodes: 90, GPUsPerNode: 4}
}

// ProgramPerf is the measured performance of one program.
type ProgramPerf struct {
	Name string
	// GPUSec is one instance's runtime on a single GPU.
	GPUSec float64
	// CPUSecByNodes maps CPU cluster size to one instance's runtime.
	CPUSecByNodes map[int]float64
}

// Result is the throughput comparison for one program.
type Result struct {
	Name string
	// GPUOnly is instances/second using all GPUs.
	GPUOnly float64
	// CPUOnly is instances/second using all CPU nodes at the best
	// partition size.
	CPUOnly float64
	// Combined is GPUs + CPUs.
	Combined float64
	// Ratio is Combined / GPUOnly (the Figure 12 bar).
	Ratio float64
	// BestClusterSize is the CPU sub-cluster size maximizing throughput.
	BestClusterSize int
}

// Evaluate computes the Figure 12 comparison for one program.  CPU
// throughput for a sub-cluster size k is (CPUNodes/k) concurrent instances
// each finishing in CPUSecByNodes[k]; the best k wins (strong scaling does
// not always pay at cluster level: 1/(k*t_k) decides).
func Evaluate(inv Inventory, p ProgramPerf) Result {
	res := Result{Name: p.Name}
	gpus := float64(inv.GPUNodes * inv.GPUsPerNode)
	if p.GPUSec > 0 {
		res.GPUOnly = gpus / p.GPUSec
	}
	best := 0.0
	for k, sec := range p.CPUSecByNodes {
		if k <= 0 || sec <= 0 || k > inv.CPUNodes {
			continue
		}
		instances := float64(inv.CPUNodes / k)
		tp := instances / sec
		if tp > best {
			best = tp
			res.BestClusterSize = k
		}
	}
	res.CPUOnly = best
	res.Combined = res.GPUOnly + res.CPUOnly
	if res.GPUOnly > 0 {
		res.Ratio = res.Combined / res.GPUOnly
	}
	return res
}

// EvaluateAll runs Evaluate over a program set and returns results plus the
// average ratio (arithmetic mean, as in the paper's "average 3.59x").
func EvaluateAll(inv Inventory, progs []ProgramPerf) ([]Result, float64) {
	out := make([]Result, 0, len(progs))
	sum := 0.0
	for _, p := range progs {
		r := Evaluate(inv, p)
		out = append(out, r)
		sum += r.Ratio
	}
	if len(out) == 0 {
		return out, 0
	}
	return out, sum / float64(len(out))
}

func (r Result) String() string {
	return fmt.Sprintf("%-15s GPU-only=%8.2f/s  +CPUs=%8.2f/s  ratio=%.2fx (best k=%d)",
		r.Name, r.GPUOnly, r.Combined, r.Ratio, r.BestClusterSize)
}

package throughput

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSubmitter is a deterministic in-process endpoint: it classifies jobs
// by tenant and reports a fixed synthetic latency, so the generator's
// bookkeeping can be checked exactly.
type fakeSubmitter struct {
	mu      sync.Mutex
	calls   int64
	byProg  map[string]int
	outcome func(tenant string) JobResult
}

func (f *fakeSubmitter) Submit(tenant, program string, deadline time.Duration) JobResult {
	atomic.AddInt64(&f.calls, 1)
	f.mu.Lock()
	if f.byProg == nil {
		f.byProg = make(map[string]int)
	}
	f.byProg[program]++
	f.mu.Unlock()
	return f.outcome(tenant)
}

func TestRunLoadClassifiesOutcomes(t *testing.T) {
	fake := &fakeSubmitter{outcome: func(tenant string) JobResult {
		switch tenant {
		case "good":
			return JobResult{OK: true, LatencySec: 0.010}
		case "busy":
			return JobResult{Rejected: true, LatencySec: 0.001}
		default:
			return JobResult{LatencySec: 0.002} // error
		}
	}}
	res := RunLoad(fake, LoadConfig{
		RatePerSec: 5000,
		Jobs:       90,
		Seed:       42,
		Mix: []TenantMix{
			{Tenant: "good", Program: "VecAdd", Share: 1},
			{Tenant: "busy", Program: "FIR", Share: 1},
			{Tenant: "bad", Program: "Scan", Share: 1},
		},
	})
	if got := atomic.LoadInt64(&fake.calls); got != 90 {
		t.Fatalf("submitter saw %d calls, want 90", got)
	}
	if res.Offered != 90 {
		t.Errorf("Offered = %d, want 90", res.Offered)
	}
	if res.Completed+res.Rejected+res.Errors != res.Offered {
		t.Errorf("outcomes %d+%d+%d do not sum to offered %d",
			res.Completed, res.Rejected, res.Errors, res.Offered)
	}
	// With equal shares and 90 seeded draws every class must appear.
	if res.Completed == 0 || res.Rejected == 0 || res.Errors == 0 {
		t.Errorf("expected all outcome classes, got ok=%d rejected=%d errors=%d",
			res.Completed, res.Rejected, res.Errors)
	}
	if want := float64(res.Rejected) / float64(res.Offered); res.RejectRate != want {
		t.Errorf("RejectRate = %v, want %v", res.RejectRate, want)
	}
	// Completed jobs all reported 10ms; the quantiles must agree.
	for name, got := range map[string]float64{
		"p50": res.P50Ms, "p99": res.P99Ms, "p999": res.P999Ms, "mean": res.MeanMs,
	} {
		if got < 9.999 || got > 10.001 {
			t.Errorf("%s = %vms, want 10ms (synthetic latency)", name, got)
		}
	}
	if res.QPS <= 0 {
		t.Errorf("QPS = %v, want > 0", res.QPS)
	}
}

func TestRunLoadMixIsSeededAndNormalized(t *testing.T) {
	draw := func(seed int64) map[string]int {
		fake := &fakeSubmitter{outcome: func(string) JobResult {
			return JobResult{OK: true, LatencySec: 0.001}
		}}
		RunLoad(fake, LoadConfig{
			RatePerSec: 10000,
			Jobs:       200,
			Seed:       seed,
			Mix: []TenantMix{
				// Shares sum to 4, not 1 — normalization must handle that.
				{Tenant: "a", Program: "VecAdd", Share: 3},
				{Tenant: "b", Program: "FIR", Share: 1},
			},
		})
		return fake.byProg
	}
	first := draw(7)
	if first["VecAdd"]+first["FIR"] != 200 {
		t.Fatalf("draws %v do not cover all 200 jobs", first)
	}
	// 3:1 shares over 200 draws: VecAdd should clearly dominate.
	if first["VecAdd"] <= first["FIR"] {
		t.Errorf("share weighting ignored: VecAdd=%d FIR=%d", first["VecAdd"], first["FIR"])
	}
	again := draw(7)
	if first["VecAdd"] != again["VecAdd"] || first["FIR"] != again["FIR"] {
		t.Errorf("same seed drew different mixes: %v vs %v", first, again)
	}
}

func TestRunLoadDefaultsMix(t *testing.T) {
	fake := &fakeSubmitter{outcome: func(string) JobResult {
		return JobResult{OK: true, LatencySec: 0.001}
	}}
	RunLoad(fake, LoadConfig{RatePerSec: 10000, Jobs: 10, Seed: 1})
	if fake.byProg["VecAdd"] != 10 {
		t.Errorf("empty mix should default to VecAdd, saw %v", fake.byProg)
	}
}

func TestSweepLoadPerRatePoints(t *testing.T) {
	fake := &fakeSubmitter{outcome: func(string) JobResult {
		return JobResult{OK: true, LatencySec: 0.001}
	}}
	rates := []float64{1000, 5000, 10000}
	out := SweepLoad(fake, LoadConfig{Jobs: 20, Seed: 3}, rates)
	if len(out) != len(rates) {
		t.Fatalf("SweepLoad returned %d points, want %d", len(out), len(rates))
	}
	for i, r := range out {
		if r.RatePerSec != rates[i] {
			t.Errorf("point %d rate = %v, want %v", i, r.RatePerSec, rates[i])
		}
		if r.Offered != 20 {
			t.Errorf("point %d offered = %d, want 20", i, r.Offered)
		}
	}
}

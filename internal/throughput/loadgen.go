package throughput

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"cucc/internal/metrics"
)

// This file extends the closed-form Figure-12 model into a measuring
// instrument: an open-loop load generator that offers jobs to a live
// serving endpoint at a target Poisson rate and reports what the service
// actually sustained (QPS, latency quantiles, reject rate).  Open loop is
// the load-testing discipline that exposes queueing collapse: arrivals are
// paced by the schedule, never by responses, so a saturated server sees its
// queue grow instead of the generator politely slowing down (the
// coordinated-omission trap of closed-loop drivers).

// JobResult is one offered job's outcome as the generator saw it.
type JobResult struct {
	// OK: the job completed successfully.
	OK bool
	// Rejected: admission rejected it (backpressure) — not an error.
	Rejected bool
	// LatencySec is submit-to-response wall time.
	LatencySec float64
}

// Submitter is the serving endpoint the generator drives.  Implementations
// must be safe for concurrent use — an open-loop generator keeps as many
// submissions in flight as the service's backlog demands.
type Submitter interface {
	Submit(tenant, program string, deadline time.Duration) JobResult
}

// TenantMix is one tenant's slice of the offered load.
type TenantMix struct {
	Tenant  string
	Program string
	// Share is the fraction of arrivals drawn for this tenant; shares are
	// normalized over the mix, so they need not sum to 1.
	Share float64
}

// LoadConfig parameterizes one open-loop run.
type LoadConfig struct {
	// RatePerSec is the target offered rate (Poisson arrivals).
	RatePerSec float64
	// Jobs is the total number of arrivals to offer.
	Jobs int
	// Mix is the tenant mix; empty means one "default" tenant submitting
	// "VecAdd".
	Mix []TenantMix
	// Seed makes the arrival schedule and tenant draws reproducible.
	Seed int64
	// Deadline is passed through to every submission (0 = server default).
	Deadline time.Duration
}

// LoadResult is one run's service-level measurement.
type LoadResult struct {
	RatePerSec float64
	Offered    int
	Completed  int
	Rejected   int
	Errors     int
	ElapsedSec float64
	// QPS is completed jobs per second of wall time.
	QPS float64
	// Latency quantiles over completed jobs, milliseconds (exact,
	// nearest-rank over the raw samples).
	P50Ms, P99Ms, P999Ms, MeanMs float64
	// RejectRate is Rejected / Offered.
	RejectRate float64
	// Latency is the log2 histogram of completed jobs' latencies in
	// seconds — the bucket-resolution form SLO accounting consumes
	// (metrics.HistValue.CountLE / P99).
	Latency metrics.HistValue
}

// RunLoad offers cfg.Jobs arrivals to s at the target Poisson rate and
// measures the outcome.  The arrival schedule is drawn up front from the
// seed (inter-arrival gaps ~ Exp(rate)) and paced against absolute wall
// times, so a slow service cannot stretch the schedule.
func RunLoad(s Submitter, cfg LoadConfig) LoadResult {
	mix := cfg.Mix
	if len(mix) == 0 {
		mix = []TenantMix{{Tenant: "default", Program: "VecAdd", Share: 1}}
	}
	var totalShare float64
	for _, m := range mix {
		totalShare += m.Share
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Draw the whole schedule first: arrival offsets and tenant picks are
	// then a pure function of the seed, independent of service timing.
	offsets := make([]time.Duration, cfg.Jobs)
	picks := make([]int, cfg.Jobs)
	var at float64
	for i := 0; i < cfg.Jobs; i++ {
		at += rng.ExpFloat64() / cfg.RatePerSec
		offsets[i] = time.Duration(at * float64(time.Second))
		u := rng.Float64() * totalShare
		for k, m := range mix {
			u -= m.Share
			if u < 0 || k == len(mix)-1 {
				picks[i] = k
				break
			}
		}
	}

	results := make([]JobResult, cfg.Jobs)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Jobs; i++ {
		if d := time.Until(start.Add(offsets[i])); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := mix[picks[i]]
			t0 := time.Now()
			r := s.Submit(m.Tenant, m.Program, cfg.Deadline)
			if r.LatencySec == 0 {
				r.LatencySec = time.Since(t0).Seconds()
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	out := LoadResult{RatePerSec: cfg.RatePerSec, Offered: cfg.Jobs, ElapsedSec: elapsed}
	latReg := metrics.New()
	latHist := latReg.Histogram("load.latency_seconds")
	var lats []float64
	var sum float64
	for _, r := range results {
		switch {
		case r.OK:
			out.Completed++
			lats = append(lats, r.LatencySec)
			sum += r.LatencySec
			latHist.Observe(r.LatencySec)
		case r.Rejected:
			out.Rejected++
		default:
			out.Errors++
		}
	}
	if elapsed > 0 {
		out.QPS = float64(out.Completed) / elapsed
	}
	if out.Offered > 0 {
		out.RejectRate = float64(out.Rejected) / float64(out.Offered)
	}
	if len(lats) > 0 {
		sort.Float64s(lats)
		out.P50Ms = metrics.PercentileSorted(lats, 0.50) * 1e3
		out.P99Ms = metrics.PercentileSorted(lats, 0.99) * 1e3
		out.P999Ms = metrics.PercentileSorted(lats, 0.999) * 1e3
		out.MeanMs = sum / float64(len(lats)) * 1e3
	}
	out.Latency = latReg.Snapshot().Histograms["load.latency_seconds"]
	return out
}

// SweepLoad runs RunLoad at each target rate (a saturation sweep); the
// rest of base is reused per point, with the seed offset per rate so the
// points draw distinct schedules.
func SweepLoad(s Submitter, base LoadConfig, rates []float64) []LoadResult {
	out := make([]LoadResult, 0, len(rates))
	for i, r := range rates {
		cfg := base
		cfg.RatePerSec = r
		cfg.Seed = base.Seed + int64(i)
		out = append(out, RunLoad(s, cfg))
	}
	return out
}

package throughput

import (
	"math"
	"strings"
	"testing"
)

func TestEvaluateBasic(t *testing.T) {
	inv := Lonestar6() // 560 CPU nodes, 48 GPUs
	p := ProgramPerf{
		Name:   "toy",
		GPUSec: 1.0,
		CPUSecByNodes: map[int]float64{
			1: 16.0,
			2: 8.5,
			4: 4.5,
		},
	}
	r := Evaluate(inv, p)
	if r.GPUOnly != 48 {
		t.Errorf("GPUOnly = %g, want 48", r.GPUOnly)
	}
	// Best k: k=1 -> 560/16 = 35/s; k=2 -> 280/8.5 = 32.9; k=4 -> 140/4.5 = 31.1.
	if r.BestClusterSize != 1 {
		t.Errorf("best k = %d, want 1", r.BestClusterSize)
	}
	if math.Abs(r.CPUOnly-35) > 1e-9 {
		t.Errorf("CPUOnly = %g, want 35", r.CPUOnly)
	}
	wantRatio := (48.0 + 35.0) / 48.0
	if math.Abs(r.Ratio-wantRatio) > 1e-9 {
		t.Errorf("Ratio = %g, want %g", r.Ratio, wantRatio)
	}
}

func TestBestClusterSizeTradeoff(t *testing.T) {
	// Superlinear-cost scaling: best size is the one maximizing
	// (nodes/k)/t_k, not the fastest t_k.
	inv := Inventory{CPUNodes: 64, GPUNodes: 1, GPUsPerNode: 1}
	p := ProgramPerf{
		Name:   "comm-bound",
		GPUSec: 1,
		CPUSecByNodes: map[int]float64{
			1:  10.0, // 64/10 = 6.4/s
			8:  2.0,  // 8/2 = 4/s
			64: 1.0,  // 1/1 = 1/s  (fastest single instance, worst throughput)
		},
	}
	r := Evaluate(inv, p)
	if r.BestClusterSize != 1 {
		t.Errorf("best k = %d, want 1 (throughput-optimal, not latency-optimal)", r.BestClusterSize)
	}
}

func TestEvaluateEdgeCases(t *testing.T) {
	inv := Lonestar6()
	// Oversized k and zero runtimes are skipped.
	p := ProgramPerf{
		Name:   "edge",
		GPUSec: 0,
		CPUSecByNodes: map[int]float64{
			1000: 1.0, // larger than the inventory
			0:    1.0,
			4:    0,
		},
	}
	r := Evaluate(inv, p)
	if r.GPUOnly != 0 || r.CPUOnly != 0 || r.Ratio != 0 {
		t.Errorf("edge case produced %+v", r)
	}
}

func TestEvaluateAllAverage(t *testing.T) {
	inv := Inventory{CPUNodes: 100, GPUNodes: 10, GPUsPerNode: 1}
	progs := []ProgramPerf{
		{Name: "a", GPUSec: 1, CPUSecByNodes: map[int]float64{1: 10}}, // ratio 2
		{Name: "b", GPUSec: 1, CPUSecByNodes: map[int]float64{1: 5}},  // ratio 3
	}
	rs, avg := EvaluateAll(inv, progs)
	if len(rs) != 2 {
		t.Fatalf("got %d results", len(rs))
	}
	if math.Abs(avg-2.5) > 1e-9 {
		t.Errorf("avg ratio = %g, want 2.5", avg)
	}
	if _, a := EvaluateAll(inv, nil); a != 0 {
		t.Error("empty set should average 0")
	}
}

func TestInventories(t *testing.T) {
	l := Lonestar6()
	if l.CPUNodes != 560 || l.GPUNodes != 16 {
		t.Errorf("Lonestar6 = %+v", l)
	}
	f := Frontera()
	if f.CPUNodes != 8368 || f.GPUNodes != 90 {
		t.Errorf("Frontera = %+v", f)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Name: "fir", GPUOnly: 10, Combined: 25, Ratio: 2.5, BestClusterSize: 4}
	if !strings.Contains(r.String(), "2.50x") {
		t.Errorf("format: %q", r.String())
	}
}

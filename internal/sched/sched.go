// Package sched is a Slurm-like partition/queue simulator reproducing the
// paper's motivation measurement (Figure 1): on a production cluster, CPU
// partitions have far shorter job waiting times than GPU partitions because
// GPU demand outstrips supply while CPUs sit comparatively idle.
//
// The paper measured one week of the Georgia Tech PACE cluster; that trace
// is not available, so this package generates synthetic traces from
// per-partition utilization levels and runs an exact FCFS c-server
// simulation to obtain waiting-time distributions with the same shape.
package sched

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Partition describes one Slurm partition.
type Partition struct {
	Name string
	// Nodes is the number of identical nodes.
	Nodes int
	// Utilization is offered load / capacity in (0, 1); GPU partitions
	// run near saturation.
	Utilization float64
	// MeanJobHours is the mean service time of one job.
	MeanJobHours float64
	// IsGPU marks GPU partitions for reporting.
	IsGPU bool
}

// PACEDefault models the paper's four CPU and four GPU partitions with
// utilizations reflecting Figure 1's imbalance.
func PACEDefault() []Partition {
	return []Partition{
		{Name: "cpu-small", Nodes: 192, Utilization: 0.90, MeanJobHours: 2.0},
		{Name: "cpu-medium", Nodes: 128, Utilization: 0.90, MeanJobHours: 3.0},
		{Name: "cpu-large", Nodes: 64, Utilization: 0.88, MeanJobHours: 4.0},
		{Name: "cpu-amd", Nodes: 32, Utilization: 0.85, MeanJobHours: 2.5},
		{Name: "gpu-v100", Nodes: 16, Utilization: 0.97, MeanJobHours: 5.0, IsGPU: true},
		{Name: "gpu-a100", Nodes: 12, Utilization: 0.98, MeanJobHours: 6.0, IsGPU: true},
		{Name: "gpu-rtx6000", Nodes: 20, Utilization: 0.96, MeanJobHours: 4.0, IsGPU: true},
		{Name: "gpu-h100", Nodes: 8, Utilization: 0.985, MeanJobHours: 6.0, IsGPU: true},
	}
}

// WaitStats summarizes a partition's waiting times in hours.
type WaitStats struct {
	Partition  string
	IsGPU      bool
	Jobs       int
	MeanWait   float64
	MedianWait float64
	P90Wait    float64
	MaxWait    float64
}

// serverHeap is a min-heap of node-free times.
type serverHeap []float64

func (h serverHeap) Len() int           { return len(h) }
func (h serverHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h serverHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *serverHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *serverHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Simulate runs `days` of synthetic arrivals through the partition with an
// exact FCFS multi-server queue and returns the waiting-time stats.
func Simulate(p Partition, days float64, seed int64) WaitStats {
	rng := rand.New(rand.NewSource(seed))
	horizon := days * 24 // hours
	// Offered load rho = lambda * meanService / servers.
	lambda := p.Utilization * float64(p.Nodes) / p.MeanJobHours

	servers := make(serverHeap, p.Nodes)
	heap.Init(&servers)

	var waits []float64
	now := 0.0
	for now < horizon {
		now += rng.ExpFloat64() / lambda
		// Service times: exponential with a heavy-ish cap, like batch jobs.
		service := rng.ExpFloat64() * p.MeanJobHours
		if service > 48 {
			service = 48
		}
		free := heap.Pop(&servers).(float64)
		start := math.Max(now, free)
		waits = append(waits, start-now)
		heap.Push(&servers, start+service)
	}
	return summarize(p, waits)
}

func summarize(p Partition, waits []float64) WaitStats {
	st := WaitStats{Partition: p.Name, IsGPU: p.IsGPU, Jobs: len(waits)}
	if len(waits) == 0 {
		return st
	}
	sort.Float64s(waits)
	total := 0.0
	for _, w := range waits {
		total += w
	}
	st.MeanWait = total / float64(len(waits))
	st.MedianWait = waits[len(waits)/2]
	st.P90Wait = waits[int(float64(len(waits))*0.9)]
	st.MaxWait = waits[len(waits)-1]
	return st
}

// SimulateAll runs every partition for the given number of days.
func SimulateAll(parts []Partition, days float64, seed int64) []WaitStats {
	out := make([]WaitStats, len(parts))
	for i, p := range parts {
		out[i] = Simulate(p, days, seed+int64(i))
	}
	return out
}

// Compare aggregates CPU-vs-GPU mean waits; the Figure 1 headline.
func Compare(stats []WaitStats) (cpuMean, gpuMean float64) {
	var cw, gw, cn, gn float64
	for _, s := range stats {
		if s.IsGPU {
			gw += s.MeanWait * float64(s.Jobs)
			gn += float64(s.Jobs)
		} else {
			cw += s.MeanWait * float64(s.Jobs)
			cn += float64(s.Jobs)
		}
	}
	if cn > 0 {
		cpuMean = cw / cn
	}
	if gn > 0 {
		gpuMean = gw / gn
	}
	return cpuMean, gpuMean
}

func (s WaitStats) String() string {
	kind := "CPU"
	if s.IsGPU {
		kind = "GPU"
	}
	return fmt.Sprintf("%-12s %s jobs=%-5d mean=%6.2fh median=%6.2fh p90=%6.2fh",
		s.Partition, kind, s.Jobs, s.MeanWait, s.MedianWait, s.P90Wait)
}

package sched

import (
	"strings"
	"testing"
)

func TestFigure1CPUvsGPUWaits(t *testing.T) {
	stats := SimulateAll(PACEDefault(), 7, 42)
	if len(stats) != 8 {
		t.Fatalf("got %d partitions, want 8", len(stats))
	}
	cpuMean, gpuMean := Compare(stats)
	if cpuMean <= 0 && gpuMean <= 0 {
		t.Fatal("no waiting recorded at all")
	}
	// The Figure 1 headline: GPU waits dominate CPU waits by a wide margin.
	if gpuMean < 5*cpuMean {
		t.Errorf("GPU mean wait %.2fh not >> CPU mean wait %.2fh", gpuMean, cpuMean)
	}
	// Every GPU partition individually waits longer than every CPU one.
	var maxCPU, minGPU float64
	minGPU = 1e18
	for _, s := range stats {
		if s.IsGPU {
			if s.MeanWait < minGPU {
				minGPU = s.MeanWait
			}
		} else if s.MeanWait > maxCPU {
			maxCPU = s.MeanWait
		}
	}
	if minGPU <= maxCPU {
		t.Errorf("some CPU partition (%.2fh) waits longer than a GPU partition (%.2fh)", maxCPU, minGPU)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	p := PACEDefault()[0]
	a := Simulate(p, 3, 7)
	b := Simulate(p, 3, 7)
	if a != b {
		t.Error("same seed produced different results")
	}
	c := Simulate(p, 3, 8)
	if a == c {
		t.Error("different seeds produced identical results")
	}
}

func TestLowUtilizationMeansNoWait(t *testing.T) {
	p := Partition{Name: "idle", Nodes: 100, Utilization: 0.05, MeanJobHours: 1}
	st := Simulate(p, 7, 1)
	if st.MedianWait != 0 {
		t.Errorf("nearly idle partition has median wait %.3fh", st.MedianWait)
	}
}

func TestWaitStatsOrdering(t *testing.T) {
	p := PACEDefault()[4] // a saturated GPU partition
	st := Simulate(p, 7, 3)
	if !(st.MedianWait <= st.P90Wait && st.P90Wait <= st.MaxWait) {
		t.Errorf("quantiles out of order: %+v", st)
	}
	if st.Jobs == 0 {
		t.Error("no jobs simulated")
	}
}

func TestStringFormat(t *testing.T) {
	st := Simulate(PACEDefault()[0], 1, 1)
	s := st.String()
	if !strings.Contains(s, "cpu-small") || !strings.Contains(s, "CPU") {
		t.Errorf("bad format: %q", s)
	}
}

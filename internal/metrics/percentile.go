package metrics

// Percentile helpers over snapshot histograms and raw sample slices.
//
// HistValue quantiles are bucket-resolution estimates with
// upper-bound-of-bucket semantics: the returned value is the inclusive
// upper bound of the log2 bucket holding the rank-th sample, so it never
// understates the true quantile but may overstate it by up to 2x (the
// bucket width).  They are the right tool for SLO accounting — "at least
// this fraction finished within the bound" stays conservative — and the
// wrong tool for tight latency comparison, where PercentileSorted over the
// raw samples is exact.

// P50 returns the median estimate: the upper bound of the bucket holding
// the ceil(0.50*count)-th sample.  0 when empty.
func (hv HistValue) P50() float64 { return hv.Quantile(0.50) }

// P90 returns the 90th-percentile estimate (upper-bound-of-bucket
// semantics; see P50).  0 when empty.
func (hv HistValue) P90() float64 { return hv.Quantile(0.90) }

// P99 returns the 99th-percentile estimate (upper-bound-of-bucket
// semantics; see P50).  0 when empty.
func (hv HistValue) P99() float64 { return hv.Quantile(0.99) }

// CountLE returns the number of samples certainly at or below bound: the
// summed count of every bucket whose upper bound is <= bound.  Samples in
// the bucket straddling the bound are NOT counted (they may exceed it), so
// the result is a conservative lower bound — an SLO attainment computed
// from it never overstates compliance.
func (hv HistValue) CountLE(bound float64) int64 {
	var n int64
	for _, b := range hv.Buckets {
		if b.UpperBound > bound {
			break
		}
		n += b.Count
	}
	return n
}

// PercentileSorted returns the exact q-quantile (0 <= q <= 1) of an
// ascending-sorted sample slice by truncated-index rank; 0 when empty.
// This is the exact counterpart to HistValue.Quantile for callers that
// kept the raw samples (the load generator's latency report).
func PercentileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

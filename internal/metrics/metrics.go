// Package metrics is the unified observability layer of the runtime: a
// stdlib-only registry of counters, gauges, and fixed-bucket log-scale
// histograms that every layer of the stack (transport, comm, core, vm)
// reports into.
//
// Two invariants govern the design, mirroring the worker-pool and engine
// work that preceded it:
//
//  1. Instrumentation never moves a simulated figure.  Metrics record what
//     happened; they are forbidden from feeding back into block partitioning,
//     modeled phase times, or collective cost.  A suites-level test runs the
//     evaluation programs with metrics fully enabled and with a nil registry
//     and asserts bitwise-identical node memories and identical Stats.
//
//  2. A disabled registry costs (near) zero.  Every method is nil-safe: a
//     nil *Registry hands out nil *Counter/*Gauge/*Histogram handles whose
//     methods are a nil check and a return, so instrumented hot paths need
//     no conditional plumbing and BenchmarkEngines stays within noise of the
//     uninstrumented runtime.
//
// Counters are lock-sharded (striped across padded cache lines, the shard
// picked from the goroutine's stack address) so concurrent writers — one
// goroutine per simulated rank, times the intra-node worker pool — do not
// serialize on one cache line.  The hot-path operations (Counter.Add,
// Gauge.Set, Histogram.Observe) are allocation-free; only handle creation
// (Registry.Counter et al.) takes the registry lock.
//
// Snapshots are deterministic: Snapshot sorts metric names, so Table and
// JSON renderings of equal registry states are byte-identical, and
// Snapshot.Delta supports per-launch (or per-figure) accounting windows.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// numShards is the stripe count of a Counter (power of two).
const numShards = 8

// shardIndex picks a stripe from the address of a stack variable: cheap,
// allocation-free, and distinct across concurrently running goroutines
// (their stacks live in different allocations).
func shardIndex() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b)) >> 10 & (numShards - 1))
}

// stripe is one padded counter shard; the padding keeps adjacent shards on
// separate cache lines so concurrent Adds do not false-share.
type stripe struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing, lock-sharded counter.
type Counter struct {
	shards [numShards]stripe
}

// Add increments the counter by n.  Nil-safe and allocation-free.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.shards[shardIndex()].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the summed count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is a last-value-wins float64 metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.  Nil-safe and allocation-free.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// numBuckets is the fixed histogram resolution: powers of two from 2^-30
// (~1ns when observing seconds) up to 2^33, clamped at the ends.
const numBuckets = 64

// bucketExpBias maps exponent -30 to bucket 0.
const bucketExpBias = 30

// bucketIndex returns the log2 bucket of v.
func bucketIndex(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	// v = frac * 2^exp with frac in [0.5, 1), so floor(log2 v) = exp-1.
	_, exp := math.Frexp(v)
	idx := exp - 1 + bucketExpBias
	if idx < 0 {
		return 0
	}
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// bucketUpperBound returns the inclusive upper bound of bucket i.
func bucketUpperBound(i int) float64 {
	return math.Ldexp(1, i-bucketExpBias+1)
}

// Histogram counts observations into fixed log-scale buckets and tracks
// their count and sum.  Observe is lock-free and allocation-free.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one sample.  Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Registry holds named metrics.  All methods are safe for concurrent use
// and nil-safe: every method on a nil *Registry is a no-op (returning nil
// handles), which is how "metrics disabled" is spelled throughout the
// runtime.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() float64
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		gaugeFns: map[string]func() float64{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the named counter; nil on a nil
// registry.  Callers on hot paths should resolve the handle once and reuse
// it.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers (or replaces) a gauge computed at snapshot time —
// the bridge for subsystems that keep their own counters (vm's compile
// cache, transport fault injection).  No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// Histogram returns (creating if needed) the named histogram; nil on a nil
// registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Bucket is one non-empty histogram bucket in a snapshot: Count samples at
// most UpperBound.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// HistValue is a histogram's state in a snapshot.
type HistValue struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry's values.  Maps marshal
// with sorted keys and bucket slices are in bound order, so the JSON (and
// Table) renderings of equal states are byte-identical.
type Snapshot struct {
	Counters   map[string]int64     `json:"counters"`
	Gauges     map[string]float64   `json:"gauges"`
	Histograms map[string]HistValue `json:"histograms"`
}

// Snapshot captures the registry's current values (a zero Snapshot on a
// nil registry).  GaugeFuncs are evaluated here, outside the registry lock.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistValue{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	fns := make(map[string]func() float64, len(r.gaugeFns))
	for n, fn := range r.gaugeFns {
		fns[n] = fn
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.RUnlock()
	for n, c := range counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		s.Gauges[n] = g.Value()
	}
	for n, fn := range fns {
		s.Gauges[n] = fn()
	}
	for n, h := range hists {
		hv := HistValue{Count: h.count.Load(), Sum: math.Float64frombits(h.sum.Load())}
		for i := 0; i < numBuckets; i++ {
			if c := h.buckets[i].Load(); c > 0 {
				hv.Buckets = append(hv.Buckets, Bucket{UpperBound: bucketUpperBound(i), Count: c})
			}
		}
		s.Histograms[n] = hv
	}
	return s
}

// Delta returns this snapshot minus prev: counters and histogram contents
// subtract (per-launch accounting windows), gauges keep their current
// values.  Metrics absent from prev pass through unchanged.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistValue, len(s.Histograms)),
	}
	for n, v := range s.Counters {
		d.Counters[n] = v - prev.Counters[n]
	}
	for n, v := range s.Gauges {
		d.Gauges[n] = v
	}
	for n, hv := range s.Histograms {
		ph := prev.Histograms[n]
		dv := HistValue{Count: hv.Count - ph.Count, Sum: hv.Sum - ph.Sum}
		prevByBound := make(map[float64]int64, len(ph.Buckets))
		for _, b := range ph.Buckets {
			prevByBound[b.UpperBound] = b.Count
		}
		for _, b := range hv.Buckets {
			if c := b.Count - prevByBound[b.UpperBound]; c > 0 {
				dv.Buckets = append(dv.Buckets, Bucket{UpperBound: b.UpperBound, Count: c})
			}
		}
		d.Histograms[n] = dv
	}
	return d
}

// bucketIndexForBound inverts bucketUpperBound: the index of the bucket
// whose inclusive upper bound covers le.  Used when folding serialized
// histogram buckets back into a live histogram (Merge).
func bucketIndexForBound(le float64) int {
	for i := 0; i < numBuckets; i++ {
		if bucketUpperBound(i) >= le {
			return i
		}
	}
	return numBuckets - 1
}

// merge folds a snapshot histogram's buckets, count, and sum into h.
// Nil-safe.
func (h *Histogram) merge(hv HistValue) {
	if h == nil || hv.Count == 0 {
		return
	}
	for _, b := range hv.Buckets {
		h.buckets[bucketIndexForBound(b.UpperBound)].Add(b.Count)
	}
	h.count.Add(hv.Count)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + hv.Sum)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
}

// Merge folds a snapshot's counters and histograms into the registry: the
// aggregation primitive of the serving layer, where every job runs against
// its own isolated registry and the server folds each job's delta into the
// server-level aggregate on completion.  Counters add; histogram buckets,
// counts, and sums add.  Gauges are deliberately NOT merged — last-value
// semantics do not sum — so server-level gauges stay owned by the server.
// Merging preserves the cross-check invariant: after merging N disjoint job
// snapshots, every aggregate counter equals the sum of the per-job values.
// No-op on a nil registry.
func (r *Registry) Merge(s Snapshot) {
	if r == nil {
		return
	}
	for n, v := range s.Counters {
		if v != 0 {
			r.Counter(n).Add(v)
		}
	}
	for n, hv := range s.Histograms {
		r.Histogram(n).merge(hv)
	}
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket upper
// bounds; 0 when the histogram is empty.
func (hv HistValue) Quantile(q float64) float64 {
	if hv.Count == 0 || len(hv.Buckets) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(hv.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range hv.Buckets {
		seen += b.Count
		if seen >= rank {
			return b.UpperBound
		}
	}
	return hv.Buckets[len(hv.Buckets)-1].UpperBound
}

// JSON renders the snapshot as indented, deterministic JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ParseSnapshot loads a snapshot serialized by JSON — the input side of
// offline snapshot comparison (cuccprof -compare).
func ParseSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("metrics: not a snapshot: %w", err)
	}
	if s.Counters == nil && s.Gauges == nil && s.Histograms == nil {
		return Snapshot{}, fmt.Errorf("metrics: JSON has none of counters/gauges/histograms")
	}
	return s, nil
}

// Table renders the snapshot as a deterministic text table: metrics sorted
// by name within kind, histograms summarized as count/sum/mean/p50/p99.
func (s Snapshot) Table() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "counter    %-42s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "gauge      %-42s %g\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		hv := s.Histograms[n]
		mean := 0.0
		if hv.Count > 0 {
			mean = hv.Sum / float64(hv.Count)
		}
		fmt.Fprintf(&b, "histogram  %-42s count=%d sum=%g mean=%g p50<=%g p99<=%g\n",
			n, hv.Count, hv.Sum, mean, hv.Quantile(0.50), hv.Quantile(0.99))
	}
	return b.String()
}

// defaultRegistry is the process-wide registry (nil = metrics disabled).
// CLI tools set it so clusters and sessions created deep inside experiment
// sweeps inherit the flag, matching core.DefaultWorkers and
// cluster.DefaultRecvTimeout.
var defaultRegistry atomic.Pointer[Registry]

// SetDefault installs the process-wide default registry (nil disables).
func SetDefault(r *Registry) { defaultRegistry.Store(r) }

// Default returns the process-wide default registry, nil when metrics are
// disabled.
func Default() *Registry { return defaultRegistry.Load() }

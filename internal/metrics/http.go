package metrics

import (
	"expvar"
	"net"
	"net/http"
)

// ServeHTTP implements http.Handler: the deterministic text table by
// default, the JSON snapshot with ?format=json.  A nil registry serves an
// empty snapshot.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	s := r.Snapshot()
	if req.URL.Query().Get("format") == "json" {
		data, err := s.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(data, '\n'))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(s.Table()))
}

// Publish exposes the registry under the given expvar name (snapshot
// evaluated per read, visible on /debug/vars).  Publishing the same name
// twice is a no-op instead of the expvar panic.
func (r *Registry) Publish(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Serve starts an HTTP listener exposing the registry on /metrics and the
// expvar variables on /debug/vars, returning the bound address and a stop
// function.  This is the opt-in live-inspection endpoint behind the CLI
// -metrics-http flag; errors after startup are ignored (the endpoint is
// diagnostic, never load-bearing).
func Serve(addr string, r *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	r.Publish("cucc")
	mux := http.NewServeMux()
	mux.Handle("/metrics", r)
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}

package metrics

import (
	"expvar"
	"net"
	"net/http"
)

// ServeHTTP implements http.Handler: the deterministic text table by
// default, the JSON snapshot with ?format=json.  A nil registry serves an
// empty snapshot.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	s := r.Snapshot()
	if req.URL.Query().Get("format") == "json" {
		data, err := s.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(data, '\n'))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(s.Table()))
}

// Publish exposes the registry under the given expvar name (snapshot
// evaluated per read, visible on /debug/vars).  Publishing the same name
// twice is a no-op instead of the expvar panic.
func (r *Registry) Publish(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Serve starts an HTTP listener exposing the registry on /metrics and the
// expvar variables on /debug/vars, returning the bound address, a stop
// function, and a channel surfacing any post-startup serve error.  This is
// the opt-in live-inspection endpoint behind the CLI -metrics-http flag;
// the endpoint is diagnostic, never load-bearing, so callers typically
// just log what the channel delivers.  The channel is buffered and closed
// when the serve loop exits; a clean stop delivers nothing (ErrServerClosed
// is filtered out).
func Serve(addr string, r *Registry) (string, func() error, <-chan error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, nil, err
	}
	r.Publish("cucc")
	mux := http.NewServeMux()
	mux.Handle("/metrics", r)
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() {
		defer close(errc)
		if serr := srv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
			errc <- serr
		}
	}()
	return ln.Addr().String(), srv.Close, errc, nil
}

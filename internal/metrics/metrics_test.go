package metrics

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"testing"
)

func TestCounterStripes(t *testing.T) {
	r := New()
	c := r.Counter("x")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	if r.Counter("x") != c {
		t.Error("Counter must return the same handle for one name")
	}
}

func TestGauge(t *testing.T) {
	r := New()
	g := r.Gauge("g")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %g, want 2.5", got)
	}
	r.GaugeFunc("fn", func() float64 { return 7 })
	if got := r.Snapshot().Gauges["fn"]; got != 7 {
		t.Errorf("gauge func = %g, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("h")
	for _, v := range []float64{1e-9, 0.001, 0.5, 1, 100, 0, -3, math.NaN()} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["h"]
	if s.Count != 8 {
		t.Errorf("count = %d, want 8", s.Count)
	}
	var bucketSum int64
	for i, b := range s.Buckets {
		bucketSum += b.Count
		if i > 0 && s.Buckets[i-1].UpperBound >= b.UpperBound {
			t.Error("buckets not in increasing bound order")
		}
	}
	if bucketSum != s.Count {
		t.Errorf("bucket counts sum to %d, want %d", bucketSum, s.Count)
	}
}

func TestBucketIndexMonotonic(t *testing.T) {
	prev := -1
	for exp := -40; exp < 44; exp++ {
		idx := bucketIndex(math.Ldexp(1.5, exp))
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at 2^%d: %d < %d", exp, idx, prev)
		}
		prev = idx
	}
	// Every value must land in a bucket whose bound covers it.
	for _, v := range []float64{1e-12, 3e-9, 0.02, 1, 7.5, 1e9} {
		i := bucketIndex(v)
		if ub := bucketUpperBound(i); v > ub && i != numBuckets-1 {
			t.Errorf("value %g above its bucket bound %g", v, ub)
		}
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := New()
	r.Counter("c").Add(10)
	r.Histogram("h").Observe(0.5)
	before := r.Snapshot()
	r.Counter("c").Add(5)
	r.Histogram("h").Observe(0.5)
	r.Histogram("h").Observe(2)
	d := r.Snapshot().Delta(before)
	if d.Counters["c"] != 5 {
		t.Errorf("counter delta = %d, want 5", d.Counters["c"])
	}
	hd := d.Histograms["h"]
	if hd.Count != 2 || hd.Sum != 2.5 {
		t.Errorf("histogram delta = %+v, want count 2 sum 2.5", hd)
	}
}

func TestDeterministicRenderings(t *testing.T) {
	build := func() *Registry {
		r := New()
		// Insert in different orders across the two registries.
		names := []string{"z.last", "a.first", "m.mid"}
		for _, n := range names {
			r.Counter(n).Add(3)
			r.Gauge("g." + n).Set(1.25)
			r.Histogram("h." + n).Observe(0.25)
		}
		return r
	}
	a, b := build(), build()
	aj, err := a.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Error("JSON renderings of equal registries differ")
	}
	if a.Snapshot().Table() != b.Snapshot().Table() {
		t.Error("Table renderings of equal registries differ")
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(1)
	r.Gauge("g").Set(1)
	r.GaugeFunc("f", func() float64 { return 1 })
	r.Histogram("h").Observe(1)
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
	if s.Table() != "" {
		t.Error("nil registry table not empty")
	}
}

// TestConcurrentWrites is the race-gate coverage: many goroutines hammering
// the same names through every metric kind plus concurrent snapshots.
func TestConcurrentWrites(t *testing.T) {
	r := New()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("hist")
			for i := 0; i < perWorker; i++ {
				c.Add(1)
				r.Counter(fmt.Sprintf("k%d", i%7)).Add(1)
				h.Observe(float64(i) * 1e-6)
				r.Gauge("g").Set(float64(w))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Errorf("shared counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Snapshot().Histograms["hist"].Count; got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("h")
	for i := 0; i < 100; i++ {
		h.Observe(0.001) // all in one bucket
	}
	hv := r.Snapshot().Histograms["h"]
	p50 := hv.Quantile(0.5)
	if p50 < 0.001 || p50 > 0.002 {
		t.Errorf("p50 = %g, want the 0.001 bucket bound", p50)
	}
}

func TestServeHTTP(t *testing.T) {
	r := New()
	r.Counter("served").Add(9)
	addr, stop, errc, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		stop()
		if serr, ok := <-errc; ok {
			t.Errorf("unexpected post-startup serve error: %v", serr)
		}
	}()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte("served")) {
		t.Errorf("metrics endpoint missing counter: %q", body)
	}
	resp, err = http.Get("http://" + addr + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte(`"served": 9`)) {
		t.Errorf("json endpoint missing counter: %q", body)
	}
}

// BenchmarkCounterAdd measures the enabled hot path (striped atomic add).
func BenchmarkCounterAdd(b *testing.B) {
	c := New().Counter("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

// BenchmarkCounterAddDisabled measures the disabled hot path (nil handle).
func BenchmarkCounterAddDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkHistogramObserve measures the histogram hot path.
func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i) * 1e-7)
	}
}

func TestMergeCounters(t *testing.T) {
	agg := New()
	agg.Counter("c").Add(1)
	job1, job2 := New(), New()
	job1.Counter("c").Add(10)
	job1.Counter("only1").Add(3)
	job2.Counter("c").Add(5)
	agg.Merge(job1.Snapshot())
	agg.Merge(job2.Snapshot())
	s := agg.Snapshot()
	if s.Counters["c"] != 16 {
		t.Errorf("merged counter = %d, want 16", s.Counters["c"])
	}
	if s.Counters["only1"] != 3 {
		t.Errorf("merged counter only1 = %d, want 3", s.Counters["only1"])
	}
}

func TestMergeHistograms(t *testing.T) {
	// Merging per-job snapshots must yield exactly the histogram a single
	// registry would have produced from the union of observations.
	obs1 := []float64{1e-9, 0.001, 0.5, 1}
	obs2 := []float64{0.002, 100, 7.5}
	want := New()
	for _, v := range append(append([]float64{}, obs1...), obs2...) {
		want.Histogram("h").Observe(v)
	}
	job1, job2, agg := New(), New(), New()
	for _, v := range obs1 {
		job1.Histogram("h").Observe(v)
	}
	for _, v := range obs2 {
		job2.Histogram("h").Observe(v)
	}
	agg.Merge(job1.Snapshot())
	agg.Merge(job2.Snapshot())

	got := agg.Snapshot().Histograms["h"]
	ref := want.Snapshot().Histograms["h"]
	// Sums may differ in the last ulps (different association order).
	if got.Count != ref.Count || math.Abs(got.Sum-ref.Sum) > 1e-9*math.Abs(ref.Sum) {
		t.Fatalf("merged hist count/sum = %d/%g, want %d/%g", got.Count, got.Sum, ref.Count, ref.Sum)
	}
	if len(got.Buckets) != len(ref.Buckets) {
		t.Fatalf("merged hist has %d buckets, want %d", len(got.Buckets), len(ref.Buckets))
	}
	for i := range got.Buckets {
		if got.Buckets[i] != ref.Buckets[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, got.Buckets[i], ref.Buckets[i])
		}
	}
}

func TestMergeSkipsGauges(t *testing.T) {
	agg := New()
	agg.Gauge("g").Set(1)
	job := New()
	job.Gauge("g").Set(99)
	agg.Merge(job.Snapshot())
	if got := agg.Snapshot().Gauges["g"]; got != 1 {
		t.Errorf("gauge after merge = %g, want 1 (gauges must not merge)", got)
	}
	// Nil registry: must not panic.
	var nilReg *Registry
	nilReg.Merge(job.Snapshot())
}

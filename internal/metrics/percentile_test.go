package metrics

import "testing"

// histOf builds a snapshot HistValue from raw observations.
func histOf(t *testing.T, samples ...float64) HistValue {
	t.Helper()
	r := New()
	h := r.Histogram("h")
	for _, v := range samples {
		h.Observe(v)
	}
	return r.Snapshot().Histograms["h"]
}

// TestPercentileHelpers pins the upper-bound-of-bucket semantics: ten
// samples land in the [0.25, 0.5] log2 bucket and one in (2, 4], so p50 and
// p90 report 0.5 (the fast bucket's upper bound) and p99 reports 4.
func TestPercentileHelpers(t *testing.T) {
	samples := make([]float64, 0, 11)
	for i := 0; i < 10; i++ {
		samples = append(samples, 0.4)
	}
	samples = append(samples, 3.0)
	hv := histOf(t, samples...)

	if got := hv.P50(); got != 0.5 {
		t.Errorf("P50 = %g, want 0.5", got)
	}
	if got := hv.P90(); got != 0.5 {
		t.Errorf("P90 = %g, want 0.5", got)
	}
	if got := hv.P99(); got != 4 {
		t.Errorf("P99 = %g, want 4", got)
	}
	var empty HistValue
	if got := empty.P99(); got != 0 {
		t.Errorf("empty P99 = %g, want 0", got)
	}
}

// TestCountLE pins the conservative counting: a bucket straddling the bound
// contributes nothing, so attainment computed from CountLE never overstates
// compliance.
func TestCountLE(t *testing.T) {
	samples := make([]float64, 0, 11)
	for i := 0; i < 10; i++ {
		samples = append(samples, 0.4) // bucket (0.25, 0.5]
	}
	samples = append(samples, 3.0) // bucket (2, 4]
	hv := histOf(t, samples...)

	for _, tc := range []struct {
		bound float64
		want  int64
	}{
		{0.49, 0},  // the fast bucket's upper bound exceeds the bound: not certain
		{0.5, 10},  // inclusive at the bucket bound
		{1, 10},    // the slow sample's bucket straddles 1
		{4, 11},    // everything certainly within 4
		{1000, 11}, // beyond every bucket
		{0, 0},
	} {
		if got := hv.CountLE(tc.bound); got != tc.want {
			t.Errorf("CountLE(%g) = %d, want %d", tc.bound, got, tc.want)
		}
	}
	var empty HistValue
	if got := empty.CountLE(1); got != 0 {
		t.Errorf("empty CountLE = %d, want 0", got)
	}
}

// TestPercentileSorted pins the truncated-index rank the load generator's
// exact quantiles use (the behavior formerly inlined in
// internal/throughput): idx = int(q * (n-1)).
func TestPercentileSorted(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0, 1},
		{0.5, 5},    // int(0.5*9) = 4
		{0.99, 9},   // int(0.99*9) = 8
		{0.999, 9},  // int(0.999*9) = 8
		{1, 10},
	} {
		if got := PercentileSorted(sorted, tc.q); got != tc.want {
			t.Errorf("PercentileSorted(q=%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if got := PercentileSorted(nil, 0.5); got != 0 {
		t.Errorf("empty slice: got %g, want 0", got)
	}
	if got := PercentileSorted([]float64{7}, 0.99); got != 7 {
		t.Errorf("single sample: got %g, want 7", got)
	}
}

package kir

import (
	"errors"
	"fmt"
)

// Validate checks structural invariants of a kernel: slot bounds, memory
// references resolving to declared parameters/shared arrays, expression
// types, and intrinsic arities.  The front-end guarantees these; Validate
// exists so that hand-built IR (tests, generators) is checked too.
func (k *Kernel) Validate() error {
	var errs []error
	check := func(cond bool, format string, args ...any) {
		if !cond {
			errs = append(errs, fmt.Errorf("kernel %s: "+format, append([]any{k.Name}, args...)...))
		}
	}
	checkMem := func(m MemRef) {
		switch m.Space {
		case Global:
			check(m.Param >= 0 && m.Param < len(k.Params), "memref %s: param index %d out of range", m, m.Param)
			if m.Param >= 0 && m.Param < len(k.Params) {
				check(k.Params[m.Param].Pointer, "memref %s: param %q is not a pointer", m, k.Params[m.Param].Name)
			}
		case Shared:
			check(k.SharedArrayByName(m.Name) != nil, "memref %s: unknown shared array", m)
		}
	}
	var checkExpr func(e Expr)
	checkExpr = func(e Expr) {
		switch e := e.(type) {
		case nil:
			errs = append(errs, fmt.Errorf("kernel %s: nil expression", k.Name))
		case *VarRef:
			check(e.Slot >= 0 && e.Slot < k.NumSlots, "var %q: slot %d out of range [0,%d)", e.Name, e.Slot, k.NumSlots)
			check(e.T != Invalid, "var %q: invalid type", e.Name)
		case *Binary:
			checkExpr(e.L)
			checkExpr(e.R)
			check(e.T != Invalid, "binary %s: invalid type", e.Op)
		case *Unary:
			checkExpr(e.X)
		case *Load:
			checkMem(e.Mem)
			checkExpr(e.Index)
			check(e.Index.Type().IsInteger(), "load %s: non-integer index", e.Mem)
		case *Call:
			check(len(e.Args) == e.Fn.NumArgs(), "call %s: got %d args, want %d", e.Fn, len(e.Args), e.Fn.NumArgs())
			for _, a := range e.Args {
				checkExpr(a)
			}
		case *Cast:
			checkExpr(e.X)
			check(e.To != Invalid, "cast to invalid type")
		case *Select:
			checkExpr(e.Cond)
			checkExpr(e.A)
			checkExpr(e.B)
		case *IntLit, *FloatLit, *BuiltinRef:
		default:
			errs = append(errs, fmt.Errorf("kernel %s: unknown expression %T", k.Name, e))
		}
	}
	var checkBlock func(b Block, inLoop bool)
	checkBlock = func(b Block, inLoop bool) {
		for _, s := range b {
			switch s := s.(type) {
			case *Decl:
				check(s.Slot >= len(k.Params) && s.Slot < k.NumSlots, "decl %q: slot %d outside local range [%d,%d)", s.Name, s.Slot, len(k.Params), k.NumSlots)
				if s.Init != nil {
					checkExpr(s.Init)
				}
			case *Assign:
				check(s.Slot >= 0 && s.Slot < k.NumSlots, "assign %q: slot %d out of range", s.Name, s.Slot)
				checkExpr(s.Value)
			case *Store:
				checkMem(s.Mem)
				checkExpr(s.Index)
				checkExpr(s.Value)
				check(s.Index.Type().IsInteger(), "store %s: non-integer index", s.Mem)
			case *AtomicRMW:
				checkMem(s.Mem)
				checkExpr(s.Index)
				checkExpr(s.Value)
			case *If:
				checkExpr(s.Cond)
				check(s.Cond.Type() == Bool || s.Cond.Type().IsInteger(), "if condition has type %s", s.Cond.Type())
				checkBlock(s.Then, inLoop)
				checkBlock(s.Else, inLoop)
			case *For:
				if s.Init != nil {
					checkBlock(Block{s.Init}, inLoop)
				}
				if s.Cond != nil {
					checkExpr(s.Cond)
				}
				if s.Post != nil {
					checkBlock(Block{s.Post}, true)
				}
				checkBlock(s.Body, true)
			case *While:
				checkExpr(s.Cond)
				checkBlock(s.Body, true)
			case *BreakStmt:
				check(inLoop, "break outside loop")
			case *ContinueStmt:
				check(inLoop, "continue outside loop")
			case *Sync, *Return:
			default:
				errs = append(errs, fmt.Errorf("kernel %s: unknown statement %T", k.Name, s))
			}
		}
	}
	check(k.Name != "", "empty kernel name")
	check(k.NumSlots >= len(k.Params), "NumSlots %d < %d params", k.NumSlots, len(k.Params))
	seen := map[string]bool{}
	for _, p := range k.Params {
		check(!seen[p.Name], "duplicate parameter %q", p.Name)
		seen[p.Name] = true
	}
	for _, sh := range k.Shared {
		check(sh.Len > 0, "shared array %q has non-positive length", sh.Name)
		check(!seen[sh.Name], "shared array %q shadows a parameter", sh.Name)
	}
	checkBlock(k.Body, false)
	return errors.Join(errs...)
}

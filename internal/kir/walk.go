package kir

// WalkStmts calls fn for every statement in the block, recursively,
// in source order.
func WalkStmts(b Block, fn func(Stmt)) {
	for _, s := range b {
		fn(s)
		switch s := s.(type) {
		case *If:
			WalkStmts(s.Then, fn)
			WalkStmts(s.Else, fn)
		case *For:
			if s.Init != nil {
				fn(s.Init)
			}
			WalkStmts(s.Body, fn)
			if s.Post != nil {
				fn(s.Post)
			}
		case *While:
			WalkStmts(s.Body, fn)
		}
	}
}

// WalkExprs calls fn for every expression appearing in the block,
// recursively (including sub-expressions).
func WalkExprs(b Block, fn func(Expr)) {
	var visitExpr func(e Expr)
	visitExpr = func(e Expr) {
		if e == nil {
			return
		}
		fn(e)
		switch e := e.(type) {
		case *Binary:
			visitExpr(e.L)
			visitExpr(e.R)
		case *Unary:
			visitExpr(e.X)
		case *Load:
			visitExpr(e.Index)
		case *Call:
			for _, a := range e.Args {
				visitExpr(a)
			}
		case *Cast:
			visitExpr(e.X)
		case *Select:
			visitExpr(e.Cond)
			visitExpr(e.A)
			visitExpr(e.B)
		}
	}
	WalkStmts(b, func(s Stmt) {
		switch s := s.(type) {
		case *Decl:
			visitExpr(s.Init)
		case *Assign:
			visitExpr(s.Value)
		case *Store:
			visitExpr(s.Index)
			visitExpr(s.Value)
		case *AtomicRMW:
			visitExpr(s.Index)
			visitExpr(s.Value)
		case *If:
			visitExpr(s.Cond)
		case *For:
			visitExpr(s.Cond)
		case *While:
			visitExpr(s.Cond)
		}
	})
}

package kir

import "fmt"

// Param describes one kernel parameter.
type Param struct {
	Name    string
	Elem    ScalarType
	Pointer bool
}

func (p Param) String() string {
	if p.Pointer {
		return fmt.Sprintf("%s* %s", p.Elem, p.Name)
	}
	return fmt.Sprintf("%s %s", p.Elem, p.Name)
}

// SharedArray is a __shared__ declaration.  Multi-dimensional arrays are
// stored flattened row-major; Dims keeps the declared shape so indexing
// like tile[y][x] can be lowered to y*Dims[1]+x.
type SharedArray struct {
	Name string
	Elem ScalarType
	Len  int
	Dims []int
}

// Kernel is one __global__ function.
type Kernel struct {
	Name   string
	Params []Param
	Shared []SharedArray
	Body   Block
	// NumSlots is the total number of variable slots (params + locals).
	NumSlots int
	// Source is the original DSL text, retained for diagnostics.
	Source string
}

// Module is a set of kernels compiled from one source unit, the analogue of
// the GPU LLVM module in the paper's pipeline.
type Module struct {
	Kernels []*Kernel
}

// Kernel returns the kernel with the given name, or nil.
func (m *Module) Kernel(name string) *Kernel {
	for _, k := range m.Kernels {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// ParamIndex returns the index of the named parameter, or -1.
func (k *Kernel) ParamIndex(name string) int {
	for i, p := range k.Params {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// SharedArrayByName returns the named shared array, or nil.
func (k *Kernel) SharedArrayByName(name string) *SharedArray {
	for i := range k.Shared {
		if k.Shared[i].Name == name {
			return &k.Shared[i]
		}
	}
	return nil
}

// HasSync reports whether the kernel contains a __syncthreads() barrier,
// which forces the interpreter onto the phased thread execution path.
func (k *Kernel) HasSync() bool {
	found := false
	WalkStmts(k.Body, func(s Stmt) {
		if _, ok := s.(*Sync); ok {
			found = true
		}
	})
	return found
}

// GlobalStores returns every store/atomic to global memory in the kernel,
// paired with the guard/loop context needed by the analysis.
func (k *Kernel) GlobalStores() []Stmt {
	var out []Stmt
	WalkStmts(k.Body, func(s Stmt) {
		switch s := s.(type) {
		case *Store:
			if s.Mem.Space == Global {
				out = append(out, s)
			}
		case *AtomicRMW:
			if s.Mem.Space == Global {
				out = append(out, s)
			}
		}
	})
	return out
}

package kir

// Stmt is a kernel statement.
type Stmt interface{ stmtNode() }

// Block is a statement list.
type Block []Stmt

// Decl declares a local variable (with optional initializer) bound to Slot.
type Decl struct {
	Name string
	Slot int
	T    ScalarType
	Init Expr // may be nil
}

func (*Decl) stmtNode() {}

// Assign writes a local variable slot.
type Assign struct {
	Name  string
	Slot  int
	Value Expr
}

func (*Assign) stmtNode() {}

// Store writes one element to global or shared memory.
type Store struct {
	Mem   MemRef
	Index Expr
	Value Expr
}

func (*Store) stmtNode() {}

// AtomicOp enumerates atomic read-modify-write operations.
type AtomicOp uint8

const (
	// AtomicAdd corresponds to CUDA atomicAdd.
	AtomicAdd AtomicOp = iota
	// AtomicMax corresponds to CUDA atomicMax (integer).
	AtomicMax
)

func (op AtomicOp) String() string {
	if op == AtomicAdd {
		return "atomicAdd"
	}
	return "atomicMax"
}

// AtomicRMW performs an atomic read-modify-write on memory.  As in the
// paper, atomics to global memory make a kernel non-distributable (blocks'
// write sets overlap).
type AtomicRMW struct {
	Op    AtomicOp
	Mem   MemRef
	Index Expr
	Value Expr
}

func (*AtomicRMW) stmtNode() {}

// If is a conditional.
type If struct {
	Cond Expr
	Then Block
	Else Block // may be nil
}

func (*If) stmtNode() {}

// For is a C-style for loop.  Init and Post may be nil.
type For struct {
	Init Stmt
	Cond Expr
	Post Stmt
	Body Block
}

func (*For) stmtNode() {}

// While is a while loop.
type While struct {
	Cond Expr
	Body Block
}

func (*While) stmtNode() {}

// Sync is a __syncthreads() barrier across the threads of one block.
type Sync struct{}

func (*Sync) stmtNode() {}

// Return exits the kernel for the executing thread.
type Return struct{}

func (*Return) stmtNode() {}

// BreakStmt exits the innermost loop.
type BreakStmt struct{}

func (*BreakStmt) stmtNode() {}

// ContinueStmt skips to the next iteration of the innermost loop.
type ContinueStmt struct{}

func (*ContinueStmt) stmtNode() {}

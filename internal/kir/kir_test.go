package kir

import (
	"strings"
	"testing"
)

// buildVecCopy hand-constructs the paper's Listing 1 kernel in IR, the way
// a non-parser front-end (or test generator) would.
func buildVecCopy() *Kernel {
	// int id = blockDim.x * blockIdx.x + threadIdx.x;
	gid := Bin(Add,
		Bin(Mul, &BuiltinRef{B: BlockDim, Axis: X}, &BuiltinRef{B: BlockIdx, Axis: X}),
		&BuiltinRef{B: ThreadIdx, Axis: X})
	idRef := &VarRef{Name: "id", Slot: 3, T: I32}
	return &Kernel{
		Name: "vec_copy",
		Params: []Param{
			{Name: "src", Elem: U8, Pointer: true},
			{Name: "dest", Elem: U8, Pointer: true},
			{Name: "n", Elem: I32},
		},
		NumSlots: 4,
		Body: Block{
			&Decl{Name: "id", Slot: 3, T: I32, Init: gid},
			&If{
				Cond: Bin(Lt, idRef, &VarRef{Name: "n", Slot: 2, T: I32}),
				Then: Block{
					&Store{
						Mem:   MemRef{Space: Global, Param: 1, Name: "dest"},
						Index: idRef,
						Value: &Load{Mem: MemRef{Space: Global, Param: 0, Name: "src"}, Index: idRef, T: U8},
					},
				},
			},
		},
	}
}

func TestHandBuiltKernelValidates(t *testing.T) {
	k := buildVecCopy()
	if err := k.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Kernel)
		want   string
	}{
		{"bad slot", func(k *Kernel) { k.Body[0].(*Decl).Slot = 99 }, "slot"},
		{"bad param index", func(k *Kernel) {
			st := k.Body[1].(*If).Then[0].(*Store)
			st.Mem.Param = 7
		}, "out of range"},
		{"store through scalar", func(k *Kernel) {
			st := k.Body[1].(*If).Then[0].(*Store)
			st.Mem.Param = 2 // n is not a pointer
		}, "not a pointer"},
		{"duplicate param", func(k *Kernel) { k.Params[1].Name = "src" }, "duplicate"},
		{"empty name", func(k *Kernel) { k.Name = "" }, "empty"},
		{"break outside loop", func(k *Kernel) { k.Body = append(k.Body, &BreakStmt{}) }, "break"},
		{"unknown shared", func(k *Kernel) {
			k.Body = append(k.Body, &Store{Mem: MemRef{Space: Shared, Name: "ghost"}, Index: Int(0), Value: Int(1)})
		}, "unknown shared"},
		{"float index", func(k *Kernel) {
			st := k.Body[1].(*If).Then[0].(*Store)
			st.Index = Float(1.5)
		}, "non-integer index"},
		{"bad intrinsic arity", func(k *Kernel) {
			k.Body = append(k.Body, &Assign{Name: "id", Slot: 3,
				Value: &Call{Fn: Fmin, Args: []Expr{Float(1)}, T: F32}})
		}, "args"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			k := buildVecCopy()
			c.mutate(k)
			err := k.Validate()
			if err == nil {
				t.Fatal("Validate accepted invalid IR")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestPrinterRoundTrip(t *testing.T) {
	k := buildVecCopy()
	s := k.String()
	for _, want := range []string{
		"__global__ void vec_copy(char* src, char* dest, int n)",
		"if (", "dest[", "src[", "blockDim.x", "threadIdx.x",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("printed kernel missing %q:\n%s", want, s)
		}
	}
}

func TestWalkStmtsOrder(t *testing.T) {
	k := buildVecCopy()
	var kinds []string
	WalkStmts(k.Body, func(s Stmt) {
		switch s.(type) {
		case *Decl:
			kinds = append(kinds, "decl")
		case *If:
			kinds = append(kinds, "if")
		case *Store:
			kinds = append(kinds, "store")
		}
	})
	if strings.Join(kinds, ",") != "decl,if,store" {
		t.Errorf("walk order = %v", kinds)
	}
}

func TestWalkExprsFindsAll(t *testing.T) {
	k := buildVecCopy()
	loads, builtins := 0, 0
	WalkExprs(k.Body, func(e Expr) {
		switch e.(type) {
		case *Load:
			loads++
		case *BuiltinRef:
			builtins++
		}
	})
	if loads != 1 {
		t.Errorf("loads = %d, want 1", loads)
	}
	if builtins != 3 {
		t.Errorf("builtins = %d, want 3", builtins)
	}
}

func TestGlobalStores(t *testing.T) {
	k := buildVecCopy()
	if got := len(k.GlobalStores()); got != 1 {
		t.Errorf("GlobalStores = %d, want 1", got)
	}
	// Shared stores do not count.
	k.Shared = append(k.Shared, SharedArray{Name: "buf", Elem: F32, Len: 8})
	k.Body = append(k.Body, &Store{Mem: MemRef{Space: Shared, Name: "buf"}, Index: Int(0), Value: Float(1)})
	if got := len(k.GlobalStores()); got != 1 {
		t.Errorf("GlobalStores with shared = %d, want 1", got)
	}
}

func TestScalarTypeProperties(t *testing.T) {
	cases := []struct {
		t       ScalarType
		size    int
		numeric bool
		integer bool
	}{
		{I32, 4, true, true},
		{F32, 4, true, false},
		{U8, 1, true, true},
		{Bool, 1, false, false},
		{Invalid, 0, false, false},
	}
	for _, c := range cases {
		if c.t.Size() != c.size {
			t.Errorf("%s.Size() = %d, want %d", c.t, c.t.Size(), c.size)
		}
		if c.t.IsNumeric() != c.numeric {
			t.Errorf("%s.IsNumeric() = %v", c.t, c.t.IsNumeric())
		}
		if c.t.IsInteger() != c.integer {
			t.Errorf("%s.IsInteger() = %v", c.t, c.t.IsInteger())
		}
	}
}

func TestBinTypeInference(t *testing.T) {
	if got := Bin(Add, Int(1), Float(2)).Type(); got != F32 {
		t.Errorf("int + float = %s, want float", got)
	}
	if got := Bin(Lt, Int(1), Int(2)).Type(); got != Bool {
		t.Errorf("int < int = %s, want bool", got)
	}
	if got := Bin(Mul, Int(1), Int(2)).Type(); got != I32 {
		t.Errorf("int * int = %s, want int", got)
	}
}

func TestModuleLookup(t *testing.T) {
	m := &Module{Kernels: []*Kernel{buildVecCopy()}}
	if m.Kernel("vec_copy") == nil {
		t.Error("lookup failed")
	}
	if m.Kernel("nope") != nil {
		t.Error("phantom kernel found")
	}
	k := m.Kernel("vec_copy")
	if k.ParamIndex("dest") != 1 || k.ParamIndex("ghost") != -1 {
		t.Error("ParamIndex wrong")
	}
	if k.HasSync() {
		t.Error("HasSync on kernel without barriers")
	}
	k.Body = append(k.Body, &Sync{})
	if !k.HasSync() {
		t.Error("HasSync missed the barrier")
	}
}

func TestIntrinsicNames(t *testing.T) {
	for fn := Sqrt; fn <= AbsI; fn++ {
		if fn.String() == "" {
			t.Errorf("intrinsic %d has no name", fn)
		}
		if fn.NumArgs() < 1 || fn.NumArgs() > 2 {
			t.Errorf("%s arity %d", fn, fn.NumArgs())
		}
	}
}

// Package kir defines the CuCC kernel intermediate representation.
//
// The paper applies its analysis and transformations at the LLVM IR level;
// this package is the stand-in: a typed, structured IR for GPU kernels that
// the front-end (internal/lang) lowers to, the Allgather-distributable
// analysis (internal/analysis) inspects, and the reference interpreter
// (internal/interp) executes.
package kir

import "fmt"

// ScalarType enumerates the scalar types supported by kernels.
type ScalarType uint8

const (
	Invalid ScalarType = iota
	// I32 is a 32-bit signed integer (CUDA "int").
	I32
	// F32 is a 32-bit float (CUDA "float").
	F32
	// U8 is an unsigned byte (CUDA "char"/"unsigned char").
	U8
	// Bool is the result type of comparisons and logical operators.
	Bool
)

// Size returns the in-memory size of the type in bytes.
func (t ScalarType) Size() int {
	switch t {
	case I32, F32:
		return 4
	case U8, Bool:
		return 1
	}
	return 0
}

// IsNumeric reports whether the type participates in arithmetic.
func (t ScalarType) IsNumeric() bool { return t == I32 || t == F32 || t == U8 }

// IsInteger reports whether the type is an integer type.
func (t ScalarType) IsInteger() bool { return t == I32 || t == U8 }

func (t ScalarType) String() string {
	switch t {
	case I32:
		return "int"
	case F32:
		return "float"
	case U8:
		return "char"
	case Bool:
		return "bool"
	}
	return "invalid"
}

// Axis identifies a CUDA dimension (.x or .y).  The front-end and runtime
// support two grid/block dimensions, which covers every kernel in the
// evaluation suites.
type Axis uint8

const (
	// X is the fastest-varying dimension.
	X Axis = iota
	// Y is the second dimension.
	Y
)

func (a Axis) String() string {
	if a == X {
		return "x"
	}
	return "y"
}

// Builtin identifies a CUDA special register.
type Builtin uint8

const (
	ThreadIdx Builtin = iota
	BlockIdx
	BlockDim
	GridDim
)

func (b Builtin) String() string {
	switch b {
	case ThreadIdx:
		return "threadIdx"
	case BlockIdx:
		return "blockIdx"
	case BlockDim:
		return "blockDim"
	}
	return "gridDim"
}

// MemSpace distinguishes the address spaces a memory operation can target.
type MemSpace uint8

const (
	// Global memory is visible to all blocks and is the only space that
	// requires cross-node communication after migration.
	Global MemSpace = iota
	// Shared memory is per-block (__shared__); after migration it is
	// private to the CPU node executing the block.
	Shared
)

func (s MemSpace) String() string {
	if s == Global {
		return "global"
	}
	return "shared"
}

// MemRef names a memory object: either a pointer parameter (global) or a
// named __shared__ array.
type MemRef struct {
	Space MemSpace
	// Param is the kernel parameter index for Space == Global.
	Param int
	// Name is the array name for Space == Shared (and mirrors the
	// parameter name for Global, for diagnostics).
	Name string
}

func (m MemRef) String() string {
	return fmt.Sprintf("%s:%s", m.Space, m.Name)
}

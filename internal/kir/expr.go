package kir

import "fmt"

// Expr is a side-effect-free kernel expression.  Every expression carries
// its resolved scalar type.
type Expr interface {
	Type() ScalarType
	exprNode()
}

// BinOp enumerates binary operators.
type BinOp uint8

const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Rem
	Lt
	Le
	Gt
	Ge
	Eq
	Ne
	LAnd
	LOr
	BAnd
	BOr
	BXor
	Shl
	Shr
)

var binOpNames = [...]string{
	Add: "+", Sub: "-", Mul: "*", Div: "/", Rem: "%",
	Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Eq: "==", Ne: "!=",
	LAnd: "&&", LOr: "||", BAnd: "&", BOr: "|", BXor: "^", Shl: "<<", Shr: ">>",
}

func (op BinOp) String() string { return binOpNames[op] }

// IsComparison reports whether the operator yields a Bool.
func (op BinOp) IsComparison() bool { return op >= Lt && op <= Ne }

// IsLogical reports whether the operator is && or ||.
func (op BinOp) IsLogical() bool { return op == LAnd || op == LOr }

// UnOp enumerates unary operators.
type UnOp uint8

const (
	Neg UnOp = iota
	Not
)

func (op UnOp) String() string {
	if op == Neg {
		return "-"
	}
	return "!"
}

// Intrinsic enumerates built-in math functions.
type Intrinsic uint8

const (
	Sqrt Intrinsic = iota
	Exp
	Log
	Fabs
	Fmin
	Fmax
	Pow
	Sin
	Cos
	Tanh
	MinI
	MaxI
	AbsI
)

var intrinsicNames = [...]string{
	Sqrt: "sqrtf", Exp: "expf", Log: "logf", Fabs: "fabsf",
	Fmin: "fminf", Fmax: "fmaxf", Pow: "powf", Sin: "sinf", Cos: "cosf",
	Tanh: "tanhf", MinI: "min", MaxI: "max", AbsI: "abs",
}

func (i Intrinsic) String() string { return intrinsicNames[i] }

// NumArgs returns the arity of the intrinsic.
func (i Intrinsic) NumArgs() int {
	switch i {
	case Fmin, Fmax, Pow, MinI, MaxI:
		return 2
	}
	return 1
}

// IntLit is an integer literal.
type IntLit struct{ Val int64 }

func (*IntLit) Type() ScalarType { return I32 }
func (*IntLit) exprNode()        {}

// FloatLit is a floating-point literal.
type FloatLit struct{ Val float64 }

func (*FloatLit) Type() ScalarType { return F32 }
func (*FloatLit) exprNode()        {}

// VarRef reads a local variable or scalar parameter by slot.  Slots are
// assigned by the front-end: parameters occupy slots [0, len(Params)) and
// locals follow in declaration order.
type VarRef struct {
	Name string
	Slot int
	T    ScalarType
}

func (v *VarRef) Type() ScalarType { return v.T }
func (*VarRef) exprNode()          {}

// BuiltinRef reads a CUDA special register such as threadIdx.x.
type BuiltinRef struct {
	B    Builtin
	Axis Axis
}

func (*BuiltinRef) Type() ScalarType { return I32 }
func (*BuiltinRef) exprNode()        {}

// Binary applies a binary operator.
type Binary struct {
	Op   BinOp
	L, R Expr
	T    ScalarType
}

func (b *Binary) Type() ScalarType { return b.T }
func (*Binary) exprNode()          {}

// Unary applies a unary operator.
type Unary struct {
	Op UnOp
	X  Expr
	T  ScalarType
}

func (u *Unary) Type() ScalarType { return u.T }
func (*Unary) exprNode()          {}

// Load reads one element from global or shared memory.
type Load struct {
	Mem   MemRef
	Index Expr
	T     ScalarType
}

func (l *Load) Type() ScalarType { return l.T }
func (*Load) exprNode()          {}

// Call invokes a math intrinsic.
type Call struct {
	Fn   Intrinsic
	Args []Expr
	T    ScalarType
}

func (c *Call) Type() ScalarType { return c.T }
func (*Call) exprNode()          {}

// Cast converts between scalar types.
type Cast struct {
	To ScalarType
	X  Expr
}

func (c *Cast) Type() ScalarType { return c.To }
func (*Cast) exprNode()          {}

// Select is the ternary operator cond ? a : b.
type Select struct {
	Cond Expr
	A, B Expr
	T    ScalarType
}

func (s *Select) Type() ScalarType { return s.T }
func (*Select) exprNode()          {}

// Int returns an integer literal expression.
func Int(v int64) *IntLit { return &IntLit{Val: v} }

// Float returns a float literal expression.
func Float(v float64) *FloatLit { return &FloatLit{Val: v} }

// Bin builds a binary expression, deriving the result type from the
// operator and operand types (ints promote to float when mixed).
func Bin(op BinOp, l, r Expr) *Binary {
	t := l.Type()
	if r.Type() == F32 || t == F32 {
		t = F32
	} else if t == U8 && r.Type() == I32 || t == I32 {
		t = I32
	}
	if op.IsComparison() || op.IsLogical() {
		t = Bool
	}
	return &Binary{Op: op, L: l, R: r, T: t}
}

func exprString(e Expr) string {
	switch e := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", e.Val)
	case *FloatLit:
		return fmt.Sprintf("%g", e.Val)
	case *VarRef:
		return e.Name
	case *BuiltinRef:
		return fmt.Sprintf("%s.%s", e.B, e.Axis)
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", exprString(e.L), e.Op, exprString(e.R))
	case *Unary:
		return fmt.Sprintf("%s%s", e.Op, exprString(e.X))
	case *Load:
		return fmt.Sprintf("%s[%s]", e.Mem.Name, exprString(e.Index))
	case *Call:
		s := e.Fn.String() + "("
		for i, a := range e.Args {
			if i > 0 {
				s += ", "
			}
			s += exprString(a)
		}
		return s + ")"
	case *Cast:
		return fmt.Sprintf("(%s)%s", e.To, exprString(e.X))
	case *Select:
		return fmt.Sprintf("(%s ? %s : %s)", exprString(e.Cond), exprString(e.A), exprString(e.B))
	}
	return "?"
}

package kir

import (
	"fmt"
	"strings"
)

// String renders the kernel in a C-like syntax for diagnostics and golden
// tests.
func (k *Kernel) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "__global__ void %s(", k.Name)
	for i, p := range k.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteString(") {\n")
	for _, sh := range k.Shared {
		fmt.Fprintf(&b, "  __shared__ %s %s[%d];\n", sh.Elem, sh.Name, sh.Len)
	}
	printBlock(&b, k.Body, 1)
	b.WriteString("}\n")
	return b.String()
}

func printBlock(b *strings.Builder, blk Block, depth int) {
	for _, s := range blk {
		printStmt(b, s, depth)
	}
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	indent(b, depth)
	b.WriteString(stmtHead(s))
	switch s := s.(type) {
	case *If:
		b.WriteString(" {\n")
		printBlock(b, s.Then, depth+1)
		indent(b, depth)
		if len(s.Else) > 0 {
			b.WriteString("} else {\n")
			printBlock(b, s.Else, depth+1)
			indent(b, depth)
		}
		b.WriteString("}\n")
	case *For:
		b.WriteString(" {\n")
		printBlock(b, s.Body, depth+1)
		indent(b, depth)
		b.WriteString("}\n")
	case *While:
		b.WriteString(" {\n")
		printBlock(b, s.Body, depth+1)
		indent(b, depth)
		b.WriteString("}\n")
	default:
		b.WriteString("\n")
	}
}

// stmtHead renders the header (non-body) portion of a statement.
func stmtHead(s Stmt) string {
	switch s := s.(type) {
	case *Decl:
		if s.Init != nil {
			return fmt.Sprintf("%s %s = %s;", s.T, s.Name, exprString(s.Init))
		}
		return fmt.Sprintf("%s %s;", s.T, s.Name)
	case *Assign:
		return fmt.Sprintf("%s = %s;", s.Name, exprString(s.Value))
	case *Store:
		return fmt.Sprintf("%s[%s] = %s;", s.Mem.Name, exprString(s.Index), exprString(s.Value))
	case *AtomicRMW:
		return fmt.Sprintf("%s(&%s[%s], %s);", s.Op, s.Mem.Name, exprString(s.Index), exprString(s.Value))
	case *If:
		return fmt.Sprintf("if (%s)", exprString(s.Cond))
	case *For:
		init, post := "", ""
		if s.Init != nil {
			init = strings.TrimSuffix(stmtHead(s.Init), ";")
		}
		if s.Post != nil {
			post = strings.TrimSuffix(stmtHead(s.Post), ";")
		}
		return fmt.Sprintf("for (%s; %s; %s)", init, exprString(s.Cond), post)
	case *While:
		return fmt.Sprintf("while (%s)", exprString(s.Cond))
	case *Sync:
		return "__syncthreads();"
	case *Return:
		return "return;"
	case *BreakStmt:
		return "break;"
	case *ContinueStmt:
		return "continue;"
	}
	return "?;"
}

// ExprString renders an expression in C-like syntax.
func ExprString(e Expr) string { return exprString(e) }

package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"cucc/internal/metrics"
)

// DefaultSamplerCap bounds a sampler built with NewSampler(..., 0).
const DefaultSamplerCap = 128

// Point is one sampling window: the registry's movement over one interval.
type Point struct {
	// Interval is the measured wall-clock length of the window (ticker
	// jitter makes it only approximately the configured interval; rates
	// divide by the measured value).
	Interval time.Duration
	// Delta is the registry delta over the window: counters and histogram
	// contents subtract, gauges carry their instantaneous end-of-window
	// values (metrics.Snapshot.Delta semantics).
	Delta metrics.Snapshot
}

// Sampler snapshots a metrics registry on a fixed interval into a bounded
// ring of deltas, turning cumulative counters into time series (qps,
// bytes/sec, restore rate) and sampling gauges (queue depth).  A nil
// *Sampler is a valid disabled sampler: every method no-ops.
type Sampler struct {
	reg      *metrics.Registry
	interval time.Duration

	mu      sync.Mutex
	points  []Point
	cap     int
	next    int
	dropped int64
	prev    metrics.Snapshot
	last    time.Time

	stop chan struct{}
	done chan struct{}
}

// NewSampler builds a sampler over reg.  interval <= 0 selects 1s;
// capPoints <= 0 selects DefaultSamplerCap.  The sampler is idle until
// Start (or manual SampleNow calls, which tests use for determinism).
func NewSampler(reg *metrics.Registry, interval time.Duration, capPoints int) *Sampler {
	if interval <= 0 {
		interval = time.Second
	}
	if capPoints <= 0 {
		capPoints = DefaultSamplerCap
	}
	return &Sampler{
		reg:      reg,
		interval: interval,
		cap:      capPoints,
		prev:     reg.Snapshot(),
		last:     time.Now(),
	}
}

// Start launches the background sampling goroutine.  Idempotent; no-op on
// a nil sampler.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done := s.stop, s.done
	s.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.SampleNow()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the background goroutine and waits it out.  Idempotent; no-op
// on a nil or never-started sampler.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// SampleNow takes one sample immediately: snapshot the registry, record
// the delta against the previous snapshot, advance the window.  Safe for
// concurrent use; no-op on a nil sampler.
func (s *Sampler) SampleNow() {
	if s == nil {
		return
	}
	snap := s.reg.Snapshot()
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	p := Point{Interval: now.Sub(s.last), Delta: snap.Delta(s.prev)}
	s.prev, s.last = snap, now
	if len(s.points) < s.cap {
		s.points = append(s.points, p)
		return
	}
	s.points[s.next] = p
	s.next = (s.next + 1) % s.cap
	s.dropped++
}

// Points returns the retained windows, oldest first (nil on a nil sampler).
func (s *Sampler) Points() []Point {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, 0, len(s.points))
	out = append(out, s.points[s.next:]...)
	out = append(out, s.points[:s.next]...)
	return out
}

// Dropped reports how many windows the ring has overwritten.
func (s *Sampler) Dropped() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Rate returns the named counter's per-second rate in each retained
// window, oldest first.
func (s *Sampler) Rate(counter string) []float64 {
	pts := s.Points()
	out := make([]float64, len(pts))
	for i, p := range pts {
		if sec := p.Interval.Seconds(); sec > 0 {
			out[i] = float64(p.Delta.Counters[counter]) / sec
		}
	}
	return out
}

// GaugeSeries returns the named gauge's sampled value in each retained
// window, oldest first.
func (s *Sampler) GaugeSeries(gauge string) []float64 {
	pts := s.Points()
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.Delta.Gauges[gauge]
	}
	return out
}

// SeriesKind says how a Series derives its value from a window.
type SeriesKind uint8

const (
	// SeriesRate divides the counter delta by the window length.
	SeriesRate SeriesKind = iota
	// SeriesGauge samples the gauge's end-of-window value.
	SeriesGauge
)

// Series is one column of the sampler's table: a metric plus how to read
// it.  The caller supplies the metric names (obs stays below the layers
// that own them).
type Series struct {
	Label  string
	Metric string
	Kind   SeriesKind
}

// Table renders the most recent windows (newest last) as one row per
// window with one column per series.
func (s *Sampler) Table(series []Series) string {
	if s == nil {
		return ""
	}
	pts := s.Points()
	var b strings.Builder
	fmt.Fprintf(&b, "%8s", "win_ms")
	for _, sp := range series {
		fmt.Fprintf(&b, " %12s", sp.Label)
	}
	b.WriteByte('\n')
	for _, p := range pts {
		fmt.Fprintf(&b, "%8.0f", p.Interval.Seconds()*1e3)
		for _, sp := range series {
			var v float64
			switch sp.Kind {
			case SeriesGauge:
				v = p.Delta.Gauges[sp.Metric]
			default:
				if sec := p.Interval.Seconds(); sec > 0 {
					v = float64(p.Delta.Counters[sp.Metric]) / sec
				}
			}
			fmt.Fprintf(&b, " %12.1f", v)
		}
		b.WriteByte('\n')
	}
	if d := s.Dropped(); d > 0 {
		fmt.Fprintf(&b, "(%d older windows dropped: ring capacity %d)\n", d, s.cap)
	}
	return b.String()
}

package obs

import (
	"strings"
	"testing"

	"cucc/internal/metrics"
	"cucc/internal/trace"
)

func dumpFixture() *Dump {
	reg := metrics.New()
	reg.Counter("recovery.restores").Inc()
	return &Dump{
		Schema: DumpSchemaVersion,
		Reason: DumpReasonRecovery,
		Tenant: "tenant-a",
		Job:    7,
		What:   "source:vecadd",
		Journal: []Event{
			{Seq: 1, Type: EvAdmit, Tenant: "tenant-a", Job: 7, Rank: -1},
			{Seq: 2, Type: EvRankLoss, Tenant: "tenant-a", Job: 7, Rank: 1, Detail: "lost nodes [1], 3 survivors"},
		},
		Metrics: reg.Snapshot(),
		Trace: []trace.Event{
			{Phase: trace.PhaseLaunch, Node: -1, DurSec: 0.01},
		},
		TraceDropped: 2,
	}
}

// TestDumpRoundTrip: JSON and ParseDump invert each other.
func TestDumpRoundTrip(t *testing.T) {
	d := dumpFixture()
	raw, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseDump(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != d.Reason || got.Tenant != d.Tenant || got.Job != d.Job || got.What != d.What {
		t.Errorf("metadata diverged: %+v", got)
	}
	if len(got.Journal) != 2 || got.Journal[1].Rank != 1 {
		t.Errorf("journal window diverged: %+v", got.Journal)
	}
	if len(got.Trace) != 1 || got.TraceDropped != 2 {
		t.Errorf("trace window diverged: %d events, %d dropped", len(got.Trace), got.TraceDropped)
	}
	if got.Metrics.Counters["recovery.restores"] != 1 {
		t.Errorf("metrics snapshot diverged: %+v", got.Metrics.Counters)
	}
}

// TestParseDumpRejects: dumps from a newer schema, reason-less JSON, and
// garbage are all refused with telling errors.
func TestParseDumpRejects(t *testing.T) {
	if _, err := ParseDump([]byte(`{"schema_version": 99, "reason": "failure"}`)); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Errorf("future schema: err = %v, want version refusal", err)
	}
	if _, err := ParseDump([]byte(`{"schema_version": 1}`)); err == nil || !strings.Contains(err.Error(), "reason") {
		t.Errorf("missing reason: err = %v, want reason refusal", err)
	}
	if _, err := ParseDump([]byte("not json")); err == nil {
		t.Error("garbage accepted as a dump")
	}
}

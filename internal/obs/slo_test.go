package obs

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"cucc/internal/metrics"
)

// sloFixture records three tenants' traffic the way the serving layer does:
// tenant-a has one slow completion past its 250ms objective, tenant-b has a
// failure but no latency objective, and "idle" saw only rejections.
func sloFixture() metrics.Snapshot {
	reg := metrics.New()
	reg.Counter(TenantMetric("tenant-a", TenantFieldCompleted)).Add(10)
	lat := reg.Histogram(TenantMetric("tenant-a", TenantFieldLatency))
	for i := 0; i < 9; i++ {
		lat.Observe(0.01) // well within 250ms
	}
	lat.Observe(10) // one outlier

	reg.Counter(TenantMetric("tenant-b", TenantFieldCompleted)).Add(5)
	reg.Counter(TenantMetric("tenant-b", TenantFieldFailed)).Add(1)
	reg.Counter(TenantMetric("tenant-b", TenantFieldRejected)).Add(2)
	blat := reg.Histogram(TenantMetric("tenant-b", TenantFieldLatency))
	for i := 0; i < 5; i++ {
		blat.Observe(0.02)
	}

	reg.Counter(TenantMetric("idle", TenantFieldRejected)).Add(3)
	return reg.Snapshot()
}

func sloFixtureConfig() SLOConfig {
	return SLOConfig{
		Default: Objective{LatencyMs: 250, Target: 0.99},
		Tenants: map[string]Objective{"tenant-b": {Target: 0.5}},
	}
}

func approx(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

// TestComputeSLO pins the SLO arithmetic end to end: the denominator
// (completed+failed, rejections excluded), the conservative latency
// attainment, the idle-tenant convention, and the burn-rate formula.
func TestComputeSLO(t *testing.T) {
	rows := ComputeSLO(sloFixture(), sloFixtureConfig())
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3: %+v", len(rows), rows)
	}
	// Rows sort by tenant name.
	if rows[0].Tenant != "idle" || rows[1].Tenant != "tenant-a" || rows[2].Tenant != "tenant-b" {
		t.Fatalf("row order %s,%s,%s; want idle,tenant-a,tenant-b",
			rows[0].Tenant, rows[1].Tenant, rows[2].Tenant)
	}

	idle := rows[0]
	if idle.Requests != 0 || idle.Rejected != 3 {
		t.Errorf("idle accounting: %+v", idle)
	}
	if idle.Attainment != 1 || idle.BudgetBurn != 0 {
		t.Errorf("idle tenant must burn nothing: attainment %g burn %g", idle.Attainment, idle.BudgetBurn)
	}

	a := rows[1]
	if a.Requests != 10 || a.Completed != 10 || a.Failed != 0 {
		t.Errorf("tenant-a accounting: %+v", a)
	}
	if a.Attained != 9 {
		t.Errorf("tenant-a Attained = %d, want 9 (the outlier misses 250ms)", a.Attained)
	}
	if !approx(a.Attainment, 0.9) {
		t.Errorf("tenant-a Attainment = %g, want 0.9", a.Attainment)
	}
	if !approx(a.BudgetBurn, 0.1/0.01) {
		t.Errorf("tenant-a BudgetBurn = %g, want 10", a.BudgetBurn)
	}
	if a.P99Ms <= a.P50Ms {
		t.Errorf("tenant-a p99 %gms <= p50 %gms despite the outlier", a.P99Ms, a.P50Ms)
	}

	b := rows[2]
	if b.Requests != 6 || b.Rejected != 2 {
		t.Errorf("tenant-b accounting: %+v (rejections must not enter Requests)", b)
	}
	if b.Attained != 5 {
		t.Errorf("tenant-b Attained = %d, want 5 (no latency objective: completions attain)", b.Attained)
	}
	if !approx(b.Attainment, 5.0/6) {
		t.Errorf("tenant-b Attainment = %g, want 5/6", b.Attainment)
	}
	if !approx(b.BudgetBurn, (1.0/6)/0.5) {
		t.Errorf("tenant-b BudgetBurn = %g, want 1/3", b.BudgetBurn)
	}

	for _, r := range rows {
		if math.IsInf(r.BudgetBurn, 0) || math.IsNaN(r.BudgetBurn) {
			t.Errorf("tenant %s: burn %v not finite", r.Tenant, r.BudgetBurn)
		}
	}
}

// TestEffectiveTargetClamp: the effective target stays strictly inside
// (0, 1) so the error budget is never zero and the burn never infinite.
func TestEffectiveTargetClamp(t *testing.T) {
	for _, tc := range []struct{ in, want float64 }{
		{0, DefaultSLOTarget},
		{-1, DefaultSLOTarget},
		{0.5, 0.5},
		{0.9999, 0.9999},
		{1, 0.9999},
		{2, 0.9999},
	} {
		if got := (Objective{Target: tc.in}).EffectiveTarget(); got != tc.want {
			t.Errorf("EffectiveTarget(%g) = %g, want %g", tc.in, got, tc.want)
		}
	}
	// Even a tenant missing every request at a target of 1 burns finitely.
	reg := metrics.New()
	reg.Counter(TenantMetric("t", TenantFieldFailed)).Add(4)
	rows := ComputeSLO(reg.Snapshot(), SLOConfig{Default: Objective{Target: 1}})
	if len(rows) != 1 || math.IsInf(rows[0].BudgetBurn, 0) {
		t.Fatalf("all-failure tenant burn = %+v, want finite", rows)
	}
}

// TestSLOExportRoundTrip: the /slo?format=json payload parses back to the
// same rows, and identical snapshots export identical bytes.
func TestSLOExportRoundTrip(t *testing.T) {
	rows := ComputeSLO(sloFixture(), sloFixtureConfig())
	raw, err := ExportSLOJSON(rows)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ExportSLOJSON(ComputeSLO(sloFixture(), sloFixtureConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(again) {
		t.Error("identical snapshots exported different SLO JSON")
	}
	got, err := ParseSLO(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, rows)
	}
	if _, err := ParseSLO([]byte("nope")); err == nil {
		t.Error("ParseSLO accepted garbage")
	}
	if raw, err := ExportSLOJSON(nil); err != nil || string(raw) != "[]" {
		t.Errorf("nil rows export = %q, %v; want empty array", raw, err)
	}
}

// TestSLOTable: the text rendering names every tenant and handles the
// empty report.
func TestSLOTable(t *testing.T) {
	out := SLOTable(ComputeSLO(sloFixture(), sloFixtureConfig()))
	for _, want := range []string{"tenant-a", "tenant-b", "idle", "250ms", "burn"} {
		if !strings.Contains(out, want) {
			t.Errorf("SLO table missing %q:\n%s", want, out)
		}
	}
	if empty := SLOTable(nil); !strings.Contains(empty, "no tenant traffic") {
		t.Errorf("empty table rendering: %q", empty)
	}
}

package obs

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestJournalRingBound: a full ring overwrites the oldest events, counts
// them as dropped, and keeps the retained window in sequence order.
func TestJournalRingBound(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Record(Event{Type: EvAdmit, Rank: -1, Detail: fmt.Sprintf("e%d", i)})
	}
	if got := j.Len(); got != 4 {
		t.Errorf("Len = %d, want 4", got)
	}
	if got := j.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	evs := j.Events()
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Seq != want {
			t.Errorf("event %d: Seq = %d, want %d", i, ev.Seq, want)
		}
	}
	tail := j.Tail(2)
	if len(tail) != 2 || tail[0].Seq != 8 || tail[1].Seq != 9 {
		t.Errorf("Tail(2) = %+v, want seqs 8,9", tail)
	}
	if got := j.Tail(0); len(got) != 4 {
		t.Errorf("Tail(0) returned %d events, want all 4", len(got))
	}
	if got := j.Tail(100); len(got) != 4 {
		t.Errorf("Tail(100) returned %d events, want all 4", len(got))
	}
}

// TestNilJournalNoOps: a nil journal and a zero scope are valid disabled
// recorders — every method no-ops, and the hot-path Record costs zero
// allocations.
func TestNilJournalNoOps(t *testing.T) {
	var j *Journal
	j.Record(Event{Type: EvAdmit})
	if j.Events() != nil || j.Tail(5) != nil || j.Len() != 0 || j.Dropped() != 0 {
		t.Error("nil journal retained state")
	}
	if raw, err := j.JSON(); err != nil || string(raw) != "[]" {
		t.Errorf("nil journal JSON = %q, %v; want empty array", raw, err)
	}
	var sc Scope
	if sc.On() {
		t.Error("zero Scope reports On")
	}
	sc.Record(EvAdmit, -1, "k", "detail")
	sc.RecordEvent(Event{Type: EvFail})

	if n := testing.AllocsPerRun(100, func() {
		sc.Record(EvLaunchPhase, -1, "vecadd", "")
	}); n != 0 {
		t.Errorf("disabled Scope.Record allocates %v per call, want 0", n)
	}
}

// TestScopeStamping: a scope stamps its tenant and job over both Record and
// pre-built events.
func TestScopeStamping(t *testing.T) {
	j := NewJournal(8)
	sc := Scope{J: j, Tenant: "t1", Job: 7}
	if !sc.On() {
		t.Fatal("enabled scope reports off")
	}
	sc.Record(EvAdmit, 2, "vecadd", "queued")
	sc.RecordEvent(Event{Type: EvRankLoss, Tenant: "ignored", Job: 999, Rank: 1})
	evs := j.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	for i, ev := range evs {
		if ev.Tenant != "t1" || ev.Job != 7 {
			t.Errorf("event %d not stamped with scope identity: %+v", i, ev)
		}
	}
	if evs[1].Rank != 1 || evs[1].Type != EvRankLoss {
		t.Errorf("RecordEvent lost event fields: %+v", evs[1])
	}
}

// journalFixture records one event of every type, the corpus the export
// and golden tests share.
func journalFixture() *Journal {
	j := NewJournal(0)
	sc := Scope{J: j, Tenant: "tenant-a", Job: 3}
	sc.Record(EvAdmit, -1, "VecAdd", "queued (depth 1)")
	sc.Record(EvReject, -1, "", "queue full: 32 queued")
	sc.Record(EvDispatch, -1, "VecAdd", "")
	sc.Record(EvCompile, -1, "vecadd", "compiled")
	sc.Record(EvLaunchPhase, -1, "vecadd", "start: blocks=16 nodes=4 distributed=true")
	sc.Record(EvAbort, -1, "", "transport closed")
	sc.Record(EvRankLoss, 1, "vecadd", "lost nodes [1], 3 survivors")
	sc.Record(EvCheckpoint, -1, "vecadd", "checkpoint @phase1: 4096 bytes over 3 regions")
	sc.Record(EvRestore, -1, "vecadd", "restore @phase1 (4096 bytes), replaying over 3 ranks")
	sc.Record(EvRegroup, -1, "", "adopted subgroup [0 2 3] over fresh transport")
	sc.Record(EvRejoin, -1, "vecadd", "repaired nodes [1] rejoined at full width")
	sc.Record(EvComplete, -1, "VecAdd", "ok: restores=1")
	sc.Record(EvFail, -1, "VecAdd", "deadline exceeded")
	j.Record(Event{Type: EvDrain, Rank: -1, Detail: "draining: 2 queued jobs rejected"})
	return j
}

// TestJournalExportDeterministic: identical record sequences export
// byte-identical JSON and text — the journal analogue of
// TestTraceDeterministicAcrossRuns.
func TestJournalExportDeterministic(t *testing.T) {
	first, err := journalFixture().JSON()
	if err != nil {
		t.Fatal(err)
	}
	firstText := journalFixture().Text()
	for i := 0; i < 3; i++ {
		again, err := journalFixture().JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("run %d exported different JSON (%d vs %d bytes)", i+2, len(again), len(first))
		}
		if againText := journalFixture().Text(); againText != firstText {
			t.Fatalf("run %d exported different text", i+2)
		}
	}
}

// TestParseEventsRoundTrip: ExportJSON and ParseEvents invert each other.
func TestParseEventsRoundTrip(t *testing.T) {
	want := journalFixture().Events()
	raw, err := ExportJSON(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseEvents(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}
	if _, err := ParseEvents([]byte("not json")); err == nil {
		t.Error("ParseEvents accepted garbage")
	}
}

// TestJournalSchemaGolden pins the serialized event schema: the JSON field
// names and shapes the /events page and flight-recorder dumps publish.
// Changing the Event struct changes the wire format — regenerate with
// `go test ./internal/obs -run Golden -update` and bump consumers
// deliberately.
func TestJournalSchemaGolden(t *testing.T) {
	raw, err := journalFixture().JSON()
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, '\n')
	golden := filepath.Join("testdata", "journal_schema.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(raw, want) {
		t.Errorf("event schema drifted from %s (regenerate with -update if intended)\n got:\n%s\nwant:\n%s",
			golden, raw, want)
	}
}

// TestJournalConcurrent hammers one journal from many goroutines under the
// race detector and checks every record landed or displaced exactly one
// older event.
func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(64)
	const workers, each = 8, 100
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			sc := Scope{J: j, Tenant: fmt.Sprintf("t%d", w), Job: uint64(w)}
			for i := 0; i < each; i++ {
				sc.Record(EvAdmit, -1, "", "")
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if got := j.Len() + int(j.Dropped()); got != workers*each {
		t.Errorf("retained+dropped = %d, want %d", got, workers*each)
	}
	evs := j.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("retained window not contiguous at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

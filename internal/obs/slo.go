package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"cucc/internal/metrics"
)

// Per-tenant metric-name scheme.  The serving layer records one outcome
// counter set and one latency histogram per tenant in its aggregate
// registry under these names; ComputeSLO reads them back out of a
// snapshot.  The scheme is defined here (not in serve) so the SLO math
// stays a pure function over a metrics.Snapshot, testable without a
// server.
const (
	// TenantFieldCompleted counts jobs that finished StatusOK.
	TenantFieldCompleted = "completed"
	// TenantFieldFailed counts jobs that finished in error.
	TenantFieldFailed = "failed"
	// TenantFieldRejected counts admission rejections (backpressure; they
	// are reported but excluded from the SLO denominator, matching the
	// bench comparison's treatment of reject rate).
	TenantFieldRejected = "rejected"
	// TenantFieldLatency is the log2 histogram of completed jobs'
	// queue+run latency in seconds.
	TenantFieldLatency = "run_seconds"
)

// TenantMetric builds the registry name of one tenant field, e.g.
// "tenant.tenant-a.run_seconds".  The "tenant." prefix keeps the names
// disjoint from both server-level ("serve.") and job-produced counters.
func TenantMetric(tenant, field string) string {
	return "tenant." + tenant + "." + field
}

// DefaultSLOTarget is the attainment target used when an objective does
// not set one.
const DefaultSLOTarget = 0.99

// maxSLOTarget caps the target below 1: a target of exactly 1 has a zero
// error budget and an infinite burn rate on the first bad request, which
// is useless as a signal.  Clamping keeps every reported burn finite.
const maxSLOTarget = 0.9999

// Objective is one tenant's service-level objective.
type Objective struct {
	// LatencyMs is the per-request latency objective in milliseconds: a
	// completed request attains the SLO when its latency is at or below
	// it.  <= 0 disables the latency component (any completion attains).
	LatencyMs float64 `json:"latency_ms"`
	// Target is the attainment target in (0, 1), e.g. 0.99 = "99% of
	// requests complete within the objective".  <= 0 selects
	// DefaultSLOTarget; values at or above 1 are clamped to maxSLOTarget.
	Target float64 `json:"target"`
}

// EffectiveTarget resolves the attainment target to a value strictly
// inside (0, 1), keeping the error budget nonzero and the burn rate
// finite.
func (o Objective) EffectiveTarget() float64 {
	t := o.Target
	if t <= 0 {
		t = DefaultSLOTarget
	}
	if t > maxSLOTarget {
		t = maxSLOTarget
	}
	return t
}

// SLOConfig maps tenants to objectives.
type SLOConfig struct {
	// Default applies to tenants without an explicit entry.  The zero
	// Objective still yields a usable SLO (no latency component,
	// DefaultSLOTarget attainment target).
	Default Objective
	// Tenants overrides the default per tenant name.
	Tenants map[string]Objective
}

// For resolves the objective for one tenant.
func (c SLOConfig) For(tenant string) Objective {
	if o, ok := c.Tenants[tenant]; ok {
		return o
	}
	return c.Default
}

// TenantSLO is one tenant's rolling SLO accounting, computed from the
// snapshot's whole window (the server's lifetime, or a sampler delta for a
// shorter window).
type TenantSLO struct {
	Tenant    string    `json:"tenant"`
	Objective Objective `json:"objective"`
	// Requests is the SLO denominator: completed + failed (rejections are
	// excluded — admission backpressure is reported separately).
	Requests  int64 `json:"requests"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Rejected  int64 `json:"rejected"`
	// Attained counts requests that met the objective: completed within
	// the latency objective (by the conservative bucket-upper-bound count;
	// see metrics.HistValue.CountLE).  Failures never attain.
	Attained int64 `json:"attained"`
	// Attainment is Attained / Requests (1 when there were no requests:
	// an idle tenant has burned no budget).
	Attainment float64 `json:"attainment"`
	// P50Ms/P90Ms/P99Ms are the observed latency quantiles in
	// milliseconds, each the upper bound of its log2 bucket.
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	// BudgetBurn is the error-budget burn rate over the window:
	// (1 - Attainment) / (1 - target).  1.0 means the tenant is burning
	// exactly its budget; above 1 it will exhaust the budget early.
	// Always finite: the effective target is clamped below 1.
	BudgetBurn float64 `json:"budget_burn"`
}

// ComputeSLO derives every tenant's SLO accounting from a snapshot
// containing the TenantMetric names.  Tenants are discovered from the
// snapshot (any tenant with at least one recorded field appears); rows are
// sorted by tenant name, so equal snapshots yield identical reports.
func ComputeSLO(snap metrics.Snapshot, cfg SLOConfig) []TenantSLO {
	tenants := map[string]bool{}
	collect := func(name string) {
		rest, ok := strings.CutPrefix(name, "tenant.")
		if !ok {
			return
		}
		if i := strings.LastIndex(rest, "."); i > 0 {
			tenants[rest[:i]] = true
		}
	}
	for name := range snap.Counters {
		collect(name)
	}
	for name := range snap.Histograms {
		collect(name)
	}
	names := make([]string, 0, len(tenants))
	for t := range tenants {
		names = append(names, t)
	}
	sort.Strings(names)

	out := make([]TenantSLO, 0, len(names))
	for _, t := range names {
		o := cfg.For(t)
		row := TenantSLO{
			Tenant:    t,
			Objective: o,
			Completed: snap.Counters[TenantMetric(t, TenantFieldCompleted)],
			Failed:    snap.Counters[TenantMetric(t, TenantFieldFailed)],
			Rejected:  snap.Counters[TenantMetric(t, TenantFieldRejected)],
		}
		row.Requests = row.Completed + row.Failed
		hv := snap.Histograms[TenantMetric(t, TenantFieldLatency)]
		row.P50Ms = hv.P50() * 1e3
		row.P90Ms = hv.P90() * 1e3
		row.P99Ms = hv.P99() * 1e3
		if o.LatencyMs > 0 {
			row.Attained = hv.CountLE(o.LatencyMs / 1e3)
			if row.Attained > row.Completed {
				row.Attained = row.Completed
			}
		} else {
			row.Attained = row.Completed
		}
		row.Attainment = 1
		if row.Requests > 0 {
			row.Attainment = float64(row.Attained) / float64(row.Requests)
		}
		row.BudgetBurn = (1 - row.Attainment) / (1 - o.EffectiveTarget())
		out = append(out, row)
	}
	return out
}

// ExportSLOJSON serializes the SLO rows deterministically (row order is
// already sorted by tenant; struct field order is fixed).
func ExportSLOJSON(rows []TenantSLO) ([]byte, error) {
	if rows == nil {
		rows = []TenantSLO{}
	}
	return json.MarshalIndent(rows, "", "  ")
}

// ParseSLO loads rows serialized by ExportSLOJSON (the /slo?format=json
// payload cuccload's -slo-check consumes).
func ParseSLO(data []byte) ([]TenantSLO, error) {
	var rows []TenantSLO
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("obs: not an SLO report: %w", err)
	}
	return rows, nil
}

// SLOTable renders the report as a deterministic text table.
func SLOTable(rows []TenantSLO) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %8s %8s %8s %10s %9s %9s %9s %8s\n",
		"tenant", "objective", "requests", "failed", "rejected",
		"attainment", "p50 ms", "p90 ms", "p99 ms", "burn")
	for _, r := range rows {
		obj := "-"
		if r.Objective.LatencyMs > 0 {
			obj = fmt.Sprintf("%gms", r.Objective.LatencyMs)
		}
		fmt.Fprintf(&b, "%-12s %10s %8d %8d %8d %9.2f%% %9.2f %9.2f %9.2f %8.2f\n",
			r.Tenant, obj, r.Requests, r.Failed, r.Rejected,
			r.Attainment*100, r.P50Ms, r.P90Ms, r.P99Ms, r.BudgetBurn)
	}
	if len(rows) == 0 {
		b.WriteString("(no tenant traffic recorded yet)\n")
	}
	return b.String()
}

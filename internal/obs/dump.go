package obs

import (
	"encoding/json"
	"fmt"

	"cucc/internal/metrics"
	"cucc/internal/trace"
)

// DumpSchemaVersion is the flight-recorder dump format this package writes
// and parses.  Parsing refuses dumps newer than it understands; older
// versions (none yet) would be accepted with a warning by the consumer.
const DumpSchemaVersion = 1

// Dump reasons.
const (
	// DumpReasonFailure: the job finished in error.
	DumpReasonFailure = "failure"
	// DumpReasonRecovery: the job completed, but only after one or more
	// checkpoint restores — worth a post-mortem even though it succeeded.
	DumpReasonRecovery = "recovery"
)

// Dump is one flight-recorder post-mortem bundle: the recent journal
// window, the failed (or recovered) job's isolated metrics delta, and its
// capped trace, plus enough metadata to name the job.  cuccd writes one on
// job failure or recovery; `cuccprof -postmortem` parses it back into a
// failure timeline.
type Dump struct {
	Schema int    `json:"schema_version"`
	Reason string `json:"reason"` // DumpReasonFailure | DumpReasonRecovery
	Tenant string `json:"tenant"`
	Job    uint64 `json:"job"`
	// What names the workload: the program name or "source:<kernel>".
	What string `json:"what"`
	// Err is the job's terminal error (empty for DumpReasonRecovery).
	Err string `json:"err,omitempty"`
	// Journal is the recent server-wide journal window at dump time — the
	// causal context around the failure, not just the one job's events.
	Journal []Event `json:"journal"`
	// Metrics is the job's isolated registry snapshot (a per-job delta by
	// construction: the serving layer gives every job a fresh registry).
	Metrics metrics.Snapshot `json:"metrics"`
	// Trace is the job's capped trace, in deterministic export order.
	Trace []trace.Event `json:"trace"`
	// TraceDropped counts events the capped recorder overwrote: nonzero
	// means Trace covers only the retained window.
	TraceDropped int64 `json:"trace_dropped,omitempty"`
}

// JSON serializes the dump deterministically (fixed field order, events in
// their recorded orders).
func (d *Dump) JSON() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// ParseDump loads a dump written by JSON.
func ParseDump(data []byte) (*Dump, error) {
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("obs: not a flight-recorder dump: %w", err)
	}
	if d.Schema > DumpSchemaVersion {
		return nil, fmt.Errorf("obs: dump schema v%d is newer than this tool understands (v%d)", d.Schema, DumpSchemaVersion)
	}
	if d.Reason == "" {
		return nil, fmt.Errorf("obs: dump has no reason; not a flight-recorder dump")
	}
	return &d, nil
}

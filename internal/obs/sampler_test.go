package obs

import (
	"strings"
	"testing"
	"time"

	"cucc/internal/metrics"
)

// TestSamplerDeltas: SampleNow windows carry per-window counter deltas and
// instantaneous gauge values, not cumulative totals.
func TestSamplerDeltas(t *testing.T) {
	reg := metrics.New()
	s := NewSampler(reg, time.Second, 8)

	reg.Counter("jobs").Add(10)
	reg.Gauge("queue").Set(3)
	s.SampleNow()
	reg.Counter("jobs").Add(5)
	reg.Gauge("queue").Set(1)
	s.SampleNow()

	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if got := pts[0].Delta.Counters["jobs"]; got != 10 {
		t.Errorf("window 0 delta = %d, want 10", got)
	}
	if got := pts[1].Delta.Counters["jobs"]; got != 5 {
		t.Errorf("window 1 delta = %d, want 5 (cumulative leak)", got)
	}
	if got := pts[1].Delta.Gauges["queue"]; got != 1 {
		t.Errorf("window 1 gauge = %g, want 1", got)
	}
	if g := s.GaugeSeries("queue"); len(g) != 2 || g[0] != 3 || g[1] != 1 {
		t.Errorf("GaugeSeries = %v, want [3 1]", g)
	}
	rates := s.Rate("jobs")
	if len(rates) != 2 {
		t.Fatalf("Rate returned %d windows, want 2", len(rates))
	}
	for i, r := range rates {
		if r < 0 {
			t.Errorf("window %d rate %g < 0", i, r)
		}
	}
}

// TestSamplerRingBound: the point ring drops the oldest windows.
func TestSamplerRingBound(t *testing.T) {
	reg := metrics.New()
	s := NewSampler(reg, time.Second, 2)
	for i := 0; i < 5; i++ {
		reg.Counter("c").Inc()
		s.SampleNow()
	}
	if got := len(s.Points()); got != 2 {
		t.Errorf("retained %d points, want 2", got)
	}
	if got := s.Dropped(); got != 3 {
		t.Errorf("Dropped = %d, want 3", got)
	}
}

// TestSamplerNil: every method is safe on a nil sampler.
func TestSamplerNil(t *testing.T) {
	var s *Sampler
	s.Start()
	s.Stop()
	s.SampleNow()
	if s.Points() != nil || s.Dropped() != 0 {
		t.Error("nil sampler retained state")
	}
	if got := s.Table([]Series{{Label: "qps", Metric: "c"}}); got != "" {
		t.Errorf("nil sampler Table = %q, want empty", got)
	}
	if got := s.Rate("c"); len(got) != 0 {
		t.Errorf("nil sampler Rate = %v, want empty", got)
	}
}

// TestSamplerStartStop: Start and Stop are idempotent and the goroutine
// actually terminates.
func TestSamplerStartStop(t *testing.T) {
	reg := metrics.New()
	s := NewSampler(reg, time.Millisecond, 4)
	s.Start()
	s.Start() // second Start must not spawn a second goroutine
	time.Sleep(10 * time.Millisecond)
	s.Stop()
	s.Stop() // second Stop must not panic or hang
	n := len(s.Points())
	if n == 0 {
		t.Error("started sampler took no samples")
	}
	time.Sleep(10 * time.Millisecond)
	if got := len(s.Points()); got != n {
		t.Errorf("sampler kept sampling after Stop: %d then %d points", n, got)
	}
}

// TestSamplerTable: the table renders one row per window with the series
// columns and reports drops.
func TestSamplerTable(t *testing.T) {
	reg := metrics.New()
	s := NewSampler(reg, time.Second, 2)
	for i := 0; i < 3; i++ {
		reg.Counter("done").Add(int64(i + 1))
		reg.Gauge("depth").Set(float64(i))
		s.SampleNow()
	}
	out := s.Table([]Series{
		{Label: "qps", Metric: "done", Kind: SeriesRate},
		{Label: "queue", Metric: "depth", Kind: SeriesGauge},
	})
	if !strings.Contains(out, "qps") || !strings.Contains(out, "queue") {
		t.Errorf("table missing series headers:\n%s", out)
	}
	if !strings.Contains(out, "1 older windows dropped") {
		t.Errorf("table does not report the dropped window:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 4 { // header + 2 rows + drop note
		t.Errorf("table has %d lines, want 4:\n%s", got, out)
	}
}

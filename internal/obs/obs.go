// Package obs is the operational observability layer above
// internal/metrics: a bounded structured event journal (the causal record
// of what the serving stack did and why), a fixed-interval time-series
// sampler over a metrics registry, per-tenant SLO accounting over the log2
// latency histograms, and the flight-recorder dump format cuccd writes on
// job failure or recovery.
//
// The journal follows the two invariants of the metrics layer:
//
//  1. Recording never changes a simulated figure or a computed byte — a
//     suites-level test runs the evaluation programs with the journal on
//     and off and asserts identical Stats and bitwise-identical heaps.
//  2. A disabled journal costs nothing.  Every method is nil-safe, so
//     "journal off" is spelled as a nil *Journal (or a zero Scope) and the
//     launch hot path pays one nil check and zero allocations.
//
// Export is deterministic: events are ordered by their monotonic sequence
// number and carry no wall-clock timestamps, so identical runs export
// byte-identical logs — the same discipline as trace.SortEvents and
// metrics.Snapshot.
package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
)

// Event types.  The journal is typed so consumers (the /events page, the
// post-mortem renderer, the chaos tests) can filter and assert on the
// causal chain rather than parse free text.
const (
	// EvAdmit records a submission entering the admission queue.
	EvAdmit = "admit"
	// EvReject records a submission turned away (queue full, draining, or
	// invalid); Detail carries the reason.
	EvReject = "reject"
	// EvDispatch records an executor dequeuing a job to run it.
	EvDispatch = "dispatch"
	// EvCompile records a source-mode kernel resolving through the compile
	// cache; Detail says whether it was cached or freshly compiled.
	EvCompile = "compile"
	// EvLaunchPhase records the launch workflow's coarse transitions
	// (start, completion, trivial fallback); Detail carries the geometry.
	EvLaunchPhase = "launch-phase"
	// EvAbort records a cluster-wide abort; Detail carries the cause.
	EvAbort = "abort"
	// EvRankLoss records a classified rank failure (the recovery path's
	// trigger); Rank is the lost node when exactly one was lost.
	EvRankLoss = "rank-loss"
	// EvCheckpoint records a barrier checkpoint capture.
	EvCheckpoint = "checkpoint"
	// EvRestore records a checkpoint restore before a replay attempt.
	EvRestore = "restore"
	// EvRegroup records the surviving ranks adopting a fresh transport.
	EvRegroup = "regroup"
	// EvRejoin records repaired nodes rejoining at full cluster width.
	EvRejoin = "rejoin"
	// EvComplete records a job finishing successfully.
	EvComplete = "complete"
	// EvFail records a job finishing in error; Detail carries the message.
	EvFail = "fail"
	// EvDrain records the server entering graceful drain.
	EvDrain = "drain"
)

// Event is one journal entry.  The zero Rank is a valid rank, so emitters
// must set Rank explicitly; -1 means "not rank-specific" (the same
// convention as trace.Event.Node).
type Event struct {
	// Seq is the journal-assigned monotonic sequence number (stamped by
	// Record; any caller-provided value is overwritten).
	Seq uint64 `json:"seq"`
	// Type is one of the Ev* constants.
	Type string `json:"type"`
	// Tenant and Job attribute the event to one admitted submission; empty
	// and zero for server-wide events (e.g. drain).
	Tenant string `json:"tenant,omitempty"`
	Job    uint64 `json:"job,omitempty"`
	// Rank is the cluster node the event concerns, or -1.
	Rank int `json:"rank"`
	// Kernel names the kernel or program involved, when there is one.
	Kernel string `json:"kernel,omitempty"`
	// Detail is a human-readable elaboration.  Emitters must keep it a
	// deterministic function of the run (no wall-clock times, no
	// addresses), preserving byte-identical export across identical runs.
	Detail string `json:"detail,omitempty"`
}

// DefaultJournalCap bounds a journal built with NewJournal(0).
const DefaultJournalCap = 4096

// Journal is a bounded, race-safe ring of typed events.  A nil *Journal is
// a valid disabled journal: every method no-ops, mirroring
// metrics.Registry.
type Journal struct {
	mu      sync.Mutex
	events  []Event
	cap     int
	next    int
	dropped int64
	seq     uint64
}

// NewJournal builds a journal retaining at most n events (the oldest are
// overwritten once full and counted as dropped).  n <= 0 selects
// DefaultJournalCap.
func NewJournal(n int) *Journal {
	if n <= 0 {
		n = DefaultJournalCap
	}
	return &Journal{cap: n}
}

// Record stamps ev with the next sequence number and appends it,
// overwriting the oldest event when full.  No-op on a nil journal.
func (j *Journal) Record(ev Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	ev.Seq = j.seq
	j.seq++
	if len(j.events) < j.cap {
		j.events = append(j.events, ev)
		return
	}
	j.events[j.next] = ev
	j.next = (j.next + 1) % j.cap
	j.dropped++
}

// Events returns a copy of the retained events in sequence order (nil on a
// nil journal).
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, len(j.events))
	out = append(out, j.events[j.next:]...)
	out = append(out, j.events[:j.next]...)
	return out
}

// Tail returns the most recent n retained events in sequence order (all of
// them when n <= 0 or exceeds the retained count; nil on a nil journal).
// This is the flight recorder's "recent journal window".
func (j *Journal) Tail(n int) []Event {
	evs := j.Events()
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// Len reports the retained event count (0 on a nil journal).
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events)
}

// Dropped reports how many events the ring has overwritten (0 on a nil
// journal).
func (j *Journal) Dropped() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// JSON exports the retained events deterministically (sequence order,
// fixed field order, no timestamps): identical runs yield identical bytes.
func (j *Journal) JSON() ([]byte, error) { return ExportJSON(j.Events()) }

// Text exports the retained events as the deterministic text table.
func (j *Journal) Text() string { return ExportText(j.Events()) }

// ExportJSON serializes events (already in the desired order) as indented
// JSON.  The Event struct's fixed field order makes the output a pure
// function of the event list.
func ExportJSON(events []Event) ([]byte, error) {
	if events == nil {
		events = []Event{}
	}
	return json.MarshalIndent(events, "", "  ")
}

// ParseEvents loads events serialized by ExportJSON.
func ParseEvents(data []byte) ([]Event, error) {
	var evs []Event
	if err := json.Unmarshal(data, &evs); err != nil {
		return nil, fmt.Errorf("obs: not an event log: %w", err)
	}
	return evs, nil
}

// ExportText renders events as a deterministic text table, one event per
// line in the given order.
func ExportText(events []Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s  %-12s  %-12s  %5s  %4s  %-18s  %s\n",
		"seq", "type", "tenant", "job", "rank", "kernel", "detail")
	for _, ev := range events {
		fmt.Fprintf(&b, "%6d  %-12s  %-12s  %5d  %4d  %-18s  %s\n",
			ev.Seq, ev.Type, ev.Tenant, ev.Job, ev.Rank, ev.Kernel, ev.Detail)
	}
	return b.String()
}

// Scope is a journal handle pre-stamped with one job's tenant and ID, the
// form the launch path and the cluster receive.  The zero Scope (nil
// journal) is disabled: Record is a nil check and a return, so wiring it
// unconditionally costs nothing — callers that build fmt.Sprintf details
// should still guard with On() to keep the disabled path allocation-free.
type Scope struct {
	J      *Journal
	Tenant string
	Job    uint64
}

// On reports whether recording is enabled — the guard hot paths use before
// building event details.
func (s Scope) On() bool { return s.J != nil }

// Record appends one typed event stamped with the scope's tenant and job.
func (s Scope) Record(typ string, rank int, kernel, detail string) {
	if s.J == nil {
		return
	}
	s.J.Record(Event{Type: typ, Tenant: s.Tenant, Job: s.Job, Rank: rank, Kernel: kernel, Detail: detail})
}

// RecordEvent appends a pre-built event (e.g. from the recovery package's
// constructors), stamping the scope's tenant and job over it.
func (s Scope) RecordEvent(ev Event) {
	if s.J == nil {
		return
	}
	ev.Tenant, ev.Job = s.Tenant, s.Job
	s.J.Record(ev)
}

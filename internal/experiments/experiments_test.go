package experiments

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cucc/internal/machine"
	"cucc/internal/suites"
)

// The tests below pin the paper-reported *shapes* of every figure: who
// wins, in which direction ratios move, and where scaling knees fall.
// Absolute values are recorded in EXPERIMENTS.md.

func TestFig1Shape(t *testing.T) {
	r := Fig1()
	if r.GPUMean < 20*r.CPUMean {
		t.Errorf("GPU mean wait %.3fh not >> CPU mean wait %.3fh", r.GPUMean, r.CPUMean)
	}
	if r.GPUMean < 1 {
		t.Errorf("GPU partitions should wait hours, got %.3fh", r.GPUMean)
	}
	if !strings.Contains(r.String(), "gpu-a100") {
		t.Error("report missing partitions")
	}
}

func TestFig3Shape(t *testing.T) {
	rows := Fig3(64 << 20)
	for _, r := range rows {
		if r.InPlaceSec > r.OutOfPlaceSec {
			t.Errorf("nodes=%d: in-place (%g) slower than out-of-place (%g)", r.Nodes, r.InPlaceSec, r.OutOfPlaceSec)
		}
		if r.InPlaceSec > r.ImbalancedSec {
			t.Errorf("nodes=%d: balanced (%g) slower than imbalanced (%g)", r.Nodes, r.InPlaceSec, r.ImbalancedSec)
		}
	}
}

func scalingFixture(t *testing.T) []ScalingRow {
	t.Helper()
	rows := Scaling(suites.All(), machine.Intel6226(), SIMDNodes)
	if len(rows) != 8 {
		t.Fatalf("got %d programs, want 8", len(rows))
	}
	return rows
}

func rowByName(t *testing.T, rows []ScalingRow, name string) ScalingRow {
	t.Helper()
	for _, r := range rows {
		if r.Program == name {
			return r
		}
	}
	t.Fatalf("program %s missing", name)
	return ScalingRow{}
}

func TestFig8Shapes(t *testing.T) {
	rows := scalingFixture(t)

	// FIR: near-linear scaling to 32 nodes (paper §7.2).
	fir := rowByName(t, rows, "FIR")
	if sp := fir.CuCCSec[0] / fir.CuCCSec[5]; sp < 20 {
		t.Errorf("FIR speedup@32 = %.1fx, want near-linear (>20x)", sp)
	}

	// Kmeans: gains up to 16 nodes, slower at 32 (the callback-wave
	// anomaly; paper §7.2).
	km := rowByName(t, rows, "Kmeans")
	sp16 := km.CuCCSec[0] / km.CuCCSec[4]
	sp32 := km.CuCCSec[0] / km.CuCCSec[5]
	if !(sp16 > sp32) {
		t.Errorf("Kmeans speedup@16 (%.2f) should exceed speedup@32 (%.2f)", sp16, sp32)
	}

	// Transpose: communication-limited, flattens early.
	tr := rowByName(t, rows, "Transpose")
	if sp := tr.CuCCSec[0] / tr.CuCCSec[5]; sp > 4 {
		t.Errorf("Transpose speedup@32 = %.1fx, should flatten below 4x", sp)
	}

	// Every program gains at 2 and 4 nodes (paper: "most kernels
	// demonstrate high scalability on 2-node and 4-node clusters").
	for _, r := range rows {
		if r.CuCCSec[1] >= r.CuCCSec[0] {
			t.Errorf("%s: no gain at 2 nodes", r.Program)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	rows := scalingFixture(t)
	tr := rowByName(t, rows, "Transpose")
	fir := rowByName(t, rows, "FIR")
	if tr.CommFrac[5] < 0.5 {
		t.Errorf("Transpose comm fraction @32 = %.2f, want dominant (>0.5)", tr.CommFrac[5])
	}
	if fir.CommFrac[5] > 0.10 {
		t.Errorf("FIR comm fraction @32 = %.2f, want negligible (<0.10)", fir.CommFrac[5])
	}
	// Overhead grows with cluster size for every program.
	for _, r := range rows {
		if r.CommFrac[5] < r.CommFrac[1] {
			t.Errorf("%s: comm fraction decreasing with cluster size", r.Program)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	rows := scalingFixture(t)
	sum := Fig10(rows)
	// CuCC wins on average and the gap grows with cluster size
	// (paper: 4.09x @2 -> 12.81x @32).
	if sum.AvgSpeedup2N < 2 {
		t.Errorf("avg speedup @2 nodes = %.2fx, want > 2x", sum.AvgSpeedup2N)
	}
	if sum.AvgSpeedup32N <= sum.AvgSpeedup2N {
		t.Errorf("speedup should grow with cluster size: %.2f @2 vs %.2f @32",
			sum.AvgSpeedup2N, sum.AvgSpeedup32N)
	}
	// Transpose is the outlier with the largest gap (paper §7.3).
	for _, r := range rows {
		if r.Program == "Transpose" {
			continue
		}
		ratio := r.PGASSec[5] / r.CuCCSec[5]
		if ratio > sum.TransposeSpeedup32N {
			t.Errorf("%s ratio %.1fx exceeds the Transpose outlier %.1fx", r.Program, ratio, sum.TransposeSpeedup32N)
		}
	}
	// GA and BinomialOption: similar runtimes (sparse writes; paper §7.3).
	for _, name := range []string{"GA", "BinomialOption"} {
		r := rowByName(t, rows, name)
		ratio := r.PGASSec[5] / r.CuCCSec[5]
		if ratio < 0.7 || ratio > 1.5 {
			t.Errorf("%s PGAS/CuCC @32 = %.2fx, want ~1x", name, ratio)
		}
	}
}

func TestFig11Shapes(t *testing.T) {
	rows := Fig11(suites.All())
	byName := map[string]Fig11Row{}
	for _, r := range rows {
		byName[r.Program] = r
	}

	// Transpose: CPU runtimes "close to or even better" than the GPUs
	// thanks to LLC capacity (paper §7.4.1): beat the V100, tie the A100.
	tr := byName["Transpose"]
	if tr.ThreadBestSec > tr.V100Sec {
		t.Errorf("Transpose: Thread-Focused (%.2fms) should beat V100 (%.2fms)", tr.ThreadBestSec*1e3, tr.V100Sec*1e3)
	}
	if tr.ThreadBestSec > tr.A100Sec*1.1 {
		t.Errorf("Transpose: Thread-Focused (%.2fms) should at least tie A100 (%.2fms)", tr.ThreadBestSec*1e3, tr.A100Sec*1e3)
	}
	if tr.SIMDBestSec > tr.V100Sec*1.5 {
		t.Errorf("Transpose: SIMD-Focused (%.2fms) should be close to V100 (%.2fms)", tr.SIMDBestSec*1e3, tr.V100Sec*1e3)
	}

	// BinomialOption: the 4-node Thread-Focused cluster outperforms both
	// GPUs (paper §7.4.1).
	bo := byName["BinomialOption"]
	if bo.ThreadBestSec > bo.A100Sec || bo.ThreadBestSec > bo.V100Sec {
		t.Errorf("BinomialOption: Thread-Focused (%.2fms) should beat A100 (%.2fms) and V100 (%.2fms)",
			bo.ThreadBestSec*1e3, bo.A100Sec*1e3, bo.V100Sec*1e3)
	}

	// EP and GA: GPUs win by roughly 5-10x (paper §7.4.1).
	for _, name := range []string{"EP", "GA"} {
		r := byName[name]
		best := min(r.SIMDBestSec, r.ThreadBestSec)
		ratio := best / r.A100Sec
		if ratio < 3 || ratio > 20 {
			t.Errorf("%s: best CPU / A100 = %.1fx, want GPU winning ~5-10x", name, ratio)
		}
	}

	// Geomean slowdowns in the paper's neighborhood (same order).
	g := Geomeans(rows)
	check := func(name string, got float64, lo, hi float64) {
		if got < lo || got > hi {
			t.Errorf("%s geomean = %.2fx, want in [%.1f, %.1f]", name, got, lo, hi)
		}
	}
	check("SIMD vs V100", g.SIMDvsV100, 1.0, 6)
	check("SIMD vs A100", g.SIMDvsA100, 1.2, 8)
	check("Thread vs V100", g.ThreadvsV100, 1.0, 4)
	check("Thread vs A100", g.ThreadvsA100, 1.2, 5)
}

func TestFig12Shape(t *testing.T) {
	rs, avg := Fig12(suites.All())
	if len(rs) != 8 {
		t.Fatalf("got %d programs", len(rs))
	}
	for _, r := range rs {
		if r.Ratio <= 1 {
			t.Errorf("%s: adding CPUs reduced throughput (%.2fx)", r.Name, r.Ratio)
		}
	}
	// Paper average: 3.59x (abstract headline 2.59x).
	if avg < 2 || avg > 8 {
		t.Errorf("average throughput gain = %.2fx, want in the paper's neighborhood [2, 8]", avg)
	}
}

func TestFig13Shape(t *testing.T) {
	rows := Fig13(suites.All())
	for _, r := range rows {
		for i := range r.SIMDSec {
			if r.ThreadSec[i] > r.SIMDSec[i]*1.05 {
				t.Errorf("%s @%d nodes: Thread-Focused (%.3fms) slower than SIMD-Focused (%.3fms); paper finds thread parallelism wins at iso-FLOPs",
					r.Program, ThreadNodes[i], r.ThreadSec[i]*1e3, r.SIMDSec[i]*1e3)
			}
		}
	}
	// BinomialOption has the largest single-node gap (paper: 55x; our
	// first-order model reproduces the direction, not the magnitude).
	var boRatio, maxOther float64
	for _, r := range rows {
		ratio := r.SIMDSec[0] / r.ThreadSec[0]
		if r.Program == "BinomialOption" {
			boRatio = ratio
		} else if r.Program != "Transpose" && ratio > maxOther {
			// Transpose's LLC-residency effect is a different mechanism.
			maxOther = ratio
		}
	}
	if boRatio < maxOther*0.9 {
		t.Errorf("BinomialOption ratio %.2fx should be among the largest (max other %.2fx)", boRatio, maxOther)
	}
}

func TestTable1String(t *testing.T) {
	s := Table1String()
	for _, want := range []string{"SIMD-Focused", "Thread-Focused", "4.15", "8.19", "19.50", "NVIDIA V100"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestReportStringsRender(t *testing.T) {
	rows := scalingFixture(t)
	for _, s := range []string{
		SpeedupString(rows, "test"),
		Fig9String(rows),
		Fig10(rows).String(),
		Fig3String(Fig3(1 << 20)),
		Fig11String(Fig11(suites.All())),
		Fig13String(Fig13(suites.All())),
	} {
		if len(s) < 100 {
			t.Errorf("suspiciously short report: %q", s)
		}
	}
}

func TestEnergyShape(t *testing.T) {
	rows := Energy(suites.All())
	if len(rows) != 8 {
		t.Fatalf("got %d rows", len(rows))
	}
	var cpuWins int
	for _, r := range rows {
		if r.CPUJoules <= 0 || r.GPUJoules <= 0 || r.CPUNodes < 1 {
			t.Errorf("%s: degenerate row %+v", r.Program, r)
		}
		if r.CPUDollarsPerK <= 0 || r.GPUDollarsPerK <= 0 {
			t.Errorf("%s: non-positive cost", r.Program)
		}
		if r.CPUJoules < r.GPUJoules {
			cpuWins++
		}
	}
	// GPUs are generally more energy-efficient per instance (§8.4 argues
	// availability/cost, not energy superiority); the CPU should not win
	// on energy across the board.
	if cpuWins > len(rows)/2 {
		t.Errorf("CPU more energy-efficient on %d/%d programs; expected GPUs to mostly win", cpuWins, len(rows))
	}
	if s := EnergyString(rows); !strings.Contains(s, "energy ratio") {
		t.Errorf("report malformed:\n%s", s)
	}
}

func TestWriteCSVs(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCSVs(dir, suites.All()); err != nil {
		t.Fatal(err)
	}
	for _, name := range CSVFiles() {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		recs, err := csv.NewReader(strings.NewReader(string(raw))).ReadAll()
		if err != nil {
			t.Fatalf("%s: bad CSV: %v", name, err)
		}
		if len(recs) < 2 {
			t.Errorf("%s: only %d rows", name, len(recs))
		}
		for i, rec := range recs[1:] {
			if len(rec) != len(recs[0]) {
				t.Errorf("%s row %d: %d fields, header has %d", name, i, len(rec), len(recs[0]))
			}
		}
	}
}

func TestSIMDOffAblation(t *testing.T) {
	rows := SIMDOff(suites.All())
	byName := map[string]SIMDOffRow{}
	for _, r := range rows {
		byName[r.Program] = r
		if r.Slowdown < 0.999 {
			t.Errorf("%s: disabling SIMD sped things up (%.2fx)", r.Program, r.Slowdown)
		}
	}
	// Vectorizable compute-bound kernels collapse without SIMD.
	for _, name := range []string{"FIR", "MatMul", "Conv2D"} {
		if byName[name].Slowdown < 5 {
			t.Errorf("%s: slowdown %.1fx, want large (vectorizable kernel)", name, byName[name].Slowdown)
		}
	}
	// Dependence-bound kernels barely move.
	for _, name := range []string{"BinomialOption", "EP"} {
		if byName[name].Slowdown > 2 {
			t.Errorf("%s: slowdown %.1fx, want small (serial kernel)", name, byName[name].Slowdown)
		}
	}
	if s := SIMDOffString(rows); !strings.Contains(s, "slowdown") {
		t.Error("report malformed")
	}
}

func TestWeakScaling(t *testing.T) {
	rows := WeakScaling(suites.All(), []int{1, 2, 4, 8})
	if len(rows) < 5 {
		t.Fatalf("only %d programs participate", len(rows))
	}
	byName := map[string]WeakRow{}
	for _, r := range rows {
		byName[r.Program] = r
		for i, e := range r.Efficiency {
			if e <= 0 || e > 1.2 {
				t.Errorf("%s @%d nodes: efficiency %.2f out of range", r.Program, r.Nodes[i], e)
			}
		}
	}
	// Compute-bound FIR holds high weak-scaling efficiency; the
	// communication-bound programs decay.
	if e := byName["FIR"].Efficiency[3]; e < 0.8 {
		t.Errorf("FIR weak efficiency @8 = %.2f, want >= 0.8", e)
	}
	if s := WeakScalingString(rows); !strings.Contains(s, "perfect") {
		t.Error("report malformed")
	}
}

package experiments

import (
	"fmt"
	"strings"

	"cucc/internal/core"
	"cucc/internal/gpu"
	"cucc/internal/machine"
	"cucc/internal/simnet"
	"cucc/internal/suites"
)

// Section 8.4 of the paper argues that migrating batch work onto idle CPU
// nodes is attractive on cost/energy grounds: idle CPUs burn power anyway,
// and clouds sell the capacity at spot discounts.  This experiment
// quantifies both angles with the hardware models' TDP budgets and typical
// spot prices.

// Spot prices per hour (typical 2024-era cloud spot rates).
const (
	// CPUSpotPerNodeHour prices a 128-core EPYC node at spot discount.
	CPUSpotPerNodeHour = 1.20
	// GPUSpotPerA100Hour prices one A100 at spot discount.
	GPUSpotPerA100Hour = 1.10
)

// EnergyRow compares one program's energy and cost per completed instance.
type EnergyRow struct {
	Program string
	// CPUNodes is the throughput-optimal Thread-Focused sub-cluster size.
	CPUNodes int
	// CPUJoules / GPUJoules is energy per completed instance.
	CPUJoules float64
	GPUJoules float64
	// CPUDollarsPerK / GPUDollarsPerK is spot cost per 1000 instances.
	CPUDollarsPerK float64
	GPUDollarsPerK float64
}

// Energy evaluates the §8.4 comparison: per completed program instance,
// the energy and spot cost of the throughput-optimal Thread-Focused
// sub-cluster versus one A100.
func Energy(progs []*suites.Program) []EnergyRow {
	net := simnet.IB100()
	m := machine.AMD7713()
	a100 := gpu.A100()
	rows := make([]EnergyRow, 0, len(progs))
	for _, p := range progs {
		row := EnergyRow{Program: p.Name}
		// Throughput-optimal size: maximize (1/k)/t_k, i.e. minimize k*t_k.
		bestKT := 0.0
		for _, k := range ThreadNodes {
			st := CuCCStats(p, m, net, k, machine.DefaultConfig())
			kt := float64(k) * st.TotalSec
			if row.CPUNodes == 0 || kt < bestKT {
				bestKT = kt
				row.CPUNodes = k
			}
		}
		gpuSec := GPUTime(p, a100)
		row.CPUJoules = bestKT * m.TDPWatts
		row.GPUJoules = gpuSec * a100.TDPWatts
		row.CPUDollarsPerK = bestKT / 3600 * CPUSpotPerNodeHour * 1000
		row.GPUDollarsPerK = gpuSec / 3600 * GPUSpotPerA100Hour * 1000
		rows = append(rows, row)
	}
	return rows
}

// EnergyString renders the §8.4 comparison.
func EnergyString(rows []EnergyRow) string {
	var b strings.Builder
	b.WriteString("§8.4: energy and spot cost per completed instance (Thread-Focused vs A100)\n")
	fmt.Fprintf(&b, "  %-15s %6s %12s %12s %14s %14s\n",
		"program", "nodes", "CPU J", "GPU J", "CPU $/1000", "GPU $/1000")
	var cpuE, gpuE float64
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-15s %6d %12.3f %12.3f %14.4f %14.4f\n",
			r.Program, r.CPUNodes, r.CPUJoules, r.GPUJoules, r.CPUDollarsPerK, r.GPUDollarsPerK)
		cpuE += r.CPUJoules
		gpuE += r.GPUJoules
	}
	fmt.Fprintf(&b, "  total energy ratio CPU/GPU: %.2fx — idle-CPU spot capacity trades energy for\n", cpuE/gpuE)
	b.WriteString("  availability, the paper's §8.4 argument (GPUs stay more energy-efficient per\n")
	b.WriteString("  instance; the CPUs were otherwise idle and discounted).\n")
	return b.String()
}

// SIMDOffRow is the §8.2 vectorization ablation for one program.
type SIMDOffRow struct {
	Program  string
	OnSec    float64
	OffSec   float64
	Slowdown float64
}

// SIMDOff reruns every program on a single SIMD-Focused node with vector
// execution disabled (paper §8.2 measured Transpose slowing 61.66x on the
// SIMD CPU and not at all on the Thread CPU; our first-order model shows
// the same split between vectorizable and dependence-bound kernels).
func SIMDOff(progs []*suites.Program) []SIMDOffRow {
	net := simnet.IB100()
	m := machine.Intel6226()
	rows := make([]SIMDOffRow, 0, len(progs))
	for _, p := range progs {
		on := CuCCStats(p, m, net, 1, machine.ExecConfig{SIMD: true})
		off := CuCCStats(p, m, net, 1, machine.ExecConfig{SIMD: false})
		rows = append(rows, SIMDOffRow{
			Program:  p.Name,
			OnSec:    on.TotalSec,
			OffSec:   off.TotalSec,
			Slowdown: off.TotalSec / on.TotalSec,
		})
	}
	return rows
}

// SIMDOffString renders the ablation.
func SIMDOffString(rows []SIMDOffRow) string {
	var b strings.Builder
	b.WriteString("§8.2 ablation: SIMD disabled on the SIMD-Focused node (single node)\n")
	fmt.Fprintf(&b, "  %-15s %12s %12s %10s\n", "program", "SIMD on", "SIMD off", "slowdown")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-15s %10.2fms %10.2fms %9.2fx\n",
			r.Program, r.OnSec*1e3, r.OffSec*1e3, r.Slowdown)
	}
	return b.String()
}

// WeakRow is one program's weak-scaling sweep: total work grows linearly
// with node count, so perfect scaling keeps runtime flat (efficiency 1).
type WeakRow struct {
	Program    string
	Nodes      []int
	Sec        []float64
	Efficiency []float64
}

// WeakScaling complements the paper's strong-scaling evaluation: each
// program's WeakKey parameter scales with the node count on the
// SIMD-Focused cluster.  Quadratic-size kernels (Transpose, MatMul) are
// excluded.
func WeakScaling(progs []*suites.Program, nodes []int) []WeakRow {
	net := simnet.IB100()
	m := machine.Intel6226()
	rows := make([]WeakRow, 0, len(progs))
	for _, p := range progs {
		if p.WeakKey == "" {
			continue
		}
		row := WeakRow{Program: p.Name, Nodes: nodes}
		var base float64
		for _, n := range nodes {
			st := weakStats(p, m, net, n)
			if n == nodes[0] {
				base = st.TotalSec
			}
			row.Sec = append(row.Sec, st.TotalSec)
			row.Efficiency = append(row.Efficiency, base/st.TotalSec)
		}
		rows = append(rows, row)
	}
	return rows
}

func weakStats(p *suites.Program, m machine.CPU, net simnet.Model, n int) *core.Stats {
	c := newCluster(n, m, net)
	defer c.Close()
	sess := core.NewSession(c, p.Compiled)
	st, err := sess.Estimate(p.Spec(p.WeakParams(n)))
	if err != nil {
		panic(err)
	}
	return st
}

// WeakScalingString renders the sweep.
func WeakScalingString(rows []WeakRow) string {
	var b strings.Builder
	b.WriteString("weak scaling (work grows with nodes; 1.00 = perfect)\n")
	fmt.Fprintf(&b, "  %-15s", "program")
	for _, n := range rows[0].Nodes {
		fmt.Fprintf(&b, "  %5dN", n)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-15s", r.Program)
		for _, e := range r.Efficiency {
			fmt.Fprintf(&b, "  %5.2f", e)
		}
		b.WriteString("\n")
	}
	return b.String()
}

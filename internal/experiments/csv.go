package experiments

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"

	"cucc/internal/gpu"
	"cucc/internal/machine"
	"cucc/internal/suites"
)

// WriteCSVs regenerates every figure's data and writes one CSV per figure
// into dir (created if missing): the artifact-evaluation format for
// re-plotting the paper's charts.
func WriteCSVs(dir string, progs []*suites.Program) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, header []string, rows [][]string) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		w := csv.NewWriter(f)
		if err := w.Write(header); err != nil {
			return err
		}
		if err := w.WriteAll(rows); err != nil {
			return err
		}
		w.Flush()
		return w.Error()
	}
	ftoa := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

	// Figure 1.
	f1 := Fig1()
	var rows [][]string
	for _, s := range f1.Stats {
		kind := "cpu"
		if s.IsGPU {
			kind = "gpu"
		}
		rows = append(rows, []string{s.Partition, kind, strconv.Itoa(s.Jobs),
			ftoa(s.MeanWait), ftoa(s.MedianWait), ftoa(s.P90Wait)})
	}
	if err := write("fig1_waiting_times.csv",
		[]string{"partition", "kind", "jobs", "mean_wait_h", "median_wait_h", "p90_wait_h"}, rows); err != nil {
		return err
	}

	// Figure 3.
	rows = nil
	for _, r := range Fig3(64 << 20) {
		rows = append(rows, []string{strconv.Itoa(r.Nodes), ftoa(r.InPlaceSec),
			ftoa(r.OutOfPlaceSec), ftoa(r.ImbalancedSec), ftoa(r.RecursiveDoublingSec)})
	}
	if err := write("fig3_allgather_variants.csv",
		[]string{"nodes", "inplace_s", "outofplace_s", "imbalanced_s", "recdoubling_s"}, rows); err != nil {
		return err
	}

	// Figures 4, 8 (SIMD), 9, 10 share the SIMD scaling sweep.
	simdRows := Scaling(progs, machine.Intel6226(), SIMDNodes)
	rows = nil
	for _, r := range simdRows {
		for i, n := range r.Nodes {
			rows = append(rows, []string{r.Program, strconv.Itoa(n),
				ftoa(r.CuCCSec[i]), ftoa(r.PGASSec[i]), ftoa(r.CommFrac[i])})
		}
	}
	if err := write("fig4_8_9_10_simd_scaling.csv",
		[]string{"program", "nodes", "cucc_s", "pgas_s", "cucc_comm_frac"}, rows); err != nil {
		return err
	}

	// Figure 8 (Thread).
	threadRows := Scaling(progs, machine.AMD7713(), ThreadNodes)
	rows = nil
	for _, r := range threadRows {
		for i, n := range r.Nodes {
			rows = append(rows, []string{r.Program, strconv.Itoa(n), ftoa(r.CuCCSec[i])})
		}
	}
	if err := write("fig8_thread_scaling.csv",
		[]string{"program", "nodes", "cucc_s"}, rows); err != nil {
		return err
	}

	// Figure 7.
	rows = nil
	for _, c := range suites.CountCoverage() {
		rows = append(rows, []string{c.Suite, strconv.Itoa(c.Total), strconv.Itoa(c.Distributable),
			strconv.Itoa(c.Overlap), strconv.Itoa(c.Indirect)})
	}
	if err := write("fig7_coverage.csv",
		[]string{"suite", "total", "distributable", "overlapping_writes", "indirect"}, rows); err != nil {
		return err
	}

	// Figure 11.
	rows = nil
	for _, r := range Fig11(progs) {
		rows = append(rows, []string{r.Program,
			ftoa(r.SIMDBestSec), strconv.Itoa(r.SIMDBestNodes),
			ftoa(r.ThreadBestSec), strconv.Itoa(r.ThreadBestNodes),
			ftoa(r.V100Sec), ftoa(r.A100Sec)})
	}
	if err := write("fig11_cpu_vs_gpu.csv",
		[]string{"program", "simd_best_s", "simd_nodes", "thread_best_s", "thread_nodes", "v100_s", "a100_s"}, rows); err != nil {
		return err
	}

	// Figure 12.
	f12, avg := Fig12(progs)
	rows = nil
	for _, r := range f12 {
		rows = append(rows, []string{r.Name, ftoa(r.GPUOnly), ftoa(r.CPUOnly),
			ftoa(r.Combined), ftoa(r.Ratio), strconv.Itoa(r.BestClusterSize)})
	}
	rows = append(rows, []string{"AVERAGE", "", "", "", ftoa(avg), ""})
	if err := write("fig12_throughput.csv",
		[]string{"program", "gpu_only_per_s", "cpu_only_per_s", "combined_per_s", "ratio", "best_k"}, rows); err != nil {
		return err
	}

	// Figure 13.
	rows = nil
	for _, r := range Fig13(progs) {
		for i, n := range ThreadNodes {
			rows = append(rows, []string{r.Program, strconv.Itoa(n),
				ftoa(r.SIMDSec[i]), ftoa(r.ThreadSec[i])})
		}
	}
	if err := write("fig13_arch_comparison.csv",
		[]string{"program", "nodes", "simd_s", "thread64_s"}, rows); err != nil {
		return err
	}

	// §8.4 energy.
	rows = nil
	for _, r := range Energy(progs) {
		rows = append(rows, []string{r.Program, strconv.Itoa(r.CPUNodes),
			ftoa(r.CPUJoules), ftoa(r.GPUJoules), ftoa(r.CPUDollarsPerK), ftoa(r.GPUDollarsPerK)})
	}
	if err := write("sec84_energy.csv",
		[]string{"program", "cpu_nodes", "cpu_joules", "gpu_joules", "cpu_usd_per_1000", "gpu_usd_per_1000"}, rows); err != nil {
		return err
	}

	// Table 1.
	simd, thread := machine.Intel6226(), machine.AMD7713()
	rows = [][]string{
		{"SIMD-Focused", simd.Name, strconv.Itoa(simd.Year), strconv.Itoa(simd.Cores()), ftoa(simd.PeakTFLOPs())},
		{"Thread-Focused", thread.Name, strconv.Itoa(thread.Year), strconv.Itoa(thread.Cores()), ftoa(thread.PeakTFLOPs())},
	}
	for _, g := range []gpu.GPU{gpu.A100(), gpu.V100()} {
		rows = append(rows, []string{g.Name, g.Name, strconv.Itoa(g.Year), strconv.Itoa(g.SMs), ftoa(g.PeakTFLOPs)})
	}
	if err := write("table1_specs.csv",
		[]string{"cluster", "node", "year", "cores_or_sms", "peak_tflops"}, rows); err != nil {
		return err
	}
	return nil
}

// CSVFiles lists the files WriteCSVs produces.
func CSVFiles() []string {
	return []string{
		"fig1_waiting_times.csv",
		"fig3_allgather_variants.csv",
		"fig4_8_9_10_simd_scaling.csv",
		"fig7_coverage.csv",
		"fig8_thread_scaling.csv",
		"fig11_cpu_vs_gpu.csv",
		"fig12_throughput.csv",
		"fig13_arch_comparison.csv",
		"sec84_energy.csv",
		"table1_specs.csv",
	}
}

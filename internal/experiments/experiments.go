// Package experiments regenerates every table and figure of the paper's
// evaluation from this repository's implementations: it orchestrates the
// suites, the CuCC and PGAS runtimes, the hardware/network models, the
// scheduler simulator and the throughput model, and formats the results as
// the text tables printed by cmd/cuccbench and the repository benchmarks.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/gpu"
	"cucc/internal/machine"
	"cucc/internal/pgas"
	"cucc/internal/sched"
	"cucc/internal/simnet"
	"cucc/internal/suites"
	"cucc/internal/throughput"
)

// SIMDNodes and ThreadNodes are the paper's cluster sizes (Table 1).
var (
	SIMDNodes   = []int{1, 2, 4, 8, 16, 32}
	ThreadNodes = []int{1, 2, 4}
)

// newCluster builds a simulated cluster or panics (experiment
// configurations are static).
func newCluster(nodes int, m machine.CPU, net simnet.Model) *cluster.Cluster {
	c, err := cluster.New(cluster.Config{Nodes: nodes, Machine: m, Net: net})
	if err != nil {
		panic(err)
	}
	return c
}

// CuCCStats estimates one program's CuCC execution at paper scale.
func CuCCStats(p *suites.Program, m machine.CPU, net simnet.Model, nodes int, exec machine.ExecConfig) *core.Stats {
	c := newCluster(nodes, m, net)
	defer c.Close()
	sess := core.NewSession(c, p.Compiled)
	sess.Exec = exec
	st, err := sess.Estimate(p.Spec(p.Default))
	if err != nil {
		panic(fmt.Sprintf("%s @%d nodes: %v", p.Name, nodes, err))
	}
	return st
}

// PGASStats estimates one program's PGAS execution at paper scale.
func PGASStats(p *suites.Program, m machine.CPU, net simnet.Model, nodes int) *pgas.Result {
	c := newCluster(nodes, m, net)
	defer c.Close()
	sess := pgas.NewSession(c, p.Compiled)
	spec := p.Spec(p.Default)
	blocks := spec.Grid.Count()
	work, err := core.NewSession(c, p.Compiled).EstimateWork(spec)
	if err != nil {
		panic(err)
	}
	// Split the measured flops by the program's vectorizable fraction for
	// the CPU cost model (same convention as the CuCC path).
	return sess.Estimate(blocks, work, p.Traffic(p.Default, nodes))
}

// GPUTime estimates one program's runtime on a GPU at paper scale.
func GPUTime(p *suites.Program, g gpu.GPU) float64 {
	c := newCluster(1, machine.Intel6226(), simnet.IB100())
	defer c.Close()
	spec := p.Spec(p.Default)
	work, err := core.NewSession(c, p.Compiled).EstimateWork(spec)
	if err != nil {
		panic(err)
	}
	g.ComputeEff = p.GPUComputeEff
	g.MemEff = p.GPUMemEff
	return g.KernelTime(spec.Grid.Count(), work)
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// --- Figure 1 ---

// Fig1Result holds the scheduler-simulation outcome.
type Fig1Result struct {
	Stats            []sched.WaitStats
	CPUMean, GPUMean float64
}

// Fig1 simulates one week of the PACE-like partitions.
func Fig1() Fig1Result {
	stats := sched.SimulateAll(sched.PACEDefault(), 7, 42)
	cpu, gpuW := sched.Compare(stats)
	return Fig1Result{Stats: stats, CPUMean: cpu, GPUMean: gpuW}
}

func (r Fig1Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 1: job waiting times per partition (1 simulated week)\n")
	for _, s := range r.Stats {
		fmt.Fprintf(&b, "  %s\n", s)
	}
	fmt.Fprintf(&b, "  mean wait: CPU partitions %.2fh, GPU partitions %.2fh (%.1fx)\n",
		r.CPUMean, r.GPUMean, r.GPUMean/math.Max(r.CPUMean, 1e-9))
	return b.String()
}

// --- Figure 3 / §2.3: Allgather variants ---

// Fig3Row compares Allgather variants at one node count.
type Fig3Row struct {
	Nodes                int
	InPlaceSec           float64
	OutOfPlaceSec        float64
	ImbalancedSec        float64
	RecursiveDoublingSec float64
}

// Fig3 evaluates the variants for a fixed total payload.
func Fig3(totalBytes int64) []Fig3Row {
	net := simnet.IB100()
	var rows []Fig3Row
	for _, n := range []int{2, 4, 8, 16, 32} {
		per := totalBytes / int64(n)
		chunks := make([]int64, n)
		for i := range chunks {
			chunks[i] = per
		}
		// Imbalanced: first node holds 2x, second 0x (same total).
		imb := append([]int64(nil), chunks...)
		imb[0], imb[1] = 2*per, 0
		rows = append(rows, Fig3Row{
			Nodes:                n,
			InPlaceSec:           net.RingAllgather(n, per),
			OutOfPlaceSec:        net.RingAllgather(n, per) + net.OutOfPlacePenalty(totalBytes),
			ImbalancedSec:        net.AllgatherV(imb),
			RecursiveDoublingSec: net.RecursiveDoublingAllgather(n, per),
		})
	}
	return rows
}

// Fig3String renders the comparison.
func Fig3String(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString("Figure 3 / §2.3: Allgather variants (total payload fixed)\n")
	b.WriteString("  nodes  in-place    out-of-place  imbalanced  rec-doubling\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %5d  %9.3fms  %11.3fms  %9.3fms  %11.3fms\n",
			r.Nodes, r.InPlaceSec*1e3, r.OutOfPlaceSec*1e3, r.ImbalancedSec*1e3, r.RecursiveDoublingSec*1e3)
	}
	return b.String()
}

// --- Figures 4, 8, 9, 10: scaling and PGAS comparison ---

// ScalingRow is one program's runtime across cluster sizes.
type ScalingRow struct {
	Program string
	Nodes   []int
	// CuCCSec / PGASSec are runtimes per node count.
	CuCCSec []float64
	PGASSec []float64
	// CommFrac is the CuCC network-overhead fraction per node count
	// (Figure 9).
	CommFrac []float64
}

// Scaling computes CuCC and PGAS runtimes for every program over the node
// counts on the given machine (paper scale).
func Scaling(progs []*suites.Program, m machine.CPU, nodes []int) []ScalingRow {
	net := simnet.IB100()
	rows := make([]ScalingRow, 0, len(progs))
	for _, p := range progs {
		row := ScalingRow{Program: p.Name, Nodes: nodes}
		for _, n := range nodes {
			st := CuCCStats(p, m, net, n, machine.DefaultConfig())
			row.CuCCSec = append(row.CuCCSec, st.TotalSec)
			row.CommFrac = append(row.CommFrac, st.CommSec/st.TotalSec)
			pr := PGASStats(p, m, net, n)
			row.PGASSec = append(row.PGASSec, pr.TotalSec)
		}
		rows = append(rows, row)
	}
	return rows
}

// SpeedupString renders Figure 8: strong-scaling speedups over one node.
func SpeedupString(rows []ScalingRow, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (speedup over 1 node; runtime at 1 node)\n", title)
	fmt.Fprintf(&b, "  %-15s", "program")
	for _, n := range rows[0].Nodes {
		fmt.Fprintf(&b, "  %5dN", n)
	}
	b.WriteString("      t(1)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-15s", r.Program)
		for i := range r.Nodes {
			fmt.Fprintf(&b, "  %5.2fx", r.CuCCSec[0]/r.CuCCSec[i])
		}
		fmt.Fprintf(&b, "  %8.2fms\n", r.CuCCSec[0]*1e3)
	}
	return b.String()
}

// Fig9String renders the network overhead fractions.
func Fig9String(rows []ScalingRow) string {
	var b strings.Builder
	b.WriteString("Figure 9: network overhead fraction of CuCC runtime (SIMD-Focused)\n")
	fmt.Fprintf(&b, "  %-15s", "program")
	for _, n := range rows[0].Nodes {
		fmt.Fprintf(&b, "  %5dN", n)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-15s", r.Program)
		for i := range r.Nodes {
			fmt.Fprintf(&b, "  %5.1f%%", r.CommFrac[i]*100)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig10Summary is the headline CuCC-vs-PGAS comparison.
type Fig10Summary struct {
	Rows []ScalingRow
	// AvgSpeedup2N / AvgSpeedup32N are the mean PGAS/CuCC ratios with the
	// Transpose outlier excluded, as in the paper (4.09x and 12.81x).
	AvgSpeedup2N  float64
	AvgSpeedup32N float64
	// TransposeSpeedup32N is the excluded outlier's ratio.
	TransposeSpeedup32N float64
}

// Fig10 computes the PGAS comparison on the SIMD-Focused cluster.
func Fig10(rows []ScalingRow) Fig10Summary {
	s := Fig10Summary{Rows: rows}
	var at2, at32 []float64
	for _, r := range rows {
		i2, i32 := -1, -1
		for i, n := range r.Nodes {
			if n == 2 {
				i2 = i
			}
			if n == 32 {
				i32 = i
			}
		}
		if i2 < 0 || i32 < 0 {
			continue
		}
		ratio32 := r.PGASSec[i32] / r.CuCCSec[i32]
		if r.Program == "Transpose" {
			s.TransposeSpeedup32N = ratio32
			continue
		}
		at2 = append(at2, r.PGASSec[i2]/r.CuCCSec[i2])
		at32 = append(at32, ratio32)
	}
	s.AvgSpeedup2N = mean(at2)
	s.AvgSpeedup32N = mean(at32)
	return s
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

func (s Fig10Summary) String() string {
	var b strings.Builder
	b.WriteString("Figure 10: CuCC vs PGAS runtime ratio (PGAS/CuCC, SIMD-Focused)\n")
	fmt.Fprintf(&b, "  %-15s", "program")
	for _, n := range s.Rows[0].Nodes {
		fmt.Fprintf(&b, "  %7dN", n)
	}
	b.WriteString("\n")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "  %-15s", r.Program)
		for i := range r.Nodes {
			fmt.Fprintf(&b, "  %7.2fx", r.PGASSec[i]/r.CuCCSec[i])
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  avg speedup excl. Transpose: %.2fx @2 nodes, %.2fx @32 nodes (paper: 4.09x, 12.81x)\n",
		s.AvgSpeedup2N, s.AvgSpeedup32N)
	fmt.Fprintf(&b, "  Transpose outlier @32 nodes: %.0fx\n", s.TransposeSpeedup32N)
	return b.String()
}

// --- Figure 11: CPU clusters vs GPUs ---

// Fig11Row compares one program's best CPU-cluster runtime against GPUs.
type Fig11Row struct {
	Program         string
	SIMDBestSec     float64
	SIMDBestNodes   int
	ThreadBestSec   float64
	ThreadBestNodes int
	V100Sec         float64
	A100Sec         float64
}

// Fig11 computes the runtime comparison (best cluster size per platform,
// as the paper reports).
func Fig11(progs []*suites.Program) []Fig11Row {
	net := simnet.IB100()
	rows := make([]Fig11Row, 0, len(progs))
	for _, p := range progs {
		row := Fig11Row{Program: p.Name}
		row.SIMDBestSec, row.SIMDBestNodes = bestTime(p, machine.Intel6226(), net, SIMDNodes)
		row.ThreadBestSec, row.ThreadBestNodes = bestTime(p, machine.AMD7713(), net, ThreadNodes)
		row.V100Sec = GPUTime(p, gpu.V100())
		row.A100Sec = GPUTime(p, gpu.A100())
		rows = append(rows, row)
	}
	return rows
}

func bestTime(p *suites.Program, m machine.CPU, net simnet.Model, nodes []int) (float64, int) {
	best, bestN := math.Inf(1), 0
	for _, n := range nodes {
		st := CuCCStats(p, m, net, n, machine.DefaultConfig())
		if st.TotalSec < best {
			best, bestN = st.TotalSec, n
		}
	}
	return best, bestN
}

// Fig11Geomeans summarizes slowdowns versus each GPU.
type Fig11Geomeans struct {
	SIMDvsV100, SIMDvsA100     float64
	ThreadvsV100, ThreadvsA100 float64
}

// Geomeans computes the paper's headline slowdown factors.
func Geomeans(rows []Fig11Row) Fig11Geomeans {
	var sv, sa, tv, ta []float64
	for _, r := range rows {
		sv = append(sv, r.SIMDBestSec/r.V100Sec)
		sa = append(sa, r.SIMDBestSec/r.A100Sec)
		tv = append(tv, r.ThreadBestSec/r.V100Sec)
		ta = append(ta, r.ThreadBestSec/r.A100Sec)
	}
	return Fig11Geomeans{
		SIMDvsV100: geomean(sv), SIMDvsA100: geomean(sa),
		ThreadvsV100: geomean(tv), ThreadvsA100: geomean(ta),
	}
}

// Fig11String renders the comparison.
func Fig11String(rows []Fig11Row) string {
	var b strings.Builder
	b.WriteString("Figure 11: best CPU-cluster runtime vs GPUs\n")
	fmt.Fprintf(&b, "  %-15s %14s %16s %12s %12s\n", "program", "SIMD (nodes)", "Thread (nodes)", "V100", "A100")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-15s %9.2fms(%2d) %11.2fms(%2d) %10.2fms %10.2fms\n",
			r.Program, r.SIMDBestSec*1e3, r.SIMDBestNodes,
			r.ThreadBestSec*1e3, r.ThreadBestNodes, r.V100Sec*1e3, r.A100Sec*1e3)
	}
	g := Geomeans(rows)
	fmt.Fprintf(&b, "  geomean slowdown: SIMD %.2fx/%.2fx vs V100/A100 (paper 2.55/4.14); Thread %.2fx/%.2fx (paper 1.57/2.54)\n",
		g.SIMDvsV100, g.SIMDvsA100, g.ThreadvsV100, g.ThreadvsA100)
	return b.String()
}

// --- Figure 12: cluster-wide throughput ---

// Fig12 evaluates Lonestar6-wide throughput for every program.
func Fig12(progs []*suites.Program) ([]throughput.Result, float64) {
	net := simnet.IB100()
	inv := throughput.Lonestar6()
	perf := make([]throughput.ProgramPerf, 0, len(progs))
	for _, p := range progs {
		pp := throughput.ProgramPerf{
			Name:          p.Name,
			GPUSec:        GPUTime(p, gpu.A100()),
			CPUSecByNodes: map[int]float64{},
		}
		for _, n := range ThreadNodes {
			st := CuCCStats(p, machine.AMD7713(), net, n, machine.DefaultConfig())
			pp.CPUSecByNodes[n] = st.TotalSec
		}
		perf = append(perf, pp)
	}
	return throughput.EvaluateAll(inv, perf)
}

// Fig12String renders the throughput comparison.
func Fig12String(rs []throughput.Result, avg float64) string {
	var b strings.Builder
	b.WriteString("Figure 12: Lonestar6 cluster-wide throughput, GPUs vs GPUs+CPUs\n")
	for _, r := range rs {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	fmt.Fprintf(&b, "  average throughput gain: %.2fx (paper: 3.59x; abstract headline 2.59x)\n", avg)
	return b.String()
}

// --- Figure 13 / §8.2: iso-FLOP architecture comparison ---

// Fig13Row compares the two architectures at equal peak FLOPs.
type Fig13Row struct {
	Program   string
	SIMDSec   []float64 // per node count 1,2,4
	ThreadSec []float64 // 64-core capped
}

// Fig13 runs the §8.2 comparison: Thread-Focused nodes capped at 64 cores
// (4.096 TFLOPs) vs SIMD-Focused nodes (4.147 TFLOPs).
func Fig13(progs []*suites.Program) []Fig13Row {
	net := simnet.IB100()
	capped := machine.ExecConfig{SIMD: true, CoresCap: 64}
	rows := make([]Fig13Row, 0, len(progs))
	for _, p := range progs {
		row := Fig13Row{Program: p.Name}
		for _, n := range ThreadNodes {
			s := CuCCStats(p, machine.Intel6226(), net, n, machine.DefaultConfig())
			t := CuCCStats(p, machine.AMD7713(), net, n, capped)
			row.SIMDSec = append(row.SIMDSec, s.TotalSec)
			row.ThreadSec = append(row.ThreadSec, t.TotalSec)
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig13String renders the iso-FLOP comparison with per-size geomeans.
func Fig13String(rows []Fig13Row) string {
	var b strings.Builder
	b.WriteString("Figure 13 / §8.2: SIMD-Focused vs Thread-Focused (64-core cap), ratio SIMD/Thread\n")
	fmt.Fprintf(&b, "  %-15s %7s %7s %7s\n", "program", "1N", "2N", "4N")
	ratios := make([][]float64, len(ThreadNodes))
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-15s", r.Program)
		for i := range ThreadNodes {
			ratio := r.SIMDSec[i] / r.ThreadSec[i]
			ratios[i] = append(ratios[i], ratio)
			fmt.Fprintf(&b, " %6.2fx", ratio)
		}
		b.WriteString("\n")
	}
	b.WriteString("  geomean: ")
	for i, n := range ThreadNodes {
		fmt.Fprintf(&b, "%dN %.2fx  ", n, geomean(ratios[i]))
	}
	b.WriteString("(paper: 4.61/4.66/4.32)\n")
	return b.String()
}

// --- Table 1 ---

// Table1String renders the cluster specifications.
func Table1String() string {
	var b strings.Builder
	b.WriteString("Table 1: cluster specifications\n")
	fmt.Fprintf(&b, "  %-15s %-28s %5s %6s %7s\n", "name", "single node", "year", "cores", "TFLOPs")
	simd, thread := machine.Intel6226(), machine.AMD7713()
	fmt.Fprintf(&b, "  %-15s %-28s %5d %6d %7.2f\n", "SIMD-Focused", simd.Name, simd.Year, simd.Cores(), simd.PeakTFLOPs())
	fmt.Fprintf(&b, "  %-15s %-28s %5d %6d %7.2f\n", "Thread-Focused", thread.Name, thread.Year, thread.Cores(), thread.PeakTFLOPs())
	for _, g := range []gpu.GPU{gpu.A100(), gpu.V100()} {
		fmt.Fprintf(&b, "  %-15s %-28s %5d %6d %7.2f\n", g.Name, g.Name, g.Year, g.SMs, g.PeakTFLOPs)
	}
	return b.String()
}

// SortRowsByName orders scaling rows deterministically.
func SortRowsByName(rows []ScalingRow) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Program < rows[j].Program })
}

package prof

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"cucc/internal/obs"
	"cucc/internal/trace"
)

// PostmortemReport is a rendered flight-recorder dump: the dump itself
// plus the trace diagnosis (the same critical-path analysis cuccprof runs
// on live traces, applied to the job's retained window).
type PostmortemReport struct {
	Dump *obs.Dump `json:"dump"`
	// Diagnosis is the trace analysis of the dump's timeline (nil when the
	// dump carried no trace events).
	Diagnosis *Report `json:"diagnosis,omitempty"`
}

// AnalyzePostmortem turns a parsed flight-recorder dump into a report:
// the journal timeline is carried verbatim (it is already ordered by
// sequence number) and the trace window is run through Analyze.
func AnalyzePostmortem(d *obs.Dump) *PostmortemReport {
	rep := &PostmortemReport{Dump: d}
	if len(d.Trace) > 0 {
		evs := append([]trace.Event(nil), d.Trace...)
		diag := Analyze(evs, nil)
		diag.DroppedEvents = d.TraceDropped
		rep.Diagnosis = diag
	}
	return rep
}

// JSON serializes the post-mortem report.
func (p *PostmortemReport) JSON() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// metricHighlightPrefixes selects the dump-metrics counters worth
// surfacing in the text rendering: the recovery and launch lifecycles.
var metricHighlightPrefixes = []string{"recovery.", "core.launch."}

// Table renders the post-mortem as a failure timeline for terminals: the
// job identity and reason, the journal window (the causal chain: admit →
// dispatch → rank loss → restore → rejoin → outcome), the recovery/launch
// counters, then the standard trace diagnosis.
func (p *PostmortemReport) Table() string {
	d := p.Dump
	var b strings.Builder
	fmt.Fprintf(&b, "=== post-mortem: job %d (%s, %s) — %s ===\n", d.Job, d.Tenant, d.What, d.Reason)
	if d.Err != "" {
		fmt.Fprintf(&b, "error: %s\n", d.Err)
	}
	b.WriteString("\n--- event timeline ---\n")
	if len(d.Journal) == 0 {
		b.WriteString("(no journal events captured)\n")
	} else {
		b.WriteString(obs.ExportText(d.Journal))
	}

	var names []string
	for n := range d.Metrics.Counters {
		for _, p := range metricHighlightPrefixes {
			if strings.HasPrefix(n, p) {
				names = append(names, n)
				break
			}
		}
	}
	if len(names) > 0 {
		sort.Strings(names)
		b.WriteString("\n--- recovery / launch counters ---\n")
		for _, n := range names {
			fmt.Fprintf(&b, "%-42s %d\n", n, d.Metrics.Counters[n])
		}
	}

	if p.Diagnosis != nil {
		b.WriteString("\n--- trace diagnosis ---\n")
		b.WriteString(p.Diagnosis.Table())
	}
	return b.String()
}

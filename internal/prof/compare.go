package prof

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"cucc/internal/metrics"
)

// BenchSchemaVersion is the engine-benchmark report schema cuccprof
// understands.  Version 0 is the pre-schema legacy format (no schema_version
// or config block); comparisons involving a legacy report proceed with a
// warning instead of a refusal, since the row format is unchanged.
// Version 2 added the vm-lanes engine rows and the vm_lanes_over_vm speedup
// column; the row format is still compatible, so cross-version comparisons
// warn and match keys instead of refusing.
// Version 3 added the service rows (cuccd load-generator measurements:
// qps, latency quantiles, reject rate per scenario/rate point); engine rows
// are unchanged, so v2-vs-v3 comparisons warn and the service keys appear
// under only-new.
// Version 4 added SLO attainment and error-budget burn to the service rows
// (slo_attainment, slo_burn); the columns are optional (omitempty) and the
// SLO comparison rows are only produced when both sides carry them, so
// v3-vs-v4 comparisons warn and diff the shared figures.
const BenchSchemaVersion = 4

// BenchConfig pins the run configuration a benchmark report was produced
// under.  Two reports with differing configs measure different things, so
// CompareBench refuses to diff them.
type BenchConfig struct {
	Engines   []string `json:"engines"`
	Workers   int      `json:"workers"`
	Nodes     int      `json:"nodes"`
	FaultSeed int64    `json:"fault_seed"`
}

// BenchResult mirrors one (program, engine) row of a cuccbench -json report.
type BenchResult struct {
	Program      string  `json:"program"`
	Kernel       string  `json:"kernel"`
	Engine       string  `json:"engine"`
	Workers      int     `json:"workers"`
	Blocks       int     `json:"blocks"`
	Iters        int     `json:"iters"`
	NsPerOp      int64   `json:"ns_per_op"`
	BlocksPerSec float64 `json:"blocks_per_sec"`
}

// ServiceResult is one service-level row of a schema-v3 report: what the
// cuccd daemon sustained under one load-generator scenario at one target
// rate (see serve.ServiceBench).
type ServiceResult struct {
	// Scenario names the load mix (e.g. "2tenant-vecadd-fir").
	Scenario string `json:"scenario"`
	// TargetRate is the offered Poisson rate (jobs/sec).
	TargetRate float64 `json:"target_rate"`
	Offered    int     `json:"offered"`
	Completed  int     `json:"completed"`
	Rejected   int     `json:"rejected"`
	// QPS is the measured completion rate.
	QPS float64 `json:"qps"`
	// Latency quantiles over completed jobs, milliseconds.
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	// RejectRate is rejected / offered (admission backpressure).
	RejectRate float64 `json:"reject_rate"`
	// SLOAttainment is the fraction of requests meeting the scenario's
	// latency objective (schema v4; 0 when the report predates it).
	SLOAttainment float64 `json:"slo_attainment,omitempty"`
	// SLOBurn is the error-budget burn rate over the run:
	// (1-attainment)/(1-target) (schema v4).
	SLOBurn float64 `json:"slo_burn,omitempty"`
}

// BenchReport mirrors the cuccbench -json engine-benchmark report.
type BenchReport struct {
	SchemaVersion int           `json:"schema_version"`
	Date          string        `json:"date"`
	Workers       int           `json:"workers"`
	Config        *BenchConfig  `json:"config,omitempty"`
	Results       []BenchResult `json:"results"`
	// Service holds the schema-v3 service-level rows (absent before v3).
	Service []ServiceResult `json:"service,omitempty"`
}

// ParseBenchReport loads a cuccbench -json report.
func ParseBenchReport(data []byte) (*BenchReport, error) {
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("prof: not a bench report: %w", err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("prof: bench report has no results")
	}
	if rep.SchemaVersion > BenchSchemaVersion {
		return nil, fmt.Errorf("prof: bench report schema v%d is newer than this tool understands (v%d)",
			rep.SchemaVersion, BenchSchemaVersion)
	}
	return &rep, nil
}

// CompareRow is one matched key across two reports.
type CompareRow struct {
	Key string `json:"key"`
	Old float64 `json:"old"`
	New float64 `json:"new"`
	// DeltaFrac is (new-old)/old; positive means the figure grew.
	DeltaFrac float64 `json:"delta_frac"`
	// Regression marks growth beyond the comparison threshold in a
	// figure where growth is bad (ns/op, simulated seconds).
	Regression bool `json:"regression"`
}

// Comparison is the diff of two reports (bench or metrics).
type Comparison struct {
	Kind      string       `json:"kind"` // "bench" or "metrics"
	Threshold float64      `json:"threshold"`
	Rows      []CompareRow `json:"rows"`
	// OnlyOld / OnlyNew list keys present in one report but not the other.
	OnlyOld []string `json:"only_old,omitempty"`
	OnlyNew []string `json:"only_new,omitempty"`
	// Warnings carries non-fatal caveats (e.g. legacy schema).
	Warnings []string `json:"warnings,omitempty"`
}

// Regressions counts the rows flagged as regressions.
func (c *Comparison) Regressions() int {
	n := 0
	for _, r := range c.Rows {
		if r.Regression {
			n++
		}
	}
	return n
}

// CompareBench diffs two engine-benchmark reports keyed by
// (program, engine).  threshold is the fractional ns/op growth tolerated
// before a row counts as a regression (0.10 = 10%).  Reports produced under
// different workers/nodes/fault-seed configs are refused — the numbers would
// not be comparable.  Schema-version and engine-list differences only warn:
// rows are matched by key, and engines present on one side only land in
// OnlyOld/OnlyNew, so a report that grew a new engine still diffs cleanly
// against its predecessor.
func CompareBench(old, new *BenchReport, threshold float64) (*Comparison, error) {
	if err := configMismatch(old, new); err != nil {
		return nil, err
	}
	cmp := &Comparison{Kind: "bench", Threshold: threshold}
	if old.SchemaVersion == 0 || new.SchemaVersion == 0 {
		cmp.Warnings = append(cmp.Warnings,
			"one report predates schema_version: run config not cross-checked")
	} else if old.SchemaVersion != new.SchemaVersion {
		cmp.Warnings = append(cmp.Warnings, fmt.Sprintf(
			"schema versions differ (old v%d, new v%d): matching rows by key",
			old.SchemaVersion, new.SchemaVersion))
	}
	if w := engineListDiff(old, new); w != "" {
		cmp.Warnings = append(cmp.Warnings, w)
	}
	key := func(r BenchResult) string { return r.Program + "/" + r.Engine }
	oldBy := map[string]BenchResult{}
	for _, r := range old.Results {
		oldBy[key(r)] = r
	}
	seen := map[string]bool{}
	for _, nr := range new.Results {
		k := key(nr)
		seen[k] = true
		or, ok := oldBy[k]
		if !ok {
			cmp.OnlyNew = append(cmp.OnlyNew, k)
			continue
		}
		row := CompareRow{Key: k, Old: float64(or.NsPerOp), New: float64(nr.NsPerOp)}
		if or.NsPerOp > 0 {
			row.DeltaFrac = (row.New - row.Old) / row.Old
		}
		row.Regression = row.DeltaFrac > threshold
		cmp.Rows = append(cmp.Rows, row)
	}
	for k := range oldBy {
		if !seen[k] {
			cmp.OnlyOld = append(cmp.OnlyOld, k)
		}
	}
	compareService(cmp, old, new, threshold)
	cmp.sortRows()
	return cmp, nil
}

// compareService diffs the schema-v3 service rows, keyed by scenario and
// target rate.  Each point contributes two figures with opposite polarity:
// p99 latency (growth beyond the threshold is a regression) and measured
// QPS (shrink beyond the threshold is a regression).  Reject rate is
// reported but never flagged — under an over-saturating sweep point a high
// reject rate is the backpressure design working, not a fault.
func compareService(cmp *Comparison, old, new *BenchReport, threshold float64) {
	key := func(r ServiceResult) string { return fmt.Sprintf("service:%s@%g", r.Scenario, r.TargetRate) }
	oldBy := map[string]ServiceResult{}
	for _, r := range old.Service {
		oldBy[key(r)] = r
	}
	seen := map[string]bool{}
	for _, nr := range new.Service {
		k := key(nr)
		seen[k] = true
		or, ok := oldBy[k]
		if !ok {
			cmp.OnlyNew = append(cmp.OnlyNew, k)
			continue
		}
		p99 := CompareRow{Key: k + "/p99_ms", Old: or.P99Ms, New: nr.P99Ms}
		if or.P99Ms > 0 {
			p99.DeltaFrac = (p99.New - p99.Old) / p99.Old
		}
		p99.Regression = p99.DeltaFrac > threshold
		cmp.Rows = append(cmp.Rows, p99)

		qps := CompareRow{Key: k + "/qps", Old: or.QPS, New: nr.QPS}
		if or.QPS > 0 {
			qps.DeltaFrac = (qps.New - qps.Old) / qps.Old
		}
		qps.Regression = qps.DeltaFrac < -threshold
		cmp.Rows = append(cmp.Rows, qps)

		// SLO figures exist only from schema v4 on; require them on both
		// sides so a v3 baseline (attainment 0) never flags a false
		// regression.  Attainment shrink and burn growth are regressions.
		if or.SLOAttainment > 0 && nr.SLOAttainment > 0 {
			att := CompareRow{Key: k + "/slo_attainment", Old: or.SLOAttainment, New: nr.SLOAttainment}
			att.DeltaFrac = (att.New - att.Old) / att.Old
			att.Regression = att.DeltaFrac < -threshold
			cmp.Rows = append(cmp.Rows, att)

			burn := CompareRow{Key: k + "/slo_burn", Old: or.SLOBurn, New: nr.SLOBurn}
			if or.SLOBurn > 0 {
				burn.DeltaFrac = (burn.New - burn.Old) / burn.Old
				burn.Regression = burn.DeltaFrac > threshold
			} else if nr.SLOBurn > 0 {
				// A budget that was not burning and now is: always flag.
				burn.DeltaFrac = math.Inf(1)
				burn.Regression = true
			}
			cmp.Rows = append(cmp.Rows, burn)
		}
	}
	for k := range oldBy {
		if !seen[k] {
			cmp.OnlyOld = append(cmp.OnlyOld, k)
		}
	}
}

// engineListDiff reports (as a warning string, "" when equal) an engine-list
// difference between two reports.  Unlike workers/nodes/fault-seed, a
// differing engine set doesn't invalidate the shared rows — each row is a
// (program, engine) measurement on its own — so it warns instead of refusing.
func engineListDiff(old, new *BenchReport) string {
	a, b := old.Config, new.Config
	if a == nil || b == nil {
		return ""
	}
	if strings.Join(a.Engines, ",") != strings.Join(b.Engines, ",") {
		return fmt.Sprintf("engine sets differ (old %v, new %v): unshared engines appear under only-old/only-new",
			a.Engines, b.Engines)
	}
	return ""
}

func configMismatch(old, new *BenchReport) error {
	a, b := old.Config, new.Config
	if a == nil || b == nil {
		return nil // legacy report: nothing to cross-check
	}
	var diffs []string
	if a.Workers != b.Workers {
		diffs = append(diffs, fmt.Sprintf("workers %d vs %d", a.Workers, b.Workers))
	}
	if a.Nodes != b.Nodes {
		diffs = append(diffs, fmt.Sprintf("nodes %d vs %d", a.Nodes, b.Nodes))
	}
	if a.FaultSeed != b.FaultSeed {
		diffs = append(diffs, fmt.Sprintf("fault seed %d vs %d", a.FaultSeed, b.FaultSeed))
	}
	if len(diffs) > 0 {
		return fmt.Errorf("prof: run configs differ (%s): refusing to compare", strings.Join(diffs, "; "))
	}
	return nil
}

// CompareMetrics diffs two metrics snapshots (counters and gauges by name;
// histograms by count and sum).  Rows whose value moved by more than
// threshold in either direction are included; growth in time-like figures
// (names containing "seconds" or "nanos") beyond the threshold counts as a
// regression.
func CompareMetrics(old, new metrics.Snapshot, threshold float64) *Comparison {
	cmp := &Comparison{Kind: "metrics", Threshold: threshold}
	oldVals, newVals := flattenSnapshot(old), flattenSnapshot(new)
	seen := map[string]bool{}
	for k, nv := range newVals {
		seen[k] = true
		ov, ok := oldVals[k]
		if !ok {
			cmp.OnlyNew = append(cmp.OnlyNew, k)
			continue
		}
		row := CompareRow{Key: k, Old: ov, New: nv}
		switch {
		case ov != 0:
			row.DeltaFrac = (nv - ov) / math.Abs(ov)
		case nv != 0:
			row.DeltaFrac = math.Inf(1)
		}
		if math.Abs(row.DeltaFrac) <= threshold {
			continue
		}
		row.Regression = row.DeltaFrac > threshold && timeLike(k)
		cmp.Rows = append(cmp.Rows, row)
	}
	for k := range oldVals {
		if !seen[k] {
			cmp.OnlyOld = append(cmp.OnlyOld, k)
		}
	}
	cmp.sortRows()
	return cmp
}

func timeLike(name string) bool {
	return strings.Contains(name, "seconds") || strings.Contains(name, "nanos")
}

// flattenSnapshot reduces a snapshot to comparable scalars: counters and
// gauges as-is; each histogram contributes its count and sum.
func flattenSnapshot(s metrics.Snapshot) map[string]float64 {
	out := map[string]float64{}
	for k, v := range s.Counters {
		out[k] = float64(v)
	}
	for k, v := range s.Gauges {
		out[k] = v
	}
	for k, h := range s.Histograms {
		out[k+".count"] = float64(h.Count)
		out[k+".sum"] = h.Sum
	}
	return out
}

func (c *Comparison) sortRows() {
	// Worst regressions first, then by key for determinism.
	sort.SliceStable(c.Rows, func(i, j int) bool {
		a, b := c.Rows[i], c.Rows[j]
		if a.Regression != b.Regression {
			return a.Regression
		}
		if a.DeltaFrac != b.DeltaFrac {
			return a.DeltaFrac > b.DeltaFrac
		}
		return a.Key < b.Key
	})
	sort.Strings(c.OnlyOld)
	sort.Strings(c.OnlyNew)
}

// JSON serializes the comparison.
func (c *Comparison) JSON() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// Table renders the comparison for terminals.
func (c *Comparison) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s comparison (threshold %.0f%%) ===\n", c.Kind, c.Threshold*100)
	for _, w := range c.Warnings {
		fmt.Fprintf(&b, "warning: %s\n", w)
	}
	if len(c.Rows) == 0 {
		b.WriteString("no differences beyond threshold\n")
	} else {
		fmt.Fprintf(&b, "%-40s %15s %15s %9s\n", "key", "old", "new", "delta")
		for _, r := range c.Rows {
			tag := ""
			if r.Regression {
				tag = "  REGRESSION"
			}
			fmt.Fprintf(&b, "%-40s %15.4g %15.4g %+8.1f%%%s\n", r.Key, r.Old, r.New, r.DeltaFrac*100, tag)
		}
	}
	if len(c.OnlyOld) > 0 {
		fmt.Fprintf(&b, "only in old: %s\n", strings.Join(c.OnlyOld, ", "))
	}
	if len(c.OnlyNew) > 0 {
		fmt.Fprintf(&b, "only in new: %s\n", strings.Join(c.OnlyNew, ", "))
	}
	if n := c.Regressions(); n > 0 {
		fmt.Fprintf(&b, "%d regression(s) beyond %.0f%%\n", n, c.Threshold*100)
	}
	return b.String()
}

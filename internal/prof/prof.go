// Package prof turns recorded execution timelines (internal/trace) and run
// statistics (core.Stats) into a performance diagnosis: the critical path
// through the three-phase distributed workflow, per-phase load-imbalance and
// straggler attribution, and what-if estimates for the two levers the paper
// cares about (block balance and Allgather cost).
//
// The analysis consumes the same events the Chrome trace export carries, so
// it works identically on a live Recorder and on a trace file re-imported
// with trace.ParseChrome — cuccprof uses both paths.
package prof

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"cucc/internal/core"
	"cucc/internal/trace"
)

// PathStep is one span on the critical path.
type PathStep struct {
	Phase    string  `json:"phase"`
	Node     int     `json:"node"` // -1 for cluster-wide (allgather)
	StartSec float64 `json:"start_sec"`
	DurSec   float64 `json:"dur_sec"`
	Kernel   string  `json:"kernel,omitempty"`
}

// PhaseStat aggregates one phase across all ranks and launches.
type PhaseStat struct {
	Phase    string  `json:"phase"`
	Spans    int     `json:"spans"`
	TotalSec float64 `json:"total_sec"`
	MeanSec  float64 `json:"mean_sec"`
	P50Sec   float64 `json:"p50_sec"`
	MaxSec   float64 `json:"max_sec"`
	// MaxNode is the rank owning the longest span (-1 for cluster-wide).
	MaxNode int `json:"max_node"`
	// Skew is MaxSec/MeanSec: 1.0 is perfectly balanced; the paper's
	// RemainderImbalanced partitioning shows up here directly.
	Skew float64 `json:"skew"`
	// PathSec is how much critical-path time this phase contributes.
	PathSec float64 `json:"path_sec"`
}

// RankStat describes one rank's share of the run.
type RankStat struct {
	Node    int     `json:"node"`
	Spans   int     `json:"spans"`
	BusySec float64 `json:"busy_sec"`
	// WaitSec is the slack this rank accumulated waiting at Allgather
	// barriers for slower peers (0 for the rank that bounds every segment).
	WaitSec float64 `json:"wait_sec"`
	// PathSec is the critical-path time attributed to this rank.
	PathSec float64 `json:"path_sec"`
	// Blocks is the phase-1 block count from core.Stats (-1 if unknown,
	// i.e. the analysis ran from a trace file without stats).
	Blocks int `json:"blocks"`
}

// WhatIf estimates the makespan under two idealizations, mirroring the
// decomposition core.Estimate uses (phase sums, barriers between them).
type WhatIf struct {
	ActualSec float64 `json:"actual_sec"`
	// BalancedSec replaces every inter-barrier segment's bounding-rank time
	// with the mean over ranks: the makespan under perfect block balance.
	BalancedSec     float64 `json:"balanced_sec"`
	BalancedSpeedup float64 `json:"balanced_speedup"`
	// ZeroCommSec removes the Allgather barriers entirely: the makespan
	// under free communication.
	ZeroCommSec     float64 `json:"zero_comm_sec"`
	ZeroCommSpeedup float64 `json:"zero_comm_speedup"`
}

// Report is the full diagnosis.
type Report struct {
	Kernels  []string `json:"kernels"`
	Ranks    int      `json:"ranks"`
	TotalSec float64  `json:"total_sec"`

	CriticalPath    []PathStep `json:"critical_path"`
	CriticalPathSec float64    `json:"critical_path_sec"`
	// BoundPhase is the phase holding the largest share of the critical
	// path ("allgather" means the run is communication-bound).
	BoundPhase string `json:"bound_phase"`
	// StragglerNode is the rank bounding the most critical-path time
	// (-1 when no rank span is on the path).
	StragglerNode int `json:"straggler_node"`

	Phases    []PhaseStat `json:"phases"`
	RankStats []RankStat  `json:"rank_stats"`

	WhatIf WhatIf `json:"what_if"`

	// Failures carries abort/timeout markers verbatim (empty for clean
	// runs); a non-empty list means the timing figures describe a run that
	// did not complete.
	Failures []string `json:"failures,omitempty"`

	// DroppedEvents is the number of events a capped recorder overwrote
	// before the timeline was analyzed (see trace.NewCapped).  Nonzero
	// means the critical path, bound phase, and straggler figures describe
	// only the retained window — they may be confidently wrong about the
	// full run.
	DroppedEvents int64 `json:"dropped_events,omitempty"`
}

// segment is one inter-barrier window of rank activity: every rank works
// [startSec, its chain end], then the next barrier starts when the slowest
// rank finishes.
type segment struct {
	startSec float64
	rankEnd  map[int]float64 // rank -> end of its span chain
	rankBusy map[int]float64 // rank -> sum of span durations
	spans    map[int][]trace.Event
	barrier  *trace.Event // the Allgather closing the segment (nil for tail)
}

// Analyze diagnoses a recorded timeline.  stats may be nil (e.g. when the
// events came from a trace file); when present it supplies per-rank block
// counts and the model-based what-if refinement.
func Analyze(events []trace.Event, stats *core.Stats) *Report {
	trace.SortEvents(events)

	rep := &Report{StragglerNode: -1}
	kernels := map[string]bool{}
	var rankEvents []trace.Event
	var barriers []trace.Event
	maxEnd := 0.0
	for _, ev := range events {
		if ev.Kernel != "" && !kernels[ev.Kernel] {
			kernels[ev.Kernel] = true
			rep.Kernels = append(rep.Kernels, ev.Kernel)
		}
		if end := ev.StartSec + ev.DurSec; end > maxEnd {
			maxEnd = end
		}
		switch ev.Phase {
		case trace.PhaseWorker:
			// Sub-spans of a partial/callback phase: they detail a rank
			// span already counted, so they stay out of the path math.
			continue
		case trace.PhaseAbort, trace.PhaseTimeout:
			rep.Failures = append(rep.Failures, fmt.Sprintf("%s: %s", ev.Phase, ev.Detail))
			continue
		}
		if ev.Node < 0 {
			barriers = append(barriers, ev)
		} else {
			rankEvents = append(rankEvents, ev)
			if ev.Node+1 > rep.Ranks {
				rep.Ranks = ev.Node + 1
			}
		}
	}
	sort.Strings(rep.Kernels)
	rep.TotalSec = maxEnd
	if len(rankEvents) == 0 && len(barriers) == 0 {
		return rep
	}

	segs := segmentize(rankEvents, barriers)
	rep.buildPath(segs)
	rep.phaseStats(rankEvents, barriers)
	rep.rankStats(rankEvents, segs, stats)
	rep.whatIf(segs, barriers, stats)
	return rep
}

// segmentize partitions rank events into inter-barrier windows.  Barrier i
// closes segment i; events starting at or after barrier i's end belong to
// segment i+1.  The simulator never overlaps rank work with a barrier (the
// Allgather starts at the cluster-wide max clock), so assignment by start
// time is exact.
func segmentize(rankEvents, barriers []trace.Event) []*segment {
	newSeg := func(start float64) *segment {
		return &segment{
			startSec: start,
			rankEnd:  map[int]float64{},
			rankBusy: map[int]float64{},
			spans:    map[int][]trace.Event{},
		}
	}
	segs := []*segment{newSeg(0)}
	for i := range barriers {
		b := barriers[i]
		segs[len(segs)-1].barrier = &b
		segs = append(segs, newSeg(b.StartSec+b.DurSec))
	}
	for _, ev := range rankEvents {
		// Find the segment whose window contains the event start: the
		// first whose closing barrier ends after it.
		idx := sort.Search(len(segs)-1, func(i int) bool {
			b := segs[i].barrier
			return ev.StartSec < b.StartSec+b.DurSec
		})
		s := segs[idx]
		s.spans[ev.Node] = append(s.spans[ev.Node], ev)
		s.rankBusy[ev.Node] += ev.DurSec
		if end := ev.StartSec + ev.DurSec; end > s.rankEnd[ev.Node] {
			s.rankEnd[ev.Node] = end
		}
	}
	// Drop an empty tail segment (run ended on a barrier).
	if last := segs[len(segs)-1]; last.barrier == nil && len(last.spans) == 0 {
		segs = segs[:len(segs)-1]
	}
	return segs
}

// boundingRank picks the rank whose chain ends last (ties go to the lowest
// rank, keeping the report deterministic).  Returns -1 for an empty segment.
func (s *segment) boundingRank() int {
	bound, boundEnd := -1, math.Inf(-1)
	ranks := make([]int, 0, len(s.rankEnd))
	for r := range s.rankEnd {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		if end := s.rankEnd[r]; end > boundEnd {
			bound, boundEnd = r, end
		}
	}
	return bound
}

// buildPath walks the segments, chaining each segment's bounding rank into
// the closing barrier, and derives BoundPhase and StragglerNode.
func (r *Report) buildPath(segs []*segment) {
	phaseSec := map[string]float64{}
	rankSec := map[int]float64{}
	for _, s := range segs {
		if bound := s.boundingRank(); bound >= 0 {
			for _, ev := range s.spans[bound] {
				r.CriticalPath = append(r.CriticalPath, PathStep{
					Phase: ev.Phase, Node: ev.Node,
					StartSec: ev.StartSec, DurSec: ev.DurSec, Kernel: ev.Kernel,
				})
				phaseSec[ev.Phase] += ev.DurSec
				rankSec[ev.Node] += ev.DurSec
				r.CriticalPathSec += ev.DurSec
			}
		}
		if b := s.barrier; b != nil {
			r.CriticalPath = append(r.CriticalPath, PathStep{
				Phase: b.Phase, Node: -1,
				StartSec: b.StartSec, DurSec: b.DurSec, Kernel: b.Kernel,
			})
			phaseSec[b.Phase] += b.DurSec
			r.CriticalPathSec += b.DurSec
		}
	}
	best := math.Inf(-1)
	for _, ph := range sortedKeys(phaseSec) {
		if sec := phaseSec[ph]; sec > best {
			best, r.BoundPhase = sec, ph
		}
	}
	best = math.Inf(-1)
	for _, rk := range sortedIntKeys(rankSec) {
		if sec := rankSec[rk]; sec > best {
			best, r.StragglerNode = sec, rk
		}
	}
}

func (r *Report) phaseStats(rankEvents, barriers []trace.Event) {
	byPhase := map[string][]trace.Event{}
	for _, ev := range rankEvents {
		byPhase[ev.Phase] = append(byPhase[ev.Phase], ev)
	}
	for _, ev := range barriers {
		byPhase[ev.Phase] = append(byPhase[ev.Phase], ev)
	}
	pathSec := map[string]float64{}
	for _, st := range r.CriticalPath {
		pathSec[st.Phase] += st.DurSec
	}
	for _, ph := range sortedKeys(byPhase) {
		evs := byPhase[ph]
		durs := make([]float64, len(evs))
		ps := PhaseStat{Phase: ph, Spans: len(evs), MaxNode: -1, PathSec: pathSec[ph]}
		for i, ev := range evs {
			durs[i] = ev.DurSec
			ps.TotalSec += ev.DurSec
			if ev.DurSec > ps.MaxSec || (ev.DurSec == ps.MaxSec && ps.MaxNode == -1) {
				ps.MaxSec, ps.MaxNode = ev.DurSec, ev.Node
			}
		}
		ps.MeanSec = ps.TotalSec / float64(len(evs))
		sort.Float64s(durs)
		ps.P50Sec = durs[len(durs)/2]
		if ps.MeanSec > 0 {
			ps.Skew = ps.MaxSec / ps.MeanSec
		}
		r.Phases = append(r.Phases, ps)
	}
	// Largest total first: the table reads top-down by importance.
	sort.SliceStable(r.Phases, func(i, j int) bool {
		return r.Phases[i].TotalSec > r.Phases[j].TotalSec
	})
}

func (r *Report) rankStats(rankEvents []trace.Event, segs []*segment, stats *core.Stats) {
	if r.Ranks == 0 {
		return
	}
	rs := make([]RankStat, r.Ranks)
	for i := range rs {
		rs[i] = RankStat{Node: i, Blocks: -1}
		if stats != nil && i < len(stats.BlocksByNode) {
			rs[i].Blocks = stats.BlocksByNode[i]
		}
	}
	for _, ev := range rankEvents {
		rs[ev.Node].Spans++
		rs[ev.Node].BusySec += ev.DurSec
	}
	for _, s := range segs {
		bound := s.boundingRank()
		if bound < 0 {
			continue
		}
		boundEnd := s.rankEnd[bound]
		for rk, end := range s.rankEnd {
			rs[rk].WaitSec += boundEnd - end
		}
	}
	for _, st := range r.CriticalPath {
		if st.Node >= 0 {
			rs[st.Node].PathSec += st.DurSec
		}
	}
	r.RankStats = rs
}

// whatIf derives the idealized makespans from the segments; when stats are
// available the same decomposition is cross-checked against the model via
// WhatIfFromStats by callers that want it (cuccprof -prog mode).
func (r *Report) whatIf(segs []*segment, barriers []trace.Event, stats *core.Stats) {
	w := WhatIf{ActualSec: r.CriticalPathSec}
	barrierSec := 0.0
	for _, b := range barriers {
		barrierSec += b.DurSec
	}
	balanced := 0.0
	for _, s := range segs {
		if len(s.rankBusy) > 0 {
			sum := 0.0
			for _, busy := range s.rankBusy {
				sum += busy
			}
			balanced += sum / float64(len(s.rankBusy))
		}
	}
	w.BalancedSec = balanced + barrierSec
	w.ZeroCommSec = r.CriticalPathSec - barrierSec
	if w.BalancedSec > 0 {
		w.BalancedSpeedup = w.ActualSec / w.BalancedSec
	}
	if w.ZeroCommSec > 0 {
		w.ZeroCommSpeedup = w.ActualSec / w.ZeroCommSec
	}
	r.WhatIf = w
}

// WhatIfFromStats computes the same idealizations from a launch's Stats
// alone, using the phase decomposition core.Estimate models (phase-1 bounded
// by the fullest rank, barriers between phases).  It lets cuccprof attach a
// model-based what-if when it ran the program itself and has no need to
// re-derive segment structure from events.
func WhatIfFromStats(st *core.Stats) WhatIf {
	w := WhatIf{ActualSec: st.TotalSec}
	p1Balanced := st.Phase1Sec
	if n := len(st.BlocksByNode); n > 0 && st.BlocksPerNode > 0 {
		sum := 0
		for _, c := range st.BlocksByNode {
			sum += c
		}
		p1Balanced = st.Phase1Sec * (float64(sum) / float64(n)) / float64(st.BlocksPerNode)
	}
	w.BalancedSec = st.TotalSec - st.Phase1Sec + p1Balanced
	w.ZeroCommSec = st.TotalSec - st.CommSec
	if w.BalancedSec > 0 {
		w.BalancedSpeedup = w.ActualSec / w.BalancedSec
	}
	if w.ZeroCommSec > 0 {
		w.ZeroCommSpeedup = w.ActualSec / w.ZeroCommSec
	}
	return w
}

// JSON serializes the report (indented, key order fixed by the struct).
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Table renders the human-readable diagnosis.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== cucc diagnosis: %s ===\n", strings.Join(r.Kernels, ", "))
	fmt.Fprintf(&b, "ranks %d   makespan %s   critical path %s\n",
		r.Ranks, fmtSec(r.TotalSec), fmtSec(r.CriticalPathSec))
	if len(r.Failures) > 0 {
		fmt.Fprintf(&b, "RUN FAILED — figures describe a partial run:\n")
		for _, f := range r.Failures {
			fmt.Fprintf(&b, "  %s\n", f)
		}
	}
	if r.DroppedEvents > 0 {
		fmt.Fprintf(&b, "WARNING — trace truncated: %d events were dropped by the capped recorder;\n", r.DroppedEvents)
		fmt.Fprintf(&b, "  figures describe only the retained window, not the full run\n")
	}
	if r.BoundPhase != "" {
		fmt.Fprintf(&b, "bound by: %s", r.BoundPhase)
		if r.StragglerNode >= 0 {
			fmt.Fprintf(&b, "   straggler: rank %d", r.StragglerNode)
		}
		b.WriteString("\n")
	}

	if len(r.CriticalPath) > 0 {
		b.WriteString("\ncritical path:\n")
		for _, st := range r.CriticalPath {
			who := "cluster"
			if st.Node >= 0 {
				who = fmt.Sprintf("rank %d", st.Node)
			}
			share := 0.0
			if r.CriticalPathSec > 0 {
				share = 100 * st.DurSec / r.CriticalPathSec
			}
			fmt.Fprintf(&b, "  %10s  %-26s %12s  %5.1f%%\n", who, st.Phase, fmtSec(st.DurSec), share)
		}
	}

	if len(r.Phases) > 0 {
		b.WriteString("\nphases (all spans):\n")
		fmt.Fprintf(&b, "  %-26s %5s %12s %12s %12s %6s %8s\n",
			"phase", "spans", "mean", "p50", "max", "skew", "on-path")
		for _, ps := range r.Phases {
			maxWho := "cluster"
			if ps.MaxNode >= 0 {
				maxWho = fmt.Sprintf("r%d", ps.MaxNode)
			}
			fmt.Fprintf(&b, "  %-26s %5d %12s %12s %12s %5.2fx %8s  (max: %s)\n",
				ps.Phase, ps.Spans, fmtSec(ps.MeanSec), fmtSec(ps.P50Sec),
				fmtSec(ps.MaxSec), ps.Skew, fmtSec(ps.PathSec), maxWho)
		}
	}

	if len(r.RankStats) > 0 {
		b.WriteString("\nranks:\n")
		fmt.Fprintf(&b, "  %-6s %7s %12s %12s %12s\n", "rank", "blocks", "busy", "barrier-wait", "on-path")
		for _, rs := range r.RankStats {
			blocks := "-"
			if rs.Blocks >= 0 {
				blocks = fmt.Sprintf("%d", rs.Blocks)
			}
			tag := ""
			if rs.Node == r.StragglerNode {
				tag = "  <- straggler"
			}
			fmt.Fprintf(&b, "  %-6d %7s %12s %12s %12s%s\n",
				rs.Node, blocks, fmtSec(rs.BusySec), fmtSec(rs.WaitSec), fmtSec(rs.PathSec), tag)
		}
	}

	w := r.WhatIf
	if w.ActualSec > 0 {
		b.WriteString("\nwhat-if:\n")
		fmt.Fprintf(&b, "  perfect block balance: %12s  (%.2fx)\n", fmtSec(w.BalancedSec), w.BalancedSpeedup)
		fmt.Fprintf(&b, "  zero-cost allgather:   %12s  (%.2fx)\n", fmtSec(w.ZeroCommSec), w.ZeroCommSpeedup)
	}
	return b.String()
}

func fmtSec(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.3f s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.3f ms", s*1e3)
	default:
		return fmt.Sprintf("%.1f us", s*1e6)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedIntKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

package prof

import (
	"strings"
	"testing"

	"cucc/internal/metrics"
)

func benchReport(ns map[string]int64, cfg *BenchConfig, schema int) *BenchReport {
	rep := &BenchReport{SchemaVersion: schema, Date: "2026-08-05", Workers: 1, Config: cfg}
	for k, v := range ns {
		parts := strings.SplitN(k, "/", 2)
		rep.Results = append(rep.Results, BenchResult{
			Program: parts[0], Engine: parts[1], NsPerOp: v,
		})
	}
	return rep
}

func TestCompareBenchFlagsRegression(t *testing.T) {
	cfg := &BenchConfig{Engines: []string{"vm", "interp"}, Workers: 1, Nodes: 1}
	old := benchReport(map[string]int64{"VecAdd/vm": 1000, "VecAdd/interp": 4000}, cfg, 1)
	new := benchReport(map[string]int64{"VecAdd/vm": 1200, "VecAdd/interp": 4100}, cfg, 1)
	cmp, err := CompareBench(old, new, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if got := cmp.Regressions(); got != 1 {
		t.Fatalf("regressions = %d, want 1 (rows: %+v)", got, cmp.Rows)
	}
	// Worst first: the +20% vm row leads.
	if cmp.Rows[0].Key != "VecAdd/vm" || !cmp.Rows[0].Regression {
		t.Errorf("rows[0] = %+v, want VecAdd/vm regression", cmp.Rows[0])
	}
	if !strings.Contains(cmp.Table(), "REGRESSION") {
		t.Error("table does not mark the regression")
	}
}

func TestCompareBenchWithinThreshold(t *testing.T) {
	old := benchReport(map[string]int64{"VecAdd/vm": 1000}, nil, 0)
	new := benchReport(map[string]int64{"VecAdd/vm": 1050}, nil, 0)
	cmp, err := CompareBench(old, new, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Regressions() != 0 {
		t.Errorf("5%% growth flagged at 10%% threshold: %+v", cmp.Rows)
	}
	// A legacy (v0) comparison proceeds but warns.
	if len(cmp.Warnings) == 0 {
		t.Error("no warning for schema-less reports")
	}
}

func TestCompareBenchRefusesConfigMismatch(t *testing.T) {
	a := benchReport(map[string]int64{"VecAdd/vm": 1000},
		&BenchConfig{Engines: []string{"vm"}, Workers: 1, Nodes: 1}, 1)
	b := benchReport(map[string]int64{"VecAdd/vm": 1000},
		&BenchConfig{Engines: []string{"vm"}, Workers: 4, Nodes: 1}, 1)
	if _, err := CompareBench(a, b, 0.10); err == nil {
		t.Error("differing worker counts not refused")
	}
}

// TestCompareBenchCrossSchema: a report that grew an engine (and bumped the
// schema version) still diffs against its predecessor — shared keys match,
// the new engine's rows land in only_new, and warnings note both differences.
func TestCompareBenchCrossSchema(t *testing.T) {
	old := benchReport(map[string]int64{"VecAdd/vm": 1000, "VecAdd/interp": 4000},
		&BenchConfig{Engines: []string{"vm", "interp"}, Workers: 1, Nodes: 1}, 1)
	new := benchReport(map[string]int64{"VecAdd/vm": 1000, "VecAdd/interp": 4000, "VecAdd/vm-lanes": 300},
		&BenchConfig{Engines: []string{"vm", "vm-lanes", "interp"}, Workers: 1, Nodes: 1}, 2)
	cmp, err := CompareBench(old, new, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if got := cmp.Regressions(); got != 0 {
		t.Errorf("regressions = %d, want 0 (rows %+v)", got, cmp.Rows)
	}
	if len(cmp.Rows) != 2 {
		t.Errorf("matched rows = %+v, want the two shared keys", cmp.Rows)
	}
	if len(cmp.OnlyNew) != 1 || cmp.OnlyNew[0] != "VecAdd/vm-lanes" {
		t.Errorf("only_new = %v, want the vm-lanes row", cmp.OnlyNew)
	}
	var schemaWarn, engineWarn bool
	for _, w := range cmp.Warnings {
		if strings.Contains(w, "schema versions differ") {
			schemaWarn = true
		}
		if strings.Contains(w, "engine sets differ") {
			engineWarn = true
		}
	}
	if !schemaWarn || !engineWarn {
		t.Errorf("warnings = %v, want schema-version and engine-set warnings", cmp.Warnings)
	}
}

func TestCompareBenchDisjointKeys(t *testing.T) {
	old := benchReport(map[string]int64{"VecAdd/vm": 1000, "Gone/vm": 5}, nil, 0)
	new := benchReport(map[string]int64{"VecAdd/vm": 1000, "Fresh/vm": 7}, nil, 0)
	cmp, err := CompareBench(old, new, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.OnlyOld) != 1 || cmp.OnlyOld[0] != "Gone/vm" {
		t.Errorf("only_old = %v", cmp.OnlyOld)
	}
	if len(cmp.OnlyNew) != 1 || cmp.OnlyNew[0] != "Fresh/vm" {
		t.Errorf("only_new = %v", cmp.OnlyNew)
	}
}

func TestParseBenchReport(t *testing.T) {
	if _, err := ParseBenchReport([]byte(`{"results":[]}`)); err == nil {
		t.Error("empty results accepted")
	}
	if _, err := ParseBenchReport([]byte(`garbage`)); err == nil {
		t.Error("garbage accepted")
	}
	rep, err := ParseBenchReport([]byte(`{"schema_version":1,"results":[{"program":"X","engine":"vm","ns_per_op":10}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].NsPerOp != 10 {
		t.Errorf("parsed %+v", rep.Results[0])
	}
	if _, err := ParseBenchReport([]byte(`{"schema_version":99,"results":[{"program":"X"}]}`)); err == nil {
		t.Error("future schema accepted")
	}
}

func snap(counters map[string]int64, gauges map[string]float64) metrics.Snapshot {
	return metrics.Snapshot{Counters: counters, Gauges: gauges,
		Histograms: map[string]metrics.HistValue{}}
}

func TestCompareMetrics(t *testing.T) {
	old := snap(map[string]int64{"core.launch.total": 10},
		map[string]float64{"vm.compile.seconds": 1.0, "steady.gauge": 5})
	new := snap(map[string]int64{"core.launch.total": 10},
		map[string]float64{"vm.compile.seconds": 1.5, "steady.gauge": 5})
	cmp := CompareMetrics(old, new, 0.10)
	if got := cmp.Regressions(); got != 1 {
		t.Fatalf("regressions = %d (rows %+v)", got, cmp.Rows)
	}
	if cmp.Rows[0].Key != "vm.compile.seconds" {
		t.Errorf("rows[0] = %+v", cmp.Rows[0])
	}
	// Unchanged keys stay out of the diff.
	for _, r := range cmp.Rows {
		if r.Key == "steady.gauge" || r.Key == "core.launch.total" {
			t.Errorf("unchanged key %s in diff", r.Key)
		}
	}
}

func TestCompareMetricsNonTimeGrowthNotRegression(t *testing.T) {
	old := snap(map[string]int64{"core.launch.total": 10}, nil)
	new := snap(map[string]int64{"core.launch.total": 20}, nil)
	cmp := CompareMetrics(old, new, 0.10)
	if len(cmp.Rows) != 1 {
		t.Fatalf("rows = %+v", cmp.Rows)
	}
	if cmp.Rows[0].Regression {
		t.Error("a count growing is not a time regression")
	}
}

func TestParseSnapshotRoundTrip(t *testing.T) {
	s := snap(map[string]int64{"a": 1}, map[string]float64{"b": 2})
	raw, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := metrics.ParseSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters["a"] != 1 || got.Gauges["b"] != 2 {
		t.Errorf("round trip lost data: %+v", got)
	}
	if _, err := metrics.ParseSnapshot([]byte(`{"x": 1}`)); err == nil {
		t.Error("non-snapshot JSON accepted")
	}
}

// serviceReport wraps benchReport with schema-v3 service rows.
func serviceReport(rows []ServiceResult) *BenchReport {
	rep := benchReport(map[string]int64{"VecAdd/vm": 1000}, nil, BenchSchemaVersion)
	rep.Service = rows
	return rep
}

func TestCompareBenchServiceRows(t *testing.T) {
	old := serviceReport([]ServiceResult{
		{Scenario: "2tenant", TargetRate: 50, QPS: 48, P99Ms: 10, RejectRate: 0},
		{Scenario: "2tenant", TargetRate: 200, QPS: 120, P99Ms: 40, RejectRate: 0.3},
	})
	new := serviceReport([]ServiceResult{
		// p99 +100% at rate 50: regression.  QPS -50% at rate 200: regression.
		// Reject rate doubling is never flagged (backpressure working).
		{Scenario: "2tenant", TargetRate: 50, QPS: 48, P99Ms: 20, RejectRate: 0},
		{Scenario: "2tenant", TargetRate: 200, QPS: 60, P99Ms: 40, RejectRate: 0.6},
		{Scenario: "2tenant", TargetRate: 400, QPS: 90, P99Ms: 80, RejectRate: 0.8},
	})
	cmp, err := CompareBench(old, new, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	flagged := map[string]bool{}
	for _, r := range cmp.Rows {
		if r.Regression {
			flagged[r.Key] = true
		}
	}
	if !flagged["service:2tenant@50/p99_ms"] {
		t.Errorf("p99 doubling not flagged; rows %+v", cmp.Rows)
	}
	if !flagged["service:2tenant@200/qps"] {
		t.Errorf("qps halving not flagged; rows %+v", cmp.Rows)
	}
	if len(flagged) != 2 {
		t.Errorf("flagged = %v, want exactly the p99@50 and qps@200 rows", flagged)
	}
	wantNew := "service:2tenant@400"
	found := false
	for _, k := range cmp.OnlyNew {
		if k == wantNew {
			found = true
		}
	}
	if !found {
		t.Errorf("only_new = %v, want %s (fresh sweep point)", cmp.OnlyNew, wantNew)
	}
}

func TestCompareBenchServiceImprovementNotFlagged(t *testing.T) {
	old := serviceReport([]ServiceResult{{Scenario: "s", TargetRate: 50, QPS: 40, P99Ms: 20}})
	new := serviceReport([]ServiceResult{{Scenario: "s", TargetRate: 50, QPS: 80, P99Ms: 5}})
	cmp, err := CompareBench(old, new, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if got := cmp.Regressions(); got != 0 {
		t.Errorf("improvement flagged as regression: %+v", cmp.Rows)
	}
}

package prof

import (
	"encoding/json"
	"strings"
	"testing"

	"cucc/internal/metrics"
	"cucc/internal/obs"
	"cucc/internal/trace"
)

func postmortemFixture() *obs.Dump {
	reg := metrics.New()
	reg.Counter("recovery.restores").Inc()
	reg.Counter("recovery.checkpoints").Add(2)
	reg.Counter("core.launch.total").Inc()
	reg.Counter("comm.allgather.msgs").Add(12) // below the highlight prefixes
	return &obs.Dump{
		Schema: obs.DumpSchemaVersion,
		Reason: obs.DumpReasonFailure,
		Tenant: "tenant-a",
		Job:    42,
		What:   "source:vecadd",
		Err:    "serve: job deadline exceeded",
		Journal: []obs.Event{
			{Seq: 10, Type: obs.EvAdmit, Tenant: "tenant-a", Job: 42, Rank: -1, Kernel: "vecadd"},
			{Seq: 11, Type: obs.EvDispatch, Tenant: "tenant-a", Job: 42, Rank: -1, Kernel: "vecadd"},
			{Seq: 12, Type: obs.EvRankLoss, Tenant: "tenant-a", Job: 42, Rank: 1, Kernel: "vecadd",
				Detail: "lost nodes [1], 3 survivors"},
			{Seq: 13, Type: obs.EvRestore, Tenant: "tenant-a", Job: 42, Rank: -1, Kernel: "vecadd",
				Detail: "restore @phase1 (4096 bytes), replaying over 3 ranks"},
		},
		Metrics: reg.Snapshot(),
		Trace: []trace.Event{
			{Phase: trace.PhaseLaunch, Node: -1, Kernel: "vecadd", StartSec: 0, DurSec: 0.001},
			{Phase: trace.PhasePartial, Node: 0, Kernel: "vecadd", StartSec: 0.001, DurSec: 0.01},
			{Phase: trace.PhaseRecovery, Node: -1, Kernel: "vecadd", StartSec: 0.011, DurSec: 0.002,
				Detail: "restore @phase1"},
		},
		TraceDropped: 0,
	}
}

// TestAnalyzePostmortem: the report carries the dump, diagnoses its trace
// window, and renders a timeline naming the failure chain and the recovery
// counters.
func TestAnalyzePostmortem(t *testing.T) {
	rep := AnalyzePostmortem(postmortemFixture())
	if rep.Diagnosis == nil {
		t.Fatal("no trace diagnosis despite a non-empty trace window")
	}
	table := rep.Table()
	for _, want := range []string{
		"post-mortem: job 42", "tenant-a", "failure",
		"deadline exceeded",
		"event timeline", "rank-loss", "lost nodes [1]", "restore @phase1",
		"recovery.restores", "core.launch.total",
		"trace diagnosis",
	} {
		if !strings.Contains(table, want) {
			t.Errorf("post-mortem table missing %q:\n%s", want, table)
		}
	}
	// Only the recovery/launch counters are highlighted; raw comm traffic
	// belongs to the trace diagnosis, not the counter list.
	if strings.Contains(table, "comm.allgather.msgs") {
		t.Errorf("post-mortem table leaks non-highlighted counters:\n%s", table)
	}
}

// TestAnalyzePostmortemNoTrace: a dump with no trace window still renders
// the timeline, with no diagnosis section.
func TestAnalyzePostmortemNoTrace(t *testing.T) {
	d := postmortemFixture()
	d.Trace = nil
	rep := AnalyzePostmortem(d)
	if rep.Diagnosis != nil {
		t.Error("diagnosis fabricated from an empty trace")
	}
	table := rep.Table()
	if !strings.Contains(table, "event timeline") || strings.Contains(table, "trace diagnosis") {
		t.Errorf("traceless rendering wrong:\n%s", table)
	}
	d.Journal = nil
	if got := AnalyzePostmortem(d).Table(); !strings.Contains(got, "no journal events captured") {
		t.Errorf("journal-less rendering wrong:\n%s", got)
	}
}

// TestPostmortemJSON: the JSON form round-trips the dump and diagnosis.
func TestPostmortemJSON(t *testing.T) {
	raw, err := AnalyzePostmortem(postmortemFixture()).JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back PostmortemReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Dump == nil || back.Dump.Job != 42 || back.Diagnosis == nil {
		t.Errorf("round trip lost content: %+v", back)
	}
}

// TestCompareBenchSLORows: schema-v4 SLO columns diff like the other
// service figures — attainment shrink and burn growth flag, and a baseline
// without the columns (v3) produces no SLO rows at all.
func TestCompareBenchSLORows(t *testing.T) {
	old := serviceReport([]ServiceResult{
		{Scenario: "s", TargetRate: 50, QPS: 48, P99Ms: 10, SLOAttainment: 1.0, SLOBurn: 0},
		{Scenario: "s", TargetRate: 200, QPS: 120, P99Ms: 20, SLOAttainment: 0.99, SLOBurn: 1.0},
	})
	new := serviceReport([]ServiceResult{
		// Attainment 1.0 -> 0.8 at rate 50 (and a burn appearing from zero):
		// both flag.  Burn 1.0 -> 2.0 at rate 200: flags.
		{Scenario: "s", TargetRate: 50, QPS: 48, P99Ms: 10, SLOAttainment: 0.8, SLOBurn: 20},
		{Scenario: "s", TargetRate: 200, QPS: 120, P99Ms: 20, SLOAttainment: 0.98, SLOBurn: 2.0},
	})
	cmp, err := CompareBench(old, new, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	flagged := map[string]bool{}
	for _, r := range cmp.Rows {
		if r.Regression {
			flagged[r.Key] = true
		}
	}
	if !flagged["service:s@50/slo_attainment"] {
		t.Errorf("attainment collapse not flagged: %+v", cmp.Rows)
	}
	if !flagged["service:s@50/slo_burn"] {
		t.Errorf("burn appearing from zero not flagged: %+v", cmp.Rows)
	}
	if !flagged["service:s@200/slo_burn"] {
		t.Errorf("burn doubling not flagged: %+v", cmp.Rows)
	}
	if flagged["service:s@200/slo_attainment"] {
		t.Errorf("1%% attainment dip within threshold flagged: %+v", cmp.Rows)
	}

	// v3 baseline: no SLO columns on the old side, so no SLO rows and no
	// false regressions.
	v3 := serviceReport([]ServiceResult{{Scenario: "s", TargetRate: 50, QPS: 48, P99Ms: 10}})
	cmp, err = CompareBench(v3, new, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range cmp.Rows {
		if strings.Contains(r.Key, "slo_") {
			t.Errorf("SLO row produced against a v3 baseline: %+v", r)
		}
	}
}

package prof

import (
	"encoding/json"
	"strings"
	"testing"

	"cucc/internal/core"
	"cucc/internal/trace"
)

// skewedRun builds the canonical synthetic diagnosis input: a 4-rank
// three-phase launch where rank 2's partial phase is 3x slower than its
// peers and the Allgather dominates everything.
//
//	partial:   ranks 0,1,3 take 10ms; rank 2 takes 30ms
//	allgather: 50ms, starting when rank 2 finishes
//	callback:  5ms on every rank
func skewedRun() []trace.Event {
	evs := []trace.Event{}
	for r := 0; r < 4; r++ {
		dur := 0.010
		if r == 2 {
			dur = 0.030
		}
		evs = append(evs, trace.Event{StartSec: 0, DurSec: dur, Node: r,
			Phase: trace.PhasePartial, Kernel: "k"})
	}
	evs = append(evs, trace.Event{StartSec: 0.030, DurSec: 0.050, Node: -1,
		Phase: trace.PhaseAllgather, Kernel: "k", Detail: "1 MB/node"})
	for r := 0; r < 4; r++ {
		evs = append(evs, trace.Event{StartSec: 0.080, DurSec: 0.005, Node: r,
			Phase: trace.PhaseCallback, Kernel: "k"})
	}
	return evs
}

func TestAnalyzeSkewedRun(t *testing.T) {
	stats := &core.Stats{
		Distributed:   true,
		BlocksByNode:  []int{8, 8, 24, 8},
		BlocksPerNode: 24,
		Phase1Sec:     0.030,
		CommSec:       0.050,
		CallbackSec:   0.005,
		TotalSec:      0.085,
	}
	rep := Analyze(skewedRun(), stats)

	if rep.Ranks != 4 {
		t.Fatalf("ranks = %d, want 4", rep.Ranks)
	}
	if rep.StragglerNode != 2 {
		t.Errorf("straggler = rank %d, want rank 2", rep.StragglerNode)
	}
	if rep.BoundPhase != trace.PhaseAllgather {
		t.Errorf("bound phase = %q, want %q", rep.BoundPhase, trace.PhaseAllgather)
	}

	// Critical path: rank 2's partial (the segment bound), the barrier,
	// then the first callback rank in tie order.
	if len(rep.CriticalPath) != 3 {
		t.Fatalf("critical path has %d steps: %+v", len(rep.CriticalPath), rep.CriticalPath)
	}
	if s := rep.CriticalPath[0]; s.Phase != trace.PhasePartial || s.Node != 2 {
		t.Errorf("path[0] = %+v, want rank 2 partial", s)
	}
	if s := rep.CriticalPath[1]; s.Phase != trace.PhaseAllgather || s.Node != -1 {
		t.Errorf("path[1] = %+v, want allgather", s)
	}
	if s := rep.CriticalPath[2]; s.Phase != trace.PhaseCallback {
		t.Errorf("path[2] = %+v, want callback", s)
	}
	if got, want := rep.CriticalPathSec, 0.085; !close2(got, want) {
		t.Errorf("critical path = %g s, want %g", got, want)
	}

	// Every non-straggler waited 20ms at the barrier; rank 2 waited 0.
	for _, rs := range rep.RankStats {
		want := 0.020
		if rs.Node == 2 {
			want = 0
		}
		if !close2(rs.WaitSec, want) {
			t.Errorf("rank %d wait = %g, want %g", rs.Node, rs.WaitSec, want)
		}
	}
	// Block counts flow through from stats.
	if rep.RankStats[2].Blocks != 24 || rep.RankStats[0].Blocks != 8 {
		t.Errorf("block counts not taken from stats: %+v", rep.RankStats)
	}

	// What-if: balancing phase 1 turns 30ms into mean(10,10,30,10)=15ms.
	if got, want := rep.WhatIf.BalancedSec, 0.015+0.050+0.005; !close2(got, want) {
		t.Errorf("balanced = %g, want %g", got, want)
	}
	if got, want := rep.WhatIf.ZeroCommSec, 0.035; !close2(got, want) {
		t.Errorf("zero-comm = %g, want %g", got, want)
	}

	// Phase skew: partial max/mean = 30 / 15 = 2.0.
	for _, ps := range rep.Phases {
		if ps.Phase == trace.PhasePartial {
			if !close2(ps.Skew, 2.0) {
				t.Errorf("partial skew = %g, want 2.0", ps.Skew)
			}
			if ps.MaxNode != 2 {
				t.Errorf("partial max node = %d, want 2", ps.MaxNode)
			}
		}
	}
}

// TestSkewedRunTableAndJSON: the acceptance check — both renderings name
// the injected straggler rank and the allgather-bound phase.
func TestSkewedRunTableAndJSON(t *testing.T) {
	rep := Analyze(skewedRun(), nil)

	table := rep.Table()
	for _, want := range []string{"straggler: rank 2", "bound by: allgather", "<- straggler"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}

	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		BoundPhase    string `json:"bound_phase"`
		StragglerNode int    `json:"straggler_node"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.StragglerNode != 2 {
		t.Errorf("JSON straggler_node = %d, want 2", parsed.StragglerNode)
	}
	if parsed.BoundPhase != "allgather" {
		t.Errorf("JSON bound_phase = %q, want allgather", parsed.BoundPhase)
	}
}

// TestAnalyzeFromSerializedTrace: the diagnosis is identical when the
// events round-trip through the Chrome trace format (the cuccprof -trace
// path).
func TestAnalyzeFromSerializedTrace(t *testing.T) {
	r := trace.New()
	for _, ev := range skewedRun() {
		r.Add(ev)
	}
	raw, err := r.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	evs, err := trace.ParseChrome(raw)
	if err != nil {
		t.Fatal(err)
	}
	direct := Analyze(skewedRun(), nil)
	imported := Analyze(evs, nil)
	dj, _ := direct.JSON()
	ij, _ := imported.JSON()
	if string(dj) != string(ij) {
		t.Errorf("diagnosis differs after trace round-trip:\n%s\nvs\n%s", dj, ij)
	}
}

// TestAnalyzeMultiLaunch: repeated launches produce multiple barriers; the
// segment walk must chain them all.
func TestAnalyzeMultiLaunch(t *testing.T) {
	evs := []trace.Event{}
	t0 := 0.0
	for launch := 0; launch < 3; launch++ {
		for r := 0; r < 2; r++ {
			dur := 0.010 * float64(r+1) // rank 1 is always slower
			evs = append(evs, trace.Event{StartSec: t0, DurSec: dur, Node: r,
				Phase: trace.PhasePartial, Kernel: "k"})
		}
		evs = append(evs, trace.Event{StartSec: t0 + 0.020, DurSec: 0.005, Node: -1,
			Phase: trace.PhaseAllgather, Kernel: "k"})
		t0 += 0.025
	}
	rep := Analyze(evs, nil)
	if rep.StragglerNode != 1 {
		t.Errorf("straggler = %d, want 1", rep.StragglerNode)
	}
	// Path: 3 x (rank-1 partial + barrier).
	if len(rep.CriticalPath) != 6 {
		t.Errorf("path has %d steps, want 6: %+v", len(rep.CriticalPath), rep.CriticalPath)
	}
	if !close2(rep.CriticalPathSec, 3*0.025) {
		t.Errorf("path time = %g, want %g", rep.CriticalPathSec, 3*0.025)
	}
	// Rank 0 waits 10ms per segment.
	if !close2(rep.RankStats[0].WaitSec, 0.030) {
		t.Errorf("rank 0 wait = %g, want 0.030", rep.RankStats[0].WaitSec)
	}
}

// TestAnalyzeIgnoresWorkerSpans: PhaseWorker sub-spans detail a rank span
// that is already counted; including them would double-count busy time.
func TestAnalyzeIgnoresWorkerSpans(t *testing.T) {
	evs := skewedRun()
	evs = append(evs, trace.Event{StartSec: 0, DurSec: 0.030, Node: 2,
		Phase: trace.PhaseWorker, Kernel: "k", Detail: "worker 0/2: 12 blocks"})
	base := Analyze(skewedRun(), nil)
	with := Analyze(evs, nil)
	if base.RankStats[2].BusySec != with.RankStats[2].BusySec {
		t.Errorf("worker span changed busy time: %g vs %g",
			base.RankStats[2].BusySec, with.RankStats[2].BusySec)
	}
	if len(base.CriticalPath) != len(with.CriticalPath) {
		t.Error("worker span changed the critical path")
	}
}

// TestAnalyzeFailures: abort markers surface in the report and the table.
func TestAnalyzeFailures(t *testing.T) {
	evs := []trace.Event{
		{StartSec: 0, DurSec: 0.010, Node: 0, Phase: trace.PhasePartial, Kernel: "k"},
		{StartSec: 0.010, Node: -1, Phase: trace.PhaseAbort, Kernel: "k", Detail: "node 1: divide by zero"},
	}
	rep := Analyze(evs, nil)
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0], "divide by zero") {
		t.Fatalf("failures = %v", rep.Failures)
	}
	if !strings.Contains(rep.Table(), "RUN FAILED") {
		t.Error("table does not flag the failed run")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	rep := Analyze(nil, nil)
	if rep.Ranks != 0 || len(rep.CriticalPath) != 0 {
		t.Errorf("empty analysis not empty: %+v", rep)
	}
	if rep.Table() == "" {
		t.Error("empty report renders nothing")
	}
}

func TestWhatIfFromStats(t *testing.T) {
	st := &core.Stats{
		Distributed:   true,
		BlocksByNode:  []int{8, 8, 24, 8},
		BlocksPerNode: 24,
		Phase1Sec:     0.030,
		CommSec:       0.050,
		CallbackSec:   0.005,
		TotalSec:      0.085,
	}
	w := WhatIfFromStats(st)
	// Balanced phase 1: 30ms * mean(12)/max(24) = 15ms.
	if want := 0.085 - 0.030 + 0.015; !close2(w.BalancedSec, want) {
		t.Errorf("balanced = %g, want %g", w.BalancedSec, want)
	}
	if want := 0.035; !close2(w.ZeroCommSec, want) {
		t.Errorf("zero-comm = %g, want %g", w.ZeroCommSec, want)
	}
	if w.BalancedSpeedup <= 1 || w.ZeroCommSpeedup <= 1 {
		t.Errorf("speedups should exceed 1: %+v", w)
	}
}

func close2(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

package cluster

import (
	"errors"
	"fmt"
	"sync"

	"cucc/internal/obs"
	"cucc/internal/transport"
)

// NodeError attributes a rank failure to a cluster node.  RunParallel joins
// these; recovery.Classify unwraps them (via the recovery.NodeFailure
// interface) to tell crashed ranks from abort victims, so the wrapped cause
// must keep its error identity end to end.
type NodeError struct {
	// Node is the cluster node index the failure is attributed to.
	Node int
	// Err is the rank's own error.
	Err error
}

func (e *NodeError) Error() string { return fmt.Sprintf("node %d: %v", e.Node, e.Err) }

// Unwrap exposes the cause to errors.Is/As.
func (e *NodeError) Unwrap() error { return e.Err }

// FailedNode implements recovery.NodeFailure.
func (e *NodeError) FailedNode() int { return e.Node }

// Group is the set of cluster nodes participating in one launch attempt,
// with the transport connecting exactly those nodes.  A fresh cluster's
// group is all nodes; after a rank loss, recovery adopts a subgroup of the
// survivors with a rebuilt transport (the old one is sticky-aborted), and a
// completed recovered launch rejoins to full width.  Transport ranks are
// member indices 0..Size()-1; NodeOf maps them back to cluster node
// indices, which keep their identity (memory, clock, stats) across
// regroupings.
type Group struct {
	c     *Cluster
	nodes []int
	net   transport.Network
	owned bool // net was built for this group and is closed when replaced
}

// FullGroup returns the all-nodes group over the cluster's main network.
func (c *Cluster) FullGroup() *Group {
	c.netMu.Lock()
	defer c.netMu.Unlock()
	nodes := make([]int, c.cfg.Nodes)
	for i := range nodes {
		nodes[i] = i
	}
	return &Group{c: c, nodes: nodes, net: c.network}
}

// ActiveGroup returns the group launches should run on: the adopted
// recovery subgroup when one is live, the full cluster otherwise.
func (c *Cluster) ActiveGroup() *Group {
	c.netMu.Lock()
	sub := c.sub
	c.netMu.Unlock()
	if sub != nil {
		return sub
	}
	return c.FullGroup()
}

// AdoptSubgroup makes the given cluster nodes the active group, connected
// by a freshly built transport stack of the configured kind (the previous
// network is dead — a sticky abort is what led here).  The kill fault is
// disarmed on the rebuilt stack; stochastic faults keep applying.  A
// replaced subgroup network is closed.
func (c *Cluster) AdoptSubgroup(nodes []int) (*Group, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: subgroup needs at least one node")
	}
	for _, n := range nodes {
		if n < 0 || n >= c.cfg.Nodes {
			return nil, fmt.Errorf("cluster: subgroup node %d out of range (size %d)", n, c.cfg.Nodes)
		}
	}
	c.netMu.Lock()
	dead := c.aborted
	c.netMu.Unlock()
	if dead != nil {
		return nil, fmt.Errorf("cluster: aborted, refusing to regroup: %w", dead)
	}
	net, err := c.buildNetwork(len(nodes), true)
	if err != nil {
		return nil, err
	}
	g := &Group{c: c, nodes: append([]int(nil), nodes...), net: net, owned: true}
	c.netMu.Lock()
	old := c.sub
	c.sub = g
	c.netMu.Unlock()
	if old != nil && old.owned {
		old.net.Close()
	}
	if c.cfg.Journal.On() {
		c.cfg.Journal.Record(obs.EvRegroup, -1, "", fmt.Sprintf("adopted subgroup %v over fresh transport", nodes))
	}
	return g, nil
}

// RejoinAll restores the full cluster width after a recovered launch:
// repaired nodes rejoin over a fresh full-size transport replacing both the
// aborted main network and any active subgroup, so subsequent launches run
// over all nodes again.
func (c *Cluster) RejoinAll() error {
	net, err := c.buildNetwork(c.cfg.Nodes, true)
	if err != nil {
		return err
	}
	c.netMu.Lock()
	oldNet, oldSub := c.network, c.sub
	c.network, c.sub = net, nil
	c.netMu.Unlock()
	oldNet.Close()
	if oldSub != nil && oldSub.owned {
		oldSub.net.Close()
	}
	return nil
}

// Size returns the member count.
func (g *Group) Size() int { return len(g.nodes) }

// Nodes returns the cluster node indices of the members, in member order.
func (g *Group) Nodes() []int { return append([]int(nil), g.nodes...) }

// NodeOf maps a member (transport rank) to its cluster node index.
func (g *Group) NodeOf(m int) int { return g.nodes[m] }

// Conn returns member m's transport endpoint.
func (g *Group) Conn(m int) transport.Conn { return g.net.Conn(m) }

// Full reports whether the group spans every cluster node.
func (g *Group) Full() bool { return len(g.nodes) == g.c.cfg.Nodes }

// RunParallel executes fn concurrently on every member (one goroutine
// each, with the member's transport endpoint) and joins the errors as
// NodeError values attributed to cluster node indices.  A failing member
// aborts the group's transport so peers blocked in a collective unblock
// with transport.ErrAborted; the abort cause wraps the member's error with
// %w so its identity survives to the surviving ranks.
func (g *Group) RunParallel(fn func(member int, conn transport.Conn) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(g.nodes))
	for m := range g.nodes {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			conn := g.net.Conn(m)
			if err := fn(m, conn); err != nil {
				errs[m] = err
				conn.Abort(fmt.Errorf("node %d: %w", g.nodes[m], err))
			}
		}(m)
	}
	wg.Wait()
	var joined []error
	for m, err := range errs {
		if err != nil {
			joined = append(joined, &NodeError{Node: g.nodes[m], Err: err})
		}
	}
	return errors.Join(joined...)
}

// MaxClock returns the largest member clock.
func (g *Group) MaxClock() float64 {
	m := 0.0
	for _, n := range g.nodes {
		if c := g.c.nodes[n].Clock; c > m {
			m = c
		}
	}
	return m
}

// SyncClocksMax sets every member clock to the group-wide maximum plus dt
// (the semantics of a synchronizing collective costing dt).  Non-members —
// crashed nodes awaiting repair — are left alone.
func (g *Group) SyncClocksMax(dt float64) {
	top := g.MaxClock() + dt
	for _, n := range g.nodes {
		g.c.nodes[n].Clock = top
	}
}

// HeapBytes returns node r's raw heap bytes [off, off+n), aliasing the
// node memory: the access path checkpoint capture/restore and crashed-node
// repair use.
func (c *Cluster) HeapBytes(r, off, n int) []byte {
	return c.nodes[r].mem[off : off+n]
}

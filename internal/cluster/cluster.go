// Package cluster implements the simulated distributed-memory CPU cluster
// CuCC executes on: N nodes, each with a private linear byte-addressed
// memory, a hardware model (internal/machine), a simulated clock, and a
// message transport to its peers.
//
// Memory really is private per node — nothing is shared — so any
// consistency bug in the runtime shows up as wrong data, exactly as on the
// paper's physical clusters.  Buffers are allocated at identical offsets on
// every node, mirroring the symmetric heaps of MPI/PGAS runtimes.
package cluster

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"cucc/internal/comm"
	"cucc/internal/csched"
	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/metrics"
	"cucc/internal/obs"
	"cucc/internal/recovery"
	"cucc/internal/simnet"
	"cucc/internal/transport"
)

// Transport selects how node messages travel.
type Transport uint8

const (
	// Inproc uses in-memory mailboxes (default; deterministic and fast).
	Inproc Transport = iota
	// TCP uses loopback sockets (stdlib net): the realcluster mode that
	// exercises actual framing, dials, and kernel-buffer copies.
	TCP
)

// Config describes a cluster.
type Config struct {
	// Nodes is the node count.
	Nodes int
	// Machine is the per-node hardware model.
	Machine machine.CPU
	// Net is the interconnect cost model.
	Net simnet.Model
	// Transport selects the message transport (Inproc default).
	Transport Transport
	// MaxBytesPerNode caps each node's memory (0 = unlimited); Alloc
	// panics past the cap, catching accidental paper-scale allocations
	// that should have used virtual buffers and Estimate.
	MaxBytesPerNode int
	// Engine selects the IR execution engine for sessions on this cluster
	// that do not set one themselves (EngineDefault = inherit).
	Engine Engine
	// Collective selects the phase-2 collective schedule for sessions on
	// this cluster that do not set one themselves (the zero value = inherit,
	// ultimately the legacy hand-written ring).  See csched.ParseChoice for
	// the accepted algorithms and the +overlap modifier.
	Collective csched.Choice
	// RecvTimeout bounds every transport receive, so a rank that stops
	// participating in a collective surfaces as ErrTimeout instead of a
	// deadlock.  0 selects DefaultRecvTimeout; negative disables the
	// deadline.
	RecvTimeout time.Duration
	// Fault, when non-nil, wraps the transport in the fault-injecting
	// decorator (transport.Faulty) for chaos testing.
	Fault *transport.FaultConfig
	// Recovery is the cluster-level elastic-recovery policy for sessions
	// that do not set one themselves: when enabled, launches checkpoint at
	// Allgather barriers and, on rank loss, re-partition over the
	// surviving ranks and replay from the last barrier (see
	// internal/recovery).  The zero value inherits (ultimately disabled).
	Recovery recovery.Policy
	// Metrics, when non-nil, attaches the observability registry: the
	// transport is wrapped in the metered decorator (outermost, above fault
	// injection, so it observes exactly the operations the comm layer
	// performs), the comm collectives record per-op counters into it, and
	// cluster-level gauges (node count, heap bytes, injected-fault totals)
	// are registered.  Nil falls back to metrics.Default(); when that is
	// also nil, metrics are fully disabled and the transport is unwrapped.
	Metrics *metrics.Registry
	// Journal, when enabled, records cluster-level lifecycle events (abort,
	// subgroup regroup) into the structured event journal.  The zero Scope
	// is disabled and costs one nil check per event site.
	Journal obs.Scope
}

// DefaultRecvTimeout is the process-wide default receive deadline applied
// when Config.RecvTimeout is zero (0 = no deadline).  CLI tools
// (cuccrun/cuccbench -recv-timeout) set it so clusters created deep inside
// experiment sweeps inherit the flag.
var DefaultRecvTimeout time.Duration

// Cluster is a set of nodes plus their interconnect.
type Cluster struct {
	cfg     Config
	nodes   []*Node
	metrics *metrics.Registry
	heapEnd int

	// netMu guards the swappable transport state below: recovery replaces
	// networks (subgroup adoption, full-width rejoin) while metrics gauges
	// may concurrently read the fault totals.
	netMu    sync.Mutex
	network  transport.Network
	sub      *Group                     // active recovery subgroup, nil = full width
	aborted  error                      // sticky cluster-level abort cause (e.g. a job deadline)
	faulties []*transport.FaultyNetwork // every fault layer ever built; totals are summed
}

// Node is one cluster node.
type Node struct {
	Rank int
	mem  []byte
	// Clock is the node's simulated time in seconds.
	Clock float64
	// Comm accumulates the node's collective traffic (sent and received).
	Comm comm.Stats
	// atomics serializes global-memory atomic RMW across the blocks the
	// node's worker pool executes concurrently (see interp.AtomicMemory).
	atomics interp.AtomicShards
}

// Buffer names a region allocated at the same offset on every node.
type Buffer struct {
	Off   int
	Elem  kir.ScalarType
	Count int
}

// Bytes returns the byte length of the buffer.
func (b Buffer) Bytes() int { return b.Count * b.Elem.Size() }

// New builds a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least 1 node, got %d", cfg.Nodes)
	}
	c := &Cluster{
		cfg:   cfg,
		nodes: make([]*Node, cfg.Nodes),
	}
	c.metrics = cfg.Metrics
	if c.metrics == nil {
		c.metrics = metrics.Default()
	}
	net, err := c.buildNetwork(cfg.Nodes, false)
	if err != nil {
		return nil, err
	}
	c.network = net
	if c.metrics != nil {
		c.registerGauges()
	}
	for r := 0; r < cfg.Nodes; r++ {
		c.nodes[r] = &Node{Rank: r}
	}
	return c, nil
}

// buildNetwork assembles one transport stack of the configured kind for n
// endpoints: base transport, fault layer, metered layer (outermost, so the
// meter sees the same operations comm performs), receive deadline.
// Recovery rebuilds networks — for the surviving subgroup and for the
// full-width rejoin — because a sticky abort leaves the old one dead;
// rebuilt stacks disarm the kill fault (disarmKill), since it models a
// single crash event that already happened, while the stochastic fault
// regime keeps applying.
func (c *Cluster) buildNetwork(n int, disarmKill bool) (transport.Network, error) {
	var net transport.Network
	switch c.cfg.Transport {
	case TCP:
		tn, err := transport.NewTCP(n)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		net = tn
	default:
		net = transport.NewInproc(n)
	}
	if c.cfg.Fault != nil {
		fc := *c.cfg.Fault
		if disarmKill {
			fc = fc.WithoutKill()
		}
		f := transport.NewFaulty(net, fc)
		c.netMu.Lock()
		c.faulties = append(c.faulties, f)
		c.netMu.Unlock()
		net = f
	}
	if c.metrics != nil {
		net = transport.NewMetered(net, c.metrics)
	}
	to := c.cfg.RecvTimeout
	if to == 0 {
		to = DefaultRecvTimeout
	}
	if to > 0 {
		for r := 0; r < n; r++ {
			net.Conn(r).SetRecvTimeout(to)
		}
	}
	return net, nil
}

// N returns the node count.
func (c *Cluster) N() int { return c.cfg.Nodes }

// Machine returns the per-node hardware model.
func (c *Cluster) Machine() machine.CPU { return c.cfg.Machine }

// Net returns the interconnect model.
func (c *Cluster) Net() simnet.Model { return c.cfg.Net }

// Engine returns the cluster-level IR engine preference.
func (c *Cluster) Engine() Engine { return c.cfg.Engine }

// Collective returns the cluster-level collective-schedule preference.
func (c *Cluster) Collective() csched.Choice { return c.cfg.Collective }

// Recovery returns the cluster-level elastic-recovery policy.
func (c *Cluster) Recovery() recovery.Policy { return c.cfg.Recovery }

// Node returns node r.
func (c *Cluster) Node(r int) *Node { return c.nodes[r] }

// Conn returns node r's transport endpoint on the main (full-width)
// network.
func (c *Cluster) Conn(r int) transport.Conn {
	c.netMu.Lock()
	defer c.netMu.Unlock()
	return c.network.Conn(r)
}

// Abort cancels the in-flight job: every pending transport receive on
// every node — on the main network and on any live recovery subgroup —
// unblocks with an error wrapping transport.ErrAborted.  The abort is
// sticky at the cluster level too: AdoptSubgroup refuses afterwards, so an
// externally-cancelled job (e.g. a serve deadline) cannot recover its way
// past the cancellation.
func (c *Cluster) Abort(cause error) {
	c.netMu.Lock()
	first := c.aborted == nil
	if first {
		c.aborted = cause
	}
	net, sub := c.network, c.sub
	c.netMu.Unlock()
	if first && c.cfg.Journal.On() {
		c.cfg.Journal.Record(obs.EvAbort, -1, "", cause.Error())
	}
	net.Abort(cause)
	if sub != nil {
		sub.net.Abort(cause)
	}
}

// Faults reports the injected-fault counters when the cluster was built
// with Config.Fault (nil otherwise), summed over every network the cluster
// has run — recovery rebuilds the transport stack for surviving subgroups
// and rejoins, and faults injected before a crash must stay visible.
func (c *Cluster) Faults() *transport.FaultStats {
	c.netMu.Lock()
	defer c.netMu.Unlock()
	if len(c.faulties) == 0 {
		return nil
	}
	var total transport.FaultStats
	for _, f := range c.faulties {
		st := f.Stats()
		total.Drops += st.Drops
		total.Delays += st.Delays
		total.Duplicates += st.Duplicates
		total.Corruptions += st.Corruptions
		total.SendFailures += st.SendFailures
		total.Retries += st.Retries
		total.Kills += st.Kills
	}
	return &total
}

// Metrics returns the registry the cluster reports into (nil when metrics
// are disabled).
func (c *Cluster) Metrics() *metrics.Registry { return c.metrics }

// registerGauges attaches cluster-level gauge functions: topology, heap
// usage, and — under fault injection — the injected-fault totals by kind.
func (c *Cluster) registerGauges() {
	r := c.metrics
	r.GaugeFunc("cluster.nodes", func() float64 { return float64(c.cfg.Nodes) })
	r.GaugeFunc("cluster.heap_bytes_per_node", func() float64 { return float64(c.heapEnd) })
	if c.cfg.Fault != nil {
		r.GaugeFunc("transport.fault.drops", func() float64 { return float64(c.Faults().Drops) })
		r.GaugeFunc("transport.fault.delays", func() float64 { return float64(c.Faults().Delays) })
		r.GaugeFunc("transport.fault.duplicates", func() float64 { return float64(c.Faults().Duplicates) })
		r.GaugeFunc("transport.fault.corruptions", func() float64 { return float64(c.Faults().Corruptions) })
		r.GaugeFunc("transport.fault.send_failures", func() float64 { return float64(c.Faults().SendFailures) })
		r.GaugeFunc("transport.fault.retries", func() float64 { return float64(c.Faults().Retries) })
		r.GaugeFunc("transport.fault.kills", func() float64 { return float64(c.Faults().Kills) })
	}
}

// Close releases the cluster's transport (and any live recovery subgroup's).
func (c *Cluster) Close() {
	c.netMu.Lock()
	net, sub := c.network, c.sub
	c.netMu.Unlock()
	net.Close()
	if sub != nil && sub.owned {
		sub.net.Close()
	}
}

// Alloc reserves a buffer of count elements at the same offset on every
// node (zero-initialized), the analogue of cudaMalloc in the CuCC host API.
func (c *Cluster) Alloc(elem kir.ScalarType, count int) Buffer {
	b := Buffer{Off: c.heapEnd, Elem: elem, Count: count}
	c.heapEnd += b.Bytes()
	if c.cfg.MaxBytesPerNode > 0 && c.heapEnd > c.cfg.MaxBytesPerNode {
		panic(fmt.Sprintf("cluster: allocation exceeds %d bytes per node (%d requested); use virtual buffers with Session.Estimate for paper-scale sweeps",
			c.cfg.MaxBytesPerNode, c.heapEnd))
	}
	for _, n := range c.nodes {
		if len(n.mem) < c.heapEnd {
			grown := make([]byte, c.heapEnd)
			copy(grown, n.mem)
			n.mem = grown
		}
	}
	return b
}

// Region returns node r's bytes for the buffer (aliasing the node memory).
func (c *Cluster) Region(r int, b Buffer) []byte {
	return c.nodes[r].mem[b.Off : b.Off+b.Bytes()]
}

// WriteAll copies identical bytes into the buffer on every node (the H2D
// broadcast before kernel launch; all nodes start with identical copies).
func (c *Cluster) WriteAll(b Buffer, data []byte) error {
	if len(data) > b.Bytes() {
		return fmt.Errorf("cluster: writing %d bytes into %d-byte buffer", len(data), b.Bytes())
	}
	for r := range c.nodes {
		copy(c.Region(r, b), data)
	}
	return nil
}

// WriteAllF32 broadcasts float32 data into the buffer on every node.
func (c *Cluster) WriteAllF32(b Buffer, data []float32) error {
	raw := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	return c.WriteAll(b, raw)
}

// WriteAllI32 broadcasts int32 data into the buffer on every node.
func (c *Cluster) WriteAllI32(b Buffer, data []int32) error {
	raw := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[4*i:], uint32(v))
	}
	return c.WriteAll(b, raw)
}

// ReadF32 decodes the buffer from node r (the D2H copy).
func (c *Cluster) ReadF32(r int, b Buffer) []float32 {
	raw := c.Region(r, b)
	out := make([]float32, b.Count)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out
}

// ReadI32 decodes the buffer from node r.
func (c *Cluster) ReadI32(r int, b Buffer) []int32 {
	raw := c.Region(r, b)
	out := make([]int32, b.Count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out
}

// VerifyIdentical checks that the buffer holds identical bytes on every
// node: the consistency invariant the three-phase workflow must restore
// after every kernel.
func (c *Cluster) VerifyIdentical(b Buffer) error {
	ref := c.Region(0, b)
	for r := 1; r < c.N(); r++ {
		if !bytes.Equal(ref, c.Region(r, b)) {
			for i := range ref {
				if ref[i] != c.Region(r, b)[i] {
					return fmt.Errorf("cluster: buffer@%d diverges between node 0 and node %d at byte %d", b.Off, r, i)
				}
			}
		}
	}
	return nil
}

// RunParallel executes fn concurrently on every node (one goroutine per
// rank, each with its transport endpoint) and joins the errors.
//
// A failing node triggers a cooperative cluster-wide abort: peers still
// blocked in a collective receive unblock with transport.ErrAborted
// instead of hanging the WaitGroup forever.  All node errors are joined as
// NodeError values — under fault injection multi-rank failure is the
// common case and every cause must stay visible, with its node attribution
// intact for recovery's failure classification.
func (c *Cluster) RunParallel(fn func(rank int, conn transport.Conn) error) error {
	return c.FullGroup().RunParallel(fn)
}

// SyncClocksMax sets every node clock to the cluster-wide maximum plus dt
// (the semantics of a synchronizing collective costing dt).
func (c *Cluster) SyncClocksMax(dt float64) {
	maxClock := 0.0
	for _, n := range c.nodes {
		if n.Clock > maxClock {
			maxClock = n.Clock
		}
	}
	for _, n := range c.nodes {
		n.Clock = maxClock + dt
	}
}

// BytesPerNode reports each node's allocated heap size.
func (c *Cluster) BytesPerNode() int { return c.heapEnd }

// MaxClock returns the largest node clock (the cluster makespan).
func (c *Cluster) MaxClock() float64 {
	m := 0.0
	for _, n := range c.nodes {
		if n.Clock > m {
			m = n.Clock
		}
	}
	return m
}

// ResetClocks zeroes all node clocks and communication counters.
func (c *Cluster) ResetClocks() {
	for _, n := range c.nodes {
		n.Clock = 0
		n.Comm = comm.Stats{}
	}
}

// Mem builds an interp.Memory view of node r with the given buffers bound
// to the kernel's pointer parameters (index = parameter position).
func (c *Cluster) Mem(r int, binds map[int]Buffer) *NodeMem {
	return &NodeMem{node: c.nodes[r], binds: binds}
}

// NodeMem adapts one node's private memory to the interpreter's Memory
// interface.
type NodeMem struct {
	node  *Node
	binds map[int]Buffer
}

var _ interp.AtomicMemory = (*NodeMem)(nil)

func (m *NodeMem) buf(param int) Buffer {
	b, ok := m.binds[param]
	if !ok {
		panic(fmt.Sprintf("cluster: no buffer bound to param %d", param))
	}
	return b
}

// Len implements interp.Memory.
func (m *NodeMem) Len(param int) int { return m.buf(param).Count }

// RawBytes implements interp.RawMemory: the node's backing bytes for one
// bound buffer, aliasing the same storage the typed accessors use.
func (m *NodeMem) RawBytes(param int) []byte {
	b := m.buf(param)
	return m.node.mem[b.Off : b.Off+b.Bytes()]
}

// AtomicShard implements interp.AtomicMemory: locks live on the node, so
// every memory view of the same node shares them.
func (m *NodeMem) AtomicShard(param, idx int) *sync.Mutex {
	return m.node.atomics.Shard(param, idx)
}

// LoadF32 implements interp.Memory.
func (m *NodeMem) LoadF32(param, idx int) float32 {
	b := m.buf(param)
	return math.Float32frombits(binary.LittleEndian.Uint32(m.node.mem[b.Off+4*idx:]))
}

// StoreF32 implements interp.Memory.
func (m *NodeMem) StoreF32(param, idx int, v float32) {
	b := m.buf(param)
	binary.LittleEndian.PutUint32(m.node.mem[b.Off+4*idx:], math.Float32bits(v))
}

// LoadI32 implements interp.Memory.
func (m *NodeMem) LoadI32(param, idx int) int32 {
	b := m.buf(param)
	return int32(binary.LittleEndian.Uint32(m.node.mem[b.Off+4*idx:]))
}

// StoreI32 implements interp.Memory.
func (m *NodeMem) StoreI32(param, idx int, v int32) {
	b := m.buf(param)
	binary.LittleEndian.PutUint32(m.node.mem[b.Off+4*idx:], uint32(v))
}

// LoadU8 implements interp.Memory.
func (m *NodeMem) LoadU8(param, idx int) byte {
	b := m.buf(param)
	return m.node.mem[b.Off+idx]
}

// StoreU8 implements interp.Memory.
func (m *NodeMem) StoreU8(param, idx int, v byte) {
	b := m.buf(param)
	m.node.mem[b.Off+idx] = v
}

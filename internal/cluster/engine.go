package cluster

import "fmt"

// Engine selects which IR execution engine the runtime uses for kernels
// without a native implementation.  The register-machine VM (internal/vm)
// is the production engine; the tree-walking interpreter (internal/interp)
// is retained as the semantic oracle for differential testing.
type Engine uint8

const (
	// EngineDefault defers the choice to the next configuration layer
	// (session -> cluster -> process default -> EngineVM).
	EngineDefault Engine = iota
	// EngineVM runs kernels on the compile-once register machine, one
	// thread at a time.
	EngineVM
	// EngineInterp runs kernels on the reference tree-walking interpreter.
	EngineInterp
	// EngineVMLanes runs kernels on the register machine's lane-batched
	// dispatcher: one opcode dispatch drives a warp-style batch of threads
	// in lockstep over structure-of-arrays register slabs.
	EngineVMLanes
)

func (e Engine) String() string {
	switch e {
	case EngineVM:
		return "vm"
	case EngineInterp:
		return "interp"
	case EngineVMLanes:
		return "vm-lanes"
	default:
		return "default"
	}
}

// ParseEngine parses a -engine flag value.  The empty string selects
// EngineDefault.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "default":
		return EngineDefault, nil
	case "vm":
		return EngineVM, nil
	case "interp":
		return EngineInterp, nil
	case "vm-lanes":
		return EngineVMLanes, nil
	default:
		return EngineDefault, fmt.Errorf("cluster: unknown engine %q (want vm, vm-lanes, or interp)", s)
	}
}

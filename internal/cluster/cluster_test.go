package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"cucc/internal/comm"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/simnet"
	"cucc/internal/transport"
)

func newTestCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	c, err := New(Config{Nodes: n, Machine: machine.Intel6226(), Net: simnet.IB100()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestAllocSameOffsets(t *testing.T) {
	c := newTestCluster(t, 4)
	a := c.Alloc(kir.F32, 100)
	b := c.Alloc(kir.U8, 13)
	d := c.Alloc(kir.I32, 7)
	if a.Off != 0 || b.Off != 400 || d.Off != 413 {
		t.Errorf("offsets = %d/%d/%d, want 0/400/413", a.Off, b.Off, d.Off)
	}
	if d.Bytes() != 28 {
		t.Errorf("d.Bytes() = %d, want 28", d.Bytes())
	}
	for r := 0; r < 4; r++ {
		if got := len(c.Region(r, d)); got != 28 {
			t.Errorf("node %d region length = %d", r, got)
		}
	}
}

func TestWriteAllReadBack(t *testing.T) {
	c := newTestCluster(t, 3)
	b := c.Alloc(kir.F32, 8)
	data := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	if err := c.WriteAllF32(b, data); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		got := c.ReadF32(r, b)
		for i := range data {
			if got[i] != data[i] {
				t.Fatalf("node %d: [%d] = %g, want %g", r, i, got[i], data[i])
			}
		}
	}
	if err := c.VerifyIdentical(b); err != nil {
		t.Errorf("VerifyIdentical: %v", err)
	}
}

func TestVerifyIdenticalDetectsDivergence(t *testing.T) {
	c := newTestCluster(t, 2)
	b := c.Alloc(kir.I32, 4)
	if err := c.WriteAllI32(b, []int32{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	// Corrupt node 1 privately.
	c.Region(1, b)[5] = 0xFF
	if err := c.VerifyIdentical(b); err == nil {
		t.Error("divergent memory not detected")
	}
}

func TestMemoryIsolation(t *testing.T) {
	c := newTestCluster(t, 2)
	b := c.Alloc(kir.F32, 4)
	m0 := c.Mem(0, map[int]Buffer{0: b})
	m1 := c.Mem(1, map[int]Buffer{0: b})
	m0.StoreF32(0, 2, 42)
	if m1.LoadF32(0, 2) == 42 {
		t.Fatal("node memories are shared; they must be private")
	}
	if m0.LoadF32(0, 2) != 42 {
		t.Fatal("node 0 lost its own write")
	}
}

func TestNodeMemTypes(t *testing.T) {
	c := newTestCluster(t, 1)
	f := c.Alloc(kir.F32, 2)
	i := c.Alloc(kir.I32, 2)
	u := c.Alloc(kir.U8, 2)
	m := c.Mem(0, map[int]Buffer{0: f, 1: i, 2: u})
	m.StoreF32(0, 1, 2.5)
	m.StoreI32(1, 0, -7)
	m.StoreU8(2, 1, 200)
	if m.LoadF32(0, 1) != 2.5 || m.LoadI32(1, 0) != -7 || m.LoadU8(2, 1) != 200 {
		t.Error("typed load/store round-trip failed")
	}
	if m.Len(0) != 2 || m.Len(2) != 2 {
		t.Error("Len mismatch")
	}
}

func TestRunParallelAndAllgather(t *testing.T) {
	const n = 4
	c := newTestCluster(t, n)
	b := c.Alloc(kir.U8, 4*16)
	// Each node fills its own quarter, then an in-place Allgather makes
	// the buffer identical everywhere.
	err := c.RunParallel(func(rank int, conn transport.Conn) error {
		region := c.Region(rank, b)
		for i := 0; i < 16; i++ {
			region[rank*16+i] = byte(rank + 1)
		}
		_, err := comm.AllgatherRing(conn, region, 16)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyIdentical(b); err != nil {
		t.Fatal(err)
	}
	got := c.Region(0, b)
	for r := 0; r < n; r++ {
		for i := 0; i < 16; i++ {
			if got[r*16+i] != byte(r+1) {
				t.Fatalf("byte %d = %d, want %d", r*16+i, got[r*16+i], r+1)
			}
		}
	}
}

func TestClocks(t *testing.T) {
	c := newTestCluster(t, 3)
	c.Node(0).Clock = 1.0
	c.Node(1).Clock = 3.0
	c.Node(2).Clock = 2.0
	if c.MaxClock() != 3.0 {
		t.Errorf("MaxClock = %g", c.MaxClock())
	}
	c.SyncClocksMax(0.5)
	for r := 0; r < 3; r++ {
		if c.Node(r).Clock != 3.5 {
			t.Errorf("node %d clock = %g, want 3.5", r, c.Node(r).Clock)
		}
	}
	c.ResetClocks()
	if c.MaxClock() != 0 {
		t.Error("ResetClocks did not zero clocks")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0}); err == nil {
		t.Error("zero-node cluster accepted")
	}
}

func TestMemoryCapEnforced(t *testing.T) {
	c, err := New(Config{Nodes: 2, Machine: machine.Intel6226(), Net: simnet.IB100(), MaxBytesPerNode: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Alloc(kir.F32, 128) // 512 bytes, fine
	if got := c.BytesPerNode(); got != 512 {
		t.Errorf("BytesPerNode = %d, want 512", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("over-cap allocation did not panic")
		}
	}()
	c.Alloc(kir.F32, 1024) // 4 KiB, over the 1 KiB cap
}

func TestRunParallelJoinsAllErrors(t *testing.T) {
	c := newTestCluster(t, 4)
	err := c.RunParallel(func(rank int, conn transport.Conn) error {
		switch rank {
		case 1:
			return errors.New("bad block split")
		case 3:
			return errors.New("oom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("RunParallel swallowed the failures")
	}
	msg := err.Error()
	for _, want := range []string{"node 1", "bad block split", "node 3", "oom"} {
		if !strings.Contains(msg, want) {
			t.Errorf("joined error %q missing %q", msg, want)
		}
	}
}

// TestRunParallelAbortUnblocksCollective: one rank failing before it joins
// the collective must abort its peers' pending receives instead of
// deadlocking them.  Pre-abort this test would hang until the suite
// timeout.
func TestRunParallelAbortUnblocksCollective(t *testing.T) {
	c, err := New(Config{
		Nodes: 4, Machine: machine.Intel6226(), Net: simnet.IB100(),
		RecvTimeout: 30 * time.Second, // backstop only; the abort must win
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	b := c.Alloc(kir.U8, 4*8)
	start := time.Now()
	err = c.RunParallel(func(rank int, conn transport.Conn) error {
		if rank == 2 {
			return errors.New("rank 2 exploded")
		}
		_, err := comm.AllgatherRing(conn, c.Region(rank, b), 8)
		return err
	})
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("peers unblocked only after %v", el)
	}
	if err == nil {
		t.Fatal("RunParallel returned nil despite a failing rank")
	}
	if !strings.Contains(err.Error(), "rank 2 exploded") {
		t.Errorf("error %q missing the originating failure", err)
	}
	if !errors.Is(err, transport.ErrAborted) {
		t.Errorf("peers' errors do not wrap ErrAborted: %v", err)
	}
}

func TestRecvTimeoutConfig(t *testing.T) {
	c, err := New(Config{
		Nodes: 2, Machine: machine.Intel6226(), Net: simnet.IB100(),
		RecvTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.RunParallel(func(rank int, conn transport.Conn) error {
		if rank == 0 {
			_, err := conn.Recv(1, 7) // nobody sends: default deadline applies
			return err
		}
		return nil
	})
	if !errors.Is(err, transport.ErrTimeout) {
		t.Errorf("error = %v, want ErrTimeout via configured default", err)
	}
}

func TestClusterFaultInjection(t *testing.T) {
	c, err := New(Config{
		Nodes: 2, Machine: machine.Intel6226(), Net: simnet.IB100(),
		Fault: &transport.FaultConfig{Seed: 4, Duplicate: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.RunParallel(func(rank int, conn transport.Conn) error {
		if rank == 0 {
			return conn.Send(1, 1, []byte("hello"))
		}
		got, err := conn.RecvTimeout(0, 1, 5*time.Second)
		if err != nil {
			return err
		}
		if string(got) != "hello" {
			return fmt.Errorf("payload %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Faults()
	if st == nil {
		t.Fatal("Faults() returned nil on a fault-injecting cluster")
	}
	if st.Duplicates == 0 {
		t.Error("no duplicates injected despite Duplicate: 1.0")
	}
	if newTestCluster(t, 2).Faults() != nil {
		t.Error("Faults() non-nil on a fault-free cluster")
	}
}

// TestRunParallelPreservesCauseIdentity: the cause a failing rank's error
// carries must errors.Is/As-match on the surviving ranks' aborts and in the
// joined error.  Before the %w fix, RunParallel aborted peers with
// fmt.Errorf("node %d: %v", ...), flattening the cause to a string —
// recovery's failure classification depends on the identity surviving.
func TestRunParallelPreservesCauseIdentity(t *testing.T) {
	sentinel := errors.New("simulated crash")
	c, err := New(Config{
		Nodes: 3, Machine: machine.Intel6226(), Net: simnet.IB100(),
		RecvTimeout: 30 * time.Second, // backstop only; the abort must win
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var mu sync.Mutex
	observed := make([]error, 3)
	err = c.RunParallel(func(rank int, conn transport.Conn) error {
		if rank == 1 {
			return fmt.Errorf("phase 2: %w", sentinel)
		}
		_, rerr := conn.Recv(1, 9)
		mu.Lock()
		observed[rank] = rerr
		mu.Unlock()
		return rerr
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("joined error lost the cause: %v", err)
	}
	var ne *NodeError
	if !errors.As(err, &ne) {
		t.Fatalf("joined error carries no NodeError: %v", err)
	}
	for _, r := range []int{0, 2} {
		if !errors.Is(observed[r], transport.ErrAborted) {
			t.Errorf("rank %d error = %v, want ErrAborted", r, observed[r])
		}
		if !errors.Is(observed[r], sentinel) {
			t.Errorf("rank %d abort flattened the cause: %v", r, observed[r])
		}
	}
	// Classification-style attribution: exactly node 1 is the non-aborted
	// failure in the join.
	seen := map[int]bool{}
	var walk func(error)
	walk = func(e error) {
		if e == nil {
			return
		}
		if n, ok := e.(*NodeError); ok {
			if !errors.Is(n, transport.ErrAborted) {
				seen[n.Node] = true
			}
			return
		}
		if u, ok := e.(interface{ Unwrap() []error }); ok {
			for _, s := range u.Unwrap() {
				walk(s)
			}
		}
	}
	walk(err)
	if len(seen) != 1 || !seen[1] {
		t.Errorf("non-aborted failures attributed to %v, want node 1 only", seen)
	}
}

// TestSubgroupRunsAfterAbort: after a rank failure kills the main network,
// AdoptSubgroup connects the survivors over a fresh transport that still
// runs collectives, RejoinAll restores full width, and a cluster-level
// abort (external cancellation) blocks regrouping for good.
func TestSubgroupRunsAfterAbort(t *testing.T) {
	c, err := New(Config{
		Nodes: 4, Machine: machine.Intel6226(), Net: simnet.IB100(),
		RecvTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	b := c.Alloc(kir.U8, 4*8)
	err = c.RunParallel(func(rank int, conn transport.Conn) error {
		if rank == 2 {
			return errors.New("rank 2 crashed")
		}
		_, err := comm.AllgatherRing(conn, c.Region(rank, b), 8)
		return err
	})
	if err == nil {
		t.Fatal("want the crash to fail the full-width run")
	}

	g, err := c.AdoptSubgroup([]int{0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 3 || g.NodeOf(2) != 3 || g.Full() {
		t.Fatalf("subgroup shape wrong: size=%d nodeOf(2)=%d full=%v", g.Size(), g.NodeOf(2), g.Full())
	}
	sb := c.Alloc(kir.U8, 3*8)
	for m, node := range g.Nodes() {
		for i := 0; i < 8; i++ {
			c.Region(node, sb)[m*8+i] = byte(10 + m)
		}
	}
	if err := g.RunParallel(func(m int, conn transport.Conn) error {
		_, err := comm.AllgatherRing(conn, c.Region(g.NodeOf(m), sb), 8)
		return err
	}); err != nil {
		t.Fatalf("subgroup collective failed on the fresh network: %v", err)
	}
	for _, node := range g.Nodes() {
		for m := 0; m < 3; m++ {
			if c.Region(node, sb)[m*8] != byte(10+m) {
				t.Fatalf("node %d chunk %d not gathered", node, m)
			}
		}
	}

	if err := c.RejoinAll(); err != nil {
		t.Fatal(err)
	}
	if err := c.RunParallel(func(rank int, conn transport.Conn) error {
		if rank == 0 {
			return conn.Send(1, 1, []byte("post-rejoin"))
		}
		if rank == 1 {
			_, err := conn.RecvTimeout(0, 1, 5*time.Second)
			return err
		}
		return nil
	}); err != nil {
		t.Fatalf("full-width run after rejoin failed: %v", err)
	}

	c.Abort(errors.New("deadline"))
	if _, err := c.AdoptSubgroup([]int{0, 1}); err == nil {
		t.Fatal("AdoptSubgroup after a cluster-level abort must refuse")
	}
}

// Package machine models the CPU hardware of the paper's evaluation
// clusters (Table 1) and converts per-block kernel work into node
// execution time with a wave-based roofline model.
//
// The model is deliberately first-order: per-core scalar and SIMD flop
// rates, per-node memory bandwidth with a last-level-cache bonus, and
// core-count waves for block scheduling.  These are exactly the effects the
// paper uses to explain its results (block waves for the Kmeans anomaly,
// SIMD width vs. core count for §8.2, LLC capacity for Transpose vs. GPU).
package machine

import (
	"fmt"
	"math"
)

// CPU describes one cluster node (all sockets combined).
type CPU struct {
	Name           string
	Sockets        int
	CoresPerSocket int
	ClockGHz       float64
	// SIMDLanesF32 is the number of float32 lanes per vector unit
	// (AVX-512: 16, AVX2: 8).
	SIMDLanesF32 int
	// FMAUnits is the number of FMA pipes per core.
	FMAUnits int
	// ScalarIPC scales scalar throughput relative to one FMA per cycle
	// (microarchitectural factor, e.g. Zen 3 vs Skylake).
	ScalarIPC float64
	// SIMDEfficiency derates peak vector throughput for compiled loops.
	SIMDEfficiency float64
	// MemBWGBs is the node memory bandwidth in GB/s.
	MemBWGBs float64
	// LLCMB is the total last-level cache capacity in MB.
	LLCMB float64
	// CacheBWGBs is the aggregate LLC bandwidth in GB/s.
	CacheBWGBs float64
	// Year is the release year (Table 1).
	Year int
	// TDPWatts is the node power budget (sockets + memory), for the
	// §8.4 cost/energy analysis.
	TDPWatts float64
}

// Intel6226 is one SIMD-Focused node: 2 x Intel Xeon Gold 6226
// (Cascade Lake, 12 cores, 2.7 GHz, AVX-512).
func Intel6226() CPU {
	return CPU{
		Name:           "2 x Intel Xeon Gold 6226",
		Sockets:        2,
		CoresPerSocket: 12,
		ClockGHz:       2.7,
		SIMDLanesF32:   16,
		FMAUnits:       2,
		ScalarIPC:      1.0,
		SIMDEfficiency: 0.5,
		MemBWGBs:       281.6, // 2 x 6ch DDR4-2933
		LLCMB:          2 * 19.25,
		CacheBWGBs:     1000,
		Year:           2019,
		TDPWatts:       2*125 + 50, // 2 x Gold 6226 + DRAM
	}
}

// AMD7713 is one Thread-Focused node: 2 x AMD EPYC 7713 (Zen 3, 64 cores,
// 2.0 GHz, AVX2).
func AMD7713() CPU {
	return CPU{
		Name:           "2 x AMD EPYC 7713",
		Sockets:        2,
		CoresPerSocket: 64,
		ClockGHz:       2.0,
		SIMDLanesF32:   8,
		FMAUnits:       2,
		ScalarIPC:      1.35,
		SIMDEfficiency: 0.5,
		MemBWGBs:       409.6, // 2 x 8ch DDR4-3200
		LLCMB:          2 * 256,
		CacheBWGBs:     1500,
		Year:           2021,
		TDPWatts:       2*225 + 100, // 2 x EPYC 7713 + DRAM
	}
}

// Cores returns the total core count of the node.
func (c CPU) Cores() int { return c.Sockets * c.CoresPerSocket }

// PeakTFLOPs returns the single-precision peak of the node
// (cores x clock x FMA units x lanes x 2 flops/FMA), reproducing Table 1.
func (c CPU) PeakTFLOPs() float64 {
	return float64(c.Cores()) * c.ClockGHz * 1e9 *
		float64(c.FMAUnits) * float64(c.SIMDLanesF32) * 2 / 1e12
}

// scalarFlopsPerSec is the per-core scalar (non-vectorized) flop rate.
func (c CPU) scalarFlopsPerSec() float64 {
	return c.ClockGHz * 1e9 * 2 * c.ScalarIPC
}

// vecFlopsPerSec is the per-core vectorized flop rate after efficiency
// derating.
func (c CPU) vecFlopsPerSec() float64 {
	return c.ClockGHz * 1e9 * float64(c.FMAUnits) * float64(c.SIMDLanesF32) * 2 * c.SIMDEfficiency
}

// BlockWork is the per-block work of a kernel: the inputs of the roofline
// model, either measured by the interpreter or computed analytically by the
// native kernels.
type BlockWork struct {
	// VecFlops are float operations in loops the compiler can vectorize
	// across GPU threads.
	VecFlops float64
	// SerialFlops are float operations in loops with dependencies that
	// prevent SIMD (e.g., BinomialOption's time-stepping loop).
	SerialFlops float64
	// IntOps are integer/address operations (executed at scalar rate,
	// partially hidden; weighted at half cost).
	IntOps float64
	// Bytes is global-memory traffic per block.
	Bytes float64
}

// Add accumulates o into w.
func (w *BlockWork) Add(o BlockWork) {
	w.VecFlops += o.VecFlops
	w.SerialFlops += o.SerialFlops
	w.IntOps += o.IntOps
	w.Bytes += o.Bytes
}

// Scale returns the work multiplied by f.
func (w BlockWork) Scale(f float64) BlockWork {
	return BlockWork{VecFlops: w.VecFlops * f, SerialFlops: w.SerialFlops * f, IntOps: w.IntOps * f, Bytes: w.Bytes * f}
}

// ExecConfig tunes node execution.
type ExecConfig struct {
	// SIMD enables vector execution (disabled for the §8.2 ablation).
	SIMD bool
	// CoresCap limits usable cores (0 = all); §8.2 caps the
	// Thread-Focused node at 64 cores for iso-FLOP comparisons.
	CoresCap int
	// WorkingSetBytes is the total data touched by the phase, used for
	// the LLC residency decision; 0 means "assume memory-resident".
	WorkingSetBytes float64
}

// DefaultConfig enables SIMD on all cores.
func DefaultConfig() ExecConfig { return ExecConfig{SIMD: true} }

// EffectiveCores returns the cores a phase actually schedules blocks over:
// the node's core count clipped by the config's cap.  Estimated block
// execution time divides by this number (PhaseTime runs blocks in waves of
// EffectiveCores); the real runtime's intra-node worker pool
// (internal/core) is the wall-clock analogue of the same quantity.
func (c CPU) EffectiveCores(cfg ExecConfig) int {
	n := c.Cores()
	if cfg.CoresCap > 0 && cfg.CoresCap < n {
		n = cfg.CoresCap
	}
	return n
}

// BlockTime returns the compute time of one block on one core.  Integer
// (address) operations accompany the float work: the share belonging to
// vectorizable loops vectorizes with them, the rest executes at scalar
// rate (weighted at half cost, partially hidden by the FP pipes).
func (c CPU) BlockTime(w BlockWork, cfg ExecConfig) float64 {
	scalar := c.scalarFlopsPerSec()
	flops := w.VecFlops + w.SerialFlops
	vecShare := 0.0
	if flops > 0 {
		vecShare = w.VecFlops / flops
	}
	intVec := 0.5 * w.IntOps * vecShare
	intSerial := 0.5 * w.IntOps * (1 - vecShare)
	t := (w.SerialFlops + intSerial) / scalar
	vecOps := w.VecFlops + intVec
	if cfg.SIMD {
		t += vecOps / c.vecFlopsPerSec()
	} else {
		t += vecOps / scalar
	}
	return t
}

// effBandwidth returns the bandwidth seen by a phase with the given working
// set: LLC-resident sets stream from cache.
func (c CPU) effBandwidth(workingSetBytes float64) float64 {
	if workingSetBytes > 0 && workingSetBytes <= c.LLCMB*1e6 {
		return c.CacheBWGBs * 1e9
	}
	return c.MemBWGBs * 1e9
}

// PhaseTime returns the makespan of executing `blocks` identical blocks of
// work w on the node: blocks are scheduled in waves of up to Cores()
// blocks; each wave is roofline-limited by per-core compute or by node
// memory bandwidth shared across the wave.
func (c CPU) PhaseTime(blocks int, w BlockWork, cfg ExecConfig) float64 {
	if blocks <= 0 {
		return 0
	}
	cores := c.EffectiveCores(cfg)
	bt := c.BlockTime(w, cfg)
	bw := c.effBandwidth(cfg.WorkingSetBytes)
	fullWaves := blocks / cores
	rem := blocks % cores
	total := 0.0
	if fullWaves > 0 {
		waveTime := math.Max(bt, float64(cores)*w.Bytes/bw)
		total += float64(fullWaves) * waveTime
	}
	if rem > 0 {
		total += math.Max(bt, float64(rem)*w.Bytes/bw)
	}
	return total
}

// Waves returns how many scheduling waves the blocks need; the quantity
// behind the paper's Kmeans 16->32 node anomaly.
func (c CPU) Waves(blocks int, cfg ExecConfig) int {
	if blocks <= 0 {
		return 0
	}
	cores := c.EffectiveCores(cfg)
	return (blocks + cores - 1) / cores
}

func (c CPU) String() string {
	return fmt.Sprintf("%s (%d cores, %.1f GHz, %d-lane SIMD, %.2f TFLOP/s)",
		c.Name, c.Cores(), c.ClockGHz, c.SIMDLanesF32, c.PeakTFLOPs())
}

package machine

import (
	"math"
	"testing"
	"testing/quick"
)

// TestTable1Specs verifies the hardware models reproduce the paper's
// Table 1: core counts and peak TFLOPs.
func TestTable1Specs(t *testing.T) {
	simd := Intel6226()
	if simd.Cores() != 24 {
		t.Errorf("SIMD-Focused cores = %d, want 24", simd.Cores())
	}
	if got := simd.PeakTFLOPs(); math.Abs(got-4.15) > 0.05 {
		t.Errorf("SIMD-Focused peak = %.3f TFLOPs, want 4.15", got)
	}
	if simd.Year != 2019 {
		t.Errorf("SIMD-Focused year = %d, want 2019", simd.Year)
	}

	thread := AMD7713()
	if thread.Cores() != 128 {
		t.Errorf("Thread-Focused cores = %d, want 128", thread.Cores())
	}
	if got := thread.PeakTFLOPs(); math.Abs(got-8.19) > 0.05 {
		t.Errorf("Thread-Focused peak = %.3f TFLOPs, want 8.19", got)
	}
	if thread.Year != 2021 {
		t.Errorf("Thread-Focused year = %d, want 2021", thread.Year)
	}
}

// Test64CoreCapEqualizesTFLOPs checks the §8.2 iso-FLOP setup: capping the
// Thread-Focused node at 64 cores gives ~4.096 TFLOPs, comparable to the
// SIMD-Focused node's 4.147.
func Test64CoreCapEqualizesTFLOPs(t *testing.T) {
	thread := AMD7713()
	capped := float64(64) * thread.ClockGHz * 1e9 * float64(thread.FMAUnits) * float64(thread.SIMDLanesF32) * 2 / 1e12
	if math.Abs(capped-4.096) > 0.01 {
		t.Errorf("capped peak = %.3f, want 4.096", capped)
	}
}

func TestWaves(t *testing.T) {
	simd := Intel6226() // 24 cores
	cases := []struct {
		blocks, want int
	}{
		{0, 0}, {1, 1}, {24, 1}, {25, 2}, {28, 2}, {34, 2}, {48, 2}, {49, 3},
	}
	for _, c := range cases {
		if got := simd.Waves(c.blocks, DefaultConfig()); got != c.want {
			t.Errorf("Waves(%d) = %d, want %d", c.blocks, got, c.want)
		}
	}
	// Cores cap applies.
	thread := AMD7713()
	if got := thread.Waves(128, ExecConfig{SIMD: true, CoresCap: 64}); got != 2 {
		t.Errorf("capped Waves(128) = %d, want 2", got)
	}
}

func TestBlockTimeSIMDSpeedup(t *testing.T) {
	simd := Intel6226()
	w := BlockWork{VecFlops: 1e6}
	cfg := DefaultConfig()
	on := simd.BlockTime(w, cfg)
	cfg.SIMD = false
	off := simd.BlockTime(w, cfg)
	ratio := off / on
	// AVX-512 with 2 FMA units at 50% efficiency: 16x over scalar.
	if math.Abs(ratio-16) > 0.5 {
		t.Errorf("SIMD on/off ratio = %.1f, want ~16", ratio)
	}

	// Serial flops see no SIMD benefit.
	ws := BlockWork{SerialFlops: 1e6}
	cfg = DefaultConfig()
	on = simd.BlockTime(ws, cfg)
	cfg.SIMD = false
	off = simd.BlockTime(ws, cfg)
	if on != off {
		t.Errorf("serial flops changed with SIMD: %g vs %g", on, off)
	}
}

func TestPhaseTimeMonotone(t *testing.T) {
	simd := Intel6226()
	w := BlockWork{VecFlops: 1e6, Bytes: 1e4}
	cfg := DefaultConfig()
	prev := 0.0
	for _, blocks := range []int{1, 10, 24, 25, 48, 100, 313} {
		cur := simd.PhaseTime(blocks, w, cfg)
		if cur < prev {
			t.Errorf("PhaseTime(%d) = %g < previous %g", blocks, cur, prev)
		}
		prev = cur
	}
	if simd.PhaseTime(0, w, cfg) != 0 {
		t.Error("PhaseTime(0) != 0")
	}
}

// Property: phase time never beats the perfect-parallel lower bound and
// never exceeds the fully-serial upper bound.
func TestPhaseTimeBounds(t *testing.T) {
	simd := Intel6226()
	cfg := DefaultConfig()
	f := func(blocksRaw uint16, flopsRaw uint32) bool {
		blocks := int(blocksRaw%2000) + 1
		w := BlockWork{VecFlops: float64(flopsRaw%1000000) + 1}
		bt := simd.BlockTime(w, cfg)
		total := simd.PhaseTime(blocks, w, cfg)
		lower := bt * float64(simd.Waves(blocks, cfg))
		upper := bt * float64(blocks)
		return total >= lower-1e-15 && total <= upper+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryBoundWave(t *testing.T) {
	simd := Intel6226()
	// A block that moves lots of bytes with almost no compute.
	w := BlockWork{VecFlops: 1, Bytes: 100e6}
	cfg := DefaultConfig()
	got := simd.PhaseTime(24, w, cfg)
	want := 24 * 100e6 / (simd.MemBWGBs * 1e9)
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("memory-bound wave = %g, want %g", got, want)
	}
	// LLC-resident working set uses cache bandwidth.
	cfg.WorkingSetBytes = 10e6
	fast := simd.PhaseTime(24, w, cfg)
	if fast >= got {
		t.Errorf("LLC-resident phase (%g) not faster than memory-resident (%g)", fast, got)
	}
}

func TestKmeansWaveAnomaly(t *testing.T) {
	// Paper §7.2: 313 blocks on 24-core nodes.  16 nodes: 19+9 callback =
	// 1+1 waves.  32 nodes: 9+25 callback = 1+2 waves -> slower.
	simd := Intel6226()
	cfg := DefaultConfig()
	waves16 := simd.Waves(19, cfg) + simd.Waves(9, cfg)
	waves32 := simd.Waves(9, cfg) + simd.Waves(25, cfg)
	if waves16 != 2 || waves32 != 3 {
		t.Errorf("waves = %d/%d, want 2/3", waves16, waves32)
	}
}

func TestBlockWorkAccumulation(t *testing.T) {
	var w BlockWork
	w.Add(BlockWork{VecFlops: 1, SerialFlops: 2, IntOps: 3, Bytes: 4})
	w.Add(BlockWork{VecFlops: 10, SerialFlops: 20, IntOps: 30, Bytes: 40})
	if w.VecFlops != 11 || w.SerialFlops != 22 || w.IntOps != 33 || w.Bytes != 44 {
		t.Errorf("accumulated = %+v", w)
	}
	s := w.Scale(2)
	if s.VecFlops != 22 || s.Bytes != 88 {
		t.Errorf("scaled = %+v", s)
	}
}

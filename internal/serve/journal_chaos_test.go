package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cucc/internal/obs"
	"cucc/internal/prof"
	"cucc/internal/recovery"
	"cucc/internal/transport"
)

// eventChain asserts that evs contains types as an ordered subsequence and
// returns the matched events.
func eventChain(t *testing.T, evs []obs.Event, types ...string) []obs.Event {
	t.Helper()
	matched := make([]obs.Event, 0, len(types))
	i := 0
	for _, ev := range evs {
		if i < len(types) && ev.Type == types[i] {
			matched = append(matched, ev)
			i++
		}
	}
	if i != len(types) {
		var got []string
		for _, ev := range evs {
			got = append(got, ev.Type)
		}
		t.Fatalf("journal missing %q from the chain %v; recorded order: %v", types[i], types, got)
	}
	return matched
}

// TestChaosJournalChain kills rank 1 inside a recovery-enabled server's job
// and asserts the flight-recorder story end to end: the journal records the
// complete admission→kill→restore→rejoin event chain, the in-memory dump
// names the recovery, the on-disk dump parses back, and the post-mortem
// renderer names the killed rank, the restore, and the rejoin.
func TestChaosJournalChain(t *testing.T) {
	dir := t.TempDir()
	srv := NewServer(Config{
		Executors:     1,
		Workers:       1,
		RecvTimeout:   5 * time.Second,
		Fault:         &transport.FaultConfig{Seed: 1, KillRank: 1, KillAtOp: 2},
		Journal:       obs.NewJournal(0),
		PostmortemDir: dir,
	})
	defer srv.Drain()

	// The 16-block grid over 4 nodes distributes blocks, so phase 3 touches
	// the transport and reaches the kill (the 4-block quickstart shape
	// degenerates to callbacks-only and never would).
	req := &Request{
		Tenant: "chaos-tenant",
		Source: vecAddSrc,
		Kernel: "vecadd",
		GridX:  16, BlockX: 64,
		Args: []ArgSpec{
			{Kind: "buf", Elem: "f32", Count: 1024},
			{Kind: "buf", Elem: "f32", Count: 1024, Ramp: true},
			{Kind: "buf", Elem: "f32", Count: 1024, Fill: 2},
			{Kind: "int", Int: 1024},
		},
		Nodes: 4,
	}
	resp := srv.Submit(req)
	if resp.Status != StatusOK {
		t.Fatalf("rank loss must be recovered: status %q err %q", resp.Status, resp.Err)
	}
	if resp.Counters[recovery.MetricRestores] < 1 {
		t.Fatal("recovery path not exercised; the chain below would be vacuous")
	}

	evs := srv.Journal().Events()
	chain := eventChain(t, evs,
		obs.EvAdmit, obs.EvDispatch, obs.EvCompile, obs.EvLaunchPhase,
		obs.EvRankLoss, obs.EvRestore, obs.EvRejoin, obs.EvComplete)
	loss := chain[4]
	if loss.Rank != 1 {
		t.Errorf("rank-loss event names rank %d, want 1: %+v", loss.Rank, loss)
	}
	if !strings.Contains(loss.Detail, "[1]") {
		t.Errorf("rank-loss detail does not list the killed node: %q", loss.Detail)
	}
	for i, ev := range chain {
		if ev.Tenant != "chaos-tenant" {
			t.Errorf("chain event %d not attributed to the tenant: %+v", i, ev)
		}
	}

	// The in-memory dump: a recovered (not failed) job.
	d := srv.LastDump()
	if d == nil {
		t.Fatal("no flight-recorder dump retained")
	}
	if d.Reason != obs.DumpReasonRecovery || d.Err != "" {
		t.Errorf("dump reason %q err %q, want recovery with no error", d.Reason, d.Err)
	}
	if d.Tenant != "chaos-tenant" || d.Job != resp.JobID {
		t.Errorf("dump names job %d/%s, want %d/chaos-tenant", d.Job, d.Tenant, resp.JobID)
	}
	if d.Metrics.Counters[recovery.MetricRestores] < 1 {
		t.Error("dump metrics missing the restore counter")
	}
	if len(d.Trace) == 0 {
		t.Error("dump carries no trace window")
	}

	// The on-disk dump parses back and renders as a timeline naming the
	// killed rank, the restore, and the rejoin — the cuccprof -postmortem
	// contract.
	path := filepath.Join(dir, fmt.Sprintf("postmortem-job%d.json", resp.JobID))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.ParseDump(raw)
	if err != nil {
		t.Fatal(err)
	}
	table := prof.AnalyzePostmortem(parsed).Table()
	for _, want := range []string{
		"post-mortem", "chaos-tenant", "recovery",
		"rank-loss", "lost nodes [1]",
		"restore", "rejoin", "repaired nodes [1]",
	} {
		if !strings.Contains(table, want) {
			t.Errorf("post-mortem table missing %q:\n%s", want, table)
		}
	}
	if srv.Registry().Snapshot().Counters[MetricDumps] != 1 {
		t.Errorf("dump counter = %d, want 1", srv.Registry().Snapshot().Counters[MetricDumps])
	}
}

// TestJournalDisabledZeroOverhead: with no journal configured the serving
// path records nothing and retains no dump state unless a postmortem dir
// forces the recorder on.
func TestJournalDisabledZeroOverhead(t *testing.T) {
	srv := NewServer(Config{Executors: 1, Nodes: 2, Workers: 1})
	defer srv.Drain()
	if resp := srv.Submit(&Request{Tenant: "t", Program: "VecAdd", Nodes: 2}); resp.Status != StatusOK {
		t.Fatalf("job failed: %q %q", resp.Status, resp.Err)
	}
	if srv.Journal() != nil {
		t.Error("server fabricated a journal")
	}
	if srv.Journal().Len() != 0 {
		t.Error("nil journal retained events")
	}
}

package serve

import (
	"fmt"
	"net/http"
	"sort"

	"cucc/internal/obs"
	"cucc/internal/recovery"
	"cucc/internal/transport"
)

// JobsHandler returns the /jobs status page: queue depth, running count,
// and the most recent job rows (queued and running first, then finished,
// newest last), as a plain-text table.
func (s *Server) JobsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s.mu.Lock()
		queued, running := s.queued, s.running
		rows := make([]*jobState, 0, len(s.jobStates))
		for _, st := range s.jobStates {
			rows = append(rows, st)
		}
		s.mu.Unlock()
		sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })

		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "queued %d  running %d\n\n", queued, running)
		fmt.Fprintf(w, "%6s  %-12s  %-20s  %-9s  %10s  %10s  %s\n",
			"job", "tenant", "what", "state", "queue_ms", "run_ms", "err")
		for _, st := range rows {
			fmt.Fprintf(w, "%6d  %-12s  %-20s  %-9s  %10.2f  %10.2f  %s\n",
				st.ID, st.Tenant, st.What, st.State, st.QueueMs, st.RunMs, st.Err)
		}
	})
}

// eventsPageWindow caps how many recent events /events renders.
const eventsPageWindow = 256

// EventsHandler returns the /events page: the most recent journal window
// as the deterministic text table (?format=json for the JSON export).
func (s *Server) EventsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if s.journal == nil {
			http.Error(w, "event journal disabled (start the server with a journal)", http.StatusNotFound)
			return
		}
		evs := s.journal.Tail(eventsPageWindow)
		if req.URL.Query().Get("format") == "json" {
			data, err := obs.ExportJSON(evs)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(append(data, '\n'))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%d events retained, %d dropped\n\n", s.journal.Len(), s.journal.Dropped())
		w.Write([]byte(obs.ExportText(evs)))
	})
}

// sloSeries are the /slo page's time-series columns over the sampler's
// delta ring.
var sloSeries = []obs.Series{
	{Label: "qps", Metric: MetricJobsCompleted, Kind: obs.SeriesRate},
	{Label: "bytes/s", Metric: transport.MetricSendBytes, Kind: obs.SeriesRate},
	{Label: "queue", Metric: MetricQueueDepth, Kind: obs.SeriesGauge},
	{Label: "restores/s", Metric: recovery.MetricRestores, Kind: obs.SeriesRate},
}

// SLOHandler returns the /slo page: every tenant's objective, rolling
// attainment, latency quantiles, and error-budget burn, computed from the
// aggregate registry's per-tenant counters and histograms — plus, when the
// sampler is running, the recent qps/bytes/queue-depth/restore-rate series.
// ?format=json returns the []obs.TenantSLO rows.
func (s *Server) SLOHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rows := obs.ComputeSLO(s.reg.Snapshot(), s.cfg.SLO)
		if req.URL.Query().Get("format") == "json" {
			data, err := obs.ExportSLOJSON(rows)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(append(data, '\n'))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(obs.SLOTable(rows)))
		if s.sampler != nil {
			fmt.Fprintf(w, "\nrecent windows (oldest first):\n")
			w.Write([]byte(s.sampler.Table(sloSeries)))
		}
	})
}

// HealthzHandler returns the /healthz readiness endpoint: 200 "ok" while
// serving, 503 "draining" once graceful drain has begun — the signal a
// load balancer needs to stop routing to an instance that received
// SIGTERM.
func (s *Server) HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
}

// HTTPMux bundles the server's observability endpoints: the aggregate
// registry on /metrics (same renderer as metrics.Serve), the job table on
// /jobs, the event journal on /events, per-tenant SLO accounting on /slo,
// and readiness on /healthz.
func (s *Server) HTTPMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.reg)
	mux.Handle("/jobs", s.JobsHandler())
	mux.Handle("/events", s.EventsHandler())
	mux.Handle("/slo", s.SLOHandler())
	mux.Handle("/healthz", s.HealthzHandler())
	return mux
}

package serve

import (
	"fmt"
	"net/http"
	"sort"
)

// JobsHandler returns the /jobs status page: queue depth, running count,
// and the most recent job rows (queued and running first, then finished,
// newest last), as a plain-text table.
func (s *Server) JobsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s.mu.Lock()
		queued, running := s.queued, s.running
		rows := make([]*jobState, 0, len(s.jobStates))
		for _, st := range s.jobStates {
			rows = append(rows, st)
		}
		s.mu.Unlock()
		sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })

		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "queued %d  running %d\n\n", queued, running)
		fmt.Fprintf(w, "%6s  %-12s  %-20s  %-9s  %10s  %10s  %s\n",
			"job", "tenant", "what", "state", "queue_ms", "run_ms", "err")
		for _, st := range rows {
			fmt.Fprintf(w, "%6d  %-12s  %-20s  %-9s  %10.2f  %10.2f  %s\n",
				st.ID, st.Tenant, st.What, st.State, st.QueueMs, st.RunMs, st.Err)
		}
	})
}

// HTTPMux bundles the server's observability endpoints: the aggregate
// registry on /metrics (same renderer as metrics.Serve) and the job table
// on /jobs.
func (s *Server) HTTPMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.reg)
	mux.Handle("/jobs", s.JobsHandler())
	return mux
}

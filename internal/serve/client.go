package serve

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// Client is a pipelined connection to a cuccd server: many goroutines can
// Do jobs concurrently over one TCP connection; responses are matched back
// to callers by request ID.
type Client struct {
	conn net.Conn

	nextID atomic.Uint64
	wmu    sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64]chan *Response
	readErr error
	closed  bool
}

// Dial connects to a cuccd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, pending: map[uint64]chan *Response{}}
	go c.readLoop()
	return c, nil
}

// readLoop dispatches response frames to their waiting callers until the
// connection dies, then fails every outstanding call.
func (c *Client) readLoop() {
	for {
		var resp Response
		if err := ReadFrame(c.conn, &resp); err != nil {
			c.mu.Lock()
			c.readErr = err
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- &resp
		}
	}
}

// Do submits one job and blocks until its response arrives (or the
// connection fails).  The client assigns the request ID.
func (c *Client) Do(req *Request) (*Response, error) {
	req.ID = c.nextID.Add(1)
	ch := make(chan *Response, 1)
	c.mu.Lock()
	if c.closed || c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = net.ErrClosed
		}
		return nil, fmt.Errorf("serve: client: %w", err)
	}
	c.pending[req.ID] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := WriteFrame(c.conn, req)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, err
	}
	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		return nil, fmt.Errorf("serve: connection lost awaiting job: %w", err)
	}
	return resp, nil
}

// Close tears the connection down; outstanding Do calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

// Package serve is the long-running service front of the runtime: a daemon
// (cmd/cuccd) that accepts compile+launch jobs over a small length-prefixed
// JSON protocol, schedules them across cluster sessions with per-tenant
// weighted fairness and bounded admission, and returns results, stats, and
// per-job metrics.  It is the layer that turns the one-shot CLIs into the
// paper's end state: idle CPU nodes absorbing migrated GPU work as serving
// capacity.
//
// The wire protocol reuses the transport layer's framing idiom: a 4-byte
// little-endian length prefix followed by a JSON body, with frames capped
// at transport.MaxFrameBytes.  Requests and responses are correlated by a
// client-assigned ID, so one connection can pipeline many jobs.
package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"cucc/internal/core"
	"cucc/internal/transport"
)

// Request is one compile+launch job submission.  Exactly one of Program
// (suite mode: run a named evaluation program at Small scale and verify its
// output) or Source (source mode: compile mini-CUDA source and launch
// Kernel with the given geometry and args) must be set.
type Request struct {
	// ID correlates the response on a pipelined connection; the client
	// assigns it and the server echoes it.
	ID uint64 `json:"id"`
	// Tenant names the submitting tenant for fair scheduling; empty maps
	// to "default".
	Tenant string `json:"tenant,omitempty"`
	// Weight is the tenant's scheduling weight (dispatch share relative to
	// other tenants; <= 0 means 1).  The first request that names a tenant
	// fixes its weight.
	Weight int `json:"weight,omitempty"`

	// Program selects suite mode: a named evaluation program (see
	// suites.Registry) built at Small scale, executed, and checked.
	Program string `json:"program,omitempty"`

	// Source selects source mode: mini-CUDA source compiled on the server
	// (cached across jobs), launching Kernel over Grid x Block with Args.
	Source string    `json:"source,omitempty"`
	Kernel string    `json:"kernel,omitempty"`
	GridX  int       `json:"grid_x,omitempty"`
	GridY  int       `json:"grid_y,omitempty"`
	BlockX int       `json:"block_x,omitempty"`
	BlockY int       `json:"block_y,omitempty"`
	Args   []ArgSpec `json:"args,omitempty"`

	// Nodes / Workers / Engine / Collective configure the job's cluster
	// (0/empty = server defaults).
	Nodes      int    `json:"nodes,omitempty"`
	Workers    int    `json:"workers,omitempty"`
	Engine     string `json:"engine,omitempty"`
	Collective string `json:"collective,omitempty"`

	// DeadlineMs bounds queue wait + execution; past it the job's cluster
	// is aborted and the job fails with a deadline error (0 = server
	// default).
	DeadlineMs int `json:"deadline_ms,omitempty"`
	// TraceCap bounds the job's trace capture (events retained; 0 = server
	// default).
	TraceCap int `json:"trace_cap,omitempty"`
}

// ArgSpec describes one kernel launch argument of a source-mode job.
type ArgSpec struct {
	// Kind is "buf", "int", or "float".
	Kind string `json:"kind"`
	// Elem is the buffer element type: "f32", "i32", or "u8" (buf only).
	Elem string `json:"elem,omitempty"`
	// Count is the buffer element count (buf only).
	Count int `json:"count,omitempty"`
	// Fill is the constant every element starts at; with Ramp, element i
	// starts at Fill + i (deterministic inputs make the response CRCs
	// comparable across runs and fault schedules).
	Fill float64 `json:"fill,omitempty"`
	Ramp bool    `json:"ramp,omitempty"`
	// Int / Float carry scalar argument values.
	Int   int64   `json:"int,omitempty"`
	Float float64 `json:"float,omitempty"`
}

// Response statuses.
const (
	// StatusOK: the job ran to completion (suite mode: output verified).
	StatusOK = "ok"
	// StatusRejected: the job never ran — admission queue full or server
	// draining.  RetryAfterMs hints when to resubmit.
	StatusRejected = "rejected"
	// StatusError: the job was admitted but failed (compile error, launch
	// error, deadline exceeded, ...).
	StatusError = "error"
)

// Response reports one job's outcome.
type Response struct {
	ID    uint64 `json:"id"`
	JobID uint64 `json:"job_id,omitempty"`
	// Status is StatusOK, StatusRejected, or StatusError.
	Status string `json:"status"`
	Err    string `json:"err,omitempty"`
	// RetryAfterMs accompanies StatusRejected: the backpressure hint,
	// derived from the observed service rate and queue depth.
	RetryAfterMs int `json:"retry_after_ms,omitempty"`
	// Queued accompanies StatusRejected: the admission queue depth at
	// rejection time, so clients see the backlog behind the hint.
	Queued int `json:"queued,omitempty"`

	// QueueMs / RunMs split the job's wall time.
	QueueMs float64 `json:"queue_ms,omitempty"`
	RunMs   float64 `json:"run_ms,omitempty"`
	// Stats is the launch's execution report (simulated phase times).
	Stats *core.Stats `json:"stats,omitempty"`
	// Counters is the job's isolated metrics registry at completion —
	// counters only; this job's launches and nothing else's.
	Counters map[string]int64 `json:"counters,omitempty"`
	// TraceEvents / TraceDropped report the job's capped trace capture.
	TraceEvents  int   `json:"trace_events,omitempty"`
	TraceDropped int64 `json:"trace_dropped,omitempty"`
	// BufCRCs are IEEE CRC32 checksums of node 0's buffer arguments in
	// argument order (source mode), for bitwise result comparison.
	BufCRCs []uint32 `json:"buf_crcs,omitempty"`
	// FaultsInjected totals the transport faults injected into this job's
	// cluster (0 without chaos config).
	FaultsInjected int64 `json:"faults_injected,omitempty"`
}

// WriteFrame writes one length-prefixed JSON frame.
func WriteFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if uint32(len(body)) > transport.MaxFrameBytes {
		return fmt.Errorf("serve: frame of %d bytes exceeds cap %d", len(body), transport.MaxFrameBytes)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed JSON frame into v.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > transport.MaxFrameBytes {
		return fmt.Errorf("serve: frame of %d bytes exceeds cap %d", n, transport.MaxFrameBytes)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

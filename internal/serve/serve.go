package serve

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cucc/internal/metrics"
	"cucc/internal/obs"
	"cucc/internal/recovery"
	"cucc/internal/transport"
)

// Server-level metric names.  These live in the server's aggregate registry
// alongside the merged per-job counters; the "serve." prefix keeps them
// disjoint from job-produced names so the aggregation invariant (aggregate
// counter == sum of per-job counters) stays checkable.
const (
	MetricJobsSubmitted = "serve.jobs.submitted"
	MetricJobsAdmitted  = "serve.jobs.admitted"
	MetricJobsRejected  = "serve.jobs.rejected"
	MetricJobsInvalid   = "serve.jobs.invalid"
	MetricJobsCompleted = "serve.jobs.completed"
	MetricJobsFailed    = "serve.jobs.failed"
	MetricJobsDeadline  = "serve.jobs.deadline_exceeded"
	MetricQueueSec      = "serve.job.queue_seconds"
	MetricRunSec        = "serve.job.run_seconds"
	MetricQueueDepth    = "serve.queue.depth"
	MetricDumps         = "serve.postmortem.dumps"
	MetricDumpErrors    = "serve.postmortem.errors"
)

// Config tunes the daemon.
type Config struct {
	// QueueCap bounds the admission queue across all tenants; submissions
	// past it are rejected with a retry-after hint (backpressure instead
	// of unbounded memory).  <= 0 selects 64.
	QueueCap int
	// Executors is the number of jobs run concurrently.  <= 0 selects 2.
	Executors int
	// Nodes is the default job cluster size (request may override, capped
	// by MaxNodes).  <= 0 selects 4.
	Nodes int
	// MaxNodes caps per-request cluster sizes.  <= 0 selects 32.
	MaxNodes int
	// Workers is the default intra-node worker width (0 = all CPUs).
	Workers int
	// RecvTimeout is each job cluster's transport receive deadline
	// (0 = cluster default).
	RecvTimeout time.Duration
	// DefaultDeadline bounds jobs that do not set one (queue wait +
	// execution).  <= 0 selects 30s.
	DefaultDeadline time.Duration
	// TraceCap is the default per-job trace capture bound.  <= 0 selects
	// 4096 events.
	TraceCap int
	// Fault, when non-nil, injects transport faults into every job's
	// cluster (chaos testing the serving path).
	Fault *transport.FaultConfig
	// MaxBytesPerNode caps each job cluster's per-node heap (0 = 256 MiB;
	// a service must bound what one job can allocate).
	MaxBytesPerNode int
	// Metrics is the server-level aggregate registry; nil allocates a
	// fresh one.  Per-job registries are always isolated and merged into
	// this one at job completion.
	Metrics *metrics.Registry
	// Recovery is the elastic fault-recovery policy applied to every job's
	// cluster.  nil selects the enabled default — a serving layer should
	// survive a rank loss rather than fail the job; point at a zero
	// recovery.Policy to disable.
	Recovery *recovery.Policy
	// Journal, when non-nil, is the structured event journal every stage of
	// the serving path records into (admission, dispatch, compile, launch
	// phases, recovery, drain).  Nil disables journaling at zero cost.
	Journal *obs.Journal
	// SLO configures per-tenant service-level objectives for the /slo page
	// (the zero value yields latency-free objectives at the default
	// attainment target).
	SLO obs.SLOConfig
	// SampleEvery, when > 0, starts a background sampler snapshotting the
	// aggregate registry on this interval into a bounded delta ring (the
	// qps / bytes-per-sec / queue-depth / restore-rate series on /slo).
	SampleEvery time.Duration
	// PostmortemDir, when non-empty, is where flight-recorder dumps are
	// written on job failure or recovery (postmortem-job<id>.json, readable
	// by cuccprof -postmortem).  The most recent dump is always retained in
	// memory regardless (Server.LastDump).
	PostmortemDir string
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Executors <= 0 {
		c.Executors = 2
	}
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 32
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.TraceCap <= 0 {
		c.TraceCap = 4096
	}
	if c.MaxBytesPerNode == 0 {
		c.MaxBytesPerNode = 256 << 20
	}
	if c.Metrics == nil {
		c.Metrics = metrics.New()
	}
	if c.Recovery == nil {
		c.Recovery = &recovery.Policy{Enabled: true}
	}
	return c
}

// job is one admitted submission flowing through the scheduler.
type job struct {
	id       uint64
	req      *Request
	tenant   string
	enqueued time.Time
	deadline time.Time
	done     chan *Response
}

// tenantQueue is one tenant's FIFO plus its weighted-round-robin state.
type tenantQueue struct {
	name   string
	weight int
	// credit is the deficit-round-robin allowance: replenished by weight
	// each scheduling round, spent one per dispatch.  A tenant with
	// weight w gets w dispatches per round regardless of how deep its
	// queue is — the fairness mechanism that keeps a flooding tenant from
	// starving the rest.
	credit int
	jobs   []*job
}

// jobState is one row of the /jobs status page.
type jobState struct {
	ID       uint64
	Tenant   string
	What     string // program name or "source:<kernel>"
	State    string // "queued" | "running" | StatusOK | StatusError | ...
	Enqueued time.Time
	QueueMs  float64
	RunMs    float64
	Err      string
}

// testJobStart, when non-nil, is invoked by an executor after dequeuing a
// job and before running it.  Test-only gate: lets the drain test hold a
// job in the running state deterministically.
var testJobStart func(*job)

// Server schedules compile+launch jobs over a bounded multi-tenant queue
// onto a pool of executor goroutines.
type Server struct {
	cfg     Config
	reg     *metrics.Registry
	journal *obs.Journal
	sampler *obs.Sampler

	// lastDump retains the most recent flight-recorder dump (nil until a
	// job fails or recovers), independent of PostmortemDir.
	lastDump atomic.Pointer[obs.Dump]

	mu       sync.Mutex
	cond     *sync.Cond
	tenants  map[string]*tenantQueue
	order    []string // sorted tenant names: deterministic WRR scan order
	rrPos    int
	queued   int
	running  int
	draining bool

	// sourceProgs caches core.Compile results by source text, so repeated
	// source-mode jobs share one parsed module — and therefore one
	// *kir.Kernel identity, which is what makes vm.CompileCached hit
	// across jobs.  Bounded FIFO (the VM-level LRU below it is bounded
	// separately).
	sourceProgs  map[string]*sourceEntry
	sourceOrder  []string
	sourceCap    int
	lastRunSecs  float64 // EWMA of job run time, feeds retry-after hints
	jobStates    map[uint64]*jobState
	doneStates   []uint64 // finished job IDs, oldest first (bounded)
	nextJobID    uint64
	executorsRun sync.WaitGroup

	lnMu      sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]struct{}
	connsWG   sync.WaitGroup
}

// NewServer builds and starts the scheduler (executor goroutines run
// immediately; listeners are attached separately with Serve/Listen).
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		reg:         cfg.Metrics,
		journal:     cfg.Journal,
		tenants:     map[string]*tenantQueue{},
		sourceProgs: map[string]*sourceEntry{},
		sourceCap:   64,
		jobStates:   map[uint64]*jobState{},
		conns:       map[net.Conn]struct{}{},
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.SampleEvery > 0 {
		s.sampler = obs.NewSampler(s.reg, cfg.SampleEvery, 0)
		s.sampler.Start()
	}
	s.reg.GaugeFunc(MetricQueueDepth, func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.queued)
	})
	s.reg.GaugeFunc("serve.jobs.running", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.running)
	})
	for i := 0; i < cfg.Executors; i++ {
		s.executorsRun.Add(1)
		go s.executor()
	}
	return s
}

// Registry returns the server's aggregate registry (server counters plus
// every finished job's merged counters and histograms).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Journal returns the server's structured event journal (nil when
// journaling is disabled).
func (s *Server) Journal() *obs.Journal { return s.journal }

// Sampler returns the server's time-series sampler (nil when sampling is
// disabled).
func (s *Server) Sampler() *obs.Sampler { return s.sampler }

// LastDump returns the most recent flight-recorder dump, nil until a job
// has failed or recovered.
func (s *Server) LastDump() *obs.Dump { return s.lastDump.Load() }

// Draining reports whether the server has entered graceful drain (the
// /healthz readiness signal).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// scope returns the journal handle stamped with one job's identity.
func (s *Server) scope(tenant string, id uint64) obs.Scope {
	return obs.Scope{J: s.journal, Tenant: tenant, Job: id}
}

// Submit runs one job through admission, scheduling, and execution,
// blocking until it finishes or is rejected.  Safe for concurrent use; this
// is the in-process entry the connection handlers and the load generator
// share.
func (s *Server) Submit(req *Request) *Response {
	s.reg.Counter(MetricJobsSubmitted).Inc()
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	if err := validate(req); err != nil {
		s.reg.Counter(MetricJobsInvalid).Inc()
		s.scope(tenant, 0).Record(obs.EvReject, -1, "", "invalid: "+err.Error())
		return &Response{ID: req.ID, Status: StatusError, Err: err.Error()}
	}
	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMs > 0 {
		deadline = time.Duration(req.DeadlineMs) * time.Millisecond
	}
	now := time.Now()
	j := &job{
		req:      req,
		tenant:   tenant,
		enqueued: now,
		deadline: now.Add(deadline),
		done:     make(chan *Response, 1),
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejectTenant(tenant)
		s.scope(tenant, 0).Record(obs.EvReject, -1, "", "server draining")
		return &Response{ID: req.ID, Status: StatusRejected, Err: "server draining"}
	}
	if s.queued >= s.cfg.QueueCap {
		retry := s.retryAfterLocked()
		queued := s.queued
		s.mu.Unlock()
		s.rejectTenant(tenant)
		sc := s.scope(tenant, 0)
		if sc.On() {
			sc.Record(obs.EvReject, -1, "", fmt.Sprintf("admission queue full (%d queued)", queued))
		}
		return &Response{
			ID: req.ID, Status: StatusRejected,
			Err:          fmt.Sprintf("admission queue full (%d queued)", queued),
			RetryAfterMs: retry,
			Queued:       queued,
		}
	}
	s.nextJobID++
	j.id = s.nextJobID
	tq := s.tenants[tenant]
	if tq == nil {
		w := req.Weight
		if w <= 0 {
			w = 1
		}
		tq = &tenantQueue{name: tenant, weight: w}
		s.tenants[tenant] = tq
		s.order = append(s.order, tenant)
		sort.Strings(s.order)
	}
	tq.jobs = append(tq.jobs, j)
	s.queued++
	depth := s.queued
	s.jobStates[j.id] = &jobState{
		ID: j.id, Tenant: tenant, What: describe(req),
		State: "queued", Enqueued: now,
	}
	s.mu.Unlock()
	s.reg.Counter(MetricJobsAdmitted).Inc()
	sc := s.scope(tenant, j.id)
	if sc.On() {
		sc.Record(obs.EvAdmit, -1, describe(req), fmt.Sprintf("queued (depth %d)", depth))
	}
	s.cond.Signal()

	return <-j.done
}

// rejectTenant records one admission rejection against both the
// server-level counter and the tenant's SLO accounting.
func (s *Server) rejectTenant(tenant string) {
	s.reg.Counter(MetricJobsRejected).Inc()
	s.reg.Counter(obs.TenantMetric(tenant, obs.TenantFieldRejected)).Inc()
}

// retryAfterLocked estimates when a rejected client should retry: the time
// for the executors to work one full queue off, from the observed run-time
// EWMA (floor 1ms so the hint is never zero).
func (s *Server) retryAfterLocked() int {
	per := s.lastRunSecs
	if per <= 0 {
		per = 0.01
	}
	ms := int(per * float64(s.queued+1) / float64(s.cfg.Executors) * 1e3)
	if ms < 1 {
		ms = 1
	}
	return ms
}

func validate(req *Request) error {
	switch {
	case req.Program == "" && req.Source == "":
		return errors.New("serve: request needs a program name or kernel source")
	case req.Program != "" && req.Source != "":
		return errors.New("serve: program and source are mutually exclusive")
	case req.Source != "" && req.Kernel == "":
		return errors.New("serve: source mode needs a kernel name")
	}
	return nil
}

func describe(req *Request) string {
	if req.Program != "" {
		return req.Program
	}
	return "source:" + req.Kernel
}

// executor is one scheduling loop: pick under the lock, run outside it.
func (s *Server) executor() {
	defer s.executorsRun.Done()
	for {
		s.mu.Lock()
		for s.queued == 0 && !s.draining {
			s.cond.Wait()
		}
		if s.queued == 0 && s.draining {
			s.mu.Unlock()
			return
		}
		j := s.pickLocked()
		s.queued--
		s.running++
		if st := s.jobStates[j.id]; st != nil {
			st.State = "running"
			st.QueueMs = time.Since(j.enqueued).Seconds() * 1e3
		}
		s.mu.Unlock()
		s.scope(j.tenant, j.id).Record(obs.EvDispatch, -1, describe(j.req), "")

		if testJobStart != nil {
			testJobStart(j)
		}
		resp := s.runJob(j)

		s.mu.Lock()
		s.running--
		s.finishLocked(j, resp)
		s.mu.Unlock()
		j.done <- resp
	}
}

// pickLocked dequeues the next job under deficit weighted round-robin:
// scan tenants in deterministic order from the rotor position, dispatching
// from the first non-empty queue with credit; when no non-empty queue has
// credit, replenish every tenant's credit by its weight (a new round) and
// rescan.  Over one round each backlogged tenant gets dispatches
// proportional to its weight, so a tenant flooding the queue only ever
// consumes its share.
//
// Precondition: s.queued > 0.
func (s *Server) pickLocked() *job {
	for {
		for i := 0; i < len(s.order); i++ {
			tq := s.tenants[s.order[(s.rrPos+i)%len(s.order)]]
			if len(tq.jobs) == 0 || tq.credit <= 0 {
				continue
			}
			j := tq.jobs[0]
			tq.jobs = tq.jobs[1:]
			tq.credit--
			// Advance the rotor past this tenant so equal-weight tenants
			// interleave instead of one draining its whole credit first.
			s.rrPos = (s.rrPos + i + 1) % len(s.order)
			return j
		}
		// No queue with credit: start a new round.  Credit does not
		// accumulate across rounds (idle tenants must not hoard bursts).
		for _, name := range s.order {
			tq := s.tenants[name]
			if len(tq.jobs) > 0 {
				tq.credit = tq.weight
			} else {
				tq.credit = 0
			}
		}
	}
}

// finishLocked records a finished job's terminal state and run-time EWMA.
func (s *Server) finishLocked(j *job, resp *Response) {
	if st := s.jobStates[j.id]; st != nil {
		st.State = resp.Status
		st.RunMs = resp.RunMs
		st.Err = resp.Err
		s.doneStates = append(s.doneStates, j.id)
		// Retain the most recent 64 finished rows on /jobs.
		for len(s.doneStates) > 64 {
			delete(s.jobStates, s.doneStates[0])
			s.doneStates = s.doneStates[1:]
		}
	}
	// Only completed jobs feed the EWMA.  Failures finish fast (compile
	// errors, validation, aborts), and folding their near-zero run times in
	// used to collapse the retry-after hint during a failure burst — exactly
	// when honest backpressure matters most.
	if resp.Status != StatusOK {
		return
	}
	run := resp.RunMs / 1e3
	if run > 0 {
		if s.lastRunSecs == 0 {
			s.lastRunSecs = run
		} else {
			s.lastRunSecs = 0.8*s.lastRunSecs + 0.2*run
		}
	}
}

// Listen binds a TCP listener and serves connections on it in the
// background, returning the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.lnMu.Lock()
	s.listeners = append(s.listeners, ln)
	s.lnMu.Unlock()
	go s.Serve(ln)
	return ln.Addr().String(), nil
}

// Serve accepts connections until the listener closes (Drain closes every
// listener attached with Listen).
func (s *Server) Serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.lnMu.Lock()
		if s.conns == nil {
			s.lnMu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.connsWG.Add(1)
		s.lnMu.Unlock()
		go s.handleConn(conn)
	}
}

// handleConn reads request frames and answers each on its own goroutine, so
// a connection can keep many jobs in flight (responses are written under a
// per-connection mutex and matched by ID).
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		s.lnMu.Lock()
		delete(s.conns, conn)
		s.lnMu.Unlock()
		conn.Close()
		s.connsWG.Done()
	}()
	var wmu sync.Mutex
	var inflight sync.WaitGroup
	defer inflight.Wait()
	for {
		var req Request
		if err := ReadFrame(conn, &req); err != nil {
			return
		}
		inflight.Add(1)
		go func(req Request) {
			defer inflight.Done()
			resp := s.Submit(&req)
			wmu.Lock()
			defer wmu.Unlock()
			WriteFrame(conn, resp) // a dead conn just ends the handler
		}(req)
	}
}

// Drain gracefully shuts the server down: stop admitting (new Submits are
// rejected), close the listeners, reject every queued job cleanly, wait for
// in-flight jobs to finish, then close the remaining connections once their
// responses are flushed.  Idempotent.
func (s *Server) Drain() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	var rejected []*job
	for _, name := range s.order {
		tq := s.tenants[name]
		rejected = append(rejected, tq.jobs...)
		tq.jobs = nil
	}
	s.queued = 0
	for _, j := range rejected {
		if st := s.jobStates[j.id]; st != nil {
			st.State = StatusRejected
			st.Err = "server draining"
		}
	}
	s.mu.Unlock()
	if already {
		return
	}
	if s.journal != nil {
		s.journal.Record(obs.Event{Type: obs.EvDrain, Rank: -1,
			Detail: fmt.Sprintf("draining: %d queued jobs rejected", len(rejected))})
	}

	s.lnMu.Lock()
	for _, ln := range s.listeners {
		ln.Close()
	}
	s.listeners = nil
	s.lnMu.Unlock()

	for _, j := range rejected {
		s.rejectTenant(j.tenant)
		s.scope(j.tenant, j.id).Record(obs.EvReject, -1, "", "server draining")
		j.done <- &Response{ID: j.req.ID, Status: StatusRejected, Err: "server draining"}
	}
	s.cond.Broadcast()
	s.executorsRun.Wait()

	// Every in-flight response is now in its connection goroutine's hands.
	// Half-close each connection's read side so the frame readers return
	// while pending response writes still flush, then wait the handlers
	// out (each closes its own connection after its writes finish).
	s.lnMu.Lock()
	for conn := range s.conns {
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseRead()
		} else {
			conn.Close()
		}
	}
	s.lnMu.Unlock()
	s.connsWG.Wait()
	s.lnMu.Lock()
	s.conns = nil
	s.lnMu.Unlock()
	s.sampler.Stop()
}

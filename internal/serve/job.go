package serve

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/csched"
	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/metrics"
	"cucc/internal/obs"
	"cucc/internal/simnet"
	"cucc/internal/suites"
	"cucc/internal/trace"
)

// errDeadline is the cause runJob aborts a job's cluster with when its
// deadline fires.
var errDeadline = errors.New("serve: job deadline exceeded")

// sourceEntry is one cached compilation of source-mode kernel text.
// Sharing the *core.Program across jobs shares the *kir.Kernel identity,
// which is what lets vm.CompileCached (the bounded process-wide LRU under
// this cache) hit instead of re-lowering per job.
type sourceEntry struct {
	prog *core.Program
	err  error
}

// compileSource resolves source text through the server's bounded compile
// cache, reporting whether the result came from the cache.  Compile errors
// are cached too: a tenant hammering a broken kernel must not pay (or
// charge the server) a fresh parse per retry.
func (s *Server) compileSource(src string) (*core.Program, bool, error) {
	s.mu.Lock()
	if e, ok := s.sourceProgs[src]; ok {
		s.mu.Unlock()
		return e.prog, true, e.err
	}
	s.mu.Unlock()

	prog, err := core.Compile(src)

	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.sourceProgs[src]; ok {
		return e.prog, true, e.err // a racer compiled it; share the winner
	}
	s.sourceProgs[src] = &sourceEntry{prog: prog, err: err}
	s.sourceOrder = append(s.sourceOrder, src)
	for len(s.sourceOrder) > s.sourceCap {
		delete(s.sourceProgs, s.sourceOrder[0])
		s.sourceOrder = s.sourceOrder[1:]
	}
	return prog, false, err
}

// runJob executes one admitted job on a fresh cluster with an isolated
// metrics registry and trace capture, and classifies the outcome.
//
// The cluster is per-job by design: the registry must be wired at cluster
// construction (the metered transport wraps at New), the node heap grows
// monotonically (no free), and Abort is sticky — so "warm" state shared
// across jobs is the compiled-program state (suite registry, source cache,
// VM compile cache), not cluster sessions.
func (s *Server) runJob(j *job) *Response {
	start := time.Now()
	queueMs := start.Sub(j.enqueued).Seconds() * 1e3
	s.reg.Histogram(MetricQueueSec).Observe(start.Sub(j.enqueued).Seconds())
	sc := s.scope(j.tenant, j.id)

	resp := &Response{ID: j.req.ID, JobID: j.id, QueueMs: queueMs}
	fail := func(status, msg string) *Response {
		resp.Status = status
		resp.Err = msg
		resp.RunMs = time.Since(start).Seconds() * 1e3
		s.reg.Histogram(MetricRunSec).Observe(time.Since(start).Seconds())
		s.reg.Counter(MetricJobsFailed).Inc()
		s.reg.Counter(obs.TenantMetric(j.tenant, obs.TenantFieldFailed)).Inc()
		sc.Record(obs.EvFail, -1, describe(j.req), msg)
		return resp
	}

	remaining := time.Until(j.deadline)
	if remaining <= 0 {
		s.reg.Counter(MetricJobsDeadline).Inc()
		return fail(StatusError, "deadline exceeded while queued")
	}

	eng, err := cluster.ParseEngine(j.req.Engine)
	if err != nil {
		return fail(StatusError, err.Error())
	}
	coll, err := csched.ParseChoice(j.req.Collective)
	if err != nil {
		return fail(StatusError, err.Error())
	}
	nodes := j.req.Nodes
	if nodes <= 0 {
		nodes = s.cfg.Nodes
	}
	if nodes > s.cfg.MaxNodes {
		return fail(StatusError, fmt.Sprintf("serve: %d nodes exceeds server cap %d", nodes, s.cfg.MaxNodes))
	}

	jobReg := metrics.New()
	traceCap := j.req.TraceCap
	if traceCap <= 0 {
		traceCap = s.cfg.TraceCap
	}
	rec := trace.NewCapped(traceCap)

	c, err := cluster.New(cluster.Config{
		Nodes:           nodes,
		Machine:         machine.Intel6226(),
		Net:             simnet.IB100(),
		MaxBytesPerNode: s.cfg.MaxBytesPerNode,
		RecvTimeout:     s.cfg.RecvTimeout,
		Fault:           s.cfg.Fault,
		Metrics:         jobReg,
		Recovery:        *s.cfg.Recovery,
		Journal:         sc,
	})
	if err != nil {
		return fail(StatusError, err.Error())
	}
	defer c.Close()

	// Deadline propagation: past the deadline the job's cluster aborts,
	// so every rank blocked in a collective unblocks with ErrAborted and
	// the launch fails promptly instead of holding an executor.
	var deadlineHit atomic.Bool
	timer := time.AfterFunc(remaining, func() { deadlineHit.Store(true); c.Abort(errDeadline) })
	defer timer.Stop()

	workers := j.req.Workers
	if workers <= 0 {
		workers = s.cfg.Workers
	}

	var stats *core.Stats
	var runErr error
	if j.req.Program != "" {
		stats, runErr = s.runSuiteJob(j, c, rec, jobReg, sc, eng, coll, workers)
	} else {
		stats, runErr = s.runSourceJob(j, c, rec, jobReg, sc, eng, coll, workers, resp)
	}

	timer.Stop()
	resp.RunMs = time.Since(start).Seconds() * 1e3
	s.reg.Histogram(MetricRunSec).Observe(time.Since(start).Seconds())
	resp.Stats = stats
	resp.Counters = jobReg.Snapshot().Counters
	resp.TraceEvents = len(rec.Events())
	resp.TraceDropped = rec.Dropped()
	if fs := c.Faults(); fs != nil {
		resp.FaultsInjected = fs.Drops + fs.Delays + fs.Duplicates + fs.Corruptions + fs.SendFailures
	}
	// The per-job registry's counters and histograms fold into the server
	// aggregate; merging after the snapshot keeps resp.Counters exactly
	// the job's own view.
	s.reg.Merge(jobReg.Snapshot())

	// Flight recorder: a failed job — or one that only completed by
	// restoring from a checkpoint — leaves a post-mortem bundle.
	if runErr != nil || (stats != nil && stats.Restores > 0) {
		s.flightRecord(j, runErr, stats, jobReg, rec)
	}

	if runErr != nil {
		if deadlineHit.Load() {
			s.reg.Counter(MetricJobsDeadline).Inc()
			return fail(StatusError, errDeadline.Error())
		}
		return fail(StatusError, runErr.Error())
	}
	resp.Status = StatusOK
	s.reg.Counter(MetricJobsCompleted).Inc()
	s.reg.Counter(obs.TenantMetric(j.tenant, obs.TenantFieldCompleted)).Inc()
	s.reg.Histogram(obs.TenantMetric(j.tenant, obs.TenantFieldLatency)).
		Observe(time.Since(j.enqueued).Seconds())
	if sc.On() {
		restores := 0
		if stats != nil {
			restores = stats.Restores
		}
		sc.Record(obs.EvComplete, -1, describe(j.req),
			fmt.Sprintf("ok: restores=%d", restores))
	}
	return resp
}

// dumpJournalWindow is how many recent journal events a flight-recorder
// dump captures: enough causal context around the failure without shipping
// the whole ring.
const dumpJournalWindow = 256

// flightRecord bundles the recent journal window, the job's isolated
// metrics snapshot, and its capped trace into a post-mortem dump: retained
// in memory (LastDump) and, when PostmortemDir is set, written to
// postmortem-job<id>.json for cuccprof -postmortem.
func (s *Server) flightRecord(j *job, runErr error, stats *core.Stats, jobReg *metrics.Registry, rec *trace.Recorder) {
	if s.journal == nil && s.cfg.PostmortemDir == "" {
		return
	}
	d := &obs.Dump{
		Schema:       obs.DumpSchemaVersion,
		Reason:       obs.DumpReasonRecovery,
		Tenant:       j.tenant,
		Job:          j.id,
		What:         describe(j.req),
		Journal:      s.journal.Tail(dumpJournalWindow),
		Metrics:      jobReg.Snapshot(),
		TraceDropped: rec.Dropped(),
	}
	if runErr != nil {
		d.Reason = obs.DumpReasonFailure
		d.Err = runErr.Error()
	}
	d.Trace = append(d.Trace, rec.Events()...)
	trace.SortEvents(d.Trace)
	s.lastDump.Store(d)
	s.reg.Counter(MetricDumps).Inc()
	if s.cfg.PostmortemDir == "" {
		return
	}
	data, err := d.JSON()
	if err == nil {
		path := filepath.Join(s.cfg.PostmortemDir, fmt.Sprintf("postmortem-job%d.json", j.id))
		err = os.WriteFile(path, append(data, '\n'), 0o644)
	}
	if err != nil {
		s.reg.Counter(MetricDumpErrors).Inc()
	}
}

// runSuiteJob builds a named evaluation program at Small scale, launches
// it, and verifies the output against the Go reference.
func (s *Server) runSuiteJob(j *job, c *cluster.Cluster, rec *trace.Recorder, reg *metrics.Registry, sc obs.Scope, eng cluster.Engine, coll csched.Choice, workers int) (*core.Stats, error) {
	p, ok := suites.ByName(j.req.Program)
	if !ok {
		return nil, fmt.Errorf("serve: unknown program %q", j.req.Program)
	}
	inst, err := p.Build(c, p.Small)
	if err != nil {
		return nil, err
	}
	sess := core.NewSession(c, p.Compiled)
	sess.Metrics = reg
	sess.Trace = rec
	sess.Obs = sc
	sess.Host.Workers = workers
	sess.Host.Engine = eng
	sess.Collective = coll
	stats, err := sess.Launch(inst.Spec)
	if err != nil {
		return nil, err
	}
	if err := inst.Check(); err != nil {
		return stats, fmt.Errorf("serve: output check failed: %w", err)
	}
	return stats, nil
}

// runSourceJob compiles the request's kernel source (through the shared
// cache), allocates its buffer arguments, launches, and checksums every
// buffer on node 0 so the client — and the chaos tests — can compare
// results bitwise across runs.
func (s *Server) runSourceJob(j *job, c *cluster.Cluster, rec *trace.Recorder, reg *metrics.Registry, sc obs.Scope, eng cluster.Engine, coll csched.Choice, workers int, resp *Response) (*core.Stats, error) {
	prog, cached, err := s.compileSource(j.req.Source)
	if sc.On() {
		how := "compiled"
		if cached {
			how = "cached"
		}
		if err != nil {
			how += " (error)"
		}
		sc.Record(obs.EvCompile, -1, j.req.Kernel, how)
	}
	if err != nil {
		return nil, err
	}
	if prog.Kernel(j.req.Kernel) == nil {
		return nil, fmt.Errorf("serve: source has no kernel %q", j.req.Kernel)
	}

	var args []core.Arg
	var bufs []cluster.Buffer
	for i, as := range j.req.Args {
		switch as.Kind {
		case "buf":
			var elem kir.ScalarType
			switch as.Elem {
			case "f32":
				elem = kir.F32
			case "i32":
				elem = kir.I32
			case "u8":
				elem = kir.U8
			default:
				return nil, fmt.Errorf("serve: arg %d: unknown buffer elem %q", i, as.Elem)
			}
			if as.Count <= 0 {
				return nil, fmt.Errorf("serve: arg %d: buffer needs a positive count", i)
			}
			b := c.Alloc(elem, as.Count)
			if err := fillBuffer(c, b, as); err != nil {
				return nil, fmt.Errorf("serve: arg %d: %w", i, err)
			}
			bufs = append(bufs, b)
			args = append(args, core.BufArg(b))
		case "int":
			args = append(args, core.IntArg(as.Int))
		case "float":
			args = append(args, core.FloatArg(as.Float))
		default:
			return nil, fmt.Errorf("serve: arg %d: unknown kind %q", i, as.Kind)
		}
	}

	sess := core.NewSession(c, prog)
	sess.Metrics = reg
	sess.Trace = rec
	sess.Obs = sc
	sess.Host.Workers = workers
	sess.Host.Engine = eng
	sess.Collective = coll
	sess.Verify = true // cross-node consistency is part of the contract
	spec := core.LaunchSpec{
		Kernel: j.req.Kernel,
		Grid:   interp.Dim3{X: j.req.GridX, Y: max(j.req.GridY, 1)},
		Block:  interp.Dim3{X: j.req.BlockX, Y: max(j.req.BlockY, 1)},
		Args:   args,
	}
	stats, err := sess.Launch(spec)
	if err != nil {
		return nil, err
	}
	for _, b := range bufs {
		resp.BufCRCs = append(resp.BufCRCs, crc32.ChecksumIEEE(c.Region(0, b)))
	}
	return stats, nil
}

// fillBuffer initializes a buffer argument on every node with the spec's
// deterministic pattern (constant Fill, plus the index under Ramp).
func fillBuffer(c *cluster.Cluster, b cluster.Buffer, as ArgSpec) error {
	if as.Fill == 0 && !as.Ramp {
		return nil // zero-initialized by Alloc
	}
	val := func(i int) float64 {
		v := as.Fill
		if as.Ramp {
			v += float64(i)
		}
		return v
	}
	switch b.Elem {
	case kir.F32:
		data := make([]float32, b.Count)
		for i := range data {
			data[i] = float32(val(i))
		}
		return c.WriteAllF32(b, data)
	case kir.I32:
		data := make([]int32, b.Count)
		for i := range data {
			data[i] = int32(val(i))
		}
		return c.WriteAllI32(b, data)
	case kir.U8:
		data := make([]byte, b.Count)
		for i := range data {
			data[i] = byte(int(val(i)))
		}
		return c.WriteAll(b, data)
	}
	return fmt.Errorf("unfillable element type %v", b.Elem)
}

package serve

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cucc/internal/obs"
)

// TestEventsPage: /events renders the journal window as text and JSON, and
// 404s when the journal is disabled.
func TestEventsPage(t *testing.T) {
	srv := NewServer(Config{Executors: 1, Nodes: 2, Workers: 1, Journal: obs.NewJournal(0)})
	defer srv.Drain()
	if resp := srv.Submit(&Request{Tenant: "evt", Program: "VecAdd", Nodes: 2}); resp.Status != StatusOK {
		t.Fatalf("job failed: %q %q", resp.Status, resp.Err)
	}

	rr := httptest.NewRecorder()
	srv.HTTPMux().ServeHTTP(rr, httptest.NewRequest("GET", "/events", nil))
	body := rr.Body.String()
	for _, want := range []string{"events retained", obs.EvAdmit, obs.EvDispatch, obs.EvComplete, "evt"} {
		if !strings.Contains(body, want) {
			t.Errorf("/events missing %q:\n%s", want, body)
		}
	}

	rr = httptest.NewRecorder()
	srv.HTTPMux().ServeHTTP(rr, httptest.NewRequest("GET", "/events?format=json", nil))
	evs, err := obs.ParseEvents(rr.Body.Bytes())
	if err != nil {
		t.Fatalf("/events?format=json did not parse: %v\n%s", err, rr.Body.String())
	}
	if len(evs) == 0 {
		t.Error("/events?format=json returned no events")
	}

	bare := NewServer(Config{Executors: 1, Nodes: 1, Workers: 1})
	defer bare.Drain()
	rr = httptest.NewRecorder()
	bare.HTTPMux().ServeHTTP(rr, httptest.NewRequest("GET", "/events", nil))
	if rr.Code != 404 {
		t.Errorf("/events without a journal: status %d, want 404", rr.Code)
	}
}

// TestSLOPage: /slo renders tenant rows with finite burns in both formats,
// applying the per-tenant objectives.
func TestSLOPage(t *testing.T) {
	srv := NewServer(Config{
		Executors: 1, Nodes: 2, Workers: 1,
		Journal: obs.NewJournal(0),
		SLO: obs.SLOConfig{
			Default: obs.Objective{LatencyMs: 250},
			Tenants: map[string]obs.Objective{"slow-lane": {LatencyMs: 5000, Target: 0.9}},
		},
		SampleEvery: time.Hour, // sampler exists; tests drive it manually
	})
	defer srv.Drain()
	for _, tenant := range []string{"fast-lane", "slow-lane"} {
		if resp := srv.Submit(&Request{Tenant: tenant, Program: "VecAdd", Nodes: 2}); resp.Status != StatusOK {
			t.Fatalf("%s job failed: %q %q", tenant, resp.Status, resp.Err)
		}
	}
	srv.Sampler().SampleNow()

	rr := httptest.NewRecorder()
	srv.HTTPMux().ServeHTTP(rr, httptest.NewRequest("GET", "/slo", nil))
	body := rr.Body.String()
	for _, want := range []string{"fast-lane", "slow-lane", "250ms", "5000ms", "recent windows", "qps"} {
		if !strings.Contains(body, want) {
			t.Errorf("/slo missing %q:\n%s", want, body)
		}
	}

	rr = httptest.NewRecorder()
	srv.HTTPMux().ServeHTTP(rr, httptest.NewRequest("GET", "/slo?format=json", nil))
	rows, err := obs.ParseSLO(rr.Body.Bytes())
	if err != nil {
		t.Fatalf("/slo?format=json did not parse: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d SLO rows, want 2: %+v", len(rows), rows)
	}
	for _, r := range rows {
		if math.IsInf(r.BudgetBurn, 0) || math.IsNaN(r.BudgetBurn) || r.BudgetBurn < 0 {
			t.Errorf("tenant %s: burn %v not finite and non-negative", r.Tenant, r.BudgetBurn)
		}
		if r.Requests != 1 || r.Completed != 1 {
			t.Errorf("tenant %s accounting: %+v", r.Tenant, r)
		}
	}
	for _, r := range rows {
		if r.Tenant == "slow-lane" && r.Objective.LatencyMs != 5000 {
			t.Errorf("slow-lane objective not applied: %+v", r.Objective)
		}
	}
}

// TestHealthzDrain: /healthz serves 200 while up and flips to 503 the
// moment graceful drain begins.
func TestHealthzDrain(t *testing.T) {
	srv := NewServer(Config{Executors: 1, Nodes: 1, Workers: 1, Journal: obs.NewJournal(0)})
	mux := srv.HTTPMux()

	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "ok") {
		t.Errorf("/healthz while serving: %d %q, want 200 ok", rr.Code, rr.Body.String())
	}

	srv.Drain()
	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != 503 || !strings.Contains(rr.Body.String(), "draining") {
		t.Errorf("/healthz after drain: %d %q, want 503 draining", rr.Code, rr.Body.String())
	}
	// The drain itself is journaled.
	var sawDrain bool
	for _, ev := range srv.Journal().Events() {
		if ev.Type == obs.EvDrain {
			sawDrain = true
		}
	}
	if !sawDrain {
		t.Error("drain left no journal event")
	}
}

package serve

import (
	"testing"
	"time"

	"cucc/internal/recovery"
	"cucc/internal/transport"
)

// The serving-layer chaos tests run cuccd with every job's cluster built
// over transport.Faulty.  The invariants mirror the cluster-level chaos
// suite, lifted to the service boundary:
//
//   - benign faults (delay, duplicate) are fully absorbed: every job
//     completes StatusOK with buffer checksums bitwise identical to a
//     fault-free server's, and the server's failure counters stay zero;
//   - lossy faults (payload corruption caught by the frame checksum)
//     surface as clean per-job errors whose count matches the server's
//     error/timeout counters — never a hang, never a corrupted result.

// chaosCRCs runs the deterministic VecAdd source job n times against a
// server with the given fault config and returns the per-job responses.
// Recovery is explicitly disabled: these tests pin the pre-recovery
// contract (faults either absorbed or surfaced as clean errors); the
// recovery-enabled serving path has its own test below.
func chaosResponses(t *testing.T, fc *transport.FaultConfig, n int) []*Response {
	t.Helper()
	srv := NewServer(Config{
		Executors:   2,
		Nodes:       2,
		Workers:     1,
		RecvTimeout: 5 * time.Second,
		Fault:       fc,
		Recovery:    &recovery.Policy{},
	})
	defer srv.Drain()
	out := make([]*Response, n)
	for i := range out {
		out[i] = srv.Submit(vecAddSourceReq("chaos"))
	}

	agg := srv.Registry().Snapshot()
	var okCount, errCount int64
	for _, resp := range out {
		switch resp.Status {
		case StatusOK:
			okCount++
		case StatusError:
			errCount++
		}
	}
	if got := agg.Counters[MetricJobsCompleted]; got != okCount {
		t.Errorf("completed counter = %d, want %d (observed ok responses)", got, okCount)
	}
	if got := agg.Counters[MetricJobsFailed]; got != errCount {
		t.Errorf("failed counter = %d, want %d (observed error responses)", got, errCount)
	}
	return out
}

// TestChaosBenignFaults checks that delay+duplicate injection under the
// serving layer is invisible in results: jobs complete, checksums match a
// fault-free server bitwise, and the failure counters stay zero — while
// the injected-fault totals prove the schedule actually fired.
func TestChaosBenignFaults(t *testing.T) {
	const jobs = 4
	clean := chaosResponses(t, nil, 1)
	benign := &transport.FaultConfig{
		Seed:      1,
		Delay:     0.3,
		Duplicate: 0.3,
		MaxDelay:  200 * time.Microsecond,
	}
	faulty := chaosResponses(t, benign, jobs)

	var injected int64
	for i, resp := range faulty {
		if resp.Status != StatusOK {
			t.Fatalf("job %d under benign faults: status %q err %q", i, resp.Status, resp.Err)
		}
		injected += resp.FaultsInjected
		for k := range resp.BufCRCs {
			if resp.BufCRCs[k] != clean[0].BufCRCs[k] {
				t.Errorf("job %d buffer %d CRC %08x differs from fault-free %08x",
					i, k, resp.BufCRCs[k], clean[0].BufCRCs[k])
			}
		}
	}
	if injected == 0 {
		t.Error("fault schedule injected nothing; the test proved nothing")
	}
}

// TestChaosLossyFaults drives the server with unrecoverable corruption
// faults: jobs must resolve cleanly (ok or error, never a hang) and the
// server's counters must account for every outcome exactly.
func TestChaosLossyFaults(t *testing.T) {
	// Corruption is detected on receipt (checksum mismatch -> ErrCorrupt),
	// so failures surface fast instead of waiting out receive deadlines.
	lossy := &transport.FaultConfig{
		Seed:    7,
		Corrupt: 0.3,
	}
	responses := chaosResponses(t, lossy, 4)
	var errCount int
	for i, resp := range responses {
		switch resp.Status {
		case StatusOK:
			// A lucky schedule may pass; correctness already checked by
			// cross-node verify inside the job.
		case StatusError:
			errCount++
		default:
			t.Errorf("job %d: unexpected status %q", i, resp.Status)
		}
	}
	if errCount == 0 {
		t.Error("lossy schedule produced no failures; raise Corrupt to exercise the error path")
	}
}

// TestChaosRankLossRecovered drives the recovery-enabled serving path (the
// default policy) with a deterministic rank kill inside every job's
// cluster: jobs must complete StatusOK with checksums bitwise identical to
// a fault-free server's, and the per-job counters must show the restore
// actually happened rather than a lucky fault-free schedule.
func TestChaosRankLossRecovered(t *testing.T) {
	runWith := func(fc *transport.FaultConfig) *Response {
		srv := NewServer(Config{
			Executors:   1,
			Workers:     1,
			RecvTimeout: 5 * time.Second,
			Fault:       fc,
		})
		defer srv.Drain()
		// A 16-block grid so the partition distributes blocks (the 4-block
		// quickstart shape degenerates to callbacks-only on 4 nodes, which
		// never touches the transport and so never reaches the kill).
		req := &Request{
			Tenant: "recover",
			Source: vecAddSrc,
			Kernel: "vecadd",
			GridX:  16, BlockX: 64,
			Args: []ArgSpec{
				{Kind: "buf", Elem: "f32", Count: 1024},
				{Kind: "buf", Elem: "f32", Count: 1024, Ramp: true},
				{Kind: "buf", Elem: "f32", Count: 1024, Fill: 2},
				{Kind: "int", Int: 1024},
			},
			Nodes: 4,
		}
		return srv.Submit(req)
	}
	clean := runWith(nil)
	if clean.Status != StatusOK {
		t.Fatalf("fault-free job: status %q err %q", clean.Status, clean.Err)
	}
	got := runWith(&transport.FaultConfig{Seed: 1, KillRank: 1, KillAtOp: 2})
	if got.Status != StatusOK {
		t.Fatalf("rank loss must be recovered by the serving layer, got %q err %q", got.Status, got.Err)
	}
	if n := got.Counters[recovery.MetricRestores]; n < 1 {
		t.Fatalf("%s = %d, want >= 1 (recovery path not exercised)", recovery.MetricRestores, n)
	}
	if n := got.Counters[recovery.MetricRejoins]; n < 1 {
		t.Errorf("%s = %d, want >= 1", recovery.MetricRejoins, n)
	}
	if len(got.BufCRCs) != len(clean.BufCRCs) {
		t.Fatalf("CRC count %d, want %d", len(got.BufCRCs), len(clean.BufCRCs))
	}
	for i := range clean.BufCRCs {
		if got.BufCRCs[i] != clean.BufCRCs[i] {
			t.Errorf("buffer %d CRC %08x differs from fault-free %08x", i, got.BufCRCs[i], clean.BufCRCs[i])
		}
	}
}

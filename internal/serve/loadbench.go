package serve

import (
	"fmt"
	"time"

	"cucc/internal/obs"
	"cucc/internal/prof"
	"cucc/internal/throughput"
)

// ClientSubmitter adapts a Client to the load generator's Submitter
// interface: every offered job goes end to end through the wire protocol.
type ClientSubmitter struct {
	Client *Client
}

// Submit implements throughput.Submitter.
func (cs ClientSubmitter) Submit(tenant, program string, deadline time.Duration) throughput.JobResult {
	t0 := time.Now()
	req := &Request{Tenant: tenant, Program: program}
	if deadline > 0 {
		req.DeadlineMs = int(deadline / time.Millisecond)
	}
	resp, err := cs.Client.Do(req)
	lat := time.Since(t0).Seconds()
	if err != nil {
		return throughput.JobResult{LatencySec: lat}
	}
	return throughput.JobResult{
		OK:         resp.Status == StatusOK,
		Rejected:   resp.Status == StatusRejected,
		LatencySec: lat,
	}
}

// ServerSubmitter drives a Server in process (no TCP), for tests and
// embedded load generation.
type ServerSubmitter struct {
	Server *Server
}

// Submit implements throughput.Submitter.
func (ss ServerSubmitter) Submit(tenant, program string, deadline time.Duration) throughput.JobResult {
	t0 := time.Now()
	req := &Request{Tenant: tenant, Program: program}
	if deadline > 0 {
		req.DeadlineMs = int(deadline / time.Millisecond)
	}
	resp := ss.Server.Submit(req)
	return throughput.JobResult{
		OK:         resp.Status == StatusOK,
		Rejected:   resp.Status == StatusRejected,
		LatencySec: time.Since(t0).Seconds(),
	}
}

// ServiceBenchConfig parameterizes the fixed-seed service benchmark that
// `make bench` embeds into the BENCH report.
type ServiceBenchConfig struct {
	// Scenario names the rows ("2tenant-vecadd-fir" default).
	Scenario string
	// Rates are the saturation-sweep target rates (jobs/sec).
	Rates []float64
	// JobsPerRate is the offered arrival count per sweep point.
	JobsPerRate int
	// Seed fixes the arrival schedules.
	Seed int64
	// Quiet suppresses the per-row progress print.
	Quiet bool
	// SLOLatencyMs is the latency objective the schema-v4 attainment and
	// burn columns are computed against (<= 0 selects 250ms — generous
	// against the ~3ms baseline p99, so the bench rows stay stable and a
	// flagged attainment drop means a real service regression).
	SLOLatencyMs float64
	// SLOTarget is the attainment target for the burn column (<= 0 selects
	// obs.DefaultSLOTarget).
	SLOTarget float64
}

func (c ServiceBenchConfig) withDefaults() ServiceBenchConfig {
	if c.Scenario == "" {
		c.Scenario = "2tenant-vecadd-fir"
	}
	if len(c.Rates) == 0 {
		c.Rates = []float64{50, 200}
	}
	if c.JobsPerRate <= 0 {
		c.JobsPerRate = 60
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SLOLatencyMs <= 0 {
		c.SLOLatencyMs = 250
	}
	return c
}

// ServiceBench boots a cuccd server on loopback, drives it end to end
// (TCP protocol, admission, fair scheduling, per-job registries) with the
// open-loop generator at each sweep rate, and returns schema-v3 service
// rows.  The mix is two equal tenants running VecAdd and FIR at Small
// scale — small enough to keep `make bench` fast, real enough that the
// QPS and latency figures exercise the whole serving path.
func ServiceBench(cfg ServiceBenchConfig) ([]prof.ServiceResult, error) {
	cfg = cfg.withDefaults()
	srv := NewServer(Config{
		QueueCap:  32,
		Executors: 4,
		Nodes:     2,
		Workers:   1,
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Drain()
	client, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	defer client.Close()

	base := throughput.LoadConfig{
		Jobs: cfg.JobsPerRate,
		Seed: cfg.Seed,
		Mix: []throughput.TenantMix{
			{Tenant: "tenant-a", Program: "VecAdd", Share: 0.5},
			{Tenant: "tenant-b", Program: "FIR", Share: 0.5},
		},
		Deadline: 10 * time.Second,
	}
	results := throughput.SweepLoad(ClientSubmitter{Client: client}, base, cfg.Rates)

	objective := obs.Objective{LatencyMs: cfg.SLOLatencyMs, Target: cfg.SLOTarget}
	rows := make([]prof.ServiceResult, 0, len(results))
	for _, r := range results {
		row := prof.ServiceResult{
			Scenario:   cfg.Scenario,
			TargetRate: r.RatePerSec,
			Offered:    r.Offered,
			Completed:  r.Completed,
			Rejected:   r.Rejected,
			QPS:        r.QPS,
			P50Ms:      r.P50Ms,
			P99Ms:      r.P99Ms,
			P999Ms:     r.P999Ms,
			RejectRate: r.RejectRate,
		}
		// Client-side SLO accounting over the generator's latency histogram:
		// attained = completions certainly within the objective (conservative
		// bucket-upper-bound count); errors count against the budget,
		// rejections do not (matching obs.ComputeSLO).
		if requests := int64(r.Completed + r.Errors); requests > 0 {
			attained := r.Latency.CountLE(objective.LatencyMs / 1e3)
			if c := int64(r.Completed); attained > c {
				attained = c
			}
			row.SLOAttainment = float64(attained) / float64(requests)
			row.SLOBurn = (1 - row.SLOAttainment) / (1 - objective.EffectiveTarget())
		}
		rows = append(rows, row)
		if !cfg.Quiet {
			fmt.Printf("  %-22s rate %6.0f/s  qps %7.1f  p50 %7.2fms  p99 %7.2fms  reject %4.1f%%  slo %5.1f%%  burn %5.2f\n",
				row.Scenario, row.TargetRate, row.QPS, row.P50Ms, row.P99Ms, row.RejectRate*100,
				row.SLOAttainment*100, row.SLOBurn)
		}
	}
	return rows, nil
}

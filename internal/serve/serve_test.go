package serve

import (
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

const vecAddSrc = `
__global__ void vecadd(float* out, float* a, float* b, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        out[id] = a[id] + b[id];
}
`

func vecAddSourceReq(tenant string) *Request {
	return &Request{
		Tenant: tenant,
		Source: vecAddSrc,
		Kernel: "vecadd",
		GridX:  4, BlockX: 64,
		Args: []ArgSpec{
			{Kind: "buf", Elem: "f32", Count: 256},
			{Kind: "buf", Elem: "f32", Count: 256, Ramp: true},
			{Kind: "buf", Elem: "f32", Count: 256, Fill: 2},
			{Kind: "int", Int: 256},
		},
		Nodes: 2,
	}
}

// TestEndToEnd boots a server on loopback and runs one suite job and one
// source job through the wire protocol.
func TestEndToEnd(t *testing.T) {
	srv := NewServer(Config{Executors: 2, Nodes: 2, Workers: 1})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	resp, err := client.Do(&Request{Tenant: "t1", Program: "VecAdd", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK {
		t.Fatalf("suite job: status %q err %q", resp.Status, resp.Err)
	}
	if resp.Stats == nil {
		t.Error("suite job: no stats")
	}
	if resp.Counters["core.launch.total"] != 1 {
		t.Errorf("suite job counters: launch.total = %d, want 1", resp.Counters["core.launch.total"])
	}
	if resp.TraceEvents == 0 {
		t.Error("suite job: no trace events captured")
	}

	resp, err = client.Do(vecAddSourceReq("t1"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK {
		t.Fatalf("source job: status %q err %q", resp.Status, resp.Err)
	}
	if len(resp.BufCRCs) != 3 {
		t.Fatalf("source job: %d buffer CRCs, want 3", len(resp.BufCRCs))
	}
	// Same job again: deterministic inputs, so identical checksums — and
	// the second compile must hit the shared source cache.
	resp2, err := client.Do(vecAddSourceReq("t1"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range resp.BufCRCs {
		if resp.BufCRCs[i] != resp2.BufCRCs[i] {
			t.Errorf("buffer %d CRC differs across identical jobs: %08x vs %08x",
				i, resp.BufCRCs[i], resp2.BufCRCs[i])
		}
	}

	// Bad requests are answered, not dropped.
	resp, err = client.Do(&Request{Tenant: "t1", Program: "NoSuchProgram"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusError || !strings.Contains(resp.Err, "NoSuchProgram") {
		t.Errorf("unknown program: status %q err %q", resp.Status, resp.Err)
	}
	resp, err = client.Do(&Request{Tenant: "t1"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusError {
		t.Errorf("empty request: status %q, want error", resp.Status)
	}
}

// TestPerJobRegistryIsolation runs jobs concurrently and checks the PR-4
// cross-check invariant at the serving layer: each job's counter map is its
// own (exactly one launch each), and every non-server aggregate counter
// equals the sum over per-job counters.
func TestPerJobRegistryIsolation(t *testing.T) {
	srv := NewServer(Config{Executors: 4, Nodes: 2, Workers: 1})
	defer srv.Drain()

	const jobs = 8
	responses := make([]*Response, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i] = srv.Submit(&Request{Tenant: fmt.Sprintf("t%d", i%3), Program: "VecAdd", Nodes: 2})
		}(i)
	}
	wg.Wait()

	perJobSums := map[string]int64{}
	for i, resp := range responses {
		if resp.Status != StatusOK {
			t.Fatalf("job %d: status %q err %q", i, resp.Status, resp.Err)
		}
		// Isolation: a job observes exactly its own single launch, never a
		// concurrent job's.
		if got := resp.Counters["core.launch.total"]; got != 1 {
			t.Errorf("job %d observed %d launches in its registry, want exactly 1", i, got)
		}
		for k, v := range resp.Counters {
			perJobSums[k] += v
		}
	}

	agg := srv.Registry().Snapshot()
	for k, want := range perJobSums {
		if got := agg.Counters[k]; got != want {
			t.Errorf("aggregate %s = %d, want %d (sum of per-job deltas)", k, got, want)
		}
	}
	for k, v := range agg.Counters {
		// serve.* and tenant.* are service-level accounting (queue time,
		// admission outcomes) written to the aggregate directly — they are
		// not part of any per-job registry.
		if strings.HasPrefix(k, "serve.") || strings.HasPrefix(k, "tenant.") {
			continue
		}
		if v != perJobSums[k] {
			t.Errorf("aggregate has %s = %d not accounted for by per-job sums (%d)", k, v, perJobSums[k])
		}
	}
	if agg.Counters[MetricJobsCompleted] != jobs {
		t.Errorf("completed = %d, want %d", agg.Counters[MetricJobsCompleted], jobs)
	}
}

// gate installs a testJobStart hook that reports each dispatched job on
// started and holds it until release is closed (or per-job token sent).
type gate struct {
	started chan *job
	release chan struct{}
}

func installGate() *gate {
	g := &gate{started: make(chan *job, 64), release: make(chan struct{}, 64)}
	testJobStart = func(j *job) {
		g.started <- j
		<-g.release
	}
	return g
}

func removeGate() { testJobStart = nil }

// TestWeightedFairness floods tenant A while quiet tenant B holds a few
// jobs, with one executor so the dispatch order is the entire scheduling
// story.  Equal weights must interleave A and B strictly while both are
// backlogged: B's k-th job waits at most k*(1+weightA/weightB) dispatch
// slots, which is the queueing-delay (p99) bound the ISSUE asks for,
// asserted deterministically instead of via wall-clock percentiles.
func TestWeightedFairness(t *testing.T) {
	g := installGate()
	defer removeGate()
	srv := NewServer(Config{Executors: 1, Nodes: 1, Workers: 1, QueueCap: 64})
	defer srv.Drain()

	// Occupy the single executor so subsequent submissions pile up in the
	// tenant queues with a deterministic backlog.
	plugDone := make(chan *Response, 1)
	go func() { plugDone <- srv.Submit(&Request{Tenant: "plug", Program: "VecAdd", Nodes: 1}) }()
	<-g.started

	const floodJobs, quietJobs = 12, 4
	var wg sync.WaitGroup
	for i := 0; i < floodJobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Submit(&Request{Tenant: "flood", Program: "VecAdd", Nodes: 1})
		}()
	}
	for i := 0; i < quietJobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Submit(&Request{Tenant: "quiet", Program: "VecAdd", Nodes: 1})
		}()
	}
	// Wait until every submission is enqueued.
	deadline := time.After(5 * time.Second)
	for {
		srv.mu.Lock()
		q := srv.queued
		srv.mu.Unlock()
		if q == floodJobs+quietJobs {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("backlog never formed: %d queued", q)
		case <-time.After(time.Millisecond):
		}
	}

	// Release the plug and record the dispatch order.
	g.release <- struct{}{}
	var order []string
	for i := 0; i < floodJobs+quietJobs; i++ {
		select {
		case j := <-g.started:
			order = append(order, j.tenant)
			g.release <- struct{}{}
		case <-time.After(10 * time.Second):
			t.Fatalf("dispatch %d never happened; order so far %v", i, order)
		}
	}
	wg.Wait()
	<-plugDone

	// While the quiet tenant is backlogged, the flooding tenant may take
	// at most 1 dispatch (its weight) between consecutive quiet dispatches.
	lastQuiet := -1
	for i := len(order) - 1; i >= 0; i-- {
		if order[i] == "quiet" {
			lastQuiet = i
			break
		}
	}
	runLen := 0
	for i := 0; i <= lastQuiet; i++ {
		if order[i] == "flood" {
			runLen++
			if runLen > 1 {
				t.Fatalf("flooding tenant got %d consecutive dispatches while quiet was backlogged: %v", runLen, order)
			}
		} else {
			runLen = 0
		}
	}
	// The quiet tenant's last job must clear well before the flood's
	// backlog does: its worst dispatch slot is 2*quietJobs.
	if lastQuiet >= 2*quietJobs {
		t.Errorf("quiet tenant's last dispatch at slot %d, want < %d: %v", lastQuiet, 2*quietJobs, order)
	}
}

// TestDrain checks graceful shutdown: the in-flight job completes and its
// response is delivered, queued jobs are cleanly rejected, new submissions
// are rejected, and the listener closes.
func TestDrain(t *testing.T) {
	g := installGate()
	defer removeGate()
	srv := NewServer(Config{Executors: 1, Nodes: 1, Workers: 1})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	inflight := make(chan *Response, 1)
	go func() { inflight <- srv.Submit(&Request{Tenant: "a", Program: "VecAdd", Nodes: 1}) }()
	<-g.started // the job is running and held

	queued := make(chan *Response, 1)
	go func() { queued <- srv.Submit(&Request{Tenant: "a", Program: "VecAdd", Nodes: 1}) }()
	deadline := time.After(5 * time.Second)
	for {
		srv.mu.Lock()
		q := srv.queued
		srv.mu.Unlock()
		if q == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("second job never queued")
		case <-time.After(time.Millisecond):
		}
	}

	drained := make(chan struct{})
	go func() { srv.Drain(); close(drained) }()

	// The queued job is rejected immediately, while the in-flight job is
	// still held at the gate.
	select {
	case resp := <-queued:
		if resp.Status != StatusRejected || !strings.Contains(resp.Err, "draining") {
			t.Errorf("queued job: status %q err %q, want clean draining rejection", resp.Status, resp.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued job was not rejected during drain")
	}

	// Release the in-flight job: it must complete normally.
	g.release <- struct{}{}
	select {
	case resp := <-inflight:
		if resp.Status != StatusOK {
			t.Errorf("in-flight job: status %q err %q, want ok", resp.Status, resp.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight job never completed")
	}
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("drain never finished")
	}

	// New submissions are rejected; the listener no longer accepts.
	if resp := srv.Submit(&Request{Program: "VecAdd"}); resp.Status != StatusRejected {
		t.Errorf("post-drain submit: status %q, want rejected", resp.Status)
	}
	if conn, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		// A dial may be accepted by the OS backlog momentarily; a frame
		// write+read must fail.
		conn.SetDeadline(time.Now().Add(time.Second))
		if err := WriteFrame(conn, &Request{Program: "VecAdd"}); err == nil {
			var resp Response
			if err := ReadFrame(conn, &resp); err == nil {
				t.Error("post-drain connection still served a request")
			}
		}
		conn.Close()
	}
}

// TestQueueFullRejects fills the bounded queue behind a held executor and
// checks over-admission is rejected with a retry-after hint.
func TestQueueFullRejects(t *testing.T) {
	g := installGate()
	defer removeGate()
	srv := NewServer(Config{Executors: 1, Nodes: 1, Workers: 1, QueueCap: 2})
	defer func() {
		// The test body drains the backlog before this runs.
		srv.Drain()
		removeGate()
	}()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); srv.Submit(&Request{Tenant: "a", Program: "VecAdd", Nodes: 1}) }()
	<-g.started // executor busy

	// Fill the queue to its cap.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); srv.Submit(&Request{Tenant: "a", Program: "VecAdd", Nodes: 1}) }()
	}
	deadline := time.After(5 * time.Second)
	for {
		srv.mu.Lock()
		q := srv.queued
		srv.mu.Unlock()
		if q == 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("queue never filled")
		case <-time.After(time.Millisecond):
		}
	}

	resp := srv.Submit(&Request{Tenant: "a", Program: "VecAdd", Nodes: 1})
	if resp.Status != StatusRejected {
		t.Fatalf("over-admission: status %q err %q, want rejected", resp.Status, resp.Err)
	}
	if resp.RetryAfterMs <= 0 {
		t.Errorf("rejection carries no retry-after hint: %+v", resp)
	}
	if srv.Registry().Snapshot().Counters[MetricJobsRejected] == 0 {
		t.Error("rejected counter not incremented")
	}

	// Drain the backlog so the deferred cleanup terminates quickly: release
	// the held first job, then walk the two queued jobs through the gate.
	g.release <- struct{}{}
	for i := 0; i < 2; i++ {
		select {
		case <-g.started:
			g.release <- struct{}{}
		case <-time.After(10 * time.Second):
			t.Fatal("backlog never drained")
		}
	}
	wg.Wait()
}

// TestDeadlineInQueue checks deadline propagation for jobs that exceed
// their budget before ever being dispatched.
func TestDeadlineInQueue(t *testing.T) {
	g := installGate()
	defer removeGate()
	srv := NewServer(Config{Executors: 1, Nodes: 1, Workers: 1})
	defer srv.Drain()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); srv.Submit(&Request{Tenant: "a", Program: "VecAdd", Nodes: 1}) }()
	<-g.started

	done := make(chan *Response, 1)
	go func() { done <- srv.Submit(&Request{Tenant: "a", Program: "VecAdd", Nodes: 1, DeadlineMs: 20}) }()
	time.Sleep(60 * time.Millisecond) // let the deadline lapse while queued
	g.release <- struct{}{}
	select {
	case j := <-g.started:
		_ = j
		g.release <- struct{}{}
	case <-time.After(5 * time.Second):
	}
	select {
	case resp := <-done:
		if resp.Status != StatusError || !strings.Contains(resp.Err, "deadline") {
			t.Errorf("expired job: status %q err %q, want deadline error", resp.Status, resp.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("expired job never resolved")
	}
	wg.Wait()
	if srv.Registry().Snapshot().Counters[MetricJobsDeadline] == 0 {
		t.Error("deadline counter not incremented")
	}
}

// TestJobsPage checks the /jobs status page renders queue state and
// finished rows.
func TestJobsPage(t *testing.T) {
	srv := NewServer(Config{Executors: 1, Nodes: 1, Workers: 1})
	defer srv.Drain()
	if resp := srv.Submit(&Request{Tenant: "pageview", Program: "VecAdd", Nodes: 1}); resp.Status != StatusOK {
		t.Fatalf("job failed: %q %q", resp.Status, resp.Err)
	}
	rr := httptest.NewRecorder()
	srv.JobsHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/jobs", nil))
	body := rr.Body.String()
	if !strings.Contains(body, "pageview") || !strings.Contains(body, "VecAdd") || !strings.Contains(body, "ok") {
		t.Errorf("/jobs page missing expected rows:\n%s", body)
	}
	rr = httptest.NewRecorder()
	srv.HTTPMux().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rr.Body.String(), MetricJobsCompleted) {
		t.Errorf("/metrics page missing server counters:\n%s", rr.Body.String())
	}
}

// TestEWMAIgnoresFailedJobs pins the retry-after regression: failed jobs
// finish near-instantly, and folding their run times into the service-rate
// EWMA used to collapse the backpressure hint exactly during failure
// bursts.  Only StatusOK jobs may move the EWMA.
func TestEWMAIgnoresFailedJobs(t *testing.T) {
	srv := NewServer(Config{Executors: 2, Nodes: 1, Workers: 1})
	defer srv.Drain()

	srv.mu.Lock()
	srv.lastRunSecs = 0.5
	srv.finishLocked(&job{id: 1000}, &Response{Status: StatusError, RunMs: 1})
	srv.finishLocked(&job{id: 1001}, &Response{Status: StatusRejected, RunMs: 1})
	if srv.lastRunSecs != 0.5 {
		t.Errorf("EWMA moved on non-OK jobs: %g, want 0.5", srv.lastRunSecs)
	}
	srv.finishLocked(&job{id: 1002}, &Response{Status: StatusOK, RunMs: 1000})
	want := 0.8*0.5 + 0.2*1.0
	if diff := srv.lastRunSecs - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("EWMA after OK job = %g, want %g", srv.lastRunSecs, want)
	}
	srv.mu.Unlock()

	// End to end: a burst of fast-failing jobs must leave the EWMA alone.
	srv.mu.Lock()
	srv.lastRunSecs = 2.0
	srv.mu.Unlock()
	for i := 0; i < 5; i++ {
		if resp := srv.Submit(&Request{Tenant: "burst", Program: "NoSuchProgram"}); resp.Status != StatusError {
			t.Fatalf("expected failing job, got %q", resp.Status)
		}
	}
	srv.mu.Lock()
	got := srv.lastRunSecs
	srv.mu.Unlock()
	if got != 2.0 {
		t.Errorf("EWMA after failure burst = %g, want 2.0 (failures must not feed it)", got)
	}
}

// TestRetryAfterHintFormula pins the published backpressure formula: the
// hint is the time for the executors to work the present backlog off at
// the observed service rate, and the rejection reports the backlog depth.
func TestRetryAfterHintFormula(t *testing.T) {
	srv := NewServer(Config{Executors: 2, Nodes: 1, Workers: 1})
	defer srv.Drain()
	srv.mu.Lock()
	srv.lastRunSecs = 2.0
	srv.queued = 5
	want := int(2.0 * float64(5+1) / 2.0 * 1e3)
	got := srv.retryAfterLocked()
	srv.queued = 0
	srv.mu.Unlock()
	if got != want {
		t.Errorf("retryAfterLocked = %d, want %d", got, want)
	}

	// The queue-full rejection carries both the hint and the depth, and
	// /metrics exports the depth gauge.
	g := installGate()
	defer removeGate()
	srvQ := NewServer(Config{Executors: 1, Nodes: 1, Workers: 1, QueueCap: 1})
	defer func() {
		srvQ.Drain()
		removeGate()
	}()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); srvQ.Submit(&Request{Tenant: "a", Program: "VecAdd", Nodes: 1}) }()
	<-g.started
	wg.Add(1)
	go func() { defer wg.Done(); srvQ.Submit(&Request{Tenant: "a", Program: "VecAdd", Nodes: 1}) }()
	deadline := time.After(5 * time.Second)
	for {
		srvQ.mu.Lock()
		q := srvQ.queued
		srvQ.mu.Unlock()
		if q == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("queue never filled")
		case <-time.After(time.Millisecond):
		}
	}
	resp := srvQ.Submit(&Request{Tenant: "a", Program: "VecAdd", Nodes: 1})
	if resp.Status != StatusRejected {
		t.Fatalf("over-admission: status %q, want rejected", resp.Status)
	}
	if resp.Queued != 1 {
		t.Errorf("rejection Queued = %d, want 1", resp.Queued)
	}
	if resp.RetryAfterMs <= 0 {
		t.Errorf("rejection RetryAfterMs = %d, want > 0", resp.RetryAfterMs)
	}
	rr := httptest.NewRecorder()
	srvQ.HTTPMux().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rr.Body.String(), "serve.queue.depth") {
		t.Errorf("/metrics missing serve.queue.depth gauge:\n%s", rr.Body.String())
	}
	g.release <- struct{}{}
	for i := 0; i < 1; i++ {
		select {
		case <-g.started:
			g.release <- struct{}{}
		case <-time.After(10 * time.Second):
			t.Fatal("backlog never drained")
		}
	}
	wg.Wait()
}

package comm

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"cucc/internal/transport"
)

// Additional collectives rounding out the runtime's mini-MPI.  CuCC's
// three-phase workflow needs only Allgather, but the runtime library keeps
// the standard family available for host-side reductions (e.g. the k-means
// centroid update) and for alternative distribution strategies.

const (
	tagScatter = 10
	tagAll2All = 11
	tagRedScat = 12
)

// Scatter splits root's data into Size() equal chunks and delivers chunk r
// to rank r; returns this rank's chunk.
func Scatter(c transport.Conn, root int, data []byte) (chunkOut []byte, st Stats, err error) {
	defer record(c, &opScatter, time.Now(), &st, &err)
	n := c.Size()
	if c.Rank() == root {
		if len(data)%n != 0 {
			return nil, st, fmt.Errorf("comm: scatter payload %d not divisible by %d ranks", len(data), n)
		}
		chunk := len(data) / n
		for r := 0; r < n; r++ {
			if r == root {
				continue
			}
			out := make([]byte, chunk)
			copy(out, data[r*chunk:])
			if err := c.Send(r, tagScatter, out); err != nil {
				return nil, st, err
			}
			st.Msgs++
			st.BytesSent += int64(chunk)
		}
		own := make([]byte, chunk)
		copy(own, data[root*chunk:])
		return own, st, nil
	}
	got, err := c.Recv(root, tagScatter)
	if err != nil {
		return nil, st, err
	}
	st.recvd(got)
	return got, st, nil
}

// Alltoall sends chunk r of this rank's buffer to rank r and returns the
// received buffer (chunk r from rank r): the personalized exchange used by
// redistribution strategies (e.g. distributed transpose).
func Alltoall(c transport.Conn, data []byte) (res []byte, st Stats, err error) {
	defer record(c, &opAlltoall, time.Now(), &st, &err)
	n := c.Size()
	if len(data)%n != 0 {
		return nil, st, fmt.Errorf("comm: alltoall payload %d not divisible by %d ranks", len(data), n)
	}
	chunk := len(data) / n
	r := c.Rank()
	out := make([]byte, len(data))
	copy(out[r*chunk:], data[r*chunk:(r+1)*chunk])
	// One send arena for the whole call: n-1 outbound chunks.  Each slot
	// stays untouched after Send, as the transport contract requires.
	arena := make([]byte, (n-1)*chunk)
	pow2 := n&(n-1) == 0
	for s := 1; s < n; s++ {
		// Pairwise exchange schedule: at step s exchange with rank^s when
		// the size is a power of two (each step is a perfect matching, so
		// both sides of every pair talk to each other and no rank is
		// oversubscribed), otherwise a (rank+s)/(rank-s) ring schedule.
		var peer, from int
		if pow2 {
			peer = r ^ s
			from = peer
		} else {
			peer = (r + s) % n
			from = (r - s + n) % n
		}
		msg := arena[(s-1)*chunk : s*chunk]
		copy(msg, data[peer*chunk:(peer+1)*chunk])
		if err := c.Send(peer, tagAll2All, msg); err != nil {
			return nil, st, err
		}
		st.Msgs++
		st.BytesSent += int64(chunk)
		in, err := c.Recv(from, tagAll2All)
		if err != nil {
			return nil, st, err
		}
		st.recvd(in)
		if len(in) != chunk {
			return nil, st, fmt.Errorf("comm: alltoall chunk mismatch: got %d, want %d", len(in), chunk)
		}
		copy(out[from*chunk:], in)
	}
	return out, st, nil
}

// GatherBytes collects every rank's (equal-length) buffer at root, in rank
// order; nil on non-roots.
func GatherBytes(c transport.Conn, root int, data []byte) (gathered []byte, st Stats, err error) {
	defer record(c, &opGatherBytes, time.Now(), &st, &err)
	n := c.Size()
	if c.Rank() != root {
		out := make([]byte, len(data))
		copy(out, data)
		// As in GatherF64: a failed send is not traffic, so count only after
		// the transport accepted it.
		if err := c.Send(root, tagGather, out); err != nil {
			return nil, st, err
		}
		st.Msgs++
		st.BytesSent += int64(len(data))
		return nil, st, nil
	}
	out := make([]byte, n*len(data))
	copy(out[root*len(data):], data)
	for r := 0; r < n; r++ {
		if r == root {
			continue
		}
		in, err := c.Recv(r, tagGather)
		if err != nil {
			return nil, st, err
		}
		st.recvd(in)
		if len(in) != len(data) {
			return nil, st, fmt.Errorf("comm: gather length mismatch from rank %d", r)
		}
		copy(out[r*len(in):], in)
	}
	return out, st, nil
}

// ReduceScatterSumF32 element-wise sums every rank's float32 vector and
// scatters the result: rank r receives elements [r*len/n, (r+1)*len/n).
// Implemented with the ring algorithm (n-1 steps, each reducing one chunk).
func ReduceScatterSumF32(c transport.Conn, data []float32) (res []float32, st Stats, err error) {
	defer record(c, &opReduceScatter, time.Now(), &st, &err)
	n := c.Size()
	if len(data)%n != 0 {
		return nil, st, fmt.Errorf("comm: reduce-scatter length %d not divisible by %d ranks", len(data), n)
	}
	chunk := len(data) / n
	if n == 1 {
		out := make([]float32, chunk)
		copy(out, data)
		return out, st, nil
	}
	acc := make([]float32, len(data))
	copy(acc, data)
	r := c.Rank()
	right := (r + 1) % n
	left := (r - 1 + n) % n
	for step := 0; step < n-1; step++ {
		sendChunk := (r - step - 1 + n) % n
		recvChunk := (r - step - 2 + n) % n
		out := encodeF32(acc[sendChunk*chunk : (sendChunk+1)*chunk])
		if err := c.Send(right, tagRedScat, out); err != nil {
			return nil, st, err
		}
		st.Msgs++
		st.BytesSent += int64(len(out))
		in, err := c.Recv(left, tagRedScat)
		if err != nil {
			return nil, st, err
		}
		st.recvd(in)
		vals, err := decodeF32(in, chunk)
		if err != nil {
			return nil, st, err
		}
		for i, v := range vals {
			acc[recvChunk*chunk+i] += v
		}
	}
	// After n-1 steps this rank holds the fully reduced chunk r.
	out := make([]float32, chunk)
	copy(out, acc[r*chunk:(r+1)*chunk])
	return out, st, nil
}

// AllReduceSumF32 sums float32 vectors across all ranks (reduce-scatter +
// allgather), returning the full reduced vector on every rank.
func AllReduceSumF32(c transport.Conn, data []float32) ([]float32, Stats, error) {
	n := c.Size()
	var st Stats
	if n == 1 {
		out := make([]float32, len(data))
		copy(out, data)
		return out, st, nil
	}
	mine, s1, err := ReduceScatterSumF32(c, data)
	if err != nil {
		return nil, st, err
	}
	st.Add(s1)
	buf := make([]byte, len(data)*4)
	copy(buf[c.Rank()*len(mine)*4:], encodeF32(mine))
	s2, err := AllgatherRing(c, buf, len(mine)*4)
	if err != nil {
		return nil, st, err
	}
	st.Add(s2)
	out, err := decodeF32(buf, len(data))
	return out, st, err
}

func encodeF32(v []float32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
	}
	return out
}

func decodeF32(b []byte, want int) ([]float32, error) {
	if len(b) != 4*want {
		return nil, fmt.Errorf("comm: float payload is %d bytes, want %d", len(b), 4*want)
	}
	out := make([]float32, want)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}

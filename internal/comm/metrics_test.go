package comm

import (
	"sync"
	"testing"
	"time"

	"cucc/internal/metrics"
	"cucc/internal/transport"
)

// opCase is one collective invocation shared by the failure and
// cross-check tables below.
type opCase struct {
	name string
	op   *opNames
	run  func(c transport.Conn, n, chunk int) (Stats, error)
}

func opCollectiveCases() []opCase {
	return []opCase{
		{"Barrier", &opBarrier, func(c transport.Conn, n, chunk int) (Stats, error) {
			return Barrier(c)
		}},
		{"Bcast", &opBcast, func(c transport.Conn, n, chunk int) (Stats, error) {
			var data []byte
			if c.Rank() == 0 {
				data = chunkFor(0, chunk)
			}
			_, st, err := Bcast(c, 0, data)
			return st, err
		}},
		{"AllgatherRing", &opRing, func(c transport.Conn, n, chunk int) (Stats, error) {
			buf := make([]byte, n*chunk)
			copy(buf[c.Rank()*chunk:], chunkFor(c.Rank(), chunk))
			return AllgatherRing(c, buf, chunk)
		}},
		{"AllgatherVRing", &opVRing, func(c transport.Conn, n, chunk int) (Stats, error) {
			offs := make([]int, n+1)
			for r := 0; r < n; r++ {
				offs[r+1] = offs[r] + (r+1)*8
			}
			buf := make([]byte, offs[n])
			return AllgatherVRing(c, buf, offs)
		}},
		{"AllReduceMaxF64", &opAllReduceMax, func(c transport.Conn, n, chunk int) (Stats, error) {
			_, st, err := AllReduceMaxF64(c, float64(c.Rank()))
			return st, err
		}},
		{"GatherF64", &opGatherF64, func(c transport.Conn, n, chunk int) (Stats, error) {
			_, st, err := GatherF64(c, 1, float64(c.Rank()))
			return st, err
		}},
		{"Scatter", &opScatter, func(c transport.Conn, n, chunk int) (Stats, error) {
			var data []byte
			if c.Rank() == 0 {
				data = make([]byte, n*chunk)
			}
			_, st, err := Scatter(c, 0, data)
			return st, err
		}},
		{"Alltoall", &opAlltoall, func(c transport.Conn, n, chunk int) (Stats, error) {
			_, st, err := Alltoall(c, make([]byte, n*chunk))
			return st, err
		}},
		{"GatherBytes", &opGatherBytes, func(c transport.Conn, n, chunk int) (Stats, error) {
			_, st, err := GatherBytes(c, 0, chunkFor(c.Rank(), chunk))
			return st, err
		}},
		{"ReduceScatterSumF32", &opReduceScatter, func(c transport.Conn, n, chunk int) (Stats, error) {
			_, st, err := ReduceScatterSumF32(c, make([]float32, n*8))
			return st, err
		}},
	}
}

// TestSendFailureSymmetricAccounting: when the transport rejects every
// send, no collective may count phantom traffic — summed over the ranks the
// Stats must stay symmetric (Msgs==Recvs, BytesSent==BytesRecvd; here all
// zero, since nothing was delivered).  GatherF64 and GatherBytes used to
// count the non-root send before checking its error, breaking the
// invariant exactly here.
func TestSendFailureSymmetricAccounting(t *testing.T) {
	const n, chunk = 4, 32
	for _, tc := range opCollectiveCases() {
		t.Run(tc.name, func(t *testing.T) {
			net := transport.NewFaulty(transport.NewInproc(n),
				transport.FaultConfig{Seed: 11, SendFail: 1.0, RetryBackoff: time.Microsecond})
			defer net.Close()
			stats := make([]Stats, n)
			failures := 0
			var mu sync.Mutex
			var wg sync.WaitGroup
			for r := 0; r < n; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					c := net.Conn(r)
					// Ranks whose peer's send failed would otherwise block
					// forever; a deadline turns the hang into ErrTimeout.
					c.SetRecvTimeout(200 * time.Millisecond)
					st, err := tc.run(c, n, chunk)
					mu.Lock()
					stats[r] = st
					if err != nil {
						failures++
					}
					mu.Unlock()
				}(r)
			}
			wg.Wait()
			if failures == 0 {
				t.Fatal("no rank failed despite SendFail=1.0")
			}
			var total Stats
			for _, st := range stats {
				total.Add(st)
			}
			if total.Msgs != total.Recvs {
				t.Errorf("%d msgs counted as sent but %d received", total.Msgs, total.Recvs)
			}
			if total.BytesSent != total.BytesRecvd {
				t.Errorf("%d bytes counted as sent but %d received", total.BytesSent, total.BytesRecvd)
			}
			if total.Msgs != 0 {
				t.Errorf("counted %d msgs although every send failed", total.Msgs)
			}
		})
	}
}

// TestRegistryCrossCheck: over a metered transport, the per-collective
// registry counters must equal the summed per-rank Stats, and the
// transport-level counters (an independent ground truth recorded below the
// comm layer) must agree with both.
func TestRegistryCrossCheck(t *testing.T) {
	const n, chunk = 5, 32
	for _, tc := range opCollectiveCases() {
		t.Run(tc.name, func(t *testing.T) {
			reg := metrics.New()
			net := transport.NewMetered(transport.NewInproc(n), reg)
			defer net.Close()
			stats := make([]Stats, n)
			errs := make([]error, n)
			var wg sync.WaitGroup
			for r := 0; r < n; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					stats[r], errs[r] = tc.run(net.Conn(r), n, chunk)
				}(r)
			}
			wg.Wait()
			for r, err := range errs {
				if err != nil {
					t.Fatalf("rank %d: %v", r, err)
				}
			}
			var total Stats
			for _, st := range stats {
				total.Add(st)
			}
			s := reg.Snapshot()
			if got := s.Counters[tc.op.calls]; got != n {
				t.Errorf("%s = %d, want %d", tc.op.calls, got, n)
			}
			check := func(name string, want int64) {
				if got := s.Counters[name]; got != want {
					t.Errorf("%s = %d, want %d (summed Stats)", name, got, want)
				}
			}
			check(tc.op.msgs, total.Msgs)
			check(tc.op.bytesSent, total.BytesSent)
			check(tc.op.recvs, total.Recvs)
			check(tc.op.bytesRecvd, total.BytesRecvd)
			// Transport ground truth: only this collective ran, so its
			// traffic is the network's entire traffic.
			check(transport.MetricSendMsgs, total.Msgs)
			check(transport.MetricSendBytes, total.BytesSent)
			check(transport.MetricRecvMsgs, total.Recvs)
			check(transport.MetricRecvBytes, total.BytesRecvd)
			if s.Counters[tc.op.errors] != 0 {
				t.Errorf("%s = %d, want 0", tc.op.errors, s.Counters[tc.op.errors])
			}
		})
	}
}

// TestDelegatingWrappersRecordOnce: AllReduceSumF32 delegates to
// ReduceScatterSumF32 + AllgatherRing and must not record an entry of its
// own — otherwise summed comm.* counters would double the transport totals.
func TestDelegatingWrappersRecordOnce(t *testing.T) {
	const n = 4
	reg := metrics.New()
	net := transport.NewMetered(transport.NewInproc(n), reg)
	defer net.Close()
	var wg sync.WaitGroup
	stats := make([]Stats, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			_, st, err := AllReduceSumF32(net.Conn(r), make([]float32, n*4))
			if err != nil {
				panic(err)
			}
			stats[r] = st
		}(r)
	}
	wg.Wait()
	var total Stats
	for _, st := range stats {
		total.Add(st)
	}
	s := reg.Snapshot()
	commMsgs := s.Counters[opReduceScatter.msgs] + s.Counters[opRing.msgs]
	if commMsgs != total.Msgs {
		t.Errorf("comm.* msgs = %d, want %d (summed Stats)", commMsgs, total.Msgs)
	}
	if got := s.Counters[transport.MetricSendMsgs]; got != total.Msgs {
		t.Errorf("transport msgs = %d, want %d", got, total.Msgs)
	}
}

// benchRing exercises one of the ring allgathers across n persistent rank
// goroutines, reporting allocations: the send path must stay at one arena
// allocation per call, not one buffer per ring step (the regression this
// benchmark guards).
func benchRing(b *testing.B, vring bool) {
	const n, chunk = 8, 4096
	net := transport.NewInproc(n)
	defer net.Close()
	offs := make([]int, n+1)
	for r := 0; r < n; r++ {
		offs[r+1] = offs[r] + chunk
	}
	bufs := make([][]byte, n)
	for r := range bufs {
		bufs[r] = make([]byte, n*chunk)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				var err error
				if vring {
					_, err = AllgatherVRing(net.Conn(r), bufs[r], offs)
				} else {
					_, err = AllgatherRing(net.Conn(r), bufs[r], chunk)
				}
				if err != nil {
					b.Error(err)
				}
			}(r)
		}
		wg.Wait()
	}
}

func BenchmarkAllgatherRing(b *testing.B)  { benchRing(b, false) }
func BenchmarkAllgatherVRing(b *testing.B) { benchRing(b, true) }

package comm

import (
	"errors"
	"sync"
	"testing"
	"time"

	"cucc/internal/transport"
)

// collectiveCase invokes one collective on a participating rank for abort
// and timeout tests; the concrete buffers just need to be structurally
// valid for n ranks.  `absent` is the rank withheld from the collective —
// chosen so that at least one peer demonstrably blocks on it (the root for
// root-driven downward collectives, the last rank otherwise).
type collectiveCase struct {
	name   string
	absent int
	run    func(c transport.Conn, n int) error
}

func collectiveCases(n int) []collectiveCase {
	return []collectiveCase{
		{"Barrier", n - 1, func(c transport.Conn, n int) error {
			_, err := Barrier(c)
			return err
		}},
		{"Bcast", 0, func(c transport.Conn, n int) error {
			_, _, err := Bcast(c, 0, []byte{1, 2, 3})
			return err
		}},
		{"AllgatherRing", n - 1, func(c transport.Conn, n int) error {
			_, err := AllgatherRing(c, make([]byte, 8*n), 8)
			return err
		}},
		{"AllgatherVRing", n - 1, func(c transport.Conn, n int) error {
			offs := make([]int, n+1)
			for i := range offs {
				offs[i] = 8 * i
			}
			_, err := AllgatherVRing(c, make([]byte, 8*n), offs)
			return err
		}},
		{"AllgatherRecDouble", n - 1, func(c transport.Conn, n int) error {
			_, err := AllgatherRecDouble(c, make([]byte, 8*n), 8)
			return err
		}},
		{"AllgatherOutOfPlace", n - 1, func(c transport.Conn, n int) error {
			_, err := AllgatherOutOfPlace(c, make([]byte, 8), make([]byte, 8*n))
			return err
		}},
		{"AllReduceMaxF64", n - 1, func(c transport.Conn, n int) error {
			_, _, err := AllReduceMaxF64(c, float64(c.Rank()))
			return err
		}},
		{"GatherF64", n - 1, func(c transport.Conn, n int) error {
			_, _, err := GatherF64(c, 0, float64(c.Rank()))
			return err
		}},
		{"Scatter", 0, func(c transport.Conn, n int) error {
			var data []byte
			if c.Rank() == 0 {
				data = make([]byte, 4*n)
			}
			_, _, err := Scatter(c, 0, data)
			return err
		}},
		{"Alltoall", n - 1, func(c transport.Conn, n int) error {
			_, _, err := Alltoall(c, make([]byte, 4*n))
			return err
		}},
		{"GatherBytes", n - 1, func(c transport.Conn, n int) error {
			_, _, err := GatherBytes(c, 0, []byte{byte(c.Rank())})
			return err
		}},
		{"ReduceScatterSumF32", n - 1, func(c transport.Conn, n int) error {
			_, _, err := ReduceScatterSumF32(c, make([]float32, n))
			return err
		}},
		{"AllReduceSumF32", n - 1, func(c transport.Conn, n int) error {
			_, _, err := AllReduceSumF32(c, make([]float32, n))
			return err
		}},
	}
}

// TestCollectivesUnblockOnAbort: one rank never joins the collective and
// aborts the job instead; every participating rank must return ErrAborted
// well before its 30s backstop deadline.  Pre-abort these would hang.
func TestCollectivesUnblockOnAbort(t *testing.T) {
	const n = 4
	for _, tc := range collectiveCases(n) {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			net := transport.NewInproc(n)
			defer net.Close()
			start := time.Now()
			var wg sync.WaitGroup
			errs := make([]error, n)
			for r := 0; r < n; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					c := net.Conn(r)
					if r == tc.absent {
						time.Sleep(10 * time.Millisecond)
						c.Abort(errors.New("injected failure"))
						return
					}
					c.SetRecvTimeout(30 * time.Second)
					errs[r] = tc.run(c, n)
				}(r)
			}
			wg.Wait()
			if el := time.Since(start); el > 10*time.Second {
				t.Fatalf("abort took %v to unblock the collective", el)
			}
			// Ranks whose schedule finished before the abort (e.g. gather
			// leaves, which only send) may return nil; every rank that was
			// still blocked must surface ErrAborted, and at least one —
			// whoever waits on the absent rank — always is.
			aborted := 0
			for r := 0; r < n; r++ {
				if r == tc.absent || errs[r] == nil {
					continue
				}
				if !errors.Is(errs[r], transport.ErrAborted) {
					t.Errorf("rank %d error = %v, want ErrAborted", r, errs[r])
				}
				aborted++
			}
			if aborted == 0 {
				t.Error("no rank observed the abort; the collective completed without the absent rank")
			}
		})
	}
}

// TestCollectivesTimeoutOnAbsentRank: with no abort at all — one rank is
// simply absent — the receive deadline must still bound every blocked
// rank.  Ranks that wait on the absent peer get ErrTimeout; ranks whose
// schedule never needs it (e.g. gather leaves) may finish cleanly, but
// nobody may hang.
func TestCollectivesTimeoutOnAbsentRank(t *testing.T) {
	const n = 4
	for _, tc := range collectiveCases(n) {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			net := transport.NewInproc(n)
			defer net.Close()
			done := make(chan []error, 1)
			go func() {
				var wg sync.WaitGroup
				errs := make([]error, n)
				for r := 0; r < n; r++ {
					if r == tc.absent {
						continue
					}
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						c := net.Conn(r)
						c.SetRecvTimeout(200 * time.Millisecond)
						errs[r] = tc.run(c, n)
					}(r)
				}
				wg.Wait()
				done <- errs
			}()
			select {
			case errs := <-done:
				sawTimeout := false
				for r, err := range errs {
					if err == nil {
						continue
					}
					if !errors.Is(err, transport.ErrTimeout) {
						t.Errorf("rank %d error = %v, want ErrTimeout or nil", r, err)
					}
					sawTimeout = true
				}
				if !sawTimeout {
					t.Errorf("no rank timed out although rank %d never participated", tc.absent)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("collective hung despite receive deadline")
			}
		})
	}
}

// TestAllgatherVRingOffsetValidation: malformed offset vectors must be
// rejected up front, before any traffic.
func TestAllgatherVRingOffsetValidation(t *testing.T) {
	const n = 4
	bad := map[string][]int{
		"negative":      {-1, 8, 16, 24, 32},
		"non-monotonic": {0, 16, 8, 24, 32},
		"beyond-buffer": {0, 8, 16, 24, 1 << 20},
		"wrong-arity":   {0, 8, 16},
	}
	for name, offs := range bad {
		t.Run(name, func(t *testing.T) {
			runAll(t, n, func(c transport.Conn) error {
				if _, err := AllgatherVRing(c, make([]byte, 32), offs); err == nil {
					t.Errorf("offsets %v accepted", offs)
				}
				return nil
			})
		})
	}
}

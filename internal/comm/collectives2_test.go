package comm

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cucc/internal/transport"
)

func TestScatter(t *testing.T) {
	for _, n := range []int{1, 2, 4, 5} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			const chunk = 16
			payload := make([]byte, n*chunk)
			for i := range payload {
				payload[i] = byte(i)
			}
			runAll(t, n, func(c transport.Conn) error {
				var data []byte
				if c.Rank() == 1%n {
					data = payload
				}
				got, _, err := Scatter(c, 1%n, data)
				if err != nil {
					return err
				}
				want := payload[c.Rank()*chunk : (c.Rank()+1)*chunk]
				if !bytes.Equal(got, want) {
					return fmt.Errorf("rank %d got %v, want %v", c.Rank(), got[:4], want[:4])
				}
				return nil
			})
		})
	}
}

func TestScatterIndivisible(t *testing.T) {
	runAll(t, 2, func(c transport.Conn) error {
		if c.Rank() == 0 {
			if _, _, err := Scatter(c, 0, make([]byte, 7)); err == nil {
				return fmt.Errorf("indivisible scatter accepted")
			}
			// Unblock rank 1 which is waiting for its chunk.
			return c.Send(1, tagScatter, []byte{0})
		}
		_, _, err := Scatter(c, 0, nil)
		return err
	})
}

func TestAlltoall(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			const chunk = 8
			runAll(t, n, func(c transport.Conn) error {
				data := make([]byte, n*chunk)
				for peer := 0; peer < n; peer++ {
					for i := 0; i < chunk; i++ {
						data[peer*chunk+i] = byte(c.Rank()*16 + peer)
					}
				}
				got, _, err := Alltoall(c, data)
				if err != nil {
					return err
				}
				for from := 0; from < n; from++ {
					for i := 0; i < chunk; i++ {
						want := byte(from*16 + c.Rank())
						if got[from*chunk+i] != want {
							return fmt.Errorf("rank %d chunk %d byte %d = %d, want %d",
								c.Rank(), from, i, got[from*chunk+i], want)
						}
					}
				}
				return nil
			})
		})
	}
}

func TestGatherBytes(t *testing.T) {
	const n, chunk = 4, 8
	runAll(t, n, func(c transport.Conn) error {
		data := make([]byte, chunk)
		for i := range data {
			data[i] = byte(c.Rank()*10 + i)
		}
		got, _, err := GatherBytes(c, 2, data)
		if err != nil {
			return err
		}
		if c.Rank() != 2 {
			if got != nil {
				return fmt.Errorf("non-root received data")
			}
			return nil
		}
		for r := 0; r < n; r++ {
			for i := 0; i < chunk; i++ {
				if got[r*chunk+i] != byte(r*10+i) {
					return fmt.Errorf("gathered[%d][%d] = %d", r, i, got[r*chunk+i])
				}
			}
		}
		return nil
	})
}

func TestReduceScatterSumF32(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			const perChunk = 4
			total := n * perChunk
			runAll(t, n, func(c transport.Conn) error {
				data := make([]float32, total)
				for i := range data {
					data[i] = float32(c.Rank() + i)
				}
				got, _, err := ReduceScatterSumF32(c, data)
				if err != nil {
					return err
				}
				// Sum over ranks of (rank + i) = n*i + n(n-1)/2.
				for j, v := range got {
					i := c.Rank()*perChunk + j
					want := float32(n*i + n*(n-1)/2)
					if v != want {
						return fmt.Errorf("rank %d out[%d] = %g, want %g", c.Rank(), j, v, want)
					}
				}
				return nil
			})
		})
	}
}

func TestAllReduceSumF32(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			total := n * 8
			runAll(t, n, func(c transport.Conn) error {
				data := make([]float32, total)
				for i := range data {
					data[i] = float32(i) * 0.5
				}
				got, _, err := AllReduceSumF32(c, data)
				if err != nil {
					return err
				}
				for i, v := range got {
					want := float32(i) * 0.5 * float32(n)
					if math.Abs(float64(v-want)) > 1e-4 {
						return fmt.Errorf("out[%d] = %g, want %g", i, v, want)
					}
				}
				return nil
			})
		})
	}
}

func TestEncodeDecodeF32(t *testing.T) {
	in := []float32{1.5, -2.25, 0, 3e7}
	out, err := decodeF32(encodeF32(in), len(in))
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("round trip [%d]: %g != %g", i, out[i], in[i])
		}
	}
	if _, err := decodeF32(make([]byte, 7), 2); err == nil {
		t.Error("bad payload length accepted")
	}
}

// Property: AllgatherVRing reassembles arbitrary chunk layouts correctly.
func TestAllgatherVRingProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%6) + 2
		rng := rand.New(rand.NewSource(seed))
		offs := make([]int, n+1)
		for r := 0; r < n; r++ {
			offs[r+1] = offs[r] + rng.Intn(50)
		}
		total := offs[n]
		ok := true
		runAll(t, n, func(c transport.Conn) error {
			buf := make([]byte, total)
			r := c.Rank()
			for i := offs[r]; i < offs[r+1]; i++ {
				buf[i] = byte(r + 1)
			}
			if _, err := AllgatherVRing(c, buf, offs); err != nil {
				return err
			}
			for rr := 0; rr < n; rr++ {
				for i := offs[rr]; i < offs[rr+1]; i++ {
					if buf[i] != byte(rr+1) {
						ok = false
					}
				}
			}
			return nil
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: Alltoall is an involution-like exchange — applying it twice
// with the output restores each rank's view of its own chunks.
func TestAlltoallRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%5) + 1
		const chunk = 8
		rng := rand.New(rand.NewSource(seed))
		inputs := make([][]byte, n)
		for r := range inputs {
			inputs[r] = make([]byte, n*chunk)
			rng.Read(inputs[r])
		}
		ok := true
		runAll(t, n, func(c transport.Conn) error {
			once, _, err := Alltoall(c, inputs[c.Rank()])
			if err != nil {
				return err
			}
			twice, _, err := Alltoall(c, once)
			if err != nil {
				return err
			}
			// Chunk p of twice = chunk rank of rank p's once = chunk rank
			// of (chunk p of rank rank's input)... round trip: twice must
			// equal the original input.
			if !bytes.Equal(twice, inputs[c.Rank()]) {
				ok = false
			}
			return nil
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

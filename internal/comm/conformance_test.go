package comm

import (
	"testing"

	"cucc/internal/simnet"
	"cucc/internal/transport"
)

// TestCollectiveMsgsMatchModel pins every collective's measured message
// count to the closed-form count its simnet cost model assumes.  The
// simulated clocks price communication from these formulas, not from the
// wire — an implementation that sends more (or fewer) messages than its
// model silently skews every simulated-time figure, which is exactly how
// the old AllReduceMaxF64 overcounted on non-power-of-two clusters
// (redundant doubling rounds plus a full rank-0 re-reduction).
func TestCollectiveMsgsMatchModel(t *testing.T) {
	const chunk = 16
	cases := []struct {
		name string
		want func(n int) int64
		run  func(c transport.Conn, n int) (Stats, error)
	}{
		{"Barrier", simnet.BarrierMsgs, func(c transport.Conn, n int) (Stats, error) {
			return Barrier(c)
		}},
		{"Bcast", simnet.BroadcastMsgs, func(c transport.Conn, n int) (Stats, error) {
			var data []byte
			if c.Rank() == 0 {
				data = chunkFor(0, chunk)
			}
			_, st, err := Bcast(c, 0, data)
			return st, err
		}},
		{"AllgatherRing", simnet.RingAllgatherMsgs, func(c transport.Conn, n int) (Stats, error) {
			buf := make([]byte, n*chunk)
			copy(buf[c.Rank()*chunk:], chunkFor(c.Rank(), chunk))
			return AllgatherRing(c, buf, chunk)
		}},
		{"AllgatherVRing", simnet.RingAllgatherMsgs, func(c transport.Conn, n int) (Stats, error) {
			offs := make([]int, n+1)
			for r := 0; r < n; r++ {
				offs[r+1] = offs[r] + (r+1)*8
			}
			buf := make([]byte, offs[n])
			return AllgatherVRing(c, buf, offs)
		}},
		{"AllgatherRecDouble", simnet.RecursiveDoublingAllgatherMsgs, func(c transport.Conn, n int) (Stats, error) {
			if n&(n-1) != 0 {
				return Stats{}, nil // algorithm (and model) are pow2-only
			}
			buf := make([]byte, n*chunk)
			copy(buf[c.Rank()*chunk:], chunkFor(c.Rank(), chunk))
			return AllgatherRecDouble(c, buf, chunk)
		}},
		{"AllReduceMaxF64", simnet.AllReduceMaxMsgs, func(c transport.Conn, n int) (Stats, error) {
			got, st, err := AllReduceMaxF64(c, float64(c.Rank()))
			if err == nil && got != float64(n-1) {
				t.Errorf("rank %d: AllReduceMax = %g, want %d", c.Rank(), got, n-1)
			}
			return st, err
		}},
		{"GatherF64", simnet.GatherMsgs, func(c transport.Conn, n int) (Stats, error) {
			_, st, err := GatherF64(c, 0, float64(c.Rank()))
			return st, err
		}},
		{"GatherBytes", simnet.GatherMsgs, func(c transport.Conn, n int) (Stats, error) {
			_, st, err := GatherBytes(c, 0, chunkFor(c.Rank(), chunk))
			return st, err
		}},
		{"Scatter", simnet.GatherMsgs, func(c transport.Conn, n int) (Stats, error) {
			var data []byte
			if c.Rank() == 0 {
				data = make([]byte, n*chunk)
			}
			_, st, err := Scatter(c, 0, data)
			return st, err
		}},
		{"Alltoall", simnet.AlltoallMsgs, func(c transport.Conn, n int) (Stats, error) {
			_, st, err := Alltoall(c, make([]byte, n*chunk))
			return st, err
		}},
		{"ReduceScatterSumF32", simnet.ReduceScatterMsgs, func(c transport.Conn, n int) (Stats, error) {
			_, st, err := ReduceScatterSumF32(c, make([]float32, n*8))
			return st, err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, n := range []int{1, 2, 3, 4, 5, 8} {
				stats := make([]Stats, n)
				runAll(t, n, func(c transport.Conn) error {
					st, err := tc.run(c, n)
					stats[c.Rank()] = st
					return err
				})
				var msgs, recvs int64
				for _, st := range stats {
					msgs += st.Msgs
					recvs += st.Recvs
				}
				want := tc.want(n)
				if tc.name == "AllgatherRecDouble" && n&(n-1) != 0 {
					want = 0
				}
				if msgs != want {
					t.Errorf("n=%d: measured %d msgs, model assumes %d", n, msgs, want)
				}
				if recvs != msgs {
					t.Errorf("n=%d: %d msgs but %d recvs (asymmetric accounting)", n, msgs, recvs)
				}
			}
		})
	}
}

// Package comm implements the collective communication operations of the
// CuCC runtime library over a point-to-point transport: the mini-MPI of
// this repository.
//
// The central operation is the balanced-in-place ring Allgather the paper's
// three-phase workflow relies on (§2.3, §4); the package also provides the
// out-of-place and imbalanced (vector) variants evaluated in the Figure 3
// ablation, recursive doubling, broadcast, barrier, and reductions.
package comm

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"cucc/internal/transport"
)

// Tags separate the message streams of different collective operations.
const (
	tagBarrier = 1
	tagBcast   = 2
	tagGather  = 3
	tagRing    = 4
	tagReduce  = 5
	tagP2P     = 6
)

// Stats counts the traffic one rank exchanged during a collective, both
// directions.  Accounting is symmetric: summed over all ranks of one
// collective, Msgs == Recvs and BytesSent == BytesRecvd — every message has
// exactly one counted sender and one counted receiver.
type Stats struct {
	Msgs       int64
	BytesSent  int64
	Recvs      int64
	BytesRecvd int64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Msgs += o.Msgs
	s.BytesSent += o.BytesSent
	s.Recvs += o.Recvs
	s.BytesRecvd += o.BytesRecvd
}

// recvd records one received message of len(data) bytes.
func (s *Stats) recvd(data []byte) {
	s.Recvs++
	s.BytesRecvd += int64(len(data))
}

// Send is a tracked point-to-point send.  A failed send counts nothing:
// only messages the transport accepted appear in Stats.
func Send(c transport.Conn, to int, data []byte) (st Stats, err error) {
	defer record(c, &opP2PSend, time.Now(), &st, &err)
	if err = c.Send(to, tagP2P, data); err != nil {
		return st, err
	}
	st.Msgs = 1
	st.BytesSent = int64(len(data))
	return st, nil
}

// Recv is the matching point-to-point receive.
func Recv(c transport.Conn, from int) ([]byte, error) {
	var st Stats
	var err error
	defer record(c, &opP2PRecv, time.Now(), &st, &err)
	var data []byte
	data, err = c.Recv(from, tagP2P)
	if err == nil {
		st.recvd(data)
	}
	return data, err
}

// Barrier is a dissemination barrier: ceil(log2 N) rounds, each rank
// signaling rank (r + 2^k) mod N.
func Barrier(c transport.Conn) (st Stats, err error) {
	defer record(c, &opBarrier, time.Now(), &st, &err)
	n := c.Size()
	for dist := 1; dist < n; dist *= 2 {
		to := (c.Rank() + dist) % n
		from := (c.Rank() - dist + n) % n
		if err := c.Send(to, tagBarrier, nil); err != nil {
			return st, err
		}
		st.Msgs++
		if _, err := c.Recv(from, tagBarrier); err != nil {
			return st, err
		}
		st.Recvs++
	}
	return st, nil
}

// Bcast distributes root's data to every rank along a binomial tree and
// returns the received copy.
func Bcast(c transport.Conn, root int, data []byte) (out []byte, st Stats, err error) {
	defer record(c, &opBcast, time.Now(), &st, &err)
	n := c.Size()
	if n == 1 {
		return data, st, nil
	}
	// Relative rank with root at 0.  Non-roots receive from the rank that
	// differs in their lowest set bit; everyone then forwards to the ranks
	// below that bit.
	rel := (c.Rank() - root + n) % n
	firstMask := 1
	for firstMask < n {
		firstMask *= 2
	}
	firstMask /= 2
	if rel != 0 {
		lowest := rel & -rel
		from := ((rel - lowest) + root) % n
		got, err := c.Recv(from, tagBcast)
		if err != nil {
			return nil, st, err
		}
		st.recvd(got)
		data = got
		firstMask = lowest / 2
	}
	for mask := firstMask; mask > 0; mask /= 2 {
		if rel+mask < n {
			to := ((rel + mask) + root) % n
			if err := c.Send(to, tagBcast, data); err != nil {
				return nil, st, err
			}
			st.Msgs++
			st.BytesSent += int64(len(data))
		}
	}
	return data, st, nil
}

// AllgatherRing performs the balanced in-place ring Allgather: buf holds
// Size() equal chunks of chunkBytes; on entry each rank's own chunk
// (index Rank()) is valid; on exit all chunks are valid on every rank.
func AllgatherRing(c transport.Conn, buf []byte, chunkBytes int) (st Stats, err error) {
	defer record(c, &opRing, time.Now(), &st, &err)
	n := c.Size()
	if chunkBytes == 0 || n == 1 {
		return st, nil
	}
	if len(buf) != n*chunkBytes {
		return st, fmt.Errorf("comm: allgather buffer is %d bytes, want %d chunks of %d", len(buf), n, chunkBytes)
	}
	r := c.Rank()
	right := (r + 1) % n
	left := (r - 1 + n) % n
	// One send arena per call instead of one allocation per ring step.  Each
	// step sends its own arena slot — in-flight messages are owned by the
	// transport, so slots are never reused, but the n-1 per-step allocations
	// collapse into one.
	arena := make([]byte, (n-1)*chunkBytes)
	for step := 0; step < n-1; step++ {
		sendChunk := (r - step + n) % n
		recvChunk := (r - step - 1 + n) % n
		out := arena[step*chunkBytes : (step+1)*chunkBytes]
		copy(out, buf[sendChunk*chunkBytes:(sendChunk+1)*chunkBytes])
		if err := c.Send(right, tagRing, out); err != nil {
			return st, err
		}
		st.Msgs++
		st.BytesSent += int64(chunkBytes)
		in, err := c.Recv(left, tagRing)
		if err != nil {
			return st, err
		}
		st.recvd(in)
		if len(in) != chunkBytes {
			return st, fmt.Errorf("comm: allgather chunk size mismatch: got %d, want %d", len(in), chunkBytes)
		}
		copy(buf[recvChunk*chunkBytes:], in)
	}
	return st, nil
}

// AllgatherVRing is the imbalanced (vector) ring Allgather: offs has
// Size()+1 entries; rank i's chunk is buf[offs[i]:offs[i+1]].
func AllgatherVRing(c transport.Conn, buf []byte, offs []int) (st Stats, err error) {
	defer record(c, &opVRing, time.Now(), &st, &err)
	n := c.Size()
	if n == 1 {
		return st, nil
	}
	if len(offs) != n+1 {
		return st, fmt.Errorf("comm: allgatherv needs %d offsets, got %d", n+1, len(offs))
	}
	// Offsets index the shared buffer on every rank: a negative or
	// non-monotonic table would slice out of range (panic) or alias
	// chunks (silent corruption), so validate the whole table up front.
	if offs[0] < 0 {
		return st, fmt.Errorf("comm: allgatherv offset[0] is negative (%d)", offs[0])
	}
	for i := 0; i < n; i++ {
		if offs[i+1] < offs[i] {
			return st, fmt.Errorf("comm: allgatherv offsets not monotonic: offs[%d]=%d > offs[%d]=%d",
				i, offs[i], i+1, offs[i+1])
		}
	}
	if offs[n] > len(buf) {
		return st, fmt.Errorf("comm: allgatherv offsets exceed buffer (%d > %d)", offs[n], len(buf))
	}
	r := c.Rank()
	right := (r + 1) % n
	left := (r - 1 + n) % n
	// Send arena: one allocation sized to the call's total sent bytes (every
	// chunk except the right neighbor's), sliced per step as in AllgatherRing.
	arenaLen := 0
	for step := 0; step < n-1; step++ {
		sc := (r - step + n) % n
		arenaLen += offs[sc+1] - offs[sc]
	}
	arena := make([]byte, arenaLen)
	pos := 0
	for step := 0; step < n-1; step++ {
		sendChunk := (r - step + n) % n
		recvChunk := (r - step - 1 + n) % n
		chunk := buf[offs[sendChunk]:offs[sendChunk+1]]
		out := arena[pos : pos+len(chunk)]
		pos += len(chunk)
		copy(out, chunk)
		if err := c.Send(right, tagRing, out); err != nil {
			return st, err
		}
		st.Msgs++
		st.BytesSent += int64(len(out))
		in, err := c.Recv(left, tagRing)
		if err != nil {
			return st, err
		}
		st.recvd(in)
		want := offs[recvChunk+1] - offs[recvChunk]
		if len(in) != want {
			return st, fmt.Errorf("comm: allgatherv chunk %d size mismatch: got %d, want %d", recvChunk, len(in), want)
		}
		copy(buf[offs[recvChunk]:], in)
	}
	return st, nil
}

// AllgatherOutOfPlace gathers each rank's `in` into `out` (len(in) *
// Size() bytes): the out-of-place variant of Figure 3, which additionally
// pays a local copy of the rank's own contribution.
func AllgatherOutOfPlace(c transport.Conn, in, out []byte) (Stats, error) {
	n := c.Size()
	chunk := len(in)
	if len(out) != n*chunk {
		return Stats{}, fmt.Errorf("comm: out buffer is %d bytes, want %d", len(out), n*chunk)
	}
	copy(out[c.Rank()*chunk:], in)
	return AllgatherRing(c, out, chunk)
}

// AllgatherRecDouble is the recursive-doubling Allgather for power-of-two
// rank counts (ablation partner of the ring algorithm).
func AllgatherRecDouble(c transport.Conn, buf []byte, chunkBytes int) (st Stats, err error) {
	n := c.Size()
	if chunkBytes == 0 || n == 1 {
		return st, nil
	}
	// Validate before the non-power-of-two fallback so both algorithms
	// reject malformed buffers identically.
	if len(buf) != n*chunkBytes {
		return st, fmt.Errorf("comm: allgather buffer is %d bytes, want %d chunks of %d", len(buf), n, chunkBytes)
	}
	if n&(n-1) != 0 {
		// The fallback records its own metrics (as allgather_ring), so the
		// delegation is not double-counted.
		return AllgatherRing(c, buf, chunkBytes)
	}
	defer record(c, &opRecDouble, time.Now(), &st, &err)
	r := c.Rank()
	// Send arena: the doubling rounds send 1+2+...+n/2 = n-1 chunks total.
	arena := make([]byte, (n-1)*chunkBytes)
	pos := 0
	// At round k the rank owns the 2^k chunks of its aligned group.
	for dist := 1; dist < n; dist *= 2 {
		peer := r ^ dist
		groupStart := (r / dist) * dist
		own := buf[groupStart*chunkBytes : (groupStart+dist)*chunkBytes]
		out := arena[pos : pos+len(own)]
		pos += len(own)
		copy(out, own)
		if err := c.Send(peer, tagRing, out); err != nil {
			return st, err
		}
		st.Msgs++
		st.BytesSent += int64(len(out))
		in, err := c.Recv(peer, tagRing)
		if err != nil {
			return st, err
		}
		st.recvd(in)
		peerStart := (peer / dist) * dist
		copy(buf[peerStart*chunkBytes:], in)
	}
	return st, nil
}

// AllReduceMaxF64 returns the maximum of v across all ranks (used for
// simulated-clock synchronization at collective boundaries).
func AllReduceMaxF64(c transport.Conn, v float64) (out float64, st Stats, err error) {
	defer record(c, &opAllReduceMax, time.Now(), &st, &err)
	n := c.Size()
	r := c.Rank()
	// Largest power of two <= n; ranks [p, n) are the remainder.
	p := 1
	for p*2 <= n {
		p *= 2
	}
	sendVal := func(peer int, x float64) error {
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, math.Float64bits(x))
		if err := c.Send(peer, tagReduce, out); err != nil {
			return err
		}
		st.Msgs++
		st.BytesSent += 8
		return nil
	}
	recvVal := func(peer int) (float64, error) {
		in, err := c.Recv(peer, tagReduce)
		if err != nil {
			return 0, err
		}
		st.recvd(in)
		return math.Float64frombits(binary.LittleEndian.Uint64(in)), nil
	}
	// Fold the remainder in: rank p+i contributes to rank i, then waits for
	// the final value.  Every rank in [0, p) then runs a full recursive
	// doubling with no skipped peers — the redundant doubling rounds the
	// old code ran on remainder ranks (and then threw away behind a rank-0
	// re-reduction) are gone.  Total: p*log2(p) + 2*(n-p) messages.
	if r >= p {
		if err := sendVal(r-p, v); err != nil {
			return 0, st, err
		}
		out, err := recvVal(r - p)
		if err != nil {
			return 0, st, err
		}
		return out, st, nil
	}
	if r+p < n {
		pv, err := recvVal(r + p)
		if err != nil {
			return 0, st, err
		}
		if pv > v {
			v = pv
		}
	}
	for dist := 1; dist < p; dist *= 2 {
		peer := r ^ dist
		if err := sendVal(peer, v); err != nil {
			return 0, st, err
		}
		pv, err := recvVal(peer)
		if err != nil {
			return 0, st, err
		}
		if pv > v {
			v = pv
		}
	}
	if r+p < n {
		if err := sendVal(r+p, v); err != nil {
			return 0, st, err
		}
	}
	return v, st, nil
}

// GatherF64 collects one float64 from every rank at root (nil elsewhere).
func GatherF64(c transport.Conn, root int, v float64) (vals []float64, st Stats, err error) {
	defer record(c, &opGatherF64, time.Now(), &st, &err)
	n := c.Size()
	if c.Rank() != root {
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, math.Float64bits(v))
		// Count only sends the transport accepted; a failed send must not
		// appear as traffic (the accounting stays symmetric with the root's
		// receive count, matching Barrier/Bcast/AllgatherRing).
		if err := c.Send(root, tagGather, out); err != nil {
			return nil, st, err
		}
		st.Msgs++
		st.BytesSent += 8
		return nil, st, nil
	}
	vals = make([]float64, n)
	vals[root] = v
	for r := 0; r < n; r++ {
		if r == root {
			continue
		}
		in, err := c.Recv(r, tagGather)
		if err != nil {
			return nil, st, err
		}
		st.recvd(in)
		vals[r] = math.Float64frombits(binary.LittleEndian.Uint64(in))
	}
	return vals, st, nil
}

package comm

import (
	"time"

	"cucc/internal/metrics"
	"cucc/internal/transport"
)

// Per-collective metrics.  Every collective that performs its own transport
// operations records one entry per call into the registry attached to the
// conn (by the metered transport decorator); wrappers that only delegate
// (AllgatherOutOfPlace, AllReduceSumF32, the recursive-doubling fallback)
// record nothing themselves, so summed over all comm.* ops the msgs/bytes
// counters equal the transport.* totals exactly — the cross-check invariant
// the suites-level test enforces.
//
// Names are precomputed per op so the record path performs no string
// concatenation; an unmetered conn costs one type assertion.

// opNames is the metric name set of one collective operation.
type opNames struct {
	calls, msgs, bytesSent, recvs, bytesRecvd, errors, seconds string
}

func makeOpNames(op string) opNames {
	p := "comm." + op
	return opNames{
		calls:      p + ".calls",
		msgs:       p + ".msgs",
		bytesSent:  p + ".bytes_sent",
		recvs:      p + ".recvs",
		bytesRecvd: p + ".bytes_recvd",
		errors:     p + ".errors",
		seconds:    p + ".seconds",
	}
}

var (
	opBarrier       = makeOpNames("barrier")
	opBcast         = makeOpNames("bcast")
	opRing          = makeOpNames("allgather_ring")
	opVRing         = makeOpNames("allgather_v_ring")
	opRecDouble     = makeOpNames("allgather_recdouble")
	opAllReduceMax  = makeOpNames("allreduce_max_f64")
	opGatherF64     = makeOpNames("gather_f64")
	opScatter       = makeOpNames("scatter")
	opAlltoall      = makeOpNames("alltoall")
	opGatherBytes   = makeOpNames("gather_bytes")
	opReduceScatter = makeOpNames("reduce_scatter_sum_f32")
	opP2PSend       = makeOpNames("p2p_send")
	opP2PRecv       = makeOpNames("p2p_recv")
)

// record books one completed (or failed) collective call: the final Stats,
// the error outcome, and the wall latency.  Designed to be deferred with
// pointers to the named results:
//
//	func Barrier(c transport.Conn) (st Stats, err error) {
//		defer record(c, &opBarrier, time.Now(), &st, &err)
//		...
//	}
func record(c transport.Conn, op *opNames, start time.Time, st *Stats, errp *error) {
	reg := transport.RegistryOf(c)
	if reg == nil {
		return
	}
	reg.Counter(op.calls).Add(1)
	reg.Counter(op.msgs).Add(st.Msgs)
	reg.Counter(op.bytesSent).Add(st.BytesSent)
	reg.Counter(op.recvs).Add(st.Recvs)
	reg.Counter(op.bytesRecvd).Add(st.BytesRecvd)
	if *errp != nil {
		reg.Counter(op.errors).Add(1)
	}
	reg.Histogram(op.seconds).Observe(time.Since(start).Seconds())
}

// Registry returns the metrics registry attached to the conn's transport
// (nil when unmetered) — re-exported so comm users need not import
// transport for it.
func Registry(c transport.Conn) *metrics.Registry { return transport.RegistryOf(c) }

package comm

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"cucc/internal/transport"
)

// runAll runs fn per rank over an in-process network.
func runAll(t *testing.T, n int, fn func(c transport.Conn) error) {
	t.Helper()
	net := transport.NewInproc(n)
	defer net.Close()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(net.Conn(r))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func chunkFor(rank, chunk int) []byte {
	out := make([]byte, chunk)
	for i := range out {
		out[i] = byte(rank*17 + i)
	}
	return out
}

func checkGathered(buf []byte, n, chunk int) error {
	for r := 0; r < n; r++ {
		want := chunkFor(r, chunk)
		got := buf[r*chunk : (r+1)*chunk]
		if !bytes.Equal(got, want) {
			return fmt.Errorf("chunk %d corrupted: got %v, want %v", r, got[:4], want[:4])
		}
	}
	return nil
}

func TestAllgatherRingSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16, 32} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			const chunk = 64
			runAll(t, n, func(c transport.Conn) error {
				buf := make([]byte, n*chunk)
				copy(buf[c.Rank()*chunk:], chunkFor(c.Rank(), chunk))
				st, err := AllgatherRing(c, buf, chunk)
				if err != nil {
					return err
				}
				if n > 1 && st.Msgs != int64(n-1) {
					return fmt.Errorf("sent %d msgs, want %d", st.Msgs, n-1)
				}
				return checkGathered(buf, n, chunk)
			})
		})
	}
}

func TestAllgatherRecDouble(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			const chunk = 48
			runAll(t, n, func(c transport.Conn) error {
				buf := make([]byte, n*chunk)
				copy(buf[c.Rank()*chunk:], chunkFor(c.Rank(), chunk))
				if _, err := AllgatherRecDouble(c, buf, chunk); err != nil {
					return err
				}
				return checkGathered(buf, n, chunk)
			})
		})
	}
}

func TestAllgatherRecDoubleFallback(t *testing.T) {
	// Non-power-of-two falls back to the ring.
	const n, chunk = 6, 32
	runAll(t, n, func(c transport.Conn) error {
		buf := make([]byte, n*chunk)
		copy(buf[c.Rank()*chunk:], chunkFor(c.Rank(), chunk))
		if _, err := AllgatherRecDouble(c, buf, chunk); err != nil {
			return err
		}
		return checkGathered(buf, n, chunk)
	})
}

func TestAllgatherVRing(t *testing.T) {
	// Imbalanced chunks: rank r contributes (r+1)*8 bytes.
	const n = 5
	offs := make([]int, n+1)
	for r := 0; r < n; r++ {
		offs[r+1] = offs[r] + (r+1)*8
	}
	total := offs[n]
	runAll(t, n, func(c transport.Conn) error {
		buf := make([]byte, total)
		r := c.Rank()
		for i := offs[r]; i < offs[r+1]; i++ {
			buf[i] = byte(r + 100)
		}
		if _, err := AllgatherVRing(c, buf, offs); err != nil {
			return err
		}
		for rr := 0; rr < n; rr++ {
			for i := offs[rr]; i < offs[rr+1]; i++ {
				if buf[i] != byte(rr+100) {
					return fmt.Errorf("byte %d = %d, want %d", i, buf[i], rr+100)
				}
			}
		}
		return nil
	})
}

func TestAllgatherOutOfPlace(t *testing.T) {
	const n, chunk = 4, 40
	runAll(t, n, func(c transport.Conn) error {
		in := chunkFor(c.Rank(), chunk)
		out := make([]byte, n*chunk)
		if _, err := AllgatherOutOfPlace(c, in, out); err != nil {
			return err
		}
		return checkGathered(out, n, chunk)
	})
}

func TestBcast(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16} {
		for root := 0; root < n; root += max(1, n/3) {
			t.Run(fmt.Sprintf("n=%d root=%d", n, root), func(t *testing.T) {
				payload := []byte("broadcast-payload")
				runAll(t, n, func(c transport.Conn) error {
					var data []byte
					if c.Rank() == root {
						data = payload
					}
					got, _, err := Bcast(c, root, data)
					if err != nil {
						return err
					}
					if !bytes.Equal(got, payload) {
						return fmt.Errorf("got %q", got)
					}
					return nil
				})
			})
		}
	}
}

func TestBarrier(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 13} {
		runAll(t, n, func(c transport.Conn) error {
			for i := 0; i < 3; i++ {
				if _, err := Barrier(c); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

func TestAllReduceMaxF64(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runAll(t, n, func(c transport.Conn) error {
				v := float64(c.Rank() * 10)
				got, _, err := AllReduceMaxF64(c, v)
				if err != nil {
					return err
				}
				want := float64((n - 1) * 10)
				if got != want {
					return fmt.Errorf("max = %g, want %g", got, want)
				}
				return nil
			})
		})
	}
}

func TestGatherF64(t *testing.T) {
	const n = 6
	runAll(t, n, func(c transport.Conn) error {
		vals, _, err := GatherF64(c, 2, float64(c.Rank()+1))
		if err != nil {
			return err
		}
		if c.Rank() != 2 {
			if vals != nil {
				return fmt.Errorf("non-root got values")
			}
			return nil
		}
		for r, v := range vals {
			if v != float64(r+1) {
				return fmt.Errorf("vals[%d] = %g", r, v)
			}
		}
		return nil
	})
}

func TestSendRecvP2P(t *testing.T) {
	runAll(t, 2, func(c transport.Conn) error {
		if c.Rank() == 0 {
			st, err := Send(c, 1, []byte("hello"))
			if err != nil {
				return err
			}
			if st.Msgs != 1 || st.BytesSent != 5 {
				return fmt.Errorf("stats = %+v", st)
			}
			return nil
		}
		got, err := Recv(c, 0)
		if err != nil {
			return err
		}
		if string(got) != "hello" {
			return fmt.Errorf("got %q", got)
		}
		return nil
	})
}

func TestAllgatherRingBadBuffer(t *testing.T) {
	runAll(t, 2, func(c transport.Conn) error {
		buf := make([]byte, 10) // not 2*chunk
		if _, err := AllgatherRing(c, buf, 8); err == nil {
			return fmt.Errorf("mismatched buffer accepted")
		}
		return nil
	})
}

func TestAllgatherOverTCP(t *testing.T) {
	// The same collective must work over real sockets.
	const n, chunk = 4, 128
	net, err := transport.NewTCP(n)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := net.Conn(r)
			buf := make([]byte, n*chunk)
			copy(buf[r*chunk:], chunkFor(r, chunk))
			if _, err := AllgatherRing(c, buf, chunk); err != nil {
				errs[r] = err
				return
			}
			errs[r] = checkGathered(buf, n, chunk)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	var s Stats
	s.Add(Stats{Msgs: 2, BytesSent: 100})
	s.Add(Stats{Msgs: 3, BytesSent: 50})
	if s.Msgs != 5 || s.BytesSent != 150 {
		t.Errorf("stats = %+v", s)
	}
}

package comm

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"cucc/internal/transport"
)

// runAll runs fn per rank over an in-process network.
func runAll(t *testing.T, n int, fn func(c transport.Conn) error) {
	t.Helper()
	net := transport.NewInproc(n)
	defer net.Close()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(net.Conn(r))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func chunkFor(rank, chunk int) []byte {
	out := make([]byte, chunk)
	for i := range out {
		out[i] = byte(rank*17 + i)
	}
	return out
}

func checkGathered(buf []byte, n, chunk int) error {
	for r := 0; r < n; r++ {
		want := chunkFor(r, chunk)
		got := buf[r*chunk : (r+1)*chunk]
		if !bytes.Equal(got, want) {
			return fmt.Errorf("chunk %d corrupted: got %v, want %v", r, got[:4], want[:4])
		}
	}
	return nil
}

func TestAllgatherRingSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16, 32} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			const chunk = 64
			runAll(t, n, func(c transport.Conn) error {
				buf := make([]byte, n*chunk)
				copy(buf[c.Rank()*chunk:], chunkFor(c.Rank(), chunk))
				st, err := AllgatherRing(c, buf, chunk)
				if err != nil {
					return err
				}
				if n > 1 && st.Msgs != int64(n-1) {
					return fmt.Errorf("sent %d msgs, want %d", st.Msgs, n-1)
				}
				return checkGathered(buf, n, chunk)
			})
		})
	}
}

func TestAllgatherRecDouble(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			const chunk = 48
			runAll(t, n, func(c transport.Conn) error {
				buf := make([]byte, n*chunk)
				copy(buf[c.Rank()*chunk:], chunkFor(c.Rank(), chunk))
				if _, err := AllgatherRecDouble(c, buf, chunk); err != nil {
					return err
				}
				return checkGathered(buf, n, chunk)
			})
		})
	}
}

func TestAllgatherRecDoubleFallback(t *testing.T) {
	// Non-power-of-two falls back to the ring.
	const n, chunk = 6, 32
	runAll(t, n, func(c transport.Conn) error {
		buf := make([]byte, n*chunk)
		copy(buf[c.Rank()*chunk:], chunkFor(c.Rank(), chunk))
		if _, err := AllgatherRecDouble(c, buf, chunk); err != nil {
			return err
		}
		return checkGathered(buf, n, chunk)
	})
}

func TestAllgatherVRing(t *testing.T) {
	// Imbalanced chunks: rank r contributes (r+1)*8 bytes.
	const n = 5
	offs := make([]int, n+1)
	for r := 0; r < n; r++ {
		offs[r+1] = offs[r] + (r+1)*8
	}
	total := offs[n]
	runAll(t, n, func(c transport.Conn) error {
		buf := make([]byte, total)
		r := c.Rank()
		for i := offs[r]; i < offs[r+1]; i++ {
			buf[i] = byte(r + 100)
		}
		if _, err := AllgatherVRing(c, buf, offs); err != nil {
			return err
		}
		for rr := 0; rr < n; rr++ {
			for i := offs[rr]; i < offs[rr+1]; i++ {
				if buf[i] != byte(rr+100) {
					return fmt.Errorf("byte %d = %d, want %d", i, buf[i], rr+100)
				}
			}
		}
		return nil
	})
}

func TestAllgatherOutOfPlace(t *testing.T) {
	const n, chunk = 4, 40
	runAll(t, n, func(c transport.Conn) error {
		in := chunkFor(c.Rank(), chunk)
		out := make([]byte, n*chunk)
		if _, err := AllgatherOutOfPlace(c, in, out); err != nil {
			return err
		}
		return checkGathered(out, n, chunk)
	})
}

func TestBcast(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16} {
		for root := 0; root < n; root += max(1, n/3) {
			t.Run(fmt.Sprintf("n=%d root=%d", n, root), func(t *testing.T) {
				payload := []byte("broadcast-payload")
				runAll(t, n, func(c transport.Conn) error {
					var data []byte
					if c.Rank() == root {
						data = payload
					}
					got, _, err := Bcast(c, root, data)
					if err != nil {
						return err
					}
					if !bytes.Equal(got, payload) {
						return fmt.Errorf("got %q", got)
					}
					return nil
				})
			})
		}
	}
}

func TestBarrier(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 13} {
		runAll(t, n, func(c transport.Conn) error {
			for i := 0; i < 3; i++ {
				if _, err := Barrier(c); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

func TestAllReduceMaxF64(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runAll(t, n, func(c transport.Conn) error {
				v := float64(c.Rank() * 10)
				got, _, err := AllReduceMaxF64(c, v)
				if err != nil {
					return err
				}
				want := float64((n - 1) * 10)
				if got != want {
					return fmt.Errorf("max = %g, want %g", got, want)
				}
				return nil
			})
		})
	}
}

func TestGatherF64(t *testing.T) {
	const n = 6
	runAll(t, n, func(c transport.Conn) error {
		vals, _, err := GatherF64(c, 2, float64(c.Rank()+1))
		if err != nil {
			return err
		}
		if c.Rank() != 2 {
			if vals != nil {
				return fmt.Errorf("non-root got values")
			}
			return nil
		}
		for r, v := range vals {
			if v != float64(r+1) {
				return fmt.Errorf("vals[%d] = %g", r, v)
			}
		}
		return nil
	})
}

func TestSendRecvP2P(t *testing.T) {
	runAll(t, 2, func(c transport.Conn) error {
		if c.Rank() == 0 {
			st, err := Send(c, 1, []byte("hello"))
			if err != nil {
				return err
			}
			if st.Msgs != 1 || st.BytesSent != 5 {
				return fmt.Errorf("stats = %+v", st)
			}
			return nil
		}
		got, err := Recv(c, 0)
		if err != nil {
			return err
		}
		if string(got) != "hello" {
			return fmt.Errorf("got %q", got)
		}
		return nil
	})
}

func TestAllgatherRingBadBuffer(t *testing.T) {
	runAll(t, 2, func(c transport.Conn) error {
		buf := make([]byte, 10) // not 2*chunk
		if _, err := AllgatherRing(c, buf, 8); err == nil {
			return fmt.Errorf("mismatched buffer accepted")
		}
		return nil
	})
}

func TestAllgatherOverTCP(t *testing.T) {
	// The same collective must work over real sockets.
	const n, chunk = 4, 128
	net, err := transport.NewTCP(n)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := net.Conn(r)
			buf := make([]byte, n*chunk)
			copy(buf[r*chunk:], chunkFor(r, chunk))
			if _, err := AllgatherRing(c, buf, chunk); err != nil {
				errs[r] = err
				return
			}
			errs[r] = checkGathered(buf, n, chunk)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	var s Stats
	s.Add(Stats{Msgs: 2, BytesSent: 100, Recvs: 1, BytesRecvd: 40})
	s.Add(Stats{Msgs: 3, BytesSent: 50, Recvs: 4, BytesRecvd: 60})
	if s.Msgs != 5 || s.BytesSent != 150 {
		t.Errorf("send stats = %+v", s)
	}
	if s.Recvs != 5 || s.BytesRecvd != 100 {
		t.Errorf("recv stats = %+v", s)
	}
}

// checkSymmetric asserts the cluster-wide invariant of Stats: every message
// has one counted sender and one counted receiver.
func checkSymmetric(t *testing.T, name string, stats []Stats) {
	t.Helper()
	var total Stats
	for _, st := range stats {
		total.Add(st)
	}
	if total.Msgs != total.Recvs {
		t.Errorf("%s: %d msgs sent but %d received", name, total.Msgs, total.Recvs)
	}
	if total.BytesSent != total.BytesRecvd {
		t.Errorf("%s: %d bytes sent but %d received", name, total.BytesSent, total.BytesRecvd)
	}
	if total.Msgs == 0 {
		t.Errorf("%s: no traffic counted", name)
	}
}

func TestSymmetricAccounting(t *testing.T) {
	// Each collective, summed over all ranks, must count as many receives
	// (and received bytes) as sends.  Scatter, GatherBytes, and Bcast
	// historically returned zero-valued Stats on the receiving ranks.
	const n = 5 // non-power-of-two exercises the fallback paths too
	const chunk = 32
	type tc struct {
		name string
		run  func(c transport.Conn) (Stats, error)
	}
	cases := []tc{
		{"Barrier", func(c transport.Conn) (Stats, error) {
			return Barrier(c)
		}},
		{"Bcast", func(c transport.Conn) (Stats, error) {
			var data []byte
			if c.Rank() == 0 {
				data = chunkFor(0, chunk)
			}
			_, st, err := Bcast(c, 0, data)
			return st, err
		}},
		{"AllgatherRing", func(c transport.Conn) (Stats, error) {
			buf := make([]byte, n*chunk)
			copy(buf[c.Rank()*chunk:], chunkFor(c.Rank(), chunk))
			return AllgatherRing(c, buf, chunk)
		}},
		{"AllgatherVRing", func(c transport.Conn) (Stats, error) {
			offs := make([]int, n+1)
			for r := 0; r < n; r++ {
				offs[r+1] = offs[r] + (r+1)*8
			}
			buf := make([]byte, offs[n])
			return AllgatherVRing(c, buf, offs)
		}},
		{"AllgatherRecDouble", func(c transport.Conn) (Stats, error) {
			buf := make([]byte, n*chunk)
			copy(buf[c.Rank()*chunk:], chunkFor(c.Rank(), chunk))
			return AllgatherRecDouble(c, buf, chunk)
		}},
		{"AllReduceMaxF64", func(c transport.Conn) (Stats, error) {
			_, st, err := AllReduceMaxF64(c, float64(c.Rank()))
			return st, err
		}},
		{"GatherF64", func(c transport.Conn) (Stats, error) {
			_, st, err := GatherF64(c, 1, float64(c.Rank()))
			return st, err
		}},
		{"Scatter", func(c transport.Conn) (Stats, error) {
			var data []byte
			if c.Rank() == 2 {
				data = make([]byte, n*chunk)
			}
			got, st, err := Scatter(c, 2, data)
			if err == nil && len(got) != chunk {
				err = fmt.Errorf("scatter chunk is %d bytes, want %d", len(got), chunk)
			}
			return st, err
		}},
		{"Alltoall", func(c transport.Conn) (Stats, error) {
			_, st, err := Alltoall(c, make([]byte, n*chunk))
			return st, err
		}},
		{"GatherBytes", func(c transport.Conn) (Stats, error) {
			got, st, err := GatherBytes(c, 0, chunkFor(c.Rank(), chunk))
			if err == nil && c.Rank() == 0 && len(got) != n*chunk {
				err = fmt.Errorf("gathered %d bytes, want %d", len(got), n*chunk)
			}
			return st, err
		}},
		{"ReduceScatterSumF32", func(c transport.Conn) (Stats, error) {
			_, st, err := ReduceScatterSumF32(c, make([]float32, n*8))
			return st, err
		}},
		{"AllReduceSumF32", func(c transport.Conn) (Stats, error) {
			_, st, err := AllReduceSumF32(c, make([]float32, n*8))
			return st, err
		}},
	}
	for _, tcase := range cases {
		t.Run(tcase.name, func(t *testing.T) {
			stats := make([]Stats, n)
			runAll(t, n, func(c transport.Conn) error {
				st, err := tcase.run(c)
				stats[c.Rank()] = st
				return err
			})
			checkSymmetric(t, tcase.name, stats)
		})
	}
}

func TestScatterBcastReceiversCounted(t *testing.T) {
	// Regression: the receiving ranks of rooted collectives must report
	// their receive, not a zero Stats.
	const n, chunk = 4, 16
	runAll(t, n, func(c transport.Conn) error {
		var data []byte
		if c.Rank() == 0 {
			data = make([]byte, n*chunk)
		}
		_, st, err := Scatter(c, 0, data)
		if err != nil {
			return err
		}
		if c.Rank() != 0 && (st.Recvs != 1 || st.BytesRecvd != chunk) {
			return fmt.Errorf("scatter receiver stats = %+v", st)
		}
		payload := []byte("payload")
		if c.Rank() != 0 {
			payload = nil
		}
		_, st, err = Bcast(c, 0, payload)
		if err != nil {
			return err
		}
		if c.Rank() != 0 && st.Recvs != 1 {
			return fmt.Errorf("bcast receiver stats = %+v", st)
		}
		return nil
	})
}

func TestAllgatherRecDoubleBadBuffer(t *testing.T) {
	// The length check must run before the non-power-of-two fallback so
	// both algorithms reject malformed buffers identically.
	for _, n := range []int{3, 4} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runAll(t, n, func(c transport.Conn) error {
				buf := make([]byte, 10) // not n*chunk
				if _, err := AllgatherRecDouble(c, buf, 8); err == nil {
					return fmt.Errorf("mismatched buffer accepted")
				}
				return nil
			})
		})
	}
}

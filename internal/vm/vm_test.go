package vm_test

import (
	"math"
	"strings"
	"testing"

	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/lang"
	"cucc/internal/vm"
)

func compileKernel(t *testing.T, src string) *kir.Kernel {
	t.Helper()
	mod, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	if len(mod.Kernels) == 0 {
		t.Fatalf("no kernels in source")
	}
	return mod.Kernels[0]
}

func TestVecAdd(t *testing.T) {
	k := compileKernel(t, `
__global__ void vecadd(float* out, float* a, float* b, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        out[id] = a[id] + b[id];
}
`)
	n := 100
	av := make([]float32, n)
	bv := make([]float32, n)
	for i := range av {
		av[i] = float32(i) * 0.5
		bv[i] = float32(n - i)
	}
	mem := interp.NewHostMem()
	mem.Bind(0, interp.ZeroBuffer(kir.F32, n))
	mem.Bind(1, interp.NewF32Buffer(av))
	mem.Bind(2, interp.NewF32Buffer(bv))
	l := &interp.Launch{
		Kernel: k,
		Grid:   interp.Dim1(4),
		Block:  interp.Dim1(32),
		Args:   make([]interp.Value, 3+1),
		Mem:    mem,
	}
	l.Args[3] = interp.IntV(int64(n))
	r, err := vm.NewRunner(l)
	if err != nil {
		t.Fatal(err)
	}
	var w interp.Work
	for bx := 0; bx < 4; bx++ {
		bw, err := r.ExecBlock(bx, 0)
		if err != nil {
			t.Fatal(err)
		}
		w.Add(bw)
	}
	got := mem.Buffer(0).F32()
	for i := 0; i < n; i++ {
		want := av[i] + bv[i]
		if got[i] != want {
			t.Fatalf("out[%d] = %g, want %g", i, got[i], want)
		}
	}
	// 128 threads: each does one comparison (IntOps from compare is... the
	// compare id<n is int → IntOps), plus the add for the first n.
	if w.Flops != int64(n) {
		t.Errorf("Flops = %d, want %d", w.Flops, n)
	}
	if w.GlobalStoreBytes != int64(4*n) {
		t.Errorf("GlobalStoreBytes = %d, want %d", w.GlobalStoreBytes, 4*n)
	}
}

func TestLoopControlFlow(t *testing.T) {
	k := compileKernel(t, `
__global__ void loops(int* out) {
    int id = threadIdx.x;
    int s = 0;
    for (int i = 0; i < 10; i++) {
        if (i == 7) break;
        if (i % 2 == 1) continue;
        s = s + i;
    }
    int j = 0;
    while (j < 3) {
        s = s + 100;
        j = j + 1;
    }
    out[id] = s;
}
`)
	mem := interp.NewHostMem()
	mem.Bind(0, interp.ZeroBuffer(kir.I32, 4))
	l := &interp.Launch{Kernel: k, Grid: interp.Dim1(1), Block: interp.Dim1(4),
		Args: make([]interp.Value, 1), Mem: mem}
	if _, err := vm.ExecBlock(l, 0, 0); err != nil {
		t.Fatal(err)
	}
	// 0+2+4+6 = 12, plus 3*100.
	for i, v := range mem.Buffer(0).I32() {
		if v != 312 {
			t.Fatalf("out[%d] = %d, want 312", i, v)
		}
	}
}

func TestSelectAndIntrinsics(t *testing.T) {
	k := compileKernel(t, `
__global__ void sel(float* out, float s) {
    int id = threadIdx.x;
    float v = id % 2 == 0 ? sqrtf((float)id + s) : fmaxf((float)id, 2.5f);
    out[id] = v;
}
`)
	mem := interp.NewHostMem()
	mem.Bind(0, interp.ZeroBuffer(kir.F32, 8))
	args := make([]interp.Value, 2)
	args[1] = interp.FloatV(2.0)
	l := &interp.Launch{Kernel: k, Grid: interp.Dim1(1), Block: interp.Dim1(8), Args: args, Mem: mem}
	if _, err := vm.ExecBlock(l, 0, 0); err != nil {
		t.Fatal(err)
	}
	got := mem.Buffer(0).F32()
	for i := 0; i < 8; i++ {
		var want float32
		if i%2 == 0 {
			want = float32(math.Sqrt(float64(float32(i) + 2.0)))
		} else {
			want = float32(math.Max(float64(i), 2.5))
		}
		if got[i] != want {
			t.Fatalf("out[%d] = %g, want %g", i, got[i], want)
		}
	}
}

func TestBarrierReduction(t *testing.T) {
	k := compileKernel(t, `
__global__ void reduce(float* out, float* in) {
    __shared__ float tile[64];
    int tid = threadIdx.x;
    tile[tid] = in[blockIdx.x * blockDim.x + tid];
    __syncthreads();
    for (int stride = 32; stride > 0; stride = stride / 2) {
        if (tid < stride)
            tile[tid] = tile[tid] + tile[tid + stride];
        __syncthreads();
    }
    if (tid == 0)
        out[blockIdx.x] = tile[0];
}
`)
	if !k.HasSync() {
		t.Fatal("kernel should have sync")
	}
	in := make([]float32, 128)
	for i := range in {
		in[i] = float32(i%13) * 0.25
	}
	mem := interp.NewHostMem()
	mem.Bind(0, interp.ZeroBuffer(kir.F32, 2))
	mem.Bind(1, interp.NewF32Buffer(in))
	l := &interp.Launch{Kernel: k, Grid: interp.Dim1(2), Block: interp.Dim1(64),
		Args: make([]interp.Value, 2), Mem: mem}
	r, err := vm.NewRunner(l)
	if err != nil {
		t.Fatal(err)
	}
	for bx := 0; bx < 2; bx++ {
		if _, err := r.ExecBlock(bx, 0); err != nil {
			t.Fatal(err)
		}
	}
	got := mem.Buffer(0).F32()
	for b := 0; b < 2; b++ {
		var want float32
		// Match the reduction's pairwise summation order exactly.
		tile := make([]float32, 64)
		copy(tile, in[b*64:])
		for stride := 32; stride > 0; stride /= 2 {
			for i := 0; i < stride; i++ {
				tile[i] += tile[i+stride]
			}
		}
		want = tile[0]
		if got[b] != want {
			t.Fatalf("out[%d] = %g, want %g", b, got[b], want)
		}
	}
}

func TestEarlyReturnInBarrierKernel(t *testing.T) {
	// Thread 0 returns before the barrier; the interpreter's early-leave
	// semantics must let the rest of the block synchronize.
	k := compileKernel(t, `
__global__ void early(int* out) {
    __shared__ int flags[32];
    int tid = threadIdx.x;
    if (tid == 0) return;
    flags[tid] = tid;
    __syncthreads();
    out[tid] = flags[(tid + 1) % 32 == 0 ? 1 : (tid + 1) % 32];
}
`)
	mem := interp.NewHostMem()
	mem.Bind(0, interp.ZeroBuffer(kir.I32, 32))
	l := &interp.Launch{Kernel: k, Grid: interp.Dim1(1), Block: interp.Dim1(32),
		Args: make([]interp.Value, 1), Mem: mem}
	if _, err := vm.ExecBlock(l, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestLoopBudget(t *testing.T) {
	k := compileKernel(t, `
__global__ void runaway(float* out) {
    float acc = 0.0f;
    while (1 == 1) {
        acc = acc + 1.0f;
    }
    out[0] = acc;
}
`)
	mem := interp.NewHostMem()
	mem.Bind(0, interp.ZeroBuffer(kir.F32, 1))
	l := &interp.Launch{Kernel: k, Grid: interp.Dim1(1), Block: interp.Dim1(1),
		Args: make([]interp.Value, 1), Mem: mem, MaxLoopIters: 1000}
	w, err := vm.ExecBlock(l, 0, 0)
	if err == nil || !strings.Contains(err.Error(), "loop iterations") {
		t.Fatalf("want runaway-loop error, got %v", err)
	}
	if w != (interp.Work{}) {
		t.Errorf("work must be zero on error, got %+v", w)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"div-zero", `
__global__ void k(int* out, int n) {
    out[0] = 1 / (n - n);
}`, "division by zero"},
		{"oob-store", `
__global__ void k(float* out, int n) {
    out[n + 1000000] = 1.0f;
}`, "out of bounds"},
		{"oob-shared", `
__global__ void k(int* out, int n) {
    __shared__ int tile[8];
    tile[n + 100] = 1;
    out[0] = tile[0];
}`, "out of bounds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := compileKernel(t, tc.src)
			mem := interp.NewHostMem()
			mem.Bind(0, interp.ZeroBuffer(kir.F32, 4))
			args := make([]interp.Value, len(k.Params))
			if len(args) > 1 {
				args[1] = interp.IntV(5)
			}
			l := &interp.Launch{Kernel: k, Grid: interp.Dim1(1), Block: interp.Dim1(1),
				Args: args, Mem: mem}
			_, err := vm.ExecBlock(l, 0, 0)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want %q error, got %v", tc.want, err)
			}
		})
	}
}

func TestCompileCachedReuses(t *testing.T) {
	k := compileKernel(t, `
__global__ void cached(float* out) { out[threadIdx.x] = 1.0f; }
`)
	p1, err := vm.CompileCached(k)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := vm.CompileCached(k)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("CompileCached should return the same program for one kernel")
	}
	if p1.NumInstructions() == 0 {
		t.Error("empty program")
	}
}

func TestLaunchValidation(t *testing.T) {
	k := compileKernel(t, `
__global__ void v(float* out) { out[0] = 1.0f; }
`)
	mem := interp.NewHostMem()
	mem.Bind(0, interp.ZeroBuffer(kir.F32, 1))
	if _, err := vm.NewRunner(&interp.Launch{Kernel: k, Grid: interp.Dim1(1),
		Block: interp.Dim1(1), Mem: mem}); err == nil {
		t.Error("missing args must fail validation")
	}
	if _, err := vm.NewRunner(&interp.Launch{Kernel: k, Grid: interp.Dim1(0),
		Block: interp.Dim1(1), Args: make([]interp.Value, 1), Mem: mem}); err == nil {
		t.Error("empty grid must fail validation")
	}
	if _, err := vm.NewRunner(&interp.Launch{Kernel: k, Grid: interp.Dim1(1),
		Block: interp.Dim1(1), Args: make([]interp.Value, 1)}); err == nil {
		t.Error("nil memory must fail validation")
	}
}

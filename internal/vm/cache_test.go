package vm_test

import (
	"fmt"
	"testing"

	"cucc/internal/kir"
	"cucc/internal/vm"
)

// TestCompileCacheBound drives more distinct kernels through CompileCached
// than the bound admits and checks LRU eviction: the cache never exceeds
// its cap, evictions are counted, the most-recently-used survivor still
// hits, and an evicted kernel recompiles (a miss) without error.
func TestCompileCacheBound(t *testing.T) {
	const bound = 4
	prev := vm.SetCompileCacheCap(bound)
	defer vm.SetCompileCacheCap(prev)

	kernel := func(i int) string {
		// Distinct constant per kernel so each parses to a distinct body.
		return fmt.Sprintf(`
__global__ void evict%d(float* out) { out[threadIdx.x] = %d.0f; }
`, i, i)
	}

	before := vm.ReadCacheStats()
	const n = bound + 3
	kernels := make([]*kir.Kernel, n)
	for i := 0; i < n; i++ {
		k := compileKernel(t, kernel(i))
		if _, err := vm.CompileCached(k); err != nil {
			t.Fatal(err)
		}
		kernels[i] = k
	}
	st := vm.ReadCacheStats()
	if st.CapEntries != bound {
		t.Errorf("CapEntries = %d, want %d", st.CapEntries, bound)
	}
	if st.Entries > bound {
		t.Errorf("Entries = %d exceeds bound %d", st.Entries, bound)
	}
	// Other tests in the package may have left residents behind, so the
	// eviction delta is at least n-bound (exactly that on a cold cache).
	if got := st.Evictions - before.Evictions; got < n-bound {
		t.Errorf("evictions = %d, want >= %d", got, n-bound)
	}
	if got := st.Misses - before.Misses; got != n {
		t.Errorf("misses = %d, want %d (all kernels distinct)", got, n)
	}

	// The last-inserted kernel is resident: hit, same program pointer.
	last := kernels[n-1]
	p1, err := vm.CompileCached(last)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := vm.CompileCached(last)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("resident kernel should return one shared program")
	}
	afterHits := vm.ReadCacheStats()
	if got := afterHits.Hits - st.Hits; got != 2 {
		t.Errorf("hits = %d, want 2", got)
	}

	// The first kernel was evicted: next use recompiles (a miss).
	if _, err := vm.CompileCached(kernels[0]); err != nil {
		t.Fatal(err)
	}
	final := vm.ReadCacheStats()
	if got := final.Misses - afterHits.Misses; got != 1 {
		t.Errorf("evicted kernel misses = %d, want 1", got)
	}
	if final.Entries > bound {
		t.Errorf("Entries = %d exceeds bound %d after re-insert", final.Entries, bound)
	}
}

// TestCompileCacheLRUOrder checks that a lookup refreshes recency: touching
// the oldest entry saves it from the next eviction.
func TestCompileCacheLRUOrder(t *testing.T) {
	prev := vm.SetCompileCacheCap(2)
	defer vm.SetCompileCacheCap(prev)

	src := func(name string) string {
		return fmt.Sprintf(`
__global__ void %s(float* out) { out[threadIdx.x] = 1.0f; }
`, name)
	}
	ka := compileKernel(t, src("lruA"))
	kb := compileKernel(t, src("lruB"))
	kc := compileKernel(t, src("lruC"))

	if _, err := vm.CompileCached(ka); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.CompileCached(kb); err != nil {
		t.Fatal(err)
	}
	// Touch A so B becomes the LRU victim when C arrives.
	if _, err := vm.CompileCached(ka); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.CompileCached(kc); err != nil {
		t.Fatal(err)
	}

	st := vm.ReadCacheStats()
	if _, err := vm.CompileCached(ka); err != nil {
		t.Fatal(err)
	}
	after := vm.ReadCacheStats()
	if after.Hits-st.Hits != 1 {
		t.Error("A should still be resident after touching it (LRU refresh)")
	}
	if _, err := vm.CompileCached(kb); err != nil {
		t.Fatal(err)
	}
	final := vm.ReadCacheStats()
	if final.Misses-after.Misses != 1 {
		t.Error("B should have been evicted (it was the least recently used)")
	}
}

// TestSetCompileCacheCapShrinks checks that shrinking the cap evicts
// immediately and that cap <= 0 means unbounded.
func TestSetCompileCacheCapShrinks(t *testing.T) {
	prev := vm.SetCompileCacheCap(0) // unbounded while filling
	defer vm.SetCompileCacheCap(prev)

	for i := 0; i < 5; i++ {
		k := compileKernel(t, fmt.Sprintf(`
__global__ void shrink%d(float* out) { out[threadIdx.x] = %d.0f; }
`, i, i))
		if _, err := vm.CompileCached(k); err != nil {
			t.Fatal(err)
		}
	}
	if st := vm.ReadCacheStats(); st.Entries < 5 {
		t.Fatalf("Entries = %d, want >= 5 while unbounded", st.Entries)
	}
	vm.SetCompileCacheCap(1)
	if st := vm.ReadCacheStats(); st.Entries > 1 {
		t.Errorf("Entries = %d after shrink to 1", st.Entries)
	}
}

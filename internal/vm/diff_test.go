package vm_test

// Differential tests: the interpreter is the semantic oracle.  Every random
// kernel must produce bitwise-identical buffers, identical Work counters,
// and matching error behaviour under both engines.

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/lang"
	"cucc/internal/vm"
)

const fuzzLen = 256

type blockRunner interface {
	ExecBlock(bx, by int) (interp.Work, error)
}

type engineFn func(*interp.Launch) (blockRunner, error)

func interpEngine(l *interp.Launch) (blockRunner, error) { return interp.NewRunner(l) }
func vmEngine(l *interp.Launch) (blockRunner, error)     { return vm.NewRunner(l) }
func laneEngine(l *interp.Launch) (blockRunner, error)   { return vm.NewLaneRunner(l) }

// runEngine executes every block of the grid in linear order on a fresh copy
// of the initial buffers, returning the final memory image, the accumulated
// Work, and the first error.
func runEngine(eng engineFn, k *kir.Kernel, grid, block interp.Dim3,
	args []interp.Value, init []*interp.HostBuffer, maxIters int64) ([]byte, interp.Work, error) {
	mem := interp.NewHostMem()
	for i, b := range init {
		cp := &interp.HostBuffer{Elem: b.Elem, Data: append([]byte(nil), b.Data...)}
		mem.Bind(i, cp)
	}
	l := &interp.Launch{Kernel: k, Grid: grid, Block: block, Args: args, Mem: mem,
		MaxLoopIters: maxIters}
	r, err := eng(l)
	if err != nil {
		return nil, interp.Work{}, err
	}
	var total interp.Work
	ydim := max(grid.Y, 1)
	for by := 0; by < ydim; by++ {
		for bx := 0; bx < grid.X; bx++ {
			w, err := r.ExecBlock(bx, by)
			if err != nil {
				return nil, total, err
			}
			total.Add(w)
		}
	}
	var image []byte
	for i := range init {
		image = append(image, mem.Buffer(i).Data...)
	}
	return image, total, nil
}

// fuzzInit builds the fixed fuzz signature's buffers and arguments:
// (float* out, float* a, int* ib, int n, float s).
func fuzzInit() ([]*interp.HostBuffer, []interp.Value) {
	rng := rand.New(rand.NewSource(99))
	av := make([]float32, fuzzLen)
	iv := make([]int32, fuzzLen)
	for i := range av {
		av[i] = float32(rng.NormFloat64())
		iv[i] = int32(rng.Intn(2000) - 1000)
	}
	init := []*interp.HostBuffer{
		interp.ZeroBuffer(kir.F32, fuzzLen),
		interp.NewF32Buffer(av),
		interp.NewI32Buffer(iv),
	}
	args := make([]interp.Value, 5)
	args[3] = interp.IntV(fuzzLen)
	args[4] = interp.FloatV(1.75)
	return init, args
}

// namedEngine pairs an engine constructor with a label for failure output.
type namedEngine struct {
	name string
	fn   engineFn
}

// diffRun runs src through the interpreter and the listed engines and
// asserts equivalence against the interpreter oracle.
func diffRun(t *testing.T, src string, grid, block interp.Dim3, engines ...namedEngine) {
	t.Helper()
	mod, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	k := mod.Kernels[0]
	if len(engines) == 0 {
		engines = []namedEngine{{"vm", vmEngine}}
	}
	init, args := fuzzInit()
	mi, wi, ei := runEngine(interpEngine, k, grid, block, args, init, 0)
	for _, eng := range engines {
		mv, wv, ev := runEngine(eng.fn, k, grid, block, args, init, 0)
		if (ei != nil) != (ev != nil) {
			t.Fatalf("error divergence: interp=%v %s=%v\n%s", ei, eng.name, ev, src)
		}
		if ei != nil {
			continue // both errored; messages carry engine prefixes, memory undefined
		}
		if wi != wv {
			t.Fatalf("work divergence:\ninterp %+v\n%s %+v\n%s", wi, eng.name, wv, src)
		}
		if !bytes.Equal(mi, mv) {
			for i := range mi {
				if mi[i] != mv[i] {
					t.Fatalf("memory divergence at byte %d: interp=%#x %s=%#x\n%s",
						i, mi[i], eng.name, mv[i], src)
				}
			}
		}
	}
}

// gen produces random kernel source over the fixed fuzz signature.
//
// laneSafe restricts generation to kernels whose result is independent of
// the thread interleaving, so the lane engine's lockstep schedule must be
// bitwise-identical to the sequential engines: no reads of buffers other
// threads store (ib[...] leaves), and at most one atomic site per buffer
// (an int atomicMax and a straight-line float atomicAdd both commute under
// the reordering lockstep introduces; a second non-commuting site on the
// same cell would not).
type gen struct {
	rng      *rand.Rand
	inFor    bool // "i" is in scope
	laneSafe bool
}

func (g *gen) pick(n int) int { return g.rng.Intn(n) }

// idx wraps an int expression into a provably in-bounds index.
func (g *gen) idx(depth int) string {
	return fmt.Sprintf("(((%s) %% %d + %d) %% %d)", g.intExpr(depth), fuzzLen, fuzzLen, fuzzLen)
}

func (g *gen) intExpr(depth int) string {
	if depth <= 0 {
		switch g.pick(5) {
		case 0:
			return "id"
		case 1:
			return "n"
		case 2:
			return fmt.Sprintf("%d", g.rng.Intn(41)-20)
		case 3:
			if g.inFor {
				return "i"
			}
			return "id"
		default:
			if g.laneSafe {
				// ib may be stored by other threads; reading it back would
				// make the result depend on the engine's interleaving.
				return fmt.Sprintf("(id * %d)", g.rng.Intn(5)+1)
			}
			return fmt.Sprintf("ib[%s]", g.idx(0))
		}
	}
	a, b := g.intExpr(depth-1), g.intExpr(depth-1)
	switch g.pick(10) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b)
	case 3:
		return fmt.Sprintf("(%s / %d)", a, g.rng.Intn(7)+1)
	case 4:
		return fmt.Sprintf("(%s %% %d)", a, g.rng.Intn(15)+1)
	case 5:
		return fmt.Sprintf("(%s & %s)", a, b)
	case 6:
		return fmt.Sprintf("(%s ^ %s)", a, b)
	case 7:
		return fmt.Sprintf("(%s << %d)", a, g.rng.Intn(4))
	case 8:
		return fmt.Sprintf("min(%s, %s)", a, b)
	default:
		return fmt.Sprintf("(%s > %s ? abs(%s) : %s)", a, b, a, b)
	}
}

func (g *gen) fltExpr(depth int) string {
	if depth <= 0 {
		switch g.pick(5) {
		case 0:
			return fmt.Sprintf("a[%s]", g.idx(0))
		case 1:
			return "s"
		case 2:
			return fmt.Sprintf("%.3ff", g.rng.Float64()*8-4)
		case 3:
			return "acc"
		default:
			return fmt.Sprintf("(float)(%s)", g.intExpr(0))
		}
	}
	a, b := g.fltExpr(depth-1), g.fltExpr(depth-1)
	switch g.pick(12) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b)
	case 3:
		return fmt.Sprintf("(%s / (fabsf(%s) + 1.5f))", a, b)
	case 4:
		return fmt.Sprintf("sqrtf(fabsf(%s))", a)
	case 5:
		return fmt.Sprintf("fminf(%s, %s)", a, b)
	case 6:
		return fmt.Sprintf("fmaxf(%s, %s)", a, b)
	case 7:
		return fmt.Sprintf("tanhf(%s)", a)
	case 8:
		return fmt.Sprintf("sinf(%s)", a)
	case 9:
		return fmt.Sprintf("(%s %s %s ? %s : %s)",
			a, []string{"<", "<=", ">", "!="}[g.pick(4)], b, g.fltExpr(depth-1), b)
	case 10:
		return fmt.Sprintf("expf(fminf(%s, 4.0f))", a)
	default:
		return fmt.Sprintf("(%s * 0.5f + (float)(%s))", a, g.intExpr(depth-1))
	}
}

// kernel emits one random kernel; mode selects the template.
func (g *gen) kernel(mode int) string {
	var b strings.Builder
	b.WriteString("__global__ void fz(float* out, float* a, int* ib, int n, float s) {\n")
	if mode == 4 {
		// Shared declarations must precede statements.
		b.WriteString("    __shared__ float tile[32];\n")
	}
	b.WriteString("    int id = ((blockIdx.y * gridDim.x + blockIdx.x) * (blockDim.x * blockDim.y)) + threadIdx.y * blockDim.x + threadIdx.x;\n")
	switch mode {
	case 0: // straight-line arithmetic, optional early return
		if g.pick(3) == 0 {
			b.WriteString(fmt.Sprintf("    if (id %% %d == 0) return;\n", g.rng.Intn(5)+2))
		}
		b.WriteString("    float acc = 0.0f;\n")
		for k := 0; k < g.pick(3)+2; k++ {
			b.WriteString(fmt.Sprintf("    acc = %s;\n", g.fltExpr(2)))
		}
		b.WriteString(fmt.Sprintf("    int t = %s;\n", g.intExpr(2)))
		b.WriteString(fmt.Sprintf("    ib[%s] = t;\n", g.idx(1)))
		b.WriteString(fmt.Sprintf("    out[%s] = acc;\n", g.idx(1)))
	case 1: // for loop with break/continue
		b.WriteString("    float acc = 0.0f;\n")
		g.inFor = true
		b.WriteString(fmt.Sprintf("    for (int i = 0; i < %d; i++) {\n", g.rng.Intn(12)+2))
		if g.pick(2) == 0 {
			b.WriteString(fmt.Sprintf("        if ((i + id) %% %d == 0) continue;\n", g.rng.Intn(4)+2))
		}
		if g.pick(2) == 0 {
			b.WriteString(fmt.Sprintf("        if (i > %d) break;\n", g.rng.Intn(8)+1))
		}
		b.WriteString(fmt.Sprintf("        acc = acc + %s;\n", g.fltExpr(1)))
		b.WriteString("    }\n")
		g.inFor = false
		b.WriteString(fmt.Sprintf("    out[%s] = acc;\n", g.idx(1)))
	case 2: // while loop
		b.WriteString("    float acc = s;\n    int j = 0;\n")
		b.WriteString(fmt.Sprintf("    while (j < %d) {\n", g.rng.Intn(9)+1))
		b.WriteString(fmt.Sprintf("        acc = acc * 0.75f + %s;\n", g.fltExpr(1)))
		b.WriteString("        j = j + 1;\n")
		if g.pick(3) == 0 {
			b.WriteString(fmt.Sprintf("        if (acc > %d.0f) break;\n", g.rng.Intn(50)+5))
		}
		b.WriteString("    }\n")
		b.WriteString(fmt.Sprintf("    out[%s] = acc;\n", g.idx(1)))
	case 3: // atomics (no sync: both engines run threads sequentially)
		b.WriteString("    float acc = 0.0f;\n")
		b.WriteString(fmt.Sprintf("    acc = %s;\n", g.fltExpr(2)))
		b.WriteString(fmt.Sprintf("    atomicAdd(&out[%s], acc);\n", g.idx(1)))
		b.WriteString(fmt.Sprintf("    atomicMax(&ib[%s], %s);\n", g.idx(1), g.intExpr(1)))
		if !g.laneSafe && g.pick(2) == 0 {
			// A second atomic op on ib does not commute with the atomicMax
			// above (max∘add != add∘max), so the lane engine's reordering
			// could legitimately diverge; only the sequential engines may
			// compare it.
			b.WriteString(fmt.Sprintf("    atomicAdd(&ib[%s], %s);\n", g.idx(1), g.intExpr(1)))
		}
	case 4: // shared memory + barriers (race-free; unique global writes)
		bs := 32 // tile size; must cover any generated block size
		b.WriteString("    int tid = threadIdx.y * blockDim.x + threadIdx.x;\n")
		b.WriteString(fmt.Sprintf("    float acc = 0.0f;\n    tile[tid] = %s;\n", g.fltExpr(1)))
		b.WriteString("    __syncthreads();\n")
		rounds := g.rng.Intn(3) + 1
		b.WriteString(fmt.Sprintf("    for (int r = 0; r < %d; r++) {\n", rounds))
		b.WriteString(fmt.Sprintf("        float v = tile[(tid + %d) %% %d];\n", g.rng.Intn(7)+1, bs))
		b.WriteString("        __syncthreads();\n")
		b.WriteString("        tile[tid] = v * 0.9f + 0.125f;\n")
		b.WriteString("        acc = acc + v;\n")
		b.WriteString("        __syncthreads();\n")
		b.WriteString("    }\n")
		if g.pick(3) == 0 {
			b.WriteString("    if (tid == 0) return;\n")
		}
		b.WriteString("    out[id] = acc + tile[tid];\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func TestDiffFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for iter := 0; iter < 200; iter++ {
		g := &gen{rng: rng}
		mode := iter % 5
		src := g.kernel(mode)
		grid := interp.Dim1(rng.Intn(3) + 1)
		block := interp.Dim1([]int{4, 8, 16, 32}[rng.Intn(4)])
		if mode != 4 && rng.Intn(3) == 0 {
			grid = interp.Dim3{X: rng.Intn(2) + 1, Y: 2}
			block = interp.Dim3{X: 4, Y: 2}
		}
		if mode == 4 {
			// Block must fit the tile and grid*block must fit out[] with
			// unique ids.
			block = interp.Dim3{X: []int{8, 16, 32}[rng.Intn(3)], Y: 1}
			if rng.Intn(3) == 0 {
				block = interp.Dim3{X: 8, Y: 2}
			}
			grid = interp.Dim1(rng.Intn(2) + 1)
		}
		t.Run(fmt.Sprintf("iter%03d_mode%d", iter, mode), func(t *testing.T) {
			diffRun(t, src, grid, block)
		})
	}
}

// TestDiffFuzzLanes fuzzes the lane-batched engine against both sequential
// engines: lane-safe random kernels (divergence, loops, atomics, barriers)
// across lane widths and deliberately odd block sizes, so partial tail
// batches, split/reconverge paths, and per-batch barrier suspension all get
// exercised.
func TestDiffFuzzLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	widths := []int{4, 8, 16, 32}
	for iter := 0; iter < 200; iter++ {
		g := &gen{rng: rng, laneSafe: true}
		mode := iter % 5
		src := g.kernel(mode)
		grid := interp.Dim1(rng.Intn(3) + 1)
		// Odd block sizes force tail batches at every lane width.
		block := interp.Dim1([]int{3, 5, 7, 8, 13, 16, 31, 32}[rng.Intn(8)])
		if mode != 4 && rng.Intn(3) == 0 {
			grid = interp.Dim3{X: rng.Intn(2) + 1, Y: 2}
			block = interp.Dim3{X: []int{3, 4, 5}[rng.Intn(3)], Y: 2}
		}
		if mode == 4 {
			// Block must fit the 32-element tile with unique tids.
			block = interp.Dim3{X: []int{8, 16, 24, 32}[rng.Intn(4)], Y: 1}
			if rng.Intn(3) == 0 {
				block = interp.Dim3{X: []int{8, 13}[rng.Intn(2)], Y: 2}
			}
			grid = interp.Dim1(rng.Intn(2) + 1)
		}
		w := widths[iter%len(widths)]
		t.Run(fmt.Sprintf("iter%03d_mode%d_w%d", iter, mode, w), func(t *testing.T) {
			prev := vm.SetLaneWidth(w)
			defer vm.SetLaneWidth(prev)
			diffRun(t, src, grid, block,
				namedEngine{"vm", vmEngine}, namedEngine{"vm-lanes", laneEngine})
		})
	}
}

// TestLaneTailBatch pins the partial-tail case deterministically: block
// sizes that are not multiples of the lane width, including one smaller
// than a single batch.
func TestLaneTailBatch(t *testing.T) {
	src := `
__global__ void fz(float* out, float* a, int* ib, int n, float s) {
    int id = ((blockIdx.y * gridDim.x + blockIdx.x) * (blockDim.x * blockDim.y)) + threadIdx.y * blockDim.x + threadIdx.x;
    float acc = s;
    for (int i = 0; i < id % 7 + 1; i++) { acc = acc * 0.5f + a[(id + i) % n]; }
    out[id % n] = acc;
    ib[id % n] = id * 3;
}`
	for _, tc := range []struct{ w, block int }{
		{8, 13}, {8, 5}, {16, 17}, {16, 3}, {4, 7}, {32, 33},
	} {
		t.Run(fmt.Sprintf("w%d_block%d", tc.w, tc.block), func(t *testing.T) {
			prev := vm.SetLaneWidth(tc.w)
			defer vm.SetLaneWidth(prev)
			diffRun(t, src, interp.Dim1(2), interp.Dim1(tc.block),
				namedEngine{"vm-lanes", laneEngine})
		})
	}
}

// TestLaneAllLanesDead: a batch where every lane dies must report the
// batch's lowest-thread-id error and not disturb other batches' execution
// (which never runs, matching the scalar engine's first-error abort).
func TestLaneAllLanesDead(t *testing.T) {
	src := `
__global__ void fz(float* out, float* a, int* ib, int n, float s) {
    int id = threadIdx.x;
    if (id < 8) { out[n * n] = s; }
    out[id] = 1.0f;
}`
	mod, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	k := mod.Kernels[0]
	prev := vm.SetLaneWidth(8)
	defer vm.SetLaneWidth(prev)
	init, args := fuzzInit()
	_, wv, ev := runEngine(vmEngine, k, interp.Dim1(1), interp.Dim1(32), args, init, 0)
	_, wl, el := runEngine(laneEngine, k, interp.Dim1(1), interp.Dim1(32), args, init, 0)
	if ev == nil || el == nil {
		t.Fatalf("expected both engines to fail: vm=%v lanes=%v", ev, el)
	}
	if ev.Error() != el.Error() {
		t.Fatalf("error mismatch:\nvm    %v\nlanes %v", ev, el)
	}
	if wv != (interp.Work{}) || wl != (interp.Work{}) {
		t.Fatalf("failed blocks must report zero work: vm=%+v lanes=%+v", wv, wl)
	}
}

// TestLaneErrorOrdering: when several lanes die with different errors, the
// lane engine must report the lowest thread id's error — the interpreter's
// (and scalar VM's) thread-id-order first-error rule — in both the
// straight-line and the phased scheduler.
func TestLaneErrorOrdering(t *testing.T) {
	cases := []struct{ name, src string }{
		{"straight", `
__global__ void fz(float* out, float* a, int* ib, int n, float s) {
    int id = threadIdx.x;
    if (id == 3) { ib[0] = 1 / (n - n); }
    if (id == 1) { out[0 - n] = s; }
    out[id] = 1.0f;
}`},
		{"phased", `
__global__ void fz(float* out, float* a, int* ib, int n, float s) {
    __shared__ float tile[8];
    int id = threadIdx.x;
    tile[id] = s;
    __syncthreads();
    if (id == 5) { ib[0] = 1 / (n - n); }
    if (id == 2) { out[0 - n] = tile[id]; }
    out[id] = tile[id];
}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mod, err := lang.Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			k := mod.Kernels[0]
			prev := vm.SetLaneWidth(8)
			defer vm.SetLaneWidth(prev)
			init, args := fuzzInit()
			_, _, ev := runEngine(vmEngine, k, interp.Dim1(1), interp.Dim1(8), args, init, 0)
			_, _, el := runEngine(laneEngine, k, interp.Dim1(1), interp.Dim1(8), args, init, 0)
			if ev == nil || el == nil {
				t.Fatalf("expected both engines to fail: vm=%v lanes=%v", ev, el)
			}
			if ev.Error() != el.Error() {
				t.Fatalf("first-error mismatch:\nvm    %v\nlanes %v", ev, el)
			}
			if !strings.Contains(el.Error(), "out of bounds") {
				t.Fatalf("expected the lower thread's oob error to win, got %v", el)
			}
		})
	}
}

// TestDiffErrorParity: failures must occur under both engines, with zero Work.
func TestDiffErrorParity(t *testing.T) {
	cases := []struct{ name, src string }{
		{"data-div-zero", `
__global__ void fz(float* out, float* a, int* ib, int n, float s) {
    int id = threadIdx.x;
    ib[id] = id / (ib[id] - ib[id]);
    out[0] = 1.0f;
}`},
		{"oob-load", `
__global__ void fz(float* out, float* a, int* ib, int n, float s) {
    out[0] = a[n * n];
}`},
		{"negative-index", `
__global__ void fz(float* out, float* a, int* ib, int n, float s) {
    out[0 - n] = s;
}`},
		{"oob-shared-load", `
__global__ void fz(float* out, float* a, int* ib, int n, float s) {
    __shared__ float tile[4];
    tile[threadIdx.x] = s;
    out[0] = tile[n];
}`},
		{"runaway-in-barrier-kernel", `
__global__ void fz(float* out, float* a, int* ib, int n, float s) {
    __shared__ float tile[8];
    tile[threadIdx.x] = s;
    __syncthreads();
    int j = 0;
    while (j < n * n * n) { j = j + 1; }
    out[threadIdx.x] = tile[threadIdx.x];
}`},
		{"mod-zero", `
__global__ void fz(float* out, float* a, int* ib, int n, float s) {
    ib[0] = n % (n - 256);
    out[0] = 0.0f;
}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mod, err := lang.Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			k := mod.Kernels[0]
			init := []*interp.HostBuffer{
				interp.ZeroBuffer(kir.F32, 8),
				interp.ZeroBuffer(kir.F32, 8),
				interp.NewI32Buffer(make([]int32, 8)),
			}
			args := make([]interp.Value, 5)
			args[3] = interp.IntV(256)
			args[4] = interp.FloatV(2.5)
			grid, block := interp.Dim1(1), interp.Dim1(4)
			_, wi, ei := runEngine(interpEngine, k, grid, block, args, init, 10000)
			_, wv, ev := runEngine(vmEngine, k, grid, block, args, init, 10000)
			_, wl, el := runEngine(laneEngine, k, grid, block, args, init, 10000)
			if ei == nil || ev == nil || el == nil {
				t.Fatalf("expected all engines to fail: interp=%v vm=%v lanes=%v", ei, ev, el)
			}
			if wi != (interp.Work{}) || wv != (interp.Work{}) || wl != (interp.Work{}) {
				t.Fatalf("failed blocks must report zero work: interp=%+v vm=%+v lanes=%+v", wi, wv, wl)
			}
		})
	}
}

// TestDiffLoopBudgetParity: both engines must trip the iteration budget at
// the same point and agree on partially-written memory beforehand.
func TestDiffLoopBudgetParity(t *testing.T) {
	src := `
__global__ void fz(float* out, float* a, int* ib, int n, float s) {
    int j = 0;
    while (j >= 0) { j = j + 1; }
    out[0] = (float)j;
}`
	mod, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	k := mod.Kernels[0]
	for _, budget := range []int64{1, 17, 4096} {
		mem := func() *interp.HostMem {
			m := interp.NewHostMem()
			m.Bind(0, interp.ZeroBuffer(kir.F32, 4))
			m.Bind(1, interp.ZeroBuffer(kir.F32, 4))
			m.Bind(2, interp.NewI32Buffer(make([]int32, 4)))
			return m
		}
		args := make([]interp.Value, 5)
		li := &interp.Launch{Kernel: k, Grid: interp.Dim1(1), Block: interp.Dim1(1),
			Args: args, Mem: mem(), MaxLoopIters: budget}
		lv := &interp.Launch{Kernel: k, Grid: interp.Dim1(1), Block: interp.Dim1(1),
			Args: args, Mem: mem(), MaxLoopIters: budget}
		_, ei := interp.ExecBlock(li, 0, 0)
		_, ev := vm.ExecBlock(lv, 0, 0)
		if ei == nil || ev == nil {
			t.Fatalf("budget %d: expected both to fail: interp=%v vm=%v", budget, ei, ev)
		}
		if !strings.Contains(ev.Error(), "loop iterations") {
			t.Fatalf("budget %d: vm error %v", budget, ev)
		}
	}
}

// TestDiffHandBuiltMixedTypes pins the interpreter's Value-union quirk: an
// integer-typed operand used in a float context reads as 0.0 (and vice
// versa).  Hand-built IR can express this; the front end cannot.
func TestDiffHandBuiltMixedTypes(t *testing.T) {
	// out[0] = fadd(intvar, floatvar) with deliberately mismatched operand
	// types and no coercion casts.
	iv := &kir.VarRef{Name: "x", Slot: 1, T: kir.I32}
	fv := &kir.VarRef{Name: "y", Slot: 2, T: kir.F32}
	outRef := kir.MemRef{Space: kir.Global, Param: 0, Name: "out"}
	k := &kir.Kernel{
		Name: "mixed",
		Params: []kir.Param{
			{Name: "out", Elem: kir.F32, Pointer: true},
		},
		NumSlots: 3,
		Body: kir.Block{
			&kir.Decl{Name: "x", Slot: 1, T: kir.I32, Init: &kir.IntLit{Val: 7}},
			&kir.Decl{Name: "y", Slot: 2, T: kir.F32, Init: &kir.FloatLit{Val: 2.5}},
			// Float add where the left operand is integer-typed: its F
			// field is 0, so the result is 0.0 + 2.5.
			&kir.Store{Mem: outRef, Index: &kir.IntLit{Val: 0},
				Value: &kir.Binary{Op: kir.Add, L: iv, R: fv, T: kir.F32}},
			// Mixed the other way: the int view of a float value is 0.
			&kir.Store{Mem: outRef, Index: &kir.IntLit{Val: 1},
				Value: &kir.Binary{Op: kir.Mul, L: fv, R: iv, T: kir.F32}},
		},
	}

	init := []*interp.HostBuffer{interp.ZeroBuffer(kir.F32, 4)}
	mi, wi, ei := runEngine(interpEngine, k, interp.Dim1(1), interp.Dim1(2), make([]interp.Value, 1), init, 0)
	mv, wv, ev := runEngine(vmEngine, k, interp.Dim1(1), interp.Dim1(2), make([]interp.Value, 1), init, 0)
	if ei != nil || ev != nil {
		t.Fatalf("errors: interp=%v vm=%v", ei, ev)
	}
	if wi != wv {
		t.Fatalf("work divergence: interp=%+v vm=%+v", wi, wv)
	}
	if !bytes.Equal(mi, mv) {
		t.Fatalf("memory divergence: interp=%v vm=%v", mi, mv)
	}
}

package vm

import (
	"sort"
	"sync"
	"sync/atomic"

	"cucc/internal/kir"
)

// Opt-in opcode profiler.
//
// When profiling is enabled (SetProfiling(true)), NewRunner swaps each
// kernel's cached program for an instrumented copy with one opProf
// instruction at every basic-block entry.  opProf bumps an atomic per-block
// counter; everything else about the program — register layout, constant
// pools, jump structure — is unchanged, so execution semantics (and the
// Work counters) are identical.  Per-opcode dynamic counts are then derived
// exactly from block entry counts times each block's static opcode
// histogram: a block is straight-line code, so every entry executes every
// instruction in it (runtime errors abort mid-block, but an errored launch
// discards its figures anyway).
//
// When profiling is disabled, the cached uninstrumented program runs and
// the dispatch loop never sees an opProf, so the profiler is compiled out
// of the hot path: the only residue is one never-taken switch case.
//
// Back-edge counters: a backward jump (target <= pc) closes a loop.  The
// jump terminates its basic block, so the block's entry count is exactly
// how often the jump was reached; for the unconditional opJmp the compiler
// emits at the bottom of while/for bodies that equals the taken count, i.e.
// the loop's iteration count.

// profilingEnabled gates instrumentation at Runner construction time.
var profilingEnabled atomic.Bool

// SetProfiling turns the opcode profiler on or off for Runners created from
// now on.  Existing Runners keep whatever mode they were built with.
func SetProfiling(on bool) { profilingEnabled.Store(on) }

// ProfilingEnabled reports whether new Runners will profile.
func ProfilingEnabled() bool { return profilingEnabled.Load() }

// blockSpan is one basic block as an instruction range [start, end) in the
// uninstrumented program.
type blockSpan struct {
	start, end int32
}

// Profile accumulates dynamic block-entry counts for one compiled kernel.
// It is shared by every Runner of that kernel (across workers, nodes, and
// sessions); counts are atomic.
type Profile struct {
	kernel string
	src    *CompiledKernel // uninstrumented program: static opcode source
	blocks []blockSpan
	counts []atomic.Int64
}

// profCache memoizes instrumentation per kernel identity, mirroring the
// compile cache: every launch of a kernel reuses one instrumented program
// and one accumulator.
var profCache sync.Map // *kir.Kernel -> *profiled

type profiled struct {
	p    *CompiledKernel
	prof *Profile
}

// isJump reports whether the opcode's imm is a jump target.
func isJump(o op) bool {
	switch o {
	case opJmp, opJzI, opJnzI, opJzF, opJnzF, opCJmpI, opCJmpF:
		return true
	}
	return false
}

// endsBlock reports whether the opcode terminates a basic block.
func endsBlock(o op) bool {
	return isJump(o) || o == opSync || o == opRet || o == opErr
}

// instrument builds the profiled copy of a compiled program: an opProf at
// every basic-block entry, jump targets remapped to the new indices.
func instrument(kernelName string, p *CompiledKernel) (*CompiledKernel, *Profile) {
	code := p.code
	n := len(code)
	leader := make([]bool, n)
	if n > 0 {
		leader[0] = true
	}
	for i, in := range code {
		if isJump(in.op) {
			leader[in.imm] = true
		}
		if endsBlock(in.op) && i+1 < n {
			leader[i+1] = true
		}
	}

	prof := &Profile{kernel: kernelName, src: p}
	oldToNew := make([]int32, n)
	newCode := make([]instr, 0, n+n/4)
	for i, in := range code {
		if leader[i] {
			if len(prof.blocks) > 0 {
				prof.blocks[len(prof.blocks)-1].end = int32(i)
			}
			newCode = append(newCode, instr{op: opProf, imm: int32(len(prof.blocks))})
			prof.blocks = append(prof.blocks, blockSpan{start: int32(i)})
		}
		oldToNew[i] = int32(len(newCode))
		newCode = append(newCode, in)
	}
	if len(prof.blocks) > 0 {
		prof.blocks[len(prof.blocks)-1].end = int32(n)
	}
	for i := range newCode {
		if isJump(newCode[i].op) {
			// Jump to the block's opProf, not past it: the counter must see
			// every entry, not just fall-throughs.
			newCode[i].imm = oldToNew[newCode[i].imm] - 1
		}
	}
	prof.counts = make([]atomic.Int64, len(prof.blocks))

	q := *p // shallow copy: pools, shared metadata, and errs are immutable
	q.code = newCode
	return &q, prof
}

// instrumentCached returns the instrumented program and accumulator for a
// kernel, building them at most once per kernel identity.
func instrumentCached(k *kir.Kernel, p *CompiledKernel) (*CompiledKernel, *Profile) {
	if v, ok := profCache.Load(k); ok {
		pr := v.(*profiled)
		return pr.p, pr.prof
	}
	ip, prof := instrument(k.Name, p)
	v, _ := profCache.LoadOrStore(k, &profiled{p: ip, prof: prof})
	pr := v.(*profiled)
	return pr.p, pr.prof
}

// ResetProfiles discards all accumulated profiles (and their instrumented
// programs).
func ResetProfiles() {
	profCache.Range(func(k, _ any) bool {
		profCache.Delete(k)
		return true
	})
}

// OpcodeCount is one opcode's dynamic execution count.
type OpcodeCount struct {
	Op    string `json:"op"`
	Count int64  `json:"count"`
}

// BackEdge is one backward jump site: PC and Target are instruction indices
// in the uninstrumented program, Count how often the jump was reached (for
// the unconditional loop-bottom opJmp: the loop's iteration count).
type BackEdge struct {
	PC     int32 `json:"pc"`
	Target int32 `json:"target"`
	Count  int64 `json:"count"`
}

// KernelProfile is the snapshot of one kernel's opcode profile.
type KernelProfile struct {
	Kernel string `json:"kernel"`
	// Blocks is the basic-block count of the compiled program.
	Blocks int `json:"blocks"`
	// Instructions is the total dynamic instruction count (opProf excluded).
	Instructions int64 `json:"instructions"`
	// Opcodes holds nonzero per-opcode counts, largest first.
	Opcodes []OpcodeCount `json:"opcodes"`
	// BackEdges holds nonzero back-edge counters, hottest first.
	BackEdges []BackEdge `json:"back_edges,omitempty"`
}

// snapshot derives the per-opcode and back-edge counts from the block
// counters.
func (pr *Profile) snapshot() KernelProfile {
	kp := KernelProfile{Kernel: pr.kernel, Blocks: len(pr.blocks)}
	var opCounts [numOps]int64
	backEdges := map[[2]int32]int64{}
	for b, span := range pr.blocks {
		c := pr.counts[b].Load()
		if c == 0 {
			continue
		}
		kp.Instructions += c * int64(span.end-span.start)
		for pc := span.start; pc < span.end; pc++ {
			in := pr.src.code[pc]
			opCounts[in.op] += c
			if isJump(in.op) && in.imm <= pc {
				backEdges[[2]int32{pc, in.imm}] += c
			}
		}
	}
	for o, c := range opCounts {
		if c > 0 {
			kp.Opcodes = append(kp.Opcodes, OpcodeCount{Op: op(o).String(), Count: c})
		}
	}
	sort.Slice(kp.Opcodes, func(i, j int) bool {
		if kp.Opcodes[i].Count != kp.Opcodes[j].Count {
			return kp.Opcodes[i].Count > kp.Opcodes[j].Count
		}
		return kp.Opcodes[i].Op < kp.Opcodes[j].Op
	})
	for k, c := range backEdges {
		kp.BackEdges = append(kp.BackEdges, BackEdge{PC: k[0], Target: k[1], Count: c})
	}
	sort.Slice(kp.BackEdges, func(i, j int) bool {
		if kp.BackEdges[i].Count != kp.BackEdges[j].Count {
			return kp.BackEdges[i].Count > kp.BackEdges[j].Count
		}
		return kp.BackEdges[i].PC < kp.BackEdges[j].PC
	})
	return kp
}

// Profiles returns a deterministic snapshot of every profiled kernel,
// sorted by kernel name.  Kernels compiled separately under the same name
// (the suites rebuild their programs per call) are merged: opcode counts
// sum by opcode, back edges by (pc, target) — identical sources compile to
// identical code, so the sites line up.
func Profiles() []KernelProfile {
	byName := map[string]*KernelProfile{}
	profCache.Range(func(_, v any) bool {
		kp := v.(*profiled).prof.snapshot()
		if agg, ok := byName[kp.Kernel]; ok {
			mergeProfiles(agg, kp)
		} else {
			byName[kp.Kernel] = &kp
		}
		return true
	})
	out := make([]KernelProfile, 0, len(byName))
	for _, kp := range byName {
		out = append(out, *kp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kernel < out[j].Kernel })
	return out
}

func mergeProfiles(agg *KernelProfile, kp KernelProfile) {
	agg.Instructions += kp.Instructions
	ops := map[string]int64{}
	for _, oc := range agg.Opcodes {
		ops[oc.Op] = oc.Count
	}
	for _, oc := range kp.Opcodes {
		ops[oc.Op] += oc.Count
	}
	agg.Opcodes = agg.Opcodes[:0]
	for o, c := range ops {
		agg.Opcodes = append(agg.Opcodes, OpcodeCount{Op: o, Count: c})
	}
	sort.Slice(agg.Opcodes, func(i, j int) bool {
		if agg.Opcodes[i].Count != agg.Opcodes[j].Count {
			return agg.Opcodes[i].Count > agg.Opcodes[j].Count
		}
		return agg.Opcodes[i].Op < agg.Opcodes[j].Op
	})
	edges := map[[2]int32]int64{}
	for _, be := range agg.BackEdges {
		edges[[2]int32{be.PC, be.Target}] = be.Count
	}
	for _, be := range kp.BackEdges {
		edges[[2]int32{be.PC, be.Target}] += be.Count
	}
	agg.BackEdges = agg.BackEdges[:0]
	for k, c := range edges {
		agg.BackEdges = append(agg.BackEdges, BackEdge{PC: k[0], Target: k[1], Count: c})
	}
	sort.Slice(agg.BackEdges, func(i, j int) bool {
		if agg.BackEdges[i].Count != agg.BackEdges[j].Count {
			return agg.BackEdges[i].Count > agg.BackEdges[j].Count
		}
		return agg.BackEdges[i].PC < agg.BackEdges[j].PC
	})
}

// ProfileGauges exposes the live profile counters as named gauge functions
// for the metrics bridge (internal/core registers them; the vm package
// stays free of a metrics dependency).  Names follow
// vm.profile.<kernel>.instructions and vm.profile.<kernel>.op.<opcode>.
func ProfileGauges() map[string]func() float64 {
	out := map[string]func() float64{}
	for _, kp := range Profiles() {
		kernel := kp.Kernel
		out["vm.profile."+kernel+".instructions"] = func() float64 {
			for _, p := range Profiles() {
				if p.Kernel == kernel {
					return float64(p.Instructions)
				}
			}
			return 0
		}
		for _, oc := range kp.Opcodes {
			opName := oc.Op
			out["vm.profile."+kernel+".op."+opName] = func() float64 {
				for _, p := range Profiles() {
					if p.Kernel == kernel {
						for _, c := range p.Opcodes {
							if c.Op == opName {
								return float64(c.Count)
							}
						}
					}
				}
				return 0
			}
		}
	}
	return out
}

// opNames maps opcodes to the stable names used in profiles and reports.
var opNames = [numOps]string{
	opNop: "nop", opJmp: "jmp", opJzI: "jz_i", opJnzI: "jnz_i",
	opJzF: "jz_f", opJnzF: "jnz_f", opTick: "tick", opSync: "sync",
	opRet: "ret", opErr: "err",
	opMovI: "mov_i", opMovF: "mov_f", opNotI: "not_i", opNotF: "not_f",
	opCastIF: "cast_if", opCastFI: "cast_fi", opCastU8: "cast_u8",
	opNegI: "neg_i", opAddI: "add_i", opSubI: "sub_i", opMulI: "mul_i",
	opDivI: "div_i", opRemI: "rem_i", opAndI: "and_i", opOrI: "or_i",
	opXorI: "xor_i", opShlI: "shl_i", opShrI: "shr_i",
	opLtI: "lt_i", opLeI: "le_i", opGtI: "gt_i", opGeI: "ge_i",
	opEqI: "eq_i", opNeI: "ne_i",
	opNegF: "neg_f", opAddF: "add_f", opSubF: "sub_f", opMulF: "mul_f",
	opDivF: "div_f", opLtF: "lt_f", opLeF: "le_f", opGtF: "gt_f",
	opGeF: "ge_f", opEqF: "eq_f", opNeF: "ne_f",
	opSqrt: "sqrt", opExp: "exp", opLog: "log", opFabs: "fabs",
	opFmin: "fmin", opFmax: "fmax", opPow: "pow", opSin: "sin",
	opCos: "cos", opTanh: "tanh",
	opMinI: "min_i", opMaxI: "max_i", opAbsI: "abs_i",
	opLdGF: "ld_gf", opLdGI: "ld_gi", opLdGU8: "ld_gu8",
	opStGF: "st_gf", opStGI: "st_gi", opStGU8: "st_gu8",
	opLdSI: "ld_si", opLdSF: "ld_sf", opStS: "st_s",
	opAtGAdd: "at_gadd", opAtGMax: "at_gmax",
	opAtSAdd: "at_sadd", opAtSMax: "at_smax",
	opProf: "prof",
	opMovVar: "mov_var", opMulAddF: "muladd_f", opMulAddI: "muladd_i",
	opCJmpI: "cjmp_i", opCJmpF: "cjmp_f",
}

// String returns the opcode's stable profile name.
func (o op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "unknown"
}

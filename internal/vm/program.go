// Package vm executes kernel IR through a compile-once register machine.
//
// Where internal/interp walks the kir.Expr/kir.Stmt trees with an interface
// dispatch and an (Value, error) return per node, this package lowers a
// kernel once into a flat instruction slice over two preallocated register
// files (int64 and float64, mirroring the two fields of interp.Value) and
// then dispatches it in a tight loop.  Structured control flow becomes
// jumps; literals become registers preloaded from a constant pool; barrier
// kernels run as cooperatively scheduled threads that suspend at opSync
// instead of one goroutine per GPU thread.
//
// The interpreter remains the semantic oracle: for every kernel the VM must
// produce bitwise-identical memory, identical Work counters, and the same
// error behaviour.  Where the interpreter has a quirk (e.g. the float view
// of an integer-typed operand is the Value's zero F field), the compiler
// reproduces it exactly; diff_test.go enforces the equivalence on random
// kernels.
package vm

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"cucc/internal/kir"
)

// op enumerates the register-machine opcodes.  Work accounting is baked
// into dispatch: every opcode charges exactly what the interpreter charges
// for the corresponding tree node.
type op uint8

const (
	opNop op = iota

	// Control flow.  Jump targets are absolute instruction indices in imm.
	opJmp  // pc = imm
	opJzI  // if ri[a] == 0: pc = imm
	opJnzI // if ri[a] != 0: pc = imm
	opJzF  // if rf[a] == 0: pc = imm
	opJnzF // if rf[a] != 0: pc = imm
	opTick // charge one loop iteration against the thread budget
	opSync // __syncthreads: suspend the thread until the barrier round ends
	opRet  // thread is done
	opErr  // fail with Program.errs[imm] (lowered from interp runtime errors)

	// Moves (no work charged).
	opMovI // ri[d] = ri[a]
	opMovF // rf[d] = rf[a]

	// Logical / cast helpers (no work charged, matching the interpreter).
	opNotI   // ri[d] = bool(ri[a] == 0)
	opNotF   // ri[d] = bool(rf[a] == 0)
	opCastIF // rf[d] = float64(float32(ri[a]))
	opCastFI // ri[d] = int64(rf[a])
	opCastU8 // ri[d] = int64(byte(ri[a]))

	// Integer ALU (IntOps++ each).
	opNegI
	opAddI
	opSubI
	opMulI
	opDivI // errors on zero divisor
	opRemI // errors on zero divisor
	opAndI
	opOrI
	opXorI
	opShlI // ri[a] << uint(ri[b]), Go over-shift semantics
	opShrI
	opLtI
	opLeI
	opGtI
	opGeI
	opEqI
	opNeI

	// Float ALU (Flops++ each; arithmetic rounds through float32 like the
	// interpreter; comparisons write 0/1 into an int register).
	opNegF
	opAddF
	opSubF
	opMulF
	opDivF
	opLtF
	opLeF
	opGtF
	opGeF
	opEqF
	opNeF

	// Math intrinsics: rf[d] = f32(fn(rf[a][, rf[b]])) or integer forms;
	// imm carries the modeled flop charge (interp.IntrinsicFlops).
	opSqrt
	opExp
	opLog
	opFabs
	opFmin
	opFmax
	opPow
	opSin
	opCos
	opTanh
	opMinI
	opMaxI
	opAbsI

	// Global memory: a = index register, b = parameter index.  Loads are
	// typed by the Load node's type; stores by the parameter element type.
	opLdGF  // rf[d] = Mem.LoadF32(b, ri[a]);  GlobalLoadBytes += 4
	opLdGI  // ri[d] = Mem.LoadI32(b, ri[a]);  GlobalLoadBytes += 4
	opLdGU8 // ri[d] = Mem.LoadU8(b, ri[a]);   GlobalLoadBytes += 1
	opStGF  // Mem.StoreF32(b, ri[a], f32(rf[d])); GlobalStoreBytes += 4
	opStGI  // Mem.StoreI32(b, ri[a], i32(ri[d])); GlobalStoreBytes += 4
	opStGU8 // Mem.StoreU8(b, ri[a], byte(ri[d])); GlobalStoreBytes += 1

	// Shared memory.  Shared cells mirror interp.Value pairs, so each array
	// occupies the same [base, base+n) span in both arenas.  Loads: a =
	// index, b = array id, imm = bytes to charge (the Load node's type size;
	// the second load of a pair charges 0).  Store writes both fields: a =
	// index, d = int value, b = float value, imm = array id.
	opLdSI
	opLdSF
	opStS

	// Atomic read-modify-write: a = index register, d = int value register,
	// b = float value register, imm = parameter index (global) or array id
	// (shared).  The element type comes from the parameter / array metadata.
	opAtGAdd
	opAtGMax
	opAtSAdd
	opAtSMax

	// opProf counts one basic-block entry: profile.counts[imm]++.  It is
	// emitted only by the profiler's instrumentation pass (see profile.go);
	// programs compiled with profiling disabled contain no opProf, so the
	// profiler costs nothing when off.
	opProf

	// Fused superinstructions, emitted by the post-compile peephole pass
	// (see fuse in compile.go).  They were chosen from the PR-5 opcode
	// profiles of the evaluation suite: the mov_i/mov_f pair of every
	// variable assignment, the mul/add pairs of the FIR/Conv2D/MatMul
	// inner loops, and the compare+branch pair of every loop condition
	// together dominate the dynamic instruction mix.  Each fused opcode
	// charges exactly what its constituent pair charges, so Work parity
	// with the interpreter is preserved.

	// opMovVar writes one variable slot's full Value pair:
	// ri[numReservedI+d] = ri[a]; rf[d] = rf[b].  d is the slot number.
	opMovVar
	// opMulAddF: rf[d] = f32(c + f32(rf[a])*f32(rf[b])) where c = f32 of
	// the register named by imm's low 16 bits; imm bit 16 set means the
	// product was the ADD's left operand (t + c instead of c + t),
	// preserving the unfused operand order exactly.  Flops += 2.
	opMulAddF
	// opMulAddI: ri[d] = ri[imm&0xffff] + ri[a]*ri[b].  IntOps += 2.
	opMulAddI
	// opCJmpI fuses an integer compare with the conditional jump consuming
	// it: d's low 3 bits are the comparison kind (0..5 = Lt..Ne), bit 3 is
	// the jump sense (0: jump when the compare is false, i.e. the fused
	// opJzI; 1: jump when true, opJnzI).  Charges the compare's IntOps++
	// whether or not the jump is taken.
	opCJmpI
	// opCJmpF is opCJmpI over float operands (Flops++).
	opCJmpF

	numOps // sentinel: number of opcodes
)

// cjmp field encoding helpers (opCJmpI/opCJmpF).
const cjmpSenseBit = 1 << 3

// muladd imm encoding: low 16 bits are the addend register, bit 16 flips
// the float add's operand order.
const mulAddSwapBit = 1 << 16

// instr is one register-machine instruction.
type instr struct {
	op      op
	d, a, b uint16
	imm     int32
}

// Reserved integer registers 0..7 hold the CUDA special registers; a
// BuiltinRef compiles to a direct register read (reg = 2*Builtin + Axis).
const (
	regTx = iota
	regTy
	regBx
	regBy
	regBdx
	regBdy
	regGdx
	regGdy
	numReservedI
)

// sharedMeta places one __shared__ array inside the shared arenas.
type sharedMeta struct {
	name    string
	elem    kir.ScalarType
	base, n int
}

// CompiledKernel is a kernel lowered to a register-machine program.  It is
// immutable after Compile and safe to share across Runners and goroutines.
//
// Integer register layout: [0,8) CUDA builtins, [8, 8+NumSlots) variable
// slots, then the int constant pool, then per-statement temporaries.  Float
// registers: [0, NumSlots) variable slots, constants, temporaries.  A
// variable slot spans one register in each file, mirroring interp.Value's
// {I, F} pair, so the VM reproduces the interpreter's union semantics (the
// inactive field of a value reads as zero) exactly.
type CompiledKernel struct {
	Kernel *kir.Kernel

	code []instr
	errs []string // opErr messages

	constI []int64   // int constant pool, loaded at register ciBase
	constF []float64 // float constant pool, loaded at register cfBase
	ciBase int
	cfBase int

	numI, numF int // register file sizes

	shared    []sharedMeta
	sharedLen int // total elements across all shared arrays

	hasSync bool
}

// NumInstructions returns the length of the compiled instruction stream.
func (p *CompiledKernel) NumInstructions() int { return len(p.code) }

// HasSync reports whether the program contains a __syncthreads barrier (and
// therefore runs on the cooperative phased scheduler).
func (p *CompiledKernel) HasSync() bool { return p.hasSync }

// The compile cache memoizes compilation per kernel identity: every launch
// of a kernel across workers, nodes, and sessions reuses one program.  It
// is size-bounded LRU: under many-tenant job churn (the cuccd serving
// layer) distinct kernels arrive indefinitely, so an unbounded map would
// grow without limit.  Eviction drops the least-recently-used program; a
// re-launch of an evicted kernel recompiles (a miss), which is correct,
// just slower.
type compileCache struct {
	mu      sync.Mutex
	cap     int        // <= 0: unbounded
	order   *list.List // front = most recent; values are *cacheEntry
	entries map[*kir.Kernel]*list.Element
}

type cacheEntry struct {
	key  *kir.Kernel
	prog *CompiledKernel
}

// DefaultCompileCacheCap bounds the process compile cache.  Generous for
// the evaluation suite (tens of kernels) while capping worst-case memory
// under adversarial kernel churn.
const DefaultCompileCacheCap = 256

var cache = compileCache{
	cap:     DefaultCompileCacheCap,
	order:   list.New(),
	entries: make(map[*kir.Kernel]*list.Element),
}

// Compile-cache accounting.  The counters are always-on atomics (cheap
// enough to not warrant a registry dependency in the VM); the metrics layer
// bridges them into a registry as gauge functions (see registerVMGauges in
// internal/core).
var (
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	cacheEvictions atomic.Int64
	compileNanos   atomic.Int64
)

// CacheStats reports the compile cache's cumulative behaviour.
type CacheStats struct {
	// Hits and Misses count CompileCached lookups; a miss includes the
	// compile it triggered (losers of a concurrent compile race count as
	// misses too — they compiled, even if their program was discarded).
	Hits, Misses int64
	// Evictions counts programs dropped by the LRU bound.
	Evictions int64
	// Entries and CapEntries are the cache's current size and bound
	// (CapEntries <= 0 means unbounded).
	Entries, CapEntries int
	// CompileSeconds is the total wall time spent inside Compile.
	CompileSeconds float64
}

// ReadCacheStats returns the current compile-cache counters.
func ReadCacheStats() CacheStats {
	cache.mu.Lock()
	entries, capEntries := len(cache.entries), cache.cap
	cache.mu.Unlock()
	return CacheStats{
		Hits:           cacheHits.Load(),
		Misses:         cacheMisses.Load(),
		Evictions:      cacheEvictions.Load(),
		Entries:        entries,
		CapEntries:     capEntries,
		CompileSeconds: float64(compileNanos.Load()) / 1e9,
	}
}

// SetCompileCacheCap changes the cache bound (n <= 0 means unbounded) and
// returns the previous bound.  Shrinking evicts immediately.
func SetCompileCacheCap(n int) int {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	prev := cache.cap
	cache.cap = n
	cache.evictLocked()
	return prev
}

// lookup marks the entry as most recently used on hit.
func (c *compileCache) lookup(k *kir.Kernel) (*CompiledKernel, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).prog, true
}

// insert stores p under k, keeping an already-present program (so all
// racers of a concurrent compile share one winner), and enforces the bound.
func (c *compileCache) insert(k *kir.Kernel, p *CompiledKernel) *CompiledKernel {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*cacheEntry).prog
	}
	c.entries[k] = c.order.PushFront(&cacheEntry{key: k, prog: p})
	c.evictLocked()
	return p
}

func (c *compileCache) evictLocked() {
	if c.cap <= 0 {
		return
	}
	for len(c.entries) > c.cap {
		el := c.order.Back()
		if el == nil {
			return
		}
		c.order.Remove(el)
		delete(c.entries, el.Value.(*cacheEntry).key)
		cacheEvictions.Add(1)
	}
}

// CompileCached returns the compiled program for k, compiling at most once
// per kernel identity while the entry stays resident (evicted kernels
// recompile on next use).
func CompileCached(k *kir.Kernel) (*CompiledKernel, error) {
	if p, ok := cache.lookup(k); ok {
		cacheHits.Add(1)
		return p, nil
	}
	cacheMisses.Add(1)
	start := time.Now()
	p, err := Compile(k)
	compileNanos.Add(time.Since(start).Nanoseconds())
	if err != nil {
		return nil, err
	}
	return cache.insert(k, p), nil
}

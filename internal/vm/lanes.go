package vm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"cucc/internal/interp"
	"cucc/internal/kir"
)

// Lane-batched execution.
//
// LaneRunner executes a block's threads in warp-style batches of W lanes in
// lockstep: one opcode dispatch drives a tight per-opcode loop over all
// active lanes, amortizing the dispatch cost that dominates the scalar
// Runner.  Registers live in structure-of-arrays slabs — slab[reg*W + lane]
// — so the per-lane loops walk contiguous memory.
//
// Divergence is handled by an active-lane set plus a min-pc scheduler: the
// lanes at the smallest program counter always run first, so groups split
// by a conditional jump naturally reconverge at the compiler's jump-lowered
// merge points (an if/else joins where the forward jumps land; a loop's
// back edge brings its lanes behind the exited ones, which wait at the
// loop's end label).  Each lane individually executes exactly the scalar
// instruction sequence; the scheduler only chooses the interleaving, which
// for race-free kernels cannot change memory, Work, or errors.
//
// Barrier kernels keep one batch context per batch so every lane's state
// survives across rounds: a batch runs until all its lanes are waiting at
// opSync (or done/dead), and when every batch has arrived the barrier
// releases all of them — the same block-wide cyclic barrier with early
// departure the interpreter and the scalar phased scheduler implement.
//
// Error semantics match the scalar engine: a dying lane (out-of-bounds,
// div-by-zero, loop budget, opErr) stops executing while the others
// continue, and the block reports the erroring lane with the smallest
// thread id, with zero Work — exactly the interpreter's thread-id-order
// first-error rule.

// laneWidth is the process-default batch width for new LaneRunners.
var laneWidth atomic.Int32

func init() { laneWidth.Store(32) }

// SetLaneWidth sets the default lane-batch width for LaneRunners created
// from now on, clamped to [1, 64], and returns the previous width.  It
// exists for tests that exercise partial tail batches and divergence at
// odd widths; the default of 32 balances dispatch amortization against
// divergence cost.
func SetLaneWidth(w int) int {
	if w < 1 {
		w = 1
	}
	if w > 64 {
		w = 64
	}
	return int(laneWidth.Swap(int32(w)))
}

// LaneWidth reports the current default lane-batch width.
func LaneWidth() int { return int(laneWidth.Load()) }

// Lane status values.
const (
	stRun  uint8 = iota // runnable: in the active set or parked at pcs[lane]
	stWait              // suspended at a barrier
	stDone              // returned
	stDead              // errored; errs[lane] holds the error
)

// laneBatch is the execution state of one batch of up to W lanes.
type laneBatch struct {
	li []int64   // int register slab, [reg*W + lane]
	lf []float64 // float register slab

	pcs   []int32
	iters []int64
	stat  []uint8
	errs  []error

	base, cnt int // first thread id, lanes in use

	act []int  // active-set scratch (ascending lane order)
	tkn []bool // per-lane taken mask scratch for conditional jumps
}

// LaneRunner executes the blocks of one launch through the lane-batched
// dispatcher.  Like Runner it is not safe for concurrent use; the worker
// pool gives each worker its own LaneRunner over the shared Launch.
type LaneRunner struct {
	r *Runner
	w int // lane width

	// mutI / mutF list the variable slots the kernel writes (int and float
	// register files respectively).  Only these rows go stale between
	// batches; resetBatch skips the rest, which for read-only-argument
	// kernels is all of them.
	mutI, mutF []int

	batch   *laneBatch   // straight-line path: one batch, reused
	batches []*laneBatch // phased path: one per batch, states live across rounds
}

// NewLaneRunner builds a lane-batched runner for the launch, sampling the
// global profiling switch like NewRunner.
func NewLaneRunner(l *interp.Launch) (*LaneRunner, error) {
	return NewLaneRunnerProfiled(l, profilingEnabled.Load())
}

// NewLaneRunnerProfiled is NewLaneRunner with the profiling decision
// supplied by the caller (see NewRunnerProfiled).
func NewLaneRunnerProfiled(l *interp.Launch, profiled bool) (*LaneRunner, error) {
	r, err := NewRunnerProfiled(l, profiled)
	if err != nil {
		return nil, err
	}
	lr := &LaneRunner{r: r, w: LaneWidth()}
	lr.mutI, lr.mutF = slotWriters(r.p)
	return lr, nil
}

// slotWriters scans a compiled program for variable slots it writes: int
// slots are registers [numReservedI, numReservedI+NumSlots) of the int file,
// float slots are registers [0, NumSlots) of the float file.  resetBatch
// uses the result to refresh only the rows a previous batch can have
// clobbered.
func slotWriters(p *CompiledKernel) (mutI, mutF []int) {
	ns := p.Kernel.NumSlots
	seenI := make([]bool, ns)
	seenF := make([]bool, ns)
	for _, in := range p.code {
		switch in.op {
		case opMovVar:
			// Writes int slot d and float slot d directly.
			seenI[in.d] = true
			seenF[in.d] = true
		case opMovI, opNotI, opNotF, opCastFI, opCastU8,
			opNegI, opAddI, opSubI, opMulI, opMulAddI, opDivI, opRemI,
			opAndI, opOrI, opXorI, opShlI, opShrI,
			opLtI, opLeI, opGtI, opGeI, opEqI, opNeI,
			opLtF, opLeF, opGtF, opGeF, opEqF, opNeF,
			opMinI, opMaxI, opAbsI, opLdGI, opLdGU8, opLdSI:
			if s := int(in.d) - numReservedI; s >= 0 && s < ns {
				seenI[s] = true
			}
		case opMovF, opCastIF,
			opNegF, opAddF, opSubF, opMulF, opMulAddF, opDivF,
			opSqrt, opExp, opLog, opFabs, opFmin, opFmax, opPow,
			opSin, opCos, opTanh, opLdGF, opLdSF:
			if int(in.d) < ns {
				seenF[int(in.d)] = true
			}
		}
	}
	for s := 0; s < ns; s++ {
		if seenI[s] {
			mutI = append(mutI, s)
		}
		if seenF[s] {
			mutF = append(mutF, s)
		}
	}
	return mutI, mutF
}

// newBatch allocates a batch context and replicates the launch-level
// register images across all lanes.  Constants, scalar arguments, and the
// grid/block-dim builtins never change after this; resetBatch refreshes
// only the per-block and per-thread rows.
func (lr *LaneRunner) newBatch() *laneBatch {
	p, W := lr.r.p, lr.w
	b := &laneBatch{
		li:    make([]int64, p.numI*W),
		lf:    make([]float64, p.numF*W),
		pcs:   make([]int32, W),
		iters: make([]int64, W),
		stat:  make([]uint8, W),
		errs:  make([]error, W),
		act:   make([]int, 0, W),
		tkn:   make([]bool, W),
	}
	for reg, v := range lr.r.baseI {
		row := b.li[reg*W : (reg+1)*W]
		for i := range row {
			row[i] = v
		}
	}
	for reg, v := range lr.r.baseF {
		row := b.lf[reg*W : (reg+1)*W]
		for i := range row {
			row[i] = v
		}
	}
	return b
}

// resetBatch points a batch context at threads [base, base+cnt) of the
// current block: per-thread builtin rows, the variable-slot rows the kernel
// writes (only those can have been clobbered by the previous batch; the
// rest keep their newBatch image), and per-lane control state.  Temporary
// rows need no reset — the compiler guarantees every temporary is written
// before read on all paths.
func (lr *LaneRunner) resetBatch(b *laneBatch, base, cnt int) {
	r, W := lr.r, lr.w
	bdx := r.baseI[regBdx]
	bx, by := r.baseI[regBx], r.baseI[regBy]
	tx, ty := b.li[regTx*W:regTx*W+cnt], b.li[regTy*W:regTy*W+cnt]
	if r.baseI[regBdy] == 1 {
		// 1-D block: tx == id, ty == 0; skip the per-lane divmod.
		for i := range tx {
			tx[i] = int64(base + i)
		}
		clear(ty)
	} else {
		for i := range tx {
			id := int64(base + i)
			tx[i] = id % bdx
			ty[i] = id / bdx
		}
	}
	bxr, byr := b.li[regBx*W:regBx*W+cnt], b.li[regBy*W:regBy*W+cnt]
	for i := range bxr {
		bxr[i] = bx
		byr[i] = by
	}
	clear(b.pcs[:cnt])
	clear(b.iters[:cnt])
	clear(b.stat[:cnt]) // stRun == 0
	clear(b.errs[:cnt])
	for ln := cnt; ln < W; ln++ {
		b.stat[ln] = stDone
	}
	for _, s := range lr.mutI {
		vi := r.baseI[numReservedI+s]
		row := b.li[(numReservedI+s)*W : (numReservedI+s)*W+cnt]
		for i := range row {
			row[i] = vi
		}
	}
	for _, s := range lr.mutF {
		vf := r.baseF[s]
		rowF := b.lf[s*W : s*W+cnt]
		for i := range rowF {
			rowF[i] = vf
		}
	}
	b.base, b.cnt = base, cnt
}

// ExecBlock executes one GPU block (bx, by) through the lane dispatcher
// and returns the work of all its threads.  On error the returned Work is
// zero, matching the scalar engine and the interpreter.
func (lr *LaneRunner) ExecBlock(bx, by int) (interp.Work, error) {
	r := lr.r
	r.baseI[regBx], r.baseI[regBy] = int64(bx), int64(by)
	clear(r.sharedI)
	clear(r.sharedF)
	if r.p.hasSync {
		return lr.lanesPhased()
	}
	return lr.lanesStraight()
}

// lanesStraight runs a barrier-free block batch by batch.  A batch with an
// erroring lane aborts the block with the lowest-thread-id error, like the
// scalar engine's first-error abort.
func (lr *LaneRunner) lanesStraight() (interp.Work, error) {
	r, W := lr.r, lr.w
	n := int(r.baseI[regBdx]) * int(r.baseI[regBdy])
	if lr.batch == nil {
		lr.batch = lr.newBatch()
	}
	b := lr.batch
	var w interp.Work
	for base := 0; base < n; base += W {
		cnt := min(W, n-base)
		lr.resetBatch(b, base, cnt)
		lr.runBatch(b, &w, true)
		for ln := 0; ln < cnt; ln++ {
			if b.errs[ln] != nil {
				return interp.Work{}, b.errs[ln]
			}
		}
	}
	return w, nil
}

// lanesPhased runs a barrier kernel: every batch keeps its own context,
// each round runs every batch until all its live lanes are waiting at the
// barrier (or finished), and then the barrier releases all of them — the
// interpreter's block-wide cyclic barrier with early departure.  Like the
// scalar phased scheduler, every thread runs to completion before the
// first error in thread-id order is reported.
func (lr *LaneRunner) lanesPhased() (interp.Work, error) {
	r, W := lr.r, lr.w
	n := int(r.baseI[regBdx]) * int(r.baseI[regBdy])
	nb := (n + W - 1) / W
	for len(lr.batches) < nb {
		lr.batches = append(lr.batches, lr.newBatch())
	}
	for i := 0; i < nb; i++ {
		base := i * W
		lr.resetBatch(lr.batches[i], base, min(W, n-base))
	}
	var w interp.Work
	fresh := true
	for {
		for i := 0; i < nb; i++ {
			lr.runBatch(lr.batches[i], &w, fresh)
		}
		fresh = false
		woke := false
		for i := 0; i < nb; i++ {
			b := lr.batches[i]
			for ln := 0; ln < b.cnt; ln++ {
				if b.stat[ln] == stWait {
					b.stat[ln] = stRun
					woke = true
				}
			}
		}
		if !woke {
			break
		}
	}
	for i := 0; i < nb; i++ {
		b := lr.batches[i]
		for ln := 0; ln < b.cnt; ln++ {
			if b.errs[ln] != nil {
				return interp.Work{}, fmt.Errorf("vm: phased execution: %w", b.errs[ln])
			}
		}
	}
	return w, nil
}

// gather rebuilds the active set: the runnable lanes at the minimum pc, in
// ascending lane order (which keeps atomics in thread order).  It returns
// the set, its pc, the next-merge pc (smallest parked runnable pc, -1 if
// none), and whether any runnable lane remains.
func (b *laneBatch) gather(act []int) ([]int, int32, int32, bool) {
	minpc := int32(-1)
	for ln := 0; ln < b.cnt; ln++ {
		if b.stat[ln] == stRun && (minpc < 0 || b.pcs[ln] < minpc) {
			minpc = b.pcs[ln]
		}
	}
	if minpc < 0 {
		return act[:0], 0, -1, false
	}
	act = act[:0]
	nm := int32(-1)
	for ln := 0; ln < b.cnt; ln++ {
		if b.stat[ln] != stRun {
			continue
		}
		if b.pcs[ln] == minpc {
			act = append(act, ln)
		} else if nm < 0 || b.pcs[ln] < nm {
			nm = b.pcs[ln]
		}
	}
	return act, minpc, nm, true
}

// splitJump resolves a conditional jump for the active set.  taken is
// indexed by lane.  Uniform outcomes keep the set intact (the dispatch
// loop's merge check handles a forward jump past parked lanes); a split
// parks both halves at their respective pcs, folds the newly parked pcs
// into nm (so "no parked lanes" stays synonymous with nm < 0), and empties
// the set so the dispatcher re-gathers at the minimum.
func splitJump(b *laneBatch, act []int, taken []bool, pc, target, nm int32) ([]int, int32, int32) {
	nt := 0
	for _, ln := range act {
		if taken[ln] {
			nt++
		}
	}
	switch nt {
	case 0:
		return act, pc, nm
	case len(act):
		return act, target, nm
	}
	for _, ln := range act {
		if taken[ln] {
			b.pcs[ln] = target
		} else {
			b.pcs[ln] = pc
		}
	}
	if nm < 0 || pc < nm {
		nm = pc
	}
	if target < nm {
		nm = target
	}
	return act[:0], pc, nm
}

// filterRun drops non-runnable lanes from the active set in place.  Only
// the rare lane-death paths use it; the common-case loops assume every
// active lane survives the instruction.
func filterRun(b *laneBatch, act []int) []int {
	keep := act[:0]
	for _, ln := range act {
		if b.stat[ln] == stRun {
			keep = append(keep, ln)
		}
	}
	return keep
}

// runBatch drives one batch until no lane is runnable: all lanes have
// returned, died, or suspended at a barrier.  Work for the batch is
// accumulated locally and flushed once at the end; charges are per
// surviving lane, which matches the scalar engine exactly because a block
// with any dead lane reports zero Work anyway.
//
// Every per-opcode loop comes in two shapes.  The dense shape fires when
// the active set is exactly lanes [0, n) — act is an ascending subset of
// the lane range, so act[n-1] == n-1 is a sufficient test — and iterates
// length-n row slices directly, which drops the indirection through act
// and lets the compiler elide the slab bounds checks.  Convergent code
// (the overwhelmingly common case) runs dense end to end; divergent
// lane subsets fall back to the indexed shape.
//
// fresh asserts that every lane in [0, cnt) is runnable at pc 0 (the state
// resetBatch leaves), letting the entry skip the gather scan.
func (lr *LaneRunner) runBatch(b *laneBatch, w *interp.Work, fresh bool) {
	r, W := lr.r, lr.w
	code := r.p.code
	li, lf := b.li, b.lf
	mem := r.mem
	lens := r.lens
	raws := r.raw
	tkn := b.tkn
	name := r.p.Kernel.Name
	var flops, intops, glb, gsb, shb int64

	var act []int
	var pc, nm int32
	if fresh {
		act = b.act[:0]
		for ln := 0; ln < b.cnt; ln++ {
			act = append(act, ln)
		}
		pc, nm = 0, -1
	} else {
		var ok bool
		act, pc, nm, ok = b.gather(b.act)
		if !ok {
			b.act = act
			return
		}
	}
	for {
		if nm >= 0 && pc >= nm {
			// Reached (or jumped past) parked lanes: merge at the minimum.
			for _, ln := range act {
				b.pcs[ln] = pc
			}
			act, pc, nm, _ = b.gather(act)
		}
		in := &code[pc]
		pc++
		switch in.op {
		case opNop:
		case opProf:
			r.prof.counts[in.imm].Add(int64(len(act)))
		case opJmp:
			pc = in.imm
		case opJzI:
			ia := int(in.a) * W
			if n := len(act); act[n-1] == n-1 {
				a, tk := li[ia:ia+n], tkn[:n]
				for ln := range tk {
					tk[ln] = a[ln] == 0
				}
			} else {
				for _, ln := range act {
					tkn[ln] = li[ia+ln] == 0
				}
			}
			act, pc, nm = splitJump(b, act, tkn, pc, in.imm, nm)
		case opJnzI:
			ia := int(in.a) * W
			if n := len(act); act[n-1] == n-1 {
				a, tk := li[ia:ia+n], tkn[:n]
				for ln := range tk {
					tk[ln] = a[ln] != 0
				}
			} else {
				for _, ln := range act {
					tkn[ln] = li[ia+ln] != 0
				}
			}
			act, pc, nm = splitJump(b, act, tkn, pc, in.imm, nm)
		case opJzF:
			ia := int(in.a) * W
			if n := len(act); act[n-1] == n-1 {
				a, tk := lf[ia:ia+n], tkn[:n]
				for ln := range tk {
					tk[ln] = a[ln] == 0
				}
			} else {
				for _, ln := range act {
					tkn[ln] = lf[ia+ln] == 0
				}
			}
			act, pc, nm = splitJump(b, act, tkn, pc, in.imm, nm)
		case opJnzF:
			ia := int(in.a) * W
			if n := len(act); act[n-1] == n-1 {
				a, tk := lf[ia:ia+n], tkn[:n]
				for ln := range tk {
					tk[ln] = a[ln] != 0
				}
			} else {
				for _, ln := range act {
					tkn[ln] = lf[ia+ln] != 0
				}
			}
			act, pc, nm = splitJump(b, act, tkn, pc, in.imm, nm)
		case opCJmpI:
			ia, ib := int(in.a)*W, int(in.b)*W
			kind := in.d &^ cjmpSenseBit
			sense := in.d&cjmpSenseBit != 0
			if n := len(act); act[n-1] == n-1 {
				// The kind switch is hoisted out of the lane loop: this is
				// the loop-guard opcode of every compiled kernel, so a
				// per-lane kind dispatch would dominate the comparison.
				a, bb, tk := li[ia:ia+n], li[ib:ib+n], tkn[:n]
				switch kind {
				case 0:
					for ln := range tk {
						tk[ln] = (a[ln] < bb[ln]) == sense
					}
				case 1:
					for ln := range tk {
						tk[ln] = (a[ln] <= bb[ln]) == sense
					}
				case 2:
					for ln := range tk {
						tk[ln] = (a[ln] > bb[ln]) == sense
					}
				case 3:
					for ln := range tk {
						tk[ln] = (a[ln] >= bb[ln]) == sense
					}
				case 4:
					for ln := range tk {
						tk[ln] = (a[ln] == bb[ln]) == sense
					}
				default:
					for ln := range tk {
						tk[ln] = (a[ln] != bb[ln]) == sense
					}
				}
			} else {
				for _, ln := range act {
					tkn[ln] = cmpI(kind, li[ia+ln], li[ib+ln]) == sense
				}
			}
			intops += int64(len(act))
			act, pc, nm = splitJump(b, act, tkn, pc, in.imm, nm)
		case opCJmpF:
			ia, ib := int(in.a)*W, int(in.b)*W
			kind := in.d &^ cjmpSenseBit
			sense := in.d&cjmpSenseBit != 0
			if n := len(act); act[n-1] == n-1 {
				a, bb, tk := lf[ia:ia+n], lf[ib:ib+n], tkn[:n]
				switch kind {
				case 0:
					for ln := range tk {
						tk[ln] = (a[ln] < bb[ln]) == sense
					}
				case 1:
					for ln := range tk {
						tk[ln] = (a[ln] <= bb[ln]) == sense
					}
				case 2:
					for ln := range tk {
						tk[ln] = (a[ln] > bb[ln]) == sense
					}
				case 3:
					for ln := range tk {
						tk[ln] = (a[ln] >= bb[ln]) == sense
					}
				case 4:
					for ln := range tk {
						tk[ln] = (a[ln] == bb[ln]) == sense
					}
				default:
					for ln := range tk {
						tk[ln] = (a[ln] != bb[ln]) == sense
					}
				}
			} else {
				for _, ln := range act {
					tkn[ln] = cmpF(kind, lf[ia+ln], lf[ib+ln]) == sense
				}
			}
			flops += int64(len(act))
			act, pc, nm = splitJump(b, act, tkn, pc, in.imm, nm)
		case opTick:
			if n := len(act); act[n-1] == n-1 {
				it := b.iters[:n]
				over := false
				for ln := range it {
					it[ln]++
					if it[ln] > r.maxIters {
						over = true
					}
				}
				if over {
					for ln := range it {
						if it[ln] > r.maxIters {
							b.stat[ln] = stDead
							b.errs[ln] = fmt.Errorf("vm: kernel %s: thread exceeded %d loop iterations (runaway loop?)",
								name, r.maxIters)
						}
					}
					act = filterRun(b, act)
				}
			} else {
				keep := act[:0]
				for _, ln := range act {
					b.iters[ln]++
					if b.iters[ln] > r.maxIters {
						b.stat[ln] = stDead
						b.errs[ln] = fmt.Errorf("vm: kernel %s: thread exceeded %d loop iterations (runaway loop?)",
							name, r.maxIters)
					} else {
						keep = append(keep, ln)
					}
				}
				act = keep
			}
		case opSync:
			for _, ln := range act {
				b.stat[ln] = stWait
				b.pcs[ln] = pc
			}
			act = act[:0]
		case opRet:
			for _, ln := range act {
				b.stat[ln] = stDone
			}
			act = act[:0]
		case opErr:
			msg := r.p.errs[in.imm]
			for _, ln := range act {
				b.stat[ln] = stDead
				b.errs[ln] = errors.New(msg)
			}
			act = act[:0]

		case opMovI:
			id, ia := int(in.d)*W, int(in.a)*W
			if n := len(act); act[n-1] == n-1 {
				copy(li[id:id+n], li[ia:ia+n])
			} else {
				for _, ln := range act {
					li[id+ln] = li[ia+ln]
				}
			}
		case opMovF:
			id, ia := int(in.d)*W, int(in.a)*W
			if n := len(act); act[n-1] == n-1 {
				copy(lf[id:id+n], lf[ia:ia+n])
			} else {
				for _, ln := range act {
					lf[id+ln] = lf[ia+ln]
				}
			}
		case opMovVar:
			id, ia, ib := (numReservedI+int(in.d))*W, int(in.a)*W, int(in.b)*W
			fd := int(in.d) * W
			if n := len(act); act[n-1] == n-1 {
				copy(li[id:id+n], li[ia:ia+n])
				copy(lf[fd:fd+n], lf[ib:ib+n])
			} else {
				for _, ln := range act {
					li[id+ln] = li[ia+ln]
					lf[fd+ln] = lf[ib+ln]
				}
			}
		case opNotI:
			id, ia := int(in.d)*W, int(in.a)*W
			if n := len(act); act[n-1] == n-1 {
				d, a := li[id:id+n], li[ia:ia+n]
				for ln := range d {
					d[ln] = b2i(a[ln] == 0)
				}
			} else {
				for _, ln := range act {
					li[id+ln] = b2i(li[ia+ln] == 0)
				}
			}
		case opNotF:
			id, ia := int(in.d)*W, int(in.a)*W
			if n := len(act); act[n-1] == n-1 {
				d, a := li[id:id+n], lf[ia:ia+n]
				for ln := range d {
					d[ln] = b2i(a[ln] == 0)
				}
			} else {
				for _, ln := range act {
					li[id+ln] = b2i(lf[ia+ln] == 0)
				}
			}
		case opCastIF:
			id, ia := int(in.d)*W, int(in.a)*W
			if n := len(act); act[n-1] == n-1 {
				d, a := lf[id:id+n], li[ia:ia+n]
				for ln := range d {
					d[ln] = float64(float32(a[ln]))
				}
			} else {
				for _, ln := range act {
					lf[id+ln] = float64(float32(li[ia+ln]))
				}
			}
		case opCastFI:
			id, ia := int(in.d)*W, int(in.a)*W
			if n := len(act); act[n-1] == n-1 {
				d, a := li[id:id+n], lf[ia:ia+n]
				for ln := range d {
					d[ln] = int64(a[ln])
				}
			} else {
				for _, ln := range act {
					li[id+ln] = int64(lf[ia+ln])
				}
			}
		case opCastU8:
			id, ia := int(in.d)*W, int(in.a)*W
			if n := len(act); act[n-1] == n-1 {
				d, a := li[id:id+n], li[ia:ia+n]
				for ln := range d {
					d[ln] = int64(byte(a[ln]))
				}
			} else {
				for _, ln := range act {
					li[id+ln] = int64(byte(li[ia+ln]))
				}
			}

		case opNegI:
			id, ia := int(in.d)*W, int(in.a)*W
			if n := len(act); act[n-1] == n-1 {
				d, a := li[id:id+n], li[ia:ia+n]
				for ln := range d {
					d[ln] = -a[ln]
				}
			} else {
				for _, ln := range act {
					li[id+ln] = -li[ia+ln]
				}
			}
			intops += int64(len(act))
		case opAddI:
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			if n := len(act); act[n-1] == n-1 {
				d, a, bb := li[id:id+n], li[ia:ia+n], li[ib:ib+n]
				for ln := range d {
					d[ln] = a[ln] + bb[ln]
				}
			} else {
				for _, ln := range act {
					li[id+ln] = li[ia+ln] + li[ib+ln]
				}
			}
			intops += int64(len(act))
		case opSubI:
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			if n := len(act); act[n-1] == n-1 {
				d, a, bb := li[id:id+n], li[ia:ia+n], li[ib:ib+n]
				for ln := range d {
					d[ln] = a[ln] - bb[ln]
				}
			} else {
				for _, ln := range act {
					li[id+ln] = li[ia+ln] - li[ib+ln]
				}
			}
			intops += int64(len(act))
		case opMulI:
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			if n := len(act); act[n-1] == n-1 {
				d, a, bb := li[id:id+n], li[ia:ia+n], li[ib:ib+n]
				for ln := range d {
					d[ln] = a[ln] * bb[ln]
				}
			} else {
				for _, ln := range act {
					li[id+ln] = li[ia+ln] * li[ib+ln]
				}
			}
			intops += int64(len(act))
		case opMulAddI:
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			ic := int(in.imm) * W
			if n := len(act); act[n-1] == n-1 {
				d, a, bb, c := li[id:id+n], li[ia:ia+n], li[ib:ib+n], li[ic:ic+n]
				for ln := range d {
					d[ln] = c[ln] + a[ln]*bb[ln]
				}
			} else {
				for _, ln := range act {
					li[id+ln] = li[ic+ln] + li[ia+ln]*li[ib+ln]
				}
			}
			intops += 2 * int64(len(act))
		case opDivI:
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			if n := len(act); act[n-1] == n-1 {
				d, a, bb := li[id:id+n], li[ia:ia+n], li[ib:ib+n]
				zero := false
				for ln := range d {
					if bb[ln] == 0 {
						zero = true
						break
					}
					d[ln] = a[ln] / bb[ln]
				}
				if !zero {
					intops += int64(n)
					break
				}
			}
			keep := act[:0]
			for _, ln := range act {
				if li[ib+ln] == 0 {
					b.stat[ln] = stDead
					b.errs[ln] = fmt.Errorf("vm: %s: integer division by zero", name)
					continue
				}
				li[id+ln] = li[ia+ln] / li[ib+ln]
				keep = append(keep, ln)
			}
			act = keep
			intops += int64(len(act))
		case opRemI:
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			if n := len(act); act[n-1] == n-1 {
				d, a, bb := li[id:id+n], li[ia:ia+n], li[ib:ib+n]
				zero := false
				for ln := range d {
					if bb[ln] == 0 {
						zero = true
						break
					}
					d[ln] = a[ln] % bb[ln]
				}
				if !zero {
					intops += int64(n)
					break
				}
			}
			keep := act[:0]
			for _, ln := range act {
				if li[ib+ln] == 0 {
					b.stat[ln] = stDead
					b.errs[ln] = fmt.Errorf("vm: %s: integer modulo by zero", name)
					continue
				}
				li[id+ln] = li[ia+ln] % li[ib+ln]
				keep = append(keep, ln)
			}
			act = keep
			intops += int64(len(act))
		case opAndI:
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			if n := len(act); act[n-1] == n-1 {
				d, a, bb := li[id:id+n], li[ia:ia+n], li[ib:ib+n]
				for ln := range d {
					d[ln] = a[ln] & bb[ln]
				}
			} else {
				for _, ln := range act {
					li[id+ln] = li[ia+ln] & li[ib+ln]
				}
			}
			intops += int64(len(act))
		case opOrI:
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			if n := len(act); act[n-1] == n-1 {
				d, a, bb := li[id:id+n], li[ia:ia+n], li[ib:ib+n]
				for ln := range d {
					d[ln] = a[ln] | bb[ln]
				}
			} else {
				for _, ln := range act {
					li[id+ln] = li[ia+ln] | li[ib+ln]
				}
			}
			intops += int64(len(act))
		case opXorI:
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			if n := len(act); act[n-1] == n-1 {
				d, a, bb := li[id:id+n], li[ia:ia+n], li[ib:ib+n]
				for ln := range d {
					d[ln] = a[ln] ^ bb[ln]
				}
			} else {
				for _, ln := range act {
					li[id+ln] = li[ia+ln] ^ li[ib+ln]
				}
			}
			intops += int64(len(act))
		case opShlI:
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			if n := len(act); act[n-1] == n-1 {
				d, a, bb := li[id:id+n], li[ia:ia+n], li[ib:ib+n]
				for ln := range d {
					d[ln] = a[ln] << uint(bb[ln])
				}
			} else {
				for _, ln := range act {
					li[id+ln] = li[ia+ln] << uint(li[ib+ln])
				}
			}
			intops += int64(len(act))
		case opShrI:
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			if n := len(act); act[n-1] == n-1 {
				d, a, bb := li[id:id+n], li[ia:ia+n], li[ib:ib+n]
				for ln := range d {
					d[ln] = a[ln] >> uint(bb[ln])
				}
			} else {
				for _, ln := range act {
					li[id+ln] = li[ia+ln] >> uint(li[ib+ln])
				}
			}
			intops += int64(len(act))
		case opLtI, opLeI, opGtI, opGeI, opEqI, opNeI:
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			kind := uint16(in.op - opLtI)
			if n := len(act); act[n-1] == n-1 {
				d, a, bb := li[id:id+n], li[ia:ia+n], li[ib:ib+n]
				for ln := range d {
					d[ln] = b2i(cmpI(kind, a[ln], bb[ln]))
				}
			} else {
				for _, ln := range act {
					li[id+ln] = b2i(cmpI(kind, li[ia+ln], li[ib+ln]))
				}
			}
			intops += int64(len(act))

		case opNegF:
			id, ia := int(in.d)*W, int(in.a)*W
			if n := len(act); act[n-1] == n-1 {
				d, a := lf[id:id+n], lf[ia:ia+n]
				for ln := range d {
					d[ln] = -a[ln]
				}
			} else {
				for _, ln := range act {
					lf[id+ln] = -lf[ia+ln]
				}
			}
			flops += int64(len(act))
		case opAddF:
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			if n := len(act); act[n-1] == n-1 {
				d, a, bb := lf[id:id+n], lf[ia:ia+n], lf[ib:ib+n]
				for ln := range d {
					d[ln] = float64(float32(a[ln]) + float32(bb[ln]))
				}
			} else {
				for _, ln := range act {
					lf[id+ln] = float64(float32(lf[ia+ln]) + float32(lf[ib+ln]))
				}
			}
			flops += int64(len(act))
		case opSubF:
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			if n := len(act); act[n-1] == n-1 {
				d, a, bb := lf[id:id+n], lf[ia:ia+n], lf[ib:ib+n]
				for ln := range d {
					d[ln] = float64(float32(a[ln]) - float32(bb[ln]))
				}
			} else {
				for _, ln := range act {
					lf[id+ln] = float64(float32(lf[ia+ln]) - float32(lf[ib+ln]))
				}
			}
			flops += int64(len(act))
		case opMulF:
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			if n := len(act); act[n-1] == n-1 {
				d, a, bb := lf[id:id+n], lf[ia:ia+n], lf[ib:ib+n]
				for ln := range d {
					d[ln] = float64(float32(a[ln]) * float32(bb[ln]))
				}
			} else {
				for _, ln := range act {
					lf[id+ln] = float64(float32(lf[ia+ln]) * float32(lf[ib+ln]))
				}
			}
			flops += int64(len(act))
		case opMulAddF:
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			ic := int(in.imm&0xffff) * W
			swap := in.imm&mulAddSwapBit != 0
			if n := len(act); act[n-1] == n-1 {
				d, a, bb, c := lf[id:id+n], lf[ia:ia+n], lf[ib:ib+n], lf[ic:ic+n]
				if swap {
					for ln := range d {
						d[ln] = float64(float32(a[ln])*float32(bb[ln]) + float32(c[ln]))
					}
				} else {
					for ln := range d {
						d[ln] = float64(float32(c[ln]) + float32(a[ln])*float32(bb[ln]))
					}
				}
			} else if swap {
				for _, ln := range act {
					lf[id+ln] = float64(float32(lf[ia+ln])*float32(lf[ib+ln]) + float32(lf[ic+ln]))
				}
			} else {
				for _, ln := range act {
					lf[id+ln] = float64(float32(lf[ic+ln]) + float32(lf[ia+ln])*float32(lf[ib+ln]))
				}
			}
			flops += 2 * int64(len(act))
		case opDivF:
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			if n := len(act); act[n-1] == n-1 {
				d, a, bb := lf[id:id+n], lf[ia:ia+n], lf[ib:ib+n]
				for ln := range d {
					d[ln] = float64(float32(a[ln]) / float32(bb[ln]))
				}
			} else {
				for _, ln := range act {
					lf[id+ln] = float64(float32(lf[ia+ln]) / float32(lf[ib+ln]))
				}
			}
			flops += int64(len(act))
		case opLtF, opLeF, opGtF, opGeF, opEqF, opNeF:
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			kind := uint16(in.op - opLtF)
			if n := len(act); act[n-1] == n-1 {
				d, a, bb := li[id:id+n], lf[ia:ia+n], lf[ib:ib+n]
				for ln := range d {
					d[ln] = b2i(cmpF(kind, a[ln], bb[ln]))
				}
			} else {
				for _, ln := range act {
					li[id+ln] = b2i(cmpF(kind, lf[ia+ln], lf[ib+ln]))
				}
			}
			flops += int64(len(act))

		case opSqrt:
			id, ia := int(in.d)*W, int(in.a)*W
			for _, ln := range act {
				lf[id+ln] = float64(float32(math.Sqrt(lf[ia+ln])))
			}
			flops += int64(in.imm) * int64(len(act))
		case opExp:
			id, ia := int(in.d)*W, int(in.a)*W
			for _, ln := range act {
				lf[id+ln] = float64(float32(math.Exp(lf[ia+ln])))
			}
			flops += int64(in.imm) * int64(len(act))
		case opLog:
			id, ia := int(in.d)*W, int(in.a)*W
			for _, ln := range act {
				lf[id+ln] = float64(float32(math.Log(lf[ia+ln])))
			}
			flops += int64(in.imm) * int64(len(act))
		case opFabs:
			id, ia := int(in.d)*W, int(in.a)*W
			for _, ln := range act {
				lf[id+ln] = float64(float32(math.Abs(lf[ia+ln])))
			}
			flops += int64(in.imm) * int64(len(act))
		case opFmin:
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			for _, ln := range act {
				lf[id+ln] = float64(float32(math.Min(lf[ia+ln], lf[ib+ln])))
			}
			flops += int64(in.imm) * int64(len(act))
		case opFmax:
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			for _, ln := range act {
				lf[id+ln] = float64(float32(math.Max(lf[ia+ln], lf[ib+ln])))
			}
			flops += int64(in.imm) * int64(len(act))
		case opPow:
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			for _, ln := range act {
				lf[id+ln] = float64(float32(math.Pow(lf[ia+ln], lf[ib+ln])))
			}
			flops += int64(in.imm) * int64(len(act))
		case opSin:
			id, ia := int(in.d)*W, int(in.a)*W
			for _, ln := range act {
				lf[id+ln] = float64(float32(math.Sin(lf[ia+ln])))
			}
			flops += int64(in.imm) * int64(len(act))
		case opCos:
			id, ia := int(in.d)*W, int(in.a)*W
			for _, ln := range act {
				lf[id+ln] = float64(float32(math.Cos(lf[ia+ln])))
			}
			flops += int64(in.imm) * int64(len(act))
		case opTanh:
			id, ia := int(in.d)*W, int(in.a)*W
			for _, ln := range act {
				lf[id+ln] = float64(float32(math.Tanh(lf[ia+ln])))
			}
			flops += int64(in.imm) * int64(len(act))
		case opMinI:
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			for _, ln := range act {
				li[id+ln] = min(li[ia+ln], li[ib+ln])
			}
			flops += int64(in.imm) * int64(len(act))
		case opMaxI:
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			for _, ln := range act {
				li[id+ln] = max(li[ia+ln], li[ib+ln])
			}
			flops += int64(in.imm) * int64(len(act))
		case opAbsI:
			id, ia := int(in.d)*W, int(in.a)*W
			for _, ln := range act {
				v := li[ia+ln]
				if v < 0 {
					v = -v
				}
				li[id+ln] = v
			}
			flops += int64(in.imm) * int64(len(act))

		// The global loads/stores run an optimistic dense pass over the raw
		// byte view first: no act indirection, no keep-filter, straight
		// little-endian access.  Any out-of-bounds lane (or a buffer with no
		// raw view) falls back to the exact slow loop, which recomputes from
		// index 0 — loads and plain stores are idempotent, so the partial
		// dense pass leaves nothing stale — and assigns deaths in thread
		// order.
		case opLdGF:
			id, ia := int(in.d)*W, int(in.a)*W
			prm := int(in.b)
			raw := raws[prm]
			lim := uint(lens[prm])
			if n := len(act); raw != nil && act[n-1] == n-1 {
				d, a := lf[id:id+n], li[ia:ia+n]
				oob := false
				for ln := range d {
					idx := int(a[ln])
					if uint(idx) >= lim {
						oob = true
						break
					}
					d[ln] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[4*idx:])))
				}
				if !oob {
					glb += 4 * int64(n)
					break
				}
			}
			keep := act[:0]
			for _, ln := range act {
				idx := int(li[ia+ln])
				if uint(idx) >= lim {
					b.stat[ln] = stDead
					b.errs[ln] = r.oobGlobal("load", prm, idx)
					continue
				}
				if raw != nil {
					lf[id+ln] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[4*idx:])))
				} else {
					lf[id+ln] = float64(mem.LoadF32(prm, idx))
				}
				keep = append(keep, ln)
			}
			act = keep
			glb += 4 * int64(len(act))
		case opLdGI:
			id, ia := int(in.d)*W, int(in.a)*W
			prm := int(in.b)
			raw := raws[prm]
			lim := uint(lens[prm])
			if n := len(act); raw != nil && act[n-1] == n-1 {
				d, a := li[id:id+n], li[ia:ia+n]
				oob := false
				for ln := range d {
					idx := int(a[ln])
					if uint(idx) >= lim {
						oob = true
						break
					}
					d[ln] = int64(int32(binary.LittleEndian.Uint32(raw[4*idx:])))
				}
				if !oob {
					glb += 4 * int64(n)
					break
				}
			}
			keep := act[:0]
			for _, ln := range act {
				idx := int(li[ia+ln])
				if uint(idx) >= lim {
					b.stat[ln] = stDead
					b.errs[ln] = r.oobGlobal("load", prm, idx)
					continue
				}
				if raw != nil {
					li[id+ln] = int64(int32(binary.LittleEndian.Uint32(raw[4*idx:])))
				} else {
					li[id+ln] = int64(mem.LoadI32(prm, idx))
				}
				keep = append(keep, ln)
			}
			act = keep
			glb += 4 * int64(len(act))
		case opLdGU8:
			id, ia := int(in.d)*W, int(in.a)*W
			prm := int(in.b)
			raw := raws[prm]
			lim := uint(lens[prm])
			if n := len(act); raw != nil && act[n-1] == n-1 {
				d, a := li[id:id+n], li[ia:ia+n]
				oob := false
				for ln := range d {
					idx := int(a[ln])
					if uint(idx) >= lim {
						oob = true
						break
					}
					d[ln] = int64(raw[idx])
				}
				if !oob {
					glb += int64(n)
					break
				}
			}
			keep := act[:0]
			for _, ln := range act {
				idx := int(li[ia+ln])
				if uint(idx) >= lim {
					b.stat[ln] = stDead
					b.errs[ln] = r.oobGlobal("load", prm, idx)
					continue
				}
				if raw != nil {
					li[id+ln] = int64(raw[idx])
				} else {
					li[id+ln] = int64(mem.LoadU8(prm, idx))
				}
				keep = append(keep, ln)
			}
			act = keep
			glb += int64(len(act))
		case opStGF:
			id, ia := int(in.d)*W, int(in.a)*W
			prm := int(in.b)
			raw := raws[prm]
			lim := uint(lens[prm])
			if n := len(act); raw != nil && act[n-1] == n-1 {
				d, a := lf[id:id+n], li[ia:ia+n]
				oob := false
				for ln := range d {
					idx := int(a[ln])
					if uint(idx) >= lim {
						oob = true
						break
					}
					binary.LittleEndian.PutUint32(raw[4*idx:], math.Float32bits(float32(d[ln])))
				}
				if !oob {
					gsb += 4 * int64(n)
					break
				}
			}
			keep := act[:0]
			for _, ln := range act {
				idx := int(li[ia+ln])
				if uint(idx) >= lim {
					b.stat[ln] = stDead
					b.errs[ln] = r.oobGlobal("store", prm, idx)
					continue
				}
				if raw != nil {
					binary.LittleEndian.PutUint32(raw[4*idx:], math.Float32bits(float32(lf[id+ln])))
				} else {
					mem.StoreF32(prm, idx, float32(lf[id+ln]))
				}
				keep = append(keep, ln)
			}
			act = keep
			gsb += 4 * int64(len(act))
		case opStGI:
			id, ia := int(in.d)*W, int(in.a)*W
			prm := int(in.b)
			raw := raws[prm]
			lim := uint(lens[prm])
			if n := len(act); raw != nil && act[n-1] == n-1 {
				d, a := li[id:id+n], li[ia:ia+n]
				oob := false
				for ln := range d {
					idx := int(a[ln])
					if uint(idx) >= lim {
						oob = true
						break
					}
					binary.LittleEndian.PutUint32(raw[4*idx:], uint32(int32(d[ln])))
				}
				if !oob {
					gsb += 4 * int64(n)
					break
				}
			}
			keep := act[:0]
			for _, ln := range act {
				idx := int(li[ia+ln])
				if uint(idx) >= lim {
					b.stat[ln] = stDead
					b.errs[ln] = r.oobGlobal("store", prm, idx)
					continue
				}
				if raw != nil {
					binary.LittleEndian.PutUint32(raw[4*idx:], uint32(int32(li[id+ln])))
				} else {
					mem.StoreI32(prm, idx, int32(li[id+ln]))
				}
				keep = append(keep, ln)
			}
			act = keep
			gsb += 4 * int64(len(act))
		case opStGU8:
			id, ia := int(in.d)*W, int(in.a)*W
			prm := int(in.b)
			raw := raws[prm]
			lim := uint(lens[prm])
			if n := len(act); raw != nil && act[n-1] == n-1 {
				d, a := li[id:id+n], li[ia:ia+n]
				oob := false
				for ln := range d {
					idx := int(a[ln])
					if uint(idx) >= lim {
						oob = true
						break
					}
					raw[idx] = byte(d[ln])
				}
				if !oob {
					gsb += int64(n)
					break
				}
			}
			keep := act[:0]
			for _, ln := range act {
				idx := int(li[ia+ln])
				if uint(idx) >= lim {
					b.stat[ln] = stDead
					b.errs[ln] = r.oobGlobal("store", prm, idx)
					continue
				}
				if raw != nil {
					raw[idx] = byte(li[id+ln])
				} else {
					mem.StoreU8(prm, idx, byte(li[id+ln]))
				}
				keep = append(keep, ln)
			}
			act = keep
			gsb += int64(len(act))

		case opLdSI:
			m := &r.p.shared[in.b]
			id, ia := int(in.d)*W, int(in.a)*W
			keep := act[:0]
			for _, ln := range act {
				idx := int(li[ia+ln])
				if uint(idx) >= uint(m.n) {
					b.stat[ln] = stDead
					b.errs[ln] = r.oobShared("load", m, idx)
					continue
				}
				li[id+ln] = r.sharedI[m.base+idx]
				keep = append(keep, ln)
			}
			act = keep
			shb += int64(in.imm) * int64(len(act))
		case opLdSF:
			m := &r.p.shared[in.b]
			id, ia := int(in.d)*W, int(in.a)*W
			keep := act[:0]
			for _, ln := range act {
				idx := int(li[ia+ln])
				if uint(idx) >= uint(m.n) {
					b.stat[ln] = stDead
					b.errs[ln] = r.oobShared("load", m, idx)
					continue
				}
				lf[id+ln] = r.sharedF[m.base+idx]
				keep = append(keep, ln)
			}
			act = keep
			shb += int64(in.imm) * int64(len(act))
		case opStS:
			m := &r.p.shared[in.imm]
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			keep := act[:0]
			for _, ln := range act {
				idx := int(li[ia+ln])
				if uint(idx) >= uint(m.n) {
					b.stat[ln] = stDead
					b.errs[ln] = r.oobShared("store", m, idx)
					continue
				}
				r.sharedI[m.base+idx] = li[id+ln]
				r.sharedF[m.base+idx] = lf[ib+ln]
				keep = append(keep, ln)
			}
			act = keep
			shb += int64(m.elem.Size()) * int64(len(act))

		case opAtGAdd, opAtGMax:
			prm := int(in.imm)
			elem := r.p.Kernel.Params[prm].Elem
			sz := int64(elem.Size())
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			isAdd := in.op == opAtGAdd
			keep := act[:0]
			// Ascending lane order is ascending thread order, so lanes
			// arriving together apply their updates exactly like the scalar
			// engine's thread loop.
			for _, ln := range act {
				idx := int(li[ia+ln])
				var mu *sync.Mutex
				if r.am != nil {
					mu = r.am.AtomicShard(prm, idx)
					mu.Lock()
				}
				if uint(idx) >= uint(lens[prm]) {
					if mu != nil {
						mu.Unlock()
					}
					b.stat[ln] = stDead
					b.errs[ln] = r.oobGlobal("load", prm, idx)
					continue
				}
				var oldI int64
				var oldF float64
				switch elem {
				case kir.F32:
					oldF = float64(mem.LoadF32(prm, idx))
				case kir.I32:
					oldI = int64(mem.LoadI32(prm, idx))
				case kir.U8:
					oldI = int64(mem.LoadU8(prm, idx))
				}
				glb += sz
				nvI, nvF := oldI, oldF
				if isAdd {
					if elem == kir.F32 {
						nvF = float64(float32(oldF) + float32(lf[ib+ln]))
						nvI = 0
						flops++
					} else {
						nvI = oldI + li[id+ln]
						nvF = 0
						intops++
					}
				} else {
					if oldI < li[id+ln] {
						nvI, nvF = li[id+ln], lf[ib+ln]
					}
					intops++
				}
				switch elem {
				case kir.F32:
					mem.StoreF32(prm, idx, float32(nvF))
				case kir.I32:
					mem.StoreI32(prm, idx, int32(nvI))
				case kir.U8:
					mem.StoreU8(prm, idx, byte(nvI))
				}
				gsb += sz
				if mu != nil {
					mu.Unlock()
				}
				keep = append(keep, ln)
			}
			act = keep

		case opAtSAdd, opAtSMax:
			m := &r.p.shared[in.imm]
			sz := int64(m.elem.Size())
			id, ia, ib := int(in.d)*W, int(in.a)*W, int(in.b)*W
			isAdd := in.op == opAtSAdd
			keep := act[:0]
			for _, ln := range act {
				idx := int(li[ia+ln])
				if uint(idx) >= uint(m.n) {
					b.stat[ln] = stDead
					b.errs[ln] = r.oobShared("load", m, idx)
					continue
				}
				cell := m.base + idx
				oldI, oldF := r.sharedI[cell], r.sharedF[cell]
				nvI, nvF := oldI, oldF
				if isAdd {
					if m.elem == kir.F32 {
						nvF = float64(float32(oldF) + float32(lf[ib+ln]))
						nvI = 0
						flops++
					} else {
						nvI = oldI + li[id+ln]
						nvF = 0
						intops++
					}
				} else {
					if oldI < li[id+ln] {
						nvI, nvF = li[id+ln], lf[ib+ln]
					}
					intops++
				}
				r.sharedI[cell] = nvI
				r.sharedF[cell] = nvF
				shb += 2 * sz
				keep = append(keep, ln)
			}
			act = keep

		default:
			err := fmt.Errorf("vm: kernel %s: bad opcode %d at pc %d", name, in.op, pc-1)
			for _, ln := range act {
				b.stat[ln] = stDead
				b.errs[ln] = err
			}
			act = act[:0]
		}
		if len(act) == 0 {
			// nm < 0 means no runnable lane is parked anywhere (splitJump
			// keeps it current when it parks): the batch is finished, no
			// scan needed.
			if nm < 0 {
				break
			}
			var ok bool
			act, pc, nm, ok = b.gather(act)
			if !ok {
				break
			}
		}
	}
	b.act = act[:0]
	w.Flops += flops
	w.IntOps += intops
	w.GlobalLoadBytes += glb
	w.GlobalStoreBytes += gsb
	w.SharedBytes += shb
}

package vm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"cucc/internal/interp"
	"cucc/internal/kir"
)

// Runner executes the blocks of one launch through a compiled program.  It
// plays the same role as interp.Runner behind core's executor seam: launch
// validation, compilation (cached per kernel), buffer-length caching, and
// the float32 rounding of scalar arguments all happen once in NewRunner;
// register files and shared arenas are scratch reused across blocks.
//
// A Runner is not safe for concurrent use; the intra-node worker pool gives
// each worker its own Runner over the shared Launch.  Cross-runner safety
// for global atomics comes from the memory's interp.AtomicMemory shards.
type Runner struct {
	p   *CompiledKernel
	l   *interp.Launch
	mem interp.Memory
	am  interp.AtomicMemory

	// prof is the shared opcode-profile accumulator when profiling was
	// enabled at construction time; nil otherwise (and then p contains no
	// opProf instructions).
	prof *Profile

	lens     []int    // cached Mem.Len per pointer parameter
	raw      [][]byte // raw backing bytes per pointer parameter (nil: use mem)
	maxIters int64

	// baseI/baseF are the launch-level register images: builtins (bx, by
	// filled per block; tx, ty per thread), constant pools, and rounded
	// scalar arguments.  Threads start by copying them.
	baseI []int64
	baseF []float64

	sharedI []int64
	sharedF []float64

	// Sequential-path register files, reused across threads and blocks.
	seqI []int64
	seqF []float64

	// Phased-path per-thread state (allocated on first barrier block).
	thI   []int64
	thF   []float64
	pcs   []int32
	iters []int64
	alive []bool
	errs  []error
}

// NewRunner compiles (or fetches the cached program for) the launch's
// kernel, validates the launch, and builds the per-launch register images.
// It samples the global profiling switch at construction time; callers that
// build several Runners for one launch (the core worker pool) should latch
// the decision once and use NewRunnerProfiled so every worker agrees even
// if SetProfiling races with the launch.
func NewRunner(l *interp.Launch) (*Runner, error) {
	return NewRunnerProfiled(l, profilingEnabled.Load())
}

// NewRunnerProfiled is NewRunner with the profiling decision supplied by
// the caller instead of read from the global switch.
func NewRunnerProfiled(l *interp.Launch, profiled bool) (*Runner, error) {
	p, err := CompileCached(l.Kernel)
	if err != nil {
		return nil, err
	}
	if err := checkLaunch(l); err != nil {
		return nil, err
	}
	r := &Runner{p: p, l: l, mem: l.Mem}
	if profiled {
		r.p, r.prof = instrumentCached(l.Kernel, p)
	}
	r.am, _ = l.Mem.(interp.AtomicMemory)
	r.lens = make([]int, len(l.Kernel.Params))
	r.raw = make([][]byte, len(l.Kernel.Params))
	rm, _ := l.Mem.(interp.RawMemory)
	for i, prm := range l.Kernel.Params {
		if prm.Pointer {
			r.lens[i] = l.Mem.Len(i)
			if rm != nil {
				r.raw[i] = rm.RawBytes(i)
			}
		}
	}
	r.maxIters = l.MaxLoopIters
	if r.maxIters == 0 {
		r.maxIters = interp.DefaultMaxLoopIters
	}
	r.baseI = make([]int64, p.numI)
	r.baseF = make([]float64, p.numF)
	r.baseI[regBdx] = int64(l.Block.X)
	r.baseI[regBdy] = int64(max(l.Block.Y, 1))
	r.baseI[regGdx] = int64(l.Grid.X)
	r.baseI[regGdy] = int64(max(l.Grid.Y, 1))
	copy(r.baseI[p.ciBase:], p.constI)
	copy(r.baseF[p.cfBase:], p.constF)
	for i, prm := range l.Kernel.Params {
		v := l.Args[i]
		if !prm.Pointer && prm.Elem == kir.F32 {
			v.F = float64(float32(v.F))
		}
		r.baseI[numReservedI+i] = v.I
		r.baseF[i] = v.F
	}
	r.sharedI = make([]int64, p.sharedLen)
	r.sharedF = make([]float64, p.sharedLen)
	r.seqI = make([]int64, p.numI)
	r.seqF = make([]float64, p.numF)
	// Seed the sequential register file once: builtins and the const pool
	// never change across threads, and the compiler guarantees temporaries
	// are written before read on every path, so per-thread reset only needs
	// the variable-slot regions (plus tx/ty/bx/by).
	copy(r.seqI, r.baseI)
	copy(r.seqF, r.baseF)
	return r, nil
}

func checkLaunch(l *interp.Launch) error {
	k := l.Kernel
	if len(l.Args) < len(k.Params) {
		return fmt.Errorf("vm: kernel %s: %d args for %d params", k.Name, len(l.Args), len(k.Params))
	}
	if l.Grid.Count() <= 0 || l.Block.Count() <= 0 {
		return fmt.Errorf("vm: kernel %s: empty grid or block", k.Name)
	}
	if l.Mem == nil {
		return fmt.Errorf("vm: kernel %s: nil memory", k.Name)
	}
	return nil
}

// ExecBlock executes one GPU block (bx, by) of the launch and returns the
// work of all its threads.  On error the returned Work is zero, matching
// the interpreter.
func (r *Runner) ExecBlock(bx, by int) (interp.Work, error) {
	r.baseI[regBx], r.baseI[regBy] = int64(bx), int64(by)
	r.seqI[regBx], r.seqI[regBy] = int64(bx), int64(by)
	clear(r.sharedI)
	clear(r.sharedF)
	if r.p.hasSync {
		return r.execPhased()
	}
	return r.execSequential()
}

// ExecBlock is the one-shot form of NewRunner + Runner.ExecBlock, mirroring
// interp.ExecBlock for callers that execute isolated blocks.
func ExecBlock(l *interp.Launch, bx, by int) (interp.Work, error) {
	r, err := NewRunner(l)
	if err != nil {
		return interp.Work{}, err
	}
	return r.ExecBlock(bx, by)
}

// execSequential runs all threads of the block one after another in the
// interpreter's order (ty outer, tx inner).
func (r *Runner) execSequential() (interp.Work, error) {
	var w interp.Work
	bdx := int(r.baseI[regBdx])
	ydim := int(r.baseI[regBdy])
	ns := r.p.Kernel.NumSlots
	for ty := 0; ty < ydim; ty++ {
		for tx := 0; tx < bdx; tx++ {
			copy(r.seqI[numReservedI:numReservedI+ns], r.baseI[numReservedI:])
			copy(r.seqF[:ns], r.baseF[:ns])
			r.seqI[regTx], r.seqI[regTy] = int64(tx), int64(ty)
			var iters int64
			if _, _, err := r.run(r.seqI, r.seqF, 0, &iters, &w); err != nil {
				return interp.Work{}, err
			}
		}
	}
	return w, nil
}

// execPhased runs a barrier kernel by cooperative scheduling: each round
// resumes every live thread until it suspends at a __syncthreads (opSync),
// finishes, or errors.  A round ends when all live threads have arrived,
// which is exactly the interpreter's cyclic barrier with early departure —
// threads that return (or fail) leave the barrier and the rest continue.
func (r *Runner) execPhased() (interp.Work, error) {
	p := r.p
	bdx := int(r.baseI[regBdx])
	n := bdx * int(r.baseI[regBdy])
	if r.pcs == nil {
		r.thI = make([]int64, n*p.numI)
		r.thF = make([]float64, n*p.numF)
		r.pcs = make([]int32, n)
		r.iters = make([]int64, n)
		r.alive = make([]bool, n)
		r.errs = make([]error, n)
	}
	for id := 0; id < n; id++ {
		ri := r.thI[id*p.numI : (id+1)*p.numI]
		rf := r.thF[id*p.numF : (id+1)*p.numF]
		copy(ri, r.baseI)
		copy(rf, r.baseF)
		ri[regTx] = int64(id % bdx)
		ri[regTy] = int64(id / bdx)
		r.pcs[id] = 0
		r.iters[id] = 0
		r.alive[id] = true
		r.errs[id] = nil
	}
	var w interp.Work
	live := n
	for live > 0 {
		for id := 0; id < n; id++ {
			if !r.alive[id] {
				continue
			}
			ri := r.thI[id*p.numI : (id+1)*p.numI]
			rf := r.thF[id*p.numF : (id+1)*p.numF]
			pc, done, err := r.run(ri, rf, r.pcs[id], &r.iters[id], &w)
			r.pcs[id] = pc
			if err != nil {
				r.errs[id] = err
				r.alive[id] = false
				live--
			} else if done {
				r.alive[id] = false
				live--
			}
		}
	}
	// Like the interpreter, every thread runs to completion (or its own
	// error) before the first error — in thread-id order — is reported.
	for id := 0; id < n; id++ {
		if r.errs[id] != nil {
			return interp.Work{}, fmt.Errorf("vm: phased execution: %w", r.errs[id])
		}
	}
	return w, nil
}

func (r *Runner) oobGlobal(what string, prm, idx int) error {
	return fmt.Errorf("vm: %s: global %s out of bounds: %s[%d] (len %d)",
		r.p.Kernel.Name, what, r.p.Kernel.Params[prm].Name, idx, r.lens[prm])
}

func (r *Runner) oobShared(what string, m *sharedMeta, idx int) error {
	return fmt.Errorf("vm: %s: shared %s out of bounds: %s[%d] (len %d)",
		r.p.Kernel.Name, what, m.name, idx, m.n)
}

// run dispatches instructions for one thread starting at pc until the
// thread completes (done=true), suspends at a barrier (done=false, resume
// at the returned pc), or fails.  Work and the loop-iteration budget are
// accumulated locally and flushed on every non-error exit; on error the
// block's work is discarded by the callers, as in the interpreter.
func (r *Runner) run(ri []int64, rf []float64, pc int32, itersp *int64, w *interp.Work) (int32, bool, error) {
	code := r.p.code
	mem := r.mem
	lens := r.lens
	raws := r.raw
	var flops, intops, glb, gsb, shb int64
	iters := *itersp
	flush := func() {
		w.Flops += flops
		w.IntOps += intops
		w.GlobalLoadBytes += glb
		w.GlobalStoreBytes += gsb
		w.SharedBytes += shb
		*itersp = iters
	}
	for {
		in := &code[pc]
		pc++
		switch in.op {
		case opNop:
		case opProf:
			// Present only in instrumented programs: count the basic-block
			// entry.  Uninstrumented (profiling-off) code never reaches this.
			r.prof.counts[in.imm].Add(1)
		case opJmp:
			pc = in.imm
		case opJzI:
			if ri[in.a] == 0 {
				pc = in.imm
			}
		case opJnzI:
			if ri[in.a] != 0 {
				pc = in.imm
			}
		case opJzF:
			if rf[in.a] == 0 {
				pc = in.imm
			}
		case opJnzF:
			if rf[in.a] != 0 {
				pc = in.imm
			}
		case opTick:
			iters++
			if iters > r.maxIters {
				return pc, true, fmt.Errorf("vm: kernel %s: thread exceeded %d loop iterations (runaway loop?)",
					r.p.Kernel.Name, r.maxIters)
			}
		case opSync:
			flush()
			return pc, false, nil
		case opRet:
			flush()
			return pc, true, nil
		case opErr:
			return pc, true, errors.New(r.p.errs[in.imm])

		case opMovI:
			ri[in.d] = ri[in.a]
		case opMovF:
			rf[in.d] = rf[in.a]
		case opMovVar:
			ri[numReservedI+int(in.d)] = ri[in.a]
			rf[in.d] = rf[in.b]
		case opMulAddF:
			prod := float32(rf[in.a]) * float32(rf[in.b])
			c := float32(rf[in.imm&0xffff])
			if in.imm&mulAddSwapBit != 0 {
				rf[in.d] = float64(prod + c)
			} else {
				rf[in.d] = float64(c + prod)
			}
			flops += 2
		case opMulAddI:
			ri[in.d] = ri[in.imm] + ri[in.a]*ri[in.b]
			intops += 2
		case opCJmpI:
			t := cmpI(in.d&^cjmpSenseBit, ri[in.a], ri[in.b])
			intops++
			if t == (in.d&cjmpSenseBit != 0) {
				pc = in.imm
			}
		case opCJmpF:
			t := cmpF(in.d&^cjmpSenseBit, rf[in.a], rf[in.b])
			flops++
			if t == (in.d&cjmpSenseBit != 0) {
				pc = in.imm
			}
		case opNotI:
			if ri[in.a] == 0 {
				ri[in.d] = 1
			} else {
				ri[in.d] = 0
			}
		case opNotF:
			if rf[in.a] == 0 {
				ri[in.d] = 1
			} else {
				ri[in.d] = 0
			}
		case opCastIF:
			rf[in.d] = float64(float32(ri[in.a]))
		case opCastFI:
			ri[in.d] = int64(rf[in.a])
		case opCastU8:
			ri[in.d] = int64(byte(ri[in.a]))

		case opNegI:
			ri[in.d] = -ri[in.a]
			intops++
		case opAddI:
			ri[in.d] = ri[in.a] + ri[in.b]
			intops++
		case opSubI:
			ri[in.d] = ri[in.a] - ri[in.b]
			intops++
		case opMulI:
			ri[in.d] = ri[in.a] * ri[in.b]
			intops++
		case opDivI:
			if ri[in.b] == 0 {
				return pc, true, fmt.Errorf("vm: %s: integer division by zero", r.p.Kernel.Name)
			}
			ri[in.d] = ri[in.a] / ri[in.b]
			intops++
		case opRemI:
			if ri[in.b] == 0 {
				return pc, true, fmt.Errorf("vm: %s: integer modulo by zero", r.p.Kernel.Name)
			}
			ri[in.d] = ri[in.a] % ri[in.b]
			intops++
		case opAndI:
			ri[in.d] = ri[in.a] & ri[in.b]
			intops++
		case opOrI:
			ri[in.d] = ri[in.a] | ri[in.b]
			intops++
		case opXorI:
			ri[in.d] = ri[in.a] ^ ri[in.b]
			intops++
		case opShlI:
			ri[in.d] = ri[in.a] << uint(ri[in.b])
			intops++
		case opShrI:
			ri[in.d] = ri[in.a] >> uint(ri[in.b])
			intops++
		case opLtI:
			ri[in.d] = b2i(ri[in.a] < ri[in.b])
			intops++
		case opLeI:
			ri[in.d] = b2i(ri[in.a] <= ri[in.b])
			intops++
		case opGtI:
			ri[in.d] = b2i(ri[in.a] > ri[in.b])
			intops++
		case opGeI:
			ri[in.d] = b2i(ri[in.a] >= ri[in.b])
			intops++
		case opEqI:
			ri[in.d] = b2i(ri[in.a] == ri[in.b])
			intops++
		case opNeI:
			ri[in.d] = b2i(ri[in.a] != ri[in.b])
			intops++

		case opNegF:
			rf[in.d] = -rf[in.a]
			flops++
		case opAddF:
			rf[in.d] = float64(float32(rf[in.a]) + float32(rf[in.b]))
			flops++
		case opSubF:
			rf[in.d] = float64(float32(rf[in.a]) - float32(rf[in.b]))
			flops++
		case opMulF:
			rf[in.d] = float64(float32(rf[in.a]) * float32(rf[in.b]))
			flops++
		case opDivF:
			rf[in.d] = float64(float32(rf[in.a]) / float32(rf[in.b]))
			flops++
		case opLtF:
			ri[in.d] = b2i(rf[in.a] < rf[in.b])
			flops++
		case opLeF:
			ri[in.d] = b2i(rf[in.a] <= rf[in.b])
			flops++
		case opGtF:
			ri[in.d] = b2i(rf[in.a] > rf[in.b])
			flops++
		case opGeF:
			ri[in.d] = b2i(rf[in.a] >= rf[in.b])
			flops++
		case opEqF:
			ri[in.d] = b2i(rf[in.a] == rf[in.b])
			flops++
		case opNeF:
			ri[in.d] = b2i(rf[in.a] != rf[in.b])
			flops++

		case opSqrt:
			rf[in.d] = float64(float32(math.Sqrt(rf[in.a])))
			flops += int64(in.imm)
		case opExp:
			rf[in.d] = float64(float32(math.Exp(rf[in.a])))
			flops += int64(in.imm)
		case opLog:
			rf[in.d] = float64(float32(math.Log(rf[in.a])))
			flops += int64(in.imm)
		case opFabs:
			rf[in.d] = float64(float32(math.Abs(rf[in.a])))
			flops += int64(in.imm)
		case opFmin:
			rf[in.d] = float64(float32(math.Min(rf[in.a], rf[in.b])))
			flops += int64(in.imm)
		case opFmax:
			rf[in.d] = float64(float32(math.Max(rf[in.a], rf[in.b])))
			flops += int64(in.imm)
		case opPow:
			rf[in.d] = float64(float32(math.Pow(rf[in.a], rf[in.b])))
			flops += int64(in.imm)
		case opSin:
			rf[in.d] = float64(float32(math.Sin(rf[in.a])))
			flops += int64(in.imm)
		case opCos:
			rf[in.d] = float64(float32(math.Cos(rf[in.a])))
			flops += int64(in.imm)
		case opTanh:
			rf[in.d] = float64(float32(math.Tanh(rf[in.a])))
			flops += int64(in.imm)
		case opMinI:
			ri[in.d] = min(ri[in.a], ri[in.b])
			flops += int64(in.imm)
		case opMaxI:
			ri[in.d] = max(ri[in.a], ri[in.b])
			flops += int64(in.imm)
		case opAbsI:
			v := ri[in.a]
			if v < 0 {
				v = -v
			}
			ri[in.d] = v
			flops += int64(in.imm)

		case opLdGF:
			idx := int(ri[in.a])
			prm := int(in.b)
			if uint(idx) >= uint(lens[prm]) {
				return pc, true, r.oobGlobal("load", prm, idx)
			}
			if raw := raws[prm]; raw != nil {
				rf[in.d] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[4*idx:])))
			} else {
				rf[in.d] = float64(mem.LoadF32(prm, idx))
			}
			glb += 4
		case opLdGI:
			idx := int(ri[in.a])
			prm := int(in.b)
			if uint(idx) >= uint(lens[prm]) {
				return pc, true, r.oobGlobal("load", prm, idx)
			}
			if raw := raws[prm]; raw != nil {
				ri[in.d] = int64(int32(binary.LittleEndian.Uint32(raw[4*idx:])))
			} else {
				ri[in.d] = int64(mem.LoadI32(prm, idx))
			}
			glb += 4
		case opLdGU8:
			idx := int(ri[in.a])
			prm := int(in.b)
			if uint(idx) >= uint(lens[prm]) {
				return pc, true, r.oobGlobal("load", prm, idx)
			}
			if raw := raws[prm]; raw != nil {
				ri[in.d] = int64(raw[idx])
			} else {
				ri[in.d] = int64(mem.LoadU8(prm, idx))
			}
			glb++
		case opStGF:
			idx := int(ri[in.a])
			prm := int(in.b)
			if uint(idx) >= uint(lens[prm]) {
				return pc, true, r.oobGlobal("store", prm, idx)
			}
			if raw := raws[prm]; raw != nil {
				binary.LittleEndian.PutUint32(raw[4*idx:], math.Float32bits(float32(rf[in.d])))
			} else {
				mem.StoreF32(prm, idx, float32(rf[in.d]))
			}
			gsb += 4
		case opStGI:
			idx := int(ri[in.a])
			prm := int(in.b)
			if uint(idx) >= uint(lens[prm]) {
				return pc, true, r.oobGlobal("store", prm, idx)
			}
			if raw := raws[prm]; raw != nil {
				binary.LittleEndian.PutUint32(raw[4*idx:], uint32(int32(ri[in.d])))
			} else {
				mem.StoreI32(prm, idx, int32(ri[in.d]))
			}
			gsb += 4
		case opStGU8:
			idx := int(ri[in.a])
			prm := int(in.b)
			if uint(idx) >= uint(lens[prm]) {
				return pc, true, r.oobGlobal("store", prm, idx)
			}
			if raw := raws[prm]; raw != nil {
				raw[idx] = byte(ri[in.d])
			} else {
				mem.StoreU8(prm, idx, byte(ri[in.d]))
			}
			gsb++

		case opLdSI:
			m := &r.p.shared[in.b]
			idx := int(ri[in.a])
			if uint(idx) >= uint(m.n) {
				return pc, true, r.oobShared("load", m, idx)
			}
			ri[in.d] = r.sharedI[m.base+idx]
			shb += int64(in.imm)
		case opLdSF:
			m := &r.p.shared[in.b]
			idx := int(ri[in.a])
			if uint(idx) >= uint(m.n) {
				return pc, true, r.oobShared("load", m, idx)
			}
			rf[in.d] = r.sharedF[m.base+idx]
			shb += int64(in.imm)
		case opStS:
			m := &r.p.shared[in.imm]
			idx := int(ri[in.a])
			if uint(idx) >= uint(m.n) {
				return pc, true, r.oobShared("store", m, idx)
			}
			r.sharedI[m.base+idx] = ri[in.d]
			r.sharedF[m.base+idx] = rf[in.b]
			shb += int64(m.elem.Size())

		case opAtGAdd, opAtGMax:
			idx := int(ri[in.a])
			prm := int(in.imm)
			var mu *sync.Mutex
			if r.am != nil {
				// Serialize against other runners' blocks touching the
				// same element, exactly like the interpreter's shards.
				mu = r.am.AtomicShard(prm, idx)
				mu.Lock()
			}
			if uint(idx) >= uint(lens[prm]) {
				if mu != nil {
					mu.Unlock()
				}
				return pc, true, r.oobGlobal("load", prm, idx)
			}
			elem := r.p.Kernel.Params[prm].Elem
			sz := int64(elem.Size())
			var oldI int64
			var oldF float64
			switch elem {
			case kir.F32:
				oldF = float64(mem.LoadF32(prm, idx))
			case kir.I32:
				oldI = int64(mem.LoadI32(prm, idx))
			case kir.U8:
				oldI = int64(mem.LoadU8(prm, idx))
			}
			glb += sz
			nvI, nvF := oldI, oldF
			if in.op == opAtGAdd {
				if elem == kir.F32 {
					nvF = float64(float32(oldF) + float32(rf[in.b]))
					nvI = 0
					flops++
				} else {
					nvI = oldI + ri[in.d]
					nvF = 0
					intops++
				}
			} else { // atomicMax compares the I fields, whatever the element
				if oldI < ri[in.d] {
					nvI, nvF = ri[in.d], rf[in.b]
				}
				intops++
			}
			switch elem {
			case kir.F32:
				mem.StoreF32(prm, idx, float32(nvF))
			case kir.I32:
				mem.StoreI32(prm, idx, int32(nvI))
			case kir.U8:
				mem.StoreU8(prm, idx, byte(nvI))
			}
			gsb += sz
			if mu != nil {
				mu.Unlock()
			}

		case opAtSAdd, opAtSMax:
			m := &r.p.shared[in.imm]
			idx := int(ri[in.a])
			if uint(idx) >= uint(m.n) {
				return pc, true, r.oobShared("load", m, idx)
			}
			cell := m.base + idx
			sz := int64(m.elem.Size())
			oldI, oldF := r.sharedI[cell], r.sharedF[cell]
			nvI, nvF := oldI, oldF
			if in.op == opAtSAdd {
				if m.elem == kir.F32 {
					nvF = float64(float32(oldF) + float32(rf[in.b]))
					nvI = 0
					flops++
				} else {
					nvI = oldI + ri[in.d]
					nvF = 0
					intops++
				}
			} else {
				if oldI < ri[in.d] {
					nvI, nvF = ri[in.d], rf[in.b]
				}
				intops++
			}
			r.sharedI[cell] = nvI
			r.sharedF[cell] = nvF
			shb += 2 * sz

		default:
			return pc, true, fmt.Errorf("vm: kernel %s: bad opcode %d at pc %d", r.p.Kernel.Name, in.op, pc-1)
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

package vm

import (
	"testing"

	"cucc/internal/interp"
	"cucc/internal/lang"
)

// profTestLaunch compiles src and builds a launch over a fresh host memory,
// binding a zeroed buffer per pointer param and passing elems for scalars.
func profTestLaunch(t *testing.T, src string, blocks, bs int, elems int) *interp.Launch {
	t.Helper()
	mod, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	k := mod.Kernels[0]
	mem := interp.NewHostMem()
	args := make([]interp.Value, len(k.Params))
	for i, prm := range k.Params {
		if prm.Pointer {
			mem.Bind(i, interp.ZeroBuffer(prm.Elem, elems))
		} else {
			args[i] = interp.IntV(int64(elems))
		}
	}
	return &interp.Launch{
		Kernel: k,
		Grid:   interp.Dim1(blocks),
		Block:  interp.Dim1(bs),
		Args:   args,
		Mem:    mem,
	}
}

const profLoopSrc = `
__global__ void profloop(float* out, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    float acc = 0.0f;
    for (int i = 0; i < 10; i++)
        acc = acc + 1.0f;
    if (id < n)
        out[id] = acc;
}`

func withProfiling(t *testing.T, fn func()) {
	t.Helper()
	SetProfiling(true)
	ResetProfiles()
	defer func() {
		SetProfiling(false)
		ResetProfiles()
	}()
	fn()
}

// TestProfileCounts: the profiled run yields exact per-opcode counts (the
// loop body executes 10 iterations per thread) and the loop back edge
// counts iterations.
func TestProfileCounts(t *testing.T) {
	withProfiling(t, func() {
		const blocks, bs, elems = 2, 8, 16
		l := profTestLaunch(t, profLoopSrc, blocks, bs, elems)
		r, err := NewRunner(l)
		if err != nil {
			t.Fatal(err)
		}
		if r.prof == nil {
			t.Fatal("profiling enabled but runner has no profile")
		}
		for b := 0; b < blocks; b++ {
			if _, err := r.ExecBlock(b, 0); err != nil {
				t.Fatal(err)
			}
		}
		profs := Profiles()
		if len(profs) != 1 || profs[0].Kernel != "profloop" {
			t.Fatalf("profiles = %+v", profs)
		}
		kp := profs[0]
		threads := int64(blocks * bs)
		find := func(op string) int64 {
			for _, oc := range kp.Opcodes {
				if oc.Op == op {
					return oc.Count
				}
			}
			return 0
		}
		// One ret per thread; the loop head's tick runs once per condition
		// check (10 iterations + the failing exit check); 10 add_f per
		// thread (the loop-body accumulate).
		if got := find("ret"); got != threads {
			t.Errorf("ret count = %d, want %d", got, threads)
		}
		if got := find("tick"); got != 11*threads {
			t.Errorf("tick count = %d, want %d", got, 11*threads)
		}
		if got := find("add_f"); got != 10*threads {
			t.Errorf("add_f count = %d, want %d", got, 10*threads)
		}
		if kp.Instructions <= 0 {
			t.Error("no dynamic instructions counted")
		}
		// The loop closes with an unconditional backward jmp: its counter is
		// the total iteration count.
		if len(kp.BackEdges) == 0 {
			t.Fatal("no back edges found for a loop kernel")
		}
		if got := kp.BackEdges[0].Count; got != 10*threads {
			t.Errorf("hottest back edge count = %d, want %d", got, 10*threads)
		}
		if kp.BackEdges[0].Target > kp.BackEdges[0].PC {
			t.Error("back edge target is not backwards")
		}
	})
}

// TestProfileEquivalence: instrumentation must not change execution — the
// profiled run produces bitwise-identical memory and identical Work.
func TestProfileEquivalence(t *testing.T) {
	const blocks, bs, elems = 4, 16, 64
	run := func() ([]float32, interp.Work) {
		l := profTestLaunch(t, profLoopSrc, blocks, bs, elems)
		r, err := NewRunner(l)
		if err != nil {
			t.Fatal(err)
		}
		var w interp.Work
		for b := 0; b < blocks; b++ {
			bw, err := r.ExecBlock(b, 0)
			if err != nil {
				t.Fatal(err)
			}
			w.Flops += bw.Flops
			w.IntOps += bw.IntOps
			w.GlobalLoadBytes += bw.GlobalLoadBytes
			w.GlobalStoreBytes += bw.GlobalStoreBytes
			w.SharedBytes += bw.SharedBytes
		}
		hm := l.Mem.(*interp.HostMem)
		out := make([]float32, elems)
		for i := range out {
			out[i] = hm.LoadF32(0, i)
		}
		return out, w
	}

	plainMem, plainWork := run()
	var profMem []float32
	var profWork interp.Work
	withProfiling(t, func() {
		profMem, profWork = run()
	})
	if plainWork != profWork {
		t.Errorf("profiling changed Work: %+v vs %+v", plainWork, profWork)
	}
	for i := range plainMem {
		if plainMem[i] != profMem[i] {
			t.Fatalf("profiling changed memory at %d: %g vs %g", i, plainMem[i], profMem[i])
		}
	}
}

// TestProfileBarrierKernel: instrumentation composes with the phased
// scheduler (opSync terminates a block; resuming re-enters the next one).
func TestProfileBarrierKernel(t *testing.T) {
	const src = `
__global__ void profsync(float* out, int n) {
    __shared__ float tmp[64];
    int tid = threadIdx.x;
    tmp[tid] = 1.0f;
    __syncthreads();
    out[tid] = tmp[(tid + 1) % 64];
}`
	withProfiling(t, func() {
		l := profTestLaunch(t, src, 1, 64, 64)
		r, err := NewRunner(l)
		if err != nil {
			t.Fatal(err)
		}
		if !r.p.hasSync {
			t.Fatal("kernel should use the phased scheduler")
		}
		if _, err := r.ExecBlock(0, 0); err != nil {
			t.Fatal(err)
		}
		profs := Profiles()
		if len(profs) != 1 {
			t.Fatalf("got %d profiles", len(profs))
		}
		find := func(op string) int64 {
			for _, oc := range profs[0].Opcodes {
				if oc.Op == op {
					return oc.Count
				}
			}
			return 0
		}
		if got := find("sync"); got != 64 {
			t.Errorf("sync count = %d, want 64", got)
		}
		if got := find("ret"); got != 64 {
			t.Errorf("ret count = %d, want 64", got)
		}
	})
}

// TestProfilingDisabledIsUninstrumented: with profiling off, runners use
// the original cached program — no opProf instructions, no profile.
func TestProfilingDisabledIsUninstrumented(t *testing.T) {
	SetProfiling(false)
	ResetProfiles()
	l := profTestLaunch(t, profLoopSrc, 1, 4, 4)
	r, err := NewRunner(l)
	if err != nil {
		t.Fatal(err)
	}
	if r.prof != nil {
		t.Error("runner has a profile with profiling disabled")
	}
	for _, in := range r.p.code {
		if in.op == opProf {
			t.Fatal("opProf present in uninstrumented program")
		}
	}
	if got := len(Profiles()); got != 0 {
		t.Errorf("got %d profiles with profiling disabled", got)
	}
}

// TestProfileGauges: the metrics bridge exposes live counters.
func TestProfileGauges(t *testing.T) {
	withProfiling(t, func() {
		l := profTestLaunch(t, profLoopSrc, 1, 8, 8)
		r, err := NewRunner(l)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.ExecBlock(0, 0); err != nil {
			t.Fatal(err)
		}
		gauges := ProfileGauges()
		fn, ok := gauges["vm.profile.profloop.instructions"]
		if !ok {
			t.Fatalf("instructions gauge missing; have %d gauges", len(gauges))
		}
		before := fn()
		if before <= 0 {
			t.Errorf("instructions gauge = %g, want > 0", before)
		}
		// Gauges are live: more execution moves the reading.
		if _, err := r.ExecBlock(0, 0); err != nil {
			t.Fatal(err)
		}
		if after := fn(); after <= before {
			t.Errorf("gauge did not advance: %g -> %g", before, after)
		}
		if _, ok := gauges["vm.profile.profloop.op.add_f"]; !ok {
			t.Error("per-opcode gauge missing")
		}
	})
}

// TestInstrumentJumpRemap: every jump in the instrumented program lands on
// an opProf (the block-entry counter sees jump entries, not only
// fall-throughs).
func TestInstrumentJumpRemap(t *testing.T) {
	mod, err := lang.Parse(profLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(mod.Kernels[0])
	if err != nil {
		t.Fatal(err)
	}
	ip, prof := instrument("profloop", p)
	if len(prof.blocks) == 0 {
		t.Fatal("no basic blocks")
	}
	for i, in := range ip.code {
		if isJump(in.op) {
			if tgt := ip.code[in.imm]; tgt.op != opProf {
				t.Errorf("jump at %d targets %v, want opProf", i, tgt.op)
			}
		}
	}
	// Instruction count without opProf matches the original.
	plain := 0
	for _, in := range ip.code {
		if in.op != opProf {
			plain++
		}
	}
	if plain != len(p.code) {
		t.Errorf("instrumented program has %d non-prof instructions, original %d", plain, len(p.code))
	}
}

package vm

import (
	"fmt"
	"math"

	"cucc/internal/interp"
	"cucc/internal/kir"
)

// Compile lowers a kernel into a register-machine program.  Compilation
// only fails on resource exhaustion (register file overflow); constructs
// the interpreter rejects at runtime (unknown nodes, bad load types) are
// lowered to opErr instructions so the error still surfaces only if the
// offending statement actually executes, exactly like the interpreter.
func Compile(k *kir.Kernel) (*CompiledKernel, error) {
	p := &CompiledKernel{
		Kernel:  k,
		hasSync: k.HasSync(),
		ciBase:  numReservedI + k.NumSlots,
		cfBase:  k.NumSlots,
	}
	c := &compiler{
		k:        k,
		p:        p,
		intConst: make(map[int64]uint16),
		fltConst: make(map[uint64]uint16),
		arrIDs:   make(map[string]uint16),
		errIdxs:  make(map[string]int32),
	}
	base := 0
	for _, sh := range k.Shared {
		c.arrIDs[sh.Name] = uint16(len(p.shared))
		p.shared = append(p.shared, sharedMeta{name: sh.Name, elem: sh.Elem, base: base, n: sh.Len})
		base += sh.Len
	}
	p.sharedLen = base

	// Pre-scan interns every literal so the constant pools are complete
	// before the temporary region (which starts right after them) is laid
	// out.  0, 1, and 0.0 are always present: they synthesize logical
	// results and the zero reads of a value's inactive field.
	c.zeroI = c.internInt(0)
	c.oneI = c.internInt(1)
	c.zeroF = c.internFloat(0)
	c.scanBlock(k.Body)
	c.frozen = true
	c.tiBase = p.ciBase + len(p.constI)
	c.tfBase = p.cfBase + len(p.constF)
	c.maxTI, c.maxTF = c.tiBase, c.tfBase

	c.compileBlock(k.Body)
	c.emit(instr{op: opRet})
	if c.err != nil {
		return nil, c.err
	}
	p.code = fuse(c.code, k.NumSlots, c.tiBase, c.tfBase)
	p.numI = c.maxTI
	p.numF = c.maxTF
	return p, nil
}

// fuse is the post-compile peephole pass emitting superinstructions for the
// hot adjacent pairs the PR-5 opcode profiler surfaced (assignment move
// pairs, multiply-add chains, compare+branch loop conditions).  A pair
// [i, i+1] fuses only when no jump targets i+1 (the pair always executes
// together) and, for the value-forwarding fusions, when the intermediate is
// a temporary register: the compiler allocates each temporary for exactly
// one consuming read before the next statement rewrites it, so dropping the
// intermediate write is safe.  Jump targets are remapped to the shortened
// instruction stream, exactly like the profiler's instrumentation pass.
func fuse(code []instr, numSlots, tiBase, tfBase int) []instr {
	n := len(code)
	target := make([]bool, n+1)
	for _, in := range code {
		if isJump(in.op) {
			target[in.imm] = true
		}
	}
	out := make([]instr, 0, n)
	oldToNew := make([]int32, n+1)
	for i := 0; i < n; i++ {
		oldToNew[i] = int32(len(out))
		in := code[i]
		if i+1 < n && !target[i+1] {
			if f, ok := fusePair(in, code[i+1], numSlots, tiBase, tfBase); ok {
				out = append(out, f)
				i++
				oldToNew[i] = int32(len(out) - 1)
				continue
			}
		}
		out = append(out, in)
	}
	oldToNew[n] = int32(len(out))
	for i := range out {
		if isJump(out[i].op) {
			out[i].imm = oldToNew[out[i].imm]
		}
	}
	return out
}

// fusePair matches one superinstruction pattern against an adjacent
// instruction pair.
func fusePair(in, nx instr, numSlots, tiBase, tfBase int) (instr, bool) {
	switch {
	case in.op == opMovI && nx.op == opMovF &&
		int(nx.d) < numSlots && int(in.d) == int(nx.d)+numReservedI:
		// The two halves of a variable-slot assignment (Decl/Assign always
		// emit them adjacently).  Combining the independent int/float file
		// writes is unconditionally safe.
		return instr{op: opMovVar, d: nx.d, a: in.a, b: nx.a}, true

	case in.op == opMulF && int(in.d) >= tfBase && nx.op == opAddF:
		t := in.d
		if nx.a == t && nx.b != t {
			return instr{op: opMulAddF, d: nx.d, a: in.a, b: in.b,
				imm: int32(nx.b) | mulAddSwapBit}, true
		}
		if nx.b == t && nx.a != t {
			return instr{op: opMulAddF, d: nx.d, a: in.a, b: in.b,
				imm: int32(nx.a)}, true
		}

	case in.op == opMulI && int(in.d) >= tiBase && nx.op == opAddI:
		t := in.d
		if (nx.a == t) != (nx.b == t) {
			c := nx.a
			if c == t {
				c = nx.b
			}
			return instr{op: opMulAddI, d: nx.d, a: in.a, b: in.b, imm: int32(c)}, true
		}

	case in.op >= opLtI && in.op <= opNeI && int(in.d) >= tiBase &&
		(nx.op == opJzI || nx.op == opJnzI) && nx.a == in.d:
		d := uint16(in.op - opLtI)
		if nx.op == opJnzI {
			d |= cjmpSenseBit
		}
		return instr{op: opCJmpI, d: d, a: in.a, b: in.b, imm: nx.imm}, true

	case in.op >= opLtF && in.op <= opNeF && int(in.d) >= tiBase &&
		(nx.op == opJzI || nx.op == opJnzI) && nx.a == in.d:
		// Float compares write their 0/1 result into an int temporary, so
		// the consuming jump is the integer form.
		d := uint16(in.op - opLtF)
		if nx.op == opJnzI {
			d |= cjmpSenseBit
		}
		return instr{op: opCJmpF, d: d, a: in.a, b: in.b, imm: nx.imm}, true
	}
	return instr{}, false
}

// cmpI applies an integer comparison kind (opCJmpI's d field, 0..5 =
// Lt..Ne).
func cmpI(kind uint16, x, y int64) bool {
	switch kind {
	case 0:
		return x < y
	case 1:
		return x <= y
	case 2:
		return x > y
	case 3:
		return x >= y
	case 4:
		return x == y
	default:
		return x != y
	}
}

// cmpF is cmpI over the float file.
func cmpF(kind uint16, x, y float64) bool {
	switch kind {
	case 0:
		return x < y
	case 1:
		return x <= y
	case 2:
		return x > y
	case 3:
		return x >= y
	case 4:
		return x == y
	default:
		return x != y
	}
}

type compiler struct {
	k    *kir.Kernel
	p    *CompiledKernel
	code []instr
	err  error

	intConst           map[int64]uint16
	fltConst           map[uint64]uint16 // keyed by bit pattern so NaN literals intern
	frozen             bool              // constant pools complete; interning new values is a bug
	zeroI, oneI, zeroF uint16

	arrIDs  map[string]uint16
	errIdxs map[string]int32

	// Temporary registers are allocated monotonically within a statement
	// and recycled between statements (no value lives across a statement
	// boundary except through variable slots).
	tiBase, tfBase int
	ti, tf         int
	maxTI, maxTF   int

	loops []loopCtx
}

// loopCtx collects the jump sites of break/continue statements inside one
// loop for backpatching.
type loopCtx struct {
	breaks []int
	conts  []int
}

func (c *compiler) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func (c *compiler) internInt(v int64) uint16 {
	if r, ok := c.intConst[v]; ok {
		return r
	}
	if c.frozen {
		c.fail("vm: compiler bug: int constant %d missed by pre-scan", v)
		return c.zeroI
	}
	r := uint16(c.p.ciBase + len(c.p.constI))
	c.intConst[v] = r
	c.p.constI = append(c.p.constI, v)
	return r
}

func (c *compiler) internFloat(v float64) uint16 {
	key := math.Float64bits(v)
	if r, ok := c.fltConst[key]; ok {
		return r
	}
	if c.frozen {
		c.fail("vm: compiler bug: float constant %g missed by pre-scan", v)
		return c.zeroF
	}
	r := uint16(c.p.cfBase + len(c.p.constF))
	c.fltConst[key] = r
	c.p.constF = append(c.p.constF, v)
	return r
}

func (c *compiler) slotI(s int) uint16 { return uint16(numReservedI + s) }
func (c *compiler) slotF(s int) uint16 { return uint16(s) }

const maxRegs = 60000

func (c *compiler) newTI() uint16 {
	r := c.ti
	c.ti++
	if c.ti > c.maxTI {
		c.maxTI = c.ti
	}
	if r > maxRegs {
		c.fail("vm: kernel %s: integer register file overflow", c.k.Name)
		return 0
	}
	return uint16(r)
}

func (c *compiler) newTF() uint16 {
	r := c.tf
	c.tf++
	if c.tf > c.maxTF {
		c.maxTF = c.tf
	}
	if r > maxRegs {
		c.fail("vm: kernel %s: float register file overflow", c.k.Name)
		return 0
	}
	return uint16(r)
}

// arrID resolves a shared-array name, synthesizing a zero-length entry for
// names the kernel never declared (the interpreter treats those as nil
// slices, so every access fails the bounds check at runtime).
func (c *compiler) arrID(name string) uint16 {
	if id, ok := c.arrIDs[name]; ok {
		return id
	}
	id := uint16(len(c.p.shared))
	c.arrIDs[name] = id
	c.p.shared = append(c.p.shared, sharedMeta{name: name})
	return id
}

func (c *compiler) errIdx(msg string) int32 {
	if i, ok := c.errIdxs[msg]; ok {
		return i
	}
	i := int32(len(c.p.errs))
	c.errIdxs[msg] = i
	c.p.errs = append(c.p.errs, msg)
	return i
}

func (c *compiler) emit(in instr) int {
	c.code = append(c.code, in)
	return len(c.code) - 1
}

func (c *compiler) here() int32 { return int32(len(c.code)) }

func (c *compiler) patch(at int, target int32) { c.code[at].imm = target }

// --- constant pre-scan ---

func (c *compiler) scanBlock(b kir.Block) {
	for _, s := range b {
		c.scanStmt(s)
	}
}

func (c *compiler) scanStmt(s kir.Stmt) {
	switch s := s.(type) {
	case *kir.Decl:
		if s.Init != nil {
			c.scanExpr(s.Init)
		}
	case *kir.Assign:
		c.scanExpr(s.Value)
	case *kir.Store:
		c.scanExpr(s.Index)
		c.scanExpr(s.Value)
	case *kir.AtomicRMW:
		c.scanExpr(s.Index)
		c.scanExpr(s.Value)
	case *kir.If:
		c.scanExpr(s.Cond)
		c.scanBlock(s.Then)
		c.scanBlock(s.Else)
	case *kir.For:
		if s.Init != nil {
			c.scanStmt(s.Init)
		}
		c.scanExpr(s.Cond)
		if s.Post != nil {
			c.scanStmt(s.Post)
		}
		c.scanBlock(s.Body)
	case *kir.While:
		c.scanExpr(s.Cond)
		c.scanBlock(s.Body)
	}
}

func (c *compiler) scanExpr(e kir.Expr) {
	switch e := e.(type) {
	case nil:
	case *kir.IntLit:
		c.internInt(e.Val)
	case *kir.FloatLit:
		c.internFloat(float64(float32(e.Val)))
	case *kir.Binary:
		c.scanExpr(e.L)
		c.scanExpr(e.R)
	case *kir.Unary:
		c.scanExpr(e.X)
	case *kir.Load:
		c.scanExpr(e.Index)
	case *kir.Call:
		for _, a := range e.Args {
			c.scanExpr(a)
		}
	case *kir.Cast:
		c.scanExpr(e.X)
	case *kir.Select:
		c.scanExpr(e.Cond)
		c.scanExpr(e.A)
		c.scanExpr(e.B)
	}
}

// --- statement lowering ---

func (c *compiler) compileBlock(b kir.Block) {
	for _, s := range b {
		c.compileStmt(s)
	}
}

func (c *compiler) compileStmt(s kir.Stmt) {
	if c.err != nil {
		return
	}
	c.ti, c.tf = c.tiBase, c.tfBase
	switch s := s.(type) {
	case *kir.Decl:
		if s.Init != nil {
			i, f := c.compileExpr(s.Init)
			c.emit(instr{op: opMovI, d: c.slotI(s.Slot), a: i})
			c.emit(instr{op: opMovF, d: c.slotF(s.Slot), a: f})
		} else {
			c.emit(instr{op: opMovI, d: c.slotI(s.Slot), a: c.zeroI})
			c.emit(instr{op: opMovF, d: c.slotF(s.Slot), a: c.zeroF})
		}
	case *kir.Assign:
		i, f := c.compileExpr(s.Value)
		c.emit(instr{op: opMovI, d: c.slotI(s.Slot), a: i})
		c.emit(instr{op: opMovF, d: c.slotF(s.Slot), a: f})
	case *kir.Store:
		idx := c.compileI(s.Index)
		if s.Mem.Space == kir.Shared {
			vi, vf := c.compileExpr(s.Value)
			c.emit(instr{op: opStS, a: idx, d: vi, b: vf, imm: int32(c.arrID(s.Mem.Name))})
			return
		}
		switch c.k.Params[s.Mem.Param].Elem {
		case kir.F32:
			vf := c.compileF(s.Value)
			c.emit(instr{op: opStGF, d: vf, a: idx, b: uint16(s.Mem.Param)})
		case kir.I32:
			vi := c.compileI(s.Value)
			c.emit(instr{op: opStGI, d: vi, a: idx, b: uint16(s.Mem.Param)})
		case kir.U8:
			vi := c.compileI(s.Value)
			c.emit(instr{op: opStGU8, d: vi, a: idx, b: uint16(s.Mem.Param)})
		default:
			c.fail("vm: kernel %s: store to %s parameter %s", c.k.Name,
				c.k.Params[s.Mem.Param].Elem, s.Mem.Name)
		}
	case *kir.AtomicRMW:
		idx := c.compileI(s.Index)
		vi, vf := c.compileExpr(s.Value)
		var o op
		if s.Mem.Space == kir.Shared {
			o = opAtSAdd
			if s.Op == kir.AtomicMax {
				o = opAtSMax
			}
			c.emit(instr{op: o, a: idx, d: vi, b: vf, imm: int32(c.arrID(s.Mem.Name))})
			return
		}
		o = opAtGAdd
		if s.Op == kir.AtomicMax {
			o = opAtGMax
		}
		c.emit(instr{op: o, a: idx, d: vi, b: vf, imm: int32(s.Mem.Param)})
	case *kir.If:
		jz := c.condJumpFalse(s.Cond)
		c.compileBlock(s.Then)
		if len(s.Else) > 0 {
			jend := c.emit(instr{op: opJmp})
			c.patch(jz, c.here())
			c.compileBlock(s.Else)
			c.patch(jend, c.here())
		} else {
			c.patch(jz, c.here())
		}
	case *kir.For:
		if s.Init != nil {
			c.compileStmt(s.Init)
		}
		c.loops = append(c.loops, loopCtx{})
		head := c.here()
		c.emit(instr{op: opTick})
		c.ti, c.tf = c.tiBase, c.tfBase
		jz := c.condJumpFalse(s.Cond)
		c.compileBlock(s.Body)
		// continue lands on the post statement, then back to the tick.
		lp := &c.loops[len(c.loops)-1]
		post := c.here()
		for _, at := range lp.conts {
			c.patch(at, post)
		}
		if s.Post != nil {
			c.compileStmt(s.Post)
		}
		c.emit(instr{op: opJmp, imm: head})
		end := c.here()
		c.patch(jz, end)
		for _, at := range lp.breaks {
			c.patch(at, end)
		}
		c.loops = c.loops[:len(c.loops)-1]
	case *kir.While:
		c.loops = append(c.loops, loopCtx{})
		head := c.here()
		c.emit(instr{op: opTick})
		c.ti, c.tf = c.tiBase, c.tfBase
		jz := c.condJumpFalse(s.Cond)
		c.compileBlock(s.Body)
		c.emit(instr{op: opJmp, imm: head})
		end := c.here()
		c.patch(jz, end)
		lp := &c.loops[len(c.loops)-1]
		for _, at := range lp.conts {
			c.patch(at, head)
		}
		for _, at := range lp.breaks {
			c.patch(at, end)
		}
		c.loops = c.loops[:len(c.loops)-1]
	case *kir.Sync:
		c.emit(instr{op: opSync})
	case *kir.Return:
		c.emit(instr{op: opRet})
	case *kir.BreakStmt:
		// Outside a loop, break/continue bubble out of the kernel body in
		// the interpreter, ending the thread.
		if len(c.loops) == 0 {
			c.emit(instr{op: opRet})
			return
		}
		lp := &c.loops[len(c.loops)-1]
		lp.breaks = append(lp.breaks, c.emit(instr{op: opJmp}))
	case *kir.ContinueStmt:
		if len(c.loops) == 0 {
			c.emit(instr{op: opRet})
			return
		}
		lp := &c.loops[len(c.loops)-1]
		lp.conts = append(lp.conts, c.emit(instr{op: opJmp}))
	default:
		c.emit(instr{op: opErr, imm: c.errIdx(fmt.Sprintf("vm: unknown statement %T", s))})
	}
}

// condJumpFalse evaluates a condition and emits a jump-if-false with an
// unpatched target, honoring the interpreter's truthiness rule: an
// expression of static type F32 tests its float field, everything else its
// int field.
func (c *compiler) condJumpFalse(cond kir.Expr) int {
	if cond == nil {
		c.emit(instr{op: opErr, imm: c.errIdx("vm: unknown expression <nil>")})
		return c.emit(instr{op: opJzI, a: c.zeroI}) // unreachable, patchable
	}
	i, f := c.compileExpr(cond)
	if cond.Type() == kir.F32 {
		return c.emit(instr{op: opJzF, a: f})
	}
	return c.emit(instr{op: opJzI, a: i})
}

// --- expression lowering ---

// compileI compiles e and returns the register holding the I field of its
// interp.Value result (the zero constant when the expression computes into
// the float field — the interpreter's inactive-field-is-zero semantics).
func (c *compiler) compileI(e kir.Expr) uint16 {
	i, _ := c.compileExpr(e)
	return i
}

// compileF is the float-field counterpart of compileI.
func (c *compiler) compileF(e kir.Expr) uint16 {
	_, f := c.compileExpr(e)
	return f
}

// compileExpr emits code evaluating e exactly once and returns the register
// pair mirroring the interp.Value it produces.  Pass-through nodes (VarRef,
// identity casts, Select) forward both fields; computing nodes return their
// result register plus the zero constant for the inactive field.
func (c *compiler) compileExpr(e kir.Expr) (uint16, uint16) {
	if c.err != nil {
		return c.zeroI, c.zeroF
	}
	switch e := e.(type) {
	case *kir.IntLit:
		return c.internInt(e.Val), c.zeroF
	case *kir.FloatLit:
		return c.zeroI, c.internFloat(float64(float32(e.Val)))
	case *kir.VarRef:
		return c.slotI(e.Slot), c.slotF(e.Slot)
	case *kir.BuiltinRef:
		return uint16(e.B)*2 + uint16(e.Axis), c.zeroF
	case *kir.Binary:
		return c.compileBinary(e)
	case *kir.Unary:
		if e.Op == kir.Neg {
			if e.T == kir.F32 {
				x := c.compileF(e.X)
				d := c.newTF()
				c.emit(instr{op: opNegF, d: d, a: x})
				return c.zeroI, d
			}
			x := c.compileI(e.X)
			d := c.newTI()
			c.emit(instr{op: opNegI, d: d, a: x})
			return d, c.zeroF
		}
		// Not tests the operand's own truthiness.
		d := c.newTI()
		if e.X.Type() == kir.F32 {
			x := c.compileF(e.X)
			c.emit(instr{op: opNotF, d: d, a: x})
		} else {
			x := c.compileI(e.X)
			c.emit(instr{op: opNotI, d: d, a: x})
		}
		return d, c.zeroF
	case *kir.Load:
		idx := c.compileI(e.Index)
		if e.Mem.Space == kir.Shared {
			// Shared cells are full Value pairs: load both fields (the
			// byte charge is applied once, on the first load).
			id := c.arrID(e.Mem.Name)
			di, df := c.newTI(), c.newTF()
			c.emit(instr{op: opLdSI, d: di, a: idx, b: id, imm: int32(e.T.Size())})
			c.emit(instr{op: opLdSF, d: df, a: idx, b: id})
			return di, df
		}
		switch e.T {
		case kir.F32:
			d := c.newTF()
			c.emit(instr{op: opLdGF, d: d, a: idx, b: uint16(e.Mem.Param)})
			return c.zeroI, d
		case kir.I32:
			d := c.newTI()
			c.emit(instr{op: opLdGI, d: d, a: idx, b: uint16(e.Mem.Param)})
			return d, c.zeroF
		case kir.U8:
			d := c.newTI()
			c.emit(instr{op: opLdGU8, d: d, a: idx, b: uint16(e.Mem.Param)})
			return d, c.zeroF
		default:
			c.emit(instr{op: opErr, imm: c.errIdx(fmt.Sprintf("vm: bad load type %s", e.T))})
			return c.zeroI, c.zeroF
		}
	case *kir.Call:
		return c.compileCall(e)
	case *kir.Cast:
		from, to := e.X.Type(), e.To
		switch {
		case from == to:
			return c.compileExpr(e.X)
		case to == kir.F32:
			if from.IsInteger() || from == kir.Bool {
				x := c.compileI(e.X)
				d := c.newTF()
				c.emit(instr{op: opCastIF, d: d, a: x})
				return c.zeroI, d
			}
			return c.compileExpr(e.X)
		case to.IsInteger():
			if from == kir.F32 {
				x := c.compileF(e.X)
				d := c.newTI()
				c.emit(instr{op: opCastFI, d: d, a: x})
				return d, c.zeroF
			}
			if to == kir.U8 {
				x := c.compileI(e.X)
				d := c.newTI()
				c.emit(instr{op: opCastU8, d: d, a: x})
				return d, c.zeroF
			}
			return c.compileExpr(e.X)
		default:
			// Casts to Bool are identity in the interpreter.
			return c.compileExpr(e.X)
		}
	case *kir.Select:
		di, df := c.newTI(), c.newTF()
		jz := c.condJumpFalse(e.Cond)
		ai, af := c.compileExpr(e.A)
		c.emit(instr{op: opMovI, d: di, a: ai})
		c.emit(instr{op: opMovF, d: df, a: af})
		jend := c.emit(instr{op: opJmp})
		c.patch(jz, c.here())
		bi, bf := c.compileExpr(e.B)
		c.emit(instr{op: opMovI, d: di, a: bi})
		c.emit(instr{op: opMovF, d: df, a: bf})
		c.patch(jend, c.here())
		return di, df
	default:
		c.emit(instr{op: opErr, imm: c.errIdx(fmt.Sprintf("vm: unknown expression %T", e))})
		return c.zeroI, c.zeroF
	}
}

// truthJump evaluates e and emits a conditional jump taken when e's
// truthiness equals whenTrue, returning the patch site.
func (c *compiler) truthJump(e kir.Expr, whenTrue bool) int {
	i, f := c.compileExpr(e)
	if e.Type() == kir.F32 {
		if whenTrue {
			return c.emit(instr{op: opJnzF, a: f})
		}
		return c.emit(instr{op: opJzF, a: f})
	}
	if whenTrue {
		return c.emit(instr{op: opJnzI, a: i})
	}
	return c.emit(instr{op: opJzI, a: i})
}

var cmpIOps = [...]op{opLtI, opLeI, opGtI, opGeI, opEqI, opNeI}
var cmpFOps = [...]op{opLtF, opLeF, opGtF, opGeF, opEqF, opNeF}

func (c *compiler) compileBinary(e *kir.Binary) (uint16, uint16) {
	if e.Op == kir.LAnd || e.Op == kir.LOr {
		// Short-circuit: the right operand is not evaluated (no work, no
		// errors) when the left decides the result.
		d := c.newTI()
		if e.Op == kir.LAnd {
			jl := c.truthJump(e.L, false)
			jr := c.truthJump(e.R, false)
			c.emit(instr{op: opMovI, d: d, a: c.oneI})
			jend := c.emit(instr{op: opJmp})
			c.patch(jl, c.here())
			c.patch(jr, c.here())
			c.emit(instr{op: opMovI, d: d, a: c.zeroI})
			c.patch(jend, c.here())
		} else {
			jl := c.truthJump(e.L, true)
			jr := c.truthJump(e.R, true)
			c.emit(instr{op: opMovI, d: d, a: c.zeroI})
			jend := c.emit(instr{op: opJmp})
			c.patch(jl, c.here())
			c.patch(jr, c.here())
			c.emit(instr{op: opMovI, d: d, a: c.oneI})
			c.patch(jend, c.here())
		}
		return d, c.zeroF
	}
	// The interpreter picks float semantics when either operand is F32,
	// regardless of the node's annotated result type.
	isF := e.L.Type() == kir.F32 || e.R.Type() == kir.F32
	if e.Op.IsComparison() {
		d := c.newTI()
		if isF {
			l := c.compileF(e.L)
			r := c.compileF(e.R)
			c.emit(instr{op: cmpFOps[e.Op-kir.Lt], d: d, a: l, b: r})
		} else {
			l := c.compileI(e.L)
			r := c.compileI(e.R)
			c.emit(instr{op: cmpIOps[e.Op-kir.Lt], d: d, a: l, b: r})
		}
		return d, c.zeroF
	}
	if isF {
		l := c.compileF(e.L)
		r := c.compileF(e.R)
		var o op
		switch e.Op {
		case kir.Add:
			o = opAddF
		case kir.Sub:
			o = opSubF
		case kir.Mul:
			o = opMulF
		case kir.Div:
			o = opDivF
		default:
			c.emit(instr{op: opErr, imm: c.errIdx(fmt.Sprintf("vm: operator %s on floats", e.Op))})
			return c.zeroI, c.zeroF
		}
		d := c.newTF()
		c.emit(instr{op: o, d: d, a: l, b: r})
		return c.zeroI, d
	}
	l := c.compileI(e.L)
	r := c.compileI(e.R)
	var o op
	switch e.Op {
	case kir.Add:
		o = opAddI
	case kir.Sub:
		o = opSubI
	case kir.Mul:
		o = opMulI
	case kir.Div:
		o = opDivI
	case kir.Rem:
		o = opRemI
	case kir.BAnd:
		o = opAndI
	case kir.BOr:
		o = opOrI
	case kir.BXor:
		o = opXorI
	case kir.Shl:
		o = opShlI
	case kir.Shr:
		o = opShrI
	default:
		c.emit(instr{op: opErr, imm: c.errIdx(fmt.Sprintf("vm: operator %s on ints", e.Op))})
		return c.zeroI, c.zeroF
	}
	d := c.newTI()
	c.emit(instr{op: o, d: d, a: l, b: r})
	return d, c.zeroF
}

var intrinsicOps = [...]op{
	kir.Sqrt: opSqrt, kir.Exp: opExp, kir.Log: opLog, kir.Fabs: opFabs,
	kir.Fmin: opFmin, kir.Fmax: opFmax, kir.Pow: opPow, kir.Sin: opSin,
	kir.Cos: opCos, kir.Tanh: opTanh, kir.MinI: opMinI, kir.MaxI: opMaxI,
	kir.AbsI: opAbsI,
}

func (c *compiler) compileCall(e *kir.Call) (uint16, uint16) {
	if int(e.Fn) >= len(intrinsicOps) {
		c.emit(instr{op: opErr, imm: c.errIdx(fmt.Sprintf("vm: unknown intrinsic %s", e.Fn))})
		return c.zeroI, c.zeroF
	}
	isInt := e.Fn == kir.MinI || e.Fn == kir.MaxI || e.Fn == kir.AbsI
	// Arguments are fully evaluated left to right before the intrinsic
	// applies; integer intrinsics read the I field, float ones the F field.
	regs := make([]uint16, 0, 2)
	for _, a := range e.Args {
		if isInt {
			regs = append(regs, c.compileI(a))
		} else {
			regs = append(regs, c.compileF(a))
		}
	}
	in := instr{op: intrinsicOps[e.Fn], imm: int32(interp.IntrinsicFlops(e.Fn))}
	if len(regs) > 0 {
		in.a = regs[0]
	}
	if len(regs) > 1 {
		in.b = regs[1]
	}
	if isInt {
		in.d = c.newTI()
		c.emit(in)
		return in.d, c.zeroF
	}
	in.d = c.newTF()
	c.emit(in)
	return c.zeroI, in.d
}

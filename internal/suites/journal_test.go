package suites

import (
	"bytes"
	"reflect"
	"testing"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/obs"
	"cucc/internal/simnet"
)

// journalRun executes one program at Small scale with the given journal
// scope wired through both the session (launch-path events) and the cluster
// (abort/regroup events), returning the stats and every node's full heap.
func journalRun(t *testing.T, p *Program, n int, sc obs.Scope) (*core.Stats, [][]byte) {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Nodes: n, Machine: machine.Intel6226(), Net: simnet.IB100(),
		Journal: sc,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	inst, err := p.Build(c, p.Small)
	if err != nil {
		t.Fatal(err)
	}
	sess := core.NewSession(c, p.Compiled)
	sess.Verify = true
	sess.Obs = sc
	stats, err := sess.Launch(inst.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Check(); err != nil {
		t.Fatal(err)
	}
	heaps := make([][]byte, n)
	all := cluster.Buffer{Off: 0, Elem: kir.U8, Count: c.BytesPerNode()}
	for r := 0; r < n; r++ {
		heaps[r] = append([]byte(nil), c.Region(r, all)...)
	}
	return stats, heaps
}

// TestJournalNeverMovesFigures: the event journal on vs off changes nothing
// observable about the computation — not one simulated figure, not one byte
// of any node's memory.  The journal analogue of
// TestMetricsNeverMoveFigures.
func TestJournalNeverMovesFigures(t *testing.T) {
	const n = 4
	for _, p := range allWithVecAdd() {
		t.Run(p.Name, func(t *testing.T) {
			off, offHeaps := journalRun(t, p, n, obs.Scope{})
			j := obs.NewJournal(0)
			on, onHeaps := journalRun(t, p, n, obs.Scope{J: j, Tenant: "suite", Job: 1})
			if !reflect.DeepEqual(off, on) {
				t.Errorf("stats diverge:\n  off: %+v\n  on:  %+v", off, on)
			}
			for r := 0; r < n; r++ {
				if !bytes.Equal(offHeaps[r], onHeaps[r]) {
					t.Errorf("node %d heap differs between journaled and unjournaled runs", r)
				}
			}
			// The journaled run must actually have recorded the launch.
			if j.Len() == 0 {
				t.Error("journaled run recorded no events")
			}
			for _, ev := range j.Events() {
				if ev.Tenant != "suite" || ev.Job != 1 {
					t.Errorf("event not stamped with the scope identity: %+v", ev)
				}
			}
		})
	}
}

// Package suites defines the evaluation workloads of the paper:
//
//   - The eight performance programs of §7.2-§7.4 (Transpose, FIR, Kmeans,
//     BinomialOption, EP, GA, MatMul, Conv2D) plus the VecAdd quickstart,
//     each with mini-CUDA source, a native Go backend implementation, an
//     analytic per-block work model, an analytic PGAS traffic model, and a
//     correctness checker.
//   - The coverage suites of §7.1 (Figure 7): 21 Triton-style BERT/ViT
//     kernels and 13 Hetero-Mark-style kernels.
//
// Every program can be built at two scales: Default (paper scale, driven
// through the cost models via core.Session.Estimate) and Small (reduced
// scale, really executed and checked for correctness).  Tests verify that
// the analytic models agree with real execution at small scale.
package suites

import (
	"fmt"
	"strings"
	"sync"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/kir"
	"cucc/internal/pgas"
)

// Params carries a program's workload parameters by name.
type Params map[string]int

func (p Params) clone() Params {
	q := make(Params, len(p))
	for k, v := range p {
		q[k] = v
	}
	return q
}

// Get returns a parameter or panics; workload definitions are static, so a
// missing key is a programming error.
func (p Params) Get(key string) int {
	v, ok := p[key]
	if !ok {
		panic(fmt.Sprintf("suites: missing workload parameter %q", key))
	}
	return v
}

// Instance is a built workload on a concrete cluster.
type Instance struct {
	Spec core.LaunchSpec
	// Check validates the program output on node 0 against a Go
	// reference computation.
	Check func() error
}

// Program is one evaluation program.
type Program struct {
	Name   string
	Kernel string
	Source string
	// SIMDFraction is the fraction of kernel flops the CPU backend
	// vectorizes (paper §8.3: transformed GPU code often defeats SIMD).
	SIMDFraction float64
	// GPUComputeEff / GPUMemEff derate the GPU roofline for this kernel
	// class (documented per program).
	GPUComputeEff float64
	GPUMemEff     float64
	// Compiled is the kernel module with the native registered.
	Compiled *core.Program
	// Default is the paper-scale workload; Small is the correctness
	// scale.
	Default Params
	Small   Params

	// Spec builds a launch spec with virtual (unallocated) buffers for
	// cost-model sweeps.
	Spec func(p Params) core.LaunchSpec
	// Build allocates and initializes real buffers on the cluster.
	Build func(c *cluster.Cluster, p Params) (*Instance, error)
	// Traffic is the analytic PGAS traffic model (OwnerRank0 policy) for
	// the pacing rank; nil if the program is not part of the PGAS
	// comparison.
	Traffic func(p Params, nodes int) pgas.RankTraffic
	// WeakKey names the workload parameter that scales linearly with
	// total work, for weak-scaling sweeps ("" = program excluded, e.g.
	// quadratic-size kernels).
	WeakKey string
}

// WeakParams returns the Default workload scaled by factor via WeakKey.
func (p *Program) WeakParams(factor int) Params {
	pr := p.Default.clone()
	pr[p.WeakKey] = pr.Get(p.WeakKey) * factor
	return pr
}

// All returns the eight performance-evaluation programs in figure order.
func All() []*Program {
	return []*Program{
		Transpose(), FIR(), Kmeans(), BinomialOption(),
		EP(), GA(), MatMul(), Conv2D(),
	}
}

// registry memoizes the full program list (VecAdd + the evaluation suite).
// Program construction parses and compiles kernel source, so callers that
// look up programs repeatedly (the serving layer resolves one per job)
// must share one materialization: Program values are read-only at launch
// time and safe to share across concurrent sessions.
var registry struct {
	once  sync.Once
	progs []*Program
}

// Registry returns the shared program list: VecAdd first, then the
// evaluation suite in figure order.  The returned slice is shared; callers
// must not mutate it or the programs.
func Registry() []*Program {
	registry.once.Do(func() {
		registry.progs = append([]*Program{VecAdd()}, All()...)
	})
	return registry.progs
}

// ByName resolves a program by case-insensitive name against Registry.
func ByName(name string) (*Program, bool) {
	for _, p := range Registry() {
		if strings.EqualFold(p.Name, name) {
			return p, true
		}
	}
	return nil, false
}

// ceilDiv is integer ceiling division.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// trafficOwner0 computes the exact PGAS traffic for a kernel whose blocks
// write wpb elements each (tailW for the last block) of elemSize bytes,
// under the OwnerRank0 policy with ceil-split block assignment: rank 0's
// writes are owner-local, every other rank's writes are remote puts into
// rank 0.
func trafficOwner0(blocks, nodes int, wpb, tailW, elemSize int64) pgas.RankTraffic {
	if nodes <= 1 {
		return pgas.RankTraffic{LocalOps: int64(blocks-1)*wpb + tailW}
	}
	perRank := ceilDiv(blocks, nodes)
	writesOf := func(rank int) int64 {
		lo := rank * perRank
		hi := min(lo+perRank, blocks)
		if hi <= lo {
			return 0
		}
		w := int64(hi-lo) * wpb
		if hi == blocks {
			w += tailW - wpb // replace the tail block's contribution
		}
		return w
	}
	var tr pgas.RankTraffic
	tr.LocalOps = writesOf(0)
	total := int64(0)
	for r := 1; r < nodes; r++ {
		w := writesOf(r)
		total += w
		if w > tr.Puts {
			tr.Puts = w
		}
	}
	tr.PutBytes = tr.Puts * elemSize
	tr.IncastPuts = total
	return tr
}

// checkF32 compares node 0's buffer against expected values exactly.
func checkF32(c *cluster.Cluster, buf cluster.Buffer, want []float32, name string) func() error {
	return func() error {
		got := c.ReadF32(0, buf)
		if len(got) != len(want) {
			return fmt.Errorf("%s: output length %d, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("%s: out[%d] = %g, want %g", name, i, got[i], want[i])
			}
		}
		return nil
	}
}

// checkI32 compares node 0's int buffer against expected values.
func checkI32(c *cluster.Cluster, buf cluster.Buffer, want []int32, name string) func() error {
	return func() error {
		got := c.ReadI32(0, buf)
		if len(got) != len(want) {
			return fmt.Errorf("%s: output length %d, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("%s: out[%d] = %d, want %d", name, i, got[i], want[i])
			}
		}
		return nil
	}
}

// virtualBuf builds a buffer descriptor without allocation, for Estimate
// sweeps.
func virtualBuf(elem kir.ScalarType, count int) cluster.Buffer {
	return cluster.Buffer{Elem: elem, Count: count}
}

package suites

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/metrics"
	"cucc/internal/recovery"
	"cucc/internal/simnet"
	"cucc/internal/trace"
	"cucc/internal/transport"
)

// Rank-loss chaos: a deterministic kill fault crashes one rank mid-launch
// (at a seeded transport op of that rank's own program order).  Under an
// enabled recovery policy the launch must complete anyway — checkpoint
// restore, re-partition over the survivors, replay — with every node's heap
// bitwise identical to a fault-free run, and the recovery instrumentation
// (stats.Restores, recovery.restores counter, PhaseRecovery span, the fault
// layer's kill count) must prove the recovery path actually ran rather than
// a silent fault-free rerun.

type recoveryResult struct {
	heaps [][]byte
	stats *core.Stats
	snap  metrics.Snapshot
	evs   []trace.Event
	kills int64
}

// recoveryRun launches one program on a fresh 4-node cluster with the given
// fault config and recovery policy, returning per-node heap snapshots and
// the run's instrumentation.
func recoveryRun(t *testing.T, p *Program, fc *transport.FaultConfig, pol recovery.Policy) (*recoveryResult, error) {
	t.Helper()
	reg := metrics.New()
	c, err := cluster.New(cluster.Config{
		Nodes: 4, Machine: machine.Intel6226(), Net: simnet.IB100(),
		RecvTimeout: 5 * time.Second,
		Fault:       fc,
		Metrics:     reg,
		Recovery:    pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	inst, err := p.Build(c, p.Small)
	if err != nil {
		t.Fatal(err)
	}
	sess := core.NewSession(c, p.Compiled)
	sess.Verify = true
	sess.Trace = trace.New()
	done := make(chan error, 1)
	var stats *core.Stats
	go func() {
		st, err := sess.Launch(inst.Spec)
		stats = st
		done <- err
	}()
	select {
	case err := <-done:
		res := &recoveryResult{
			stats: stats,
			snap:  reg.Snapshot(),
			evs:   sess.Trace.Events(),
			kills: c.Faults().Kills,
		}
		if err != nil {
			return res, err
		}
		if err := inst.Check(); err != nil {
			t.Fatalf("completed run failed its checker: %v", err)
		}
		for r := 0; r < 4; r++ {
			all := cluster.Buffer{Off: 0, Elem: kir.U8, Count: c.BytesPerNode()}
			res.heaps = append(res.heaps, append([]byte(nil), c.Region(r, all)...))
		}
		return res, nil
	case <-time.After(60 * time.Second):
		t.Fatalf("%s hung under rank-loss injection", p.Name)
		return nil, nil
	}
}

// killAt returns a fault config whose only fault is a deterministic crash
// of rank 1 at its op-th transport operation.
func killAt(op int) *transport.FaultConfig {
	return &transport.FaultConfig{Seed: 1, KillRank: 1, KillAtOp: op}
}

func hasPhase(evs []trace.Event, phase string) bool {
	for _, ev := range evs {
		if ev.Phase == phase {
			return true
		}
	}
	return false
}

// TestChaosRankLossRecoversBitwiseIdentical kills rank 1 at a seeded
// transport op during the Allgather and requires the recovered run to be
// indistinguishable, heap-for-heap on every node, from a fault-free run.
func TestChaosRankLossRecoversBitwiseIdentical(t *testing.T) {
	pol := recovery.Policy{Enabled: true}
	for _, p := range allWithVecAdd() {
		t.Run(p.Name, func(t *testing.T) {
			ref, err := recoveryRun(t, p, &transport.FaultConfig{Seed: 1}, recovery.Policy{})
			if err != nil {
				t.Fatal(err)
			}
			if !ref.stats.Distributed || ref.stats.CommMsgs == 0 {
				t.Skipf("%s does not exercise the distributed Allgather at Small scale", p.Name)
			}
			got, err := recoveryRun(t, p, killAt(2), pol)
			if err != nil {
				t.Fatalf("rank loss must be recovered, got %v", err)
			}
			// Prove the recovery path ran: the kill fired, a restore was
			// counted in stats and the registry, the lost node was
			// attributed, and the trace carries the recovery span.
			if got.kills == 0 {
				t.Fatal("kill fault never fired; test proved nothing")
			}
			if got.stats.Restores < 1 {
				t.Fatalf("stats.Restores = %d, want >= 1", got.stats.Restores)
			}
			if len(got.stats.LostNodes) != 1 || got.stats.LostNodes[0] != 1 {
				t.Errorf("stats.LostNodes = %v, want [1]", got.stats.LostNodes)
			}
			if n := got.snap.Counters[recovery.MetricRestores]; n < 1 {
				t.Errorf("%s = %d, want >= 1", recovery.MetricRestores, n)
			}
			if n := got.snap.Counters[recovery.MetricRepartitions]; n < 1 {
				t.Errorf("%s = %d, want >= 1 (start-cursor replay re-partitions)", recovery.MetricRepartitions, n)
			}
			if n := got.snap.Counters[recovery.MetricCheckpoints]; n < 1 {
				t.Errorf("%s = %d, want >= 1", recovery.MetricCheckpoints, n)
			}
			if n := got.snap.Counters[recovery.MetricRejoins]; n != 1 {
				t.Errorf("%s = %d, want 1", recovery.MetricRejoins, n)
			}
			if !hasPhase(got.evs, trace.PhaseRecovery) {
				t.Error("trace has no recovery span")
			}
			// Bitwise identity on every node, including the repaired one.
			for r := range got.heaps {
				if !bytes.Equal(ref.heaps[r], got.heaps[r]) {
					t.Errorf("node %d heap differs from fault-free run after recovery", r)
				}
			}
		})
	}
}

// TestChaosRankLossWithoutRecoveryFailsCleanly pins the pre-recovery
// contract: with the policy disabled the same kill fails the launch with
// the crash cause intact (transport.ErrKilled survives the error chain) and
// never hangs.
func TestChaosRankLossWithoutRecoveryFailsCleanly(t *testing.T) {
	for _, p := range allWithVecAdd() {
		t.Run(p.Name, func(t *testing.T) {
			ref, err := recoveryRun(t, p, &transport.FaultConfig{Seed: 1}, recovery.Policy{})
			if err != nil {
				t.Fatal(err)
			}
			if !ref.stats.Distributed || ref.stats.CommMsgs == 0 {
				t.Skipf("%s does not exercise the distributed Allgather at Small scale", p.Name)
			}
			got, err := recoveryRun(t, p, killAt(2), recovery.Policy{})
			if err == nil {
				t.Fatal("kill with recovery disabled must fail the launch")
			}
			if !errors.Is(err, transport.ErrKilled) {
				t.Errorf("crash cause lost: %v", err)
			}
			if got.snap.Counters[recovery.MetricRestores] != 0 {
				t.Error("restore counted with recovery disabled")
			}
		})
	}
}

// TestChaosRankLossPolicyLimits: a MinRanks floor above the survivor count
// makes the same failure unrecoverable — the launch fails with the cause
// intact instead of replaying below the floor.
func TestChaosRankLossPolicyLimits(t *testing.T) {
	p := VecAdd()
	ref, err := recoveryRun(t, p, &transport.FaultConfig{Seed: 1}, recovery.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.stats.Distributed || ref.stats.CommMsgs == 0 {
		t.Skip("VecAdd not distributed at Small scale")
	}
	got, err := recoveryRun(t, p, killAt(2), recovery.Policy{Enabled: true, MinRanks: 4})
	if err == nil {
		t.Fatal("recovery below MinRanks must fail")
	}
	if !errors.Is(err, transport.ErrKilled) {
		t.Errorf("crash cause lost: %v", err)
	}
	if got.snap.Counters[recovery.MetricRestores] != 0 {
		t.Error("restore counted despite MinRanks floor")
	}
}

package suites

import (
	"math/rand"
	"testing"
)

func histData(n int) []byte {
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(rng.Intn(64))
	}
	return data
}

func TestHistogramClassification(t *testing.T) {
	atomicProg, ported := HistogramPrograms()
	if atomicProg.Meta["hist_atomic"].Distributable {
		t.Error("atomic histogram must not be distributable (overlapping writes)")
	}
	if !ported.Meta["hist_private"].Distributable {
		t.Errorf("privatized kernel must be distributable: %s", ported.Meta["hist_private"].Summary())
	}
	if !ported.Meta["hist_reduce"].Distributable {
		t.Errorf("reduce kernel must be distributable: %s", ported.Meta["hist_reduce"].Summary())
	}
	if !ported.Meta["hist_reduce"].TailDivergent {
		t.Error("reduce kernel should be tail-divergent (bin bound check)")
	}
}

func TestHistogramPortedMatchesAtomic(t *testing.T) {
	const n, nbins = 5000, 64
	data := histData(n)
	for _, nodes := range []int{1, 2, 4} {
		ca := newCluster(t, nodes)
		atomicBins, atomicStats, err := RunHistogramAtomic(ca, data, nbins)
		if err != nil {
			t.Fatal(err)
		}
		cp := newCluster(t, nodes)
		portedBins, portedStats, err := RunHistogramPorted(cp, data, nbins)
		if err != nil {
			t.Fatal(err)
		}
		if nodes > 1 {
			if atomicStats.Distributed {
				t.Error("atomic version distributed; expected trivial replication")
			}
			if !portedStats[0].Distributed {
				t.Error("privatized kernel not distributed")
			}
		}
		// Both agree with each other and with a direct count.
		want := make([]int32, nbins)
		for _, b := range data {
			want[HistBin(b)]++
		}
		for i := 0; i < nbins; i++ {
			if atomicBins[i] != want[i] {
				t.Fatalf("nodes=%d: atomic bins[%d] = %d, want %d", nodes, i, atomicBins[i], want[i])
			}
			if portedBins[i] != want[i] {
				t.Fatalf("nodes=%d: ported bins[%d] = %d, want %d", nodes, i, portedBins[i], want[i])
			}
		}
	}
}

func TestHistogramPortedScalesBetter(t *testing.T) {
	// The whole point of the rewrite: with the trivial fallback every node
	// repeats all the work, so the ported pipeline's simulated time must
	// win on a multi-node cluster.
	const n, nbins = 200000, 64
	data := histData(n)
	ca := newCluster(t, 8)
	_, atomicStats, err := RunHistogramAtomic(ca, data, nbins)
	if err != nil {
		t.Fatal(err)
	}
	cp := newCluster(t, 8)
	_, portedStats, err := RunHistogramPorted(cp, data, nbins)
	if err != nil {
		t.Fatal(err)
	}
	portedTotal := portedStats[0].TotalSec + portedStats[1].TotalSec
	if portedTotal >= atomicStats.TotalSec {
		t.Errorf("ported pipeline (%.1fus) not faster than replicated atomic (%.1fus) on 8 nodes",
			portedTotal*1e6, atomicStats.TotalSec*1e6)
	}
}

func TestHistogramBinLimit(t *testing.T) {
	c := newCluster(t, 1)
	if _, _, err := RunHistogramPorted(c, histData(100), 300); err == nil {
		t.Error("over-limit bin count accepted")
	}
}

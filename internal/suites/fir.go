package suites

import (
	"math/rand"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/pgas"
)

const firSrc = `
__global__ void fir(float* in, float* out, float* coeff, int n, int taps) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        float sum = 0.0f;
        for (int t = 0; t < taps; t++)
            sum += coeff[t] * in[id + t];
        out[id] = sum;
    }
}
`

const firBlock = 256

// FIR is the finite-impulse-response filter: the paper's showcase for
// near-linear scalability (heavy per-thread computation, small
// communication relative to compute; §7.2).
func FIR() *Program {
	prog := core.MustCompile(firSrc)
	must(prog.RegisterNative("fir", core.Native{
		RunBlock: func(mem interp.Memory, args []interp.Value, grid, block interp.Dim3, bx, by int) error {
			n := int(args[3].I)
			taps := int(args[4].I)
			for tx := 0; tx < block.X; tx++ {
				id := block.X*bx + tx
				if id >= n {
					continue
				}
				var sum float32
				for t := 0; t < taps; t++ {
					sum += mem.LoadF32(2, t) * mem.LoadF32(0, id+t)
				}
				mem.StoreF32(1, id, sum)
			}
			return nil
		},
		BlockWork: func(args []interp.Value, grid, block interp.Dim3) machine.BlockWork {
			t := float64(block.X)
			taps := float64(args[4].I)
			return machine.BlockWork{
				VecFlops: t * taps * 2,
				IntOps:   t * taps * 2,
				// Streaming reads: each thread's window overlaps its
				// neighbor's, so per block roughly (blockDim + taps)
				// fresh input elements plus the coefficient vector (which
				// stays cached) and blockDim outputs.
				Bytes: (t + taps + t) * 4,
			}
		},
	}))

	p := &Program{
		Name:          "FIR",
		Kernel:        "fir",
		Source:        firSrc,
		SIMDFraction:  1.0, // the thread loop vectorizes; taps loop is a reduction per lane
		GPUComputeEff: 0.85,
		GPUMemEff:     0.8,
		Compiled:      prog,
		Default:       Params{"n": 16384 * firBlock, "taps": 131072},
		WeakKey:       "n",
		Small:         Params{"n": 2000, "taps": 32},
	}
	spec := func(pr Params, in, out, coeff cluster.Buffer) core.LaunchSpec {
		n := pr.Get("n")
		return core.LaunchSpec{
			Kernel: "fir",
			Grid:   interp.Dim1(ceilDiv(n, firBlock)),
			Block:  interp.Dim1(firBlock),
			Args: []core.Arg{
				core.BufArg(in), core.BufArg(out), core.BufArg(coeff),
				core.IntArg(int64(n)), core.IntArg(int64(pr.Get("taps"))),
			},
			SIMDFraction: p.SIMDFraction,
		}
	}
	p.Spec = func(pr Params) core.LaunchSpec {
		n, taps := pr.Get("n"), pr.Get("taps")
		return spec(pr, virtualBuf(kir.F32, n+taps), virtualBuf(kir.F32, n), virtualBuf(kir.F32, taps))
	}
	p.Build = func(c *cluster.Cluster, pr Params) (*Instance, error) {
		n, taps := pr.Get("n"), pr.Get("taps")
		rng := rand.New(rand.NewSource(2))
		ins := make([]float32, n+taps)
		for i := range ins {
			ins[i] = rng.Float32() - 0.5
		}
		cf := make([]float32, taps)
		for i := range cf {
			cf[i] = rng.Float32() * 0.1
		}
		want := make([]float32, n)
		for i := 0; i < n; i++ {
			var sum float32
			for t := 0; t < taps; t++ {
				sum += cf[t] * ins[i+t]
			}
			want[i] = sum
		}
		in := c.Alloc(kir.F32, n+taps)
		out := c.Alloc(kir.F32, n)
		coeff := c.Alloc(kir.F32, taps)
		if err := c.WriteAllF32(in, ins); err != nil {
			return nil, err
		}
		if err := c.WriteAllF32(coeff, cf); err != nil {
			return nil, err
		}
		return &Instance{
			Spec:  spec(pr, in, out, coeff),
			Check: checkF32(c, out, want, "fir"),
		}, nil
	}
	p.Traffic = func(pr Params, nodes int) pgas.RankTraffic {
		n := pr.Get("n")
		blocks := ceilDiv(n, firBlock)
		tail := int64(n - (blocks-1)*firBlock)
		return trafficOwner0(blocks, nodes, firBlock, tail, 4)
	}
	return p
}

package suites

import (
	"math/rand"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/pgas"
)

const conv2dSrc = `
__global__ void conv2d(float* in, float* out, float* kern, int tiles, int cin) {
    int w = tiles * blockDim.x;
    int row = blockIdx.x;
    for (int t = 0; t < tiles; t++) {
        int col = t * blockDim.x + threadIdx.x;
        float sum = 0.0f;
        for (int ci = 0; ci < cin; ci++) {
            for (int ky = 0; ky < 5; ky++) {
                for (int kx = 0; kx < 5; kx++) {
                    sum += kern[ci * 25 + ky * 5 + kx] * in[(ci * (gridDim.x + 4) + row + ky) * (w + 4) + col + kx];
                }
            }
        }
        out[row * w + col] = sum;
    }
}
`

const conv2dBlock = 256

// Conv2D applies a 5x5 multi-channel stencil over a padded image, one
// output row per block: the compute-heavy convolution shape of AI
// workloads, with high arithmetic intensity and plenty of blocks.
func Conv2D() *Program {
	prog := core.MustCompile(conv2dSrc)
	must(prog.RegisterNative("conv2d", core.Native{
		RunBlock: func(mem interp.Memory, args []interp.Value, grid, block interp.Dim3, bx, by int) error {
			tiles := int(args[3].I)
			cin := int(args[4].I)
			w := tiles * block.X
			h := grid.X
			row := bx
			for t := 0; t < tiles; t++ {
				for tx := 0; tx < block.X; tx++ {
					col := t*block.X + tx
					var sum float32
					for ci := 0; ci < cin; ci++ {
						for ky := 0; ky < 5; ky++ {
							for kx := 0; kx < 5; kx++ {
								sum += mem.LoadF32(2, ci*25+ky*5+kx) *
									mem.LoadF32(0, (ci*(h+4)+row+ky)*(w+4)+col+kx)
							}
						}
					}
					mem.StoreF32(1, row*w+col, sum)
				}
			}
			return nil
		},
		BlockWork: func(args []interp.Value, grid, block interp.Dim3) machine.BlockWork {
			w := float64(int(args[3].I) * block.X)
			cin := float64(args[4].I)
			return machine.BlockWork{
				VecFlops: w * cin * 50,
				IntOps:   w * cin * 30,
				// Adjacent rows are shared with neighboring blocks; the
				// compulsory traffic is about one padded input row per
				// channel plus the output row.
				Bytes: (cin*(w+4) + w) * 4,
			}
		},
	}))

	p := &Program{
		Name:          "Conv2D",
		Kernel:        "conv2d",
		Source:        conv2dSrc,
		SIMDFraction:  1.0,
		GPUComputeEff: 0.85,
		GPUMemEff:     0.8,
		Compiled:      prog,
		Default:       Params{"tiles": 4, "h": 1024, "cin": 1024}, // 1024x1024x1024
		WeakKey:       "h",
		Small:         Params{"tiles": 1, "h": 8, "cin": 2},
	}
	mkSpec := func(pr Params, in, out, kern cluster.Buffer) core.LaunchSpec {
		return core.LaunchSpec{
			Kernel: "conv2d",
			Grid:   interp.Dim1(pr.Get("h")),
			Block:  interp.Dim1(conv2dBlock),
			Args: []core.Arg{
				core.BufArg(in), core.BufArg(out), core.BufArg(kern),
				core.IntArg(int64(pr.Get("tiles"))), core.IntArg(int64(pr.Get("cin"))),
			},
			SIMDFraction: p.SIMDFraction,
		}
	}
	p.Spec = func(pr Params) core.LaunchSpec {
		w := pr.Get("tiles") * conv2dBlock
		h := pr.Get("h")
		cin := pr.Get("cin")
		return mkSpec(pr, virtualBuf(kir.F32, cin*(h+4)*(w+4)), virtualBuf(kir.F32, h*w), virtualBuf(kir.F32, cin*25))
	}
	p.Build = func(c *cluster.Cluster, pr Params) (*Instance, error) {
		w := pr.Get("tiles") * conv2dBlock
		h := pr.Get("h")
		cin := pr.Get("cin")
		rng := rand.New(rand.NewSource(7))
		img := make([]float32, cin*(h+4)*(w+4))
		for i := range img {
			img[i] = rng.Float32()
		}
		kn := make([]float32, cin*25)
		for i := range kn {
			kn[i] = rng.Float32() * 0.05
		}
		want := make([]float32, h*w)
		for r := 0; r < h; r++ {
			for cc := 0; cc < w; cc++ {
				var sum float32
				for ci := 0; ci < cin; ci++ {
					for ky := 0; ky < 5; ky++ {
						for kx := 0; kx < 5; kx++ {
							sum += kn[ci*25+ky*5+kx] * img[(ci*(h+4)+r+ky)*(w+4)+cc+kx]
						}
					}
				}
				want[r*w+cc] = sum
			}
		}
		in := c.Alloc(kir.F32, cin*(h+4)*(w+4))
		out := c.Alloc(kir.F32, h*w)
		kern := c.Alloc(kir.F32, cin*25)
		if err := c.WriteAllF32(in, img); err != nil {
			return nil, err
		}
		if err := c.WriteAllF32(kern, kn); err != nil {
			return nil, err
		}
		return &Instance{
			Spec:  mkSpec(pr, in, out, kern),
			Check: checkF32(c, out, want, "conv2d"),
		}, nil
	}
	p.Traffic = func(pr Params, nodes int) pgas.RankTraffic {
		w := pr.Get("tiles") * conv2dBlock
		h := pr.Get("h")
		return trafficOwner0(h, nodes, int64(w), int64(w), 4)
	}
	return p
}

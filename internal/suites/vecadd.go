package suites

import (
	"math/rand"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/pgas"
)

const vecAddSrc = `
__global__ void vecadd(float* a, float* b, float* c, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n)
        c[id] = a[id] + b[id];
}
`

const vecAddBlock = 256

// VecAdd is the quickstart program: element-wise vector addition with a
// tail-divergent bound check (the paper's Listing 1 shape).
func VecAdd() *Program {
	prog := core.MustCompile(vecAddSrc)
	must(prog.RegisterNative("vecadd", core.Native{
		RunBlock: func(mem interp.Memory, args []interp.Value, grid, block interp.Dim3, bx, by int) error {
			n := int(args[3].I)
			for tx := 0; tx < block.X; tx++ {
				id := block.X*bx + tx
				if id < n {
					mem.StoreF32(2, id, mem.LoadF32(0, id)+mem.LoadF32(1, id))
				}
			}
			return nil
		},
		BlockWork: func(args []interp.Value, grid, block interp.Dim3) machine.BlockWork {
			t := float64(block.X)
			return machine.BlockWork{VecFlops: t, IntOps: 3 * t, Bytes: 12 * t}
		},
	}))

	p := &Program{
		Name:          "VecAdd",
		Kernel:        "vecadd",
		Source:        vecAddSrc,
		SIMDFraction:  1.0,
		GPUComputeEff: 0.8,
		GPUMemEff:     0.8,
		Compiled:      prog,
		Default:       Params{"n": 64 << 20},
		WeakKey:       "n",
		Small:         Params{"n": 5000},
	}
	spec := func(pr Params, a, b, c cluster.Buffer) core.LaunchSpec {
		n := pr.Get("n")
		return core.LaunchSpec{
			Kernel:       "vecadd",
			Grid:         interp.Dim1(ceilDiv(n, vecAddBlock)),
			Block:        interp.Dim1(vecAddBlock),
			Args:         []core.Arg{core.BufArg(a), core.BufArg(b), core.BufArg(c), core.IntArg(int64(n))},
			SIMDFraction: p.SIMDFraction,
		}
	}
	p.Spec = func(pr Params) core.LaunchSpec {
		n := pr.Get("n")
		return spec(pr, virtualBuf(kir.F32, n), virtualBuf(kir.F32, n), virtualBuf(kir.F32, n))
	}
	p.Build = func(c *cluster.Cluster, pr Params) (*Instance, error) {
		n := pr.Get("n")
		rng := rand.New(rand.NewSource(1))
		as := make([]float32, n)
		bs := make([]float32, n)
		want := make([]float32, n)
		for i := range as {
			as[i] = rng.Float32()
			bs[i] = rng.Float32()
			want[i] = as[i] + bs[i]
		}
		a := c.Alloc(kir.F32, n)
		b := c.Alloc(kir.F32, n)
		out := c.Alloc(kir.F32, n)
		if err := c.WriteAllF32(a, as); err != nil {
			return nil, err
		}
		if err := c.WriteAllF32(b, bs); err != nil {
			return nil, err
		}
		return &Instance{
			Spec:  spec(pr, a, b, out),
			Check: checkF32(c, out, want, "vecadd"),
		}, nil
	}
	p.Traffic = func(pr Params, nodes int) pgas.RankTraffic {
		n := pr.Get("n")
		blocks := ceilDiv(n, vecAddBlock)
		tail := int64(n - (blocks-1)*vecAddBlock)
		return trafficOwner0(blocks, nodes, vecAddBlock, tail, 4)
	}
	return p
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

package suites

import (
	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/pgas"
)

const transposeSrc = `
__global__ void transpose(float* in, float* out, int tiles) {
    int n = tiles * blockDim.x;
    for (int t = 0; t < tiles; t++) {
        int col = t * blockDim.x + threadIdx.x;
        out[blockIdx.x * n + col] = in[col * n + blockIdx.x];
    }
}
`

const transposeBlock = 256

// stridedReadBytes is the effective traffic of one column-strided read:
// a full cache line per useful element plus latency-limited prefetch
// inefficiency.  The amplification makes transpose memory-pathological on
// both CPU and GPU and lets large CPU caches win (paper §7.4.1).
const stridedReadBytes = 256

// Transpose is the matrix transpose: block b produces output row b from a
// strided column read.  Memory movement only; the paper's example of
// communication-limited scaling (§7.2) and of CPUs beating GPUs via LLC
// capacity (§7.4.1).
func Transpose() *Program {
	prog := core.MustCompile(transposeSrc)
	must(prog.RegisterNative("transpose", core.Native{
		RunBlock: func(mem interp.Memory, args []interp.Value, grid, block interp.Dim3, bx, by int) error {
			tiles := int(args[2].I)
			n := tiles * block.X
			for t := 0; t < tiles; t++ {
				for tx := 0; tx < block.X; tx++ {
					col := t*block.X + tx
					mem.StoreF32(1, bx*n+col, mem.LoadF32(0, col*n+bx))
				}
			}
			return nil
		},
		BlockWork: func(args []interp.Value, grid, block interp.Dim3) machine.BlockWork {
			n := float64(int(args[2].I) * block.X)
			return machine.BlockWork{
				IntOps: 6 * n,
				// n coalesced writes + n strided reads with line-granular
				// amplification.
				Bytes: n*4 + n*stridedReadBytes,
			}
		},
	}))

	p := &Program{
		Name:          "Transpose",
		Kernel:        "transpose",
		Source:        transposeSrc,
		SIMDFraction:  1.0,
		GPUComputeEff: 0.6,
		GPUMemEff:     1.0, // GPU sector-granular coalescing absorbs part of the stride amplification
		Compiled:      prog,
		Default:       Params{"tiles": 16}, // n = 4096, 64 MB matrix
		Small:         Params{"tiles": 2},  // n = 512 at block 256
	}
	mkSpec := func(pr Params, in, out cluster.Buffer) core.LaunchSpec {
		tiles := pr.Get("tiles")
		n := tiles * transposeBlock
		return core.LaunchSpec{
			Kernel:       "transpose",
			Grid:         interp.Dim1(n),
			Block:        interp.Dim1(transposeBlock),
			Args:         []core.Arg{core.BufArg(in), core.BufArg(out), core.IntArg(int64(tiles))},
			SIMDFraction: p.SIMDFraction,
		}
	}
	p.Spec = func(pr Params) core.LaunchSpec {
		n := pr.Get("tiles") * transposeBlock
		return mkSpec(pr, virtualBuf(kir.F32, n*n), virtualBuf(kir.F32, n*n))
	}
	p.Build = func(c *cluster.Cluster, pr Params) (*Instance, error) {
		n := pr.Get("tiles") * transposeBlock
		ins := make([]float32, n*n)
		want := make([]float32, n*n)
		for r := 0; r < n; r++ {
			for cc := 0; cc < n; cc++ {
				v := float32(r*n+cc) * 0.25
				ins[r*n+cc] = v
				want[cc*n+r] = v
			}
		}
		in := c.Alloc(kir.F32, n*n)
		out := c.Alloc(kir.F32, n*n)
		if err := c.WriteAllF32(in, ins); err != nil {
			return nil, err
		}
		return &Instance{
			Spec:  mkSpec(pr, in, out),
			Check: checkF32(c, out, want, "transpose"),
		}, nil
	}
	p.Traffic = func(pr Params, nodes int) pgas.RankTraffic {
		n := pr.Get("tiles") * transposeBlock
		// n blocks, each writing one n-element row; no tail block.
		return trafficOwner0(n, nodes, int64(n), int64(n), 4)
	}
	return p
}

package suites

import (
	"cucc/internal/analysis"
	"cucc/internal/lang"
)

// CoverageKernel is one kernel of the §7.1 coverage study (Figure 7).
type CoverageKernel struct {
	Suite  string // "BERT", "ViT", "Hetero-Mark"
	Name   string
	Source string
	// WantDistributable is the paper-reported classification.
	WantDistributable bool
	// WantReason is the expected rejection class for non-distributable
	// kernels (ReasonOK otherwise).
	WantReason analysis.Reason
}

// Classify runs the Allgather-distributable analysis on the kernel.
func (ck CoverageKernel) Classify() *analysis.Metadata {
	mod := lang.MustParse(ck.Source)
	return analysis.Analyze(mod.Kernels[0])
}

// CoverageSuite returns all 34 kernels of the coverage evaluation:
// 11 BERT + 10 ViT Triton-generated-style kernels (all distributable in
// the paper) and 13 Hetero-Mark-style hand-written CUDA kernels (8
// distributable, 4 with overlapping write intervals, 1 with indirect
// memory access).
func CoverageSuite() []CoverageKernel {
	var out []CoverageKernel
	out = append(out, bertKernels()...)
	out = append(out, vitKernels()...)
	out = append(out, heteroMarkKernels()...)
	return out
}

// CoverageCounts tallies classifications per suite: the Figure 7 bars.
type CoverageCounts struct {
	Suite         string
	Total         int
	Distributable int
	Overlap       int
	Indirect      int
	Other         int
}

// CountCoverage runs the analysis over the whole suite and aggregates.
func CountCoverage() []CoverageCounts {
	order := []string{"BERT", "ViT", "Hetero-Mark"}
	byName := map[string]*CoverageCounts{}
	for _, s := range order {
		byName[s] = &CoverageCounts{Suite: s}
	}
	for _, ck := range CoverageSuite() {
		cc := byName[ck.Suite]
		cc.Total++
		md := ck.Classify()
		switch {
		case md.Distributable:
			cc.Distributable++
		case md.Reason == analysis.ReasonOverlap:
			cc.Overlap++
		case md.Reason == analysis.ReasonIndirect:
			cc.Indirect++
		default:
			cc.Other++
		}
	}
	out := make([]CoverageCounts, 0, len(order))
	for _, s := range order {
		out = append(out, *byName[s])
	}
	return out
}

// --- BERT kernels (Triton-style: flat indices, explicit bound masks) ---

func bertKernels() []CoverageKernel {
	mk := func(name, src string) CoverageKernel {
		return CoverageKernel{Suite: "BERT", Name: name, Source: src, WantDistributable: true}
	}
	return []CoverageKernel{
		mk("bert_embedding_lookup", `
__global__ void bert_embedding_lookup(int* ids, float* table, float* out, int n, int hidden) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        int tok = id / hidden;
        int h = id % hidden;
        out[id] = table[ids[tok] * hidden + h];
    }
}`),
		mk("bert_embedding_add", `
__global__ void bert_embedding_add(float* word, float* pos, float* seg, float* out, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        out[id] = word[id] + pos[id] + seg[id];
}`),
		mk("bert_layernorm", `
__global__ void bert_layernorm(float* x, float* gamma, float* beta, float* out, int rows, int hidden) {
    int row = blockIdx.x * blockDim.x + threadIdx.x;
    if (row < rows) {
        float mean = 0.0f;
        for (int c = 0; c < hidden; c++)
            mean += x[row * hidden + c];
        mean = mean / (float)hidden;
        float var = 0.0f;
        for (int c = 0; c < hidden; c++) {
            float d = x[row * hidden + c] - mean;
            var += d * d;
        }
        float inv = 1.0f / sqrtf(var / (float)hidden + 0.00001f);
        for (int c = 0; c < hidden; c++)
            out[row * hidden + c] = (x[row * hidden + c] - mean) * inv * gamma[c] + beta[c];
    }
}
`),
		mk("bert_qkv_matmul", `
__global__ void bert_qkv_matmul(float* x, float* w, float* out, int tiles, int k) {
    int width = tiles * blockDim.x;
    int row = blockIdx.x;
    for (int t = 0; t < tiles; t++) {
        int col = t * blockDim.x + threadIdx.x;
        float acc = 0.0f;
        for (int j = 0; j < k; j++)
            acc += x[row * k + j] * w[j * width + col];
        out[row * width + col] = acc;
    }
}`),
		mk("bert_attention_scores", `
__global__ void bert_attention_scores(float* q, float* km, float* out, int tiles, int d, float scale) {
    int cols = tiles * blockDim.x;
    int row = blockIdx.x;
    for (int t = 0; t < tiles; t++) {
        int col = t * blockDim.x + threadIdx.x;
        float acc = 0.0f;
        for (int j = 0; j < d; j++)
            acc += q[row * d + j] * km[col * d + j];
        out[row * cols + col] = acc * scale;
    }
}`),
		mk("bert_softmax", `
__global__ void bert_softmax(float* x, float* out, int rows, int cols) {
    int row = blockIdx.x * blockDim.x + threadIdx.x;
    if (row < rows) {
        float maxv = -1e30f;
        for (int c = 0; c < cols; c++) {
            float v = x[row * cols + c];
            if (v > maxv) maxv = v;
        }
        float sum = 0.0f;
        for (int c = 0; c < cols; c++)
            sum += expf(x[row * cols + c] - maxv);
        for (int c = 0; c < cols; c++)
            out[row * cols + c] = expf(x[row * cols + c] - maxv) / sum;
    }
}
`),
		mk("bert_attention_context", `
__global__ void bert_attention_context(float* probs, float* v, float* out, int tiles, int seq) {
    int d = tiles * blockDim.x;
    int row = blockIdx.x;
    for (int t = 0; t < tiles; t++) {
        int col = t * blockDim.x + threadIdx.x;
        float acc = 0.0f;
        for (int j = 0; j < seq; j++)
            acc += probs[row * seq + j] * v[j * d + col];
        out[row * d + col] = acc;
    }
}`),
		mk("bert_bias_gelu", `
__global__ void bert_bias_gelu(float* x, float* bias, float* out, int n, int width) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        float v = x[id] + bias[id % width];
        out[id] = 0.5f * v * (1.0f + tanhf(0.7978845f * (v + 0.044715f * v * v * v)));
    }
}`),
		mk("bert_residual_add", `
__global__ void bert_residual_add(float* x, float* res, float* out, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        out[id] = x[id] + res[id];
}`),
		mk("bert_dropout", `
__global__ void bert_dropout(float* x, char* mask, float* out, int n, float scale) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        out[id] = mask[id] > 0 ? x[id] * scale : 0.0f;
}`),
		mk("bert_pooler_tanh", `
__global__ void bert_pooler_tanh(float* x, float* w, float* out, int tiles, int k) {
    int width = tiles * blockDim.x;
    int row = blockIdx.x;
    for (int t = 0; t < tiles; t++) {
        int col = t * blockDim.x + threadIdx.x;
        float acc = 0.0f;
        for (int j = 0; j < k; j++)
            acc += x[row * k + j] * w[j * width + col];
        out[row * width + col] = tanhf(acc);
    }
}`),
	}
}

// --- ViT kernels ---

func vitKernels() []CoverageKernel {
	mk := func(name, src string) CoverageKernel {
		return CoverageKernel{Suite: "ViT", Name: name, Source: src, WantDistributable: true}
	}
	return []CoverageKernel{
		mk("vit_patch_embed", `
__global__ void vit_patch_embed(float* img, float* w, float* out, int tiles, int patch) {
    int d = tiles * blockDim.x;
    int p = blockIdx.x;
    for (int t = 0; t < tiles; t++) {
        int col = t * blockDim.x + threadIdx.x;
        float acc = 0.0f;
        for (int j = 0; j < patch; j++)
            acc += img[p * patch + j] * w[j * d + col];
        out[p * d + col] = acc;
    }
}`),
		mk("vit_cls_concat", `
__global__ void vit_cls_concat(float* cls, float* patches, float* out, int n, int d) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        out[id] = id < d ? cls[id] : patches[id - d];
}`),
		mk("vit_pos_add", `
__global__ void vit_pos_add(float* x, float* pos, float* out, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        out[id] = x[id] + pos[id];
}`),
		mk("vit_layernorm", `
__global__ void vit_layernorm(float* x, float* gamma, float* beta, float* out, int rows, int hidden) {
    int row = blockIdx.x * blockDim.x + threadIdx.x;
    if (row < rows) {
        float mean = 0.0f;
        for (int c = 0; c < hidden; c++)
            mean += x[row * hidden + c];
        mean = mean / (float)hidden;
        float var = 0.0f;
        for (int c = 0; c < hidden; c++) {
            float d = x[row * hidden + c] - mean;
            var += d * d;
        }
        float inv = 1.0f / sqrtf(var / (float)hidden + 0.00001f);
        for (int c = 0; c < hidden; c++)
            out[row * hidden + c] = (x[row * hidden + c] - mean) * inv * gamma[c] + beta[c];
    }
}
`),
		mk("vit_qkv_proj", `
__global__ void vit_qkv_proj(float* x, float* w, float* out, int tiles, int k) {
    int width = tiles * blockDim.x;
    int row = blockIdx.x;
    for (int t = 0; t < tiles; t++) {
        int col = t * blockDim.x + threadIdx.x;
        float acc = 0.0f;
        for (int j = 0; j < k; j++)
            acc += x[row * k + j] * w[j * width + col];
        out[row * width + col] = acc;
    }
}`),
		mk("vit_attention_softmax", `
__global__ void vit_attention_softmax(float* x, float* out, int rows, int cols) {
    int row = blockIdx.x * blockDim.x + threadIdx.x;
    if (row < rows) {
        float maxv = -1e30f;
        for (int c = 0; c < cols; c++) {
            float v = x[row * cols + c];
            if (v > maxv) maxv = v;
        }
        float sum = 0.0f;
        for (int c = 0; c < cols; c++)
            sum += expf(x[row * cols + c] - maxv);
        for (int c = 0; c < cols; c++)
            out[row * cols + c] = expf(x[row * cols + c] - maxv) / sum;
    }
}
`),
		mk("vit_attention_av", `
__global__ void vit_attention_av(float* probs, float* v, float* out, int tiles, int seq) {
    int d = tiles * blockDim.x;
    int row = blockIdx.x;
    for (int t = 0; t < tiles; t++) {
        int col = t * blockDim.x + threadIdx.x;
        float acc = 0.0f;
        for (int j = 0; j < seq; j++)
            acc += probs[row * seq + j] * v[j * d + col];
        out[row * d + col] = acc;
    }
}`),
		mk("vit_mlp_gelu", `
__global__ void vit_mlp_gelu(float* x, float* out, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        float v = x[id];
        out[id] = 0.5f * v * (1.0f + tanhf(0.7978845f * (v + 0.044715f * v * v * v)));
    }
}`),
		mk("vit_residual_add", `
__global__ void vit_residual_add(float* x, float* res, float* out, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        out[id] = x[id] + res[id];
}`),
		mk("vit_head_matmul", `
__global__ void vit_head_matmul(float* x, float* w, float* out, int tiles, int k) {
    int classes = tiles * blockDim.x;
    int row = blockIdx.x;
    for (int t = 0; t < tiles; t++) {
        int col = t * blockDim.x + threadIdx.x;
        float acc = 0.0f;
        for (int j = 0; j < k; j++)
            acc += x[row * k + j] * w[j * classes + col];
        out[row * classes + col] = acc;
    }
}`),
	}
}

// --- Hetero-Mark kernels ---

func heteroMarkKernels() []CoverageKernel {
	mk := func(name, src string, distributable bool, reason analysis.Reason) CoverageKernel {
		return CoverageKernel{Suite: "Hetero-Mark", Name: name, Source: src,
			WantDistributable: distributable, WantReason: reason}
	}
	return []CoverageKernel{
		// 8 distributable kernels.
		mk("aes_encrypt", `
__global__ void aes_encrypt(char* in, char* out, char* key, int nblocks, int rounds) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < nblocks) {
        for (int b = 0; b < 16; b++) {
            int v = in[id * 16 + b];
            for (int r = 0; r < rounds; r++)
                v = (v ^ key[r * 16 + b]) & 255;
            out[id * 16 + b] = (char)v;
        }
    }
}`, true, analysis.ReasonOK),
		mk("be_extract", `
__global__ void be_extract(float* frame, float* bg, char* fgmask, int n, float thresh) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        fgmask[id] = fabsf(frame[id] - bg[id]) > thresh ? (char)1 : (char)0;
}`, true, analysis.ReasonOK),
		mk("be_update", `
__global__ void be_update(float* frame, float* bg, int n, float alpha) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        bg[id] = alpha * frame[id] + (1.0f - alpha) * bg[id];
}`, true, analysis.ReasonOK),
		mk("bs_blackscholes", `
__global__ void bs_blackscholes(float* price, float* strike, float* t, float* call, float* put, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        float s = price[id];
        float k = strike[id];
        float tt = t[id];
        float d1 = (logf(s / k) + 0.06f * tt) / (0.3f * sqrtf(tt));
        float nd1 = 0.5f * (1.0f + tanhf(0.797884f * d1));
        call[id] = s * nd1 - k * expf(0.0f - 0.04f * tt) * nd1;
        put[id] = call[id] + k * expf(0.0f - 0.04f * tt) - s;
    }
}`, true, analysis.ReasonOK),
		mk("ep_mutate", `
__global__ void ep_mutate(float* fitness, int n, int iters, int seed) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        int state = seed + id;
        float acc = 0.0f;
        for (int i = 0; i < iters; i++) {
            state = (state * 1103515245 + 12345) % 2147483648;
            acc += (float)(state % 1000) * 0.001f;
        }
        fitness[id] = acc;
    }
}`, true, analysis.ReasonOK),
		mk("fir_filter", `
__global__ void fir_filter(float* in, float* out, float* coeff, int n, int taps) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        float sum = 0.0f;
        for (int t = 0; t < taps; t++)
            sum += coeff[t] * in[id + t];
        out[id] = sum;
    }
}`, true, analysis.ReasonOK),
		mk("ga_search", `
__global__ void ga_search(char* query, char* target, int* blockBest, int n, int m) {
    __shared__ int scores[256];
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    int s = 0;
    if (id < n) {
        for (int j = 0; j < m; j++) {
            if (query[id + j] == target[j])
                s = s + 1;
        }
    }
    scores[threadIdx.x] = s;
    __syncthreads();
    for (int stride = 128; stride > 0; stride = stride / 2) {
        if (threadIdx.x < stride) {
            if (scores[threadIdx.x + stride] > scores[threadIdx.x])
                scores[threadIdx.x] = scores[threadIdx.x + stride];
        }
        __syncthreads();
    }
    if (threadIdx.x == 0)
        blockBest[blockIdx.x] = scores[0];
}`, true, analysis.ReasonOK),
		mk("km_classify", `
__global__ void km_classify(float* points, float* centroids, int* membership, int n, int k, int dim) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        int best = 0;
        float bestDist = 1e30f;
        for (int c = 0; c < k; c++) {
            float d = 0.0f;
            for (int j = 0; j < dim; j++) {
                float diff = points[id * dim + j] - centroids[c * dim + j];
                d += diff * diff;
            }
            if (d < bestDist) {
                bestDist = d;
                best = c;
            }
        }
        membership[id] = best;
    }
}`, true, analysis.ReasonOK),
		// 4 kernels with overlapping write intervals.
		mk("hist_histogram", `
__global__ void hist_histogram(char* data, int* bins, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        atomicAdd(&bins[data[id]], 1);
}`, false, analysis.ReasonOverlap),
		mk("km_update_centroids", `
__global__ void km_update_centroids(float* points, int* membership, float* sums, int n, int dim) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        for (int j = 0; j < dim; j++)
            atomicAdd(&sums[membership[id] * dim + j], points[id * dim + j]);
    }
}`, false, analysis.ReasonOverlap),
		mk("pr_push", `
__global__ void pr_push(float* rank, int* degree, float* next, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        atomicAdd(&next[id % (n / 2)], rank[id] / (float)degree[id]);
}`, false, analysis.ReasonOverlap),
		mk("sc_scan_partial", `
__global__ void sc_scan_partial(float* in, float* out) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    out[id] = in[id];
    if (threadIdx.x == 0)
        out[blockIdx.x * blockDim.x + blockDim.x] = in[blockIdx.x * blockDim.x];
}`, false, analysis.ReasonOverlap),
		// 1 kernel with indirect memory access.
		mk("bfs_scatter", `
__global__ void bfs_scatter(int* frontier, int* edges, int* next, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        next[edges[frontier[id]]] = 1;
}`, false, analysis.ReasonIndirect),
	}
}

package suites

import (
	"math/rand"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/pgas"
)

const matmulSrc = `
__global__ void matmul(float* a, float* b, float* out, int tiles, int k) {
    int n = tiles * blockDim.x;
    int row = blockIdx.x;
    for (int t = 0; t < tiles; t++) {
        int col = t * blockDim.x + threadIdx.x;
        float sum = 0.0f;
        for (int j = 0; j < k; j++)
            sum += a[row * k + j] * b[j * n + col];
        out[row * n + col] = sum;
    }
}
`

const matmulBlock = 256

// MatMul computes one output row per block: dense, fully vectorizable dot
// products with plenty of blocks — a well-scaling compute-heavy program.
func MatMul() *Program {
	prog := core.MustCompile(matmulSrc)
	must(prog.RegisterNative("matmul", core.Native{
		RunBlock: func(mem interp.Memory, args []interp.Value, grid, block interp.Dim3, bx, by int) error {
			tiles := int(args[3].I)
			k := int(args[4].I)
			n := tiles * block.X
			row := bx
			for t := 0; t < tiles; t++ {
				for tx := 0; tx < block.X; tx++ {
					col := t*block.X + tx
					var sum float32
					for j := 0; j < k; j++ {
						sum += mem.LoadF32(0, row*k+j) * mem.LoadF32(1, j*n+col)
					}
					mem.StoreF32(2, row*n+col, sum)
				}
			}
			return nil
		},
		BlockWork: func(args []interp.Value, grid, block interp.Dim3) machine.BlockWork {
			tiles := float64(args[3].I)
			k := float64(args[4].I)
			n := tiles * float64(block.X)
			return machine.BlockWork{
				VecFlops: n * k * 2,
				IntOps:   n * k,
				// a row + output row stream; b is shared across blocks and
				// amortizes to about one compulsory pass per block row.
				Bytes: (2*k + 2*n) * 4,
			}
		},
	}))

	p := &Program{
		Name:          "MatMul",
		Kernel:        "matmul",
		Source:        matmulSrc,
		SIMDFraction:  1.0,
		GPUComputeEff: 0.85,
		GPUMemEff:     0.8,
		Compiled:      prog,
		Default:       Params{"tiles": 4, "k": 4096}, // n = 1024, deep k
		Small:         Params{"tiles": 1, "k": 24},   // with block 16 in tests? block fixed 256 -> n = 256
	}
	mkSpec := func(pr Params, a, b, out cluster.Buffer) core.LaunchSpec {
		tiles := pr.Get("tiles")
		n := tiles * matmulBlock
		return core.LaunchSpec{
			Kernel: "matmul",
			Grid:   interp.Dim1(n),
			Block:  interp.Dim1(matmulBlock),
			Args: []core.Arg{
				core.BufArg(a), core.BufArg(b), core.BufArg(out),
				core.IntArg(int64(tiles)), core.IntArg(int64(pr.Get("k"))),
			},
			SIMDFraction: p.SIMDFraction,
		}
	}
	p.Spec = func(pr Params) core.LaunchSpec {
		n := pr.Get("tiles") * matmulBlock
		k := pr.Get("k")
		return mkSpec(pr, virtualBuf(kir.F32, n*k), virtualBuf(kir.F32, k*n), virtualBuf(kir.F32, n*n))
	}
	p.Build = func(c *cluster.Cluster, pr Params) (*Instance, error) {
		n := pr.Get("tiles") * matmulBlock
		k := pr.Get("k")
		rng := rand.New(rand.NewSource(6))
		as := make([]float32, n*k)
		bs := make([]float32, k*n)
		for i := range as {
			as[i] = rng.Float32() - 0.5
		}
		for i := range bs {
			bs[i] = rng.Float32() - 0.5
		}
		want := make([]float32, n*n)
		for r := 0; r < n; r++ {
			for cc := 0; cc < n; cc++ {
				var sum float32
				for j := 0; j < k; j++ {
					sum += as[r*k+j] * bs[j*n+cc]
				}
				want[r*n+cc] = sum
			}
		}
		a := c.Alloc(kir.F32, n*k)
		b := c.Alloc(kir.F32, k*n)
		out := c.Alloc(kir.F32, n*n)
		if err := c.WriteAllF32(a, as); err != nil {
			return nil, err
		}
		if err := c.WriteAllF32(b, bs); err != nil {
			return nil, err
		}
		return &Instance{
			Spec:  mkSpec(pr, a, b, out),
			Check: checkF32(c, out, want, "matmul"),
		}, nil
	}
	p.Traffic = func(pr Params, nodes int) pgas.RankTraffic {
		n := pr.Get("tiles") * matmulBlock
		return trafficOwner0(n, nodes, int64(n), int64(n), 4)
	}
	return p
}

package suites

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"cucc/internal/cluster"
	"cucc/internal/comm"
	"cucc/internal/core"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/metrics"
	"cucc/internal/simnet"
	"cucc/internal/transport"
)

// The suites-level metrics tests enforce the two invariants of the
// observability layer on the real evaluation programs:
//
//  1. Instrumentation never moves a simulated figure: a fully metered run
//     produces bitwise-identical node memories and identical Stats to a run
//     with metrics disabled.
//  2. The accounting cross-checks: the transport-level counters (recorded
//     by the metered decorator beneath the comm layer's bookkeeping), the
//     per-collective comm.* counters, and the summed per-node comm.Stats
//     all agree — including under injected transient send failures, where
//     only operations that actually completed may count.

// metricsRun executes one program at Small scale and returns the stats,
// every node's full heap, and the cluster.
func metricsRun(t *testing.T, p *Program, n int, reg *metrics.Registry, fc *transport.FaultConfig) (*core.Stats, [][]byte, *cluster.Cluster) {
	t.Helper()
	cfg := cluster.Config{
		Nodes: n, Machine: machine.Intel6226(), Net: simnet.IB100(),
		Metrics: reg, Fault: fc,
	}
	if fc != nil {
		cfg.RecvTimeout = 5 * time.Second
	}
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	inst, err := p.Build(c, p.Small)
	if err != nil {
		t.Fatal(err)
	}
	sess := core.NewSession(c, p.Compiled)
	sess.Verify = true
	stats, err := sess.Launch(inst.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Check(); err != nil {
		t.Fatal(err)
	}
	heaps := make([][]byte, n)
	all := cluster.Buffer{Off: 0, Elem: kir.U8, Count: c.BytesPerNode()}
	for r := 0; r < n; r++ {
		heaps[r] = append([]byte(nil), c.Region(r, all)...)
	}
	return stats, heaps, c
}

// TestMetricsNeverMoveFigures: metrics on vs off changes nothing observable
// about the computation — not one simulated figure, not one byte of any
// node's memory.
func TestMetricsNeverMoveFigures(t *testing.T) {
	const n = 4
	for _, p := range allWithVecAdd() {
		t.Run(p.Name, func(t *testing.T) {
			off, offHeaps, _ := metricsRun(t, p, n, nil, nil)
			reg := metrics.New()
			on, onHeaps, _ := metricsRun(t, p, n, reg, nil)
			if !reflect.DeepEqual(off, on) {
				t.Errorf("stats diverge:\n  off: %+v\n  on:  %+v", off, on)
			}
			for r := 0; r < n; r++ {
				if !bytes.Equal(offHeaps[r], onHeaps[r]) {
					t.Errorf("node %d heap differs between metered and unmetered runs", r)
				}
			}
			// The metered run must actually have recorded the launch, and
			// — when the launch communicated at all — its traffic.  (A few
			// programs move zero Allgather bytes at Small scale.)
			s := reg.Snapshot()
			if s.Counters["core.launch.total"] == 0 {
				t.Error("metered run recorded no launches")
			}
			if on.CommMsgs > 0 && s.Counters[transport.MetricSendMsgs] == 0 {
				t.Error("metered run recorded no traffic despite CommMsgs > 0")
			}
		})
	}
}

// sumNodeComm adds up every node's comm.Stats.
func sumNodeComm(c *cluster.Cluster) comm.Stats {
	var total comm.Stats
	for r := 0; r < c.N(); r++ {
		total.Add(c.Node(r).Comm)
	}
	return total
}

// commOpTotal sums one field (".msgs", ".bytes_sent", ...) across all
// comm.<op>.* counters in a snapshot.
func commOpTotal(s metrics.Snapshot, suffix string) int64 {
	var total int64
	for name, v := range s.Counters {
		if strings.HasPrefix(name, "comm.") && strings.HasSuffix(name, suffix) {
			total += v
		}
	}
	return total
}

// checkCrossCheck asserts the three independently recorded accountings of
// one cluster's traffic agree.
func checkCrossCheck(t *testing.T, c *cluster.Cluster, s metrics.Snapshot) {
	t.Helper()
	total := sumNodeComm(c)
	if total.Msgs != total.Recvs || total.BytesSent != total.BytesRecvd {
		t.Errorf("summed node Stats asymmetric: %+v", total)
	}
	type check struct {
		name string
		got  int64
		want int64
	}
	for _, ck := range []check{
		{transport.MetricSendMsgs, s.Counters[transport.MetricSendMsgs], total.Msgs},
		{transport.MetricSendBytes, s.Counters[transport.MetricSendBytes], total.BytesSent},
		{transport.MetricRecvMsgs, s.Counters[transport.MetricRecvMsgs], total.Recvs},
		{transport.MetricRecvBytes, s.Counters[transport.MetricRecvBytes], total.BytesRecvd},
		{"comm.*.msgs", commOpTotal(s, ".msgs"), total.Msgs},
		{"comm.*.bytes_sent", commOpTotal(s, ".bytes_sent"), total.BytesSent},
		{"comm.*.recvs", commOpTotal(s, ".recvs"), total.Recvs},
		{"comm.*.bytes_recvd", commOpTotal(s, ".bytes_recvd"), total.BytesRecvd},
	} {
		if ck.got != ck.want {
			t.Errorf("%s = %d, want %d (summed node Stats)", ck.name, ck.got, ck.want)
		}
	}
}

// TestMetricsCrossCheck: on a clean transport, registry counters at both
// levels equal the summed per-node Stats for every evaluation program.
func TestMetricsCrossCheck(t *testing.T) {
	for _, p := range allWithVecAdd() {
		t.Run(p.Name, func(t *testing.T) {
			reg := metrics.New()
			_, _, c := metricsRun(t, p, 4, reg, nil)
			checkCrossCheck(t, c, reg.Snapshot())
		})
	}
}

// TestMetricsCrossCheckUnderFaults: with transient send failures that are
// retried beneath the meter (plus delays and duplicates absorbed by the
// envelope), a completed run's accounting still balances on all three
// levels — each message counts exactly once, however many attempts or
// copies the fault layer produced.
func TestMetricsCrossCheckUnderFaults(t *testing.T) {
	fc := &transport.FaultConfig{
		Seed:         42,
		SendFail:     0.2,
		Delay:        0.2,
		Duplicate:    0.2,
		MaxDelay:     200 * time.Microsecond,
		MaxRetries:   16,
		RetryBackoff: 10 * time.Microsecond,
	}
	for _, p := range []*Program{VecAdd(), FIR(), Transpose()} {
		t.Run(p.Name, func(t *testing.T) {
			reg := metrics.New()
			_, _, c := metricsRun(t, p, 4, reg, fc)
			checkCrossCheck(t, c, reg.Snapshot())
			// The schedule must actually have injected something, or the
			// test is vacuous.
			if f := c.Faults(); f == nil || f.SendFailures+f.Duplicates+f.Delays == 0 {
				t.Error("fault schedule injected nothing")
			}
		})
	}
}

package suites

import (
	"bytes"
	"testing"
	"time"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/csched"
	"cucc/internal/machine"
	"cucc/internal/simnet"
	"cucc/internal/transport"
)

// The collective equivalence tests pin the ISSUE 7 acceptance criterion:
// the schedule executor must leave node memories bitwise identical to the
// legacy hand-written ring (AllgatherRing/AllgatherVRing) across all three
// engines and under benign transport faults, for every schedule the
// compiler can emit.

// collectiveRun is engineRun with a collective choice layered on the
// cluster config.
func collectiveRun(t *testing.T, p *Program, eng cluster.Engine, nodes int, fc *transport.FaultConfig, choice csched.Choice) []byte {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Nodes: nodes, Machine: machine.Intel6226(), Net: simnet.IB100(),
		RecvTimeout: 5 * time.Second,
		Fault:       fc,
		Engine:      eng,
		Collective:  choice,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	inst, err := p.Build(c, p.Small)
	if err != nil {
		t.Fatal(err)
	}
	inst.Spec.UseInterp = true
	sess := core.NewSession(c, p.Compiled)
	if _, err := sess.Launch(inst.Spec); err != nil {
		t.Fatalf("engine %s, choice %s, %d nodes: %v", eng, choice, nodes, err)
	}
	if err := inst.Check(); err != nil {
		t.Fatalf("engine %s, choice %s, %d nodes: checker: %v", eng, choice, nodes, err)
	}
	return heapSnapshot(c)
}

func collectiveChoices(t *testing.T) []csched.Choice {
	t.Helper()
	var out []csched.Choice
	for _, s := range []string{"auto", "ring", "recdouble", "twolevel", "pipeline", "auto+overlap", "pipeline:2+overlap"} {
		ch, err := csched.ParseChoice(s)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ch)
	}
	return out
}

// TestCollectiveEquivalenceAcrossEngines: for every program and engine,
// every schedule heap must match the legacy-ring heap bitwise on four
// nodes (composite, exercises two-level and recursive doubling).
func TestCollectiveEquivalenceAcrossEngines(t *testing.T) {
	choices := collectiveChoices(t)
	for _, p := range allWithVecAdd() {
		t.Run(p.Name, func(t *testing.T) {
			for _, eng := range []cluster.Engine{cluster.EngineInterp, cluster.EngineVM, cluster.EngineVMLanes} {
				ref := collectiveRun(t, p, eng, 4, nil, csched.Choice{})
				for _, choice := range choices {
					got := collectiveRun(t, p, eng, 4, nil, choice)
					if !bytes.Equal(ref, got) {
						t.Errorf("engine %s choice %s: heap differs from legacy ring", eng, choice)
					}
				}
			}
		})
	}
}

// TestCollectiveEquivalenceUnderBenignFaults repeats the comparison under
// the chaos tests' benign fault schedule: delayed and duplicated frames
// must not open any gap between the schedule executor and the legacy ring.
func TestCollectiveEquivalenceUnderBenignFaults(t *testing.T) {
	benign := &transport.FaultConfig{
		Seed: 1, Delay: 0.3, Duplicate: 0.3, MaxDelay: 200 * time.Microsecond,
	}
	choices := collectiveChoices(t)
	for _, p := range allWithVecAdd() {
		t.Run(p.Name, func(t *testing.T) {
			ref := collectiveRun(t, p, cluster.EngineInterp, 4, benign, csched.Choice{})
			for _, choice := range choices {
				got := collectiveRun(t, p, cluster.EngineVMLanes, 4, benign, choice)
				if !bytes.Equal(ref, got) {
					t.Errorf("choice %s: heap differs from legacy ring under benign faults", choice)
				}
			}
		})
	}
}

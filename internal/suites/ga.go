package suites

import (
	"math/rand"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/pgas"
)

const gaSrc = `
__global__ void ga(char* query, char* target, int* blockBest, int n, int m) {
    __shared__ int scores[256];
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    int s = 0;
    if (id < n) {
        for (int j = 0; j < m; j++) {
            if (query[id + j] == target[j])
                s = s + 1;
        }
    }
    scores[threadIdx.x] = s;
    __syncthreads();
    for (int stride = 128; stride > 0; stride = stride / 2) {
        if (threadIdx.x < stride) {
            if (scores[threadIdx.x + stride] > scores[threadIdx.x])
                scores[threadIdx.x] = scores[threadIdx.x + stride];
        }
        __syncthreads();
    }
    if (threadIdx.x == 0)
        blockBest[blockIdx.x] = scores[0];
}
`

const gaBlock = 256

// GA is the gene-alignment kernel: each thread scores one window of the
// query against the target pattern; a shared-memory tree reduction leaves
// one best-match score per block, written by thread 0.  256 blocks with a
// single scalar write each: writes are sparse relative to compute, which
// is why PGAS ties CuCC here (§7.3), while the few blocks and
// unvectorized byte loops make GPUs win the runtime comparison (§7.4.1).
func GA() *Program {
	prog := core.MustCompile(gaSrc)
	must(prog.RegisterNative("ga", core.Native{
		RunBlock: func(mem interp.Memory, args []interp.Value, grid, block interp.Dim3, bx, by int) error {
			n := int(args[3].I)
			m := int(args[4].I)
			var best int32
			for tx := 0; tx < block.X; tx++ {
				id := bx*block.X + tx
				if id >= n {
					continue
				}
				var s int32
				for j := 0; j < m; j++ {
					if mem.LoadU8(0, id+j) == mem.LoadU8(1, j) {
						s++
					}
				}
				if s > best {
					best = s
				}
			}
			mem.StoreI32(2, bx, best)
			return nil
		},
		BlockWork: func(args []interp.Value, grid, block interp.Dim3) machine.BlockWork {
			t := float64(block.X)
			m := float64(args[4].I)
			return machine.BlockWork{
				IntOps: t*m*3 + t*2,
				Bytes:  t + m + 4, // query window + cached target + one score
			}
		},
	}))

	p := &Program{
		Name:          "GA",
		Kernel:        "ga",
		Source:        gaSrc,
		SIMDFraction:  0.25,
		GPUComputeEff: 0.6,
		GPUMemEff:     0.8,
		Compiled:      prog,
		Default:       Params{"n": 256 * gaBlock, "m": 4096}, // 256 blocks, the paper's count
		WeakKey:       "n",
		Small:         Params{"n": 700, "m": 16},
	}
	mkSpec := func(pr Params, query, target, blockBest cluster.Buffer) core.LaunchSpec {
		n := pr.Get("n")
		return core.LaunchSpec{
			Kernel: "ga",
			Grid:   interp.Dim1(ceilDiv(n, gaBlock)),
			Block:  interp.Dim1(gaBlock),
			Args: []core.Arg{
				core.BufArg(query), core.BufArg(target), core.BufArg(blockBest),
				core.IntArg(int64(n)), core.IntArg(int64(pr.Get("m"))),
			},
			SIMDFraction: p.SIMDFraction,
		}
	}
	p.Spec = func(pr Params) core.LaunchSpec {
		n, m := pr.Get("n"), pr.Get("m")
		return mkSpec(pr, virtualBuf(kir.U8, n+m), virtualBuf(kir.U8, m),
			virtualBuf(kir.I32, ceilDiv(n, gaBlock)))
	}
	p.Build = func(c *cluster.Cluster, pr Params) (*Instance, error) {
		n, m := pr.Get("n"), pr.Get("m")
		blocks := ceilDiv(n, gaBlock)
		rng := rand.New(rand.NewSource(5))
		bases := []byte{'A', 'C', 'G', 'T'}
		q := make([]byte, n+m)
		for i := range q {
			q[i] = bases[rng.Intn(4)]
		}
		tg := make([]byte, m)
		for i := range tg {
			tg[i] = bases[rng.Intn(4)]
		}
		want := make([]int32, blocks)
		for b := 0; b < blocks; b++ {
			var best int32
			for tx := 0; tx < gaBlock; tx++ {
				id := b*gaBlock + tx
				if id >= n {
					continue
				}
				var s int32
				for j := 0; j < m; j++ {
					if q[id+j] == tg[j] {
						s++
					}
				}
				if s > best {
					best = s
				}
			}
			want[b] = best
		}
		query := c.Alloc(kir.U8, n+m)
		target := c.Alloc(kir.U8, m)
		blockBest := c.Alloc(kir.I32, blocks)
		if err := c.WriteAll(query, q); err != nil {
			return nil, err
		}
		if err := c.WriteAll(target, tg); err != nil {
			return nil, err
		}
		return &Instance{
			Spec:  mkSpec(pr, query, target, blockBest),
			Check: checkI32(c, blockBest, want, "ga"),
		}, nil
	}
	p.Traffic = func(pr Params, nodes int) pgas.RankTraffic {
		blocks := ceilDiv(pr.Get("n"), gaBlock)
		return trafficOwner0(blocks, nodes, 1, 1, 4)
	}
	return p
}

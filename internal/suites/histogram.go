package suites

import (
	"fmt"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/interp"
	"cucc/internal/kir"
)

// Histogram is the porting guide for the paper's non-distributable class:
// the classic atomicAdd histogram has overlapping write intervals
// (Figure 7's largest rejection category), so CuCC can only replicate it.
// The standard privatization rewrite makes it distributable:
//
//  1. hist_private: each block builds a private histogram in shared memory
//     (shared atomics need no cross-node communication) and writes it to
//     its own row of a partials matrix — a contiguous, block-indexed write
//     interval that the analysis accepts (via the block-stride loop rule).
//  2. hist_reduce: one thread per bin sums the column of partials.
//
// Both pipelines produce identical bins; only the ported one distributes.

// HistogramAtomicSrc is the original kernel (not Allgather distributable).
const HistogramAtomicSrc = `
__global__ void hist_atomic(char* data, int* bins, int n, int rounds) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        int v = data[id];
        for (int h = 0; h < rounds; h++)
            v = (v * 31 + 7) % 64;
        atomicAdd(&bins[v], 1);
    }
}
`

// HistogramPortedSrc is the privatized two-kernel rewrite (distributable).
const HistogramPortedSrc = `
__global__ void hist_private(char* data, int* partial, int n, int bins, int rounds) {
    __shared__ int sh[256];
    for (int b = threadIdx.x; b < bins; b = b + blockDim.x)
        sh[b] = 0;
    __syncthreads();
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        int v = data[id];
        for (int h = 0; h < rounds; h++)
            v = (v * 31 + 7) % 64;
        atomicAdd(&sh[v], 1);
    }
    __syncthreads();
    for (int b = threadIdx.x; b < bins; b = b + blockDim.x)
        partial[blockIdx.x * bins + b] = sh[b];
}

__global__ void hist_reduce(int* partial, int* bins, int blocks, int nbins) {
    int b = blockIdx.x * blockDim.x + threadIdx.x;
    if (b < nbins) {
        int sum = 0;
        for (int blk = 0; blk < blocks; blk++)
            sum += partial[blk * nbins + b];
        bins[b] = sum;
    }
}
`

const histBlock = 256

// HistogramPrograms compiles both variants.
func HistogramPrograms() (atomic, ported *core.Program) {
	return core.MustCompile(HistogramAtomicSrc), core.MustCompile(HistogramPortedSrc)
}

// HistRounds is the per-element binning work (a hash chain), matching the
// arithmetic real histogram kernels do before the atomic update.
const HistRounds = 32

// HistBin computes the bin of one input byte (the Go reference of the
// kernels' hash chain).
func HistBin(v byte) int {
	x := int32(v)
	for h := 0; h < HistRounds; h++ {
		x = (x*31 + 7) % 64
	}
	return int(x)
}

// RunHistogramAtomic executes the original kernel (trivially replicated on
// every node) and returns the bins from node 0.
func RunHistogramAtomic(c *cluster.Cluster, data []byte, nbins int) ([]int32, *core.Stats, error) {
	prog, _ := HistogramPrograms()
	dbuf := c.Alloc(kir.U8, len(data))
	bins := c.Alloc(kir.I32, nbins)
	if err := c.WriteAll(dbuf, data); err != nil {
		return nil, nil, err
	}
	sess := core.NewSession(c, prog)
	sess.Verify = true
	stats, err := sess.Launch(core.LaunchSpec{
		Kernel: "hist_atomic",
		Grid:   interp.Dim1(ceilDiv(len(data), histBlock)),
		Block:  interp.Dim1(histBlock),
		Args: []core.Arg{core.BufArg(dbuf), core.BufArg(bins),
			core.IntArg(int64(len(data))), core.IntArg(HistRounds)},
	})
	if err != nil {
		return nil, nil, err
	}
	return c.ReadI32(0, bins), stats, nil
}

// RunHistogramPorted executes the privatized pipeline and returns the bins
// from node 0 plus the stats of both launches.
func RunHistogramPorted(c *cluster.Cluster, data []byte, nbins int) ([]int32, []*core.Stats, error) {
	if nbins > 256 {
		return nil, nil, fmt.Errorf("suites: ported histogram supports up to 256 bins, got %d", nbins)
	}
	_, prog := HistogramPrograms()
	blocks := ceilDiv(len(data), histBlock)
	dbuf := c.Alloc(kir.U8, len(data))
	partial := c.Alloc(kir.I32, blocks*nbins)
	bins := c.Alloc(kir.I32, nbins)
	if err := c.WriteAll(dbuf, data); err != nil {
		return nil, nil, err
	}
	sess := core.NewSession(c, prog)
	sess.Verify = true
	st1, err := sess.Launch(core.LaunchSpec{
		Kernel: "hist_private",
		Grid:   interp.Dim1(blocks),
		Block:  interp.Dim1(histBlock),
		Args: []core.Arg{
			core.BufArg(dbuf), core.BufArg(partial),
			core.IntArg(int64(len(data))), core.IntArg(int64(nbins)), core.IntArg(HistRounds),
		},
	})
	if err != nil {
		return nil, nil, err
	}
	st2, err := sess.Launch(core.LaunchSpec{
		Kernel: "hist_reduce",
		Grid:   interp.Dim1(ceilDiv(nbins, histBlock)),
		Block:  interp.Dim1(histBlock),
		Args: []core.Arg{
			core.BufArg(partial), core.BufArg(bins),
			core.IntArg(int64(blocks)), core.IntArg(int64(nbins)),
		},
	})
	if err != nil {
		return nil, nil, err
	}
	return c.ReadI32(0, bins), []*core.Stats{st1, st2}, nil
}

package suites

import (
	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/pgas"
)

const epSrc = `
__global__ void ep(float* fitness, int n, int iters, int seed) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        int state = seed + id;
        float acc = 0.0f;
        for (int i = 0; i < iters; i++) {
            state = (state * 1103515245 + 12345) % 2147483648;
            acc += (float)(state % 1000) * 0.001f;
        }
        fitness[id] = acc;
    }
}
`

const epBlock = 256

// EP is the evolutionary-programming kernel: per-thread serial random
// mutation/evaluation chains.  With only 512 blocks and an
// unvectorizable inner loop it cannot exploit large CPU clusters, the
// paper's example of a GPU-favored program (§7.4.1).
func EP() *Program {
	prog := core.MustCompile(epSrc)
	must(prog.RegisterNative("ep", core.Native{
		RunBlock: func(mem interp.Memory, args []interp.Value, grid, block interp.Dim3, bx, by int) error {
			n := int(args[1].I)
			iters := int(args[2].I)
			seed := args[3].I
			for tx := 0; tx < block.X; tx++ {
				id := bx*block.X + tx
				if id >= n {
					continue
				}
				state := seed + int64(id)
				var acc float32
				for i := 0; i < iters; i++ {
					state = (state*1103515245 + 12345) % 2147483648
					acc += float32(state%1000) * 0.001
				}
				mem.StoreF32(0, id, acc)
			}
			return nil
		},
		BlockWork: func(args []interp.Value, grid, block interp.Dim3) machine.BlockWork {
			t := float64(block.X)
			iters := float64(args[2].I)
			return machine.BlockWork{
				SerialFlops: t * iters * 2,
				IntOps:      t * iters * 4,
				Bytes:       t * 4,
			}
		},
	}))

	p := &Program{
		Name:          "EP",
		Kernel:        "ep",
		Source:        epSrc,
		SIMDFraction:  0.05, // the LCG chain is a serial dependence
		GPUComputeEff: 0.6,  // GPUs hide the chain latency across 128k threads
		GPUMemEff:     0.8,
		Compiled:      prog,
		Default:       Params{"n": 512 * epBlock, "iters": 4096}, // 512 blocks, the paper's count
		WeakKey:       "n",
		Small:         Params{"n": 600, "iters": 16},
	}
	mkSpec := func(pr Params, fitness cluster.Buffer) core.LaunchSpec {
		n := pr.Get("n")
		return core.LaunchSpec{
			Kernel: "ep",
			Grid:   interp.Dim1(ceilDiv(n, epBlock)),
			Block:  interp.Dim1(epBlock),
			Args: []core.Arg{
				core.BufArg(fitness), core.IntArg(int64(n)),
				core.IntArg(int64(pr.Get("iters"))), core.IntArg(12345),
			},
			SIMDFraction: p.SIMDFraction,
		}
	}
	p.Spec = func(pr Params) core.LaunchSpec {
		return mkSpec(pr, virtualBuf(kir.F32, pr.Get("n")))
	}
	p.Build = func(c *cluster.Cluster, pr Params) (*Instance, error) {
		n, iters := pr.Get("n"), pr.Get("iters")
		want := make([]float32, n)
		for id := 0; id < n; id++ {
			state := int64(12345 + id)
			var acc float32
			for i := 0; i < iters; i++ {
				state = (state*1103515245 + 12345) % 2147483648
				acc += float32(state%1000) * 0.001
			}
			want[id] = acc
		}
		fitness := c.Alloc(kir.F32, n)
		return &Instance{
			Spec:  mkSpec(pr, fitness),
			Check: checkF32(c, fitness, want, "ep"),
		}, nil
	}
	p.Traffic = func(pr Params, nodes int) pgas.RankTraffic {
		n := pr.Get("n")
		blocks := ceilDiv(n, epBlock)
		tail := int64(n - (blocks-1)*epBlock)
		return trafficOwner0(blocks, nodes, epBlock, tail, 4)
	}
	return p
}

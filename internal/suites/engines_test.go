package suites

import (
	"bytes"
	"testing"
	"time"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/machine"
	"cucc/internal/simnet"
	"cucc/internal/transport"
)

// The engine equivalence tests pin the ISSUE 3 contract: the register-machine
// executor (internal/vm) and the reference interpreter must leave node
// memories bitwise identical on every evaluation program, single- and
// multi-node, with and without benign transport faults.  The interpreter is
// the oracle; any divergence is a vm bug.

// engineRun executes one program at Small scale on a fresh n-node cluster
// under the given engine, forcing the IR path (natives would mask the engine
// entirely), and returns node 0's full heap after the checker passes.
func engineRun(t *testing.T, p *Program, eng cluster.Engine, nodes int, fc *transport.FaultConfig) []byte {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Nodes: nodes, Machine: machine.Intel6226(), Net: simnet.IB100(),
		RecvTimeout: 5 * time.Second,
		Fault:       fc,
		Engine:      eng,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	inst, err := p.Build(c, p.Small)
	if err != nil {
		t.Fatal(err)
	}
	inst.Spec.UseInterp = true
	sess := core.NewSession(c, p.Compiled)
	if _, err := sess.Launch(inst.Spec); err != nil {
		t.Fatalf("engine %s, %d nodes: %v", eng, nodes, err)
	}
	if err := inst.Check(); err != nil {
		t.Fatalf("engine %s, %d nodes: checker: %v", eng, nodes, err)
	}
	return heapSnapshot(c)
}

// TestEngineEquivalence: vm, vm-lanes, and interp heaps must match bitwise
// on every program, on one node and across four.
func TestEngineEquivalence(t *testing.T) {
	for _, p := range allWithVecAdd() {
		t.Run(p.Name, func(t *testing.T) {
			for _, nodes := range []int{1, 4} {
				ref := engineRun(t, p, cluster.EngineInterp, nodes, nil)
				for _, eng := range []cluster.Engine{cluster.EngineVM, cluster.EngineVMLanes} {
					got := engineRun(t, p, eng, nodes, nil)
					if !bytes.Equal(ref, got) {
						t.Errorf("%d nodes: %s heap differs from interp heap", nodes, eng)
					}
				}
			}
		})
	}
}

// TestEngineEquivalenceUnderBenignFaults repeats the multi-node comparison
// under the benign fault schedule of the chaos tests: delayed and duplicated
// frames must not open any gap between the engines.
func TestEngineEquivalenceUnderBenignFaults(t *testing.T) {
	benign := &transport.FaultConfig{
		Seed: 1, Delay: 0.3, Duplicate: 0.3, MaxDelay: 200 * time.Microsecond,
	}
	for _, p := range allWithVecAdd() {
		t.Run(p.Name, func(t *testing.T) {
			ref := engineRun(t, p, cluster.EngineInterp, 4, benign)
			for _, eng := range []cluster.Engine{cluster.EngineVM, cluster.EngineVMLanes} {
				got := engineRun(t, p, eng, 4, benign)
				if !bytes.Equal(ref, got) {
					t.Errorf("%s heap differs from interp heap under benign faults", eng)
				}
			}
		})
	}
}

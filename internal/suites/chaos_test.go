package suites

import (
	"bytes"
	"testing"
	"time"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/simnet"
	"cucc/internal/transport"
)

// The chaos tests run every evaluation program at Small scale under seeded
// transport faults.  The invariants, per ISSUE acceptance criteria:
//
//   - benign faults (delay, duplicate) are fully absorbed: the run
//     completes, the checker passes, and node 0's entire heap is bitwise
//     identical to a fault-free run;
//   - lossy faults (drop, corrupt, transient send failure) either retry to
//     a completed — and still bitwise-identical — run or fail cleanly with
//     a transport error; no fault schedule may hang the cluster.

func chaosCluster(t *testing.T, n int, fc *transport.FaultConfig) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Nodes: n, Machine: machine.Intel6226(), Net: simnet.IB100(),
		// Backstop deadline: a dropped frame with no successor must turn
		// into ErrTimeout instead of a hang.
		RecvTimeout: 5 * time.Second,
		Fault:       fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// heapSnapshot copies node 0's entire allocated heap.
func heapSnapshot(c *cluster.Cluster) []byte {
	all := cluster.Buffer{Off: 0, Elem: kir.U8, Count: c.BytesPerNode()}
	return append([]byte(nil), c.Region(0, all)...)
}

// chaosRun builds and launches one program on a fresh faulty cluster and
// returns node 0's heap (nil on failure).  The launch runs in a goroutine
// with a hang watchdog: "fail cleanly" is acceptable, blocking forever is
// the bug this PR exists to fix.
func chaosRun(t *testing.T, p *Program, fc *transport.FaultConfig) ([]byte, error) {
	t.Helper()
	c := chaosCluster(t, 4, fc)
	inst, err := p.Build(c, p.Small)
	if err != nil {
		t.Fatal(err)
	}
	sess := core.NewSession(c, p.Compiled)
	sess.Verify = true
	done := make(chan error, 1)
	go func() {
		_, err := sess.Launch(inst.Spec)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			return nil, err
		}
		if err := inst.Check(); err != nil {
			t.Fatalf("completed run failed its checker: %v", err)
		}
		return heapSnapshot(c), nil
	case <-time.After(60 * time.Second):
		t.Fatalf("%s hung under fault injection (seed %d)", p.Name, fc.Seed)
		return nil, nil
	}
}

// TestChaosBenignFaultsAbsorbed: delays and duplicates must be invisible —
// every program completes with a heap bitwise identical to a fault-free
// run's.
func TestChaosBenignFaultsAbsorbed(t *testing.T) {
	for _, p := range allWithVecAdd() {
		t.Run(p.Name, func(t *testing.T) {
			ref, err := chaosRun(t, p, &transport.FaultConfig{Seed: 1}) // zero probabilities: fault-free
			if err != nil {
				t.Fatal(err)
			}
			got, err := chaosRun(t, p, &transport.FaultConfig{
				Seed: 1, Delay: 0.3, Duplicate: 0.3, MaxDelay: 200 * time.Microsecond,
			})
			if err != nil {
				t.Fatalf("benign faults must be absorbed, got %v", err)
			}
			if !bytes.Equal(ref, got) {
				t.Error("node 0 heap differs from fault-free run under benign faults")
			}
		})
	}
}

// TestChaosLossyFaultsFailCleanlyOrComplete: under drops, corruption, and
// transient send failures each seeded run must either complete (bitwise
// identical to fault-free, checker passing) or fail with a transport
// error — never hang, never complete with wrong data.
func TestChaosLossyFaultsFailCleanlyOrComplete(t *testing.T) {
	lossy := func(seed int64) *transport.FaultConfig {
		return &transport.FaultConfig{
			Seed: seed, Drop: 0.02, Corrupt: 0.02, SendFail: 0.2,
			MaxRetries: 6, RetryBackoff: 10 * time.Microsecond,
		}
	}
	completed, failed := 0, 0
	for _, p := range allWithVecAdd() {
		t.Run(p.Name, func(t *testing.T) {
			ref, err := chaosRun(t, p, &transport.FaultConfig{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(1); seed <= 3; seed++ {
				got, err := chaosRun(t, p, lossy(seed))
				if err != nil {
					failed++
					t.Logf("seed %d: failed cleanly: %v", seed, err)
					continue
				}
				completed++
				if !bytes.Equal(ref, got) {
					t.Errorf("seed %d: completed run's heap differs from fault-free run", seed)
				}
			}
		})
	}
	t.Logf("lossy chaos: %d completed, %d failed cleanly", completed, failed)
}

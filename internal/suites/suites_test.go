package suites

import (
	"bytes"
	"math"
	"testing"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/machine"
	"cucc/internal/pgas"
	"cucc/internal/simnet"
)

func newCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{Nodes: n, Machine: machine.Intel6226(), Net: simnet.IB100()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func allWithVecAdd() []*Program {
	return append([]*Program{VecAdd()}, All()...)
}

// TestAllProgramsDistributable verifies the compiler analysis accepts every
// evaluation program (they were all chosen from the paper's distributable
// set).
func TestAllProgramsDistributable(t *testing.T) {
	for _, p := range allWithVecAdd() {
		md := p.Compiled.Meta[p.Kernel]
		if md == nil || !md.Distributable {
			t.Errorf("%s: not distributable: %s", p.Name, md.Summary())
		}
	}
}

// TestTailDivergenceClassification checks which programs have bound checks.
func TestTailDivergenceClassification(t *testing.T) {
	wantTail := map[string]bool{
		"VecAdd": true, "FIR": true, "Kmeans": true, "EP": true,
		"Transpose": false, "BinomialOption": false, "GA": false,
		"MatMul": false, "Conv2D": false,
	}
	for _, p := range allWithVecAdd() {
		md := p.Compiled.Meta[p.Kernel]
		if md.TailDivergent != wantTail[p.Name] {
			t.Errorf("%s: TailDivergent = %v, want %v", p.Name, md.TailDivergent, wantTail[p.Name])
		}
	}
}

// TestDistributedCorrectness executes every program (native backend) on
// several cluster sizes, verifying the output against the Go reference and
// the cross-node consistency invariant.
func TestDistributedCorrectness(t *testing.T) {
	for _, p := range allWithVecAdd() {
		t.Run(p.Name, func(t *testing.T) {
			for _, n := range []int{1, 2, 3, 4} {
				c := newCluster(t, n)
				inst, err := p.Build(c, p.Small)
				if err != nil {
					t.Fatal(err)
				}
				sess := core.NewSession(c, p.Compiled)
				sess.Verify = true
				if _, err := sess.Launch(inst.Spec); err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				if err := inst.Check(); err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
			}
		})
	}
}

// TestInterpMatchesNative cross-validates the native backend against the
// IR interpreter on the same workload.
func TestInterpMatchesNative(t *testing.T) {
	for _, p := range allWithVecAdd() {
		t.Run(p.Name, func(t *testing.T) {
			run := func(useInterp bool) [][]byte {
				c := newCluster(t, 2)
				inst, err := p.Build(c, p.Small)
				if err != nil {
					t.Fatal(err)
				}
				inst.Spec.UseInterp = useInterp
				sess := core.NewSession(c, p.Compiled)
				sess.Verify = true
				if _, err := sess.Launch(inst.Spec); err != nil {
					t.Fatal(err)
				}
				if err := inst.Check(); err != nil {
					t.Fatal(err)
				}
				var snaps [][]byte
				for _, a := range inst.Spec.Args {
					if a.IsBuf {
						region := c.Region(0, *a.Buf)
						snap := make([]byte, len(region))
						copy(snap, region)
						snaps = append(snaps, snap)
					}
				}
				return snaps
			}
			nat := run(false)
			itp := run(true)
			for i := range nat {
				if !bytes.Equal(nat[i], itp[i]) {
					t.Errorf("buffer %d differs between native and interpreter", i)
				}
			}
		})
	}
}

// TestEstimateMatchesLaunch verifies that the cost-model-only path returns
// the same statistics as real execution (the property that justifies
// paper-scale sweeps via Estimate).
func TestEstimateMatchesLaunch(t *testing.T) {
	for _, p := range allWithVecAdd() {
		t.Run(p.Name, func(t *testing.T) {
			for _, n := range []int{1, 2, 4} {
				c := newCluster(t, n)
				inst, err := p.Build(c, p.Small)
				if err != nil {
					t.Fatal(err)
				}
				sess := core.NewSession(c, p.Compiled)
				got, err := sess.Estimate(inst.Spec)
				if err != nil {
					t.Fatal(err)
				}
				want, err := sess.Launch(inst.Spec)
				if err != nil {
					t.Fatal(err)
				}
				if got.Distributed != want.Distributed ||
					got.BlocksPerNode != want.BlocksPerNode ||
					got.CallbackBlocks != want.CallbackBlocks ||
					got.CommBytesPerNode != want.CommBytesPerNode {
					t.Errorf("n=%d: Estimate %+v != Launch %+v", n, got, want)
				}
				if rel := math.Abs(got.TotalSec-want.TotalSec) / want.TotalSec; rel > 1e-9 {
					t.Errorf("n=%d: TotalSec differs by %.2g (%g vs %g)", n, rel, got.TotalSec, want.TotalSec)
				}
			}
		})
	}
}

// TestTrafficModelMatchesMeasured validates each program's analytic PGAS
// traffic model against the instrumented PGAS execution.
func TestTrafficModelMatchesMeasured(t *testing.T) {
	for _, p := range allWithVecAdd() {
		if p.Traffic == nil {
			continue
		}
		t.Run(p.Name, func(t *testing.T) {
			for _, n := range []int{2, 3, 4} {
				c := newCluster(t, n)
				inst, err := p.Build(c, p.Small)
				if err != nil {
					t.Fatal(err)
				}
				sess := pgas.NewSession(c, p.Compiled)
				res, err := sess.Run(inst.Spec)
				if err != nil {
					t.Fatal(err)
				}
				tr := p.Traffic(p.Small, n)
				if res.MaxRankPuts != tr.Puts {
					t.Errorf("n=%d: measured max-rank puts %d, model %d", n, res.MaxRankPuts, tr.Puts)
				}
				if res.IncastPuts != tr.IncastPuts {
					t.Errorf("n=%d: measured incast %d, model %d", n, res.IncastPuts, tr.IncastPuts)
				}
				if res.LocalOps != tr.LocalOps {
					t.Errorf("n=%d: measured rank-0 local ops %d, model %d", n, res.LocalOps, tr.LocalOps)
				}
			}
		})
	}
}

// TestPGASOutputsCorrect validates the PGAS baseline produces the right
// answers (assembled from owners).
func TestPGASOutputsCorrect(t *testing.T) {
	// VecAdd output is the third buffer; check via assembled bytes of a
	// CuCC run on one node.
	p := VecAdd()
	ref := func() []byte {
		c := newCluster(t, 1)
		inst, err := p.Build(c, p.Small)
		if err != nil {
			t.Fatal(err)
		}
		sess := core.NewSession(c, p.Compiled)
		if _, err := sess.Launch(inst.Spec); err != nil {
			t.Fatal(err)
		}
		return append([]byte(nil), c.Region(0, *inst.Spec.Args[2].Buf)...)
	}()
	for _, policy := range []pgas.Policy{pgas.OwnerRank0, pgas.BlockDistributed} {
		c := newCluster(t, 3)
		inst, err := p.Build(c, p.Small)
		if err != nil {
			t.Fatal(err)
		}
		sess := pgas.NewSession(c, p.Compiled)
		sess.Policy = policy
		if _, err := sess.Run(inst.Spec); err != nil {
			t.Fatal(err)
		}
		got := sess.Assemble(*inst.Spec.Args[2].Buf)
		if !bytes.Equal(got, ref) {
			t.Errorf("policy %d: PGAS output differs from reference", policy)
		}
	}
}

// TestDefaultWorkloadsEstimate sanity-checks paper-scale workloads through
// the cost model: no errors, plausible positive times, distribution on.
func TestDefaultWorkloadsEstimate(t *testing.T) {
	for _, p := range All() {
		t.Run(p.Name, func(t *testing.T) {
			for _, n := range []int{1, 4, 32} {
				c := newCluster(t, n)
				sess := core.NewSession(c, p.Compiled)
				st, err := sess.Estimate(p.Spec(p.Default))
				if err != nil {
					t.Fatal(err)
				}
				if st.TotalSec <= 0 {
					t.Errorf("n=%d: non-positive time", n)
				}
				if n > 1 && !st.Distributed {
					t.Errorf("n=%d: not distributed", n)
				}
			}
		})
	}
}

// TestKmeansPaperBlockCount pins the paper's 313-block configuration.
func TestKmeansPaperBlockCount(t *testing.T) {
	p := Kmeans()
	spec := p.Spec(p.Default)
	if spec.Grid.X != 313 {
		t.Errorf("Kmeans default grid = %d blocks, want 313", spec.Grid.X)
	}
	for name, want := range map[string]int{"EP": 512, "GA": 256, "BinomialOption": 1024} {
		for _, p := range All() {
			if p.Name == name {
				if got := p.Spec(p.Default).Grid.X; got != want {
					t.Errorf("%s default grid = %d blocks, want %d", name, got, want)
				}
			}
		}
	}
}

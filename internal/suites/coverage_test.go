package suites

import (
	"testing"

	"cucc/internal/analysis"
)

// TestFigure7Coverage reproduces the paper's coverage evaluation: all 21
// BERT/ViT kernels are Allgather distributable; 8 of 13 Hetero-Mark
// kernels are, with 4 rejected for overlapping writes and 1 for indirect
// access.
func TestFigure7Coverage(t *testing.T) {
	for _, ck := range CoverageSuite() {
		md := ck.Classify()
		if md.Distributable != ck.WantDistributable {
			t.Errorf("%s/%s: distributable = %v, want %v (%s)",
				ck.Suite, ck.Name, md.Distributable, ck.WantDistributable, md.Summary())
		}
		if !ck.WantDistributable && md.Reason != ck.WantReason {
			t.Errorf("%s/%s: reason = %s, want %s (%s)",
				ck.Suite, ck.Name, md.Reason, ck.WantReason, md.Detail)
		}
	}
}

func TestFigure7Counts(t *testing.T) {
	counts := CountCoverage()
	want := map[string]CoverageCounts{
		"BERT":        {Suite: "BERT", Total: 11, Distributable: 11},
		"ViT":         {Suite: "ViT", Total: 10, Distributable: 10},
		"Hetero-Mark": {Suite: "Hetero-Mark", Total: 13, Distributable: 8, Overlap: 4, Indirect: 1},
	}
	if len(counts) != 3 {
		t.Fatalf("got %d suites", len(counts))
	}
	for _, got := range counts {
		w := want[got.Suite]
		if got != w {
			t.Errorf("%s: %+v, want %+v", got.Suite, got, w)
		}
	}
	// Paper totals: 21 of 21 AI kernels, 8 of 13 HPC kernels.
	ai := counts[0].Distributable + counts[1].Distributable
	if ai != 21 {
		t.Errorf("AI kernels distributable = %d, want 21", ai)
	}
}

// TestCoverageSuiteWellFormed ensures every kernel parses and validates.
func TestCoverageSuiteWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, ck := range CoverageSuite() {
		if seen[ck.Name] {
			t.Errorf("duplicate kernel name %s", ck.Name)
		}
		seen[ck.Name] = true
		md := ck.Classify() // panics on parse error
		if md.KernelName == "" {
			t.Errorf("%s: empty metadata", ck.Name)
		}
	}
	if len(seen) != 34 {
		t.Errorf("suite has %d kernels, want 34", len(seen))
	}
}

// TestTailRelaxationAblation measures how many coverage kernels survive
// with the tail-divergence relaxation disabled — conceptually, by checking
// which distributable kernels are tail-divergent (those would be lost
// under the strict condition 2 of §6.2).
func TestTailRelaxationAblation(t *testing.T) {
	tailDependent := 0
	distributable := 0
	for _, ck := range CoverageSuite() {
		md := ck.Classify()
		if md.Distributable {
			distributable++
			if md.TailDivergent {
				tailDependent++
			}
		}
	}
	if distributable != 29 {
		t.Errorf("distributable kernels = %d, want 29", distributable)
	}
	// The relaxation must matter: a substantial share of real kernels use
	// bound-check guards (the paper's motivation for tail divergence).
	if tailDependent < 10 {
		t.Errorf("only %d distributable kernels rely on tail divergence; expected the relaxation to matter", tailDependent)
	}
	t.Logf("tail-divergence relaxation rescues %d of %d distributable kernels", tailDependent, distributable)
}

func TestCoverageReasonsDetail(t *testing.T) {
	// Spot-check rejection reasons carry diagnostics.
	for _, ck := range CoverageSuite() {
		if ck.WantDistributable {
			continue
		}
		md := ck.Classify()
		if md.Detail == "" {
			t.Errorf("%s: rejection without detail", ck.Name)
		}
	}
	_ = analysis.ReasonOK
}

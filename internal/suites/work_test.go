package suites

import (
	"testing"

	"cucc/internal/core"
)

// TestAnalyticWorkMatchesMeasured cross-validates each native's analytic
// flop model (which drives every figure through the cost models) against
// the interpreter's dynamically counted flops on the same workload.  The
// analytic models include deliberate approximations (intrinsic costs,
// cache-reuse byte estimates), so the check is a factor bound on flops for
// the flop-dominated programs, not equality.
func TestAnalyticWorkMatchesMeasured(t *testing.T) {
	for _, p := range []*Program{VecAdd(), FIR(), MatMul(), Conv2D(), Kmeans()} {
		t.Run(p.Name, func(t *testing.T) {
			c := newCluster(t, 1)
			inst, err := p.Build(c, p.Small)
			if err != nil {
				t.Fatal(err)
			}
			sess := core.NewSession(c, p.Compiled)

			// Interpreter-measured per-block work.
			interpSpec := inst.Spec
			interpSpec.UseInterp = true
			measured, err := sess.Launch(interpSpec)
			if err != nil {
				t.Fatal(err)
			}
			// Native analytic per-block work.
			analytic, err := sess.EstimateWork(inst.Spec)
			if err != nil {
				t.Fatal(err)
			}

			mFlops := measured.Work.VecFlops + measured.Work.SerialFlops
			aFlops := analytic.VecFlops + analytic.SerialFlops
			if mFlops <= 0 || aFlops <= 0 {
				t.Fatalf("degenerate flop counts: measured %.0f analytic %.0f", mFlops, aFlops)
			}
			ratio := aFlops / mFlops
			if ratio < 0.5 || ratio > 2.0 {
				t.Errorf("analytic flops %.0f vs measured %.0f (ratio %.2f); model out of bounds",
					aFlops, mFlops, ratio)
			}
		})
	}
}

package suites

import (
	"math"
	"math/rand"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/pgas"
)

const binomialSrc = `
__global__ void binomial(float* s0, float* out, int steps, int rounds, float strike, float pu, float pd, float up, float down) {
    __shared__ float vals[256];
    int t = threadIdx.x;
    float s = s0[blockIdx.x];
    float price = 0.0f;
    for (int r = 0; r < rounds; r++) {
        float leaf = s * powf(up, (float)t) * powf(down, (float)(steps - t));
        vals[t] = fmaxf(leaf - strike, 0.0f);
        __syncthreads();
        for (int j = steps; j > 0; j = j - 1) {
            float v = 0.0f;
            if (t < j)
                v = pu * vals[t + 1] + pd * vals[t];
            __syncthreads();
            if (t < j)
                vals[t] = v;
            __syncthreads();
        }
        price = vals[0];
        __syncthreads();
    }
    if (t == 0)
        out[blockIdx.x] = price;
}
`

// BinomialOption prices one option per block by backward induction over a
// binomial tree staged in shared memory.  Only thread 0 writes one scalar
// per block — the paper's minimal-communication pattern (§7.4.1) and the
// showcase for thread-parallel CPUs over SIMD CPUs (§8.2: the induction is
// a dependence chain that resists vectorization after migration).
func BinomialOption() *Program {
	prog := core.MustCompile(binomialSrc)
	must(prog.RegisterNative("binomial", core.Native{
		RunBlock: func(mem interp.Memory, args []interp.Value, grid, block interp.Dim3, bx, by int) error {
			steps := int(args[2].I)
			rounds := int(args[3].I)
			strike := float32(args[4].F)
			pu := float32(args[5].F)
			pd := float32(args[6].F)
			up := float32(args[7].F)
			down := float32(args[8].F)
			s := mem.LoadF32(0, bx)
			vals := make([]float32, block.X)
			var price float32
			for r := 0; r < rounds; r++ {
				for t := 0; t <= steps && t < block.X; t++ {
					leaf := s * float32(math.Pow(float64(up), float64(t))) *
						float32(math.Pow(float64(down), float64(steps-t)))
					v := leaf - strike
					if v < 0 {
						v = 0
					}
					vals[t] = v
				}
				for j := steps; j > 0; j-- {
					// Ascending t reads vals[t+1] before it is overwritten,
					// matching the double-barrier GPU staging.
					for t := 0; t < j; t++ {
						vals[t] = pu*vals[t+1] + pd*vals[t]
					}
				}
				price = vals[0]
			}
			mem.StoreF32(1, bx, price)
			return nil
		},
		BlockWork: func(args []interp.Value, grid, block interp.Dim3) machine.BlockWork {
			steps := float64(args[2].I)
			rounds := float64(args[3].I)
			induction := steps * (steps + 1) // 2 flops per node over steps*(steps+1)/2 nodes
			leaves := (steps + 1) * 35       // two powf + mul/sub/max
			return machine.BlockWork{
				SerialFlops: rounds * (induction + leaves),
				IntOps:      rounds * induction,
				Bytes:       8, // one scalar read + one scalar write
			}
		},
	}))

	p := &Program{
		Name:   "BinomialOption",
		Kernel: "binomial",
		Source: binomialSrc,
		// Migrated control flow (barrier staging) defeats vectorization;
		// the paper measured a 55x thread-vs-SIMD gap on this kernel.
		SIMDFraction: 0.05,
		// Shrinking active sets and dependence chains keep the GPU far
		// from peak on this kernel.
		GPUComputeEff: 0.12,
		GPUMemEff:     0.8,
		Compiled:      prog,
		Default:       Params{"blocks": 1024, "steps": 255, "rounds": 64},
		WeakKey:       "blocks",
		Small:         Params{"blocks": 8, "steps": 31, "rounds": 2},
	}
	mkSpec := func(pr Params, s0, out cluster.Buffer) core.LaunchSpec {
		steps := pr.Get("steps")
		return core.LaunchSpec{
			Kernel: "binomial",
			Grid:   interp.Dim1(pr.Get("blocks")),
			Block:  interp.Dim1(steps + 1),
			Args: []core.Arg{
				core.BufArg(s0), core.BufArg(out),
				core.IntArg(int64(steps)), core.IntArg(int64(pr.Get("rounds"))),
				core.FloatArg(100), core.FloatArg(0.55), core.FloatArg(0.43),
				core.FloatArg(1.01), core.FloatArg(0.99),
			},
			SIMDFraction: p.SIMDFraction,
		}
	}
	p.Spec = func(pr Params) core.LaunchSpec {
		b := pr.Get("blocks")
		return mkSpec(pr, virtualBuf(kir.F32, b), virtualBuf(kir.F32, b))
	}
	p.Build = func(c *cluster.Cluster, pr Params) (*Instance, error) {
		blocks := pr.Get("blocks")
		steps := pr.Get("steps")
		rounds := pr.Get("rounds")
		rng := rand.New(rand.NewSource(4))
		s0s := make([]float32, blocks)
		for i := range s0s {
			s0s[i] = 90 + rng.Float32()*20
		}
		// float32 constants mirror the kernel's single-precision arithmetic.
		const strike, pu, pd, up, down = float32(100), float32(0.55), float32(0.43), float32(1.01), float32(0.99)
		want := make([]float32, blocks)
		for b := 0; b < blocks; b++ {
			vals := make([]float32, steps+1)
			var price float32
			for r := 0; r < rounds; r++ {
				for t := 0; t <= steps; t++ {
					leaf := s0s[b] * float32(math.Pow(float64(up), float64(t))) *
						float32(math.Pow(float64(down), float64(steps-t)))
					v := leaf - strike
					if v < 0 {
						v = 0
					}
					vals[t] = v
				}
				for j := steps; j > 0; j-- {
					for t := 0; t < j; t++ {
						vals[t] = pu*vals[t+1] + pd*vals[t]
					}
				}
				price = vals[0]
			}
			want[b] = price
		}
		s0 := c.Alloc(kir.F32, blocks)
		out := c.Alloc(kir.F32, blocks)
		if err := c.WriteAllF32(s0, s0s); err != nil {
			return nil, err
		}
		return &Instance{
			Spec:  mkSpec(pr, s0, out),
			Check: checkF32(c, out, want, "binomial"),
		}, nil
	}
	p.Traffic = func(pr Params, nodes int) pgas.RankTraffic {
		// One scalar write per block.
		return trafficOwner0(pr.Get("blocks"), nodes, 1, 1, 4)
	}
	return p
}

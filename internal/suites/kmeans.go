package suites

import (
	"math/rand"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/pgas"
)

const kmeansSrc = `
__global__ void kmeans(float* points, float* centroids, int* membership, int n, int k, int dim) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        int best = 0;
        float bestDist = 1e30f;
        for (int c = 0; c < k; c++) {
            float d = 0.0f;
            for (int j = 0; j < dim; j++) {
                float diff = points[id * dim + j] - centroids[c * dim + j];
                d += diff * diff;
            }
            if (d < bestDist) {
                bestDist = d;
                best = c;
            }
        }
        membership[id] = best;
    }
}
`

const kmeansBlock = 256

// Kmeans is the cluster-assignment kernel of k-means.  The paper launches
// it with 313 blocks, the configuration behind the §7.2 wave-scheduling
// anomaly (16 -> 32 node slowdown).
func Kmeans() *Program {
	prog := core.MustCompile(kmeansSrc)
	must(prog.RegisterNative("kmeans", core.Native{
		RunBlock: func(mem interp.Memory, args []interp.Value, grid, block interp.Dim3, bx, by int) error {
			n := int(args[3].I)
			k := int(args[4].I)
			dim := int(args[5].I)
			for tx := 0; tx < block.X; tx++ {
				id := bx*block.X + tx
				if id >= n {
					continue
				}
				best := int32(0)
				bestDist := float32(1e30)
				for c := 0; c < k; c++ {
					var d float32
					for j := 0; j < dim; j++ {
						diff := mem.LoadF32(0, id*dim+j) - mem.LoadF32(1, c*dim+j)
						d += diff * diff
					}
					if d < bestDist {
						bestDist = d
						best = int32(c)
					}
				}
				mem.StoreI32(2, id, best)
			}
			return nil
		},
		BlockWork: func(args []interp.Value, grid, block interp.Dim3) machine.BlockWork {
			t := float64(block.X)
			k := float64(args[4].I)
			dim := float64(args[5].I)
			// The distance loop vectorizes; the argmin update chain does
			// not (the kernel's declared 0.6 vectorizable fraction).
			w := t * k * (dim*3 + 1)
			return machine.BlockWork{
				VecFlops:    w * 0.6,
				SerialFlops: w * 0.4,
				IntOps:      t * k * dim * 2,
				// Points are read once per thread (centroids stay cached).
				Bytes: t*dim*4 + t*4,
			}
		},
	}))

	p := &Program{
		Name:          "Kmeans",
		Kernel:        "kmeans",
		Source:        kmeansSrc,
		SIMDFraction:  0.6, // distance loop vectorizes; the argmin update does not
		GPUComputeEff: 0.8,
		GPUMemEff:     0.8,
		Compiled:      prog,
		// 80000 points -> ceil(80000/256) = 313 blocks, the paper's count.
		Default: Params{"n": 80000, "k": 32, "dim": 32},
		WeakKey: "n",
		Small:   Params{"n": 500, "k": 4, "dim": 4},
	}
	mkSpec := func(pr Params, points, centroids, membership cluster.Buffer) core.LaunchSpec {
		n := pr.Get("n")
		return core.LaunchSpec{
			Kernel: "kmeans",
			Grid:   interp.Dim1(ceilDiv(n, kmeansBlock)),
			Block:  interp.Dim1(kmeansBlock),
			Args: []core.Arg{
				core.BufArg(points), core.BufArg(centroids), core.BufArg(membership),
				core.IntArg(int64(n)), core.IntArg(int64(pr.Get("k"))), core.IntArg(int64(pr.Get("dim"))),
			},
			SIMDFraction: p.SIMDFraction,
		}
	}
	p.Spec = func(pr Params) core.LaunchSpec {
		n, k, dim := pr.Get("n"), pr.Get("k"), pr.Get("dim")
		return mkSpec(pr, virtualBuf(kir.F32, n*dim), virtualBuf(kir.F32, k*dim), virtualBuf(kir.I32, n))
	}
	p.Build = func(c *cluster.Cluster, pr Params) (*Instance, error) {
		n, k, dim := pr.Get("n"), pr.Get("k"), pr.Get("dim")
		rng := rand.New(rand.NewSource(3))
		pts := make([]float32, n*dim)
		for i := range pts {
			pts[i] = rng.Float32() * 10
		}
		cent := make([]float32, k*dim)
		for i := range cent {
			cent[i] = rng.Float32() * 10
		}
		want := make([]int32, n)
		for id := 0; id < n; id++ {
			best := int32(0)
			bestDist := float32(1e30)
			for cc := 0; cc < k; cc++ {
				var d float32
				for j := 0; j < dim; j++ {
					diff := pts[id*dim+j] - cent[cc*dim+j]
					d += diff * diff
				}
				if d < bestDist {
					bestDist = d
					best = int32(cc)
				}
			}
			want[id] = best
		}
		points := c.Alloc(kir.F32, n*dim)
		centroids := c.Alloc(kir.F32, k*dim)
		membership := c.Alloc(kir.I32, n)
		if err := c.WriteAllF32(points, pts); err != nil {
			return nil, err
		}
		if err := c.WriteAllF32(centroids, cent); err != nil {
			return nil, err
		}
		return &Instance{
			Spec:  mkSpec(pr, points, centroids, membership),
			Check: checkI32(c, membership, want, "kmeans"),
		}, nil
	}
	p.Traffic = func(pr Params, nodes int) pgas.RankTraffic {
		n := pr.Get("n")
		blocks := ceilDiv(n, kmeansBlock)
		tail := int64(n - (blocks-1)*kmeansBlock)
		return trafficOwner0(blocks, nodes, kmeansBlock, tail, 4)
	}
	return p
}

package interp

import (
	"math"
	"testing"

	"cucc/internal/kir"
	"cucc/internal/lang"
)

func mustKernel(t *testing.T, src, name string) *kir.Kernel {
	t.Helper()
	mod, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	k := mod.Kernel(name)
	if k == nil {
		t.Fatalf("kernel %s not found", name)
	}
	return k
}

func TestVecCopy(t *testing.T) {
	k := mustKernel(t, `
__global__ void vec_copy(char *src, char *dest, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n)
        dest[id] = src[id];
}`, "vec_copy")

	const n = 1200
	src := make([]byte, n)
	for i := range src {
		src[i] = byte(i * 7)
	}
	mem := NewHostMem()
	mem.Bind(0, NewU8Buffer(src))
	mem.Bind(1, ZeroBuffer(kir.U8, n))

	l := &Launch{
		Kernel: k,
		Grid:   Dim1(5), // ceil(1200/256)
		Block:  Dim1(256),
		Args:   []Value{{}, {}, IntV(n)},
		Mem:    mem,
	}
	w, err := ExecGrid(l)
	if err != nil {
		t.Fatal(err)
	}
	got := mem.Buffer(1).Data
	for i := 0; i < n; i++ {
		if got[i] != src[i] {
			t.Fatalf("dest[%d] = %d, want %d", i, got[i], src[i])
		}
	}
	// 1200 loads and stores of 1 byte each.
	if w.GlobalLoadBytes != n || w.GlobalStoreBytes != n {
		t.Errorf("work = %+v, want %d load and store bytes", w, n)
	}
}

func TestSaxpyWorkCounts(t *testing.T) {
	k := mustKernel(t, `
__global__ void saxpy(float* x, float* y, float a, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n)
        y[id] = a * x[id] + y[id];
}`, "saxpy")

	const n = 512
	x := make([]float32, n)
	y := make([]float32, n)
	for i := range x {
		x[i] = float32(i)
		y[i] = 1
	}
	mem := NewHostMem()
	mem.Bind(0, NewF32Buffer(x))
	mem.Bind(1, NewF32Buffer(y))
	l := &Launch{Kernel: k, Grid: Dim1(2), Block: Dim1(256),
		Args: []Value{{}, {}, FloatV(2), IntV(n)}, Mem: mem}
	w, err := ExecGrid(l)
	if err != nil {
		t.Fatal(err)
	}
	out := mem.Buffer(1).F32()
	for i := 0; i < n; i++ {
		want := 2*float32(i) + 1
		if out[i] != want {
			t.Fatalf("y[%d] = %g, want %g", i, out[i], want)
		}
	}
	// 2 flops per element (mul + add).
	if w.Flops != 2*n {
		t.Errorf("Flops = %d, want %d", w.Flops, 2*n)
	}
	if w.GlobalLoadBytes != 8*n || w.GlobalStoreBytes != 4*n {
		t.Errorf("bytes = %d/%d, want %d/%d", w.GlobalLoadBytes, w.GlobalStoreBytes, 8*n, 4*n)
	}
}

func TestForLoopReduction(t *testing.T) {
	k := mustKernel(t, `
__global__ void rowsum(float* m, float* out, int cols) {
    int row = blockIdx.x * blockDim.x + threadIdx.x;
    float s = 0.0f;
    for (int j = 0; j < cols; j++)
        s += m[row * cols + j];
    out[row] = s;
}`, "rowsum")

	const rows, cols = 8, 10
	m := make([]float32, rows*cols)
	for i := range m {
		m[i] = float32(i % cols)
	}
	mem := NewHostMem()
	mem.Bind(0, NewF32Buffer(m))
	mem.Bind(1, ZeroBuffer(kir.F32, rows))
	l := &Launch{Kernel: k, Grid: Dim1(2), Block: Dim1(4),
		Args: []Value{{}, {}, IntV(cols)}, Mem: mem}
	if _, err := ExecGrid(l); err != nil {
		t.Fatal(err)
	}
	for i, v := range mem.Buffer(1).F32() {
		if v != 45 {
			t.Fatalf("out[%d] = %g, want 45", i, v)
		}
	}
}

func TestSharedMemoryTranspose(t *testing.T) {
	k := mustKernel(t, `
__global__ void transpose(float* in, float* out, int n) {
    __shared__ float tile[256];
    int x = blockIdx.x * 16 + threadIdx.x;
    int y = blockIdx.y * 16 + threadIdx.y;
    tile[threadIdx.y * 16 + threadIdx.x] = in[y * n + x];
    __syncthreads();
    int ox = blockIdx.y * 16 + threadIdx.x;
    int oy = blockIdx.x * 16 + threadIdx.y;
    out[oy * n + ox] = tile[threadIdx.x * 16 + threadIdx.y];
}`, "transpose")

	const n = 64
	in := make([]float32, n*n)
	for i := range in {
		in[i] = float32(i)
	}
	mem := NewHostMem()
	mem.Bind(0, NewF32Buffer(in))
	mem.Bind(1, ZeroBuffer(kir.F32, n*n))
	l := &Launch{Kernel: k,
		Grid:  Dim3{X: n / 16, Y: n / 16},
		Block: Dim3{X: 16, Y: 16},
		Args:  []Value{{}, {}, IntV(n)}, Mem: mem}
	w, err := ExecGrid(l)
	if err != nil {
		t.Fatal(err)
	}
	out := mem.Buffer(1).F32()
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if out[r*n+c] != in[c*n+r] {
				t.Fatalf("out[%d][%d] = %g, want %g", r, c, out[r*n+c], in[c*n+r])
			}
		}
	}
	if w.SharedBytes == 0 {
		t.Error("SharedBytes = 0, want > 0 for shared-memory kernel")
	}
}

func TestEarlyReturnWithSync(t *testing.T) {
	// Threads beyond n return before the barrier; the rest must not hang.
	k := mustKernel(t, `
__global__ void partial(float* out, int n) {
    __shared__ float buf[64];
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id >= n) return;
    buf[threadIdx.x] = (float)id;
    __syncthreads();
    out[id] = buf[threadIdx.x] + 1.0f;
}`, "partial")

	const n = 40 // one block of 64, 24 threads exit early
	mem := NewHostMem()
	mem.Bind(0, ZeroBuffer(kir.F32, n))
	l := &Launch{Kernel: k, Grid: Dim1(1), Block: Dim1(64),
		Args: []Value{{}, IntV(n)}, Mem: mem}
	if _, err := ExecGrid(l); err != nil {
		t.Fatal(err)
	}
	for i, v := range mem.Buffer(0).F32() {
		if v != float32(i+1) {
			t.Fatalf("out[%d] = %g, want %d", i, v, i+1)
		}
	}
}

func TestAtomicAdd(t *testing.T) {
	k := mustKernel(t, `
__global__ void hist(char* data, int* bins, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        atomicAdd(&bins[data[id]], 1);
}`, "hist")

	const n = 1000
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i % 16)
	}
	mem := NewHostMem()
	mem.Bind(0, NewU8Buffer(data))
	mem.Bind(1, ZeroBuffer(kir.I32, 16))
	l := &Launch{Kernel: k, Grid: Dim1(4), Block: Dim1(256),
		Args: []Value{{}, {}, IntV(n)}, Mem: mem}
	if _, err := ExecGrid(l); err != nil {
		t.Fatal(err)
	}
	bins := mem.Buffer(1).I32()
	for b, c := range bins {
		want := int32(n / 16)
		if b < n%16 {
			want++
		}
		if c != want {
			t.Fatalf("bins[%d] = %d, want %d", b, c, want)
		}
	}
}

func TestIntrinsics(t *testing.T) {
	k := mustKernel(t, `
__global__ void mathk(float* x, float* out, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        out[id] = sqrtf(x[id]) + expf(0.0f) + fminf(x[id], 2.0f) + fmaxf(x[id], 0.5f);
}`, "mathk")

	xs := []float32{0.25, 1, 4, 9}
	mem := NewHostMem()
	mem.Bind(0, NewF32Buffer(xs))
	mem.Bind(1, ZeroBuffer(kir.F32, len(xs)))
	l := &Launch{Kernel: k, Grid: Dim1(1), Block: Dim1(4),
		Args: []Value{{}, {}, IntV(int64(len(xs)))}, Mem: mem}
	if _, err := ExecGrid(l); err != nil {
		t.Fatal(err)
	}
	out := mem.Buffer(1).F32()
	for i, x := range xs {
		want := float32(math.Sqrt(float64(x))) + 1 +
			float32(math.Min(float64(x), 2)) + float32(math.Max(float64(x), 0.5))
		if math.Abs(float64(out[i]-want)) > 1e-5 {
			t.Errorf("out[%d] = %g, want %g", i, out[i], want)
		}
	}
}

func TestWhileBreakContinue(t *testing.T) {
	k := mustKernel(t, `
__global__ void collatz(int* x, int* steps, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id >= n) return;
    int v = x[id];
    int c = 0;
    while (1) {
        if (v <= 1) break;
        if (v % 2 == 0) {
            v = v / 2;
            c++;
            continue;
        }
        v = 3 * v + 1;
        c++;
    }
    steps[id] = c;
}`, "collatz")

	xs := []int32{1, 2, 3, 6, 7}
	want := []int32{0, 1, 7, 8, 16}
	mem := NewHostMem()
	mem.Bind(0, NewI32Buffer(xs))
	mem.Bind(1, ZeroBuffer(kir.I32, len(xs)))
	l := &Launch{Kernel: k, Grid: Dim1(1), Block: Dim1(8),
		Args: []Value{{}, {}, IntV(int64(len(xs)))}, Mem: mem}
	if _, err := ExecGrid(l); err != nil {
		t.Fatal(err)
	}
	got := mem.Buffer(1).I32()
	for i := range xs {
		if got[i] != want[i] {
			t.Errorf("steps[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestOutOfBoundsDetected(t *testing.T) {
	k := mustKernel(t, `
__global__ void oob(float* x) {
    x[threadIdx.x + 100] = 1.0f;
}`, "oob")
	mem := NewHostMem()
	mem.Bind(0, ZeroBuffer(kir.F32, 10))
	l := &Launch{Kernel: k, Grid: Dim1(1), Block: Dim1(1), Args: []Value{{}}, Mem: mem}
	if _, err := ExecGrid(l); err == nil {
		t.Fatal("out-of-bounds store not detected")
	}
}

func TestDivisionByZeroDetected(t *testing.T) {
	k := mustKernel(t, `
__global__ void divz(int* x) {
    x[0] = 1 / x[1];
}`, "divz")
	mem := NewHostMem()
	mem.Bind(0, NewI32Buffer([]int32{5, 0}))
	l := &Launch{Kernel: k, Grid: Dim1(1), Block: Dim1(1), Args: []Value{{}}, Mem: mem}
	if _, err := ExecGrid(l); err == nil {
		t.Fatal("integer division by zero not detected")
	}
}

func TestLaunchValidation(t *testing.T) {
	k := mustKernel(t, `
__global__ void f(int* x) { x[0] = 1; }`, "f")
	mem := NewHostMem()
	mem.Bind(0, ZeroBuffer(kir.I32, 1))
	cases := []*Launch{
		{Kernel: k, Grid: Dim1(0), Block: Dim1(1), Args: []Value{{}}, Mem: mem},
		{Kernel: k, Grid: Dim1(1), Block: Dim1(1), Args: nil, Mem: mem},
		{Kernel: k, Grid: Dim1(1), Block: Dim1(1), Args: []Value{{}}, Mem: nil},
	}
	for i, l := range cases {
		if _, err := ExecBlock(l, 0, 0); err == nil {
			t.Errorf("case %d: invalid launch accepted", i)
		}
	}
}

func TestSelectAndCast(t *testing.T) {
	k := mustKernel(t, `
__global__ void clampk(float* x, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        float v = x[id];
        x[id] = v > 1.0f ? 1.0f : v;
    }
}`, "clampk")
	xs := []float32{0.5, 2.5, -1, 1}
	mem := NewHostMem()
	mem.Bind(0, NewF32Buffer(xs))
	l := &Launch{Kernel: k, Grid: Dim1(1), Block: Dim1(4),
		Args: []Value{{}, IntV(4)}, Mem: mem}
	if _, err := ExecGrid(l); err != nil {
		t.Fatal(err)
	}
	want := []float32{0.5, 1, -1, 1}
	got := mem.Buffer(0).F32()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("x[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestRunawayLoopGuard(t *testing.T) {
	k := mustKernel(t, `
__global__ void spin(int* x) {
    while (1) {
        x[0] = x[0] + 1;
    }
}`, "spin")
	mem := NewHostMem()
	mem.Bind(0, NewI32Buffer([]int32{0}))
	l := &Launch{Kernel: k, Grid: Dim1(1), Block: Dim1(1),
		Args: []Value{{}}, Mem: mem, MaxLoopIters: 1000}
	if _, err := ExecBlock(l, 0, 0); err == nil {
		t.Fatal("runaway loop not detected")
	}
	// A loop within the budget is unaffected.
	k2 := mustKernel(t, `
__global__ void count(int* x, int n) {
    for (int i = 0; i < n; i++)
        x[0] = x[0] + 1;
}`, "count")
	mem2 := NewHostMem()
	mem2.Bind(0, NewI32Buffer([]int32{0}))
	l2 := &Launch{Kernel: k2, Grid: Dim1(1), Block: Dim1(1),
		Args: []Value{{}, IntV(500)}, Mem: mem2, MaxLoopIters: 1000}
	if _, err := ExecBlock(l2, 0, 0); err != nil {
		t.Fatal(err)
	}
	if got := mem2.Buffer(0).I32()[0]; got != 500 {
		t.Errorf("count = %d, want 500", got)
	}
}

func TestTiledTranspose2DSyntax(t *testing.T) {
	// The canonical CUDA tiled transpose, with native 2D shared indexing
	// and character-literal-free source straight from a textbook.
	k := mustKernel(t, `
__global__ void tiled(float* in, float* out, int n) {
    __shared__ float tile[16][16];
    int x = blockIdx.x * 16 + threadIdx.x;
    int y = blockIdx.y * 16 + threadIdx.y;
    tile[threadIdx.y][threadIdx.x] = in[y * n + x];
    __syncthreads();
    int ox = blockIdx.y * 16 + threadIdx.x;
    int oy = blockIdx.x * 16 + threadIdx.y;
    out[oy * n + ox] = tile[threadIdx.x][threadIdx.y];
}`, "tiled")
	const n = 32
	in := make([]float32, n*n)
	for i := range in {
		in[i] = float32(i) * 0.5
	}
	mem := NewHostMem()
	mem.Bind(0, NewF32Buffer(in))
	mem.Bind(1, ZeroBuffer(kir.F32, n*n))
	l := &Launch{Kernel: k,
		Grid:  Dim3{X: n / 16, Y: n / 16},
		Block: Dim3{X: 16, Y: 16},
		Args:  []Value{{}, {}, IntV(n)}, Mem: mem}
	if _, err := ExecGrid(l); err != nil {
		t.Fatal(err)
	}
	out := mem.Buffer(1).F32()
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if out[r*n+c] != in[c*n+r] {
				t.Fatalf("out[%d][%d] = %g, want %g", r, c, out[r*n+c], in[c*n+r])
			}
		}
	}
}

func TestCharLiteralKernel(t *testing.T) {
	k := mustKernel(t, `
__global__ void count_a(char* text, int* hits, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        hits[id] = text[id] == 'A' ? 1 : 0;
}`, "count_a")
	text := []byte("ABACADABRA")
	mem := NewHostMem()
	mem.Bind(0, NewU8Buffer(text))
	mem.Bind(1, ZeroBuffer(kir.I32, len(text)))
	l := &Launch{Kernel: k, Grid: Dim1(1), Block: Dim1(16),
		Args: []Value{{}, {}, IntV(int64(len(text)))}, Mem: mem}
	if _, err := ExecGrid(l); err != nil {
		t.Fatal(err)
	}
	hits := mem.Buffer(1).I32()
	want := []int32{1, 0, 1, 0, 1, 0, 1, 0, 0, 1}
	for i := range want {
		if hits[i] != want[i] {
			t.Errorf("hits[%d] = %d, want %d", i, hits[i], want[i])
		}
	}
}

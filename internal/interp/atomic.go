package interp

import "sync"

// NumAtomicShards is the number of locks an AtomicShards set spreads
// global-memory atomics over.  Power of two so the shard index is a mask;
// large enough that a 64-bin histogram rarely collides two bins on one lock.
const NumAtomicShards = 64

// AtomicShards is a fixed set of sharded mutexes serializing atomic
// read-modify-write operations on one memory space.  Shards are selected by
// (param, element index), so atomics to different elements almost always
// take different locks and an atomics-heavy kernel (histogram) does not
// serialize behind a single mutex when blocks execute concurrently.
//
// The zero value is ready to use.
type AtomicShards struct {
	mus [NumAtomicShards]sync.Mutex
}

// Shard returns the mutex guarding atomic RMW on element idx of the buffer
// bound to param.
func (s *AtomicShards) Shard(param, idx int) *sync.Mutex {
	// Fibonacci-style multiplicative hash over the flattened key; the
	// param multiplier keeps adjacent buffers from aliasing shard 0.
	h := uint64(param)*0x9e3779b97f4a7c15 + uint64(uint(idx))*0x85ebca6b
	return &s.mus[(h>>16)&(NumAtomicShards-1)]
}

// AtomicMemory is a Memory whose backend provides sharded locks serializing
// atomic read-modify-write on its global buffers.  The interpreter requires
// this capability whenever GPU blocks of one launch may execute concurrently
// on the same memory (the intra-node worker pool in internal/core): the
// per-block mutex inside blockCtx only orders threads of a single block.
//
// Node memories (internal/cluster) and HostMem implement it; backends that
// never run blocks concurrently (e.g. the PGAS baseline) may omit it and
// fall back to per-block locking.
type AtomicMemory interface {
	Memory
	// AtomicShard returns the lock guarding atomic RMW on element idx of
	// the buffer bound to param.
	AtomicShard(param, idx int) *sync.Mutex
}

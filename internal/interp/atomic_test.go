package interp

import (
	"sync"
	"testing"

	"cucc/internal/kir"
)

func TestAtomicShardsDistribute(t *testing.T) {
	var s AtomicShards
	// Same (param, idx) must map to the same shard; distinct indices must
	// not all collapse onto one shard.
	seen := map[*sync.Mutex]bool{}
	for idx := 0; idx < 1024; idx++ {
		a := s.Shard(1, idx)
		if b := s.Shard(1, idx); a != b {
			t.Fatalf("shard for (1,%d) not stable", idx)
		}
		seen[a] = true
	}
	if len(seen) < NumAtomicShards/2 {
		t.Errorf("1024 indices hit only %d shards", len(seen))
	}
}

// TestConcurrentGlobalAtomics runs the blocks of an atomicAdd histogram
// kernel concurrently over one shared HostMem — the worker-pool execution
// shape — and checks the bins against sequential execution.  Under -race
// this also proves the sharded locks serialize cross-block atomic RMWs.
func TestConcurrentGlobalAtomics(t *testing.T) {
	k := mustKernel(t, `
__global__ void hist(char* data, int* bins, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        atomicAdd(&bins[data[id] % 61], 1);
}`, "hist")

	const blocks, bs = 16, 64
	const n = blocks * bs
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*31 + 5)
	}

	run := func(concurrent bool) []int32 {
		mem := NewHostMem()
		mem.Bind(0, NewU8Buffer(data))
		mem.Bind(1, ZeroBuffer(kir.I32, 61))
		l := &Launch{
			Kernel: k,
			Grid:   Dim1(blocks),
			Block:  Dim1(bs),
			Args:   []Value{{}, {}, IntV(n)},
			Mem:    mem,
		}
		if !concurrent {
			if _, err := ExecGrid(l); err != nil {
				t.Fatal(err)
			}
			return mem.Buffer(1).I32()
		}
		var wg sync.WaitGroup
		errs := make([]error, blocks)
		for bx := 0; bx < blocks; bx++ {
			wg.Add(1)
			go func(bx int) {
				defer wg.Done()
				_, errs[bx] = ExecBlock(l, bx, 0)
			}(bx)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		return mem.Buffer(1).I32()
	}

	want := run(false)
	got := run(true)
	for b := range want {
		if got[b] != want[b] {
			t.Errorf("bin %d = %d concurrent, %d sequential", b, got[b], want[b])
		}
	}
}

// TestConcurrentSharedAtomicsAndBarrier runs a privatized histogram kernel
// (shared-memory atomics plus __syncthreads) with all blocks concurrent.
// Shared-memory atomics stay on the per-block lock, and each block writes a
// disjoint row of the partials matrix.
func TestConcurrentSharedAtomicsAndBarrier(t *testing.T) {
	k := mustKernel(t, `
__global__ void hist_private(char* data, int* partial, int n, int bins) {
    __shared__ int sh[64];
    for (int b = threadIdx.x; b < bins; b = b + blockDim.x)
        sh[b] = 0;
    __syncthreads();
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        atomicAdd(&sh[data[id] % 61], 1);
    __syncthreads();
    for (int b = threadIdx.x; b < bins; b = b + blockDim.x)
        partial[blockIdx.x * bins + b] = sh[b];
}`, "hist_private")

	const blocks, bs, nbins = 8, 64, 61
	const n = blocks * bs
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*17 + 3)
	}
	mem := NewHostMem()
	mem.Bind(0, NewU8Buffer(data))
	mem.Bind(1, ZeroBuffer(kir.I32, blocks*nbins))
	l := &Launch{
		Kernel: k,
		Grid:   Dim1(blocks),
		Block:  Dim1(bs),
		Args:   []Value{{}, {}, IntV(n), IntV(nbins)},
		Mem:    mem,
	}
	var wg sync.WaitGroup
	errs := make([]error, blocks)
	for bx := 0; bx < blocks; bx++ {
		wg.Add(1)
		go func(bx int) {
			defer wg.Done()
			_, errs[bx] = ExecBlock(l, bx, 0)
		}(bx)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	partial := mem.Buffer(1).I32()
	// Every block counted bs elements; each row must sum to bs.
	for blk := 0; blk < blocks; blk++ {
		var sum int32
		for b := 0; b < nbins; b++ {
			sum += partial[blk*nbins+b]
		}
		if sum != bs {
			t.Errorf("block %d row sums to %d, want %d", blk, sum, bs)
		}
	}
}

package interp

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"cucc/internal/kir"
)

// HostMem is a single-address-space Memory implementation used for
// reference (non-distributed) kernel execution, mirroring single-CPU
// migration where GPU global memory maps to the process heap.
type HostMem struct {
	bufs    map[int]*HostBuffer
	atomics AtomicShards
}

var _ AtomicMemory = (*HostMem)(nil)

// HostBuffer is one typed linear buffer.
type HostBuffer struct {
	Elem kir.ScalarType
	Data []byte
}

// NewHostMem returns an empty host memory.
func NewHostMem() *HostMem {
	return &HostMem{bufs: map[int]*HostBuffer{}}
}

// Bind attaches a buffer to a pointer-parameter index.
func (h *HostMem) Bind(param int, b *HostBuffer) { h.bufs[param] = b }

// Buffer returns the buffer bound to param.
func (h *HostMem) Buffer(param int) *HostBuffer { return h.bufs[param] }

// NewF32Buffer builds a buffer from float32 data.
func NewF32Buffer(data []float32) *HostBuffer {
	b := &HostBuffer{Elem: kir.F32, Data: make([]byte, 4*len(data))}
	for i, v := range data {
		binary.LittleEndian.PutUint32(b.Data[4*i:], math.Float32bits(v))
	}
	return b
}

// NewI32Buffer builds a buffer from int32 data.
func NewI32Buffer(data []int32) *HostBuffer {
	b := &HostBuffer{Elem: kir.I32, Data: make([]byte, 4*len(data))}
	for i, v := range data {
		binary.LittleEndian.PutUint32(b.Data[4*i:], uint32(v))
	}
	return b
}

// NewU8Buffer builds a buffer from bytes (copied).
func NewU8Buffer(data []byte) *HostBuffer {
	b := &HostBuffer{Elem: kir.U8, Data: make([]byte, len(data))}
	copy(b.Data, data)
	return b
}

// ZeroBuffer builds a zero-filled buffer of n elements.
func ZeroBuffer(elem kir.ScalarType, n int) *HostBuffer {
	return &HostBuffer{Elem: elem, Data: make([]byte, n*elem.Size())}
}

// F32 decodes the buffer as float32 values.
func (b *HostBuffer) F32() []float32 {
	out := make([]float32, len(b.Data)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b.Data[4*i:]))
	}
	return out
}

// I32 decodes the buffer as int32 values.
func (b *HostBuffer) I32() []int32 {
	out := make([]int32, len(b.Data)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b.Data[4*i:]))
	}
	return out
}

// Count returns the number of elements.
func (b *HostBuffer) Count() int { return len(b.Data) / b.Elem.Size() }

func (h *HostMem) buf(param int) *HostBuffer {
	b, ok := h.bufs[param]
	if !ok {
		panic(fmt.Sprintf("interp: no buffer bound to param %d", param))
	}
	return b
}

// Len implements Memory.
func (h *HostMem) Len(param int) int { return h.buf(param).Count() }

// RawBytes implements RawMemory.
func (h *HostMem) RawBytes(param int) []byte { return h.buf(param).Data }

// AtomicShard implements AtomicMemory.
func (h *HostMem) AtomicShard(param, idx int) *sync.Mutex {
	return h.atomics.Shard(param, idx)
}

// LoadF32 implements Memory.
func (h *HostMem) LoadF32(param, idx int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(h.buf(param).Data[4*idx:]))
}

// StoreF32 implements Memory.
func (h *HostMem) StoreF32(param, idx int, v float32) {
	binary.LittleEndian.PutUint32(h.buf(param).Data[4*idx:], math.Float32bits(v))
}

// LoadI32 implements Memory.
func (h *HostMem) LoadI32(param, idx int) int32 {
	return int32(binary.LittleEndian.Uint32(h.buf(param).Data[4*idx:]))
}

// StoreI32 implements Memory.
func (h *HostMem) StoreI32(param, idx int, v int32) {
	binary.LittleEndian.PutUint32(h.buf(param).Data[4*idx:], uint32(v))
}

// LoadU8 implements Memory.
func (h *HostMem) LoadU8(param, idx int) byte { return h.buf(param).Data[idx] }

// StoreU8 implements Memory.
func (h *HostMem) StoreU8(param, idx int, v byte) { h.buf(param).Data[idx] = v }

// ExecGrid executes every block of the launch sequentially against the
// launch memory; the reference path for correctness checks.
func ExecGrid(l *Launch) (Work, error) {
	var total Work
	ydim := max(l.Grid.Y, 1)
	for by := 0; by < ydim; by++ {
		for bx := 0; bx < l.Grid.X; bx++ {
			w, err := ExecBlock(l, bx, by)
			if err != nil {
				return total, err
			}
			total.Add(w)
		}
	}
	return total, nil
}

package interp

import (
	"fmt"
	"sync"
)

// barrier is a cyclic barrier supporting early departure: a thread that
// returns from the kernel leaves the barrier so the remaining threads can
// still synchronize (matching the CUDA requirement that __syncthreads is
// executed by all *live* threads of the block).
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	gen     int
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	b.waiting++
	if b.waiting >= b.parties {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
}

func (b *barrier) leave() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.parties--
	if b.waiting >= b.parties && b.parties > 0 {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
	}
}

// runPhased executes the block with one goroutine per GPU thread, used when
// the kernel contains __syncthreads.  Blocks in the evaluation suites that
// use barriers have at most a few hundred threads, which Go handles easily.
func (b *blockCtx) runPhased() (Work, error) {
	l := b.launch
	ydim := max(l.Block.Y, 1)
	n := l.Block.X * ydim
	bar := newBarrier(n)
	b.concurrent = true
	var wg sync.WaitGroup
	errs := make([]error, n)
	works := make([]Work, n)
	for ty := 0; ty < ydim; ty++ {
		for tx := 0; tx < l.Block.X; tx++ {
			wg.Add(1)
			go func(tx, ty, id int) {
				defer wg.Done()
				t := b.newThread(tx, ty)
				t.bar = bar
				_, err := t.execBlock(l.Kernel.Body)
				bar.leave()
				errs[id] = err
				works[id] = t.work
			}(tx, ty, ty*l.Block.X+tx)
		}
	}
	wg.Wait()
	b.concurrent = false
	for _, err := range errs {
		if err != nil {
			return b.work, fmt.Errorf("interp: phased execution: %w", err)
		}
	}
	for _, w := range works {
		b.work.Add(w)
	}
	return b.work, nil
}

func (t *threadCtx) syncPoint() {
	if t.bar != nil {
		t.bar.await()
	}
}

func (t *threadCtx) atomicBegin() {
	if t.blk.concurrent {
		t.blk.atomicMu.Lock()
	}
}

func (t *threadCtx) atomicEnd() {
	if t.blk.concurrent {
		t.blk.atomicMu.Unlock()
	}
}

func (t *threadCtx) sharedLoad(arr []Value, idx int) Value     { return arr[idx] }
func (t *threadCtx) sharedStore(arr []Value, idx int, v Value) { arr[idx] = v }
